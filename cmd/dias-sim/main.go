// dias-sim runs one configurable two-priority scenario through the
// simulated DiAS stack and prints per-class latencies, waste and energy.
//
//	dias-sim -policy dias -theta 0.2 -jobs 300 -util 0.8 -ratio 9 -sprint-timeout 0
//	dias-sim -policy da -bursty            # MMPP2 arrivals, same mean rates
//	dias-sim -policy np -mttf 1800 -mttr 60  # inject node failures
//	dias-sim -policy adaptive -target 120  # closed-loop deflation
//
// Policies: p (preemptive), np, da (approximation only), dias
// (approximation + sprinting), adaptive (closed-loop da).
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"dias"
	"dias/internal/analytics"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/metrics"
	"dias/internal/mmap"
	"dias/internal/workload"
)

func main() {
	var opt options
	flag.StringVar(&opt.policy, "policy", "dias", "p | np | da | dias | adaptive")
	flag.Float64Var(&opt.theta, "theta", 0.2, "low-priority map-task drop ratio")
	flag.IntVar(&opt.jobs, "jobs", 300, "number of arrivals")
	flag.Float64Var(&opt.util, "util", 0.8, "target system utilization")
	flag.Float64Var(&opt.ratio, "ratio", 9, "low:high arrival ratio (low weight; high is 1)")
	flag.Float64Var(&opt.sprintTimeout, "sprint-timeout", 0, "high-priority sprint timeout [s]")
	flag.Float64Var(&opt.budget, "budget", math.Inf(1), "sprint budget [J] (default unlimited)")
	flag.BoolVar(&opt.bursty, "bursty", false, "MMPP2 arrivals instead of Poisson (same mean rates)")
	flag.Float64Var(&opt.mttf, "mttf", 0, "per-node mean time to failure [s] (0 = no failures)")
	flag.Float64Var(&opt.mttr, "mttr", 60, "mean node repair time [s]")
	flag.Float64Var(&opt.target, "target", 0, "adaptive policy: low-priority mean response target [s] (0 = 3x solo exec)")
	flag.Int64Var(&opt.seed, "seed", 1, "seed")
	flag.Parse()
	if err := run(opt); err != nil {
		fmt.Fprintln(os.Stderr, "dias-sim:", err)
		os.Exit(1)
	}
}

// options collects the CLI flags.
type options struct {
	policy                string
	theta, util, ratio    float64
	sprintTimeout, budget float64
	mttf, mttr, target    float64
	jobs                  int
	bursty                bool
	seed                  int64
}

func buildJob(name string, seed int64, posts int, size int64) (*engine.Job, error) {
	cfg := workload.DefaultCorpusConfig()
	cfg.PostsPerPartition = posts
	rng := rand.New(rand.NewSource(seed))
	corpus, err := workload.SynthesizeCorpus(rng, cfg)
	if err != nil {
		return nil, err
	}
	return analytics.WordPopularityJob(name, corpus, 10, size), nil
}

func policyConfig(name string, theta, sprintTimeout, budget float64) (core.Config, error) {
	sprint := core.SprintPolicy{
		TimeoutSec:     []float64{-1, sprintTimeout},
		BudgetJoules:   budget,
		DrainWatts:     900,
		ReplenishWatts: 90,
	}
	if math.IsInf(budget, 1) {
		sprint.DrainWatts = 0
		sprint.ReplenishWatts = 0
	}
	switch name {
	case "p":
		return core.PolicyP(2), nil
	case "np":
		return core.PolicyNP(2), nil
	case "da":
		return core.PolicyDA([]float64{theta, 0}), nil
	case "dias":
		return core.PolicyDiAS([]float64{theta, 0}, sprint), nil
	default:
		return core.Config{}, fmt.Errorf("unknown policy %q", name)
	}
}

func run(opt options) error {
	adaptive := opt.policy == "adaptive"
	var cfg core.Config
	if adaptive {
		cfg = core.PolicyNP(2) // the deflator is installed below
	} else {
		var err error
		cfg, err = policyConfig(opt.policy, opt.theta, opt.sprintTimeout, opt.budget)
		if err != nil {
			return err
		}
	}
	lowJob, err := buildJob("low", opt.seed+1, 50, 1117<<20)
	if err != nil {
		return err
	}
	highJob, err := buildJob("high", opt.seed+2, 21, 473<<20)
	if err != nil {
		return err
	}
	// Profile solo execution to calibrate the arrival rate.
	exec := func(job *engine.Job) (float64, error) {
		st, err := dias.NewStack(dias.StackConfig{Policy: core.PolicyNP(1), Seed: opt.seed})
		if err != nil {
			return 0, err
		}
		st.SubmitAt(0, 0, job)
		st.Run()
		return st.Records()[0].ExecSec, nil
	}
	lowExec, err := exec(lowJob)
	if err != nil {
		return err
	}
	highExec, err := exec(highJob)
	if err != nil {
		return err
	}
	fracLow := opt.ratio / (opt.ratio + 1)
	totalRate, err := workload.CalibrateTotalRate(
		[]float64{lowExec, highExec}, []float64{fracLow, 1 - fracLow}, opt.util)
	if err != nil {
		return err
	}
	rates, err := workload.MixFromRatio([]float64{opt.ratio, 1}, totalRate)
	if err != nil {
		return err
	}

	stack, err := dias.NewStack(dias.StackConfig{Policy: cfg, Seed: opt.seed})
	if err != nil {
		return err
	}
	var ctl *core.AdaptiveDeflator
	if adaptive {
		target := opt.target
		if target <= 0 {
			target = 3 * lowExec
		}
		ctl, err = core.NewAdaptiveDeflator(stack.Sim, core.AdaptiveConfig{
			TargetResponseSec: []float64{target, 0},
			MaxTheta:          []float64{0.4, 0},
			Window:            8,
			Step:              0.05,
			Hysteresis:        0.6,
		})
		if err != nil {
			return err
		}
		stack.Scheduler, err = core.New(stack.Sim, stack.Cluster, stack.Engine, core.Config{
			Classes: 2, Deflator: ctl,
		})
		if err != nil {
			return err
		}
	}
	if opt.mttf > 0 {
		// Horizon sized to the expected arrival window plus drain slack.
		horizon := float64(opt.jobs)/totalRate*1.1 + 300
		if err := stack.InjectFailures(engine.FailureConfig{
			MTTFSec: opt.mttf, MTTRSec: opt.mttr, HorizonSec: horizon, Seed: opt.seed + 17,
		}); err != nil {
			return err
		}
	}

	var proc workload.Process
	if opt.bursty {
		m, err := mmap.MMPP2(totalRate/40, totalRate/16,
			scaleRates(rates, 0.4), scaleRates(rates, 2.5))
		if err != nil {
			return err
		}
		src, err := m.NewSource(rand.New(rand.NewSource(opt.seed + 3)))
		if err != nil {
			return err
		}
		proc = src
	} else {
		mix, err := workload.NewPoissonMix(rates)
		if err != nil {
			return err
		}
		proc = mix
	}
	tmpl := workload.FixedJobs{lowJob, highJob}
	if err := stack.SubmitStream(proc, tmpl, opt.jobs, opt.seed+9); err != nil {
		return err
	}
	stack.Run()

	cs := metrics.Aggregate(stack.Records(), 2, 0.1)
	fmt.Printf("policy=%s theta=%.2f util=%.2f ratio=%.0f:1 jobs=%d bursty=%v mttf=%.0fs (solo exec: low %.1fs, high %.1fs)\n",
		opt.policy, opt.theta, opt.util, opt.ratio, opt.jobs, opt.bursty, opt.mttf, lowExec, highExec)
	for k := 1; k >= 0; k-- {
		label := [2]string{"low ", "high"}[k]
		fmt.Printf("  %s mean %8.1fs  p95 %8.1fs  queue %8.1fs  exec %6.1fs  evictions %d\n",
			label, cs[k].MeanResponseSec, cs[k].P95ResponseSec, cs[k].MeanQueueSec, cs[k].MeanExecSec, cs[k].Evictions)
	}
	wasted := stack.Engine.WastedSlotSeconds()
	total := stack.Cluster.BusySlotSeconds()
	wastePct := 0.0
	if total > 0 {
		wastePct = 100 * wasted / total
	}
	sd := metrics.Slowdowns(stack.Records(), 2, 0.1)
	fmt.Printf("  slowdown: low %.2fx, high %.2fx (low/high ratio %.2f; §2.1 reports ~3 under P)\n",
		sd[0].MeanSlowdown, sd[1].MeanSlowdown, metrics.SlowdownRatio(sd))
	fmt.Printf("  waste %.1f%%  energy %.0f kJ  makespan %.0f s\n",
		wastePct, stack.Cluster.EnergyJoules()/1000, stack.Sim.Now().Seconds())
	if opt.mttf > 0 {
		fmt.Printf("  failures: %d task retries, %.0f slot-s lost\n",
			stack.Engine.TasksRetried(), stack.Engine.FailureLostSlotSeconds())
	}
	if ctl != nil {
		fmt.Printf("  adaptive: %d decisions, theta now %.2f, mean drop %.1f%%\n",
			len(ctl.History()), ctl.Theta(0), 100*cs[0].MeanEffectiveDrop)
	}
	return nil
}

// scaleRates multiplies every rate by f.
func scaleRates(rates []float64, f float64) []float64 {
	out := make([]float64, len(rates))
	for i, r := range rates {
		out[i] = r * f
	}
	return out
}
