package main

import (
	"os"
	"path/filepath"
	"testing"

	"dias/internal/experiments"
)

// quickTestScale is a tiny scale for CLI plumbing tests that never runs a
// figure (selection errors fire first).
func quickTestScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.Jobs = 20
	return sc
}

func TestCheckBenchOut(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "plain.txt")
	if err := os.WriteFile(plain, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		path    string
		wantErr bool
	}{
		{"empty skips the report", "", false},
		{"writable dir", filepath.Join(dir, "BENCH_results.json"), false},
		{"existing file is fine", plain, false},
		{"missing parent dir", filepath.Join(dir, "no", "such", "dir", "out.json"), true},
		{"parent is a file", filepath.Join(plain, "out.json"), true},
		{"path is a directory", dir, true},
	}
	for _, c := range cases {
		if err := checkBenchOut(c.path); (err != nil) != c.wantErr {
			t.Errorf("%s: checkBenchOut(%q) err = %v, wantErr %v", c.name, c.path, err, c.wantErr)
		}
	}
	// The probe must not leave droppings or clobber existing files.
	if data, err := os.ReadFile(plain); err != nil || string(data) != "x" {
		t.Fatalf("existing file touched: %q %v", data, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("probe left droppings: %v", entries)
	}
}

func TestRunRejectsUnknownFigure(t *testing.T) {
	scale := quickTestScale()
	if err := run("no-such-figure", scale, 1, "", exportPaths{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunEmptySelection(t *testing.T) {
	if err := run(" , ", quickTestScale(), 1, "", exportPaths{}); err == nil {
		t.Fatal("empty selection accepted")
	}
}
