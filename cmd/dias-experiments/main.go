// dias-experiments regenerates the paper's tables and figures.
//
//	dias-experiments [-fig 4|5|6|7|8|9|10|11|table2|ablations|extensions|all] [-jobs N] [-seed S]
//
// Output is the textual form of each figure: baseline absolutes plus
// relative differences, exactly the quantities the paper plots.
package main

import (
	"flag"
	"fmt"
	"os"

	"dias/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: motivation,4,5,6,7,8,9,10,11,table2,ablations,extensions,all")
	jobs := flag.Int("jobs", 0, "arrivals per scenario (0 = full scale)")
	seed := flag.Int64("seed", 1, "experiment seed")
	flag.Parse()

	scale := experiments.FullScale()
	scale.Seed = *seed
	if *jobs > 0 {
		scale.Jobs = *jobs
	}
	if err := run(*fig, scale); err != nil {
		fmt.Fprintln(os.Stderr, "dias-experiments:", err)
		os.Exit(1)
	}
}

func run(fig string, scale experiments.Scale) error {
	all := fig == "all"
	graphScale := scale
	if graphScale.Jobs > 300 {
		graphScale.Jobs = 300 // graph jobs are ~10x heavier per arrival
	}
	type step struct {
		name string
		fn   func() (fmt.Stringer, error)
	}
	steps := []step{
		{"motivation", func() (fmt.Stringer, error) { return experiments.Motivation(scale) }},
		{"4", func() (fmt.Stringer, error) { return experiments.Figure4(scale) }},
		{"5", func() (fmt.Stringer, error) { return experiments.Figure5(scale) }},
		{"6", func() (fmt.Stringer, error) { return experiments.Figure6(scale) }},
		{"7", func() (fmt.Stringer, error) { return experiments.Figure7(scale) }},
		{"8", func() (fmt.Stringer, error) {
			var out multi
			for _, v := range []experiments.Figure8Variant{
				experiments.Figure8EqualSizes, experiments.Figure8MoreHigh, experiments.Figure8HalfLoad,
			} {
				r, err := experiments.Figure8(v, scale)
				if err != nil {
					return nil, err
				}
				out = append(out, r)
			}
			return out, nil
		}},
		{"9", func() (fmt.Stringer, error) { return experiments.Figure9(scale) }},
		{"10", func() (fmt.Stringer, error) { return experiments.Figure10(graphScale) }},
		{"11", func() (fmt.Stringer, error) { return experiments.Figure11(graphScale) }},
		{"table2", func() (fmt.Stringer, error) {
			r, err := experiments.Figure11(graphScale)
			if err != nil {
				return nil, err
			}
			return stringer(r.Table2()), nil
		}},
		{"ablations", func() (fmt.Stringer, error) {
			var out multi
			st, err := experiments.AblationSprintTimeout(graphScale)
			if err != nil {
				return nil, err
			}
			out = append(out, st)
			ml, err := experiments.AblationModelLevel(scale)
			if err != nil {
				return nil, err
			}
			out = append(out, ml)
			dt, err := experiments.AblationDropTiming(scale)
			if err != nil {
				return nil, err
			}
			out = append(out, stringer(fmt.Sprintf(
				"Ablation: early drop timing\n  full exec %.1fs, theta=0.5 exec %.1fs (%.0f%% saved)\n",
				dt.FullExecSec, dt.DroppedExecSec, 100*(1-dt.DroppedExecSec/dt.FullExecSec))))
			er, err := experiments.AblationEvictionResume(scale)
			if err != nil {
				return nil, err
			}
			out = append(out, stringer(fmt.Sprintf(
				"Ablation: preemptive-repeat eviction\n  resource waste %.1f%% of machine time\n",
				er.ResourceWastePct)))
			return out, nil
		}},
		{"extensions", func() (fmt.Stringer, error) {
			var out multi
			b, err := experiments.ExtensionBursty(scale)
			if err != nil {
				return nil, err
			}
			out = append(out, b)
			v, err := experiments.ExtensionVariableSizes(scale)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
			f, err := experiments.ExtensionFailures(scale)
			if err != nil {
				return nil, err
			}
			out = append(out, f)
			a, err := experiments.ExtensionAdaptive(scale)
			if err != nil {
				return nil, err
			}
			out = append(out, a)
			return out, nil
		}},
	}
	ran := false
	for _, s := range steps {
		if !all && s.name != fig {
			continue
		}
		// table2 duplicates figure 11's run; skip it under -fig all.
		if all && s.name == "table2" {
			continue
		}
		out, err := s.fn()
		if err != nil {
			return fmt.Errorf("figure %s: %w", s.name, err)
		}
		fmt.Println(out.String())
		fmt.Println()
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

// stringer adapts a plain string to fmt.Stringer.
type stringer string

func (s stringer) String() string { return string(s) }

// multi concatenates several results.
type multi []fmt.Stringer

func (m multi) String() string {
	out := ""
	for i, s := range m {
		if i > 0 {
			out += "\n"
		}
		out += s.String()
	}
	return out
}
