// dias-experiments regenerates the paper's tables and figures.
//
//	dias-experiments [-fig list|all|NAME[,NAME...]]
//	                 [-jobs N] [-seed S] [-workers W] [-sim-workers P]
//	                 [-replicas R] [-bench-out BENCH_results.json]
//	                 [-trace trace.json] [-events events.jsonl]
//	                 [-timeline timeline.csv] [-max-sys-mb M]
//
// -fig list prints every registered figure with its description; -fig also
// accepts a comma-separated list (e.g. -fig 7,federation-scaleout). The
// figure set is the experiments package's driver registry — each driver
// self-registers with experiments.Register, so this binary has no
// hand-maintained figure switch.
//
// -trace, -events and -timeline arm the telemetry layer on the first-seed
// run of every selected figure (replica runs stay untraced) and export,
// respectively, a Chrome trace_event JSON file (open with Perfetto or
// chrome://tracing), the raw span-event stream as JSONL (feed to
// dias-trace), and the periodic gauge timeline as CSV. Tracing is
// observational only: figure output and BENCH_results.json are
// byte-identical with or without it, and the exports themselves are
// byte-identical at any -workers count.
//
// -workers parallelizes ACROSS independent runs; -sim-workers
// parallelizes WITHIN each federation run, on the conservative
// parallel kernel (per-member event loops under lookahead windows).
// Both are pure wall-clock knobs: figure text, BENCH_results.json
// figure quantities and every telemetry export are byte-identical at
// any -workers x -sim-workers combination.
//
// Output is the textual form of each figure: baseline absolutes plus
// relative differences, exactly the quantities the paper plots. Every
// figure fans its independent simulation runs (scenario × policy × seed)
// across the worker pool; -replicas repeats each figure under consecutive
// seeds and reports mean ± 95% CI aggregates. The run also writes a
// machine-readable benchmark report (per-figure wall-clock, per-class
// latency/waste/energy, seed list, git SHA) so the perf trajectory is
// tracked across PRs; see README.md for the schema.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"dias/internal/experiments"
	"dias/internal/metrics"
	"dias/internal/runner"
	"dias/internal/telemetry"
)

func main() {
	fig := flag.String("fig", "all", "figure(s) to regenerate, comma-separated; 'list' prints the catalogue")
	jobs := flag.Int("jobs", 0, "arrivals per scenario (0 = full scale)")
	seed := flag.Int64("seed", 1, "experiment seed")
	workers := flag.Int("workers", 0, "concurrent simulation runs per figure (0 = one per CPU core)")
	simWorkers := flag.Int("sim-workers", 0, "goroutines per federation run on the conservative parallel kernel (0/1 = serial; results are byte-identical at any setting)")
	replicas := flag.Int("replicas", 1, "seed replicas per figure (seeds seed..seed+R-1)")
	benchOut := flag.String("bench-out", "BENCH_results.json", "write the machine-readable benchmark report here (empty = skip)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON file here (empty = no tracing)")
	eventsOut := flag.String("events", "", "write the raw telemetry event stream as JSONL here (empty = skip)")
	timelineOut := flag.String("timeline", "", "write the gauge timeline as CSV here (empty = skip)")
	maxSysMB := flag.Int("max-sys-mb", 0, "fail if the Go heap reserves more than this many MiB from the OS (0 = no ceiling)")
	flag.Parse()

	if *fig == "list" {
		listFigures()
		return
	}
	scale := experiments.FullScale()
	scale.Seed = *seed
	scale.Workers = *workers
	scale.SimWorkers = *simWorkers
	if *jobs > 0 {
		scale.Jobs = *jobs
	}
	if *replicas < 1 {
		*replicas = 1
	}
	// Fail fast on an unwritable -bench-out path: the report is written
	// after every figure has run, and discovering a bad path only then
	// throws the whole run away.
	if err := checkBenchOut(*benchOut); err != nil {
		fmt.Fprintf(os.Stderr, "dias-experiments: %v\nusage: -bench-out must name a file in a writable directory (or be empty to skip the report)\n", err)
		os.Exit(2)
	}
	exports := exportPaths{trace: *traceOut, events: *eventsOut, timeline: *timelineOut}
	if err := run(*fig, scale, *replicas, *benchOut, exports); err != nil {
		fmt.Fprintln(os.Stderr, "dias-experiments:", err)
		os.Exit(1)
	}
	if err := checkSysCeiling(*maxSysMB); err != nil {
		fmt.Fprintln(os.Stderr, "dias-experiments:", err)
		os.Exit(1)
	}
}

// checkSysCeiling asserts the process-lifetime memory high-water mark
// against -max-sys-mb. MemStats.Sys is what the runtime reserved from the
// OS — a monotone RSS proxy, so an earlier million-job spike still trips
// the ceiling even after the GC has collected the garbage. This is the
// scale-smoke memory-bounding gate: a per-job leak on the streaming path
// shows up here long before it OOMs anything.
func checkSysCeiling(maxMB int) error {
	if maxMB <= 0 {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sysMB := float64(ms.Sys) / (1 << 20)
	fmt.Fprintf(os.Stderr, "dias-experiments: memory high-water %.0f MiB (ceiling %d MiB)\n", sysMB, maxMB)
	if sysMB > float64(maxMB) {
		return fmt.Errorf("memory high-water %.0f MiB exceeds -max-sys-mb %d", sysMB, maxMB)
	}
	return nil
}

// exportPaths collects the telemetry export destinations; any non-empty
// path arms tracing.
type exportPaths struct {
	trace, events, timeline string
}

func (e exportPaths) armed() bool { return e.trace != "" || e.events != "" || e.timeline != "" }

// write exports the registry to every requested destination.
func (e exportPaths) write(reg *telemetry.Registry) error {
	type export struct {
		path  string
		label string
		fn    func(*os.File) error
	}
	for _, x := range []export{
		{e.trace, "trace", func(f *os.File) error { return reg.WriteChromeTrace(f) }},
		{e.events, "events", func(f *os.File) error { return reg.WriteEventsJSONL(f) }},
		{e.timeline, "timeline", func(f *os.File) error { return reg.WriteTimelineCSV(f) }},
	} {
		if x.path == "" {
			continue
		}
		f, err := os.Create(x.path)
		if err != nil {
			return fmt.Errorf("writing %s: %w", x.label, err)
		}
		if err := x.fn(f); err != nil {
			f.Close()
			return fmt.Errorf("writing %s: %w", x.label, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing %s: %w", x.label, err)
		}
		fmt.Fprintf(os.Stderr, "dias-experiments: wrote %s %s\n", x.label, x.path)
	}
	return nil
}

// listFigures prints the driver catalogue in run order.
func listFigures() {
	fmt.Println("Registered figures (run order under -fig all):")
	for _, d := range experiments.Drivers() {
		notes := ""
		if d.SkipInAll {
			notes = "  [not in 'all']"
		}
		fmt.Printf("  %-21s %s%s\n", d.Name, d.Description, notes)
	}
}

// checkBenchOut verifies the benchmark report destination is writable by
// creating and removing a probe file next to it, without touching any
// existing report.
func checkBenchOut(path string) error {
	if path == "" {
		return nil
	}
	if fi, err := os.Stat(path); err == nil {
		if fi.IsDir() {
			return fmt.Errorf("bench-out %q is a directory", path)
		}
		// The report overwrites an existing file in place; probe that
		// exact file, not just its directory.
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return fmt.Errorf("bench-out %q is not writable: %w", path, err)
		}
		f.Close()
		return nil
	}
	probe, err := os.CreateTemp(filepath.Dir(path), ".bench-out-probe-*")
	if err != nil {
		return fmt.Errorf("bench-out %q is not writable: %w", path, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return nil
}

// benchReport is the BENCH_results.json payload.
type benchReport struct {
	SchemaVersion     int            `json:"schema_version"`
	GeneratedAt       string         `json:"generated_at"`
	GitSHA            string         `json:"git_sha"`
	GoVersion         string         `json:"go_version"`
	Workers           int            `json:"workers"`
	SimWorkers        int            `json:"sim_workers"`
	Seeds             []int64        `json:"seeds"`
	JobsPerScenario   int            `json:"jobs_per_scenario"`
	TotalWallClockSec float64        `json:"total_wall_clock_sec"`
	Figures           []figureReport `json:"figures"`
}

type figureReport struct {
	Name         string  `json:"name"`
	WallClockSec float64 `json:"wall_clock_sec"`
	// Scenarios holds the per-scenario mean ± 95% CI aggregates across the
	// seed replicas, for figures that expose scenario grids (7-11, the
	// ablation and extension comparisons). Model-validation figures (4-6)
	// report wall-clock only.
	Scenarios []runner.Summary `json:"scenarios,omitempty"`
}

func run(fig string, scale experiments.Scale, replicas int, benchOut string, exports exportPaths) error {
	// -fig accepts a comma-separated selection; "all" anywhere in the list
	// wins.
	want := make(map[string]bool)
	for _, name := range strings.Split(fig, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	all := want["all"]
	delete(want, "all")
	// Fail fast on typos: every requested name must exist before anything
	// runs, so a bad entry cannot waste the valid figures' run time.
	var unknown []string
	for name := range want {
		if _, ok := experiments.Lookup(name); !ok {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("unknown figure(s) %q (see -fig list)", strings.Join(unknown, ","))
	}
	if !all && len(want) == 0 {
		return fmt.Errorf("no figure selected in %q", fig)
	}
	seeds := runner.Seeds(scale.Seed, replicas)
	var reg *telemetry.Registry
	if exports.armed() {
		reg = telemetry.NewRegistry(telemetry.Config{Seed: scale.Seed})
	}
	report := benchReport{
		SchemaVersion:   1,
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		GitSHA:          gitSHA(),
		GoVersion:       runtime.Version(),
		Workers:         runner.New(scale.Workers).Workers(),
		SimWorkers:      scale.SimWorkers,
		Seeds:           seeds,
		JobsPerScenario: scale.Jobs,
	}
	start := time.Now()
	for _, d := range experiments.Drivers() {
		if !all && !want[d.Name] {
			continue
		}
		if all && d.SkipInAll {
			continue
		}
		figStart := time.Now()
		sc0 := d.Scaled(scale)
		sc0.Seed = seeds[0]
		if reg != nil {
			// Only the first-seed run is traced; figure names namespace the
			// collectors so scenario names never collide across figures.
			sc0.Telemetry = reg.Namespace(d.Name)
		}
		first, err := d.Run(sc0)
		if err != nil {
			return fmt.Errorf("figure %s (seed %d): %w", d.Name, seeds[0], err)
		}
		fmt.Println(first.Text.String())
		fmt.Println()
		perSeed := [][]metrics.ScenarioResult{first.Scenarios}
		// Replicas beyond the first only feed the aggregates; figures
		// without a scenario grid (motivation, 4-6, table2) have nothing
		// to aggregate, so they run once regardless of -replicas. The
		// replica loop itself is serial (pool of one): each figure already
		// fans its own grid across every core.
		if len(first.Scenarios) > 0 && len(seeds) > 1 {
			rest, err := runner.Replicated(context.Background(), runner.New(1), seeds[1:],
				func(_ context.Context, sd int64) ([]metrics.ScenarioResult, error) {
					sc := d.Scaled(scale)
					sc.Seed = sd
					out, err := d.Run(sc)
					if err != nil {
						return nil, err
					}
					return out.Scenarios, nil
				})
			if err != nil {
				return fmt.Errorf("figure %s replicas: %w", d.Name, err)
			}
			perSeed = append(perSeed, rest...)
		}
		fr := figureReport{Name: d.Name, WallClockSec: time.Since(figStart).Seconds()}
		if len(first.Scenarios) > 0 {
			repSeeds := seeds[:len(perSeed)]
			sums, err := runner.SummarizeAll(repSeeds, perSeed)
			if err != nil {
				return fmt.Errorf("figure %s: aggregating replicas: %w", d.Name, err)
			}
			fr.Scenarios = sums
			if len(repSeeds) > 1 {
				printAggregates(d.Name, sums)
			}
		}
		report.Figures = append(report.Figures, fr)
	}
	report.TotalWallClockSec = time.Since(start).Seconds()
	if reg != nil {
		if err := exports.write(reg); err != nil {
			return err
		}
	}
	if benchOut != "" {
		if err := writeReport(benchOut, &report); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dias-experiments: wrote %s (%.1fs total)\n", benchOut, report.TotalWallClockSec)
	}
	return nil
}

// gitSHA stamps the report with the commit being measured.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// printAggregates renders the replica mean ± CI of each scenario's
// low/high-class response.
func printAggregates(name string, sums []runner.Summary) {
	fmt.Printf("figure %s replica aggregates (%d seeds, mean ± 95%% CI):\n", name, len(sums[0].Seeds))
	for _, s := range sums {
		fmt.Printf("  %-16s", s.Name)
		for _, c := range s.PerClass {
			fmt.Printf("  class%d %8.1f ± %5.1fs", c.Class, c.MeanResponseSec.Mean, c.MeanResponseSec.CI95)
		}
		fmt.Printf("  waste %.1f%%\n", s.ResourceWastePct.Mean)
	}
	fmt.Println()
}

func writeReport(path string, r *benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding benchmark report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing benchmark report: %w", err)
	}
	return nil
}
