// dias-experiments regenerates the paper's tables and figures.
//
//	dias-experiments [-fig 4|5|6|7|8|9|10|11|table2|ablations|extensions|
//	                       federation-scaleout|federation-hetero|all]
//	                 [-jobs N] [-seed S] [-workers W] [-replicas R]
//	                 [-bench-out BENCH_results.json]
//
// -fig also accepts a comma-separated list (e.g. -fig 7,federation-scaleout).
//
// Output is the textual form of each figure: baseline absolutes plus
// relative differences, exactly the quantities the paper plots. Every
// figure fans its independent simulation runs (scenario × policy × seed)
// across the worker pool; -replicas repeats each figure under consecutive
// seeds and reports mean ± 95% CI aggregates. The run also writes a
// machine-readable benchmark report (per-figure wall-clock, per-class
// latency/waste/energy, seed list, git SHA) so the perf trajectory is
// tracked across PRs; see README.md for the schema.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"dias/internal/experiments"
	"dias/internal/metrics"
	"dias/internal/runner"
)

func main() {
	fig := flag.String("fig", "all", "figure(s) to regenerate, comma-separated: motivation,4,5,6,7,8,9,10,11,table2,ablations,extensions,faults,elasticity,federation-scaleout,federation-hetero,federation-outage,all")
	jobs := flag.Int("jobs", 0, "arrivals per scenario (0 = full scale)")
	seed := flag.Int64("seed", 1, "experiment seed")
	workers := flag.Int("workers", 0, "concurrent simulation runs per figure (0 = one per CPU core)")
	replicas := flag.Int("replicas", 1, "seed replicas per figure (seeds seed..seed+R-1)")
	benchOut := flag.String("bench-out", "BENCH_results.json", "write the machine-readable benchmark report here (empty = skip)")
	flag.Parse()

	scale := experiments.FullScale()
	scale.Seed = *seed
	scale.Workers = *workers
	if *jobs > 0 {
		scale.Jobs = *jobs
	}
	if *replicas < 1 {
		*replicas = 1
	}
	// Fail fast on an unwritable -bench-out path: the report is written
	// after every figure has run, and discovering a bad path only then
	// throws the whole run away.
	if err := checkBenchOut(*benchOut); err != nil {
		fmt.Fprintf(os.Stderr, "dias-experiments: %v\nusage: -bench-out must name a file in a writable directory (or be empty to skip the report)\n", err)
		os.Exit(2)
	}
	if err := run(*fig, scale, *replicas, *benchOut); err != nil {
		fmt.Fprintln(os.Stderr, "dias-experiments:", err)
		os.Exit(1)
	}
}

// checkBenchOut verifies the benchmark report destination is writable by
// creating and removing a probe file next to it, without touching any
// existing report.
func checkBenchOut(path string) error {
	if path == "" {
		return nil
	}
	if fi, err := os.Stat(path); err == nil {
		if fi.IsDir() {
			return fmt.Errorf("bench-out %q is a directory", path)
		}
		// The report overwrites an existing file in place; probe that
		// exact file, not just its directory.
		f, err := os.OpenFile(path, os.O_WRONLY, 0)
		if err != nil {
			return fmt.Errorf("bench-out %q is not writable: %w", path, err)
		}
		f.Close()
		return nil
	}
	probe, err := os.CreateTemp(filepath.Dir(path), ".bench-out-probe-*")
	if err != nil {
		return fmt.Errorf("bench-out %q is not writable: %w", path, err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return nil
}

// benchReport is the BENCH_results.json payload.
type benchReport struct {
	SchemaVersion     int            `json:"schema_version"`
	GeneratedAt       string         `json:"generated_at"`
	GitSHA            string         `json:"git_sha"`
	GoVersion         string         `json:"go_version"`
	Workers           int            `json:"workers"`
	Seeds             []int64        `json:"seeds"`
	JobsPerScenario   int            `json:"jobs_per_scenario"`
	TotalWallClockSec float64        `json:"total_wall_clock_sec"`
	Figures           []figureReport `json:"figures"`
}

type figureReport struct {
	Name         string  `json:"name"`
	WallClockSec float64 `json:"wall_clock_sec"`
	// Scenarios holds the per-scenario mean ± 95% CI aggregates across the
	// seed replicas, for figures that expose scenario grids (7-11, the
	// ablation and extension comparisons). Model-validation figures (4-6)
	// report wall-clock only.
	Scenarios []runner.Summary `json:"scenarios,omitempty"`
}

// figureOutput is one figure's rendered text plus its scenario results
// (nil for figures without a scenario grid).
type figureOutput struct {
	text      fmt.Stringer
	scenarios []metrics.ScenarioResult
}

// comp flattens a comparison figure into its scenario results.
func comp(f *experiments.ComparisonFigure) []metrics.ScenarioResult {
	return append([]metrics.ScenarioResult{f.Baseline}, f.Others...)
}

// relabel suffixes scenario names so steps that bundle several sub-figures
// (8's variants, 11's budgets, the extension sets) stay unique by name in
// the benchmark report — name is the only identifier runner.Summary carries.
func relabel(suffix string, rs []metrics.ScenarioResult) []metrics.ScenarioResult {
	out := make([]metrics.ScenarioResult, len(rs))
	for i, s := range rs {
		s.Name += suffix
		out[i] = s
	}
	return out
}

// plain adapts a figure without a scenario grid to the step signature.
func plain[T fmt.Stringer](fn func(experiments.Scale) (T, error)) func(experiments.Scale) (figureOutput, error) {
	return func(sc experiments.Scale) (figureOutput, error) {
		r, err := fn(sc)
		return figureOutput{text: r}, err
	}
}

func run(fig string, scale experiments.Scale, replicas int, benchOut string) error {
	// -fig accepts a comma-separated selection; "all" anywhere in the list
	// wins.
	want := make(map[string]bool)
	for _, name := range strings.Split(fig, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	all := want["all"]
	delete(want, "all")
	type step struct {
		name string
		fn   func(experiments.Scale) (figureOutput, error)
	}
	steps := []step{
		{"motivation", plain(experiments.Motivation)},
		{"4", plain(experiments.Figure4)},
		{"5", plain(experiments.Figure5)},
		{"6", plain(experiments.Figure6)},
		{"7", func(sc experiments.Scale) (figureOutput, error) {
			r, err := experiments.Figure7(sc)
			if err != nil {
				return figureOutput{}, err
			}
			return figureOutput{text: r, scenarios: comp(r)}, nil
		}},
		{"8", func(sc experiments.Scale) (figureOutput, error) {
			var out multi
			var scens []metrics.ScenarioResult
			for _, v := range []experiments.Figure8Variant{
				experiments.Figure8EqualSizes, experiments.Figure8MoreHigh, experiments.Figure8HalfLoad,
			} {
				r, err := experiments.Figure8(v, sc)
				if err != nil {
					return figureOutput{}, err
				}
				out = append(out, r)
				scens = append(scens, relabel("-"+string(v), comp(r))...)
			}
			return figureOutput{text: out, scenarios: scens}, nil
		}},
		{"9", func(sc experiments.Scale) (figureOutput, error) {
			r, err := experiments.Figure9(sc)
			if err != nil {
				return figureOutput{}, err
			}
			return figureOutput{text: r, scenarios: comp(r)}, nil
		}},
		{"10", func(sc experiments.Scale) (figureOutput, error) {
			r, err := experiments.Figure10(graphScale(sc))
			if err != nil {
				return figureOutput{}, err
			}
			return figureOutput{text: r, scenarios: comp(r)}, nil
		}},
		{"11", func(sc experiments.Scale) (figureOutput, error) {
			r, err := experiments.Figure11(graphScale(sc))
			if err != nil {
				return figureOutput{}, err
			}
			scens := append([]metrics.ScenarioResult{r.Limited.Baseline, r.NPS},
				relabel("-limited", r.Limited.Others)...)
			scens = append(scens, relabel("-unlimited", r.Unlimited.Others)...)
			return figureOutput{text: r, scenarios: scens}, nil
		}},
		{"table2", func(sc experiments.Scale) (figureOutput, error) {
			r, err := experiments.Figure11(graphScale(sc))
			if err != nil {
				return figureOutput{}, err
			}
			return figureOutput{text: stringer(r.Table2())}, nil
		}},
		{"ablations", func(sc experiments.Scale) (figureOutput, error) {
			var out multi
			var scens []metrics.ScenarioResult
			st, err := experiments.AblationSprintTimeout(graphScale(sc))
			if err != nil {
				return figureOutput{}, err
			}
			out = append(out, st)
			scens = append(scens, comp(st)...)
			ml, err := experiments.AblationModelLevel(sc)
			if err != nil {
				return figureOutput{}, err
			}
			out = append(out, ml)
			dt, err := experiments.AblationDropTiming(sc)
			if err != nil {
				return figureOutput{}, err
			}
			out = append(out, stringer(fmt.Sprintf(
				"Ablation: early drop timing\n  full exec %.1fs, theta=0.5 exec %.1fs (%.0f%% saved)\n",
				dt.FullExecSec, dt.DroppedExecSec, 100*(1-dt.DroppedExecSec/dt.FullExecSec))))
			er, err := experiments.AblationEvictionResume(sc)
			if err != nil {
				return figureOutput{}, err
			}
			out = append(out, stringer(fmt.Sprintf(
				"Ablation: preemptive-repeat eviction\n  resource waste %.1f%% of machine time\n",
				er.ResourceWastePct)))
			scens = append(scens, er)
			return figureOutput{text: out, scenarios: scens}, nil
		}},
		{"faults", func(sc experiments.Scale) (figureOutput, error) {
			r, err := experiments.FaultTolerance(faultScale(sc))
			if err != nil {
				return figureOutput{}, err
			}
			return figureOutput{text: r, scenarios: r.Scenarios()}, nil
		}},
		{"elasticity", func(sc experiments.Scale) (figureOutput, error) {
			r, err := experiments.Elasticity(faultScale(sc))
			if err != nil {
				return figureOutput{}, err
			}
			return figureOutput{text: r, scenarios: r.Scenarios()}, nil
		}},
		{"federation-outage", func(sc experiments.Scale) (figureOutput, error) {
			r, err := experiments.FederationOutage(fedExpScale(sc))
			if err != nil {
				return figureOutput{}, err
			}
			return figureOutput{text: r, scenarios: r.Scenarios()}, nil
		}},
		{"federation-scaleout", func(sc experiments.Scale) (figureOutput, error) {
			r, err := experiments.FederationScaleOut(fedExpScale(sc))
			if err != nil {
				return figureOutput{}, err
			}
			return figureOutput{text: r, scenarios: r.Scenarios()}, nil
		}},
		{"federation-hetero", func(sc experiments.Scale) (figureOutput, error) {
			r, err := experiments.FederationHeterogeneous(fedExpScale(sc))
			if err != nil {
				return figureOutput{}, err
			}
			return figureOutput{text: r, scenarios: r.Scenarios()}, nil
		}},
		{"extensions", func(sc experiments.Scale) (figureOutput, error) {
			var out multi
			var scens []metrics.ScenarioResult
			b, err := experiments.ExtensionBursty(sc)
			if err != nil {
				return figureOutput{}, err
			}
			out = append(out, b)
			scens = append(scens, relabel("-poisson", comp(b.Poisson))...)
			scens = append(scens, relabel("-bursty", comp(b.Bursty))...)
			v, err := experiments.ExtensionVariableSizes(sc)
			if err != nil {
				return figureOutput{}, err
			}
			out = append(out, v)
			scens = append(scens, relabel("-varsize", comp(v))...)
			f, err := experiments.ExtensionFailures(sc)
			if err != nil {
				return figureOutput{}, err
			}
			out = append(out, f)
			scens = append(scens, relabel("-failures", comp(f))...)
			a, err := experiments.ExtensionAdaptive(sc)
			if err != nil {
				return figureOutput{}, err
			}
			out = append(out, a)
			return figureOutput{text: out, scenarios: scens}, nil
		}},
	}
	// Fail fast on typos: every requested name must exist before anything
	// runs, so a bad entry cannot waste the valid figures' run time.
	known := make(map[string]bool, len(steps))
	for _, s := range steps {
		known[s.name] = true
	}
	var unknown []string
	for name := range want {
		if !known[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("unknown figure(s) %q", strings.Join(unknown, ","))
	}
	if !all && len(want) == 0 {
		return fmt.Errorf("no figure selected in %q", fig)
	}
	seeds := runner.Seeds(scale.Seed, replicas)
	report := benchReport{
		SchemaVersion:   1,
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		GitSHA:          gitSHA(),
		GoVersion:       runtime.Version(),
		Workers:         runner.New(scale.Workers).Workers(),
		Seeds:           seeds,
		JobsPerScenario: scale.Jobs,
	}
	start := time.Now()
	for _, s := range steps {
		if !all && !want[s.name] {
			continue
		}
		// table2 duplicates figure 11's run; skip it under -fig all.
		if all && s.name == "table2" {
			continue
		}
		figStart := time.Now()
		sc0 := scale
		sc0.Seed = seeds[0]
		first, err := s.fn(sc0)
		if err != nil {
			return fmt.Errorf("figure %s (seed %d): %w", s.name, seeds[0], err)
		}
		fmt.Println(first.text.String())
		fmt.Println()
		perSeed := [][]metrics.ScenarioResult{first.scenarios}
		// Replicas beyond the first only feed the aggregates; figures
		// without a scenario grid (motivation, 4-6, table2) have nothing
		// to aggregate, so they run once regardless of -replicas. The
		// replica loop itself is serial (pool of one): each figure already
		// fans its own grid across every core.
		if len(first.scenarios) > 0 && len(seeds) > 1 {
			rest, err := runner.Replicated(context.Background(), runner.New(1), seeds[1:],
				func(_ context.Context, sd int64) ([]metrics.ScenarioResult, error) {
					sc := scale
					sc.Seed = sd
					out, err := s.fn(sc)
					if err != nil {
						return nil, err
					}
					return out.scenarios, nil
				})
			if err != nil {
				return fmt.Errorf("figure %s replicas: %w", s.name, err)
			}
			perSeed = append(perSeed, rest...)
		}
		fr := figureReport{Name: s.name, WallClockSec: time.Since(figStart).Seconds()}
		if len(first.scenarios) > 0 {
			repSeeds := seeds[:len(perSeed)]
			sums, err := runner.SummarizeAll(repSeeds, perSeed)
			if err != nil {
				return fmt.Errorf("figure %s: aggregating replicas: %w", s.name, err)
			}
			fr.Scenarios = sums
			if len(repSeeds) > 1 {
				printAggregates(s.name, sums)
			}
		}
		report.Figures = append(report.Figures, fr)
	}
	report.TotalWallClockSec = time.Since(start).Seconds()
	if benchOut != "" {
		if err := writeReport(benchOut, &report); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "dias-experiments: wrote %s (%.1fs total)\n", benchOut, report.TotalWallClockSec)
	}
	return nil
}

// graphScale caps arrivals for the graph figures, whose jobs are ~10x
// heavier per arrival.
func graphScale(sc experiments.Scale) experiments.Scale {
	if sc.Jobs > 300 {
		sc.Jobs = 300
	}
	return sc
}

// fedExpScale caps arrivals for the federation figures: their grids run
// dozens of whole-federation simulations per figure.
func fedExpScale(sc experiments.Scale) experiments.Scale {
	if sc.Jobs > 250 {
		sc.Jobs = 250
	}
	return sc
}

// faultScale caps arrivals for the fault/elasticity figures: their grids
// run up to 18 faulty whole-cluster simulations per figure.
func faultScale(sc experiments.Scale) experiments.Scale {
	if sc.Jobs > 300 {
		sc.Jobs = 300
	}
	return sc
}

// gitSHA stamps the report with the commit being measured.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// printAggregates renders the replica mean ± CI of each scenario's
// low/high-class response.
func printAggregates(name string, sums []runner.Summary) {
	fmt.Printf("figure %s replica aggregates (%d seeds, mean ± 95%% CI):\n", name, len(sums[0].Seeds))
	for _, s := range sums {
		fmt.Printf("  %-16s", s.Name)
		for _, c := range s.PerClass {
			fmt.Printf("  class%d %8.1f ± %5.1fs", c.Class, c.MeanResponseSec.Mean, c.MeanResponseSec.CI95)
		}
		fmt.Printf("  waste %.1f%%\n", s.ResourceWastePct.Mean)
	}
	fmt.Println()
}

func writeReport(path string, r *benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("encoding benchmark report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("writing benchmark report: %w", err)
	}
	return nil
}

// stringer adapts a plain string to fmt.Stringer.
type stringer string

func (s stringer) String() string { return string(s) }

// multi concatenates several results.
type multi []fmt.Stringer

func (m multi) String() string {
	out := ""
	for i, s := range m {
		if i > 0 {
			out += "\n"
		}
		out += s.String()
	}
	return out
}
