// dias-hypotheses runs the committed behavioral hypotheses and writes
// (or verifies) their FINDINGS files.
//
//	dias-hypotheses [-run all|ID[,ID...]] [-list] [-check]
//	                [-dir hypotheses] [-workers W]
//
// Default mode regenerates <dir>/<id>/FINDINGS.md for every selected
// hypothesis plus the <dir>/README.md index (index only when the full set
// runs, so a partial -run cannot write a partial index). -check runs the
// same grids but compares the regenerated content byte for byte against
// the committed files instead of writing; any drift — a flipped verdict,
// a shifted latency table — exits 1 with the offending paths. That makes
// the committed findings a CI regression surface: behavior changes must
// either be intentional (regenerate and review the diff) or they fail
// the lane.
//
// -run accepts full IDs (h2-token-bucket-mechanism) or the short hN
// prefix. Output is deterministic for a fixed module state: fixed seeds,
// order-preserving worker pool, no timestamps or environment in the
// rendered text.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dias/internal/hypotheses"
)

func main() {
	run := flag.String("run", "all", "hypotheses to run: 'all' or comma-separated IDs (full ID or hN prefix)")
	list := flag.Bool("list", false, "print the hypothesis catalogue and exit")
	check := flag.Bool("check", false, "verify committed findings instead of writing: re-run and byte-compare")
	dir := flag.String("dir", "hypotheses", "directory holding <id>/FINDINGS.md and README.md")
	workers := flag.Int("workers", 0, "concurrent simulation runs (0 = one per CPU core); does not affect output bytes")
	flag.Parse()

	specs := hypotheses.All()
	if *list {
		listSpecs(specs)
		return
	}
	selected, full, err := selectSpecs(specs, *run)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dias-hypotheses:", err)
		os.Exit(2)
	}
	if err := runAll(selected, full, *dir, *check, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "dias-hypotheses:", err)
		os.Exit(1)
	}
}

func listSpecs(specs []hypotheses.Spec) {
	fmt.Println("Registered hypotheses (run order under -run all):")
	for _, s := range specs {
		fmt.Printf("  %-34s [%s] %s\n", s.ID, s.Family, s.Title)
	}
}

// selectSpecs resolves -run into the spec subset, reporting whether the
// full set was selected (which gates index generation/verification).
func selectSpecs(specs []hypotheses.Spec, run string) ([]hypotheses.Spec, bool, error) {
	want := make(map[string]bool)
	for _, id := range strings.Split(run, ",") {
		if id = strings.TrimSpace(id); id != "" {
			want[id] = true
		}
	}
	if want["all"] {
		return specs, true, nil
	}
	var out []hypotheses.Spec
	for _, s := range specs {
		short := s.ID[:strings.IndexByte(s.ID, '-')]
		if want[s.ID] || want[short] {
			out = append(out, s)
			delete(want, s.ID)
			delete(want, short)
		}
	}
	if len(want) > 0 {
		unknown := make([]string, 0, len(want))
		for id := range want {
			unknown = append(unknown, id)
		}
		sort.Strings(unknown)
		return nil, false, fmt.Errorf("unknown hypothesis id(s) %q (see -list)", strings.Join(unknown, ","))
	}
	if len(out) == 0 {
		return nil, false, fmt.Errorf("no hypothesis selected in %q", run)
	}
	return out, len(out) == len(specs), nil
}

func runAll(specs []hypotheses.Spec, full bool, dir string, check bool, workers int) error {
	opts := hypotheses.Options{Workers: workers}
	results := make([]*hypotheses.Result, 0, len(specs))
	var stale []string
	for _, spec := range specs {
		res, err := hypotheses.Run(context.Background(), spec, opts)
		if err != nil {
			return err
		}
		results = append(results, res)
		path := filepath.Join(dir, spec.ID, "FINDINGS.md")
		content := hypotheses.Render(res)
		if check {
			if same, err := matches(path, content); err != nil {
				return err
			} else if !same {
				stale = append(stale, path)
			}
		} else {
			if err := writeFile(path, content); err != nil {
				return err
			}
		}
		fmt.Printf("%-34s %s\n", spec.ID, res.Verdict)
	}
	if full {
		path := filepath.Join(dir, "README.md")
		content := hypotheses.RenderIndex(results)
		if check {
			if same, err := matches(path, content); err != nil {
				return err
			} else if !same {
				stale = append(stale, path)
			}
		} else {
			if err := writeFile(path, content); err != nil {
				return err
			}
		}
	}
	if len(stale) > 0 {
		return fmt.Errorf("findings drifted from committed state:\n  %s\nregenerate with 'make hypotheses' and review the diff",
			strings.Join(stale, "\n  "))
	}
	if check {
		fmt.Println("findings match committed state")
	}
	return nil
}

// matches reports whether path's content equals want byte for byte. A
// missing file is a mismatch, not an error: -check's job is exactly to
// catch findings that were never (re)generated.
func matches(path, want string) (bool, error) {
	got, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return string(got) == want, nil
}

func writeFile(path, content string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(content), 0o644)
}
