package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dias/internal/hypotheses"
)

func TestSelectSpecs(t *testing.T) {
	specs := hypotheses.All()
	all, full, err := selectSpecs(specs, "all")
	if err != nil || !full || len(all) != len(specs) {
		t.Fatalf("all: got %d specs, full=%v, err=%v", len(all), full, err)
	}
	// Short prefix and full ID both resolve; selection keeps spec order.
	sel, full, err := selectSpecs(specs, "h2,"+specs[0].ID)
	if err != nil || full {
		t.Fatalf("subset: full=%v, err=%v", full, err)
	}
	if len(sel) != 2 || sel[0].ID != specs[0].ID || !strings.HasPrefix(sel[1].ID, "h2") {
		t.Fatalf("subset resolved to %v", ids(sel))
	}
	// Selecting every ID individually counts as the full set.
	var everyID []string
	for _, s := range specs {
		everyID = append(everyID, s.ID)
	}
	if _, full, err = selectSpecs(specs, strings.Join(everyID, ",")); err != nil || !full {
		t.Fatalf("enumerated full set: full=%v, err=%v", full, err)
	}
	if _, _, err = selectSpecs(specs, "h9"); err == nil {
		t.Fatal("expected error for unknown id")
	}
	if _, _, err = selectSpecs(specs, " , "); err == nil {
		t.Fatal("expected error for empty selection")
	}
}

func ids(specs []hypotheses.Spec) []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.ID
	}
	return out
}

func TestMatches(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "FINDINGS.md")
	// Missing file is a mismatch, not an error.
	same, err := matches(path, "content")
	if err != nil || same {
		t.Fatalf("missing file: same=%v err=%v", same, err)
	}
	if err := os.WriteFile(path, []byte("content"), 0o644); err != nil {
		t.Fatal(err)
	}
	if same, err = matches(path, "content"); err != nil || !same {
		t.Fatalf("identical file: same=%v err=%v", same, err)
	}
	if same, err = matches(path, "drifted"); err != nil || same {
		t.Fatalf("drifted file: same=%v err=%v", same, err)
	}
}
