// dias-live demonstrates the §3.3 prototype runtime against real OS
// processes: jobs are commands launched with os/exec, evicted with SIGKILL
// under the preemptive baseline, and completion is relayed from monitor to
// dispatcher over a channel.
//
//	dias-live            # preemptive demo with /bin/sh sleep jobs
//	dias-live -np        # non-preemptive (DiAS-style, no evictions)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dias/internal/core/live"
)

func main() {
	np := flag.Bool("np", false, "non-preemptive (no evictions)")
	flag.Parse()
	if err := run(!*np); err != nil {
		fmt.Fprintln(os.Stderr, "dias-live:", err)
		os.Exit(1)
	}
}

func run(preemptive bool) error {
	runner, err := live.NewRunner(live.Config{
		Classes:    2,
		Preemptive: preemptive,
		OnComplete: func(rec live.Record) {
			status := "ok"
			if rec.Err != nil {
				status = rec.Err.Error()
			}
			fmt.Printf("%-10s class=%d evictions=%d latency=%v status=%s\n",
				rec.Name, rec.Class, rec.Evictions,
				rec.FinishedAt.Sub(rec.SubmittedAt).Round(time.Millisecond), status)
		},
	})
	if err != nil {
		return err
	}
	defer runner.Stop()

	// Install the handler before the first Submit so no window exists in
	// which a SIGTERM could terminate the demo around runner.Stop and leak
	// an already-started child.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)

	mode := "preemptive (P baseline: low-priority jobs get SIGKILLed)"
	if !preemptive {
		mode = "non-preemptive (DiAS mode: no evictions)"
	}
	fmt.Println("dias-live:", mode)

	sleep := func(name string, class int, dur string) live.Job {
		return live.Job{Name: name, Class: class, Path: "/bin/sh", Args: []string{"-c", "sleep " + dur}}
	}
	// A long low-priority job, then a burst of high-priority ones.
	if err := runner.Submit(sleep("low-batch", 0, "2")); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := runner.Submit(sleep(fmt.Sprintf("high-%d", i), 1, "0.2")); err != nil {
			return err
		}
	}

	// Propagate shutdown cleanly on every path: a drain finishes normally,
	// while Ctrl-C / SIGTERM stops the runner (SIGKILLing the live job,
	// discarding queued ones) so no child processes outlive the demo.
	done := make(chan struct{})
	go func() {
		runner.Wait()
		close(done)
	}()
	select {
	case <-done:
		fmt.Println("all jobs drained")
		return nil
	case sig := <-sigCh:
		runner.Stop()
		return fmt.Errorf("interrupted by %v; live job killed, queue discarded", sig)
	}
}
