// dias-live demonstrates the §3.3 prototype runtime against real OS
// processes: jobs are commands launched with os/exec, evicted with SIGKILL
// under the preemptive baseline, and completion is relayed from monitor to
// dispatcher over a channel.
//
//	dias-live            # preemptive demo with /bin/sh sleep jobs
//	dias-live -np        # non-preemptive (DiAS-style, no evictions)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dias/internal/core/live"
)

func main() {
	np := flag.Bool("np", false, "non-preemptive (no evictions)")
	flag.Parse()
	if err := run(!*np); err != nil {
		fmt.Fprintln(os.Stderr, "dias-live:", err)
		os.Exit(1)
	}
}

func run(preemptive bool) error {
	runner, err := live.NewRunner(live.Config{
		Classes:    2,
		Preemptive: preemptive,
		OnComplete: func(rec live.Record) {
			status := "ok"
			if rec.Err != nil {
				status = rec.Err.Error()
			}
			fmt.Printf("%-10s class=%d evictions=%d latency=%v status=%s\n",
				rec.Name, rec.Class, rec.Evictions,
				rec.FinishedAt.Sub(rec.SubmittedAt).Round(time.Millisecond), status)
		},
	})
	if err != nil {
		return err
	}
	defer runner.Stop()

	mode := "preemptive (P baseline: low-priority jobs get SIGKILLed)"
	if !preemptive {
		mode = "non-preemptive (DiAS mode: no evictions)"
	}
	fmt.Println("dias-live:", mode)

	sleep := func(name string, class int, dur string) live.Job {
		return live.Job{Name: name, Class: class, Path: "/bin/sh", Args: []string{"-c", "sleep " + dur}}
	}
	// A long low-priority job, then a burst of high-priority ones.
	if err := runner.Submit(sleep("low-batch", 0, "2")); err != nil {
		return err
	}
	time.Sleep(300 * time.Millisecond)
	for i := 0; i < 3; i++ {
		if err := runner.Submit(sleep(fmt.Sprintf("high-%d", i), 1, "0.2")); err != nil {
			return err
		}
	}
	runner.Wait()
	fmt.Println("all jobs drained")
	return nil
}
