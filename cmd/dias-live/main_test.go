package main

import (
	"testing"

	"dias/internal/core/live"
)

// TestRunDrainsCleanly smoke-tests the demo's full shutdown path: submit,
// drain, Stop — no goroutine or child-process leak can keep run from
// returning. Both modes exercise the dispatcher/monitor relay end to end.
func TestRunDrainsCleanly(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns multi-second sleep processes")
	}
	for _, preemptive := range []bool{true, false} {
		if err := run(preemptive); err != nil {
			t.Fatalf("run(preemptive=%v): %v", preemptive, err)
		}
	}
}

// TestRunnerConfigValidation pins the live.Config contract the demo relies
// on: class counts must be positive and jobs must name a class in range
// with a non-empty command path.
func TestRunnerConfigValidation(t *testing.T) {
	if _, err := live.NewRunner(live.Config{}); err == nil {
		t.Fatal("zero-class config accepted")
	}
	if _, err := live.NewRunner(live.Config{Classes: -1}); err == nil {
		t.Fatal("negative class count accepted")
	}
	r, err := live.NewRunner(live.Config{Classes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.Submit(live.Job{Name: "bad-class", Class: 2, Path: "/bin/true"}); err == nil {
		t.Fatal("out-of-range class accepted")
	}
	if err := r.Submit(live.Job{Name: "no-path", Class: 0}); err == nil {
		t.Fatal("empty command path accepted")
	}
}
