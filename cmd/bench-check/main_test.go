package main

import (
	"strings"
	"testing"
)

func est(mean, ci float64) estimate { return estimate{Mean: mean, CI95: ci} }

func baseReport() *report {
	return &report{
		SchemaVersion: 1,
		GitSHA:        "base",
		Figures: []figure{{
			Name:         "7",
			WallClockSec: 2.0,
			Scenarios: []scenario{{
				Name:             "P",
				ResourceWastePct: est(10, 0.5),
				EnergyJoules:     est(1e6, 1e4),
				PerClass: []classRow{
					{Class: 0, MeanResponseSec: est(100, 2), P95ResponseSec: est(300, 5)},
					{Class: 1, MeanResponseSec: est(20, 1), P95ResponseSec: est(40, 2)},
				},
			}},
		}, {
			Name:         "tiny",
			WallClockSec: 0.1,
		}},
	}
}

func TestCompareClean(t *testing.T) {
	v, notes := compare(baseReport(), baseReport(), defaultThresholds())
	if len(v) != 0 {
		t.Fatalf("identical reports produced violations: %v", v)
	}
	if len(notes) != 0 {
		t.Fatalf("identical reports produced notes: %v", notes)
	}
}

func TestCompareWallClockRegression(t *testing.T) {
	cand := baseReport()
	cand.Figures[0].WallClockSec = 2.6 // 30% > 25% threshold
	v, _ := compare(baseReport(), cand, defaultThresholds())
	if len(v) != 1 || !strings.Contains(v[0], "wall-clock") {
		t.Fatalf("wall regression not caught: %v", v)
	}
	// Below the threshold passes.
	cand.Figures[0].WallClockSec = 2.4
	if v, _ := compare(baseReport(), cand, defaultThresholds()); len(v) != 0 {
		t.Fatalf("within-threshold wall flagged: %v", v)
	}
	// The wall check can be disabled.
	cand.Figures[0].WallClockSec = 100
	if v, _ := compare(baseReport(), cand, noWallThresholds()); len(v) != 0 {
		t.Fatalf("disabled wall check still flagged: %v", v)
	}
}

func TestCompareIgnoresFastFigureWall(t *testing.T) {
	cand := baseReport()
	cand.Figures[1].WallClockSec = 10 // 100x but baseline below -min-wall-sec
	if v, _ := compare(baseReport(), cand, defaultThresholds()); len(v) != 0 {
		t.Fatalf("sub-floor figure wall flagged: %v", v)
	}
}

func TestCompareMeanDrift(t *testing.T) {
	cand := baseReport()
	// Class 0 mean moves 100 -> 110; combined CI bound is 2+2=4.
	cand.Figures[0].Scenarios[0].PerClass[0].MeanResponseSec = est(110, 2)
	v, _ := compare(baseReport(), cand, defaultThresholds())
	if len(v) != 1 || !strings.Contains(v[0], "class 0 mean_response_sec") {
		t.Fatalf("mean drift not caught: %v", v)
	}
	// Drift inside the CI bound passes.
	cand.Figures[0].Scenarios[0].PerClass[0].MeanResponseSec = est(103, 2)
	if v, _ := compare(baseReport(), cand, defaultThresholds()); len(v) != 0 {
		t.Fatalf("within-CI drift flagged: %v", v)
	}
}

func TestCompareEnergyAndWasteDrift(t *testing.T) {
	cand := baseReport()
	cand.Figures[0].Scenarios[0].EnergyJoules = est(1.2e6, 1e4)
	cand.Figures[0].Scenarios[0].ResourceWastePct = est(20, 0.5)
	v, _ := compare(baseReport(), cand, defaultThresholds())
	if len(v) != 2 {
		t.Fatalf("want 2 violations (energy + waste), got: %v", v)
	}
}

func TestCompareNewFigureAndScenarioAreNotes(t *testing.T) {
	cand := baseReport()
	cand.Figures = append(cand.Figures, figure{Name: "brand-new", WallClockSec: 9})
	cand.Figures[0].Scenarios = append(cand.Figures[0].Scenarios, scenario{Name: "NP"})
	v, notes := compare(baseReport(), cand, defaultThresholds())
	if len(v) != 0 {
		t.Fatalf("additions flagged as violations: %v", v)
	}
	if len(notes) != 2 {
		t.Fatalf("want 2 notes, got: %v", notes)
	}
}

func defaultThresholds() thresholds {
	return thresholds{maxWallRegress: 0.25, minWallSec: 0.5, checkWall: true, maxMeanDrift: 0.10}
}

func noWallThresholds() thresholds {
	th := defaultThresholds()
	th.checkWall = false
	return th
}

func TestCompareRelativeDriftCapCatchesWideCI(t *testing.T) {
	// With two replicates the t-based CI is enormous; the relative cap
	// must still catch a 50% drift hiding inside it.
	base := baseReport()
	base.Figures[0].Scenarios[0].PerClass[0].MeanResponseSec = est(100, 90)
	cand := baseReport()
	cand.Figures[0].Scenarios[0].PerClass[0].MeanResponseSec = est(150, 90)
	v, _ := compare(base, cand, defaultThresholds())
	if len(v) != 1 || !strings.Contains(v[0], "cap") {
		t.Fatalf("relative drift cap missed a 50%% drift: %v", v)
	}
	// The cap can be disabled.
	th := defaultThresholds()
	th.maxMeanDrift = 0
	if v, _ := compare(base, cand, th); len(v) != 0 {
		t.Fatalf("disabled drift cap still flagged: %v", v)
	}
}

func TestCompareDroppedFigureAndScenarioAreNotes(t *testing.T) {
	cand := baseReport()
	cand.Figures = cand.Figures[:1]          // drop "tiny"
	cand.Figures[0].Scenarios = []scenario{} // drop "P"
	v, notes := compare(baseReport(), cand, defaultThresholds())
	if len(v) != 0 {
		t.Fatalf("drops flagged as violations: %v", v)
	}
	if len(notes) != 2 {
		t.Fatalf("want 2 drop notes, got: %v", notes)
	}
	for _, n := range notes {
		if !strings.Contains(n, "baseline but not the candidate") {
			t.Fatalf("unexpected note: %q", n)
		}
	}
}

func TestCompareFaultMetricDrift(t *testing.T) {
	cand := baseReport()
	cand.Figures[0].Scenarios[0].FailedJobs = est(5, 0) // baseline 0
	cand.Figures[0].Scenarios[0].MeanPoweredNodes = est(12, 0)
	v, _ := compare(baseReport(), cand, defaultThresholds())
	if len(v) != 2 {
		t.Fatalf("want 2 violations (failed_jobs + mean_powered_nodes), got: %v", v)
	}
}
