// bench-check is the CI bench-regression gate: it compares a freshly
// generated BENCH_results.json against the committed baseline and fails
// (exit 1) when the candidate regresses.
//
//	bench-check [-baseline docs/bench-baseline.json]
//	            [-candidate BENCH_results.json]
//	            [-max-wall-regress 0.25] [-min-wall-sec 0.5]
//	            [-check-wall] [-v]
//
// Two kinds of violation are reported:
//
//   - Wall-clock: a figure present in both reports whose baseline
//     wall-clock is at least -min-wall-sec slowed down by more than
//     -max-wall-regress (relative). Wall-clock is machine-dependent, so
//     this check only means something when baseline and candidate come
//     from comparable machines; disable it with -check-wall=false.
//   - Figure means: a scenario/class mean response (or scenario
//     resource-waste / energy) that moved beyond the two runs' combined
//     95% confidence intervals, or by more than -max-mean-drift relative
//     to the baseline. The simulation is deterministic per seed, so with
//     unchanged code the means match bit-for-bit; the relative cap
//     matters because at two replicates the t-based CI bounds are wide
//     (t(1) = 12.7) and would wave real drift through. A violation means
//     the PR changed simulation results and must either be fixed or
//     regenerate the committed baseline (see docs/BENCHMARKING.md).
//
// Figures or scenarios present on only one side are reported as notes,
// not violations, so adding a new figure does not break the gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
)

// The structs mirror the BENCH_results.json schema (schema_version 1),
// tolerating unknown fields.
type report struct {
	SchemaVersion int      `json:"schema_version"`
	GitSHA        string   `json:"git_sha"`
	Figures       []figure `json:"figures"`
}

type figure struct {
	Name         string     `json:"name"`
	WallClockSec float64    `json:"wall_clock_sec"`
	Scenarios    []scenario `json:"scenarios"`
}

type scenario struct {
	Name             string     `json:"name"`
	PerClass         []classRow `json:"per_class"`
	ResourceWastePct estimate   `json:"resource_waste_pct"`
	EnergyJoules     estimate   `json:"energy_joules"`
	FailureWastePct  estimate   `json:"failure_waste_pct"`
	FailedJobs       estimate   `json:"failed_jobs"`
	TasksRetried     estimate   `json:"tasks_retried"`
	MeanPoweredNodes estimate   `json:"mean_powered_nodes"`
	// peak_in_flight_jobs is deterministic and gated; sim_jobs_per_wall_sec
	// is machine-dependent wall-clock throughput and deliberately NOT read
	// here — trending only, never a regression gate.
	PeakInFlightJobs estimate `json:"peak_in_flight_jobs"`
}

type classRow struct {
	Class           int      `json:"class"`
	MeanResponseSec estimate `json:"mean_response_sec"`
	P95ResponseSec  estimate `json:"p95_response_sec"`
}

type estimate struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
}

func main() {
	baseline := flag.String("baseline", "docs/bench-baseline.json", "committed baseline report")
	candidate := flag.String("candidate", "BENCH_results.json", "freshly generated report")
	maxWall := flag.Float64("max-wall-regress", 0.25, "maximum relative wall-clock regression per figure")
	minWall := flag.Float64("min-wall-sec", 0.5, "ignore wall-clock of figures faster than this in the baseline")
	checkWall := flag.Bool("check-wall", true, "enable the wall-clock regression check")
	maxDrift := flag.Float64("max-mean-drift", 0.10, "maximum relative drift of any figure mean (0 disables)")
	verbose := flag.Bool("v", false, "print every comparison, not just violations")
	flag.Parse()

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-check:", err)
		os.Exit(2)
	}
	cand, err := load(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-check:", err)
		os.Exit(2)
	}
	violations, notes := compare(base, cand, thresholds{
		maxWallRegress: *maxWall,
		minWallSec:     *minWall,
		checkWall:      *checkWall,
		maxMeanDrift:   *maxDrift,
	})
	if *verbose || len(violations) > 0 {
		for _, n := range notes {
			fmt.Println("note:", n)
		}
	}
	for _, v := range violations {
		fmt.Println("VIOLATION:", v)
	}
	if len(violations) > 0 {
		fmt.Printf("bench-check: %d violation(s) against %s (baseline sha %s)\n",
			len(violations), *baseline, base.GitSHA)
		os.Exit(1)
	}
	fmt.Printf("bench-check: ok (%d figures compared against %s)\n", compared(base, cand), *baseline)
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if r.SchemaVersion != 1 {
		return nil, fmt.Errorf("%s: unsupported schema_version %d", path, r.SchemaVersion)
	}
	return &r, nil
}

// compared counts figures present in both reports.
func compared(base, cand *report) int {
	names := map[string]bool{}
	for _, f := range base.Figures {
		names[f.Name] = true
	}
	n := 0
	for _, f := range cand.Figures {
		if names[f.Name] {
			n++
		}
	}
	return n
}

// thresholds bundles the gate's knobs.
type thresholds struct {
	maxWallRegress float64
	minWallSec     float64
	checkWall      bool
	maxMeanDrift   float64
}

// compare returns the violations and informational notes of candidate vs
// baseline.
func compare(base, cand *report, th thresholds) (violations, notes []string) {
	baseFigs := map[string]figure{}
	for _, f := range base.Figures {
		baseFigs[f.Name] = f
	}
	candFigs := map[string]bool{}
	for _, f := range cand.Figures {
		candFigs[f.Name] = true
	}
	for _, bf := range base.Figures {
		if !candFigs[bf.Name] {
			notes = append(notes, fmt.Sprintf(
				"figure %s is in the baseline but not the candidate (dropped from the smoke set?)", bf.Name))
		}
	}
	for _, cf := range cand.Figures {
		bf, ok := baseFigs[cf.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("figure %s has no baseline (new figure?)", cf.Name))
			continue
		}
		if th.checkWall && bf.WallClockSec >= th.minWallSec {
			if cf.WallClockSec > bf.WallClockSec*(1+th.maxWallRegress) {
				violations = append(violations, fmt.Sprintf(
					"figure %s wall-clock %.2fs exceeds baseline %.2fs by more than %.0f%%",
					cf.Name, cf.WallClockSec, bf.WallClockSec, 100*th.maxWallRegress))
			}
		}
		violations = append(violations, compareScenarios(cf.Name, bf.Scenarios, cf.Scenarios, th, &notes)...)
	}
	return violations, notes
}

// compareScenarios flags scenario means that moved beyond the combined CI
// half-widths of the two runs (plus a tiny absolute epsilon for float
// formatting noise) or beyond the relative drift cap.
func compareScenarios(fig string, base, cand []scenario, th thresholds, notes *[]string) []string {
	var out []string
	baseByName := map[string]scenario{}
	for _, s := range base {
		baseByName[s.Name] = s
	}
	candByName := map[string]bool{}
	for _, s := range cand {
		candByName[s.Name] = true
	}
	for _, bs := range base {
		if !candByName[bs.Name] {
			*notes = append(*notes, fmt.Sprintf(
				"figure %s scenario %s is in the baseline but not the candidate", fig, bs.Name))
		}
	}
	for _, cs := range cand {
		bs, ok := baseByName[cs.Name]
		if !ok {
			*notes = append(*notes, fmt.Sprintf("figure %s scenario %s has no baseline", fig, cs.Name))
			continue
		}
		check := func(what string, b, c estimate) {
			drift := math.Abs(c.Mean - b.Mean)
			ciBound := b.CI95 + c.CI95 + 1e-9
			switch {
			case drift > ciBound:
				out = append(out, fmt.Sprintf(
					"figure %s scenario %s: %s drifted %.4g -> %.4g (|Δ|=%.4g beyond CI bound %.4g)",
					fig, cs.Name, what, b.Mean, c.Mean, drift, ciBound))
			case th.maxMeanDrift > 0 && drift > th.maxMeanDrift*math.Abs(b.Mean) && math.Abs(b.Mean) > 1e-9:
				out = append(out, fmt.Sprintf(
					"figure %s scenario %s: %s drifted %.4g -> %.4g (%.1f%% beyond the %.0f%% cap)",
					fig, cs.Name, what, b.Mean, c.Mean, 100*drift/math.Abs(b.Mean), 100*th.maxMeanDrift))
			}
		}
		check("resource_waste_pct", bs.ResourceWastePct, cs.ResourceWastePct)
		check("energy_joules", bs.EnergyJoules, cs.EnergyJoules)
		check("failure_waste_pct", bs.FailureWastePct, cs.FailureWastePct)
		check("failed_jobs", bs.FailedJobs, cs.FailedJobs)
		check("tasks_retried", bs.TasksRetried, cs.TasksRetried)
		check("mean_powered_nodes", bs.MeanPoweredNodes, cs.MeanPoweredNodes)
		check("peak_in_flight_jobs", bs.PeakInFlightJobs, cs.PeakInFlightJobs)
		candClasses := map[int]classRow{}
		for _, c := range cs.PerClass {
			candClasses[c.Class] = c
		}
		for _, b := range bs.PerClass {
			c, ok := candClasses[b.Class]
			if !ok {
				continue
			}
			check(fmt.Sprintf("class %d mean_response_sec", b.Class), b.MeanResponseSec, c.MeanResponseSec)
			check(fmt.Sprintf("class %d p95_response_sec", b.Class), b.P95ResponseSec, c.P95ResponseSec)
		}
	}
	return out
}
