// dias-trace summarizes a telemetry event stream exported by
// dias-experiments -events (or any telemetry.WriteEventsJSONL output).
//
//	dias-trace -events events.jsonl [-top K]
//
// For every run in the stream it reports the event-kind counts, per-class
// span statistics (queue / execution / response, mean and max over the
// sampled jobs), and the top-K slowest jobs with their per-stage critical
// path: the engine executes one job at a time per member, so a job's stage
// sequence — including setup and shuffle gaps — is its execution timeline.
package main

import (
	"flag"
	"fmt"
	"os"

	"dias/internal/telemetry"
)

func main() {
	events := flag.String("events", "", "telemetry event stream (JSONL, from dias-experiments -events)")
	top := flag.Int("top", 3, "slowest jobs to detail per run")
	flag.Parse()

	if *events == "" {
		fmt.Fprintln(os.Stderr, "dias-trace: -events is required (export one with dias-experiments -events)")
		os.Exit(2)
	}
	if err := run(*events, *top); err != nil {
		fmt.Fprintln(os.Stderr, "dias-trace:", err)
		os.Exit(1)
	}
}

func run(path string, top int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	evs, err := telemetry.ReadEventsJSONL(f)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		return fmt.Errorf("%s holds no events", path)
	}
	fmt.Print(telemetry.Render(telemetry.Summarize(evs, top)))
	return nil
}
