package cluster

import "testing"

func TestAcquireMatchingPrefersMatchingNode(t *testing.T) {
	_, c := newFailTestCluster(t, 3, 2)
	if got := c.Config().Nodes; got != 3 {
		t.Fatalf("config nodes %d", got)
	}
	s, ok := c.AcquireMatching(func(node int) bool { return node == 2 })
	if !ok || s.Node != 2 {
		t.Fatalf("got slot %+v ok=%v, want node 2", s, ok)
	}
	// Exhaust node 2, then matching must fail while plain Acquire works.
	s2, ok := c.AcquireMatching(func(node int) bool { return node == 2 })
	if !ok || s2.Node != 2 {
		t.Fatalf("second node-2 slot: %+v ok=%v", s2, ok)
	}
	if _, ok := c.AcquireMatching(func(node int) bool { return node == 2 }); ok {
		t.Fatal("matched a slot on a fully busy node")
	}
	if _, ok := c.Acquire(); !ok {
		t.Fatal("plain acquire failed with free slots remaining")
	}
	c.Release(s)
	if got, ok := c.AcquireMatching(func(node int) bool { return node == 2 }); !ok || got != s {
		t.Fatal("released slot not re-acquirable by matching")
	}
}

func TestAcquireMatchingSkipsDownNodes(t *testing.T) {
	_, c := newFailTestCluster(t, 2, 1)
	if err := c.FailNode(1); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.AcquireMatching(func(node int) bool { return node == 1 }); ok {
		t.Fatal("matched a slot on a down node")
	}
}
