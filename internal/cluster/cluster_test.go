package cluster

import (
	"math"
	"testing"

	"dias/internal/simtime"
)

func newTestCluster(t *testing.T, sim *simtime.Simulation) *Cluster {
	t.Helper()
	c, err := New(sim, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Nodes != 10 || cfg.CoresPerNode != 2 {
		t.Fatalf("default cluster %d nodes x %d cores, want 10x2", cfg.Nodes, cfg.CoresPerNode)
	}
	if cfg.BaseFreqMHz != 800 || cfg.SprintFreqMHz != 2400 {
		t.Fatalf("default DVFS %g->%g, want 800->2400", cfg.BaseFreqMHz, cfg.SprintFreqMHz)
	}
	if cfg.BusyWatts != 180 || cfg.SprintWatts != 270 {
		t.Fatalf("default power %g->%g, want 180->270", cfg.BusyWatts, cfg.SprintWatts)
	}
}

func TestConfigValidation(t *testing.T) {
	sim := simtime.New()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }},
		{"zero cores", func(c *Config) { c.CoresPerNode = 0 }},
		{"speedup below 1", func(c *Config) { c.SprintSpeedup = 0.5 }},
		{"sprint watts below busy", func(c *Config) { c.SprintWatts = 10 }},
		{"sprint freq below base", func(c *Config) { c.SprintFreqMHz = 100 }},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		if _, err := New(sim, cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil simulation: no error")
	}
}

func TestAcquireRelease(t *testing.T) {
	sim := simtime.New()
	c := newTestCluster(t, sim)
	if c.Slots() != 20 || c.FreeSlots() != 20 {
		t.Fatalf("slots = %d free = %d", c.Slots(), c.FreeSlots())
	}
	var held []*Slot
	for i := 0; i < 20; i++ {
		s, ok := c.Acquire()
		if !ok {
			t.Fatalf("Acquire %d failed", i)
		}
		held = append(held, s)
	}
	if _, ok := c.Acquire(); ok {
		t.Fatal("Acquire succeeded with no free slots")
	}
	if c.BusySlots() != 20 || c.Utilization() != 1 {
		t.Fatalf("busy = %d util = %g", c.BusySlots(), c.Utilization())
	}
	for _, s := range held {
		c.Release(s)
	}
	if c.FreeSlots() != 20 {
		t.Fatalf("free = %d after releasing all", c.FreeSlots())
	}
}

func TestAcquireSpreadsAcrossNodes(t *testing.T) {
	sim := simtime.New()
	c := newTestCluster(t, sim)
	s0, _ := c.Acquire()
	s1, _ := c.Acquire()
	s2, _ := c.Acquire()
	// With 2 cores per node, the first three acquisitions must touch at
	// least two distinct nodes.
	nodes := map[int]bool{s0.Node: true, s1.Node: true, s2.Node: true}
	if len(nodes) < 2 {
		t.Fatalf("first three slots all on node set %v", nodes)
	}
}

func TestDoubleReleasePanics(t *testing.T) {
	sim := simtime.New()
	c := newTestCluster(t, sim)
	s, _ := c.Acquire()
	c.Release(s)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	c.Release(s)
}

func TestSpeedAndFrequency(t *testing.T) {
	sim := simtime.New()
	c := newTestCluster(t, sim)
	if c.Speed() != 1 || c.FrequencyMHz() != 800 || c.Sprinting() {
		t.Fatal("unexpected initial DVFS state")
	}
	c.SetSprinting(true)
	if c.Speed() != 2.5 || c.FrequencyMHz() != 2400 || !c.Sprinting() {
		t.Fatal("unexpected sprinting state")
	}
	c.SetSprinting(false)
	if c.Speed() != 1 {
		t.Fatal("speed did not return to base")
	}
}

func TestSpeedWatcher(t *testing.T) {
	sim := simtime.New()
	c := newTestCluster(t, sim)
	var events [][2]float64
	c.OnSpeedChange(func(old, new float64) { events = append(events, [2]float64{old, new}) })
	c.SetSprinting(true)
	c.SetSprinting(true) // no-op, must not fire
	c.SetSprinting(false)
	if len(events) != 2 {
		t.Fatalf("watcher fired %d times, want 2", len(events))
	}
	if events[0] != [2]float64{1, 2.5} || events[1] != [2]float64{2.5, 1} {
		t.Fatalf("events = %v", events)
	}
}

func TestEnergyIdle(t *testing.T) {
	sim := simtime.New()
	c := newTestCluster(t, sim)
	sim.RunUntil(100)
	// 10 nodes idle at 60 W for 100 s = 60 kJ.
	want := 10.0 * 60 * 100
	if got := c.EnergyJoules(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("idle energy = %g, want %g", got, want)
	}
}

func TestEnergyBusyAndSprint(t *testing.T) {
	sim := simtime.New()
	cfg := DefaultConfig()
	c, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Occupy both cores of one node for 10 s at base frequency.
	s0, _ := c.Acquire()
	s1, _ := c.Acquire()
	sim.RunUntil(10)
	c.SetSprinting(true)
	sim.RunUntil(20)
	c.SetSprinting(false)
	c.Release(s0)
	c.Release(s1)
	got := c.EnergyJoules()
	idle := 10.0 * 60 * 20 // all nodes idle component for 20 s
	base := (180.0 - 60) * 10
	sprint := (270.0 - 60) * 10
	want := idle + base + sprint
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("energy = %g, want %g", got, want)
	}
}

func TestBusySlotSeconds(t *testing.T) {
	sim := simtime.New()
	c := newTestCluster(t, sim)
	s, _ := c.Acquire()
	sim.RunUntil(5)
	c.Release(s)
	sim.RunUntil(10)
	if got := c.BusySlotSeconds(); math.Abs(got-5) > 1e-9 {
		t.Fatalf("busy slot-seconds = %g, want 5", got)
	}
}

func TestEnergyAccrualIdempotent(t *testing.T) {
	sim := simtime.New()
	c := newTestCluster(t, sim)
	sim.RunUntil(50)
	e1 := c.EnergyJoules()
	e2 := c.EnergyJoules() // same instant: no extra accrual
	if e1 != e2 {
		t.Fatalf("repeated reads at same instant differ: %g vs %g", e1, e2)
	}
}
