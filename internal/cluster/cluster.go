// Package cluster simulates the compute substrate the paper's testbed
// provides: a set of worker nodes exposing computing slots, a DVFS-style
// frequency governor used for computational sprinting (§2.3, §3.3), and a
// power model that integrates energy over virtual time.
//
// The paper's machines sprint from 800 MHz to 2.4 GHz, cutting execution
// times of sprinted jobs by up to 60% while raising server power from
// 180 W to 270 W. Those are the defaults here.
package cluster

import (
	"errors"
	"fmt"

	"dias/internal/simtime"
)

// Config describes a homogeneous cluster.
type Config struct {
	// Nodes is the number of worker machines.
	Nodes int
	// CoresPerNode is the number of computing slots each worker exposes.
	CoresPerNode int
	// BaseFreqMHz and SprintFreqMHz are the DVFS endpoints (paper: 800 and
	// 2400). They are reported in metrics; latency effects flow through
	// SprintSpeedup.
	BaseFreqMHz   float64
	SprintFreqMHz float64
	// SprintSpeedup is the task speed multiplier while sprinting. The paper
	// observes up to 60% execution-time reduction, i.e. a 2.5x speedup.
	SprintSpeedup float64
	// IdleWatts, BusyWatts and SprintWatts set the per-node power model:
	// power = idle + (active-idle) * utilization, with active = BusyWatts at
	// base frequency and SprintWatts while sprinting (paper: 180 W -> 270 W).
	IdleWatts   float64
	BusyWatts   float64
	SprintWatts float64
}

// DefaultConfig mirrors the paper's testbed: 10 workers with 2 slots each
// (20 computing slots), 800 MHz base, 2.4 GHz sprint, 2.5x sprint speedup,
// 180 W busy and 270 W sprinting per node.
func DefaultConfig() Config {
	return Config{
		Nodes:         10,
		CoresPerNode:  2,
		BaseFreqMHz:   800,
		SprintFreqMHz: 2400,
		SprintSpeedup: 2.5,
		IdleWatts:     60,
		BusyWatts:     180,
		SprintWatts:   270,
	}
}

func (c Config) validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: %d nodes", c.Nodes)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("cluster: %d cores per node", c.CoresPerNode)
	case c.SprintSpeedup < 1:
		return fmt.Errorf("cluster: sprint speedup %g < 1", c.SprintSpeedup)
	case c.IdleWatts < 0 || c.BusyWatts < c.IdleWatts || c.SprintWatts < c.BusyWatts:
		return fmt.Errorf("cluster: power model idle=%g busy=%g sprint=%g must be nondecreasing",
			c.IdleWatts, c.BusyWatts, c.SprintWatts)
	case c.SprintFreqMHz < c.BaseFreqMHz:
		return fmt.Errorf("cluster: sprint frequency %g below base %g", c.SprintFreqMHz, c.BaseFreqMHz)
	}
	return nil
}

// Slot is a computing slot on a specific node, held by one task at a time.
type Slot struct {
	Node int // node index in [0, Nodes)
	Core int // core index within the node
	busy bool
}

// Cluster is the simulated compute substrate. It is single-threaded like
// the simulation that drives it.
type Cluster struct {
	cfg Config
	sim *simtime.Simulation

	slots []*Slot
	free  []*Slot // LIFO of idle slots

	sprinting bool
	busyCores int
	// down[n] marks node n as failed; its slots are unusable and it draws
	// no power.
	down      []bool
	downNodes int
	// offline[n] marks node n as decommissioned by an elastic-capacity
	// controller. Unlike a failure, decommissioning drains gracefully: busy
	// slots keep running (and drawing power) but never rejoin the idle
	// pool, and the node powers off once its last task releases.
	offline      []bool
	offlineNodes int
	// nodeBusy[n] counts busy slots per node, so drain completion and the
	// powered-node set are known without scanning slots.
	nodeBusy []int
	// poweredNodes counts nodes drawing power: up and either commissioned
	// or still draining tasks.
	poweredNodes int

	// Energy integration state.
	lastAccrual  simtime.Time
	energyJoules float64
	// Machine-time accounting (slot-seconds) for the resource-waste metric.
	busySlotSeconds float64
	// poweredNodeSeconds integrates the powered-node count over virtual
	// time: the capacity actually paid for, the denominator elastic
	// experiments compare against a fixed-size cluster.
	poweredNodeSeconds float64

	speedWatchers []func(old, new float64)
	// onOccupancy / onPower, when non-nil, are notified with the new
	// busy-slot and powered-node counts at every transition — the push
	// counterpart of BusySlots/PoweredNodes for incremental load indexes.
	onOccupancy func(busySlots int)
	onPower     func(poweredNodes int)
}

// New builds a cluster bound to a simulation clock.
func New(sim *simtime.Simulation, cfg Config) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if sim == nil {
		return nil, errors.New("cluster: nil simulation")
	}
	c := &Cluster{
		cfg: cfg, sim: sim, lastAccrual: sim.Now(),
		down:         make([]bool, cfg.Nodes),
		offline:      make([]bool, cfg.Nodes),
		nodeBusy:     make([]int, cfg.Nodes),
		poweredNodes: cfg.Nodes,
	}
	for n := 0; n < cfg.Nodes; n++ {
		for k := 0; k < cfg.CoresPerNode; k++ {
			s := &Slot{Node: n, Core: k}
			c.slots = append(c.slots, s)
		}
	}
	// Free list seeded in reverse so Acquire hands out node 0 first,
	// spreading across nodes round-robin-ish as load grows.
	for i := len(c.slots) - 1; i >= 0; i-- {
		c.free = append(c.free, c.slots[i])
	}
	return c, nil
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// Slots returns the total number of computing slots (paper: C).
func (c *Cluster) Slots() int { return len(c.slots) }

// FreeSlots returns the number of currently idle slots.
func (c *Cluster) FreeSlots() int { return len(c.free) }

// Acquire reserves an idle slot. It returns false when all are busy.
func (c *Cluster) Acquire() (*Slot, bool) {
	if len(c.free) == 0 {
		return nil, false
	}
	c.accrue()
	s := c.free[len(c.free)-1]
	c.free = c.free[:len(c.free)-1]
	s.busy = true
	c.busyCores++
	c.nodeBusy[s.Node]++
	c.notifyOccupancy()
	return s, true
}

// AcquireMatching reserves an idle slot on a node accepted by pred,
// scanning most-recently-freed first. It returns false when no idle slot
// matches; callers typically fall back to Acquire for a remote slot.
func (c *Cluster) AcquireMatching(pred func(node int) bool) (*Slot, bool) {
	for i := len(c.free) - 1; i >= 0; i-- {
		s := c.free[i]
		if !pred(s.Node) {
			continue
		}
		c.accrue()
		c.free = append(c.free[:i], c.free[i+1:]...)
		s.busy = true
		c.busyCores++
		c.nodeBusy[s.Node]++
		c.notifyOccupancy()
		return s, true
	}
	return nil, false
}

// Release returns a slot to the idle pool. Releasing an idle slot panics:
// it indicates a double release in the scheduler. A slot on a failed or
// decommissioned node leaves the busy set but stays out of the idle pool
// until the node is repaired or re-commissioned; a decommissioned node
// powers off the moment its last busy slot releases.
func (c *Cluster) Release(s *Slot) {
	if !s.busy {
		panic(fmt.Sprintf("cluster: double release of slot %d/%d", s.Node, s.Core))
	}
	c.accrue()
	s.busy = false
	c.busyCores--
	c.nodeBusy[s.Node]--
	n := s.Node
	switch {
	case c.down[n]:
		// Failed nodes draw no power and hold no idle slots.
	case c.offline[n]:
		if c.nodeBusy[n] == 0 {
			c.poweredNodes-- // drain complete: the node powers off
			c.notifyPower()
		}
	default:
		c.free = append(c.free, s)
	}
	c.notifyOccupancy()
}

// FailNode takes a node offline: its idle slots leave the pool immediately
// and it stops drawing power. Tasks still occupying its slots must be
// aborted by the engine (see engine.Engine.FailNode), whose Release calls
// will then skip the idle pool. Failing a failed node is an error.
func (c *Cluster) FailNode(node int) error {
	if node < 0 || node >= c.cfg.Nodes {
		return fmt.Errorf("cluster: fail node %d of %d", node, c.cfg.Nodes)
	}
	if c.down[node] {
		return fmt.Errorf("cluster: node %d already down", node)
	}
	c.accrue()
	if !c.offline[node] || c.nodeBusy[node] > 0 {
		c.poweredNodes-- // was powered (commissioned, or still draining)
		c.notifyPower()
	}
	c.down[node] = true
	c.downNodes++
	kept := c.free[:0]
	for _, s := range c.free {
		if s.Node != node {
			kept = append(kept, s)
		}
	}
	c.free = kept
	return nil
}

// RepairNode brings a failed node back: its slots rejoin the idle pool and
// it draws power again. Repairing an up node is an error. A node that was
// decommissioned while down stays offline and unpowered: the repair only
// clears the failure.
func (c *Cluster) RepairNode(node int) error {
	if node < 0 || node >= c.cfg.Nodes {
		return fmt.Errorf("cluster: repair node %d of %d", node, c.cfg.Nodes)
	}
	if !c.down[node] {
		return fmt.Errorf("cluster: node %d is not down", node)
	}
	c.accrue()
	c.down[node] = false
	c.downNodes--
	if c.offline[node] {
		return nil
	}
	c.poweredNodes++
	c.notifyPower()
	for _, s := range c.slots {
		if s.Node == node && !s.busy {
			c.free = append(c.free, s)
		}
	}
	return nil
}

// Decommission removes a node from service for elastic scale-in. Its idle
// slots leave the pool immediately; running tasks drain gracefully (they
// keep their slots and the node keeps drawing power until the last one
// releases). Decommissioning a node twice is an error; decommissioning a
// failed node is allowed and simply keeps it out of service after repair.
func (c *Cluster) Decommission(node int) error {
	if node < 0 || node >= c.cfg.Nodes {
		return fmt.Errorf("cluster: decommission node %d of %d", node, c.cfg.Nodes)
	}
	if c.offline[node] {
		return fmt.Errorf("cluster: node %d already offline", node)
	}
	c.accrue()
	c.offline[node] = true
	c.offlineNodes++
	if !c.down[node] && c.nodeBusy[node] == 0 {
		c.poweredNodes-- // nothing to drain: powers off now
		c.notifyPower()
	}
	kept := c.free[:0]
	for _, s := range c.free {
		if s.Node != node {
			kept = append(kept, s)
		}
	}
	c.free = kept
	return nil
}

// Commission returns a decommissioned node to service: it powers back on
// and its idle slots rejoin the pool (unless the node is currently
// failed, in which case only the offline mark clears and RepairNode
// completes the comeback). Commissioning an online node is an error.
func (c *Cluster) Commission(node int) error {
	if node < 0 || node >= c.cfg.Nodes {
		return fmt.Errorf("cluster: commission node %d of %d", node, c.cfg.Nodes)
	}
	if !c.offline[node] {
		return fmt.Errorf("cluster: node %d is not offline", node)
	}
	c.accrue()
	c.offline[node] = false
	c.offlineNodes--
	if c.down[node] {
		return nil
	}
	if c.nodeBusy[node] == 0 {
		c.poweredNodes++ // a still-draining node never powered off
		c.notifyPower()
	}
	for _, s := range c.slots {
		if s.Node == node && !s.busy {
			c.free = append(c.free, s)
		}
	}
	return nil
}

// NodeOffline reports whether a node is currently decommissioned.
func (c *Cluster) NodeOffline(node int) bool {
	return node >= 0 && node < c.cfg.Nodes && c.offline[node]
}

// CommissionedNodes returns the number of nodes in service (not
// decommissioned), regardless of failure state — the capacity an elastic
// controller currently intends to run.
func (c *Cluster) CommissionedNodes() int { return c.cfg.Nodes - c.offlineNodes }

// PoweredNodes returns the number of nodes currently drawing power: up
// and either commissioned or still draining tasks.
func (c *Cluster) PoweredNodes() int { return c.poweredNodes }

// PoweredNodeSeconds returns the time integral of the powered-node count,
// the capacity actually paid for over the run.
func (c *Cluster) PoweredNodeSeconds() float64 {
	c.accrue()
	return c.poweredNodeSeconds
}

// NodeDown reports whether a node is currently failed.
func (c *Cluster) NodeDown(node int) bool {
	return node >= 0 && node < c.cfg.Nodes && c.down[node]
}

// DownNodes returns the number of currently failed nodes.
func (c *Cluster) DownNodes() int { return c.downNodes }

// Speed returns the current task speed multiplier (1 at base frequency,
// Config.SprintSpeedup while sprinting).
func (c *Cluster) Speed() float64 {
	if c.sprinting {
		return c.cfg.SprintSpeedup
	}
	return 1
}

// FrequencyMHz returns the current CPU frequency.
func (c *Cluster) FrequencyMHz() float64 {
	if c.sprinting {
		return c.cfg.SprintFreqMHz
	}
	return c.cfg.BaseFreqMHz
}

// Sprinting reports whether the cluster is currently sprinting.
func (c *Cluster) Sprinting() bool { return c.sprinting }

// SetSprinting switches DVFS state for all nodes at the current virtual
// time. The paper's sprinter raises all cores together (§4, "our current
// approach sprints all available cores at the same time"). Speed watchers
// (the engine) are notified so in-flight task completions can be rescaled.
func (c *Cluster) SetSprinting(on bool) {
	if on == c.sprinting {
		return
	}
	old := c.Speed()
	c.accrue()
	c.sprinting = on
	for _, w := range c.speedWatchers {
		w(old, c.Speed())
	}
}

// OnSpeedChange registers a callback invoked whenever the cluster speed
// changes (sprint on/off), with the old and new speed multipliers.
func (c *Cluster) OnSpeedChange(fn func(old, new float64)) {
	c.speedWatchers = append(c.speedWatchers, fn)
}

// OnOccupancyChange registers the observer invoked with the new busy-slot
// count whenever it changes (every task acquire/release). At most one
// observer is supported: a later call replaces the earlier one, nil
// detaches. The callback must be O(1) and must not call back into the
// cluster.
func (c *Cluster) OnOccupancyChange(fn func(busySlots int)) { c.onOccupancy = fn }

// OnPowerChange registers the observer invoked with the new powered-node
// count whenever it changes (failures, repairs, elastic commission and
// decommission, drain completions). Same contract as OnOccupancyChange.
func (c *Cluster) OnPowerChange(fn func(poweredNodes int)) { c.onPower = fn }

func (c *Cluster) notifyOccupancy() {
	if c.onOccupancy != nil {
		c.onOccupancy(c.busyCores)
	}
}

func (c *Cluster) notifyPower() {
	if c.onPower != nil {
		c.onPower(c.poweredNodes)
	}
}

// accrue integrates power and busy slot-seconds up to the current instant.
func (c *Cluster) accrue() {
	now := c.sim.Now()
	dt := now.Sub(c.lastAccrual).Seconds()
	if dt <= 0 {
		c.lastAccrual = now
		return
	}
	c.energyJoules += c.power() * dt
	c.busySlotSeconds += float64(c.busyCores) * dt
	c.poweredNodeSeconds += float64(c.poweredNodes) * dt
	c.lastAccrual = now
}

// power returns the aggregate cluster power in watts given current state.
// Each powered node draws idle + (active-idle)*utilization; summed over
// homogeneous nodes this is poweredNodes*idle + (active-idle)*busyCores/
// coresPerNode. Failed and drained-decommissioned nodes draw nothing.
func (c *Cluster) power() float64 {
	active := c.cfg.BusyWatts
	if c.sprinting {
		active = c.cfg.SprintWatts
	}
	perCore := (active - c.cfg.IdleWatts) / float64(c.cfg.CoresPerNode)
	return float64(c.poweredNodes)*c.cfg.IdleWatts + perCore*float64(c.busyCores)
}

// EnergyJoules returns total energy consumed up to the current virtual time.
func (c *Cluster) EnergyJoules() float64 {
	c.accrue()
	return c.energyJoules
}

// BusySlotSeconds returns the total machine time (slot-seconds) consumed by
// tasks so far.
func (c *Cluster) BusySlotSeconds() float64 {
	c.accrue()
	return c.busySlotSeconds
}

// BusySlots returns the number of currently busy slots.
func (c *Cluster) BusySlots() int { return c.busyCores }

// Utilization returns the instantaneous fraction of busy slots.
func (c *Cluster) Utilization() float64 {
	return float64(c.busyCores) / float64(len(c.slots))
}
