package cluster

import (
	"testing"

	"dias/internal/simtime"
)

// TestOccupancyObserver checks that every acquire and release pushes the
// new busy-slot count, matching the polled getter at each step.
func TestOccupancyObserver(t *testing.T) {
	sim := simtime.New()
	cfg := DefaultConfig()
	cfg.Nodes, cfg.CoresPerNode = 2, 2
	c, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var log []int
	c.OnOccupancyChange(func(busySlots int) {
		log = append(log, busySlots)
		if busySlots != c.BusySlots() {
			t.Errorf("observer saw %d busy slots, getter says %d", busySlots, c.BusySlots())
		}
	})
	var held []*Slot
	for i := 0; i < 3; i++ {
		s, ok := c.Acquire()
		if !ok {
			t.Fatalf("acquire %d failed", i)
		}
		held = append(held, s)
	}
	s, ok := c.AcquireMatching(func(node int) bool { return node == 1 })
	if !ok {
		t.Fatal("matching acquire failed")
	}
	held = append(held, s)
	for _, s := range held {
		c.Release(s)
	}
	want := []int{1, 2, 3, 4, 3, 2, 1, 0}
	if len(log) != len(want) {
		t.Fatalf("observer fired %d times, want %d", len(log), len(want))
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("occupancy[%d] = %d, want %d", i, log[i], want[i])
		}
	}
}

// TestPowerObserver checks that failures, repairs, decommissions,
// commissions and drain completions each push the new powered-node
// count.
func TestPowerObserver(t *testing.T) {
	sim := simtime.New()
	cfg := DefaultConfig()
	cfg.Nodes, cfg.CoresPerNode = 3, 1
	c, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var log []int
	c.OnPowerChange(func(poweredNodes int) {
		log = append(log, poweredNodes)
		if poweredNodes != c.PoweredNodes() {
			t.Errorf("observer saw %d powered nodes, getter says %d", poweredNodes, c.PoweredNodes())
		}
	})
	if err := c.FailNode(0); err != nil { // 3 -> 2
		t.Fatal(err)
	}
	if err := c.RepairNode(0); err != nil { // 2 -> 3
		t.Fatal(err)
	}
	// Occupy node 2's only slot, then decommission it: it keeps drawing
	// power until the drain completes at Release.
	var slot *Slot
	var others []*Slot
	for {
		s, ok := c.Acquire()
		if !ok {
			t.Fatal("no slot on node 2")
		}
		if s.Node == 2 {
			slot = s
			break
		}
		others = append(others, s)
	}
	for _, s := range others {
		c.Release(s)
	}
	if err := c.Decommission(2); err != nil { // still draining: no change
		t.Fatal(err)
	}
	c.Release(slot)                         // drain complete: 3 -> 2
	if err := c.Commission(2); err != nil { // 2 -> 3
		t.Fatal(err)
	}
	if err := c.Decommission(1); err != nil { // idle: powers off now, 3 -> 2
		t.Fatal(err)
	}
	want := []int{2, 3, 2, 3, 2}
	if len(log) != len(want) {
		t.Fatalf("observer fired %d times, want %d: %v", len(log), len(want), log)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("powered[%d] = %d, want %d", i, log[i], want[i])
		}
	}
}
