package cluster

import (
	"testing"

	"dias/internal/simtime"
)

// elasticCluster builds a small cluster for decommission tests.
func elasticCluster(t *testing.T, nodes, cores int) (*simtime.Simulation, *Cluster) {
	t.Helper()
	sim := simtime.New()
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.CoresPerNode = cores
	c, err := New(sim, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sim, c
}

func TestDecommissionIdleNode(t *testing.T) {
	_, c := elasticCluster(t, 3, 2)
	if err := c.Decommission(2); err != nil {
		t.Fatalf("Decommission: %v", err)
	}
	if got := c.FreeSlots(); got != 4 {
		t.Fatalf("free slots after decommission = %d, want 4", got)
	}
	if got := c.CommissionedNodes(); got != 2 {
		t.Fatalf("commissioned nodes = %d, want 2", got)
	}
	if got := c.PoweredNodes(); got != 2 {
		t.Fatalf("powered nodes = %d, want 2 (idle node powers off immediately)", got)
	}
	if !c.NodeOffline(2) || c.NodeOffline(0) {
		t.Fatalf("NodeOffline flags wrong: node2=%v node0=%v", c.NodeOffline(2), c.NodeOffline(0))
	}
	if err := c.Decommission(2); err == nil {
		t.Fatal("double decommission should fail")
	}
	if err := c.Commission(2); err != nil {
		t.Fatalf("Commission: %v", err)
	}
	if got := c.FreeSlots(); got != 6 {
		t.Fatalf("free slots after commission = %d, want 6", got)
	}
	if got := c.PoweredNodes(); got != 3 {
		t.Fatalf("powered nodes after commission = %d, want 3", got)
	}
	if err := c.Commission(2); err == nil {
		t.Fatal("commissioning an online node should fail")
	}
}

func TestDecommissionDrainsGracefully(t *testing.T) {
	_, c := elasticCluster(t, 2, 2)
	// Occupy every slot, then decommission node 1: its two busy slots keep
	// running and the node stays powered until both release.
	var held []*Slot
	for {
		s, ok := c.Acquire()
		if !ok {
			break
		}
		held = append(held, s)
	}
	if len(held) != 4 {
		t.Fatalf("acquired %d slots, want 4", len(held))
	}
	if err := c.Decommission(1); err != nil {
		t.Fatalf("Decommission: %v", err)
	}
	if got := c.PoweredNodes(); got != 2 {
		t.Fatalf("powered nodes while draining = %d, want 2", got)
	}
	released := 0
	for _, s := range held {
		if s.Node == 1 {
			c.Release(s)
			released++
			want := 2
			if released == 2 {
				want = 1
			}
			if got := c.PoweredNodes(); got != want {
				t.Fatalf("powered nodes after %d drain releases = %d, want %d", released, got, want)
			}
		}
	}
	if got := c.FreeSlots(); got != 0 {
		t.Fatalf("drained slots rejoined the pool: free=%d", got)
	}
	// Node 0's slots still cycle normally.
	for _, s := range held {
		if s.Node == 0 {
			c.Release(s)
		}
	}
	if got := c.FreeSlots(); got != 2 {
		t.Fatalf("free slots = %d, want 2", got)
	}
}

func TestDecommissionFailedNodeInterplay(t *testing.T) {
	_, c := elasticCluster(t, 2, 1)
	if err := c.FailNode(1); err != nil {
		t.Fatalf("FailNode: %v", err)
	}
	if got := c.PoweredNodes(); got != 1 {
		t.Fatalf("powered after failure = %d, want 1", got)
	}
	// Decommission while down: repair must not bring it back into service.
	if err := c.Decommission(1); err != nil {
		t.Fatalf("Decommission(down): %v", err)
	}
	if err := c.RepairNode(1); err != nil {
		t.Fatalf("RepairNode: %v", err)
	}
	if got, want := c.FreeSlots(), 1; got != want {
		t.Fatalf("free slots after repair of offline node = %d, want %d", got, want)
	}
	if got := c.PoweredNodes(); got != 1 {
		t.Fatalf("repaired offline node should stay unpowered: powered=%d", got)
	}
	if err := c.Commission(1); err != nil {
		t.Fatalf("Commission: %v", err)
	}
	if got, want := c.FreeSlots(), 2; got != want {
		t.Fatalf("free slots after commission = %d, want %d", got, want)
	}
	if got := c.PoweredNodes(); got != 2 {
		t.Fatalf("powered after commission = %d, want 2", got)
	}
}

func TestPoweredNodeSecondsAndEnergy(t *testing.T) {
	sim, c := elasticCluster(t, 2, 1)
	cfg := c.Config()
	// 100 s with both nodes idle, then decommission node 1 and run 100 s
	// with only node 0 powered.
	sim.After(100, func() {
		if err := c.Decommission(1); err != nil {
			t.Errorf("Decommission: %v", err)
		}
	})
	sim.After(200, func() {})
	sim.Run()
	wantNodeSec := 2*100.0 + 1*100.0
	if got := c.PoweredNodeSeconds(); got != wantNodeSec {
		t.Fatalf("PoweredNodeSeconds = %g, want %g", got, wantNodeSec)
	}
	wantJoules := wantNodeSec * cfg.IdleWatts
	if got := c.EnergyJoules(); got != wantJoules {
		t.Fatalf("EnergyJoules = %g, want %g", got, wantJoules)
	}
}
