package cluster

import (
	"testing"

	"dias/internal/simtime"
)

func newFailTestCluster(t *testing.T, nodes, cores int) (*simtime.Simulation, *Cluster) {
	t.Helper()
	sim := simtime.New()
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.CoresPerNode = cores
	c, err := New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sim, c
}

func TestFailNodeRemovesIdleSlots(t *testing.T) {
	_, c := newFailTestCluster(t, 3, 2)
	if err := c.FailNode(1); err != nil {
		t.Fatal(err)
	}
	if got := c.FreeSlots(); got != 4 {
		t.Fatalf("free %d after failing 1 of 3 nodes, want 4", got)
	}
	for i := 0; i < 4; i++ {
		s, ok := c.Acquire()
		if !ok {
			t.Fatalf("acquire %d failed", i)
		}
		if s.Node == 1 {
			t.Fatal("acquired a slot on the failed node")
		}
	}
	if _, ok := c.Acquire(); ok {
		t.Fatal("acquired a fifth slot with node 1 down")
	}
}

func TestReleaseOnDownNodeStaysOut(t *testing.T) {
	_, c := newFailTestCluster(t, 2, 1)
	s0, _ := c.Acquire()
	s1, _ := c.Acquire()
	target := s0
	if s1.Node == 0 {
		target = s1
	}
	if err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	// Release the task that was running on the failed node (engine does
	// this when aborting).
	if target.Node != 0 {
		target = s1
	}
	c.Release(target)
	if c.FreeSlots() != 0 {
		t.Fatalf("free %d, want 0: released slot belongs to a down node", c.FreeSlots())
	}
	if err := c.RepairNode(0); err != nil {
		t.Fatal(err)
	}
	if c.FreeSlots() != 1 {
		t.Fatalf("free %d after repair, want 1", c.FreeSlots())
	}
}

func TestRepairRestoresOnlyIdleSlots(t *testing.T) {
	_, c := newFailTestCluster(t, 2, 2)
	// Occupy one slot on node 0, then fail and repair node 0 while the
	// task keeps (hypothetically) running.
	var onNode0 *Slot
	for {
		s, ok := c.Acquire()
		if !ok {
			t.Fatal("no slot on node 0")
		}
		if s.Node == 0 {
			onNode0 = s
			break
		}
		defer c.Release(s)
	}
	if err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if err := c.RepairNode(0); err != nil {
		t.Fatal(err)
	}
	// The busy slot must not be duplicated into the free list.
	total := c.FreeSlots() + c.BusySlots()
	if total != c.Slots() {
		t.Fatalf("free+busy = %d, want %d", total, c.Slots())
	}
	c.Release(onNode0)
	if c.FreeSlots()+c.BusySlots() != c.Slots() {
		t.Fatal("accounting broken after release")
	}
}

func TestDownNodeDrawsNoPower(t *testing.T) {
	sim, c := newFailTestCluster(t, 2, 1)
	sim.After(simtime.Duration(100), func() {})
	sim.Run()
	idleBoth := c.EnergyJoules() // 2 nodes idle for 100s

	sim2 := simtime.New()
	cfg := DefaultConfig()
	cfg.Nodes = 2
	cfg.CoresPerNode = 1
	c2, err := New(sim2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.FailNode(1); err != nil {
		t.Fatal(err)
	}
	sim2.After(simtime.Duration(100), func() {})
	sim2.Run()
	idleOne := c2.EnergyJoules()

	if idleOne >= idleBoth {
		t.Fatalf("energy with a down node %g >= %g with both up", idleOne, idleBoth)
	}
	want := idleBoth / 2
	if diff := idleOne - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("down-node energy %g, want half of %g", idleOne, idleBoth)
	}
}

func TestNodeDownReporting(t *testing.T) {
	_, c := newFailTestCluster(t, 2, 1)
	if c.NodeDown(0) || c.DownNodes() != 0 {
		t.Fatal("fresh cluster reports down nodes")
	}
	if err := c.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if !c.NodeDown(0) || c.DownNodes() != 1 {
		t.Fatal("failure not reported")
	}
	if c.NodeDown(-1) || c.NodeDown(99) {
		t.Fatal("out-of-range nodes report down")
	}
}
