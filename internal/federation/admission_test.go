package federation_test

import (
	"testing"

	"dias/internal/admission"
	"dias/internal/core"
	"dias/internal/federation"
	"dias/internal/simtime"
)

// deferAll always defers: the dispatcher must walk every member and then
// reject at the routed one.
type deferAll struct{}

func (deferAll) Name() string { return "defer-all" }
func (deferAll) Admit(simtime.Time, admission.JobInfo, admission.State) admission.Decision {
	return admission.Defer
}

func TestFederationRejectsSharedAdmissionInstance(t *testing.T) {
	if _, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{}},
		Policy:  core.Config{Classes: 1, Admission: admission.AlwaysAdmit{}},
		Routing: federation.NewRoundRobin(),
	}); err == nil {
		t.Fatal("Policy.Admission accepted")
	}
}

// pinFirst routes everything to the first candidate — the worst-case
// router that makes admission spill do all the balancing.
type pinFirst struct{}

func (pinFirst) Name() string                                       { return "pin-first" }
func (pinFirst) Route(federation.Arrival, []*federation.Member) int { return 0 }

// TestFederationSpill: a member whose policy defers hands the arrival to a
// sibling instead of shedding it. Queue-depth policies with spill on two
// members behind a router pinned to member a: once a's backlog caps, the
// overflow must land on b, and only when both cap is anything shed.
func TestFederationSpill(t *testing.T) {
	var records int
	var rejected int
	fed, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{Name: "a"}, {Name: "b"}},
		Policy:  core.PolicyNP(1),
		Routing: pinFirst{},
		Admission: func() admission.Policy {
			qd, err := admission.NewQueueDepth(admission.QueueDepthConfig{
				MaxBacklog: []int{2}, Spill: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return qd
		},
		Seed: 1,
		OnRecord: func(_ int, rec core.JobRecord) {
			records++
			if rec.Rejected {
				rejected++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	for i := 0; i < n; i++ {
		// A burst at t=0 then a trickle: the burst saturates both members'
		// backlog caps, so some arrivals spill and some are shed.
		at := 0.0
		if i >= 8 {
			at = float64(i) * 5
		}
		fed.SubmitAt(at, 0, churnJob("j", 2))
	}
	fed.Run()
	if records != n {
		t.Fatalf("%d records for %d submissions", records, n)
	}
	if fed.Spilled() == 0 {
		t.Error("no arrivals spilled — burst did not exercise Defer re-routing")
	}
	if rejected == 0 {
		t.Error("no arrivals rejected — burst did not overflow both members")
	}
	if rejected == n {
		t.Error("everything rejected — spill never accepted anywhere")
	}
	var schedRejected int
	for _, m := range fed.Members() {
		schedRejected += m.Scheduler.RejectedJobs()
	}
	if schedRejected != rejected {
		t.Errorf("scheduler rejection counters %d != rejected records %d", schedRejected, rejected)
	}
}

// TestFederationAllDeferRejectsOnce: when every member defers, the job is
// rejected exactly once, at the member the routing policy picked.
func TestFederationAllDeferRejectsOnce(t *testing.T) {
	var records, rejected int
	fed, err := federation.New(federation.Config{
		Members:   []federation.MemberSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}},
		Policy:    core.PolicyNP(1),
		Routing:   federation.NewRoundRobin(),
		Admission: func() admission.Policy { return deferAll{} },
		Seed:      1,
		OnRecord: func(_ int, rec core.JobRecord) {
			records++
			if rec.Rejected {
				rejected++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 9
	for i := 0; i < n; i++ {
		fed.SubmitAt(float64(i), 0, churnJob("j", 1))
	}
	fed.Run()
	if records != n || rejected != n {
		t.Fatalf("records %d rejected %d, want %d each", records, rejected, n)
	}
	if fed.Spilled() != 0 {
		t.Errorf("Spilled() = %d for an all-defer federation", fed.Spilled())
	}
	// Round-robin routed 3 arrivals to each member; each rejection lands on
	// the routed member only.
	for _, m := range fed.Members() {
		if got := m.Scheduler.RejectedJobs(); got != 3 {
			t.Errorf("member %s rejected %d, want 3", m.Name, got)
		}
	}
	for i, routed := range fed.Routed() {
		if routed != 0 {
			t.Errorf("member %d shows %d routed arrivals; rejected jobs must not count", i, routed)
		}
	}
}

// TestFederationAdmissionConservation: with stateful per-member policies
// under real load, submitted == completed + rejected across the whole
// federation.
func TestFederationAdmissionConservation(t *testing.T) {
	var records, rejected, completed int
	fed, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{Name: "a"}, {Name: "b"}},
		Policy:  core.PolicyNP(1),
		Routing: federation.NewJoinShortestQueue(),
		Admission: func() admission.Policy {
			tb, err := admission.NewTokenBucket(admission.TokenBucketConfig{
				Rate: []float64{0.05}, Burst: []float64{2},
			})
			if err != nil {
				t.Fatal(err)
			}
			return tb
		},
		Seed: 1,
		OnRecord: func(_ int, rec core.JobRecord) {
			records++
			if rec.Rejected {
				rejected++
			} else {
				completed++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	for i := 0; i < n; i++ {
		fed.SubmitAt(float64(i), 0, churnJob("j", 1))
	}
	fed.Run()
	if records != n {
		t.Fatalf("%d records for %d submissions", records, n)
	}
	if completed+rejected != n {
		t.Fatalf("completed %d + rejected %d != %d", completed, rejected, n)
	}
	if rejected == 0 {
		t.Error("slow token buckets never rejected under a 1/sec stream")
	}
}
