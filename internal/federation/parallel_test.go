package federation_test

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"testing"
	"time"

	"dias/internal/admission"
	"dias/internal/core"
	"dias/internal/dfs"
	"dias/internal/federation"
	"dias/internal/telemetry"
	"dias/internal/workload"
)

// parallelRun captures every externally observable output of one
// federation run, so serial and parallel modes can be compared for
// exact equality.
type parallelRun struct {
	records  []core.JobRecord
	members  []int // record emission member, in emission order
	routed   []int
	spilled  int
	peak     int
	makespan float64
	events   string // telemetry JSONL export
	timeline string // gauge CSV export
}

// runParallelScenario runs an 8-member federation — the given routing
// policy over a data model (finite WAN lookahead), queue-depth admission
// with spill, a mid-run member outage, telemetry on — at the given
// sim-worker count.
func runParallelScenario(t *testing.T, simWorkers int, routing federation.RoutingPolicy) parallelRun {
	t.Helper()
	reg := telemetry.NewRegistry(telemetry.Config{GaugeIntervalSec: 40})
	col := reg.Collector("par")
	var out parallelRun
	fed, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{
			{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"},
			{Name: "e"}, {Name: "f"}, {Name: "g"}, {Name: "h"},
		},
		Policy:  core.PolicyNP(2),
		Routing: routing,
		Admission: func() admission.Policy {
			qd, err := admission.NewQueueDepth(admission.QueueDepthConfig{
				MaxBacklog: []int{1, 2}, Spill: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return qd
		},
		Data: &dfs.Config{},
		Seed: 7,
		OnRecord: func(member int, rec core.JobRecord) {
			out.records = append(out.records, rec)
			out.members = append(out.members, member)
		},
		DiscardRecords: true,
		Telemetry:      col,
		SimWorkers:     simWorkers,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := workload.FixedJobs{churnJob("low", 6), churnJob("high", 3)}
	for c, job := range jobs {
		job.InputPath = fmt.Sprintf("/data/%s", job.Name)
		if err := fed.RegisterInput(job, c%len(fed.Members())); err != nil {
			t.Fatal(err)
		}
	}
	if err := fed.ScheduleOutage(2, 120, 200); err != nil {
		t.Fatal(err)
	}
	mix, err := workload.NewPoissonMix([]float64{0.6, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.SubmitStream(mix, jobs, 160, 21); err != nil {
		t.Fatal(err)
	}
	fed.Run()
	out.routed = fed.Routed()
	out.spilled = fed.Spilled()
	out.peak = fed.PeakInFlight()
	out.makespan = fed.Sim().Now().Seconds()
	var ev, tl bytes.Buffer
	if err := reg.WriteEventsJSONL(&ev); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteTimelineCSV(&tl); err != nil {
		t.Fatal(err)
	}
	out.events = ev.String()
	out.timeline = tl.String()
	return out
}

// TestParallelMatchesSerial is the oracle test: the parallel kernel at
// several worker counts must reproduce the serial run exactly — every
// record field in emission order, routing and spill counts, the
// in-flight high-water mark, the final clock, and the full telemetry
// exports, byte for byte. JSQ exercises the deferred heap rebuilds
// (argmin routing over state mutated inside member windows); RoundRobin
// routes blind, so tight admission caps force Defer spills — the
// synchronous cross-member path at window boundaries.
func TestParallelMatchesSerial(t *testing.T) {
	policies := []struct {
		name       string
		make       func() federation.RoutingPolicy
		wantSpills bool
	}{
		{"jsq", func() federation.RoutingPolicy { return federation.NewJoinShortestQueue() }, false},
		{"roundrobin", func() federation.RoutingPolicy { return federation.NewRoundRobin() }, true},
	}
	for _, pol := range policies {
		t.Run(pol.name, func(t *testing.T) {
			serial := runParallelScenario(t, 1, pol.make())
			if len(serial.records) != 160 {
				t.Fatalf("serial run emitted %d records for 160 submissions", len(serial.records))
			}
			if pol.wantSpills && serial.spilled == 0 {
				t.Fatal("scenario exercises no admission spills; strengthen it")
			}
			for _, workers := range []int{2, 4, 8} {
				par := runParallelScenario(t, workers, pol.make())
				if len(par.records) != len(serial.records) {
					t.Fatalf("workers=%d: %d records vs %d serial", workers, len(par.records), len(serial.records))
				}
				for i := range serial.records {
					if !reflect.DeepEqual(par.records[i], serial.records[i]) || par.members[i] != serial.members[i] {
						t.Fatalf("workers=%d: record %d diverges:\nserial: member %d %+v\nparallel: member %d %+v",
							workers, i, serial.members[i], serial.records[i], par.members[i], par.records[i])
					}
				}
				if fmt.Sprint(par.routed) != fmt.Sprint(serial.routed) {
					t.Fatalf("workers=%d: routed %v vs %v", workers, par.routed, serial.routed)
				}
				if par.spilled != serial.spilled {
					t.Fatalf("workers=%d: spilled %d vs %d", workers, par.spilled, serial.spilled)
				}
				if par.peak != serial.peak {
					t.Fatalf("workers=%d: peak in-flight %d vs %d", workers, par.peak, serial.peak)
				}
				if par.makespan != serial.makespan {
					t.Fatalf("workers=%d: makespan %v vs %v", workers, par.makespan, serial.makespan)
				}
				if par.events != serial.events {
					t.Fatalf("workers=%d: telemetry JSONL diverges from serial", workers)
				}
				if par.timeline != serial.timeline {
					t.Fatalf("workers=%d: gauge timeline diverges from serial", workers)
				}
			}
		})
	}
}

// TestParallelConfigValidation: the federation rejects malformed
// parallel configs up front with clear errors.
func TestParallelConfigValidation(t *testing.T) {
	base := func() federation.Config {
		return federation.Config{
			Members: []federation.MemberSpec{{Name: "a"}, {Name: "b"}},
			Policy:  core.PolicyNP(2),
			Routing: federation.NewJoinShortestQueue(),
		}
	}
	neg := base()
	neg.SimWorkers = -1
	if _, err := federation.New(neg); err == nil {
		t.Error("negative SimWorkers accepted")
	}
	negL := base()
	negL.SimWorkers = 4
	negL.LookaheadSec = -1
	if _, err := federation.New(negL); err == nil {
		t.Error("negative LookaheadSec accepted")
	}
	nanL := base()
	nanL.SimWorkers = 4
	nanL.LookaheadSec = math.NaN()
	if _, err := federation.New(nanL); err == nil {
		t.Error("NaN LookaheadSec accepted")
	}
}

// TestParallelStopDrainsGoroutines: aborting a parallel run mid-stream
// (the -max-sys-mb watchdog path) returns promptly with no worker
// goroutines left behind, and a rerun of a fresh federation still works.
func TestParallelStopDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	var fed *federation.Federation
	var n int
	stopped := make(chan struct{})
	fed, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{Name: "a"}, {Name: "b"}, {Name: "c"}, {Name: "d"}},
		Policy:  core.PolicyNP(2),
		Routing: federation.NewJoinShortestQueue(),
		Seed:    3,
		OnRecord: func(int, core.JobRecord) {
			// Record replay runs on the coordinator; fed is assigned before
			// Run starts, so the capture is safe.
			n++
			if n == 40 {
				// Stop from another goroutine, as a watchdog would.
				go func() {
					fed.Stop()
					close(stopped)
				}()
			}
		},
		DiscardRecords: true,
		SimWorkers:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := workload.NewPoissonMix([]float64{0.2, 0.1})
	if err != nil {
		t.Fatal(err)
	}
	jobs := workload.FixedJobs{churnJob("low", 6), churnJob("high", 3)}
	if err := fed.SubmitStream(mix, jobs, 100000, 5); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		fed.Run()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Run did not return after Stop")
	}
	<-stopped
	if n >= 100000 {
		t.Fatal("Stop did not cut the run short")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}
