// Package federation runs a multi-cluster DiAS deployment: N independent
// per-cluster stacks (each its own cluster.Cluster + engine.Engine +
// core.Scheduler) share one virtual clock behind a front-end Dispatcher
// that routes every arrival to a member cluster through a pluggable
// RoutingPolicy.
//
// This is the scale-out layer the single-cluster stack lacks: the paper's
// DiAS scheduler is a single-server system (one job in the engine at a
// time), so serving more traffic means sharding the stream across many
// such servers — and the routing policy decides how well the federation
// uses its aggregate capacity. The policy is deliberately an interface
// rather than a baked-in heuristic (policy-free middleware): Random,
// RoundRobin, JoinShortestQueue, LeastLoaded, SprintAware and DataLocal
// ship in this package, and experiments compare them head to head.
//
// A federation can also model where the data lives: with Config.Data set,
// every member gets its own simulated dfs, RegisterInput places a job's
// blocks on its home member, and routing a job anywhere else makes its
// executed stage-0 tasks fetch blocks over the WAN (dfs.CreateRemote) —
// the cost model data-aware routing has to beat.
package federation

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"dias/internal/admission"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/dfs"
	"dias/internal/engine"
	"dias/internal/simtime"
	"dias/internal/telemetry"
	"dias/internal/workload"
)

// MemberSpec describes one member cluster of a federation. Entirely
// zero-value Cluster and Cost fields mean the paper's defaults; a
// partially specified Cluster must be complete (cluster.New rejects it
// otherwise — fields are never silently filled in).
type MemberSpec struct {
	// Name labels the member in results; empty means "c<index>".
	Name string
	// Cluster sizes the member's compute substrate (nodes, slots, DVFS
	// range, power model).
	Cluster cluster.Config
	// Cost converts work into task durations on this member.
	Cost engine.CostModel
}

// Config assembles a federation.
type Config struct {
	// Members lists the per-cluster specs; at least one is required.
	Members []MemberSpec
	// Policy is the scheduling discipline instantiated on every member
	// (classes, drop ratios, sprinting). It must not carry a Deflator,
	// OnRecord or Trace: deflators are stateful per scheduler, and the
	// record/trace hooks are owned by the federation (see Config.OnRecord).
	Policy core.Config
	// Routing picks the destination member for each arrival.
	Routing RoutingPolicy
	// Admission, when non-nil, builds one admission policy per member
	// (policies are stateful — token buckets, learned histograms — so a
	// single instance cannot be shared across schedulers; hence a factory,
	// not an instance, and Policy.Admission must stay nil). A member
	// answering Defer makes the dispatcher spill the arrival to the other
	// routable members in deterministic order; if every member defers, the
	// job is rejected at the originally routed member. Policies answering
	// Reject shed locally without spilling.
	Admission func() admission.Policy
	// Data, when non-nil, gives every member its own simulated dfs so
	// RegisterInput can place job inputs and cross-cluster routing pays
	// WAN fetches. Zero-value fields default individually to
	// dfs.DefaultConfig, so setting only WANBytesPerSec customizes just
	// the inter-cluster bandwidth.
	Data *dfs.Config
	// Seed drives member-engine randomness (each member derives its own
	// stream); runs are reproducible per seed.
	Seed int64
	// OnRecord, when non-nil, receives every completed job's record with
	// the index of the member that ran it — the streaming hook for
	// federation metrics (see metrics.FederationAccumulator).
	OnRecord func(member int, rec core.JobRecord)
	// DiscardRecords stops member schedulers from retaining completed-job
	// records (combine with OnRecord for O(classes) memory on long runs).
	DiscardRecords bool
	// Telemetry, when non-nil, traces the whole federation into one
	// collector: each member's scheduler and engine emit through their
	// member-indexed tracer view, the dispatcher records routing and
	// outage events, and Run samples per-member gauges on the collector's
	// cadence. Policy.Tracer must stay nil (the federation wires it).
	Telemetry *telemetry.Collector
	// SimWorkers > 1 runs the federation on the conservative parallel
	// kernel (simtime.Sharded): each member gets its own event arena and
	// loop, advanced concurrently by that many goroutines inside
	// lookahead windows, with all cross-member interaction (routing,
	// admission spills, outages) at window boundaries. 0 or 1 means the
	// serial kernel — the bit-identical oracle the parallel mode is
	// byte-diffed against.
	SimWorkers int
	// LookaheadSec overrides the conservative lookahead window in
	// simulated seconds (SimWorkers > 1 only). 0 derives it: the WAN
	// transfer time of one dfs block when Config.Data is set — the
	// minimum delay of any data-driven cross-cluster interaction —
	// and +Inf otherwise, since without a data model members interact
	// only through dispatcher events on the global partition. Negative
	// or NaN values are rejected.
	LookaheadSec float64
}

func (c Config) validate() error {
	if len(c.Members) == 0 {
		return errors.New("federation: no member clusters")
	}
	if c.Routing == nil {
		return errors.New("federation: nil routing policy")
	}
	if c.Policy.Deflator != nil {
		return errors.New("federation: Policy.Deflator cannot be shared across members")
	}
	if c.Policy.OnRecord != nil || c.Policy.Trace != nil {
		return errors.New("federation: set record/trace hooks on Config, not Config.Policy")
	}
	if c.Policy.Tracer != nil {
		return errors.New("federation: set Config.Telemetry, not Config.Policy.Tracer")
	}
	if c.Policy.Admission != nil {
		return errors.New("federation: set Config.Admission (a per-member factory), not Config.Policy.Admission")
	}
	if c.SimWorkers < 0 {
		return fmt.Errorf("federation: SimWorkers %d is negative", c.SimWorkers)
	}
	if math.IsNaN(c.LookaheadSec) || c.LookaheadSec < 0 {
		return fmt.Errorf("federation: LookaheadSec %g must be positive (or 0 to derive it)", c.LookaheadSec)
	}
	return nil
}

// Member is one cluster of the federation: a complete DiAS stack sharing
// the federation's clock. Routing policies read member state (backlogs,
// busy slots, sprint budgets) but must not mutate it.
type Member struct {
	Name      string
	Index     int
	Cluster   *cluster.Cluster
	Engine    *engine.Engine
	Scheduler *core.Scheduler
	// FS is the member's dfs; nil when the federation has no data model.
	FS *dfs.FS
	// down marks a cluster-level outage: the dispatcher stops routing to
	// this member and all its nodes are failed (see SetMemberDown).
	down bool
	// outageFailed marks the nodes the outage itself took down, so
	// recovery repairs exactly those and composes with node-level churn
	// injectors running on the same member.
	outageFailed []bool
	// li is the federation's shared load index; routing policies and the
	// backlog getters read this member's slice of it.
	li *LoadIndex
}

// Available reports whether the member is currently routable (not in a
// cluster-level outage).
func (m *Member) Available() bool { return !m.down }

// Backlog returns the number of jobs that would precede a new class-k
// arrival on this member: buffered jobs of class >= k (higher classes
// dispatch first, equal classes are FIFO ahead of it) plus the running job
// (dispatch is non-preemptive from the new arrival's point of view unless
// it outranks the current job, which the +1 conservatively ignores).
// The count is served from the federation's load index in O(1); it is
// maintained incrementally at every scheduler transition rather than
// recounted per call.
func (m *Member) Backlog(class int) int { return m.li.Backlog(m.Index, class) }

// TotalQueued returns all buffered jobs plus the running one, served from
// the load index in O(1).
func (m *Member) TotalQueued() int { return m.li.TotalQueued(m.Index) }

// Utilization returns the member's instantaneous busy-slot fraction.
func (m *Member) Utilization() float64 { return m.Cluster.Utilization() }

// Federation is the front-end dispatcher plus its member stacks.
type Federation struct {
	cfg     Config
	sim     *simtime.Simulation
	members []*Member
	// home maps registered job templates to their data-home member.
	home   map[*engine.Job]int
	routed []int
	// downMembers counts members in a cluster-level outage; avail is the
	// scratch slice dispatch filters into while any member is down.
	downMembers int
	avail       []*Member
	// outages records the per-member windows ScheduleOutage has planned,
	// so overlapping plans are rejected up front.
	outages map[int][]outageWindow
	// spilled counts arrivals deferred by their routed member's admission
	// policy and re-routed to (accepted by) another member.
	spilled int
	// inFlight counts dispatched jobs whose record has not come back yet
	// (every dispatch yields exactly one completion/failure/rejection
	// record); peakInFlight is its high-water mark — the memory-bounding
	// figure of a streaming run, since live per-job state is proportional
	// to it, not to the total job count. inFlight is atomic because the
	// parallel kernel's member partitions decrement it from their own
	// goroutines; peakInFlight is only touched in dispatch, which always
	// runs on the coordinator.
	inFlight     atomic.Int64
	peakInFlight int
	// index is the incrementally maintained routing state (see LoadIndex).
	index *LoadIndex
	// sampler, when non-nil, drives Run with gauge sampling (telemetry).
	sampler *telemetry.Sampler
	// kernel and par are set in parallel mode (Config.SimWorkers > 1):
	// the sharded simulation the members run on, and the window state
	// (per-member mailboxes) merged at its boundaries. In serial mode
	// both are nil and f.sim is a plain single simulation.
	kernel *simtime.Sharded
	par    *parallelState
}

// outageWindow is one planned [at, end) outage of a member.
type outageWindow struct{ at, end float64 }

// New builds a federation: one shared simulation clock, one full DiAS
// stack per member spec, and the dispatcher in front.
func New(cfg Config) (*Federation, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Federation{
		cfg:     cfg,
		home:    make(map[*engine.Job]int),
		routed:  make([]int, len(cfg.Members)),
		outages: make(map[int][]outageWindow),
	}
	if cfg.SimWorkers > 1 {
		// Parallel mode: members live on their own partitions of a sharded
		// kernel and f.sim is its global partition, so everything the
		// dispatcher schedules (arrivals, outages) fires at window
		// boundaries with every member aligned to the event's instant.
		kernel, err := simtime.NewSharded(simtime.ShardedConfig{
			Partitions: len(cfg.Members),
			Workers:    cfg.SimWorkers,
			Lookahead:  deriveLookahead(cfg),
		})
		if err != nil {
			return nil, fmt.Errorf("federation: building parallel kernel: %w", err)
		}
		f.kernel = kernel
		f.sim = kernel.Global()
		f.par = newParallelState(f)
	} else {
		f.sim = simtime.New()
	}
	for i, spec := range cfg.Members {
		name := spec.Name
		if name == "" {
			name = fmt.Sprintf("c%d", i)
		}
		cluCfg := spec.Cluster
		if cluCfg == (cluster.Config{}) {
			// Only a fully zero spec means the default testbed; a partially
			// specified cluster flows to cluster.New, whose validation
			// rejects it loudly rather than silently dropping fields.
			cluCfg = cluster.DefaultConfig()
		}
		cost := spec.Cost
		if cost == (engine.CostModel{}) {
			cost = engine.DefaultCostModel()
		}
		var fs *dfs.FS
		if cfg.Data != nil {
			var err error
			if fs, err = dfs.New(dataConfig(*cfg.Data)); err != nil {
				return nil, fmt.Errorf("member %s: building dfs: %w", name, err)
			}
		}
		// In parallel mode each member stack lives on its own partition;
		// everything it schedules stays member-local by construction (the
		// engine, cluster and scheduler only ever schedule follow-ups of
		// their own events), which is what makes the decomposition sound.
		msim := f.sim
		if f.kernel != nil {
			msim = f.kernel.Partition(i)
		}
		clu, err := cluster.New(msim, cluCfg)
		if err != nil {
			return nil, fmt.Errorf("member %s: building cluster: %w", name, err)
		}
		// Each member engine derives its own deterministic seed stream so
		// task-noise draws on one member never depend on how many members
		// exist or what the others executed.
		eng, err := engine.New(msim, clu, fs, cost, cfg.Seed+31*int64(i)+1)
		if err != nil {
			return nil, fmt.Errorf("member %s: building engine: %w", name, err)
		}
		policy := cfg.Policy
		policy.DiscardRecords = cfg.DiscardRecords
		// Every record closes one dispatched job's in-flight window, so
		// the hook is always wired even without a caller OnRecord. In
		// parallel mode records emitted inside a member window are
		// buffered with their instant and replayed to the caller in
		// merged virtual-time order at the window boundary; records
		// emitted on the coordinator (admission rejections during
		// dispatch) pass through directly, matching the serial order.
		idx := i
		memberSim := msim
		policy.OnRecord = func(rec core.JobRecord) {
			f.inFlight.Add(-1)
			if cfg.OnRecord == nil {
				return
			}
			if f.kernel != nil && f.kernel.InMemberPhase() {
				f.par.bufferRecord(idx, memberSim.Now(), rec)
				return
			}
			cfg.OnRecord(idx, rec)
		}
		if cfg.Admission != nil {
			policy.Admission = cfg.Admission()
		}
		if cfg.Telemetry != nil {
			tr := cfg.Telemetry.Member(i)
			if f.par != nil {
				tr = f.par.wrapTracer(i, tr)
			}
			policy.Tracer = tr
			eng.SetTracer(tr)
		}
		sch, err := core.New(msim, clu, eng, policy)
		if err != nil {
			return nil, fmt.Errorf("member %s: building scheduler: %w", name, err)
		}
		f.members = append(f.members, &Member{
			Name: name, Index: i,
			Cluster: clu, Engine: eng, Scheduler: sch, FS: fs,
			// Pre-sized so outage onset allocates nothing on the hot path.
			outageFailed: make([]bool, cluCfg.Nodes),
		})
	}
	// Attach the load index last, so it observes every state transition
	// from a known-empty start. Each member pushes its scheduler queue/
	// occupancy flips, task-slot occupancy, sprint state and power state
	// into the shared index as they happen.
	f.index = newLoadIndex(f.members, cfg.Policy.Classes, cfg.Policy.Sprint != nil)
	if f.par != nil {
		f.index.setDeferHeapFixes()
	}
	for i, m := range f.members {
		m.li = f.index
		m.Scheduler.SetObserver(memberObserver{li: f.index, m: i})
		m.Cluster.OnOccupancyChange(func(busySlots int) { f.index.occupancyChanged(i, busySlots) })
		m.Cluster.OnPowerChange(func(poweredNodes int) { f.index.powerChanged(i, poweredNodes) })
		m.Cluster.OnSpeedChange(func(_, _ float64) { f.index.sprintingChanged(i, m.Cluster.Sprinting()) })
	}
	if cfg.Telemetry != nil {
		gauges := make([]telemetry.MemberGauges, len(f.members))
		for i, m := range f.members {
			gauges[i] = telemetry.MemberGauges{
				Classes:       cfg.Policy.Classes,
				QueuedInClass: m.Scheduler.QueuedJobsInClass,
				Rejected:      m.Scheduler.RejectedJobs,
				BusySlots:     m.Cluster.BusySlots,
				PoweredNodes:  m.Cluster.PoweredNodes,
				Utilization:   m.Cluster.Utilization,
			}
		}
		f.sampler = telemetry.NewSampler(cfg.Telemetry, gauges)
	}
	return f, nil
}

// Index returns the federation's load index: the incrementally
// maintained per-member routing state the policies read. The index is
// shared and read-only for callers.
func (f *Federation) Index() *LoadIndex { return f.index }

// dataConfig fills the zero fields of a per-member dfs config with the
// dfs defaults, field by field, so e.g. Config.Data =
// &dfs.Config{WANBytesPerSec: 10e6} customizes only the inter-cluster
// bandwidth. (WANBytesPerSec itself is defaulted by dfs.New.)
func dataConfig(d dfs.Config) dfs.Config {
	def := dfs.DefaultConfig()
	if d.DataNodes == 0 {
		d.DataNodes = def.DataNodes
	}
	if d.Replication == 0 {
		d.Replication = def.Replication
	}
	if d.BlockSize == 0 {
		d.BlockSize = def.BlockSize
	}
	if d.LocalBytesPerSec == 0 {
		d.LocalBytesPerSec = def.LocalBytesPerSec
	}
	if d.RemoteBytesPerSec == 0 {
		d.RemoteBytesPerSec = def.RemoteBytesPerSec
	}
	return d
}

// Sim returns the shared virtual clock.
func (f *Federation) Sim() *simtime.Simulation { return f.sim }

// Members returns the member stacks, in spec order. The slice is shared;
// callers must not mutate it.
func (f *Federation) Members() []*Member { return f.members }

// RegisterInput declares the job template's input data resident on member
// home. With a data model configured, the job's file (Job.InputPath, sized
// Job.SizeBytes) is created on the home member's dfs and registered as a
// WAN-remote file on every other member, so off-home routing pays
// inter-cluster fetches per executed stage-0 task. Without a data model
// only the home mapping is recorded (visible to routing via Arrival.Home).
func (f *Federation) RegisterInput(job *engine.Job, home int) error {
	if job == nil {
		return errors.New("federation: nil job")
	}
	if home < 0 || home >= len(f.members) {
		return fmt.Errorf("federation: home %d out of [0,%d)", home, len(f.members))
	}
	if _, dup := f.home[job]; dup {
		return fmt.Errorf("federation: job %q already registered", job.Name)
	}
	if f.cfg.Data != nil {
		if job.InputPath == "" {
			return fmt.Errorf("federation: job %q needs an InputPath to place data", job.Name)
		}
		if job.SizeBytes <= 0 {
			return fmt.Errorf("federation: job %q needs SizeBytes to place data", job.Name)
		}
		for i, m := range f.members {
			var err error
			if i == home {
				err = m.FS.Create(job.InputPath, job.SizeBytes)
			} else {
				err = m.FS.CreateRemote(job.InputPath, job.SizeBytes)
			}
			if err != nil {
				return fmt.Errorf("federation: placing %q on %s: %w", job.InputPath, m.Name, err)
			}
		}
	}
	f.home[job] = home
	return nil
}

// dispatch routes one arrival at the current virtual time. While any
// member is in an outage the routing policy sees only the available
// members (with the arrival's data home remapped into that view); if the
// whole federation is down, arrivals queue on their nominal targets as if
// every member were up.
func (f *Federation) dispatch(class int, job *engine.Job) {
	if n := int(f.inFlight.Add(1)); n > f.peakInFlight {
		f.peakInFlight = n
	}
	home := -1
	if h, ok := f.home[job]; ok {
		home = h
	}
	candidates := f.members
	if f.downMembers > 0 {
		f.avail = f.avail[:0]
		for _, m := range f.members {
			if !m.down {
				f.avail = append(f.avail, m)
			}
		}
		if len(f.avail) > 0 {
			candidates = f.avail
		}
	}
	arr := Arrival{Class: class, Job: job, Home: -1}
	switch {
	case home < 0:
		// No registered data home: nothing to remap.
	case f.downMembers == 0:
		// All members up: candidate position i is member Index i.
		arr.Home = home
	default:
		for i, m := range candidates {
			if m.Index == home {
				arr.Home = i
				break
			}
		}
	}
	i := f.cfg.Routing.Route(arr, candidates)
	if i < 0 || i >= len(candidates) {
		panic(fmt.Sprintf("federation: policy %s routed to member %d of %d",
			f.cfg.Routing.Name(), i, len(candidates)))
	}
	m := candidates[i]
	if f.cfg.Admission == nil {
		f.routed[m.Index]++
		if f.cfg.Telemetry != nil {
			f.cfg.Telemetry.Route(f.sim.Now(), class, m.Index, false)
		}
		// Arrival errors are programming errors (bad class/job); surface them
		// loudly rather than silently dropping workload, like dias.Stack.
		if err := m.Scheduler.Arrive(class, job); err != nil {
			panic(fmt.Sprintf("federation: arrival on %s failed: %v", m.Name, err))
		}
		return
	}
	// With admission in play the routed member may shed (Reject) or ask the
	// federation to place the job elsewhere (Defer). A deferred arrival
	// spills through the remaining candidates in routing-view order starting
	// just after the first choice — deterministic and allocation-free; the
	// spilled members' own policies decide again with their local state. If
	// everyone defers, the job is rejected where it was first routed, so the
	// rejection is accounted exactly once, at the member the routing policy
	// actually picked.
	dec, err := m.Scheduler.Offer(class, job)
	if err != nil {
		panic(fmt.Sprintf("federation: arrival on %s failed: %v", m.Name, err))
	}
	switch dec {
	case admission.Accept:
		f.routed[m.Index]++
		if f.cfg.Telemetry != nil {
			f.cfg.Telemetry.Route(f.sim.Now(), class, m.Index, false)
		}
		return
	case admission.Reject:
		return
	}
	for off := 1; off < len(candidates); off++ {
		c := candidates[(i+off)%len(candidates)]
		dec, err = c.Scheduler.Offer(class, job)
		if err != nil {
			panic(fmt.Sprintf("federation: spilled arrival on %s failed: %v", c.Name, err))
		}
		switch dec {
		case admission.Accept:
			f.routed[c.Index]++
			f.spilled++
			if f.cfg.Telemetry != nil {
				f.cfg.Telemetry.Route(f.sim.Now(), class, c.Index, true)
			}
			return
		case admission.Reject:
			return
		}
	}
	m.Scheduler.Reject(class, job)
}

// Spilled returns how many arrivals were deferred by their routed member's
// admission policy and accepted elsewhere.
func (f *Federation) Spilled() int { return f.spilled }

// PeakInFlight returns the high-water mark of dispatched jobs whose
// completion/failure/rejection record had not yet been emitted — the
// federation's live-job bound. On a streaming run this, not the total
// job count, is what memory scales with.
func (f *Federation) PeakInFlight() int { return f.peakInFlight }

// SetMemberDown starts (down = true) or ends a cluster-level outage of
// member i. An outage removes the member from routing and fails every up
// node of its cluster, re-queueing in-flight tasks for re-execution after
// recovery; jobs already buffered on the member wait out the outage.
// Recovery restores routing eligibility and repairs exactly the nodes the
// outage took down (nodes a node-level churn injector holds down stay
// down, and their pending repairs proceed independently — the two
// injection layers compose). Setting the state the member is already in
// is an error.
func (f *Federation) SetMemberDown(i int, down bool) error {
	if i < 0 || i >= len(f.members) {
		return fmt.Errorf("federation: member %d of %d", i, len(f.members))
	}
	m := f.members[i]
	if m.down == down {
		return fmt.Errorf("federation: member %s already down=%v", m.Name, down)
	}
	m.down = down
	f.index.setAvailable(i, !down)
	if f.cfg.Telemetry != nil {
		f.cfg.Telemetry.MemberState(f.sim.Now(), i, down)
	}
	nodes := m.Cluster.Config().Nodes
	if down {
		f.downMembers++
		for n := 0; n < nodes; n++ {
			if !m.Cluster.NodeDown(n) {
				if err := m.Engine.FailNode(n); err != nil {
					return fmt.Errorf("federation: failing %s node %d: %w", m.Name, n, err)
				}
				m.outageFailed[n] = true
			}
		}
		return nil
	}
	f.downMembers--
	for n := 0; n < nodes; n++ {
		if m.outageFailed[n] {
			m.outageFailed[n] = false
			if !m.Cluster.NodeDown(n) {
				continue // someone else repaired it meanwhile
			}
			if err := m.Engine.RepairNode(n); err != nil {
				return fmt.Errorf("federation: repairing %s node %d: %w", m.Name, n, err)
			}
		}
	}
	return nil
}

// ScheduleOutage plans a cluster-level outage of a member on the virtual
// timeline: at atSec the member goes down, durationSec later it recovers.
// Overlapping outages of one member are rejected at scheduling time.
func (f *Federation) ScheduleOutage(member int, atSec, durationSec float64) error {
	if member < 0 || member >= len(f.members) {
		return fmt.Errorf("federation: outage member %d of %d", member, len(f.members))
	}
	if atSec < 0 || durationSec <= 0 {
		return fmt.Errorf("federation: outage at %g for %g", atSec, durationSec)
	}
	win := outageWindow{at: atSec, end: atSec + durationSec}
	for _, o := range f.outages[member] {
		if win.at < o.end && o.at < win.end {
			return fmt.Errorf("federation: outage of member %d at %g overlaps one at %g",
				member, atSec, o.at)
		}
	}
	f.outages[member] = append(f.outages[member], win)
	f.sim.At(simtime.Time(atSec), func() {
		if err := f.SetMemberDown(member, true); err != nil {
			panic(fmt.Sprintf("federation: outage start: %v", err))
		}
	})
	f.sim.At(simtime.Time(win.end), func() {
		if err := f.SetMemberDown(member, false); err != nil {
			panic(fmt.Sprintf("federation: outage end: %v", err))
		}
	})
	return nil
}

// SubmitAt schedules a job arrival at virtual time t seconds; the routing
// policy picks its destination when the arrival fires, seeing member state
// as of that instant.
func (f *Federation) SubmitAt(t float64, class int, job *engine.Job) {
	f.sim.At(simtime.Time(t), func() { f.dispatch(class, job) })
}

// SubmitStream schedules n arrivals drawn from any arrival process with
// jobs built by the source, exactly like dias.Stack.SubmitStream but
// routed across the federation. Arrivals are injected feed-forward
// (workload.Inject): only the next arrival is ever pending, so
// submission memory is O(1) at any n — the path that pushes 1M+ jobs
// through an 8-cluster federation with bounded RSS. Job-source failures
// panic at their arrival instant (like dispatch on a bad arrival)
// rather than being returned here.
func (f *Federation) SubmitStream(proc workload.Process, source workload.JobSource, n int, seed int64) error {
	if proc == nil || source == nil {
		return errors.New("federation: nil arrival process or job source")
	}
	arrRng := rand.New(rand.NewSource(seed))
	jobRng := rand.New(rand.NewSource(seed + 1))
	return workload.Inject(f.sim, proc, source, n, arrRng, jobRng, func(class int, job *engine.Job) {
		f.dispatch(class, job)
	})
}

// Run drains the simulation: all scheduled arrivals are routed and all
// jobs run to completion on their members. With telemetry configured the
// run is driven through the gauge sampler, which fires the same events
// at the same instants and leaves the clock untouched (see
// telemetry.Sampler.Drive). With SimWorkers > 1 the drain happens on the
// conservative parallel kernel instead (see parallel.go) — same events,
// same instants, same figures, just on more cores.
func (f *Federation) Run() {
	if f.kernel != nil {
		f.runParallel()
		return
	}
	if f.sampler != nil {
		f.sampler.Drive(f.sim)
		return
	}
	f.sim.Run()
}

// Stop aborts a Run in progress at the next event boundary. In parallel
// mode it also halts mid-window member loops (each partition polls the
// kernel's stop flag between events) and Run drains the worker pool
// before returning — no goroutines are left behind — and it is safe to
// call from another goroutine (the watchdog use case: wall-clock or
// memory ceilings on huge streaming runs). In serial mode it has the
// same simulation-context semantics as simtime.Simulation.Stop.
func (f *Federation) Stop() {
	if f.kernel != nil {
		f.kernel.Stop()
		return
	}
	f.sim.Stop()
}

// Routed returns how many arrivals each member received so far.
func (f *Federation) Routed() []int {
	out := make([]int, len(f.routed))
	copy(out, f.routed)
	return out
}
