package federation

// LoadIndex is the incrementally maintained routing state of a
// federation: per-member, per-class backlog counters, engine occupancy,
// busy-slot counts, sprint and power state, and availability, plus
// indexed min-heaps that keep the JSQ and LeastLoaded argmins ready.
//
// Instead of every Route call rescanning all members and rerunning
// per-class queue loops (O(members x classes) per arrival), the index is
// updated O(log members) at the state-transition points that already
// exist: scheduler arrive/dispatch/complete/evict (core.StateObserver),
// task slot acquire/release (cluster.OnOccupancyChange), sprint start/
// stop (cluster.OnSpeedChange), node commission/decommission/fail/repair
// (cluster.OnPowerChange), and cluster-level outages (SetMemberDown).
// Routing then reads a heap top in O(1), or — for the policies whose key
// is time-varying or for outage-filtered candidate sets — scans members
// over O(1) index getters.
//
// The index is owned by the Federation and shared by its members; all
// updates happen in simulation context, so it is single-threaded like
// everything else on the virtual clock.
type LoadIndex struct {
	n       int // member count
	classes int

	// Flat per-member state, updated O(1) per transition. queued and
	// suffix are [member*classes + class]; suffix[m][c] counts buffered
	// jobs of class >= c, so a class backlog is one add away.
	queued      []int32
	suffix      []int32
	busyJob     []int32 // 0/1: the member's engine holds a dispatched job
	busySlots   []int32
	slotsTotal  []int32
	totalQueued []int32
	sprinting   []bool
	powered     []int32
	available   []bool
	down        int

	// sprintConfigured records whether the members run a sprint policy;
	// without one every budget reads zero and SprintAware ordering
	// collapses to a maintained heap.
	sprintConfigured bool

	// jsq[c] orders members by (backlog(c), busySlots, index): the JSQ
	// argmin. spr[c] orders by (backlog(c), index): the SprintAware
	// ordering when no sprint policy is configured. ll orders by
	// (utilization, queued+busy, index): the LeastLoaded argmin.
	jsq []memberHeap
	spr []memberHeap
	ll  memberHeap

	// deferHeapFixes switches the index to the parallel kernel's update
	// discipline: state transitions only write their member's flat-array
	// slots (disjoint elements, so concurrent member partitions never
	// race) and mark the member dirty; the shared heaps are rebuilt
	// lazily on the coordinator at the next argmin read. Heapify yields
	// some valid heap rather than the serial fix sequence's exact
	// permutation, but only order[0] is ever read and the orderings are
	// total (index tiebreak), so the argmin — and every routing decision
	// — is identical.
	deferHeapFixes bool
	dirty          []int32
}

// newLoadIndex sizes an index for the given members. All members start
// idle and available, so the identity permutation is a valid heap.
func newLoadIndex(members []*Member, classes int, sprintConfigured bool) *LoadIndex {
	n := len(members)
	li := &LoadIndex{
		n:                n,
		classes:          classes,
		queued:           make([]int32, n*classes),
		suffix:           make([]int32, n*classes),
		busyJob:          make([]int32, n),
		busySlots:        make([]int32, n),
		slotsTotal:       make([]int32, n),
		totalQueued:      make([]int32, n),
		sprinting:        make([]bool, n),
		powered:          make([]int32, n),
		available:        make([]bool, n),
		sprintConfigured: sprintConfigured,
		jsq:              make([]memberHeap, classes),
	}
	for m, mem := range members {
		li.slotsTotal[m] = int32(mem.Cluster.Slots())
		li.powered[m] = int32(mem.Cluster.PoweredNodes())
		li.available[m] = true
	}
	if !sprintConfigured {
		// SprintAware scans when sprinting is configured (budgets vary
		// continuously between events); the spr heaps would never be read
		// there, so they are only built without a sprint policy — a stale
		// heap cannot exist to be trusted.
		li.spr = make([]memberHeap, classes)
	}
	for c := 0; c < classes; c++ {
		li.jsq[c] = newMemberHeap(li, heapJSQ, c)
		if li.spr != nil {
			li.spr[c] = newMemberHeap(li, heapBacklog, c)
		}
	}
	li.ll = newMemberHeap(li, heapLL, -1)
	return li
}

// setDeferHeapFixes enables the parallel update discipline (see the
// field comment). Called once at federation construction, before any
// transition is observed.
func (li *LoadIndex) setDeferHeapFixes() {
	li.deferHeapFixes = true
	li.dirty = make([]int32, li.n)
}

// markDirty records that member m's heap keys changed while fixes are
// deferred. Each member writes only its own element, so member
// partitions running concurrently never touch the same memory.
func (li *LoadIndex) markDirty(m int) { li.dirty[m] = 1 }

// flushDirty rebuilds every heap if any member's keys changed since the
// last argmin read. Coordinator-only: it runs inside routing reads,
// which happen in dispatch events on the global partition with all
// member partitions paused at a window boundary.
func (li *LoadIndex) flushDirty() {
	if !li.deferHeapFixes {
		return
	}
	any := false
	for m := range li.dirty {
		if li.dirty[m] != 0 {
			any = true
			li.dirty[m] = 0
		}
	}
	if !any {
		return
	}
	for c := range li.jsq {
		li.jsq[c].rebuild()
		if li.spr != nil {
			li.spr[c].rebuild()
		}
	}
	li.ll.rebuild()
}

// --- Queries ----------------------------------------------------------------

// Members returns the member count the index covers.
func (li *LoadIndex) Members() int { return li.n }

// Classes returns the per-member priority class count.
func (li *LoadIndex) Classes() int { return li.classes }

// QueuedInClass returns member m's buffered class-c jobs.
func (li *LoadIndex) QueuedInClass(m, class int) int {
	if class < 0 || class >= li.classes {
		return 0
	}
	return int(li.queued[m*li.classes+class])
}

// Backlog returns the jobs that would precede a new class-c arrival on
// member m: buffered jobs of class >= c plus the running one. Classes at
// or above the configured count see only the running job; negative
// classes see everything.
func (li *LoadIndex) Backlog(m, class int) int {
	if class >= li.classes {
		return int(li.busyJob[m])
	}
	if class < 0 {
		class = 0
	}
	return int(li.suffix[m*li.classes+class] + li.busyJob[m])
}

// TotalQueued returns member m's buffered jobs plus the running one.
func (li *LoadIndex) TotalQueued(m int) int {
	return int(li.totalQueued[m] + li.busyJob[m])
}

// Busy reports whether member m's engine holds a dispatched job.
func (li *LoadIndex) Busy(m int) bool { return li.busyJob[m] != 0 }

// BusySlots returns member m's busy computing slots.
func (li *LoadIndex) BusySlots(m int) int { return int(li.busySlots[m]) }

// Utilization returns member m's instantaneous busy-slot fraction.
func (li *LoadIndex) Utilization(m int) float64 {
	return float64(li.busySlots[m]) / float64(li.slotsTotal[m])
}

// Sprinting reports whether member m's cluster is currently sprinting.
func (li *LoadIndex) Sprinting(m int) bool { return li.sprinting[m] }

// PoweredNodes returns member m's nodes currently drawing power.
func (li *LoadIndex) PoweredNodes(m int) int { return int(li.powered[m]) }

// Available reports whether member m is routable (not in an outage).
func (li *LoadIndex) Available(m int) bool { return li.available[m] }

// DownMembers returns the number of members in a cluster-level outage.
func (li *LoadIndex) DownMembers() int { return li.down }

// bestJSQ returns the member minimizing (backlog(class), busySlots,
// index). ok is false for out-of-range classes, whose backlog key the
// heaps do not maintain.
func (li *LoadIndex) bestJSQ(class int) (int, bool) {
	if class < 0 {
		class = 0
	}
	if class >= li.classes {
		return 0, false
	}
	li.flushDirty()
	return int(li.jsq[class].order[0]), true
}

// bestBacklog returns the member minimizing (backlog(class), index) —
// the SprintAware ordering when every sprint budget reads zero. ok is
// false for out-of-range classes and for sprint-configured federations,
// whose spr heaps are not built.
func (li *LoadIndex) bestBacklog(class int) (int, bool) {
	if class < 0 {
		class = 0
	}
	if class >= li.classes || li.spr == nil {
		return 0, false
	}
	li.flushDirty()
	return int(li.spr[class].order[0]), true
}

// bestLeastLoaded returns the member minimizing (utilization,
// queued+busy, index).
func (li *LoadIndex) bestLeastLoaded() int {
	li.flushDirty()
	return int(li.ll.order[0])
}

// --- Updates ----------------------------------------------------------------

// jobQueued records a class-c job entering member m's buffers.
func (li *LoadIndex) jobQueued(m, class int) { li.jobDelta(m, class, 1) }

// jobDequeued records a class-c job leaving member m's buffers.
func (li *LoadIndex) jobDequeued(m, class int) { li.jobDelta(m, class, -1) }

// jobDelta applies one buffered-job count change: the class's counter,
// the suffix backlogs it contributes to, and every heap keyed on them.
// The spr heaps are read only when no sprint policy is configured
// (SprintAware scans otherwise), so sprint-configured federations skip
// their fixes.
func (li *LoadIndex) jobDelta(m, class int, d int32) {
	base := m * li.classes
	li.queued[base+class] += d
	for c := 0; c <= class; c++ {
		li.suffix[base+c] += d
	}
	li.totalQueued[m] += d
	if li.deferHeapFixes {
		li.markDirty(m)
		return
	}
	for c := 0; c <= class; c++ {
		li.jsq[c].fix(m)
		if li.spr != nil {
			li.spr[c].fix(m)
		}
	}
	li.ll.fix(m)
}

// busyChanged records member m's engine occupancy flipping. Occupancy is
// part of every backlog, so all heaps re-key.
func (li *LoadIndex) busyChanged(m int, busy bool) {
	if busy {
		li.busyJob[m] = 1
	} else {
		li.busyJob[m] = 0
	}
	if li.deferHeapFixes {
		li.markDirty(m)
		return
	}
	for c := 0; c < li.classes; c++ {
		li.jsq[c].fix(m)
		if li.spr != nil {
			li.spr[c].fix(m)
		}
	}
	li.ll.fix(m)
}

// occupancyChanged records member m's busy-slot count: the JSQ tiebreak
// and the LeastLoaded utilization key.
func (li *LoadIndex) occupancyChanged(m, busySlots int) {
	li.busySlots[m] = int32(busySlots)
	if li.deferHeapFixes {
		li.markDirty(m)
		return
	}
	for c := 0; c < li.classes; c++ {
		li.jsq[c].fix(m)
	}
	li.ll.fix(m)
}

// sprintingChanged records member m's DVFS state.
func (li *LoadIndex) sprintingChanged(m int, on bool) { li.sprinting[m] = on }

// powerChanged records member m's powered-node count (commission,
// decommission, failures, repairs, drain completions).
func (li *LoadIndex) powerChanged(m, poweredNodes int) { li.powered[m] = int32(poweredNodes) }

// setAvailable records member m entering or leaving a cluster-level
// outage.
func (li *LoadIndex) setAvailable(m int, up bool) {
	if li.available[m] == up {
		return
	}
	li.available[m] = up
	if up {
		li.down--
	} else {
		li.down++
	}
}

// memberObserver adapts one member's core.StateObserver callbacks onto
// the shared index.
type memberObserver struct {
	li *LoadIndex
	m  int
}

func (o memberObserver) JobQueued(class int)   { o.li.jobQueued(o.m, class) }
func (o memberObserver) JobDequeued(class int) { o.li.jobDequeued(o.m, class) }
func (o memberObserver) BusyChanged(busy bool) { o.li.busyChanged(o.m, busy) }

// --- Indexed min-heap -------------------------------------------------------

type heapKind int

const (
	// heapJSQ keys members by (backlog(class), busySlots, index).
	heapJSQ heapKind = iota
	// heapBacklog keys members by (backlog(class), index).
	heapBacklog
	// heapLL keys members by (utilization, queued+busy, index).
	heapLL
)

// memberHeap is an indexed binary min-heap over member ids whose keys
// live in the LoadIndex's flat arrays. fix restores the invariant after
// one member's key components change, in O(log n) with no allocation.
type memberHeap struct {
	li    *LoadIndex
	kind  heapKind
	class int
	order []int32 // heap array of member ids
	pos   []int32 // member id -> position in order
}

func newMemberHeap(li *LoadIndex, kind heapKind, class int) memberHeap {
	h := memberHeap{
		li:    li,
		kind:  kind,
		class: class,
		order: make([]int32, li.n),
		pos:   make([]int32, li.n),
	}
	for i := range h.order {
		h.order[i] = int32(i)
		h.pos[i] = int32(i)
	}
	return h
}

// less orders members by the heap's key, with the member index as the
// final tiebreak so every ordering is total and routing decisions match
// the linear scans they replace.
func (h *memberHeap) less(a, b int32) bool {
	li := h.li
	switch h.kind {
	case heapJSQ:
		ba := li.suffix[int(a)*li.classes+h.class] + li.busyJob[a]
		bb := li.suffix[int(b)*li.classes+h.class] + li.busyJob[b]
		if ba != bb {
			return ba < bb
		}
		if li.busySlots[a] != li.busySlots[b] {
			return li.busySlots[a] < li.busySlots[b]
		}
	case heapBacklog:
		ba := li.suffix[int(a)*li.classes+h.class] + li.busyJob[a]
		bb := li.suffix[int(b)*li.classes+h.class] + li.busyJob[b]
		if ba != bb {
			return ba < bb
		}
	case heapLL:
		ua := float64(li.busySlots[a]) / float64(li.slotsTotal[a])
		ub := float64(li.busySlots[b]) / float64(li.slotsTotal[b])
		if ua != ub {
			return ua < ub
		}
		qa := li.totalQueued[a] + li.busyJob[a]
		qb := li.totalQueued[b] + li.busyJob[b]
		if qa != qb {
			return qa < qb
		}
	}
	return a < b
}

// fix restores the heap invariant after member m's key changed.
func (h *memberHeap) fix(m int) {
	i := h.pos[m]
	if !h.up(i) {
		h.down(i)
	}
}

// rebuild re-heapifies the whole array after any number of members'
// keys changed (the deferred-fix path). A per-member fix assumes the
// rest of the heap is valid, which no longer holds once two members
// changed, so the batch repair is a full bottom-up heapify: O(n) with
// n = member count, no allocation.
func (h *memberHeap) rebuild() {
	n := int32(len(h.order))
	for i := n/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

func (h *memberHeap) swap(i, j int32) {
	h.order[i], h.order[j] = h.order[j], h.order[i]
	h.pos[h.order[i]] = i
	h.pos[h.order[j]] = j
}

// up sifts position i toward the root; it reports whether it moved.
func (h *memberHeap) up(i int32) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.order[i], h.order[parent]) {
			break
		}
		h.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down sifts position i toward the leaves.
func (h *memberHeap) down(i int32) {
	n := int32(len(h.order))
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && h.less(h.order[right], h.order[left]) {
			least = right
		}
		if !h.less(h.order[least], h.order[i]) {
			return
		}
		h.swap(i, least)
		i = least
	}
}
