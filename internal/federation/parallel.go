package federation

// Parallel-mode plumbing for the conservative sharded kernel
// (simtime.Sharded). The federation's decomposition is exact: member
// stacks only ever schedule follow-ups of their own events, and every
// cross-member interaction — routing an arrival, an admission Defer
// spilling to another member, a cluster-level outage — happens inside an
// event on the kernel's global partition, with all member partitions
// barriered and aligned to that instant. What this file adds is the
// re-serialization layer that keeps observable outputs byte-identical to
// the serial oracle:
//
//   - completed-job records emitted inside a member window are buffered
//     per member with their virtual time and replayed to Config.OnRecord
//     in merged (time, member) order at the window boundary;
//   - telemetry emissions inside a member window are buffered the same
//     way and replayed onto the real member tracers at the boundary, so
//     the collector assigns its sequence numbers in virtual-time order;
//   - emissions on the coordinator (admission verdicts during dispatch,
//     outage node events) pass straight through — the preceding flush
//     already drained everything earlier, so direct order is time order.
//
// The only divergence from the serial kernel is the order of ties: two
// events on different members at the exact same instant replay in member
// order here but in scheduling order serially. Every duration in the
// simulation is a continuous draw, so cross-member ties have measure
// zero; the determinism lane byte-diffs the two modes to hold the line.

import (
	"fmt"
	"math"

	"dias/internal/core"
	"dias/internal/simtime"
	"dias/internal/telemetry"
)

// deriveLookahead picks the conservative window for a parallel
// federation. An explicit LookaheadSec wins. With a data model, the WAN
// transfer time of one block is the minimum delay any cross-cluster
// data interaction can have — a natural, honest window. Without one,
// members interact only through global-partition events (which bound
// every window anyway), so the true lookahead is unbounded and the
// kernel may drain each member completely between global events.
func deriveLookahead(cfg Config) simtime.Duration {
	if cfg.LookaheadSec > 0 {
		return simtime.Duration(cfg.LookaheadSec)
	}
	if cfg.Data != nil {
		d := dataConfig(*cfg.Data)
		wan := d.WANBytesPerSec
		if wan == 0 {
			wan = 50e6 // dfs.DefaultWANBytesPerSec; dfs.New applies the same default
		}
		return simtime.Duration(float64(d.BlockSize) / wan)
	}
	return simtime.Duration(math.Inf(1))
}

// timedRecord is one completed-job record waiting in a member mailbox.
type timedRecord struct {
	at  simtime.Time
	rec core.JobRecord
}

// tracerOp is one buffered telemetry emission: its instant (for the
// cross-member merge) and a closure replaying it onto the real tracer.
type tracerOp struct {
	at    simtime.Time
	apply func()
}

// parallelState holds the per-member window mailboxes. All appends
// happen either on the owning member's partition goroutine (member
// phase) or on the coordinator; the kernel's barrier orders the two, so
// no slice is ever touched concurrently.
type parallelState struct {
	f    *Federation
	recs [][]timedRecord
	ops  [][]tracerOp
}

func newParallelState(f *Federation) *parallelState {
	n := len(f.cfg.Members)
	return &parallelState{
		f:    f,
		recs: make([][]timedRecord, n),
		ops:  make([][]tracerOp, n),
	}
}

func (p *parallelState) bufferRecord(member int, at simtime.Time, rec core.JobRecord) {
	p.recs[member] = append(p.recs[member], timedRecord{at: at, rec: rec})
}

// flush drains every member mailbox in merged virtual-time order, with
// the member index as tiebreak. Each mailbox is already time-ordered
// (its partition fires events in time order), so this is a k-way merge;
// records and tracer ops feed independent sinks (metrics accumulator vs
// collector), so they merge separately.
func (p *parallelState) flush(simtime.Time) {
	p.flushRecords()
	p.flushOps()
}

func (p *parallelState) flushRecords() {
	cb := p.f.cfg.OnRecord
	pending := 0
	for _, mb := range p.recs {
		pending += len(mb)
	}
	if pending == 0 {
		return
	}
	cur := make([]int, len(p.recs))
	for done := 0; done < pending; done++ {
		best := -1
		var bestAt simtime.Time
		for m, mb := range p.recs {
			if cur[m] < len(mb) {
				if at := mb[cur[m]].at; best < 0 || at < bestAt {
					best, bestAt = m, at
				}
			}
		}
		tr := p.recs[best][cur[best]]
		cur[best]++
		cb(best, tr.rec)
	}
	for m := range p.recs {
		p.recs[m] = p.recs[m][:0]
	}
}

func (p *parallelState) flushOps() {
	pending := 0
	for _, mb := range p.ops {
		pending += len(mb)
	}
	if pending == 0 {
		return
	}
	cur := make([]int, len(p.ops))
	for done := 0; done < pending; done++ {
		best := -1
		var bestAt simtime.Time
		for m, mb := range p.ops {
			if cur[m] < len(mb) {
				if at := mb[cur[m]].at; best < 0 || at < bestAt {
					best, bestAt = m, at
				}
			}
		}
		op := p.ops[best][cur[best]]
		cur[best]++
		op.apply()
	}
	for m := range p.ops {
		p.ops[m] = p.ops[m][:0]
	}
}

// wrapTracer interposes the window buffer between member m's stack and
// its collector view.
func (p *parallelState) wrapTracer(m int, real telemetry.Tracer) telemetry.Tracer {
	return &windowTracer{p: p, m: m, real: real}
}

// windowTracer buffers member-phase telemetry emissions and replays them
// at the window boundary; coordinator-phase emissions pass through so
// their collector sequence numbers interleave exactly as in a serial
// run. JobSubmitted is the one method with a return value (the span ID,
// drawn from the collector's reservoir RNG) — it only ever fires at
// arrival time, inside dispatch on the coordinator, so it always passes
// through; a member-phase call would mean the decomposition is broken
// and panics loudly rather than silently perturbing the RNG stream.
type windowTracer struct {
	p    *parallelState
	m    int
	real telemetry.Tracer
}

func (w *windowTracer) inWindow() bool { return w.p.f.kernel.InMemberPhase() }

func (w *windowTracer) buffer(at simtime.Time, apply func()) {
	w.p.ops[w.m] = append(w.p.ops[w.m], tracerOp{at: at, apply: apply})
}

func (w *windowTracer) JobSubmitted(now simtime.Time, job string, class int) telemetry.SpanID {
	if w.inWindow() {
		panic(fmt.Sprintf("federation: member %d submitted job %q from a member partition; "+
			"arrivals must dispatch on the global partition", w.m, job))
	}
	return w.real.JobSubmitted(now, job, class)
}

func (w *windowTracer) JobAdmitted(now simtime.Time, id telemetry.SpanID, policy string) {
	if !w.inWindow() {
		w.real.JobAdmitted(now, id, policy)
		return
	}
	w.buffer(now, func() { w.real.JobAdmitted(now, id, policy) })
}

func (w *windowTracer) JobRejected(now simtime.Time, job string, class int, policy string) {
	if !w.inWindow() {
		w.real.JobRejected(now, job, class, policy)
		return
	}
	w.buffer(now, func() { w.real.JobRejected(now, job, class, policy) })
}

func (w *windowTracer) JobDeferred(now simtime.Time, job string, class int, policy string) {
	if !w.inWindow() {
		w.real.JobDeferred(now, job, class, policy)
		return
	}
	w.buffer(now, func() { w.real.JobDeferred(now, job, class, policy) })
}

func (w *windowTracer) JobDispatched(now simtime.Time, id telemetry.SpanID) {
	if !w.inWindow() {
		w.real.JobDispatched(now, id)
		return
	}
	w.buffer(now, func() { w.real.JobDispatched(now, id) })
}

func (w *windowTracer) JobEvicted(now simtime.Time, id telemetry.SpanID) {
	if !w.inWindow() {
		w.real.JobEvicted(now, id)
		return
	}
	w.buffer(now, func() { w.real.JobEvicted(now, id) })
}

func (w *windowTracer) JobCompleted(now simtime.Time, id telemetry.SpanID, failed bool, reason string) {
	if !w.inWindow() {
		w.real.JobCompleted(now, id, failed, reason)
		return
	}
	w.buffer(now, func() { w.real.JobCompleted(now, id, failed, reason) })
}

func (w *windowTracer) StageStarted(now simtime.Time, id telemetry.SpanID, stage int, name string, executed, dropped int) {
	if !w.inWindow() {
		w.real.StageStarted(now, id, stage, name, executed, dropped)
		return
	}
	w.buffer(now, func() { w.real.StageStarted(now, id, stage, name, executed, dropped) })
}

func (w *windowTracer) StageEnded(now simtime.Time, id telemetry.SpanID, stage int) {
	if !w.inWindow() {
		w.real.StageEnded(now, id, stage)
		return
	}
	w.buffer(now, func() { w.real.StageEnded(now, id, stage) })
}

func (w *windowTracer) TaskRetried(now simtime.Time, id telemetry.SpanID, stage, partition, attempt int) {
	if !w.inWindow() {
		w.real.TaskRetried(now, id, stage, partition, attempt)
		return
	}
	w.buffer(now, func() { w.real.TaskRetried(now, id, stage, partition, attempt) })
}

func (w *windowTracer) TaskStraggled(now simtime.Time, id telemetry.SpanID, stage, partition int, factor float64) {
	if !w.inWindow() {
		w.real.TaskStraggled(now, id, stage, partition, factor)
		return
	}
	w.buffer(now, func() { w.real.TaskStraggled(now, id, stage, partition, factor) })
}

func (w *windowTracer) NodeEvent(now simtime.Time, kind telemetry.Kind, node int) {
	if !w.inWindow() {
		w.real.NodeEvent(now, kind, node)
		return
	}
	w.buffer(now, func() { w.real.NodeEvent(now, kind, node) })
}

func (w *windowTracer) SprintChanged(now simtime.Time, on bool, detail string) {
	if !w.inWindow() {
		w.real.SprintChanged(now, on, detail)
		return
	}
	w.buffer(now, func() { w.real.SprintChanged(now, on, detail) })
}

// runParallel drains the federation on the sharded kernel. With
// telemetry configured it replicates the serial sampler drive: an
// initial gauge row at the start instant, then one row per interval,
// sampled at pauses the kernel only grants while a justifying event at
// or beyond the tick exists — so the clock ends at the last real event,
// exactly like telemetry.Sampler.Drive.
func (f *Federation) runParallel() {
	hooks := simtime.RoundHooks{Flush: f.par.flush}
	if f.sampler != nil {
		f.sampler.Sample(f.sim.Now())
		next := f.sim.Now().Add(f.sampler.Interval())
		hooks.NextPause = func() (simtime.Time, bool) { return next, true }
		hooks.OnPause = func(now simtime.Time) {
			f.sampler.Sample(now)
			next = next.Add(f.sampler.Interval())
		}
	}
	f.kernel.Run(hooks)
}
