package federation_test

import (
	"fmt"
	"testing"

	"dias/internal/core"
	"dias/internal/faults"
	"dias/internal/federation"
	"dias/internal/simtime"
)

func TestOutageStopsRoutingToDownMember(t *testing.T) {
	fed := twoMemberFed(t, federation.NewRoundRobin(), nil)
	if err := fed.ScheduleOutage(0, 100, 200); err != nil {
		t.Fatalf("ScheduleOutage: %v", err)
	}
	// 10 arrivals during the outage window must all land on member b,
	// despite round-robin normally alternating.
	for i := 0; i < 10; i++ {
		fed.SubmitAt(120+float64(i), 0, churnJob(fmt.Sprintf("j%d", i), 2))
	}
	fed.Sim().RunUntil(250)
	routed := fed.Routed()
	if routed[0] != 0 || routed[1] != 10 {
		t.Fatalf("routed = %v, want all 10 on member b", routed)
	}
	if fed.Members()[0].Available() {
		t.Fatal("member a should be down at t=250")
	}
	fed.Run()
	if !fed.Members()[0].Available() {
		t.Fatal("member a should have recovered")
	}
	if down := fed.Members()[0].Cluster.DownNodes(); down != 0 {
		t.Fatalf("member a still has %d down nodes after recovery", down)
	}
}

func TestOutageRequeuesInFlightWorkAndConserves(t *testing.T) {
	// Route everything to member a, then take it down mid-run: running
	// tasks are aborted, re-queued, and every job still completes exactly
	// once after recovery.
	done := make(map[string]int)
	fed2, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{Name: "a"}, {Name: "b"}},
		Policy:  core.PolicyNP(2),
		Routing: pinPolicy(0),
		Seed:    1,
		OnRecord: func(member int, rec core.JobRecord) {
			done[rec.Name]++
			if rec.Failed {
				t.Errorf("job %s failed under pure churn", rec.Name)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		fed2.SubmitAt(float64(i), 0, churnJob(fmt.Sprintf("p%d", i), 4))
	}
	fed2.Sim().At(simtime.Time(20), func() {
		if err := fed2.SetMemberDown(0, true); err != nil {
			t.Errorf("SetMemberDown: %v", err)
		}
	})
	fed2.Sim().At(simtime.Time(500), func() {
		if err := fed2.SetMemberDown(0, false); err != nil {
			t.Errorf("SetMemberDown(up): %v", err)
		}
	})
	fed2.Run()
	if len(done) != 5 {
		t.Fatalf("completions for %d jobs, want 5: %v", len(done), done)
	}
	for name, n := range done {
		if n != 1 {
			t.Fatalf("job %s completed %d times", name, n)
		}
	}
	if retried := fed2.Members()[0].Engine.TasksRetried(); retried == 0 {
		t.Fatal("outage aborted no in-flight tasks; test is vacuous")
	}
}

func TestOutageValidation(t *testing.T) {
	fed := twoMemberFed(t, federation.NewJoinShortestQueue(), nil)
	if err := fed.ScheduleOutage(5, 0, 1); err == nil {
		t.Fatal("member out of range accepted")
	}
	if err := fed.ScheduleOutage(0, -1, 1); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := fed.ScheduleOutage(0, 0, 0); err == nil {
		t.Fatal("zero duration accepted")
	}
	if err := fed.ScheduleOutage(0, 100, 50); err != nil {
		t.Fatalf("valid outage rejected: %v", err)
	}
	if err := fed.ScheduleOutage(0, 120, 10); err == nil {
		t.Fatal("overlapping outage accepted")
	}
	if err := fed.ScheduleOutage(0, 150, 10); err != nil {
		t.Fatalf("back-to-back outage rejected: %v", err)
	}
	if err := fed.SetMemberDown(0, false); err == nil {
		t.Fatal("repeated state change accepted")
	}
}

func TestDataLocalHomeRemappedDuringOutage(t *testing.T) {
	// Home member 0 is down: DataLocal must fall back to an available
	// member rather than routing into the outage or panicking.
	fed := twoMemberFed(t, federation.NewDataLocal(0), nil)
	job := churnJob("homed", 2)
	if err := fed.RegisterInput(job, 0); err != nil {
		t.Fatalf("RegisterInput: %v", err)
	}
	if err := fed.ScheduleOutage(0, 10, 100); err != nil {
		t.Fatal(err)
	}
	fed.SubmitAt(5, 0, job)   // before the outage: pinned home
	fed.SubmitAt(50, 0, job)  // during: must go to member b
	fed.SubmitAt(200, 0, job) // after recovery: home again
	fed.Run()
	routed := fed.Routed()
	if routed[0] != 2 || routed[1] != 1 {
		t.Fatalf("routed = %v, want [2 1]", routed)
	}
}

// TestOutageComposesWithNodeChurn is the layered-injection case: a
// node-level churn injector runs on a member whose outage windows overlap
// its churn cycles. Neither layer may panic, and every job still
// completes exactly once.
func TestOutageComposesWithNodeChurn(t *testing.T) {
	done := map[string]int{}
	fed, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{Name: "a"}, {Name: "b"}},
		Policy:  core.PolicyNP(2),
		Routing: federation.NewJoinShortestQueue(),
		Seed:    1,
		OnRecord: func(_ int, rec core.JobRecord) {
			done[rec.Name]++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Aggressive churn on member a: cycles far shorter than the outage, so
	// overlap in both directions (churn-down at outage start, churn events
	// firing while the member is dark) is certain.
	if _, err := faults.Attach(fed.Sim(), fed.Members()[0].Engine, faults.Config{
		Churn: &faults.ChurnConfig{MTTFSec: 40, MTTRSec: 20, HorizonSec: 1500},
		Seed:  5,
	}); err != nil {
		t.Fatal(err)
	}
	if err := fed.ScheduleOutage(0, 60, 120); err != nil {
		t.Fatal(err)
	}
	if err := fed.ScheduleOutage(0, 300, 80); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		fed.SubmitAt(float64(i)*25, 0, churnJob(fmt.Sprintf("c%d", i), 3))
	}
	fed.Run()
	if len(done) != 12 {
		t.Fatalf("completions for %d jobs, want 12: %v", len(done), done)
	}
	for name, n := range done {
		if n != 1 {
			t.Fatalf("job %s completed %d times", name, n)
		}
	}
	// Everything recovers: the member is routable and no node is stuck
	// down once churn horizon and outages are past.
	if !fed.Members()[0].Available() {
		t.Fatal("member a should be routable after the outages")
	}
	if down := fed.Members()[0].Cluster.DownNodes(); down != 0 {
		t.Fatalf("%d nodes stuck down after drain", down)
	}
}
