package federation

import (
	"math/rand"

	"dias/internal/engine"
)

// Arrival is one job arrival as the routing policy sees it.
type Arrival struct {
	// Class is the job's priority class.
	Class int
	// Job is the arriving job template.
	Job *engine.Job
	// Home is the member holding the job's input data (RegisterInput), or
	// -1 when unknown — routing off Home pays WAN input fetches when the
	// federation has a data model.
	Home int
}

// RoutingPolicy picks the destination member for each arrival. Route is
// invoked in simulation context at the arrival instant; implementations
// may inspect member state (backlogs, busy slots, sprint budgets, power
// state) but must not mutate it, and must return an index in
// [0, len(members)). Implementations are free to keep internal state
// (cursors, RNGs); a policy instance must not be shared across concurrent
// federations. Route must not allocate: it sits on the dispatch hot path
// of every arrival (see BenchmarkDispatcherRouting and
// BenchmarkFederationChurnRouting).
//
// The stateful policies read the federation's LoadIndex: with every
// member up they return a maintained heap top in O(1); during outages
// (when the dispatcher hands them a filtered candidate slice) they fall
// back to a linear scan over the index's O(1) getters.
type RoutingPolicy interface {
	// Name labels the policy in experiment results.
	Name() string
	Route(arr Arrival, members []*Member) int
}

// fastIndex returns the shared load index when the candidate slice is
// the full, outage-free member set — the precondition for answering a
// Route from a maintained heap, whose entries are member indices. A
// filtered candidate slice (some member down) positions members
// differently, so callers must scan it instead.
func fastIndex(members []*Member) *LoadIndex {
	if li := members[0].li; li != nil && li.down == 0 && len(members) == li.n {
		return li
	}
	return nil
}

// heapAnswerValid confirms a heap's member pick against the caller's
// slice: Route's contract is an index into members, and the pick is only
// usable as one if the member actually sits at its own index position
// (a caller-reordered full-length slice would otherwise be misrouted).
// O(1), no false positives: when it holds, position best holds exactly
// the member the heap meant, wherever the rest may sit.
func heapAnswerValid(members []*Member, best int) bool {
	return members[best].Index == best
}

// --- Random ----------------------------------------------------------------

type randomPolicy struct{ rng *rand.Rand }

// NewRandom routes every arrival to a uniformly random member. The seed
// makes runs reproducible; use a fresh instance per federation.
func NewRandom(seed int64) RoutingPolicy {
	return &randomPolicy{rng: rand.New(rand.NewSource(seed))}
}

func (p *randomPolicy) Name() string { return "Random" }

func (p *randomPolicy) Route(_ Arrival, members []*Member) int {
	return p.rng.Intn(len(members))
}

// --- RoundRobin ------------------------------------------------------------

type roundRobinPolicy struct{ next int }

// NewRoundRobin cycles arrivals across members in index order.
func NewRoundRobin() RoutingPolicy { return &roundRobinPolicy{} }

func (p *roundRobinPolicy) Name() string { return "RoundRobin" }

func (p *roundRobinPolicy) Route(_ Arrival, members []*Member) int {
	i := p.next % len(members)
	p.next = i + 1
	return i
}

// --- JoinShortestQueue -----------------------------------------------------

type jsqPolicy struct{}

// NewJoinShortestQueue routes to the member with the smallest backlog for
// the arrival's class (queued jobs at or above its priority, plus the
// running job). Ties break toward fewer busy slots, then lower index.
func NewJoinShortestQueue() RoutingPolicy { return jsqPolicy{} }

func (jsqPolicy) Name() string { return "JSQ" }

func (jsqPolicy) Route(arr Arrival, members []*Member) int {
	if li := fastIndex(members); li != nil {
		if best, ok := li.bestJSQ(arr.Class); ok && heapAnswerValid(members, best) {
			return best
		}
	}
	// Outage-filtered or reordered candidates (or an out-of-range class):
	// linear scan over the index's O(1) backlog getters.
	best, bestBacklog, bestBusy := 0, -1, 0
	for i, m := range members {
		backlog := m.Backlog(arr.Class)
		busy := m.Cluster.BusySlots()
		if bestBacklog < 0 || backlog < bestBacklog ||
			(backlog == bestBacklog && busy < bestBusy) {
			best, bestBacklog, bestBusy = i, backlog, busy
		}
	}
	return best
}

// --- LeastLoaded -----------------------------------------------------------

type leastLoadedPolicy struct{}

// NewLeastLoaded routes to the member with the smallest busy-slot share
// (busy slots over total slots, so big and small clusters compare fairly
// in heterogeneous federations). Ties break toward the shorter total
// queue, then lower index.
func NewLeastLoaded() RoutingPolicy { return leastLoadedPolicy{} }

func (leastLoadedPolicy) Name() string { return "LeastLoaded" }

func (leastLoadedPolicy) Route(_ Arrival, members []*Member) int {
	if li := fastIndex(members); li != nil {
		if best := li.bestLeastLoaded(); heapAnswerValid(members, best) {
			return best
		}
	}
	best, bestUtil, bestQueue := 0, 2.0, 0
	for i, m := range members {
		util := m.Utilization()
		queue := m.TotalQueued()
		if util < bestUtil || (util == bestUtil && queue < bestQueue) {
			best, bestUtil, bestQueue = i, util, queue
		}
	}
	return best
}

// --- SprintAware -----------------------------------------------------------

type sprintAwarePolicy struct{}

// NewSprintAware prefers members with the most remaining sprint energy
// budget, reading the per-member sprinter and cluster power state: a
// member currently sprinting is draining its budget, so among equal
// budgets non-sprinting members win; remaining ties break toward the
// smaller class backlog, then lower index. Without sprint policies every
// budget reads zero and the policy degrades to shortest-backlog routing,
// answered from a maintained heap. With sprinting configured the budgets
// drain and replenish continuously between events, so the ordering
// cannot live in an event-updated heap; the policy scans the members
// over the index's O(1) getters instead.
func NewSprintAware() RoutingPolicy { return sprintAwarePolicy{} }

func (sprintAwarePolicy) Name() string { return "SprintAware" }

func (sprintAwarePolicy) Route(arr Arrival, members []*Member) int {
	if li := fastIndex(members); li != nil && !li.sprintConfigured {
		if best, ok := li.bestBacklog(arr.Class); ok && heapAnswerValid(members, best) {
			return best
		}
	}
	best := 0
	bestBudget, bestSprinting, bestBacklog := -1.0, true, 0
	for i, m := range members {
		budget := m.Scheduler.SprintBudgetJoules()
		sprinting := m.Cluster.Sprinting()
		backlog := m.Backlog(arr.Class)
		better := budget > bestBudget ||
			(budget == bestBudget && !sprinting && bestSprinting) ||
			(budget == bestBudget && sprinting == bestSprinting && backlog < bestBacklog)
		if bestBudget < 0 || better {
			best, bestBudget, bestSprinting, bestBacklog = i, budget, sprinting, backlog
		}
	}
	return best
}

// --- DataLocal -------------------------------------------------------------

type dataLocalPolicy struct {
	spill int
	jsq   jsqPolicy
}

// NewDataLocal routes each arrival to its data-home member (no WAN input
// fetches), spilling to JoinShortestQueue only when the home backlog
// exceeds the federation's minimum by at least spill jobs — the classic
// locality/load tradeoff. spill <= 0 pins jobs to their home
// unconditionally; arrivals without a registered home always fall back to
// JSQ.
func NewDataLocal(spill int) RoutingPolicy { return &dataLocalPolicy{spill: spill} }

func (p *dataLocalPolicy) Name() string { return "DataLocal" }

func (p *dataLocalPolicy) Route(arr Arrival, members []*Member) int {
	if arr.Home < 0 || arr.Home >= len(members) {
		return p.jsq.Route(arr, members)
	}
	if p.spill <= 0 {
		return arr.Home
	}
	alt := p.jsq.Route(arr, members)
	if members[arr.Home].Backlog(arr.Class) >= members[alt].Backlog(arr.Class)+p.spill {
		return alt
	}
	return arr.Home
}
