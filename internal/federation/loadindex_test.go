package federation

import (
	"fmt"
	"math/rand"
	"testing"

	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/simtime"
)

// indexJob builds a small two-stage job template for index tests.
func indexJob(partitions int) *engine.Job {
	input := make(engine.Dataset, partitions)
	for p := range input {
		input[p] = engine.Partition{{Key: fmt.Sprintf("k%d", p), Value: 1.0}}
	}
	return &engine.Job{
		Name:      "index-probe",
		Input:     input,
		SizeBytes: 1 << 20,
		Stages: []engine.Stage{
			{Name: "map", Kind: engine.ShuffleMap, OutPartitions: 4},
			{Name: "out", Kind: engine.Result, Deps: []int{0}},
		},
	}
}

// verifyIndexAgainstRecompute compares every index field and heap argmin
// against a brute-force recomputation from the polled getters the index
// replaced.
func verifyIndexAgainstRecompute(t *testing.T, f *Federation, at simtime.Time) {
	t.Helper()
	li := f.Index()
	classes := li.Classes()
	for i, m := range f.Members() {
		busy := 0
		if m.Scheduler.Busy() {
			busy = 1
		}
		if got, want := li.Busy(i), m.Scheduler.Busy(); got != want {
			t.Fatalf("t=%v member %d: index busy %v, scheduler %v", at, i, got, want)
		}
		if got, want := li.BusySlots(i), m.Cluster.BusySlots(); got != want {
			t.Fatalf("t=%v member %d: index busy slots %d, cluster %d", at, i, got, want)
		}
		if got, want := li.TotalQueued(i), m.Scheduler.QueuedJobs()+busy; got != want {
			t.Fatalf("t=%v member %d: index total queued %d, recomputed %d", at, i, got, want)
		}
		if got, want := li.Sprinting(i), m.Cluster.Sprinting(); got != want {
			t.Fatalf("t=%v member %d: index sprinting %v, cluster %v", at, i, got, want)
		}
		if got, want := li.PoweredNodes(i), m.Cluster.PoweredNodes(); got != want {
			t.Fatalf("t=%v member %d: index powered %d, cluster %d", at, i, got, want)
		}
		if got, want := li.Available(i), m.Available(); got != want {
			t.Fatalf("t=%v member %d: index available %v, member %v", at, i, got, want)
		}
		for c := 0; c < classes; c++ {
			if got, want := li.QueuedInClass(i, c), m.Scheduler.QueuedJobsInClass(c); got != want {
				t.Fatalf("t=%v member %d class %d: index queued %d, scheduler %d", at, i, c, got, want)
			}
			backlog := busy
			for k := classes - 1; k >= c; k-- {
				backlog += m.Scheduler.QueuedJobsInClass(k)
			}
			if got := li.Backlog(i, c); got != backlog {
				t.Fatalf("t=%v member %d class %d: index backlog %d, recomputed %d", at, i, c, got, backlog)
			}
		}
	}
	// Heap argmins must match the linear scans they replace, with the
	// same tiebreaks.
	for c := 0; c < classes; c++ {
		wantJSQ, wantSpr := 0, 0
		for i := 1; i < li.Members(); i++ {
			bi, bw := li.Backlog(i, c), li.Backlog(wantJSQ, c)
			if bi < bw || (bi == bw && li.BusySlots(i) < li.BusySlots(wantJSQ)) {
				wantJSQ = i
			}
			if li.Backlog(i, c) < li.Backlog(wantSpr, c) {
				wantSpr = i
			}
		}
		if got, ok := li.bestJSQ(c); !ok || got != wantJSQ {
			t.Fatalf("t=%v class %d: jsq heap top %d (ok=%v), scan %d", at, c, got, ok, wantJSQ)
		}
		// The spr heaps are maintained (and read) only without a sprint
		// policy; sprint-configured federations answer SprintAware by scan.
		if !li.sprintConfigured {
			if got, ok := li.bestBacklog(c); !ok || got != wantSpr {
				t.Fatalf("t=%v class %d: backlog heap top %d (ok=%v), scan %d", at, c, got, ok, wantSpr)
			}
		}
	}
	wantLL := 0
	for i := 1; i < li.Members(); i++ {
		ui, uw := li.Utilization(i), li.Utilization(wantLL)
		if ui < uw || (ui == uw && li.TotalQueued(i) < li.TotalQueued(wantLL)) {
			wantLL = i
		}
	}
	if got := li.bestLeastLoaded(); got != wantLL {
		t.Fatalf("t=%v: least-loaded heap top %d, scan %d", at, got, wantLL)
	}
	verifyHeapInvariants(t, li)
}

// verifyHeapInvariants checks the structural invariants of every
// maintained heap: position maps consistent with the heap array and the
// min-heap ordering satisfied at every edge.
func verifyHeapInvariants(t *testing.T, li *LoadIndex) {
	t.Helper()
	heaps := make([]*memberHeap, 0, 2*li.classes+1)
	for c := range li.jsq {
		heaps = append(heaps, &li.jsq[c])
		if !li.sprintConfigured {
			heaps = append(heaps, &li.spr[c])
		}
	}
	heaps = append(heaps, &li.ll)
	for _, h := range heaps {
		if len(h.order) != li.n || len(h.pos) != li.n {
			t.Fatalf("heap kind %d class %d: sized %d/%d for %d members",
				h.kind, h.class, len(h.order), len(h.pos), li.n)
		}
		for i, m := range h.order {
			if h.pos[m] != int32(i) {
				t.Fatalf("heap kind %d class %d: order[%d]=%d but pos[%d]=%d",
					h.kind, h.class, i, m, m, h.pos[m])
			}
		}
		for i := 1; i < len(h.order); i++ {
			parent := (i - 1) / 2
			if h.less(h.order[i], h.order[parent]) {
				t.Fatalf("heap kind %d class %d: order[%d] < parent order[%d]",
					h.kind, h.class, i, parent)
			}
		}
	}
}

// TestLoadIndexMatchesRecompute drives randomized arrive/dispatch/
// complete/sprint/outage/commission sequences through a federation and
// asserts, at random checkpoints, that the incrementally maintained
// index equals a brute-force recomputation from scratch.
func TestLoadIndexMatchesRecompute(t *testing.T) {
	seeds := []int64{1, 7, 23, 40, 77}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		for _, withSprint := range []bool{true, false} {
			seed, withSprint := seed, withSprint
			t.Run(fmt.Sprintf("seed%d/sprint=%v", seed, withSprint), func(t *testing.T) {
				const classes = 3
				sprint := core.SprintPolicy{
					TimeoutSec:     []float64{4, 2, 0},
					BudgetJoules:   30_000,
					DrainWatts:     900,
					ReplenishWatts: 300,
				}
				policy := core.PolicyDA([]float64{0, 0.1, 0.2})
				if withSprint {
					policy = core.PolicyDiAS([]float64{0, 0.1, 0.2}, sprint)
				}
				members := []MemberSpec{
					{}, // default testbed
					{Cluster: cluster.Config{Nodes: 4, CoresPerNode: 2, BaseFreqMHz: 800,
						SprintFreqMHz: 2400, SprintSpeedup: 2.5, IdleWatts: 60, BusyWatts: 180, SprintWatts: 270}},
					{Cluster: cluster.Config{Nodes: 6, CoresPerNode: 3, BaseFreqMHz: 800,
						SprintFreqMHz: 2400, SprintSpeedup: 2.0, IdleWatts: 60, BusyWatts: 180, SprintWatts: 270}},
					{},
				}
				f, err := New(Config{
					Members: members,
					Policy:  policy,
					Routing: NewJoinShortestQueue(),
					Seed:    seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed))
				job := indexJob(6)
				const horizon = 400.0
				jobs := 60
				if testing.Short() {
					jobs = 30
				}
				for j := 0; j < jobs; j++ {
					f.SubmitAt(rng.Float64()*horizon, rng.Intn(classes), job)
				}
				// Cluster-level outages: up to two non-overlapping windows per
				// member on a random subset.
				for i := range members {
					if rng.Intn(2) == 0 {
						continue
					}
					start := rng.Float64() * horizon / 2
					dur := 10 + rng.Float64()*40
					if err := f.ScheduleOutage(i, start, dur); err != nil {
						t.Fatal(err)
					}
					if rng.Intn(2) == 0 {
						if err := f.ScheduleOutage(i, start+dur+5+rng.Float64()*20, 5+rng.Float64()*20); err != nil {
							t.Fatal(err)
						}
					}
				}
				// Elastic churn: alternate decommission/commission of each
				// member's highest node at increasing times.
				for i, m := range f.Members() {
					node := m.Cluster.Config().Nodes - 1
					at := rng.Float64() * horizon / 2
					down := true
					for hops := rng.Intn(4); hops > 0; hops-- {
						at += 5 + rng.Float64()*40
						m, d := m, down
						f.Sim().At(simtime.Time(at), func() {
							var err error
							if d {
								err = m.Engine.DecommissionNode(node)
							} else {
								err = m.Engine.CommissionNode(node)
							}
							if err != nil {
								t.Errorf("member %d node %d toggle(down=%v): %v", m.Index, node, d, err)
							}
						})
						down = !down
						_ = i
					}
				}
				// Checkpoints: recompute-from-scratch comparisons at random
				// instants across the run.
				checks := 40
				if testing.Short() {
					checks = 15
				}
				for c := 0; c < checks; c++ {
					at := simtime.Time(rng.Float64() * horizon * 1.2)
					f.Sim().At(at, func() { verifyIndexAgainstRecompute(t, f, at) })
				}
				f.Run()
				// Terminal state: everything drained, index agrees one last time.
				verifyIndexAgainstRecompute(t, f, f.Sim().Now())
				for i := range f.Members() {
					if li := f.Index(); li.TotalQueued(i) != 0 || li.Busy(i) {
						t.Fatalf("member %d not drained: queued %d busy %v", i, li.TotalQueued(i), li.Busy(i))
					}
				}
			})
		}
	}
}

// TestRoutingDuringOutageMatchesScan pins the policies' fallback path:
// with a member down the dispatcher hands policies a filtered candidate
// slice, where heap answers are invalid and a linear scan over the index
// getters must reproduce the original polled-scan decisions.
func TestRoutingDuringOutageMatchesScan(t *testing.T) {
	f, err := New(Config{
		Members: make([]MemberSpec, 4),
		Policy:  core.PolicyNP(2),
		Routing: NewRoundRobin(),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	job := indexJob(4)
	// Uneven backlogs: member i gets i buffered arrivals (plus the one it
	// is running).
	for i, m := range f.Members() {
		for j := 0; j <= i; j++ {
			if err := m.Scheduler.Arrive(j%2, job); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.SetMemberDown(0, true); err != nil {
		t.Fatal(err)
	}
	candidates := make([]*Member, 0, 3)
	for _, m := range f.Members() {
		if m.Available() {
			candidates = append(candidates, m)
		}
	}
	// Home is in candidate coordinates: candidate 1 is member 2 here.
	arr := Arrival{Class: 1, Job: job, Home: 1}
	wantMember := map[string]int{
		// Member 1 (candidate 0) has the smallest (backlog, busy) among
		// the available members; ties with member 2 break to the lower
		// candidate index, matching the original polled scans.
		"JSQ": 1, "LeastLoaded": 1, "SprintAware": 1,
		// DataLocal stays on its data home (member 2): the home backlog
		// does not exceed the JSQ alternative by the spill threshold.
		"DataLocal": 2,
	}
	for _, p := range []RoutingPolicy{
		NewJoinShortestQueue(), NewLeastLoaded(), NewSprintAware(), NewDataLocal(1),
	} {
		got := p.Route(arr, candidates)
		if got < 0 || got >= len(candidates) {
			t.Fatalf("%s routed out of range: %d", p.Name(), got)
		}
		if candidates[got].Index != wantMember[p.Name()] {
			t.Fatalf("%s routed to member %d, want member %d",
				p.Name(), candidates[got].Index, wantMember[p.Name()])
		}
	}
	if err := f.SetMemberDown(0, false); err != nil {
		t.Fatal(err)
	}
	if li := f.Index(); li.DownMembers() != 0 || !li.Available(0) {
		t.Fatalf("index availability not restored: down=%d available0=%v",
			li.DownMembers(), li.Available(0))
	}
}

// TestRoutingReorderedSliceHonorsContract pins Route's documented
// contract — the return value indexes the caller's slice — against the
// heap fast path: a caller-reordered full-length slice must not be
// answered with a member id that points at a different member.
func TestRoutingReorderedSliceHonorsContract(t *testing.T) {
	f, err := New(Config{
		Members: make([]MemberSpec, 4),
		Policy:  core.PolicyNP(2),
		Routing: NewRandom(1),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	job := indexJob(4)
	for i, m := range f.Members() {
		for j := 0; j <= i; j++ {
			if err := m.Scheduler.Arrive(j%2, job); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Reverse the full member slice: same length, every member up, but
	// positions no longer match member indices.
	reversed := make([]*Member, 0, 4)
	for i := 3; i >= 0; i-- {
		reversed = append(reversed, f.Members()[i])
	}
	arr := Arrival{Class: 1, Job: job, Home: -1}
	for _, p := range []RoutingPolicy{
		NewJoinShortestQueue(), NewLeastLoaded(), NewSprintAware(),
	} {
		got := p.Route(arr, reversed)
		// Member 0 has the smallest backlog/utilization; in the reversed
		// slice it sits at position 3.
		if got != 3 || reversed[got].Index != 0 {
			t.Fatalf("%s on reversed slice routed to position %d (member %d), want position 3 (member 0)",
				p.Name(), got, reversed[got].Index)
		}
	}
}

// TestBacklogClamping pins the degenerate-class behaviour the heaps do
// not maintain: out-of-range classes fall back to scans with the same
// clamping the polled loops had.
func TestBacklogClamping(t *testing.T) {
	f, err := New(Config{
		Members: make([]MemberSpec, 2),
		Policy:  core.PolicyNP(2),
		Routing: NewRandom(1),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	job := indexJob(4)
	m := f.Members()[1]
	for j := 0; j < 3; j++ {
		if err := m.Scheduler.Arrive(1, job); err != nil {
			t.Fatal(err)
		}
	}
	// One dispatched (busy) + two buffered in class 1.
	if got := m.Backlog(5); got != 1 {
		t.Fatalf("above-range class backlog %d, want 1 (running job only)", got)
	}
	if got := m.Backlog(-1); got != 3 {
		t.Fatalf("below-range class backlog %d, want 3", got)
	}
	// Heap-backed routing still answers for in-range classes, and the
	// out-of-range class falls back to the scan without panicking.
	jsq := NewJoinShortestQueue()
	if got := jsq.Route(Arrival{Class: 5, Job: job, Home: -1}, f.Members()); got != 0 {
		t.Fatalf("out-of-range class routed to %d, want 0 (idle member)", got)
	}
	if got := jsq.Route(Arrival{Class: 1, Job: job, Home: -1}, f.Members()); got != 0 {
		t.Fatalf("class 1 routed to %d, want 0 (idle member)", got)
	}
}
