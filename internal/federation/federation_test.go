package federation_test

import (
	"math/rand"
	"testing"

	"dias"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/dfs"
	"dias/internal/engine"
	"dias/internal/federation"
	"dias/internal/trace"
	"dias/internal/workload"
)

// churnJob is a cheap two-stage job for routing tests: no compute, small
// input, so runs are dominated by the scheduling path under test.
func churnJob(name string, parts int) *engine.Job {
	input := make(engine.Dataset, parts)
	for p := range input {
		input[p] = engine.Partition{{Key: "k", Value: 1.0}}
	}
	return &engine.Job{
		Name:      name,
		Input:     input,
		SizeBytes: 1 << 28,
		Stages: []engine.Stage{
			{Name: "map", Kind: engine.ShuffleMap, OutPartitions: 4},
			{Name: "out", Kind: engine.Result, Deps: []int{0}},
		},
	}
}

func twoMemberFed(t *testing.T, routing federation.RoutingPolicy, data *dfs.Config) *federation.Federation {
	t.Helper()
	fed, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{Name: "a"}, {Name: "b"}},
		Policy:  core.PolicyNP(2),
		Routing: routing,
		Data:    data,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fed
}

func TestConfigValidation(t *testing.T) {
	jsq := federation.NewJoinShortestQueue()
	cases := []struct {
		name string
		cfg  federation.Config
	}{
		{"no members", federation.Config{Routing: jsq, Policy: core.PolicyNP(2)}},
		{"nil routing", federation.Config{Members: []federation.MemberSpec{{}}, Policy: core.PolicyNP(2)}},
		{"shared deflator", federation.Config{
			Members: []federation.MemberSpec{{}},
			Policy:  core.Config{Classes: 2, Deflator: nopDeflator{}},
			Routing: jsq,
		}},
		{"policy OnRecord", federation.Config{
			Members: []federation.MemberSpec{{}},
			Policy:  core.Config{Classes: 2, OnRecord: func(core.JobRecord) {}},
			Routing: jsq,
		}},
	}
	for _, c := range cases {
		if _, err := federation.New(c.cfg); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

type nopDeflator struct{}

func (nopDeflator) DropRatios(int) []float64 { return nil }
func (nopDeflator) Observe(core.JobRecord)   {}

func TestRoundRobinConservation(t *testing.T) {
	var recs []struct {
		member int
		class  int
	}
	fed, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{Name: "a"}, {Name: "b"}},
		Policy:  core.PolicyNP(2),
		Routing: federation.NewRoundRobin(),
		Seed:    1,
		OnRecord: func(member int, rec core.JobRecord) {
			recs = append(recs, struct{ member, class int }{member, rec.Class})
		},
		DiscardRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	job := churnJob("rr", 4)
	const n = 10
	for i := 0; i < n; i++ {
		fed.SubmitAt(float64(i), i%2, job)
	}
	fed.Run()
	routed := fed.Routed()
	if routed[0] != n/2 || routed[1] != n/2 {
		t.Fatalf("round-robin routed %v", routed)
	}
	if len(recs) != n {
		t.Fatalf("completed %d of %d jobs", len(recs), n)
	}
	perClass := map[int]int{}
	for _, r := range recs {
		perClass[r.class]++
	}
	if perClass[0] != n/2 || perClass[1] != n/2 {
		t.Fatalf("per-class completions = %v", perClass)
	}
}

func TestJSQPrefersShorterBacklog(t *testing.T) {
	fed := twoMemberFed(t, federation.NewJoinShortestQueue(), nil)
	members := fed.Members()
	// Load member a: one running job plus two buffered.
	job := churnJob("load", 4)
	for i := 0; i < 3; i++ {
		if err := members[0].Scheduler.Arrive(0, job); err != nil {
			t.Fatal(err)
		}
	}
	if got := members[0].Backlog(0); got != 3 {
		t.Fatalf("backlog = %d, want 3", got)
	}
	arr := federation.Arrival{Class: 0, Job: job, Home: -1}
	if got := federation.NewJoinShortestQueue().Route(arr, members); got != 1 {
		t.Fatalf("JSQ routed to %d, want 1", got)
	}
	// A high-priority arrival ignores the lower-class buffer but still
	// sees the running job.
	if got := members[0].Backlog(1); got != 1 {
		t.Fatalf("class-1 backlog = %d, want 1 (running job only)", got)
	}
}

func TestLeastLoadedUsesBusyShare(t *testing.T) {
	small := cluster.DefaultConfig()
	small.Nodes = 2 // 4 slots vs the default 20
	fed, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{Name: "big"}, {Name: "small", Cluster: small}},
		Policy:  core.PolicyNP(1),
		Routing: federation.NewLeastLoaded(),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	members := fed.Members()
	// Occupy 4 of the big member's 20 slots (20% busy) while the small
	// member runs 1 of 4 (25%): least-loaded must still pick the big one.
	for i := 0; i < 4; i++ {
		if _, ok := members[0].Cluster.Acquire(); !ok {
			t.Fatal("no free slot")
		}
	}
	if _, ok := members[1].Cluster.Acquire(); !ok {
		t.Fatal("no free slot")
	}
	arr := federation.Arrival{Class: 0, Home: -1}
	if got := federation.NewLeastLoaded().Route(arr, members); got != 0 {
		t.Fatalf("least-loaded routed to %d, want 0", got)
	}
}

func TestRandomIsSeededAndInRange(t *testing.T) {
	fed := twoMemberFed(t, federation.NewRandom(7), nil)
	members := fed.Members()
	a, b := federation.NewRandom(7), federation.NewRandom(7)
	arr := federation.Arrival{Class: 0, Home: -1}
	for i := 0; i < 100; i++ {
		x, y := a.Route(arr, members), b.Route(arr, members)
		if x != y {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, x, y)
		}
		if x < 0 || x >= len(members) {
			t.Fatalf("routed out of range: %d", x)
		}
	}
}

func TestSprintAwarePrefersBudget(t *testing.T) {
	sprint := core.SprintPolicy{
		TimeoutSec:     []float64{0, 0},
		BudgetJoules:   1000,
		DrainWatts:     100,
		ReplenishWatts: 10,
	}
	fed, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{Name: "a"}, {Name: "b"}},
		Policy:  core.Config{Classes: 2, Sprint: &sprint},
		Routing: federation.NewSprintAware(),
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	members := fed.Members()
	// Equal (full) budgets: ties break to the smaller backlog.
	job := churnJob("sprint", 4)
	if err := members[0].Scheduler.Arrive(1, job); err != nil {
		t.Fatal(err)
	}
	arr := federation.Arrival{Class: 1, Job: job, Home: -1}
	if got := federation.NewSprintAware().Route(arr, members); got != 1 {
		t.Fatalf("sprint-aware routed to %d, want idle member 1", got)
	}
}

func TestRegisterInputPlacesDataAndDataLocalRoutesHome(t *testing.T) {
	data := dfs.DefaultConfig()
	fed := twoMemberFed(t, federation.NewDataLocal(0), &data)
	members := fed.Members()
	job := churnJob("homed", 4)
	job.InputPath = "/fed/homed"
	if err := fed.RegisterInput(job, 0); err != nil {
		t.Fatal(err)
	}
	if err := fed.RegisterInput(job, 0); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	homeBlocks, err := members[0].FS.Blocks(job.InputPath)
	if err != nil {
		t.Fatal(err)
	}
	awayBlocks, err := members[1].FS.Blocks(job.InputPath)
	if err != nil {
		t.Fatal(err)
	}
	if homeBlocks[0].Remote || !awayBlocks[0].Remote {
		t.Fatalf("remote flags: home=%v away=%v", homeBlocks[0].Remote, awayBlocks[0].Remote)
	}
	local := members[0].FS.ReadTime(homeBlocks[0], 0)
	wan := members[1].FS.ReadTime(awayBlocks[0], 0)
	if wan <= local {
		t.Fatalf("WAN read (%v) not slower than local (%v)", wan, local)
	}
	arr := federation.Arrival{Class: 0, Job: job, Home: 0}
	if got := federation.NewDataLocal(0).Route(arr, members); got != 0 {
		t.Fatalf("data-local routed to %d, want home 0", got)
	}
	// Unregistered jobs fall back to JSQ.
	arr.Home = -1
	if got := federation.NewDataLocal(0).Route(arr, members); got < 0 || got > 1 {
		t.Fatalf("fallback routed to %d", got)
	}
}

func TestDataLocalSpillsUnderBacklog(t *testing.T) {
	fed := twoMemberFed(t, federation.NewDataLocal(2), nil)
	members := fed.Members()
	job := churnJob("spill", 4)
	for i := 0; i < 4; i++ {
		if err := members[0].Scheduler.Arrive(0, job); err != nil {
			t.Fatal(err)
		}
	}
	arr := federation.Arrival{Class: 0, Job: job, Home: 0}
	if got := federation.NewDataLocal(2).Route(arr, members); got != 1 {
		t.Fatalf("overloaded home kept the job (routed %d)", got)
	}
	if got := federation.NewDataLocal(0).Route(arr, members); got != 0 {
		t.Fatalf("spill<=0 must pin to home, routed %d", got)
	}
}

// TestPartialConfigsAreNotSilentlyDefaulted pins the config contract: a
// dfs config that sets only WANBytesPerSec keeps that value (other fields
// default individually), while a partially specified cluster spec is
// rejected instead of being replaced by the default testbed.
func TestPartialConfigsAreNotSilentlyDefaulted(t *testing.T) {
	data := dfs.Config{WANBytesPerSec: 10e6}
	fed := twoMemberFed(t, federation.NewRoundRobin(), &data)
	got := fed.Members()[0].FS.Config()
	if got.WANBytesPerSec != 10e6 {
		t.Fatalf("WAN bandwidth overridden to %g", got.WANBytesPerSec)
	}
	if got.DataNodes != dfs.DefaultConfig().DataNodes {
		t.Fatalf("unset DataNodes = %d, want default", got.DataNodes)
	}
	partial := cluster.Config{SprintSpeedup: 2.0} // no Nodes: incomplete
	_, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{Cluster: partial}},
		Policy:  core.PolicyNP(1),
		Routing: federation.NewRoundRobin(),
	})
	if err == nil {
		t.Fatal("partially specified cluster config accepted")
	}
}

// TestWANPenaltySlowsRemoteRouting runs the same pinned-placement workload
// with the data model on: jobs forced off their home cluster finish slower
// than jobs routed home, because executed stage-0 tasks fetch blocks over
// the WAN.
func TestWANPenaltySlowsRemoteRouting(t *testing.T) {
	run := func(home int) float64 {
		data := dfs.DefaultConfig()
		var total float64
		var n int
		fed, err := federation.New(federation.Config{
			Members: []federation.MemberSpec{{Name: "a"}, {Name: "b"}},
			Policy:  core.PolicyNP(1),
			// Pin every arrival to member 0; home decides locality.
			Routing: pinPolicy(0),
			Data:    &data,
			Seed:    1,
			OnRecord: func(_ int, rec core.JobRecord) {
				total += rec.ExecSec
				n++
			},
			DiscardRecords: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		job := churnJob("wan", 4)
		job.InputPath = "/fed/wan"
		if err := fed.RegisterInput(job, home); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			fed.SubmitAt(float64(i)*1000, 0, job)
		}
		fed.Run()
		if n != 5 {
			t.Fatalf("completed %d jobs", n)
		}
		return total / float64(n)
	}
	local := run(0)  // data on the member that runs the jobs
	remote := run(1) // data homed elsewhere: WAN fetches
	if remote <= local {
		t.Fatalf("remote exec %.2fs not slower than local %.2fs", remote, local)
	}
}

// pinPolicy routes everything to one member (test-only).
type pinPolicy int

func (p pinPolicy) Name() string                                       { return "Pin" }
func (p pinPolicy) Route(federation.Arrival, []*federation.Member) int { return int(p) }

// TestTraceReplayThroughFederation records a scheduler event log on a
// single cluster, replays it as the arrival stream of a two-cluster
// federation, and asserts conservation of jobs per class: every recorded
// arrival completes exactly once somewhere in the federation.
func TestTraceReplayThroughFederation(t *testing.T) {
	// Record: one default stack, Poisson two-class stream, trace enabled.
	log := &trace.Log{}
	policy := core.PolicyNP(2)
	policy.Trace = log
	stack, err := dias.NewStack(dias.StackConfig{Policy: policy, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*engine.Job{churnJob("low", 6), churnJob("high", 3)}
	mix, err := workload.NewPoissonMix([]float64{0.02, 0.005})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for _, a := range workload.StreamOf(mix, rng, 40) {
		stack.SubmitAt(a.At, a.Class, jobs[a.Class])
	}
	stack.Run()

	arrivals := workload.FromTraceLog(log)
	if len(arrivals) != 40 {
		t.Fatalf("trace recorded %d arrivals, want 40", len(arrivals))
	}
	wantPerClass := map[int]int{}
	for _, a := range arrivals {
		wantPerClass[a.Class]++
	}

	// Replay through a two-cluster federation.
	replay, err := workload.NewReplay(arrivals)
	if err != nil {
		t.Fatal(err)
	}
	gotPerClass := map[int]int{}
	total := 0
	fed, err := federation.New(federation.Config{
		Members: []federation.MemberSpec{{Name: "a"}, {Name: "b"}},
		Policy:  core.PolicyNP(2),
		Routing: federation.NewJoinShortestQueue(),
		Seed:    3,
		OnRecord: func(_ int, rec core.JobRecord) {
			gotPerClass[rec.Class]++
			total++
		},
		DiscardRecords: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := fed.SubmitStream(replay, workload.FixedJobs(jobs), len(arrivals), 3); err != nil {
		t.Fatal(err)
	}
	fed.Run()

	if total != len(arrivals) {
		t.Fatalf("federation completed %d of %d replayed jobs", total, len(arrivals))
	}
	for class, want := range wantPerClass {
		if gotPerClass[class] != want {
			t.Fatalf("class %d: completed %d, recorded %d (conservation violated; got=%v want=%v)",
				class, gotPerClass[class], want, gotPerClass, wantPerClass)
		}
	}
	routed := fed.Routed()
	if routed[0]+routed[1] != len(arrivals) {
		t.Fatalf("routed %v does not cover %d arrivals", routed, len(arrivals))
	}
	if routed[0] == 0 || routed[1] == 0 {
		t.Fatalf("JSQ left a member idle: routed %v", routed)
	}
}

// TestFacadeNewFederation exercises the dias.NewFederation facade with
// defaults: two default clusters, JSQ routing.
func TestFacadeNewFederation(t *testing.T) {
	fed, err := dias.NewFederation(dias.FederationConfig{Policy: core.PolicyNP(2), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(fed.Members()); got != 2 {
		t.Fatalf("default federation has %d members, want 2", got)
	}
	job := churnJob("facade", 4)
	for i := 0; i < 6; i++ {
		fed.SubmitAt(float64(i)*10, i%2, job)
	}
	fed.Run()
	var done int
	for _, m := range fed.Members() {
		done += len(m.Scheduler.Records())
	}
	if done != 6 {
		t.Fatalf("completed %d of 6 jobs", done)
	}
}
