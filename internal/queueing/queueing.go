// Package queueing models the paper's cluster as a single-server
// multi-priority queue (§4): jobs of K classes arrive in Poisson streams
// (the marked-MMAP special case) and are served one at a time, since each
// DiAS job seizes the whole cluster partition.
//
// Two evaluation paths are provided:
//
//   - exact mean waiting/response times for M[K]/G[K]/1 priority queues
//     under non-preemptive and preemptive-resume scheduling, driven by the
//     first two moments of the (phase-type) service times; and
//   - an event-driven simulator that yields full response-time
//     distributions (tails) and also covers the preemptive-repeat
//     discipline the paper's eviction baseline uses, where evicted work is
//     lost and re-executed.
//
// This pair substitutes for Horváth's MMAP[K]/PH[K]/1 solver [22]: the
// paper uses the model for mean response times and for ranking drop
// ratios, which the exact means support; tails come from simulation.
// Higher class index means higher priority, as in the paper.
package queueing

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dias/internal/phdist"
	"dias/internal/ring"
	"dias/internal/stats"
)

// Discipline selects how higher-priority arrivals treat the job in service.
type Discipline int

const (
	// NonPreemptive lets the job in service finish (the paper's NP and the
	// execution mode of DiAS).
	NonPreemptive Discipline = iota + 1
	// PreemptiveResume suspends the job in service and later continues it
	// from where it stopped.
	PreemptiveResume
	// PreemptiveRepeat evicts the job in service back to the head of its
	// queue; all its progress is lost and it is re-executed from scratch
	// (the paper's P baseline, the source of resource waste).
	PreemptiveRepeat
)

// String returns the paper's shorthand for the discipline.
func (d Discipline) String() string {
	switch d {
	case NonPreemptive:
		return "NP"
	case PreemptiveResume:
		return "P-resume"
	case PreemptiveRepeat:
		return "P"
	default:
		return fmt.Sprintf("Discipline(%d)", int(d))
	}
}

// Class describes one priority class. Index in a slice is the class id;
// higher index = higher priority.
type Class struct {
	// Rate is the Poisson arrival rate (jobs/second).
	Rate float64
	// MeanService and M2Service are the first two raw moments of the
	// service time, driving the exact formulas.
	MeanService float64
	M2Service   float64
	// Sampler draws one service time for simulation. Required by Simulate;
	// ignored by the exact formulas.
	Sampler func(*rand.Rand) float64
}

// FromPH builds a Class from an arrival rate and a phase-type service
// distribution, wiring both the moments and the sampler.
func FromPH(rate float64, ph *phdist.PH) (Class, error) {
	if rate < 0 {
		return Class{}, fmt.Errorf("queueing: rate %g negative", rate)
	}
	m1, err := ph.Mean()
	if err != nil {
		return Class{}, fmt.Errorf("service mean: %w", err)
	}
	m2, err := ph.Moment(2)
	if err != nil {
		return Class{}, fmt.Errorf("service second moment: %w", err)
	}
	return Class{
		Rate:        rate,
		MeanService: m1,
		M2Service:   m2,
		Sampler:     ph.Sample,
	}, nil
}

func validateClasses(classes []Class) error {
	if len(classes) == 0 {
		return errors.New("queueing: no classes")
	}
	for k, c := range classes {
		if c.Rate < 0 {
			return fmt.Errorf("queueing: class %d rate %g", k, c.Rate)
		}
		if c.MeanService <= 0 {
			return fmt.Errorf("queueing: class %d mean service %g", k, c.MeanService)
		}
		if c.M2Service < c.MeanService*c.MeanService {
			return fmt.Errorf("queueing: class %d M2 %g below mean² %g",
				k, c.M2Service, c.MeanService*c.MeanService)
		}
	}
	return nil
}

// Utilization returns the total offered load ρ = Σ λ_k·E[S_k].
func Utilization(classes []Class) float64 {
	var rho float64
	for _, c := range classes {
		rho += c.Rate * c.MeanService
	}
	return rho
}

// higherLoad returns Σ ρ_i over classes with strictly higher priority
// than k.
func higherLoad(classes []Class, k int) float64 {
	var rho float64
	for i := k + 1; i < len(classes); i++ {
		rho += classes[i].Rate * classes[i].MeanService
	}
	return rho
}

// MeanResponseTimes returns the exact mean response time per class for
// NonPreemptive or PreemptiveResume scheduling (classical M/G/1 priority
// results). Classes whose stability condition fails get +Inf.
// PreemptiveRepeat has no simple closed form; use Simulate.
func MeanResponseTimes(classes []Class, d Discipline) ([]float64, error) {
	if err := validateClasses(classes); err != nil {
		return nil, err
	}
	K := len(classes)
	out := make([]float64, K)
	switch d {
	case NonPreemptive:
		// Residual work from every class delays everyone.
		var w0 float64
		for _, c := range classes {
			w0 += c.Rate * c.M2Service / 2
		}
		for k := 0; k < K; k++ {
			h := higherLoad(classes, k)
			rhoK := classes[k].Rate * classes[k].MeanService
			if h+rhoK >= 1 {
				out[k] = math.Inf(1)
				continue
			}
			wait := w0 / ((1 - h) * (1 - h - rhoK))
			out[k] = wait + classes[k].MeanService
		}
	case PreemptiveResume:
		// Lower-priority work is invisible to class k.
		for k := 0; k < K; k++ {
			h := higherLoad(classes, k)
			rhoK := classes[k].Rate * classes[k].MeanService
			if h+rhoK >= 1 {
				out[k] = math.Inf(1)
				continue
			}
			var w0k float64
			for i := k; i < K; i++ {
				w0k += classes[i].Rate * classes[i].M2Service / 2
			}
			out[k] = classes[k].MeanService/(1-h) + w0k/((1-h)*(1-h-rhoK))
		}
	case PreemptiveRepeat:
		return nil, errors.New("queueing: no closed form for preemptive-repeat; use Simulate")
	default:
		return nil, fmt.Errorf("queueing: unknown discipline %d", d)
	}
	return out, nil
}

// SimResult aggregates per-class simulated response times plus server-side
// accounting.
type SimResult struct {
	// PerClass[k] holds response-time observations of class k (after
	// warmup).
	PerClass []*stats.Sample
	// Served counts jobs completed per class (after warmup).
	Served []int
	// Evictions counts preemptions that discarded work (repeat) or
	// suspended it (resume).
	Evictions int
	// WastedService is service time lost to preemptive-repeat evictions:
	// the paper's resource-waste numerator at queue level.
	WastedService float64
	// TotalService is service time spent on completed jobs.
	TotalService float64
	// Makespan is the simulated horizon.
	Makespan float64
}

// ResourceWastePct returns wasted service over total processing (the
// paper's resource-waste metric), in percent.
func (r *SimResult) ResourceWastePct() float64 {
	den := r.TotalService + r.WastedService
	if den <= 0 {
		return 0
	}
	return 100 * r.WastedService / den
}

// SimConfig controls a simulation run.
type SimConfig struct {
	// Jobs is the number of completions to observe (across classes).
	Jobs int
	// WarmupFraction of initial completions excluded from stats.
	WarmupFraction float64
	// Discipline selects the scheduling policy.
	Discipline Discipline
}

type simJob struct {
	class     int
	arrival   float64
	remaining float64 // remaining service requirement
	original  float64 // full service requirement of the current attempt
	started   bool    // has received any service (for resume)
}

// Simulate runs the event-driven single-server priority queue and returns
// per-class response-time samples.
func Simulate(rng *rand.Rand, classes []Class, cfg SimConfig) (*SimResult, error) {
	if err := validateClasses(classes); err != nil {
		return nil, err
	}
	if cfg.Jobs <= 0 {
		return nil, fmt.Errorf("queueing: %d jobs", cfg.Jobs)
	}
	if cfg.WarmupFraction < 0 || cfg.WarmupFraction >= 1 {
		return nil, fmt.Errorf("queueing: warmup fraction %g", cfg.WarmupFraction)
	}
	switch cfg.Discipline {
	case NonPreemptive, PreemptiveResume, PreemptiveRepeat:
	default:
		return nil, fmt.Errorf("queueing: unknown discipline %d", cfg.Discipline)
	}
	for k, c := range classes {
		if c.Sampler == nil && c.Rate > 0 {
			return nil, fmt.Errorf("queueing: class %d has no sampler", k)
		}
	}
	var totalRate float64
	for _, c := range classes {
		totalRate += c.Rate
	}
	if totalRate <= 0 {
		return nil, errors.New("queueing: zero total arrival rate")
	}

	K := len(classes)
	res := &SimResult{
		PerClass: make([]*stats.Sample, K),
		Served:   make([]int, K),
	}
	for k := range res.PerClass {
		res.PerClass[k] = &stats.Sample{}
	}
	warmup := int(float64(cfg.Jobs) * cfg.WarmupFraction)

	queues := make([]ring.Deque[*simJob], K)
	var clock float64
	var inService *simJob

	// Completed jobs are recycled: the simulator allocates O(peak queue
	// length) simJob structs rather than one per arrival.
	var freeJobs []*simJob
	newJob := func(class int, arrival float64) *simJob {
		var j *simJob
		if n := len(freeJobs); n > 0 {
			j = freeJobs[n-1]
			freeJobs[n-1] = nil
			freeJobs = freeJobs[:n-1]
			*j = simJob{}
		} else {
			j = &simJob{}
		}
		j.class, j.arrival = class, arrival
		j.original = classes[class].Sampler(rng)
		j.remaining = j.original
		return j
	}

	drawArrival := func() (float64, int) {
		gap := rng.ExpFloat64() / totalRate
		u := rng.Float64() * totalRate
		var cum float64
		for k, c := range classes {
			cum += c.Rate
			if u < cum {
				return gap, k
			}
		}
		return gap, K - 1
	}

	nextGap, nextClass := drawArrival()
	nextArrival := clock + nextGap

	// popHighest removes and returns the head of the highest non-empty queue.
	popHighest := func() *simJob {
		for k := K - 1; k >= 0; k-- {
			if queues[k].Len() > 0 {
				return queues[k].PopFront()
			}
		}
		return nil
	}

	served := 0
	for served < cfg.Jobs {
		if inService == nil {
			if j := popHighest(); j != nil {
				inService = j
			} else {
				// Idle: jump to the next arrival.
				clock = nextArrival
				j := newJob(nextClass, clock)
				queues[j.class].PushBack(j)
				nextGap, nextClass = drawArrival()
				nextArrival = clock + nextGap
				continue
			}
		}
		completion := clock + inService.remaining
		if nextArrival < completion {
			// Arrival first.
			elapsed := nextArrival - clock
			clock = nextArrival
			j := newJob(nextClass, clock)
			nextGap, nextClass = drawArrival()
			nextArrival = clock + nextGap

			if cfg.Discipline != NonPreemptive && j.class > inService.class {
				// Preempt: the running job returns to the head of its queue.
				victim := inService
				victim.remaining -= elapsed
				res.Evictions++
				switch cfg.Discipline {
				case PreemptiveResume:
					victim.started = true
				case PreemptiveRepeat:
					// Work done on this attempt is wasted; it restarts from
					// scratch (fresh attempt, identical requirement).
					res.WastedService += victim.original - victim.remaining
					victim.remaining = victim.original
				}
				queues[victim.class].PushFront(victim)
				// Under preemptive disciplines the job in service always has
				// the highest class present, so the preemptor runs at once.
				inService = j
				continue
			}
			inService.remaining -= elapsed
			queues[j.class].PushBack(j)
			continue
		}
		// Completion first.
		clock = completion
		res.TotalService += inService.original
		served++
		if served > warmup {
			res.PerClass[inService.class].Add(clock - inService.arrival)
			res.Served[inService.class]++
		}
		freeJobs = append(freeJobs, inService)
		inService = nil
	}
	res.Makespan = clock
	return res, nil
}
