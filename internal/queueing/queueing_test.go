package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dias/internal/phdist"
)

func expClass(t *testing.T, rate, mu float64) Class {
	t.Helper()
	ph, err := phdist.Exponential(mu)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromPH(rate, ph)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFromPH(t *testing.T) {
	ph, err := phdist.Erlang(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	c, err := FromPH(1.5, ph)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.MeanService-0.5) > 1e-12 {
		t.Fatalf("mean = %g, want 0.5", c.MeanService)
	}
	// Erlang(2,4): E[X²] = k(k+1)/λ² = 6/16.
	if math.Abs(c.M2Service-6.0/16) > 1e-12 {
		t.Fatalf("m2 = %g, want %g", c.M2Service, 6.0/16)
	}
	if c.Sampler == nil {
		t.Fatal("no sampler")
	}
	if _, err := FromPH(-1, ph); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestUtilization(t *testing.T) {
	classes := []Class{
		{Rate: 0.1, MeanService: 2, M2Service: 8},
		{Rate: 0.2, MeanService: 1, M2Service: 2},
	}
	if got := Utilization(classes); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("rho = %g, want 0.4", got)
	}
}

func TestMM1SingleClass(t *testing.T) {
	// M/M/1: T = 1/(mu - lambda) for both disciplines.
	lambda, mu := 0.5, 1.0
	classes := []Class{expClass(t, lambda, mu)}
	want := 1 / (mu - lambda)
	for _, d := range []Discipline{NonPreemptive, PreemptiveResume} {
		got, err := MeanResponseTimes(classes, d)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[0]-want) > 1e-9 {
			t.Fatalf("%v: T = %g, want %g", d, got[0], want)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	// Same service everywhere; higher class must see lower response.
	classes := []Class{
		expClass(t, 0.3, 1), // low
		expClass(t, 0.3, 1), // high
	}
	for _, d := range []Discipline{NonPreemptive, PreemptiveResume} {
		got, err := MeanResponseTimes(classes, d)
		if err != nil {
			t.Fatal(err)
		}
		if got[1] >= got[0] {
			t.Fatalf("%v: high class %g not faster than low %g", d, got[1], got[0])
		}
	}
}

func TestPreemptiveShieldsHighClass(t *testing.T) {
	// Under preemptive-resume the top class never sees lower-class work:
	// its response equals a solo M/M/1 at its own load.
	classes := []Class{
		expClass(t, 0.5, 1), // heavy low-priority load
		expClass(t, 0.2, 1),
	}
	resp, err := MeanResponseTimes(classes, PreemptiveResume)
	if err != nil {
		t.Fatal(err)
	}
	solo, err := MeanResponseTimes([]Class{classes[1]}, PreemptiveResume)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(resp[1]-solo[0]) > 1e-9 {
		t.Fatalf("top class %g, solo %g", resp[1], solo[0])
	}
	// Non-preemptive top class is slower: it waits for residual low work.
	np, err := MeanResponseTimes(classes, NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	if np[1] <= resp[1] {
		t.Fatalf("NP high %g not above preemptive %g", np[1], resp[1])
	}
}

func TestInstabilityGivesInf(t *testing.T) {
	classes := []Class{
		expClass(t, 0.9, 1), // low: with high's 0.5 load, total 1.4 > 1
		expClass(t, 0.5, 1),
	}
	got, err := MeanResponseTimes(classes, PreemptiveResume)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got[0], 1) {
		t.Fatalf("unstable low class = %g, want +Inf", got[0])
	}
	if math.IsInf(got[1], 1) {
		t.Fatalf("stable high class = %g", got[1])
	}
}

func TestMeanResponseTimesErrors(t *testing.T) {
	if _, err := MeanResponseTimes(nil, NonPreemptive); err == nil {
		t.Fatal("empty classes accepted")
	}
	good := []Class{{Rate: 1, MeanService: 0.1, M2Service: 0.02}}
	if _, err := MeanResponseTimes(good, PreemptiveRepeat); err == nil {
		t.Fatal("preemptive-repeat closed form should be refused")
	}
	if _, err := MeanResponseTimes(good, Discipline(99)); err == nil {
		t.Fatal("unknown discipline accepted")
	}
	bad := []Class{{Rate: 1, MeanService: 1, M2Service: 0.5}}
	if _, err := MeanResponseTimes(bad, NonPreemptive); err == nil {
		t.Fatal("M2 < mean² accepted")
	}
}

func TestSimulationMatchesExactNP(t *testing.T) {
	classes := []Class{
		expClass(t, 0.45, 1),
		expClass(t, 0.15, 0.75),
	}
	want, err := MeanResponseTimes(classes, NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	res, err := Simulate(rng, classes, SimConfig{Jobs: 200000, WarmupFraction: 0.1, Discipline: NonPreemptive})
	if err != nil {
		t.Fatal(err)
	}
	for k := range classes {
		got := res.PerClass[k].Mean()
		if math.Abs(got-want[k])/want[k] > 0.06 {
			t.Fatalf("class %d: simulated %g vs exact %g", k, got, want[k])
		}
	}
	if res.Evictions != 0 {
		t.Fatalf("NP run recorded %d evictions", res.Evictions)
	}
	if res.WastedService != 0 {
		t.Fatalf("NP run wasted %g service", res.WastedService)
	}
}

func TestSimulationMatchesExactPreemptiveResume(t *testing.T) {
	classes := []Class{
		expClass(t, 0.4, 1),
		expClass(t, 0.2, 1),
	}
	want, err := MeanResponseTimes(classes, PreemptiveResume)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	res, err := Simulate(rng, classes, SimConfig{Jobs: 200000, WarmupFraction: 0.1, Discipline: PreemptiveResume})
	if err != nil {
		t.Fatal(err)
	}
	for k := range classes {
		got := res.PerClass[k].Mean()
		if math.Abs(got-want[k])/want[k] > 0.06 {
			t.Fatalf("class %d: simulated %g vs exact %g", k, got, want[k])
		}
	}
	if res.Evictions == 0 {
		t.Fatal("preemptive run recorded no evictions")
	}
	if res.WastedService != 0 {
		t.Fatal("resume discipline must not waste service")
	}
}

func TestPreemptiveRepeatWastesWork(t *testing.T) {
	classes := []Class{
		expClass(t, 0.35, 0.8),
		expClass(t, 0.25, 1.2),
	}
	rng := rand.New(rand.NewSource(3))
	repeat, err := Simulate(rng, classes, SimConfig{Jobs: 100000, WarmupFraction: 0.1, Discipline: PreemptiveRepeat})
	if err != nil {
		t.Fatal(err)
	}
	if repeat.WastedService <= 0 {
		t.Fatal("repeat discipline wasted no service")
	}
	if w := repeat.ResourceWastePct(); w <= 0 || w >= 100 {
		t.Fatalf("waste pct = %g", w)
	}
	rng2 := rand.New(rand.NewSource(3))
	resume, err := Simulate(rng2, classes, SimConfig{Jobs: 100000, WarmupFraction: 0.1, Discipline: PreemptiveResume})
	if err != nil {
		t.Fatal(err)
	}
	// Re-execution makes the low class slower than under resume.
	if repeat.PerClass[0].Mean() <= resume.PerClass[0].Mean() {
		t.Fatalf("repeat low-class mean %g not above resume %g",
			repeat.PerClass[0].Mean(), resume.PerClass[0].Mean())
	}
}

func TestSimulateValidation(t *testing.T) {
	classes := []Class{expClass(t, 0.5, 1)}
	rng := rand.New(rand.NewSource(1))
	if _, err := Simulate(rng, classes, SimConfig{Jobs: 0, Discipline: NonPreemptive}); err == nil {
		t.Fatal("zero jobs accepted")
	}
	if _, err := Simulate(rng, classes, SimConfig{Jobs: 10, WarmupFraction: 1, Discipline: NonPreemptive}); err == nil {
		t.Fatal("warmup=1 accepted")
	}
	if _, err := Simulate(rng, classes, SimConfig{Jobs: 10, Discipline: Discipline(0)}); err == nil {
		t.Fatal("zero discipline accepted")
	}
	noSampler := []Class{{Rate: 1, MeanService: 1, M2Service: 2}}
	if _, err := Simulate(rng, noSampler, SimConfig{Jobs: 10, Discipline: NonPreemptive}); err == nil {
		t.Fatal("missing sampler accepted")
	}
	zeroRate := []Class{{Rate: 0, MeanService: 1, M2Service: 2}}
	if _, err := Simulate(rng, zeroRate, SimConfig{Jobs: 10, Discipline: NonPreemptive}); err == nil {
		t.Fatal("zero total rate accepted")
	}
}

func TestDisciplineString(t *testing.T) {
	if NonPreemptive.String() != "NP" || PreemptiveRepeat.String() != "P" {
		t.Fatal("unexpected shorthand")
	}
	if PreemptiveResume.String() != "P-resume" {
		t.Fatal("unexpected resume shorthand")
	}
	if Discipline(42).String() == "" {
		t.Fatal("unknown discipline has empty string")
	}
}

// Property: exact NP response times are monotone in priority when all
// classes share the same service distribution.
func TestPropertyMonotonePriorities(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		classes := make([]Class, k)
		// Total load < 0.9 split unevenly.
		load := 0.2 + rng.Float64()*0.7
		for i := range classes {
			classes[i] = Class{Rate: load / float64(k), MeanService: 1, M2Service: 2}
		}
		resp, err := MeanResponseTimes(classes, NonPreemptive)
		if err != nil {
			return false
		}
		for i := 1; i < k; i++ {
			if resp[i] > resp[i-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: simulated utilization tracks offered load for stable systems.
func TestPropertySimulatedLoad(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rho := 0.3 + rng.Float64()*0.5
		ph, err := phdist.Exponential(1)
		if err != nil {
			return false
		}
		c, err := FromPH(rho, ph)
		if err != nil {
			return false
		}
		res, err := Simulate(rng, []Class{c}, SimConfig{Jobs: 20000, WarmupFraction: 0.1, Discipline: NonPreemptive})
		if err != nil {
			return false
		}
		got := res.TotalService / res.Makespan
		return math.Abs(got-rho) < 0.08
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulateNP(b *testing.B) {
	ph, err := phdist.Exponential(1)
	if err != nil {
		b.Fatal(err)
	}
	c, err := FromPH(0.7, ph)
	if err != nil {
		b.Fatal(err)
	}
	classes := []Class{c, c}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := Simulate(rng, classes, SimConfig{Jobs: 5000, WarmupFraction: 0.1, Discipline: NonPreemptive}); err != nil {
			b.Fatal(err)
		}
	}
}
