package mmap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dias/internal/matrix"
)

func TestMarkedPoissonValidation(t *testing.T) {
	if _, err := MarkedPoisson(nil); err == nil {
		t.Fatal("empty rates accepted")
	}
	if _, err := MarkedPoisson([]float64{-1}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := MarkedPoisson([]float64{0, 0}); err == nil {
		t.Fatal("zero rates accepted")
	}
}

func TestMarkedPoissonRates(t *testing.T) {
	m, err := MarkedPoisson([]float64{1.8, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Classes() != 2 || m.Order() != 1 {
		t.Fatalf("classes=%d order=%d", m.Classes(), m.Order())
	}
	rates, err := m.Rates()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-1.8) > 1e-12 || math.Abs(rates[1]-0.2) > 1e-12 {
		t.Fatalf("rates = %v", rates)
	}
	total, err := m.TotalRate()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-2) > 1e-12 {
		t.Fatalf("total = %g", total)
	}
}

func TestNewValidation(t *testing.T) {
	good0 := matrix.New(1, 1, []float64{-2})
	good1 := matrix.New(1, 1, []float64{2})
	if _, err := New(good0, good1); err != nil {
		t.Fatalf("valid MMAP rejected: %v", err)
	}
	cases := []struct {
		name  string
		d0    *matrix.Matrix
		marks []*matrix.Matrix
	}{
		{"nil d0", nil, []*matrix.Matrix{good1}},
		{"no marks", good0, nil},
		{"shape mismatch", good0, []*matrix.Matrix{matrix.Zeros(2, 2)}},
		{"negative mark", good0, []*matrix.Matrix{matrix.New(1, 1, []float64{-2})}},
		{"rows not zero", matrix.New(1, 1, []float64{-3}), []*matrix.Matrix{good1}},
		{"positive d0 diagonal", matrix.New(1, 1, []float64{2}), []*matrix.Matrix{matrix.New(1, 1, []float64{-2})}},
	}
	for _, c := range cases {
		if _, err := New(c.d0, c.marks...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// Negative off-diagonal in D0.
	d0 := matrix.New(2, 2, []float64{-1, -1, 0, -2})
	d1 := matrix.New(2, 2, []float64{1, 1, 1, 1})
	if _, err := New(d0, d1); err == nil {
		t.Error("negative off-diagonal accepted")
	}
}

func TestMarkedPoissonSampling(t *testing.T) {
	m, err := MarkedPoisson([]float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	src, err := m.NewSource(rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	var gapSum float64
	counts := [2]int{}
	for i := 0; i < n; i++ {
		gap, k := src.Next(rng)
		gapSum += gap
		counts[k]++
	}
	if got := gapSum / n; math.Abs(got-0.25) > 0.01 {
		t.Fatalf("mean gap = %g, want 0.25", got)
	}
	if frac := float64(counts[0]) / n; math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("class-0 fraction = %g, want 0.75", frac)
	}
}

func TestMMPP2Validation(t *testing.T) {
	if _, err := MMPP2(0, 1, []float64{1}, []float64{2}); err == nil {
		t.Fatal("zero switch rate accepted")
	}
	if _, err := MMPP2(1, 1, []float64{1}, []float64{2, 3}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := MMPP2(1, 1, []float64{-1}, []float64{2}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestMMPP2StationaryRates(t *testing.T) {
	// Symmetric switching: half the time calm (rate 1), half bursty
	// (rate 9): stationary class rate = 5.
	m, err := MMPP2(0.5, 0.5, []float64{1}, []float64{9})
	if err != nil {
		t.Fatal(err)
	}
	rates, err := m.Rates()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-5) > 1e-9 {
		t.Fatalf("rate = %g, want 5", rates[0])
	}
	pi, err := m.StationaryPhase()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.5) > 1e-9 {
		t.Fatalf("pi = %v, want [0.5 0.5]", pi)
	}
}

func TestMMPP2SamplingMatchesStationaryRate(t *testing.T) {
	m, err := MMPP2(0.2, 0.6, []float64{0.5, 0.1}, []float64{4, 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.TotalRate()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	src, err := m.NewSource(rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 80000
	var total float64
	for i := 0; i < n; i++ {
		gap, _ := src.Next(rng)
		total += gap
	}
	got := n / total // empirical arrival rate
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("empirical rate %g vs stationary %g", got, want)
	}
}

func TestMMPP2IsBursty(t *testing.T) {
	// Slow switching + very different intensities => gap SCV well above 1
	// (the Poisson value). This is what distinguishes MMPPs from Poisson.
	m, err := MMPP2(0.02, 0.02, []float64{0.2}, []float64{8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	src, err := m.NewSource(rng)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		gap, _ := src.Next(rng)
		sum += gap
		sum2 += gap * gap
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	scv := variance / (mean * mean)
	if scv < 1.5 {
		t.Fatalf("gap scv = %g, want >> 1 for a bursty MMPP", scv)
	}
}

// Property: for random marked Poisson rates, the stationary class rates
// equal the inputs.
func TestPropertyMarkedPoissonRates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		rates := make([]float64, k)
		for i := range rates {
			rates[i] = rng.Float64() + 0.05
		}
		m, err := MarkedPoisson(rates)
		if err != nil {
			return false
		}
		got, err := m.Rates()
		if err != nil {
			return false
		}
		for i := range rates {
			if math.Abs(got[i]-rates[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MMPP2 stationary rates are convex combinations of calm and
// burst intensities with the stationary phase weights.
func TestPropertyMMPP2Rates(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r01 := rng.Float64() + 0.05
		r10 := rng.Float64() + 0.05
		calm := []float64{rng.Float64() * 2}
		burst := []float64{rng.Float64()*5 + 2}
		m, err := MMPP2(r01, r10, calm, burst)
		if err != nil {
			return false
		}
		got, err := m.Rates()
		if err != nil {
			return false
		}
		p0 := r10 / (r01 + r10) // stationary calm probability
		want := p0*calm[0] + (1-p0)*burst[0]
		return math.Abs(got[0]-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
