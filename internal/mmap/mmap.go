// Package mmap implements Marked Markovian Arrival Processes with K
// classes — MMAP[K] — the arrival model of the paper's queueing analysis
// (§4). An MMAP[K] is parameterized by K+1 matrices (D0, D1, ..., DK):
// D0 holds the transition rates without arrivals (and the diagonal), Dk
// the rates that produce a class-k arrival, and D = Σ Dk must be the
// generator of an irreducible Markov chain.
//
// The marked Poisson process (the simplest member, used by the paper's
// experiments) and Markov-modulated processes (bursty traffic) are
// provided as constructors. Samplers plug into the queueing simulator.
package mmap

import (
	"errors"
	"fmt"
	"math/rand"

	"dias/internal/matrix"
)

// MMAP is a validated marked Markovian arrival process.
type MMAP struct {
	d0    *matrix.Matrix
	marks []*matrix.Matrix // D1..DK
	order int
	k     int
}

// New validates and builds an MMAP[K] from D0 and D1..DK.
func New(d0 *matrix.Matrix, marks ...*matrix.Matrix) (*MMAP, error) {
	if d0 == nil || len(marks) == 0 {
		return nil, errors.New("mmap: need D0 and at least one marked matrix")
	}
	n := d0.Rows()
	if d0.Cols() != n {
		return nil, fmt.Errorf("mmap: D0 is %dx%d", d0.Rows(), d0.Cols())
	}
	for k, dk := range marks {
		if dk == nil || dk.Rows() != n || dk.Cols() != n {
			return nil, fmt.Errorf("mmap: D%d has wrong shape", k+1)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if dk.At(i, j) < 0 {
					return nil, fmt.Errorf("mmap: D%d[%d][%d] = %g negative", k+1, i, j, dk.At(i, j))
				}
			}
		}
	}
	// D0 off-diagonals nonnegative, diagonal negative, rows of D sum to 0.
	for i := 0; i < n; i++ {
		var row float64
		for j := 0; j < n; j++ {
			v := d0.At(i, j)
			if i != j && v < 0 {
				return nil, fmt.Errorf("mmap: D0[%d][%d] = %g negative", i, j, v)
			}
			if i == j && v > 1e-12 {
				return nil, fmt.Errorf("mmap: D0 diagonal [%d] = %g positive", i, v)
			}
			row += v
		}
		for _, dk := range marks {
			for j := 0; j < n; j++ {
				row += dk.At(i, j)
			}
		}
		if row > 1e-9 || row < -1e-9 {
			return nil, fmt.Errorf("mmap: row %d of D sums to %g, want 0", i, row)
		}
	}
	cp := make([]*matrix.Matrix, len(marks))
	for i, dk := range marks {
		cp[i] = dk.Clone()
	}
	return &MMAP{d0: d0.Clone(), marks: cp, order: n, k: len(marks)}, nil
}

// Classes returns K, the number of marked classes.
func (m *MMAP) Classes() int { return m.k }

// Order returns the number of phases of the modulating chain.
func (m *MMAP) Order() int { return m.order }

// generator returns D = D0 + ΣDk.
func (m *MMAP) generator() *matrix.Matrix {
	d := m.d0.Clone()
	for _, dk := range m.marks {
		d = matrix.Add(d, dk)
	}
	return d
}

// StationaryPhase returns the stationary distribution of the modulating
// chain D.
func (m *MMAP) StationaryPhase() ([]float64, error) {
	pi, err := matrix.StationaryVector(m.generator())
	if err != nil {
		return nil, fmt.Errorf("mmap: %w", err)
	}
	return pi, nil
}

// Rates returns the stationary arrival rate of each class:
// λk = π·Dk·1.
func (m *MMAP) Rates() ([]float64, error) {
	pi, err := m.StationaryPhase()
	if err != nil {
		return nil, err
	}
	out := make([]float64, m.k)
	for k, dk := range m.marks {
		out[k] = matrix.Dot(matrix.VecMul(pi, dk), matrix.Ones(m.order))
	}
	return out, nil
}

// TotalRate returns the aggregate stationary arrival rate.
func (m *MMAP) TotalRate() (float64, error) {
	rates, err := m.Rates()
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, r := range rates {
		sum += r
	}
	return sum, nil
}

// Source is a stateful arrival sampler for one MMAP realization.
type Source struct {
	m     *MMAP
	phase int
}

// NewSource starts a sampler in the stationary phase distribution.
func (m *MMAP) NewSource(rng *rand.Rand) (*Source, error) {
	pi, err := m.StationaryPhase()
	if err != nil {
		return nil, err
	}
	u := rng.Float64()
	phase := m.order - 1
	var cum float64
	for i, p := range pi {
		cum += p
		if u < cum {
			phase = i
			break
		}
	}
	return &Source{m: m, phase: phase}, nil
}

// Next draws the gap to the next arrival and its class (0-based).
// The modulating chain evolves through hidden (D0) transitions until a
// marked transition fires.
func (s *Source) Next(rng *rand.Rand) (gap float64, class int) {
	m := s.m
	for {
		// Total outflow from the current phase.
		exit := -m.d0.At(s.phase, s.phase)
		if exit <= 0 {
			// Defensive: an absorbing phase would deadlock; restart from 0.
			s.phase = 0
			continue
		}
		gap += rng.ExpFloat64() / exit
		// Choose the transition proportionally to rates.
		u := rng.Float64() * exit
		var cum float64
		for j := 0; j < m.order; j++ {
			if j == s.phase {
				continue
			}
			cum += m.d0.At(s.phase, j)
			if u < cum {
				s.phase = j
				goto next
			}
		}
		for k, dk := range m.marks {
			for j := 0; j < m.order; j++ {
				cum += dk.At(s.phase, j)
				if u < cum {
					s.phase = j
					return gap, k
				}
			}
		}
		// Numerical slack: attribute to the last class, stay in phase.
		return gap, m.k - 1
	next:
	}
}

// MarkedPoisson builds the simplest MMAP[K]: independent Poisson streams
// with the given per-class rates (the paper's experimental setting).
func MarkedPoisson(rates []float64) (*MMAP, error) {
	if len(rates) == 0 {
		return nil, errors.New("mmap: no rates")
	}
	var total float64
	for k, r := range rates {
		if r < 0 {
			return nil, fmt.Errorf("mmap: rate[%d] = %g", k, r)
		}
		total += r
	}
	if total <= 0 {
		return nil, errors.New("mmap: zero total rate")
	}
	d0 := matrix.New(1, 1, []float64{-total})
	marks := make([]*matrix.Matrix, len(rates))
	for k, r := range rates {
		marks[k] = matrix.New(1, 1, []float64{r})
	}
	return New(d0, marks...)
}

// MMPP2 builds a two-phase Markov-modulated marked Poisson process:
// the chain alternates between a "calm" and a "bursty" phase with switch
// rates r01 (calm->bursty) and r10 (bursty->calm); class-k arrivals occur
// at calmRates[k] in the calm phase and burstRates[k] in the bursty one.
// This models the time-varying arrival intensities the paper's traces
// exhibit (§2.2).
func MMPP2(r01, r10 float64, calmRates, burstRates []float64) (*MMAP, error) {
	if r01 <= 0 || r10 <= 0 {
		return nil, fmt.Errorf("mmap: switch rates %g/%g", r01, r10)
	}
	if len(calmRates) != len(burstRates) || len(calmRates) == 0 {
		return nil, fmt.Errorf("mmap: %d calm vs %d burst rates", len(calmRates), len(burstRates))
	}
	k := len(calmRates)
	var calmTotal, burstTotal float64
	for i := 0; i < k; i++ {
		if calmRates[i] < 0 || burstRates[i] < 0 {
			return nil, fmt.Errorf("mmap: negative rate for class %d", i)
		}
		calmTotal += calmRates[i]
		burstTotal += burstRates[i]
	}
	d0 := matrix.New(2, 2, []float64{
		-(calmTotal + r01), r01,
		r10, -(burstTotal + r10),
	})
	marks := make([]*matrix.Matrix, k)
	for i := 0; i < k; i++ {
		marks[i] = matrix.New(2, 2, []float64{
			calmRates[i], 0,
			0, burstRates[i],
		})
	}
	return New(d0, marks...)
}
