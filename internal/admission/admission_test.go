package admission

import (
	"testing"

	"dias/internal/simtime"
)

// fakeState is a canned scheduler view.
type fakeState struct {
	backlog []int
	busy    bool
}

func (s fakeState) Backlog(class int) int {
	if class < 0 || class >= len(s.backlog) {
		return 0
	}
	return s.backlog[class]
}

func (s fakeState) QueuedJobsInClass(class int) int { return s.Backlog(class) }
func (s fakeState) Busy() bool                      { return s.busy }

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{Accept: "accept", Reject: "reject", Defer: "defer"} {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q", d, got)
		}
	}
	if got := Decision(99).String(); got != "decision(99)" {
		t.Errorf("unknown decision = %q", got)
	}
}

func TestAlwaysAdmit(t *testing.T) {
	p := AlwaysAdmit{}
	if p.Name() != "always" {
		t.Errorf("name = %q", p.Name())
	}
	if d := p.Admit(0, JobInfo{Class: 0}, fakeState{backlog: []int{1 << 20}}); d != Accept {
		t.Errorf("decision = %v", d)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	cases := []TokenBucketConfig{
		{},
		{Rate: []float64{1}, Burst: []float64{1, 1}},
		{Rate: []float64{0}, Burst: []float64{1}},
		{Rate: []float64{-1}, Burst: []float64{1}},
		{Rate: []float64{1}, Burst: []float64{0.5}},
	}
	for i, cfg := range cases {
		if _, err := NewTokenBucket(cfg); err == nil {
			t.Errorf("case %d: accepted", i)
		}
	}
}

func TestTokenBucketRateAndBurst(t *testing.T) {
	tb, err := NewTokenBucket(TokenBucketConfig{Rate: []float64{1}, Burst: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	st := fakeState{}
	job := JobInfo{Class: 0}
	// Starts full: the burst passes, the next arrival at t=0 is shed.
	if d := tb.Admit(0, job, st); d != Accept {
		t.Fatalf("burst 1: %v", d)
	}
	if d := tb.Admit(0, job, st); d != Accept {
		t.Fatalf("burst 2: %v", d)
	}
	if d := tb.Admit(0, job, st); d != Reject {
		t.Fatalf("empty bucket: %v", d)
	}
	// 1 token/sec: half a second refills half a token (still shed), a
	// full second refills enough for one.
	if d := tb.Admit(simtime.Time(0.5), job, st); d != Reject {
		t.Fatalf("t=0.5: %v", d)
	}
	if d := tb.Admit(simtime.Time(1.5), job, st); d != Accept {
		t.Fatalf("t=1.5: %v", d)
	}
	// Refill caps at the burst: a long idle stretch buys 2 tokens, not 10.
	for i, want := range []Decision{Accept, Accept, Reject} {
		if d := tb.Admit(simtime.Time(100), job, st); d != want {
			t.Fatalf("after idle, arrival %d: %v", i, d)
		}
	}
	// Out-of-range classes are shed, not admitted silently.
	if d := tb.Admit(simtime.Time(100), JobInfo{Class: 5}, st); d != Reject {
		t.Errorf("out-of-range class: %v", d)
	}
}

func TestTokenBucketSpill(t *testing.T) {
	tb, err := NewTokenBucket(TokenBucketConfig{Rate: []float64{1}, Burst: []float64{1}, Spill: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := tb.Admit(0, JobInfo{}, fakeState{}); d != Accept {
		t.Fatalf("first: %v", d)
	}
	if d := tb.Admit(0, JobInfo{}, fakeState{}); d != Defer {
		t.Fatalf("empty bucket with spill: %v", d)
	}
}

func TestTokenBucketPerClassIsolation(t *testing.T) {
	tb, err := NewTokenBucket(TokenBucketConfig{Rate: []float64{1, 1}, Burst: []float64{1, 5}})
	if err != nil {
		t.Fatal(err)
	}
	st := fakeState{}
	if d := tb.Admit(0, JobInfo{Class: 0}, st); d != Accept {
		t.Fatal("class 0 first arrival shed")
	}
	if d := tb.Admit(0, JobInfo{Class: 0}, st); d != Reject {
		t.Fatal("class 0 over budget admitted")
	}
	// Class 1's bucket is untouched by class 0's exhaustion.
	for i := 0; i < 5; i++ {
		if d := tb.Admit(0, JobInfo{Class: 1}, st); d != Accept {
			t.Fatalf("class 1 arrival %d shed", i)
		}
	}
}

func TestQueueDepth(t *testing.T) {
	if _, err := NewQueueDepth(QueueDepthConfig{}); err == nil {
		t.Error("empty thresholds accepted")
	}
	if _, err := NewQueueDepth(QueueDepthConfig{MaxBacklog: []int{0}}); err == nil {
		t.Error("zero threshold accepted")
	}
	qd, err := NewQueueDepth(QueueDepthConfig{MaxBacklog: []int{3, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if qd.Name() != "queue-depth" {
		t.Errorf("name = %q", qd.Name())
	}
	cases := []struct {
		class   int
		backlog []int
		want    Decision
	}{
		{0, []int{2, 1}, Accept},
		{0, []int{3, 1}, Reject},
		{1, []int{9, 1}, Accept},
		{1, []int{9, 2}, Reject},
		{7, []int{0, 0}, Reject}, // out of range
	}
	for i, c := range cases {
		if d := qd.Admit(0, JobInfo{Class: c.class}, fakeState{backlog: c.backlog}); d != c.want {
			t.Errorf("case %d: %v, want %v", i, d, c.want)
		}
	}
	spill, err := NewQueueDepth(QueueDepthConfig{MaxBacklog: []int{1}, Spill: true})
	if err != nil {
		t.Fatal(err)
	}
	if d := spill.Admit(0, JobInfo{}, fakeState{backlog: []int{5}}); d != Defer {
		t.Errorf("spill mode: %v", d)
	}
}

func TestSLOBudgetValidation(t *testing.T) {
	cases := []SLOBudgetConfig{
		{},
		{BudgetSec: []float64{-1}},
		{BudgetSec: []float64{1}, Quantile: 1.5},
		{BudgetSec: []float64{1}, MinObservations: -1},
	}
	for i, cfg := range cases {
		if _, err := NewSLOBudget(cfg); err == nil {
			t.Errorf("case %d: accepted", i)
		}
	}
}

func TestSLOBudgetLearnsAndSheds(t *testing.T) {
	s, err := NewSLOBudget(SLOBudgetConfig{BudgetSec: []float64{25, 0}, MinObservations: 4})
	if err != nil {
		t.Fatal(err)
	}
	job := JobInfo{Class: 0}
	deep := fakeState{backlog: []int{100, 0}}
	// Cold predictor: admit unconditionally, whatever the backlog.
	if d := s.Admit(0, job, deep); d != Accept {
		t.Fatalf("cold: %v", d)
	}
	for i := 0; i < 10; i++ {
		s.Observe(0, 10, 12) // 10s service times
	}
	if w := s.PredictedWaitSec(3); w < 25 || w > 35 {
		t.Fatalf("predicted wait for backlog 3 = %g, want ~30", w)
	}
	// Backlog 2 predicts ~20s < 25s budget; backlog 3 predicts ~30s > it.
	if d := s.Admit(0, job, fakeState{backlog: []int{2, 0}}); d != Accept {
		t.Errorf("within budget: %v", d)
	}
	if d := s.Admit(0, job, fakeState{backlog: []int{3, 0}}); d != Reject {
		t.Errorf("over budget: %v", d)
	}
	// A zero budget disables the SLO for that class.
	if d := s.Admit(0, JobInfo{Class: 1}, fakeState{backlog: []int{0, 1000}}); d != Accept {
		t.Errorf("zero budget: %v", d)
	}
	// Out-of-range classes are shed.
	if d := s.Admit(0, JobInfo{Class: 9}, deep); d != Reject {
		t.Errorf("out of range: %v", d)
	}
}

func TestSLOBudgetSpill(t *testing.T) {
	s, err := NewSLOBudget(SLOBudgetConfig{BudgetSec: []float64{1}, MinObservations: 1, Spill: true})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(0, 10, 10)
	if d := s.Admit(0, JobInfo{}, fakeState{backlog: []int{5}}); d != Defer {
		t.Errorf("spill mode: %v", d)
	}
}
