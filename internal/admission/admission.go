// Package admission implements overload control for DiAS: a pluggable
// policy consulted before every arrival is buffered, deciding whether the
// job is accepted, rejected outright, or deferred to another cluster.
//
// The paper's evaluation never pushes a deployment past saturation — every
// scenario accepts every job — so nothing in the reproduction says what
// happens when offered load exceeds capacity. Without admission control the
// backlog grows without bound and every class's latency diverges; with it,
// the middleware sheds load deliberately and the metrics must say so: a
// policy can "win" on latency purely by rejecting most of the traffic, so
// goodput and rejection fractions are first-class outputs next to the
// latency columns (see metrics.FormatOverloadTable and the overload
// experiment driver).
//
// Policies are deliberately an interface rather than a baked-in heuristic,
// the same policy-free-middleware stance as federation.RoutingPolicy and
// core.ScalePolicy: TokenBucket (per-class rate + burst), QueueDepth
// (per-class backlog threshold), SLOBudget (predicted wait against a
// per-class latency budget, learned from streaming quantiles) and
// AlwaysAdmit ship here, and the dias facade registers them all in its
// named-policy registry (dias.AdmissionPolicies).
package admission

import (
	"errors"
	"fmt"

	"dias/internal/simtime"
	"dias/internal/stats"
)

// Decision is an admission verdict.
type Decision uint8

const (
	// Accept buffers the job normally.
	Accept Decision = iota
	// Reject sheds the job: it never enters a buffer, and the scheduler
	// emits a rejection record so shed work stays visible in the metrics.
	Reject
	// Defer declines the job here but asks the caller to try elsewhere:
	// the federation dispatcher re-routes a deferred arrival to another
	// member (spill), rejecting only when every member defers. On a
	// single-cluster stack there is nowhere else, so Defer degrades to
	// Reject.
	Defer
)

// String returns the decision's display name.
func (d Decision) String() string {
	switch d {
	case Accept:
		return "accept"
	case Reject:
		return "reject"
	case Defer:
		return "defer"
	}
	return fmt.Sprintf("decision(%d)", uint8(d))
}

// JobInfo is the arriving job as the policy sees it.
type JobInfo struct {
	// Name labels the job in diagnostics.
	Name string
	// Class is the job's priority class.
	Class int
	// SizeBytes is the job's logical input size (0 when unknown).
	SizeBytes int64
}

// State is the scheduler-side view a policy reads at decision time.
// Implementations must not be mutated through it.
type State interface {
	// Backlog returns the number of jobs that would precede a new class-k
	// arrival: buffered jobs of class >= k plus the running job.
	Backlog(class int) int
	// QueuedJobsInClass returns the buffered (not dispatched) jobs of one
	// class.
	QueuedJobsInClass(class int) int
	// Busy reports a job currently in the engine.
	Busy() bool
}

// Policy decides the fate of each arrival. Admit runs in simulation
// context on the arrival hot path; implementations may keep internal state
// (token levels, learned quantiles) but must not allocate per call, must
// not call back into the scheduler, and must not be shared across
// concurrent stacks.
type Policy interface {
	// Name labels the policy in experiment results.
	Name() string
	// Admit decides the fate of one class-`job.Class` arrival at virtual
	// time now, reading the scheduler state st.
	Admit(now simtime.Time, job JobInfo, st State) Decision
}

// Learner is the optional feedback extension: the scheduler feeds every
// completion (not rejections, not failures) to a policy that implements
// it, so the policy can learn service-time distributions online. Observe
// runs in simulation context and must not allocate.
type Learner interface {
	Observe(class int, execSec, responseSec float64)
}

// --- AlwaysAdmit -----------------------------------------------------------

// AlwaysAdmit accepts everything — the no-overload-control baseline. A
// scheduler with a nil admission policy behaves identically without the
// indirection.
type AlwaysAdmit struct{}

// Name implements Policy.
func (AlwaysAdmit) Name() string { return "always" }

// Admit implements Policy.
func (AlwaysAdmit) Admit(simtime.Time, JobInfo, State) Decision { return Accept }

// --- TokenBucket -----------------------------------------------------------

// TokenBucketConfig parameterizes NewTokenBucket.
type TokenBucketConfig struct {
	// Rate[k] is class k's sustained admission rate in jobs per second.
	Rate []float64
	// Burst[k] caps class k's token balance — the largest burst admitted
	// at once. Must be >= 1 (an arrival spends one token).
	Burst []float64
	// Spill makes the bucket emit Defer instead of Reject when a class is
	// out of tokens, so a federation re-routes the overflow instead of
	// shedding it.
	Spill bool
}

// TokenBucket admits each class at a sustained rate with a bounded burst:
// class k's bucket refills continuously at Rate[k] tokens/sec up to
// Burst[k], and each admitted arrival spends one token. Arrivals finding
// an empty bucket are rejected (or deferred under Spill). This is the
// classic rate limiter: it cannot tell a transient burst from sustained
// overload, so at high offered load it holds latency by shedding a large
// fraction of traffic — exactly the mechanism the overload metrics must
// separate from genuine burst smoothing.
type TokenBucket struct {
	cfg    TokenBucketConfig
	tokens []float64
	last   simtime.Time
	miss   Decision
}

// NewTokenBucket builds a token-bucket policy with full buckets.
func NewTokenBucket(cfg TokenBucketConfig) (*TokenBucket, error) {
	if len(cfg.Rate) == 0 || len(cfg.Rate) != len(cfg.Burst) {
		return nil, fmt.Errorf("admission: %d rates vs %d bursts", len(cfg.Rate), len(cfg.Burst))
	}
	for k := range cfg.Rate {
		if cfg.Rate[k] <= 0 {
			return nil, fmt.Errorf("admission: class %d rate %g", k, cfg.Rate[k])
		}
		if cfg.Burst[k] < 1 {
			return nil, fmt.Errorf("admission: class %d burst %g < 1", k, cfg.Burst[k])
		}
	}
	tb := &TokenBucket{cfg: cfg, tokens: make([]float64, len(cfg.Rate)), miss: Reject}
	copy(tb.tokens, cfg.Burst)
	if cfg.Spill {
		tb.miss = Defer
	}
	return tb, nil
}

// Name implements Policy.
func (tb *TokenBucket) Name() string { return "token-bucket" }

// Admit implements Policy.
func (tb *TokenBucket) Admit(now simtime.Time, job JobInfo, _ State) Decision {
	k := job.Class
	if k < 0 || k >= len(tb.tokens) {
		return tb.miss
	}
	if dt := now.Sub(tb.last).Seconds(); dt > 0 {
		for c := range tb.tokens {
			tb.tokens[c] += dt * tb.cfg.Rate[c]
			if tb.tokens[c] > tb.cfg.Burst[c] {
				tb.tokens[c] = tb.cfg.Burst[c]
			}
		}
	}
	tb.last = now
	if tb.tokens[k] < 1 {
		return tb.miss
	}
	tb.tokens[k]--
	return Accept
}

// --- QueueDepth ------------------------------------------------------------

// QueueDepthConfig parameterizes NewQueueDepth.
type QueueDepthConfig struct {
	// MaxBacklog[k] is the largest backlog (jobs preceding the arrival,
	// running job included — see State.Backlog) a class-k arrival is
	// admitted into; an arrival finding MaxBacklog[k] or more is shed.
	MaxBacklog []int
	// Spill emits Defer instead of Reject, for federation re-routing.
	Spill bool
}

// QueueDepth sheds arrivals that would join a backlog past a per-class
// threshold — the load-shedding analogue of bounded queues. Unlike
// TokenBucket it reads actual scheduler state, so it admits any burst the
// queue can absorb and only sheds when work is genuinely piling up; its
// weakness is the inverse, a queue of slow jobs under-counts the wait.
type QueueDepth struct {
	cfg  QueueDepthConfig
	miss Decision
}

// NewQueueDepth builds a backlog-threshold policy.
func NewQueueDepth(cfg QueueDepthConfig) (*QueueDepth, error) {
	if len(cfg.MaxBacklog) == 0 {
		return nil, errors.New("admission: no backlog thresholds")
	}
	for k, d := range cfg.MaxBacklog {
		if d < 1 {
			return nil, fmt.Errorf("admission: class %d max backlog %d < 1", k, d)
		}
	}
	qd := &QueueDepth{cfg: cfg, miss: Reject}
	if cfg.Spill {
		qd.miss = Defer
	}
	return qd, nil
}

// Name implements Policy.
func (qd *QueueDepth) Name() string { return "queue-depth" }

// Admit implements Policy.
func (qd *QueueDepth) Admit(_ simtime.Time, job JobInfo, st State) Decision {
	k := job.Class
	if k < 0 || k >= len(qd.cfg.MaxBacklog) {
		return qd.miss
	}
	if st.Backlog(k) >= qd.cfg.MaxBacklog[k] {
		return qd.miss
	}
	return Accept
}

// --- SLOBudget -------------------------------------------------------------

// SLOBudgetConfig parameterizes NewSLOBudget.
type SLOBudgetConfig struct {
	// BudgetSec[k] is class k's wait budget: an arrival whose predicted
	// queueing delay exceeds it is shed. A zero entry admits the class
	// unconditionally (no SLO).
	BudgetSec []float64
	// Quantile is the service-time quantile the wait prediction multiplies
	// by the backlog, in (0,1); zero means 0.95. Higher quantiles predict
	// more conservatively (more shedding, tighter tails).
	Quantile float64
	// MinObservations gates the predictor: arrivals are admitted
	// unconditionally until this many completions have been observed
	// (zero means 8), so an empty system never sheds on a cold estimate.
	MinObservations int
	// Spill emits Defer instead of Reject, for federation re-routing.
	Spill bool
}

// SLOBudget sheds arrivals predicted to miss a per-class latency budget:
// it learns the service-time distribution online from completions
// (streaming log-scale histogram, zero per-job allocation) and predicts a
// new arrival's wait as backlog x the configured service-time quantile.
// Against TokenBucket and QueueDepth this is the SLO-native policy — it
// sheds exactly the arrivals whose wait budget is already spent by the
// work in front of them, so low-budget classes degrade first and
// well-provisioned classes keep their tails.
type SLOBudget struct {
	cfg  SLOBudgetConfig
	hist *stats.LogHistogram
	miss Decision
}

// NewSLOBudget builds an SLO-budget policy with an untrained predictor.
func NewSLOBudget(cfg SLOBudgetConfig) (*SLOBudget, error) {
	if len(cfg.BudgetSec) == 0 {
		return nil, errors.New("admission: no SLO budgets")
	}
	for k, b := range cfg.BudgetSec {
		if b < 0 {
			return nil, fmt.Errorf("admission: class %d budget %g negative", k, b)
		}
	}
	if cfg.Quantile == 0 {
		cfg.Quantile = 0.95
	}
	if cfg.Quantile <= 0 || cfg.Quantile >= 1 {
		return nil, fmt.Errorf("admission: SLO quantile %g out of (0,1)", cfg.Quantile)
	}
	if cfg.MinObservations == 0 {
		cfg.MinObservations = 8
	}
	if cfg.MinObservations < 0 {
		return nil, fmt.Errorf("admission: min observations %d", cfg.MinObservations)
	}
	// Service times from milliseconds to ~11 days at <4.4% resolution:
	// comfortably past anything a simulated job takes.
	hist, err := stats.NewLogHistogram(1e-3, 1e6, 480)
	if err != nil {
		return nil, err
	}
	s := &SLOBudget{cfg: cfg, hist: hist, miss: Reject}
	if cfg.Spill {
		s.miss = Defer
	}
	return s, nil
}

// Name implements Policy.
func (s *SLOBudget) Name() string { return "slo-budget" }

// Admit implements Policy.
func (s *SLOBudget) Admit(_ simtime.Time, job JobInfo, st State) Decision {
	k := job.Class
	if k < 0 || k >= len(s.cfg.BudgetSec) {
		return s.miss
	}
	budget := s.cfg.BudgetSec[k]
	if budget == 0 || s.hist.Count() < int64(s.cfg.MinObservations) {
		return Accept
	}
	predicted := float64(st.Backlog(k)) * s.hist.Quantile(s.cfg.Quantile)
	if predicted > budget {
		return s.miss
	}
	return Accept
}

// Observe implements Learner: every completed job's execution time trains
// the service-time quantile the wait prediction uses.
func (s *SLOBudget) Observe(_ int, execSec, _ float64) {
	s.hist.Add(execSec)
}

// PredictedWaitSec returns the current wait prediction for a class-k
// arrival facing the given backlog — exposed for tests and diagnostics.
func (s *SLOBudget) PredictedWaitSec(backlog int) float64 {
	return float64(backlog) * s.hist.Quantile(s.cfg.Quantile)
}
