// Package telemetry is the observability spine of the simulator: a
// unified tracing and time-series layer threaded through the scheduler
// (internal/core), the dataflow engine (internal/engine) and the
// federation dispatcher (internal/federation).
//
// Two event families are produced. Job lifecycle spans record every
// transition of a job on the virtual timeline — submit, admission verdict
// (with the policy name), dispatch, per-stage execution including task
// dropping, eviction, task retries and straggler slowdowns, and
// completion or failure — plus node events (fail/repair, commission/
// decommission), sprint transitions and federation routing decisions.
// Periodic gauges sample queue depths, busy slots, powered nodes,
// admission reject rates and per-member utilization into a columnar
// Timeline on a simulated-time cadence that never perturbs the run (see
// Sampler.Drive).
//
// The layer has zero overhead when disabled: every emission site guards
// on a nil Tracer, so the pooled hot paths stay allocation-free (pinned
// by the kernel benchmarks). When enabled, the Collector bounds memory
// with per-job reservoir sampling and a capped global ring, so tracing a
// million-job run retains a representative sample instead of everything.
//
// All timestamps are simulated time, so exports are byte-identical across
// worker counts — the same determinism contract as the figures.
package telemetry

import (
	"encoding/json"
	"fmt"

	"dias/internal/simtime"
)

// SpanID identifies one sampled job's lifecycle span within a Collector.
// The zero SpanID means "not sampled": every Tracer method accepting a
// SpanID ignores calls with zero, so callers thread the ID through
// unconditionally and the reservoir decides what is retained.
type SpanID uint64

// Kind enumerates telemetry event types.
type Kind uint8

// Event kinds, in rough lifecycle order.
const (
	// KindSubmit opens a job span at arrival (after admission accepted it).
	KindSubmit Kind = iota + 1
	// KindAdmit records the admission policy's Accept verdict (Detail is
	// the policy name).
	KindAdmit
	// KindReject records an arrival shed by admission (or a deferred
	// arrival no member would take); span-less since the job never ran.
	KindReject
	// KindDefer records an admission Defer verdict on a single stack or a
	// routed member (the federation dispatcher then spills the arrival).
	KindDefer
	// KindDispatch marks the job leaving its buffer for the engine.
	KindDispatch
	// KindEvict marks a preemptive eviction (the job re-queues).
	KindEvict
	// KindComplete closes a span for a successfully completed job.
	KindComplete
	// KindFail closes a span for a job the engine aborted (Detail is the
	// failure reason).
	KindFail
	// KindStageStart marks a stage launching (Detail is the stage name, N
	// the executed-task count, Value the dropped-task count).
	KindStageStart
	// KindStageEnd marks a stage's last task finishing (excludes the
	// trailing shuffle delay).
	KindStageEnd
	// KindTaskRetry marks a task attempt aborted by a fault or node crash
	// and re-queued (Stage/Part locate it, N is the new attempt count).
	KindTaskRetry
	// KindStraggler marks an injected task slowdown (Value is the factor).
	KindStraggler
	// KindSprintStart / KindSprintStop bracket DVFS sprinting windows
	// (Detail on stop says why: budget-depleted or job-left-engine).
	KindSprintStart
	KindSprintStop
	// Node lifecycle events; N is the node index.
	KindNodeFail
	KindNodeRepair
	KindNodeDecommission
	KindNodeCommission
	// KindRoute records the federation dispatcher's choice (Member is the
	// chosen member); KindSpill the same for an arrival the routed member
	// deferred and another member accepted.
	KindRoute
	KindSpill
	// KindMemberDown / KindMemberUp bracket cluster-level outages.
	KindMemberDown
	KindMemberUp
)

var kindNames = map[Kind]string{
	KindSubmit:           "submit",
	KindAdmit:            "admit",
	KindReject:           "reject",
	KindDefer:            "defer",
	KindDispatch:         "dispatch",
	KindEvict:            "evict",
	KindComplete:         "complete",
	KindFail:             "fail",
	KindStageStart:       "stage-start",
	KindStageEnd:         "stage-end",
	KindTaskRetry:        "task-retry",
	KindStraggler:        "straggler",
	KindSprintStart:      "sprint-start",
	KindSprintStop:       "sprint-stop",
	KindNodeFail:         "node-fail",
	KindNodeRepair:       "node-repair",
	KindNodeDecommission: "node-decommission",
	KindNodeCommission:   "node-commission",
	KindRoute:            "route",
	KindSpill:            "spill",
	KindMemberDown:       "member-down",
	KindMemberUp:         "member-up",
}

// String returns the wire name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	n, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("telemetry: unknown kind %d", int(k))
	}
	return json.Marshal(n)
}

// UnmarshalJSON decodes a wire name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for kk, n := range kindNames {
		if n == s {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown kind %q", s)
}

// Event is one telemetry entry. The integer payload fields are
// kind-specific (see the Kind constants); unused ones are zero.
type Event struct {
	At     float64 `json:"at"` // virtual seconds
	Kind   Kind    `json:"kind"`
	Member int     `json:"member"`
	Span   SpanID  `json:"span,omitempty"`
	Job    string  `json:"job,omitempty"`
	Class  int     `json:"class"`
	Stage  int     `json:"stage"`
	Part   int     `json:"part"`
	N      int     `json:"n"`
	Value  float64 `json:"value"`
	Detail string  `json:"detail,omitempty"`

	// seq is the collector-wide emission order, the deterministic total
	// order exports merge by. It is not serialized; readers rely on the
	// line order of the JSONL stream instead.
	seq uint64
}

// Tracer receives job lifecycle and subsystem events from one member
// stack (scheduler + engine + cluster). All methods take the current
// virtual time explicitly so emitters pay no clock lookup beyond the one
// they already have, and all arguments are scalars so a disabled tracer
// (nil interface — every emission site guards on it) costs nothing.
//
// Implementations must not call back into the scheduler or engine;
// methods run in simulation context on the emitting run's goroutine.
type Tracer interface {
	// JobSubmitted opens a span for an admitted arrival and returns its
	// ID, or zero when the reservoir does not sample this job. Callers
	// keep the ID with the job and pass it to the per-job methods below.
	JobSubmitted(now simtime.Time, job string, class int) SpanID
	// JobAdmitted records the admission policy's Accept verdict.
	JobAdmitted(now simtime.Time, id SpanID, policy string)
	// JobRejected records an arrival shed before buffering (span-less).
	JobRejected(now simtime.Time, job string, class int, policy string)
	// JobDeferred records an admission Defer verdict (span-less; the
	// caller decides where the job goes next).
	JobDeferred(now simtime.Time, job string, class int, policy string)
	// JobDispatched marks the job leaving its buffer for the engine.
	JobDispatched(now simtime.Time, id SpanID)
	// JobEvicted marks a preemptive eviction (the job will re-queue).
	JobEvicted(now simtime.Time, id SpanID)
	// JobCompleted closes the span (failed jobs carry the engine's
	// failure reason).
	JobCompleted(now simtime.Time, id SpanID, failed bool, reason string)
	// StageStarted marks a stage launching executed tasks (dropped tasks
	// were shed by approximation).
	StageStarted(now simtime.Time, id SpanID, stage int, name string, executed, dropped int)
	// StageEnded marks the stage's last task finishing.
	StageEnded(now simtime.Time, id SpanID, stage int)
	// TaskRetried marks a task attempt aborted and re-queued.
	TaskRetried(now simtime.Time, id SpanID, stage, partition, attempt int)
	// TaskStraggled marks an injected slowdown on a task attempt.
	TaskStraggled(now simtime.Time, id SpanID, stage, partition int, factor float64)
	// NodeEvent records a node lifecycle transition (kind must be one of
	// the KindNode* constants).
	NodeEvent(now simtime.Time, kind Kind, node int)
	// SprintChanged records a DVFS sprint transition.
	SprintChanged(now simtime.Time, on bool, detail string)
}
