package telemetry

import (
	"fmt"

	"dias/internal/simtime"
)

// Column describes one gauge series. Member routes the series to the
// right process lane in the Chrome export.
type Column struct {
	Name   string
	Member int
}

// Timeline is a columnar gauge store: one shared time axis, one float64
// series per column. Rows are appended in simulated-time order by a
// Sampler.
type Timeline struct {
	cols  []Column
	times []float64
	rows  [][]float64
}

// Columns returns the column descriptors.
func (t *Timeline) Columns() []Column { return t.cols }

// Len returns the number of sampled rows.
func (t *Timeline) Len() int { return len(t.times) }

// Row returns the i-th sample: its simulated time and one value per
// column. The returned slice is the backing store; do not mutate it.
func (t *Timeline) Row(i int) (float64, []float64) { return t.times[i], t.rows[i] }

func (t *Timeline) append(at float64, row []float64) {
	t.times = append(t.times, at)
	t.rows = append(t.rows, row)
}

// MemberGauges is the per-member read surface a Sampler polls. The
// function fields are bound to the scheduler and cluster getters
// (method values), keeping telemetry free of upward imports.
type MemberGauges struct {
	// Classes is the priority-class count; QueuedInClass is sampled for
	// each class in [0, Classes).
	Classes       int
	QueuedInClass func(class int) int
	// Rejected is the cumulative admission-reject counter; the sampler
	// differentiates it into a per-interval rate.
	Rejected     func() int
	BusySlots    func() int
	PoweredNodes func() int
	Utilization  func() float64
}

// Sampler drives a simulation while sampling gauges into a Timeline at a
// fixed simulated-time cadence. It deliberately schedules no simulation
// events: a gauge tick after the last real event would advance the clock
// and change the run's makespan and energy integrals, breaking the
// telemetry-off invariance guarantee. Instead, Drive interleaves
// RunUntil calls between real events, so the event queue and the final
// clock are exactly those of an untraced run.
type Sampler struct {
	tl           *Timeline
	interval     simtime.Duration
	members      []MemberGauges
	lastRejected []int
}

// NewSampler builds the gauge timeline for the given members (index i is
// member i), attaches it to the collector, and returns the sampler. The
// cadence comes from the collector's GaugeIntervalSec.
func NewSampler(c *Collector, members []MemberGauges) *Sampler {
	tl := &Timeline{}
	for i, g := range members {
		for k := 0; k < g.Classes; k++ {
			tl.cols = append(tl.cols, Column{Name: fmt.Sprintf("c%d.queued.k%d", i, k), Member: i})
		}
		tl.cols = append(tl.cols,
			Column{Name: fmt.Sprintf("c%d.busy_slots", i), Member: i},
			Column{Name: fmt.Sprintf("c%d.powered_nodes", i), Member: i},
			Column{Name: fmt.Sprintf("c%d.utilization", i), Member: i},
			Column{Name: fmt.Sprintf("c%d.reject_rate", i), Member: i},
		)
	}
	c.SetTimeline(tl)
	return &Sampler{
		tl:           tl,
		interval:     simtime.Duration(c.cfg.GaugeIntervalSec),
		members:      members,
		lastRejected: make([]int, len(members)),
	}
}

// Drive replaces sim.Run(): it fires every pending event while sampling
// the gauges each interval of simulated time, and leaves the clock at the
// last real event — byte-identical figures with telemetry on or off.
func (s *Sampler) Drive(sim *simtime.Simulation) {
	s.sample(sim.Now())
	next := sim.Now().Add(s.interval)
	for {
		t, ok := sim.NextEventTime()
		if !ok {
			// Queue drained: stop sampling so the clock stays at the last
			// real event instead of advancing to the next tick.
			return
		}
		if t < next {
			sim.RunUntil(t)
			continue
		}
		// Fires any events at exactly the tick instant first, then advances
		// the clock to it: samples observe post-event state.
		sim.RunUntil(next)
		s.sample(sim.Now())
		next = next.Add(s.interval)
	}
}

// Interval returns the sampling cadence in simulated time.
func (s *Sampler) Interval() simtime.Duration { return s.interval }

// Sample records one gauge row at the given instant. The serial Drive
// loop calls it internally; the sharded kernel's parallel drive calls it
// from its OnPause hook, where every partition is aligned to the tick —
// the same post-event state Drive samples.
func (s *Sampler) Sample(now simtime.Time) { s.sample(now) }

func (s *Sampler) sample(now simtime.Time) {
	row := make([]float64, 0, len(s.tl.cols))
	interval := s.interval.Seconds()
	for i, g := range s.members {
		for k := 0; k < g.Classes; k++ {
			row = append(row, float64(g.QueuedInClass(k)))
		}
		rejected := g.Rejected()
		rate := float64(rejected-s.lastRejected[i]) / interval
		s.lastRejected[i] = rejected
		row = append(row,
			float64(g.BusySlots()),
			float64(g.PoweredNodes()),
			g.Utilization(),
			rate,
		)
	}
	s.tl.append(now.Seconds(), row)
}
