package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Summarization of exported event streams: per-run kind counts, per-class
// span statistics (queue / execution / response), and the top-K slowest
// jobs with their per-stage critical path. This backs cmd/dias-trace.

// StageSpan is one executed stage inside a job's critical path.
type StageSpan struct {
	Stage    int
	Name     string
	StartAt  float64
	EndAt    float64
	Executed int
	Dropped  int
}

// JobSummary is one sampled job reconstructed from its span events.
type JobSummary struct {
	Run      string
	Span     SpanID
	Job      string
	Class    int
	Member   int
	SubmitAt float64
	// DispatchAt is the final dispatch (evictions restart execution).
	DispatchAt float64
	EndAt      float64
	Failed     bool
	Reason     string
	Evictions  int
	Retries    int
	Straggles  int
	Stages     []StageSpan
	complete   bool
}

// QueueSec returns time spent buffered before the final dispatch.
func (j *JobSummary) QueueSec() float64 { return j.DispatchAt - j.SubmitAt }

// ExecSec returns time from final dispatch to completion.
func (j *JobSummary) ExecSec() float64 { return j.EndAt - j.DispatchAt }

// ResponseSec returns submit-to-completion time.
func (j *JobSummary) ResponseSec() float64 { return j.EndAt - j.SubmitAt }

// ClassSummary aggregates completed sampled spans of one class.
type ClassSummary struct {
	Class     int
	Jobs      int
	Failed    int
	Evictions int
	Retries   int

	MeanQueueSec, MaxQueueSec       float64
	MeanExecSec, MaxExecSec         float64
	MeanResponseSec, MaxResponseSec float64
}

// RunSummary is one run's digest.
type RunSummary struct {
	Run     string
	Events  int
	ByKind  []KindCount // sorted by kind value
	Classes []ClassSummary
	Slowest []*JobSummary // by response time, descending
}

// KindCount pairs a kind with its event count.
type KindCount struct {
	Kind  Kind
	Count int
}

// Summarize digests an exported event stream (ReadEventsJSONL order)
// into per-run summaries, retaining the topK slowest completed jobs per
// run. Runs appear in first-seen order.
func Summarize(events []RunEvent, topK int) []*RunSummary {
	byRun := make(map[string]*RunSummary)
	var order []string
	jobs := make(map[string]map[SpanID]*JobSummary)

	for _, re := range events {
		rs, ok := byRun[re.Run]
		if !ok {
			rs = &RunSummary{Run: re.Run}
			byRun[re.Run] = rs
			jobs[re.Run] = make(map[SpanID]*JobSummary)
			order = append(order, re.Run)
		}
		rs.Events++
		bumpKind(&rs.ByKind, re.Kind)
		if re.Span == 0 {
			continue
		}
		spans := jobs[re.Run]
		j, ok := spans[re.Span]
		if !ok {
			j = &JobSummary{Run: re.Run, Span: re.Span, Class: re.Class, Member: re.Member}
			spans[re.Span] = j
		}
		switch re.Kind {
		case KindSubmit:
			j.Job = re.Job
			j.SubmitAt = re.At
		case KindDispatch:
			j.DispatchAt = re.At
		case KindEvict:
			j.Evictions++
			j.Stages = j.Stages[:0] // execution restarts from stage 0
		case KindComplete, KindFail:
			j.EndAt = re.At
			j.Failed = re.Kind == KindFail
			j.Reason = re.Detail
			j.complete = true
		case KindStageStart:
			j.Stages = append(j.Stages, StageSpan{
				Stage: re.Stage, Name: re.Detail, StartAt: re.At,
				Executed: re.N, Dropped: int(re.Value),
			})
		case KindStageEnd:
			for i := len(j.Stages) - 1; i >= 0; i-- {
				if j.Stages[i].Stage == re.Stage && j.Stages[i].EndAt == 0 {
					j.Stages[i].EndAt = re.At
					break
				}
			}
		case KindTaskRetry:
			j.Retries++
		case KindStraggler:
			j.Straggles++
		}
	}

	out := make([]*RunSummary, 0, len(order))
	for _, run := range order {
		rs := byRun[run]
		finalize(rs, jobs[run], topK)
		out = append(out, rs)
	}
	return out
}

func bumpKind(counts *[]KindCount, k Kind) {
	for i := range *counts {
		if (*counts)[i].Kind == k {
			(*counts)[i].Count++
			return
		}
	}
	*counts = append(*counts, KindCount{Kind: k, Count: 1})
	sort.Slice(*counts, func(i, j int) bool { return (*counts)[i].Kind < (*counts)[j].Kind })
}

func finalize(rs *RunSummary, spans map[SpanID]*JobSummary, topK int) {
	var all []*JobSummary
	for _, j := range spans {
		if j.complete {
			all = append(all, j)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].ResponseSec() != all[j].ResponseSec() {
			return all[i].ResponseSec() > all[j].ResponseSec()
		}
		return all[i].Span < all[j].Span
	})

	classes := make(map[int]*ClassSummary)
	for _, j := range all {
		cs, ok := classes[j.Class]
		if !ok {
			cs = &ClassSummary{Class: j.Class, MaxQueueSec: -1}
			classes[j.Class] = cs
		}
		cs.Jobs++
		if j.Failed {
			cs.Failed++
		}
		cs.Evictions += j.Evictions
		cs.Retries += j.Retries
		cs.MeanQueueSec += j.QueueSec()
		cs.MeanExecSec += j.ExecSec()
		cs.MeanResponseSec += j.ResponseSec()
		if j.QueueSec() > cs.MaxQueueSec {
			cs.MaxQueueSec = j.QueueSec()
		}
		if j.ExecSec() > cs.MaxExecSec {
			cs.MaxExecSec = j.ExecSec()
		}
		if j.ResponseSec() > cs.MaxResponseSec {
			cs.MaxResponseSec = j.ResponseSec()
		}
	}
	for _, cs := range classes {
		if cs.Jobs > 0 {
			cs.MeanQueueSec /= float64(cs.Jobs)
			cs.MeanExecSec /= float64(cs.Jobs)
			cs.MeanResponseSec /= float64(cs.Jobs)
		}
		if cs.MaxQueueSec < 0 {
			cs.MaxQueueSec = 0
		}
		rs.Classes = append(rs.Classes, *cs)
	}
	sort.Slice(rs.Classes, func(i, j int) bool { return rs.Classes[i].Class < rs.Classes[j].Class })

	if topK > len(all) {
		topK = len(all)
	}
	rs.Slowest = all[:topK]
}

// Render formats run summaries as the dias-trace report.
func Render(summaries []*RunSummary) string {
	var b strings.Builder
	for si, rs := range summaries {
		if si > 0 {
			b.WriteString("\n")
		}
		fmt.Fprintf(&b, "== %s (%d events)\n", rs.Run, rs.Events)
		b.WriteString("   kinds:")
		for _, kc := range rs.ByKind {
			fmt.Fprintf(&b, " %s=%d", kc.Kind, kc.Count)
		}
		b.WriteString("\n")
		for _, cs := range rs.Classes {
			fmt.Fprintf(&b, "   class %d: %d sampled", cs.Class, cs.Jobs)
			if cs.Failed > 0 {
				fmt.Fprintf(&b, " (%d failed)", cs.Failed)
			}
			fmt.Fprintf(&b, "  queue %.1fs/%.1fs  exec %.1fs/%.1fs  response %.1fs/%.1fs (mean/max)\n",
				cs.MeanQueueSec, cs.MaxQueueSec, cs.MeanExecSec, cs.MaxExecSec,
				cs.MeanResponseSec, cs.MaxResponseSec)
		}
		if len(rs.Slowest) > 0 {
			fmt.Fprintf(&b, "   slowest %d:\n", len(rs.Slowest))
		}
		for _, j := range rs.Slowest {
			status := ""
			if j.Failed {
				status = fmt.Sprintf(" FAILED(%s)", j.Reason)
			}
			fmt.Fprintf(&b, "     %s span=%d class=%d c%d%s  response %.1fs = queue %.1fs + exec %.1fs",
				j.Job, j.Span, j.Class, j.Member, status, j.ResponseSec(), j.QueueSec(), j.ExecSec())
			if j.Evictions > 0 {
				fmt.Fprintf(&b, "  evictions=%d", j.Evictions)
			}
			if j.Retries > 0 {
				fmt.Fprintf(&b, "  retries=%d", j.Retries)
			}
			if j.Straggles > 0 {
				fmt.Fprintf(&b, "  stragglers=%d", j.Straggles)
			}
			b.WriteString("\n")
			// The critical path: the engine runs one job at a time, so the
			// stage sequence (with setup and shuffle gaps) is the job's
			// execution timeline.
			prev := j.DispatchAt
			for _, st := range j.Stages {
				gap := st.StartAt - prev
				label := "setup"
				if st.Stage > 0 {
					label = "shuffle"
				}
				if gap > 1e-9 {
					fmt.Fprintf(&b, "       %8.1fs  %s\n", gap, label)
				}
				end := st.EndAt
				if end == 0 {
					end = j.EndAt
				}
				fmt.Fprintf(&b, "       %8.1fs  stage %d %q (tasks %d run, %d dropped)\n",
					end-st.StartAt, st.Stage, st.Name, st.Executed, st.Dropped)
				prev = end
			}
		}
	}
	return b.String()
}
