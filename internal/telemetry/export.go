package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// RunEvent is one exported event line: the owning run's name plus the
// event, flattened (the same JSONL shape internal/trace uses).
type RunEvent struct {
	Run string `json:"run"`
	Event
}

// WriteEventsJSONL streams every collector's events, runs in sorted name
// order and events in emission order — deterministic across worker
// counts.
func (r *Registry) WriteEventsJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, name := range r.Names() {
		for _, ev := range r.Get(name).Events() {
			if err := enc.Encode(RunEvent{Run: name, Event: ev}); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadEventsJSONL decodes a stream written by WriteEventsJSONL,
// preserving line order. Malformed input errors out rather than being
// silently dropped.
func ReadEventsJSONL(rd io.Reader) ([]RunEvent, error) {
	dec := json.NewDecoder(rd)
	var out []RunEvent
	for {
		var ev RunEvent
		if err := dec.Decode(&ev); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("telemetry: decode events: %w", err)
		}
		out = append(out, ev)
	}
	return out, nil
}

// WriteTimelineCSV writes every collector's gauge timeline in long form
// (run,time,member,column,value): one schema regardless of how many
// members or classes each run has, and trivially plottable.
func (r *Registry) WriteTimelineCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "run,time,member,column,value\n"); err != nil {
		return err
	}
	for _, name := range r.Names() {
		tl := r.Get(name).Timeline()
		if tl == nil {
			continue
		}
		cols := tl.Columns()
		for i := 0; i < tl.Len(); i++ {
			at, row := tl.Row(i)
			for ci, col := range cols {
				_, err := fmt.Fprintf(w, "%s,%s,%d,%s,%s\n",
					name,
					strconv.FormatFloat(at, 'g', -1, 64),
					col.Member,
					col.Name,
					strconv.FormatFloat(row[ci], 'g', -1, 64))
				if err != nil {
					return err
				}
			}
		}
	}
	return nil
}
