package telemetry

import (
	"hash/fnv"
	"sort"
	"sync"
)

// Registry keys collectors by run name so a multi-figure invocation
// (cmd/dias-experiments) traces every scenario into one export set.
// Namespace views share the underlying store under a prefix, letting
// each figure driver use its scenario names without cross-figure
// collisions. Collector creation is mutex-guarded (scenarios start on
// worker goroutines); each collector is then used by its scenario alone.
type Registry struct {
	state  *registryState
	prefix string
}

type registryState struct {
	mu     sync.Mutex
	cfg    Config
	byName map[string]*Collector
}

// NewRegistry builds a registry whose collectors inherit cfg, with each
// collector's sampling seed offset by a hash of its full name so
// reservoir decisions are per-run deterministic regardless of worker
// scheduling.
func NewRegistry(cfg Config) *Registry {
	return &Registry{state: &registryState{
		cfg:    cfg.withDefaults(),
		byName: make(map[string]*Collector),
	}}
}

// Namespace returns a view of the same registry that prefixes every
// collector name with "prefix/". A nil registry namespaces to nil, so
// callers can thread an optional registry without guards.
func (r *Registry) Namespace(prefix string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{state: r.state, prefix: r.prefix + prefix + "/"}
}

// Collector returns the collector for name (prefixed by the namespace),
// creating it on first use.
func (r *Registry) Collector(name string) *Collector {
	full := r.prefix + name
	st := r.state
	st.mu.Lock()
	defer st.mu.Unlock()
	if c, ok := st.byName[full]; ok {
		return c
	}
	cfg := st.cfg
	h := fnv.New32a()
	h.Write([]byte(full))
	cfg.Seed += int64(h.Sum32())
	c := NewCollector(cfg)
	st.byName[full] = c
	return c
}

// Names returns every collector's full name, sorted — the deterministic
// export order.
func (r *Registry) Names() []string {
	st := r.state
	st.mu.Lock()
	defer st.mu.Unlock()
	names := make([]string, 0, len(st.byName))
	for n := range st.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the collector registered under the full name, or nil.
func (r *Registry) Get(full string) *Collector {
	st := r.state
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.byName[full]
}
