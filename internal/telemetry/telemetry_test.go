package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dias/internal/simtime"
)

func at(sec float64) simtime.Time { return simtime.Time(sec) }

// TestReservoirBounds pins the memory contract: an unbounded job stream
// retains at most MaxJobs spans, sampled uniformly, and events for
// unsampled or replaced spans vanish without error.
func TestReservoirBounds(t *testing.T) {
	c := NewCollector(Config{MaxJobs: 8, Seed: 3})
	tr := c.Member(0)
	var ids []SpanID
	for i := 0; i < 500; i++ {
		id := tr.JobSubmitted(at(float64(i)), "j", 0)
		tr.JobDispatched(at(float64(i)), id)
		tr.JobCompleted(at(float64(i)+0.5), id, false, "")
		ids = append(ids, id)
	}
	if c.SeenJobs() != 500 {
		t.Fatalf("SeenJobs = %d, want 500", c.SeenJobs())
	}
	if c.SampledJobs() != 8 {
		t.Fatalf("SampledJobs = %d, want 8", c.SampledJobs())
	}
	sampled := 0
	for _, id := range ids {
		if id != 0 {
			sampled++
		}
	}
	if sampled < 8 {
		t.Fatalf("only %d submissions returned non-zero spans", sampled)
	}
	// Exactly the retained spans appear in the merged stream, each with a
	// full submit/dispatch/complete triple, in emission order.
	evs := c.Events()
	if len(evs) != 8*3 {
		t.Fatalf("Events() = %d, want 24 (8 spans x 3 events)", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].seq <= evs[i-1].seq {
			t.Fatalf("events out of emission order at %d", i)
		}
	}
	// Events against a closed or replaced span are ignored, not recorded.
	tr.JobDispatched(at(1000), ids[0])
	if n := len(c.Events()); n != 24 {
		t.Fatalf("stale span event recorded: %d events", n)
	}
}

// TestSpanEventCapCountsDropped pins that per-span overflow is counted,
// not silently discarded.
func TestSpanEventCapCountsDropped(t *testing.T) {
	c := NewCollector(Config{MaxEventsPerJob: 4})
	tr := c.Member(0)
	id := tr.JobSubmitted(at(0), "j", 1)
	for i := 0; i < 10; i++ {
		tr.TaskRetried(at(float64(i)), id, 0, i, 1)
	}
	if c.Dropped() != 7 { // submit + 3 retries fit; 7 retries dropped
		t.Fatalf("Dropped = %d, want 7", c.Dropped())
	}
}

// TestSamplerDriveDoesNotPerturbClock is the telemetry-invariance
// keystone: driving a simulation through the gauge sampler must fire the
// same events at the same instants and leave the final clock exactly
// where sim.Run() would have — gauge ticks are never simulation events.
func TestSamplerDriveDoesNotPerturbClock(t *testing.T) {
	run := func(traced bool) (simtime.Time, []simtime.Time, int) {
		sim := simtime.New()
		var fired []simtime.Time
		for _, sec := range []float64{10, 42.5, 95} {
			sec := sec
			sim.At(at(sec), func() { fired = append(fired, sim.Now()) })
		}
		if !traced {
			sim.Run()
			return sim.Now(), fired, 0
		}
		c := NewCollector(Config{GaugeIntervalSec: 30})
		s := NewSampler(c, []MemberGauges{{
			Classes:       1,
			QueuedInClass: func(int) int { return 2 },
			Rejected:      func() int { return 0 },
			BusySlots:     func() int { return 5 },
			PoweredNodes:  func() int { return 3 },
			Utilization:   func() float64 { return 0.5 },
		}})
		s.Drive(sim)
		return sim.Now(), fired, c.Timeline().Len()
	}
	plainNow, plainFired, _ := run(false)
	tracedNow, tracedFired, samples := run(true)
	if tracedNow != plainNow {
		t.Fatalf("Drive left the clock at %v, plain Run at %v", tracedNow, plainNow)
	}
	if len(tracedFired) != len(plainFired) {
		t.Fatalf("Drive fired %d events, plain Run %d", len(tracedFired), len(plainFired))
	}
	for i := range plainFired {
		if tracedFired[i] != plainFired[i] {
			t.Fatalf("event %d fired at %v traced vs %v plain", i, tracedFired[i], plainFired[i])
		}
	}
	// Samples at 0, 30, 60, 90: the tick past the last event (120) must
	// not happen — it would have advanced the clock.
	if samples != 4 {
		t.Fatalf("timeline has %d samples, want 4 (0/30/60/90)", samples)
	}
}

// TestRegistryNamespace pins collector identity and name ordering.
func TestRegistryNamespace(t *testing.T) {
	reg := NewRegistry(Config{Seed: 1})
	fig := reg.Namespace("fig7")
	a := fig.Collector("zeta")
	b := fig.Collector("alpha")
	if fig.Collector("zeta") != a {
		t.Fatal("same name returned a different collector")
	}
	if a == b {
		t.Fatal("distinct names shared a collector")
	}
	names := reg.Names()
	want := []string{"fig7/alpha", "fig7/zeta"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	if got := reg.Get("fig7/zeta"); got != a {
		t.Fatal("Get did not resolve the namespaced name")
	}
	if got := reg.Get("fig7/missing"); got != nil {
		t.Fatal("Get invented a collector")
	}
}

// fillCollector produces a small but representative event mix plus a
// two-sample timeline.
func fillCollector(reg *Registry, name string) *Collector {
	c := reg.Collector(name)
	tr := c.Member(0)
	id := tr.JobSubmitted(at(1), "job-a", 0)
	tr.JobAdmitted(at(1), id, "slo")
	tr.JobDispatched(at(2), id)
	tr.StageStarted(at(3), id, 0, "map", 10, 2)
	tr.TaskStraggled(at(4), id, 0, 3, 2.5)
	tr.StageEnded(at(5), id, 0)
	tr.JobCompleted(at(6), id, false, "")
	tr.JobRejected(at(7), "job-b", 1, "slo")
	tr.NodeEvent(at(8), KindNodeFail, 2)
	tr.SprintChanged(at(9), true, "")
	tr.SprintChanged(at(10), false, "budget-depleted")
	c.Route(at(11), 0, 0, false)
	sim := simtime.New()
	sim.At(at(40), func() {})
	NewSampler(c, []MemberGauges{{
		Classes:       2,
		QueuedInClass: func(k int) int { return k + 1 },
		Rejected:      func() int { return 1 },
		BusySlots:     func() int { return 4 },
		PoweredNodes:  func() int { return 8 },
		Utilization:   func() float64 { return 0.25 },
	}}).Drive(sim)
	return c
}

// TestEventsJSONLRoundTrip pins the export wire format: every kind
// round-trips, runs export in sorted-name order, and unknown kinds fail
// the read with the package error.
func TestEventsJSONLRoundTrip(t *testing.T) {
	reg := NewRegistry(Config{})
	fillCollector(reg, "beta")
	fillCollector(reg, "alpha")
	var buf bytes.Buffer
	if err := reg.WriteEventsJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadEventsJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 24 { // 12 events per collector
		t.Fatalf("round trip returned %d events, want 24", len(evs))
	}
	if evs[0].Run != "alpha" || evs[len(evs)-1].Run != "beta" {
		t.Fatalf("runs not in sorted order: first %q last %q", evs[0].Run, evs[len(evs)-1].Run)
	}
	if evs[0].Kind != KindSubmit || evs[0].Job != "job-a" {
		t.Fatalf("first event = %+v, want the submit", evs[0])
	}

	if _, err := ReadEventsJSONL(strings.NewReader(`{"run":"x","at":1,"kind":"no-such"}`)); err == nil {
		t.Fatal("unknown kind accepted")
	} else if !strings.Contains(err.Error(), "telemetry:") {
		t.Fatalf("error %q lacks package prefix", err)
	}
	if _, err := ReadEventsJSONL(strings.NewReader(`{"run":"x","at":`)); err == nil {
		t.Fatal("truncated line accepted")
	}
}

// TestChromeTraceValidAndDeterministic pins that the Perfetto export is
// well-formed JSON with the expected event phases and is byte-stable
// across repeated writes.
func TestChromeTraceValidAndDeterministic(t *testing.T) {
	reg := NewRegistry(Config{})
	fillCollector(reg, "beta")
	fillCollector(reg, "alpha")
	var one, two bytes.Buffer
	if err := reg.WriteChromeTrace(&one); err != nil {
		t.Fatal(err)
	}
	if err := reg.WriteChromeTrace(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("repeated exports differ")
	}
	var v struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(one.Bytes(), &v); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if v.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", v.Unit)
	}
	phases := map[string]int{}
	pids := map[float64]bool{}
	for _, e := range v.TraceEvents {
		phases[e["ph"].(string)]++
		pids[e["pid"].(float64)] = true
	}
	for _, ph := range []string{"M", "X", "i", "b", "e", "C"} {
		if phases[ph] == 0 {
			t.Fatalf("no %q phase events in trace (got %v)", ph, phases)
		}
	}
	if len(pids) != 2 {
		t.Fatalf("want one pid per run, got %d", len(pids))
	}
	if phases["b"] != phases["e"] {
		t.Fatalf("unbalanced async spans: %d b vs %d e", phases["b"], phases["e"])
	}
}

// TestTimelineCSV pins the gauge export shape.
func TestTimelineCSV(t *testing.T) {
	reg := NewRegistry(Config{})
	fillCollector(reg, "run")
	var buf bytes.Buffer
	if err := reg.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "run,time,member,column,value" {
		t.Fatalf("header = %q", lines[0])
	}
	// 6 columns (queued.k0, queued.k1, busy, powered, util, reject-rate)
	// x 2 samples (t=0, t=30).
	if len(lines) != 1+12 {
		t.Fatalf("%d data lines, want 12", len(lines)-1)
	}
	if !strings.HasPrefix(lines[1], "run,0,0,c0.queued.k0,1") {
		t.Fatalf("first data line = %q", lines[1])
	}
}

// TestSummarizeReconstructsSpans pins dias-trace's digest: queue and
// execution splits, eviction restarts, and stage critical paths.
func TestSummarizeReconstructsSpans(t *testing.T) {
	evs := []RunEvent{
		{Run: "r", Event: Event{At: 0, Kind: KindSubmit, Span: 1, Job: "a", Class: 0}},
		{Run: "r", Event: Event{At: 1, Kind: KindDispatch, Span: 1}},
		{Run: "r", Event: Event{At: 2, Kind: KindStageStart, Span: 1, Stage: 0, Detail: "map", N: 4}},
		// Evicted mid-stage: the partial stage must not survive into the
		// critical path, and the dispatch clock restarts.
		{Run: "r", Event: Event{At: 3, Kind: KindEvict, Span: 1}},
		{Run: "r", Event: Event{At: 10, Kind: KindDispatch, Span: 1}},
		{Run: "r", Event: Event{At: 11, Kind: KindStageStart, Span: 1, Stage: 0, Detail: "map", N: 4}},
		{Run: "r", Event: Event{At: 15, Kind: KindStageEnd, Span: 1, Stage: 0}},
		{Run: "r", Event: Event{At: 16, Kind: KindComplete, Span: 1}},
		{Run: "r", Event: Event{At: 0.5, Kind: KindSubmit, Span: 2, Job: "b", Class: 1}},
		{Run: "r", Event: Event{At: 1, Kind: KindDispatch, Span: 2}},
		{Run: "r", Event: Event{At: 2, Kind: KindFail, Span: 2, Detail: "node-lost"}},
	}
	sums := Summarize(evs, 10)
	if len(sums) != 1 {
		t.Fatalf("%d runs, want 1", len(sums))
	}
	rs := sums[0]
	if rs.Events != len(evs) {
		t.Fatalf("Events = %d, want %d", rs.Events, len(evs))
	}
	if len(rs.Slowest) != 2 {
		t.Fatalf("%d completed jobs, want 2", len(rs.Slowest))
	}
	a := rs.Slowest[0] // response 16 > 1.5
	if a.Job != "a" || a.Evictions != 1 {
		t.Fatalf("slowest = %q evictions %d", a.Job, a.Evictions)
	}
	if got := a.QueueSec(); got != 10 {
		t.Fatalf("QueueSec = %g, want 10 (final dispatch)", got)
	}
	if got := a.ExecSec(); got != 6 {
		t.Fatalf("ExecSec = %g, want 6", got)
	}
	if len(a.Stages) != 1 || a.Stages[0].EndAt != 15 {
		t.Fatalf("critical path kept the pre-eviction stage: %+v", a.Stages)
	}
	b := rs.Slowest[1]
	if !b.Failed || b.Reason != "node-lost" {
		t.Fatalf("failed job not reconstructed: %+v", b)
	}
	var kinds int
	for _, kc := range rs.ByKind {
		kinds += kc.Count
	}
	if kinds != len(evs) {
		t.Fatalf("kind counts sum to %d, want %d", kinds, len(evs))
	}
	out := Render(sums)
	for _, want := range []string{"== r (11 events)", "FAILED(node-lost)", "stage 0 \"map\""} {
		if !strings.Contains(out, want) {
			t.Fatalf("Render output missing %q:\n%s", want, out)
		}
	}
}

// TestUsecRounding pins the microsecond conversion used for Chrome
// timestamps (round, not truncate — pairs must not invert).
func TestUsecRounding(t *testing.T) {
	if got := usec(1.0000005); got != 1000001 && got != 1000000 {
		t.Fatalf("usec(1.0000005) = %d", got)
	}
	if usec(2) != 2000000 {
		t.Fatalf("usec(2) = %d", usec(2))
	}
	if usec(math.Nextafter(3, 4)) != 3000000 {
		t.Fatal("adjacent float should round to the same microsecond")
	}
}
