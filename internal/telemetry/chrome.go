package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Chrome trace_event export: the Catapult/Perfetto JSON object format.
// Each (run, member) pair becomes a process; lifecycle, engine and
// cluster activity land on fixed thread lanes inside it, gauges become
// counter tracks. Everything is assembled from the deterministic event
// order, and map-typed args always hold a single key, so the output is
// byte-identical across worker counts.

const (
	tidLifecycle = 1 // queue-level instants: submit/admit/reject/route/...
	tidEngine    = 2 // dispatch->complete X spans with nested stage spans
	tidCluster   = 3 // node/member outage windows, sprint windows
)

type chromeComplete struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Args any    `json:"args,omitempty"`
}

type chromeInstant struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	S    string `json:"s"`
	Args any    `json:"args,omitempty"`
}

type chromeAsync struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	ID   string `json:"id"`
}

type chromeCounter struct {
	Name string             `json:"name"`
	Ph   string             `json:"ph"`
	Ts   int64              `json:"ts"`
	Pid  int                `json:"pid"`
	Tid  int                `json:"tid"`
	Args map[string]float64 `json:"args"` // single key: deterministic
}

type chromeMeta struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
	Args any    `json:"args"`
}

type evArgs struct {
	Job    string `json:"job,omitempty"`
	Class  int    `json:"class"`
	Detail string `json:"detail,omitempty"`
}

type stageArgs struct {
	Executed int `json:"executed"`
	Dropped  int `json:"dropped"`
}

type taskArgs struct {
	Partition int     `json:"partition"`
	Attempt   int     `json:"attempt,omitempty"`
	Factor    float64 `json:"factor,omitempty"`
}

type endArgs struct {
	Detail string `json:"detail,omitempty"`
}

type chromeFile struct {
	TraceEvents     []any  `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func usec(at float64) int64 { return int64(math.Round(at * 1e6)) }

// WriteChromeTrace writes a Perfetto/chrome://tracing-loadable trace of
// every collector in the registry.
func (r *Registry) WriteChromeTrace(w io.Writer) error {
	var events []any
	base := 1
	for _, name := range r.Names() {
		base = appendChromeRun(&events, name, r.Get(name), base)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// appendChromeRun emits one run's processes starting at pid base and
// returns the next free pid.
func appendChromeRun(out *[]any, run string, c *Collector, base int) int {
	members := c.Members()
	pid := func(m int) int { return base + m }
	for m := 0; m < members; m++ {
		pname := run
		if members > 1 {
			pname = fmt.Sprintf("%s c%d", run, m)
		}
		*out = append(*out,
			chromeMeta{Name: "process_name", Ph: "M", Pid: pid(m), Args: map[string]string{"name": pname}},
			chromeMeta{Name: "process_sort_index", Ph: "M", Pid: pid(m), Args: map[string]int{"sort_index": pid(m)}},
			chromeMeta{Name: "thread_name", Ph: "M", Pid: pid(m), Tid: tidLifecycle, Args: map[string]string{"name": "lifecycle"}},
			chromeMeta{Name: "thread_name", Ph: "M", Pid: pid(m), Tid: tidEngine, Args: map[string]string{"name": "engine"}},
			chromeMeta{Name: "thread_name", Ph: "M", Pid: pid(m), Tid: tidCluster, Args: map[string]string{"name": "cluster"}},
		)
	}

	type openSpan struct {
		ts     int64
		member int
		name   string
		args   any
	}
	jobName := make(map[SpanID]string)
	openJob := make(map[SpanID]openSpan)      // async job span: submit -> complete/fail
	openDispatch := make(map[SpanID]openSpan) // engine X: dispatch -> evict/complete/fail
	openStage := make(map[SpanID]openSpan)    // stage X: stage-start -> stage-end
	openNode := make(map[[2]int]openSpan)     // (member, node) down window
	openMember := make(map[int]openSpan)      // member outage window
	openSprint := make(map[int]openSpan)      // sprint window

	evs := c.Events()
	var maxTs int64
	for _, ev := range evs {
		if ts := usec(ev.At); ts > maxTs {
			maxTs = ts
		}
	}
	if tl := c.Timeline(); tl != nil && tl.Len() > 0 {
		at, _ := tl.Row(tl.Len() - 1)
		if ts := usec(at); ts > maxTs {
			maxTs = ts
		}
	}

	instant := func(ev Event, tid int, args any) {
		*out = append(*out, chromeInstant{
			Name: ev.Kind.String(), Cat: "event", Ph: "i",
			Ts: usec(ev.At), Pid: pid(ev.Member), Tid: tid, S: "t", Args: args,
		})
	}
	complete := func(open openSpan, endTs int64, tid int, cat string) {
		*out = append(*out, chromeComplete{
			Name: open.name, Cat: cat, Ph: "X",
			Ts: open.ts, Dur: endTs - open.ts,
			Pid: pid(open.member), Tid: tid, Args: open.args,
		})
	}

	for _, ev := range evs {
		ts := usec(ev.At)
		switch ev.Kind {
		case KindSubmit:
			jobName[ev.Span] = ev.Job
			openJob[ev.Span] = openSpan{ts: ts, member: ev.Member, name: ev.Job}
			*out = append(*out, chromeAsync{
				Name: ev.Job, Cat: "job", Ph: "b", Ts: ts,
				Pid: pid(ev.Member), Tid: tidLifecycle,
				ID: fmt.Sprintf("%s/%d", run, ev.Span),
			})
		case KindAdmit, KindReject, KindDefer, KindEvict:
			instant(ev, tidLifecycle, evArgs{Job: ev.Job, Class: ev.Class, Detail: ev.Detail})
			if ev.Kind == KindEvict {
				if open, ok := openDispatch[ev.Span]; ok {
					open.args = endArgs{Detail: "evicted"}
					complete(open, ts, tidEngine, "exec")
					delete(openDispatch, ev.Span)
				}
			}
		case KindDispatch:
			openDispatch[ev.Span] = openSpan{ts: ts, member: ev.Member, name: jobName[ev.Span]}
		case KindComplete, KindFail:
			if open, ok := openDispatch[ev.Span]; ok {
				if ev.Kind == KindFail {
					open.args = endArgs{Detail: ev.Detail}
				}
				complete(open, ts, tidEngine, "exec")
				delete(openDispatch, ev.Span)
			}
			if open, ok := openJob[ev.Span]; ok {
				*out = append(*out, chromeAsync{
					Name: open.name, Cat: "job", Ph: "e", Ts: ts,
					Pid: pid(open.member), Tid: tidLifecycle,
					ID: fmt.Sprintf("%s/%d", run, ev.Span),
				})
				delete(openJob, ev.Span)
			}
		case KindStageStart:
			openStage[ev.Span] = openSpan{
				ts: ts, member: ev.Member, name: ev.Detail,
				args: stageArgs{Executed: ev.N, Dropped: int(ev.Value)},
			}
		case KindStageEnd:
			if open, ok := openStage[ev.Span]; ok {
				complete(open, ts, tidEngine, "stage")
				delete(openStage, ev.Span)
			}
		case KindTaskRetry:
			instant(ev, tidEngine, taskArgs{Partition: ev.Part, Attempt: ev.N})
		case KindStraggler:
			instant(ev, tidEngine, taskArgs{Partition: ev.Part, Factor: ev.Value})
		case KindNodeFail:
			openNode[[2]int{ev.Member, ev.N}] = openSpan{
				ts: ts, member: ev.Member, name: fmt.Sprintf("node %d down", ev.N),
			}
		case KindNodeRepair:
			if open, ok := openNode[[2]int{ev.Member, ev.N}]; ok {
				complete(open, ts, tidCluster, "node")
				delete(openNode, [2]int{ev.Member, ev.N})
			}
		case KindNodeCommission, KindNodeDecommission:
			instant(ev, tidCluster, map[string]int{"node": ev.N})
		case KindSprintStart:
			openSprint[ev.Member] = openSpan{ts: ts, member: ev.Member, name: "sprint"}
		case KindSprintStop:
			if open, ok := openSprint[ev.Member]; ok {
				open.args = endArgs{Detail: ev.Detail}
				complete(open, ts, tidCluster, "power")
				delete(openSprint, ev.Member)
			}
		case KindRoute, KindSpill:
			instant(ev, tidLifecycle, evArgs{Class: ev.Class})
		case KindMemberDown:
			openMember[ev.Member] = openSpan{ts: ts, member: ev.Member, name: "member down"}
		case KindMemberUp:
			if open, ok := openMember[ev.Member]; ok {
				complete(open, ts, tidCluster, "outage")
				delete(openMember, ev.Member)
			}
		}
	}

	// Close anything still open at the end of the trace, in sorted key
	// order (map iteration would be nondeterministic).
	for _, id := range sortedSpanKeys(openStage) {
		complete(openStage[id], maxTs, tidEngine, "stage")
	}
	for _, id := range sortedSpanKeys(openDispatch) {
		open := openDispatch[id]
		open.args = endArgs{Detail: "unfinished"}
		complete(open, maxTs, tidEngine, "exec")
	}
	for _, id := range sortedSpanKeys(openJob) {
		open := openJob[id]
		*out = append(*out, chromeAsync{
			Name: open.name, Cat: "job", Ph: "e", Ts: maxTs,
			Pid: pid(open.member), Tid: tidLifecycle,
			ID: fmt.Sprintf("%s/%d", run, id),
		})
	}
	{
		keys := make([][2]int, 0, len(openNode))
		for k := range openNode {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i][0] != keys[j][0] {
				return keys[i][0] < keys[j][0]
			}
			return keys[i][1] < keys[j][1]
		})
		for _, k := range keys {
			complete(openNode[k], maxTs, tidCluster, "node")
		}
	}
	for _, m := range sortedIntKeys(openMember) {
		complete(openMember[m], maxTs, tidCluster, "outage")
	}
	for _, m := range sortedIntKeys(openSprint) {
		complete(openSprint[m], maxTs, tidCluster, "power")
	}

	// Gauge counters: one counter track per column on its member's
	// process.
	if tl := c.Timeline(); tl != nil {
		cols := tl.Columns()
		for i := 0; i < tl.Len(); i++ {
			at, row := tl.Row(i)
			ts := usec(at)
			for ci, col := range cols {
				*out = append(*out, chromeCounter{
					Name: counterName(col.Name), Ph: "C", Ts: ts,
					Pid:  pid(col.Member),
					Args: map[string]float64{counterName(col.Name): row[ci]},
				})
			}
		}
	}
	return base + members
}

// counterName strips the "c<i>." member prefix: the member is already
// encoded in the pid.
func counterName(name string) string {
	if i := strings.Index(name, "."); i >= 0 && strings.HasPrefix(name, "c") {
		return name[i+1:]
	}
	return name
}

func sortedSpanKeys[V any](m map[SpanID]V) []SpanID {
	keys := make([]SpanID, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
