package telemetry

import (
	"math/rand"
	"sort"

	"dias/internal/simtime"
)

// Config bounds a Collector's memory. The zero value selects defaults
// suitable for figure-scale runs; million-job runs keep the same bounds
// and simply sample a smaller fraction of jobs.
type Config struct {
	// MaxJobs is the reservoir capacity: at most this many job spans are
	// retained, chosen by uniform reservoir sampling over every submitted
	// job (default 4096).
	MaxJobs int
	// MaxEventsPerJob caps one span's event list; events beyond it are
	// counted in Dropped (default 128).
	MaxEventsPerJob int
	// MaxEvents caps the span-less event ring (rejects, node and sprint
	// events, routing decisions); once full the oldest entries are
	// overwritten (default 65536).
	MaxEvents int
	// GaugeIntervalSec is the simulated-time sampling cadence for gauge
	// timelines (default 30).
	GaugeIntervalSec float64
	// Seed drives the reservoir's sampling RNG. Collectors built through a
	// Registry get a name-derived offset so concurrent scenarios sample
	// independently yet reproducibly.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.MaxEventsPerJob <= 0 {
		c.MaxEventsPerJob = 128
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 1 << 16
	}
	if c.GaugeIntervalSec <= 0 {
		c.GaugeIntervalSec = 30
	}
	return c
}

// jobSpan is one sampled job's retained lifecycle.
type jobSpan struct {
	id     SpanID
	member int
	class  int
	events []Event
}

// Collector accumulates telemetry from one run (a single stack or a whole
// federation: member tracers share the collector, so spans and gauges
// land on one timeline). It is not safe for concurrent use — each
// scenario owns its collector, matching the one-goroutine-per-run
// execution model of the figure harness.
type Collector struct {
	cfg Config
	rng *rand.Rand

	seq      uint64
	seenJobs int
	live     map[SpanID]*jobSpan
	spans    []*jobSpan // the reservoir, in slot order

	global     []Event // span-less events, a ring once MaxEvents is reached
	globalHead int
	dropped    int

	members  []Tracer
	timeline *Timeline
}

// NewCollector builds a collector with the given bounds.
func NewCollector(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	return &Collector{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		live: make(map[SpanID]*jobSpan),
	}
}

// Member returns the Tracer view for member index i (0 for a single
// stack). Views are cached, so handing the same member's tracer to both
// the scheduler and the engine costs one allocation total.
func (c *Collector) Member(i int) Tracer {
	for len(c.members) <= i {
		c.members = append(c.members, &memberTracer{c: c, member: len(c.members)})
	}
	return c.members[i]
}

// Members returns the highest member index seen plus one.
func (c *Collector) Members() int {
	n := len(c.members)
	if tl := c.timeline; tl != nil {
		for _, col := range tl.cols {
			if col.Member+1 > n {
				n = col.Member + 1
			}
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// Route records a federation dispatch decision: the arrival was accepted
// by the given member. Spilled marks arrivals the routed member deferred
// and a sibling accepted.
func (c *Collector) Route(now simtime.Time, class, member int, spilled bool) {
	kind := KindRoute
	if spilled {
		kind = KindSpill
	}
	c.globalEvent(Event{At: now.Seconds(), Kind: kind, Member: member, Class: class})
}

// MemberState records a cluster-level outage transition.
func (c *Collector) MemberState(now simtime.Time, member int, down bool) {
	kind := KindMemberUp
	if down {
		kind = KindMemberDown
	}
	c.globalEvent(Event{At: now.Seconds(), Kind: kind, Member: member})
}

// SetTimeline attaches the gauge timeline (normally done by NewSampler).
func (c *Collector) SetTimeline(tl *Timeline) { c.timeline = tl }

// Timeline returns the attached gauge timeline, or nil.
func (c *Collector) Timeline() *Timeline { return c.timeline }

// SeenJobs returns the number of submitted jobs offered to the reservoir.
func (c *Collector) SeenJobs() int { return c.seenJobs }

// SampledJobs returns the number of job spans currently retained.
func (c *Collector) SampledJobs() int { return len(c.spans) }

// Dropped returns the number of events shed by the per-span and global
// caps (reservoir replacement is not counted; it is sampling, not loss).
func (c *Collector) Dropped() int { return c.dropped }

// Events returns every retained event — sampled span events and the
// span-less ring merged into emission order. The slice is freshly
// allocated; mutating it does not affect the collector.
func (c *Collector) Events() []Event {
	n := len(c.global)
	for _, sp := range c.spans {
		n += len(sp.events)
	}
	out := make([]Event, 0, n)
	out = append(out, c.global...)
	for _, sp := range c.spans {
		out = append(out, sp.events...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

func (c *Collector) next() uint64 {
	c.seq++
	return c.seq
}

func (c *Collector) jobSubmitted(now simtime.Time, member int, job string, class int) SpanID {
	c.seenJobs++
	id := SpanID(c.seenJobs)
	var sp *jobSpan
	if len(c.spans) < c.cfg.MaxJobs {
		sp = &jobSpan{id: id, member: member, class: class}
		c.spans = append(c.spans, sp)
	} else {
		slot := c.rng.Intn(c.seenJobs)
		if slot >= c.cfg.MaxJobs {
			return 0 // not sampled; all later calls with id 0 no-op
		}
		old := c.spans[slot]
		delete(c.live, old.id)
		sp = &jobSpan{id: id, member: member, class: class}
		c.spans[slot] = sp
	}
	c.live[id] = sp
	c.spanEvent(id, Event{At: now.Seconds(), Kind: KindSubmit, Job: job})
	return id
}

// spanEvent appends to a sampled span; stale IDs (evicted from the
// reservoir or already completed) and the zero ID are ignored.
func (c *Collector) spanEvent(id SpanID, ev Event) {
	if id == 0 {
		return
	}
	sp, ok := c.live[id]
	if !ok {
		return
	}
	if len(sp.events) >= c.cfg.MaxEventsPerJob {
		c.dropped++
		return
	}
	ev.Span = id
	ev.Member = sp.member
	ev.Class = sp.class
	ev.seq = c.next()
	sp.events = append(sp.events, ev)
}

func (c *Collector) globalEvent(ev Event) {
	ev.seq = c.next()
	if len(c.global) < c.cfg.MaxEvents {
		c.global = append(c.global, ev)
		return
	}
	c.global[c.globalHead] = ev
	c.globalHead = (c.globalHead + 1) % len(c.global)
	c.dropped++
}

// memberTracer curries a member index onto the shared collector.
type memberTracer struct {
	c      *Collector
	member int
}

func (m *memberTracer) JobSubmitted(now simtime.Time, job string, class int) SpanID {
	return m.c.jobSubmitted(now, m.member, job, class)
}

func (m *memberTracer) JobAdmitted(now simtime.Time, id SpanID, policy string) {
	m.c.spanEvent(id, Event{At: now.Seconds(), Kind: KindAdmit, Detail: policy})
}

func (m *memberTracer) JobRejected(now simtime.Time, job string, class int, policy string) {
	m.c.globalEvent(Event{At: now.Seconds(), Kind: KindReject, Member: m.member, Job: job, Class: class, Detail: policy})
}

func (m *memberTracer) JobDeferred(now simtime.Time, job string, class int, policy string) {
	m.c.globalEvent(Event{At: now.Seconds(), Kind: KindDefer, Member: m.member, Job: job, Class: class, Detail: policy})
}

func (m *memberTracer) JobDispatched(now simtime.Time, id SpanID) {
	m.c.spanEvent(id, Event{At: now.Seconds(), Kind: KindDispatch})
}

func (m *memberTracer) JobEvicted(now simtime.Time, id SpanID) {
	m.c.spanEvent(id, Event{At: now.Seconds(), Kind: KindEvict})
}

func (m *memberTracer) JobCompleted(now simtime.Time, id SpanID, failed bool, reason string) {
	kind := KindComplete
	if failed {
		kind = KindFail
	}
	m.c.spanEvent(id, Event{At: now.Seconds(), Kind: kind, Detail: reason})
	delete(m.c.live, id) // span closed; drop stray late events
}

func (m *memberTracer) StageStarted(now simtime.Time, id SpanID, stage int, name string, executed, dropped int) {
	m.c.spanEvent(id, Event{At: now.Seconds(), Kind: KindStageStart, Stage: stage, Detail: name, N: executed, Value: float64(dropped)})
}

func (m *memberTracer) StageEnded(now simtime.Time, id SpanID, stage int) {
	m.c.spanEvent(id, Event{At: now.Seconds(), Kind: KindStageEnd, Stage: stage})
}

func (m *memberTracer) TaskRetried(now simtime.Time, id SpanID, stage, partition, attempt int) {
	m.c.spanEvent(id, Event{At: now.Seconds(), Kind: KindTaskRetry, Stage: stage, Part: partition, N: attempt})
}

func (m *memberTracer) TaskStraggled(now simtime.Time, id SpanID, stage, partition int, factor float64) {
	m.c.spanEvent(id, Event{At: now.Seconds(), Kind: KindStraggler, Stage: stage, Part: partition, Value: factor})
}

func (m *memberTracer) NodeEvent(now simtime.Time, kind Kind, node int) {
	m.c.globalEvent(Event{At: now.Seconds(), Kind: kind, Member: m.member, N: node})
}

func (m *memberTracer) SprintChanged(now simtime.Time, on bool, detail string) {
	kind := KindSprintStop
	if on {
		kind = KindSprintStart
	}
	m.c.globalEvent(Event{At: now.Seconds(), Kind: kind, Member: m.member, Detail: detail})
}
