package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Task is one independent unit of work producing a T. Tasks must not share
// mutable state with each other; the runner may execute them in any order
// and on any goroutine.
type Task[T any] func(ctx context.Context) (T, error)

// Pool bounds the concurrency of experiment runs.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count; n <= 0 sizes the pool to
// one worker per CPU core (GOMAXPROCS).
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: n}
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return p.workers }

// Map executes tasks concurrently on p and returns their results in task
// order, regardless of completion order. The first task error cancels the
// shared context and stops feeding queued tasks (in-flight simulations are
// not preemptible and run to completion); the error is returned wrapped
// with its task index. Cancellation of ctx stops the fan-out and returns
// the context's error.
func Map[T any](ctx context.Context, p *Pool, tasks []Task[T]) ([]T, error) {
	if p == nil {
		p = New(0)
	}
	results := make([]T, len(tasks))
	errs := make([]error, len(tasks))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := p.workers
	if workers < 1 {
		// A zero-value Pool (not built by New) must still make progress.
		workers = 1
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := runCtx.Err(); err != nil {
					errs[i] = err
					continue
				}
				r, err := tasks[i](runCtx)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				results[i] = r
			}
		}()
	}
	for i := range tasks {
		select {
		case next <- i:
		case <-runCtx.Done():
		}
		if runCtx.Err() != nil {
			break
		}
	}
	close(next)
	wg.Wait()
	// Prefer reporting a real task failure over cancellation fallout: a
	// failing task cancels runCtx, which makes its siblings surface
	// context.Canceled too.
	var cancelled error
	for i, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		return nil, fmt.Errorf("runner: task %d of %d: %w", i, len(tasks), err)
	}
	if cancelled != nil {
		return nil, cancelled
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// Seeds expands a base seed into n consecutive replica seeds, the seed axis
// of a scenario × policy × seed grid.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// Replicated runs fn once per seed on the pool and returns the per-seed
// results in seed-list order.
func Replicated[T any](ctx context.Context, p *Pool, seeds []int64, fn func(ctx context.Context, seed int64) (T, error)) ([]T, error) {
	tasks := make([]Task[T], len(seeds))
	for i, s := range seeds {
		seed := s
		tasks[i] = func(ctx context.Context) (T, error) { return fn(ctx, seed) }
	}
	return Map(ctx, p, tasks)
}
