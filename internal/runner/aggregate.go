package runner

import (
	"fmt"
	"math"

	"dias/internal/metrics"
	"dias/internal/stats"
)

// Estimate is a replicate statistic: the mean across seeds plus the
// half-width of its 95% confidence interval (Student's t; zero with fewer
// than two replicates).
type Estimate struct {
	Mean float64 `json:"mean"`
	CI95 float64 `json:"ci95"`
}

// tQuantile975 holds t(0.975, df) for df = 1..30; replication counts are
// small, so the normal 1.96 would understate the interval badly (6.5x at
// two replicates).
var tQuantile975 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tQuantile(df int64) float64 {
	if df < 1 {
		return 0
	}
	if df <= int64(len(tQuantile975)) {
		return tQuantile975[df-1]
	}
	return 1.96
}

// EstimateOf aggregates per-seed values of one metric into a mean/CI
// estimate — the per-seed evidence the hypothesis harness' Dominance
// checks read (internal/hypotheses). Degenerate inputs stay well-defined:
// a single value yields a zero-width interval, and near-constant values
// whose variance cancels to a floating-point negative yield CI95 = 0
// rather than NaN.
func EstimateOf(xs []float64) Estimate {
	var s stats.Stream
	for _, x := range xs {
		s.Add(x)
	}
	e := Estimate{Mean: s.Mean()}
	if n := s.Count(); n >= 2 {
		if ci := tQuantile(n-1) * s.StdDev() / math.Sqrt(float64(n)); ci > 0 {
			e.CI95 = ci
		}
	}
	return e
}

// ClassSummary aggregates one priority class's metrics across replicates.
type ClassSummary struct {
	Class             int      `json:"class"`
	Jobs              Estimate `json:"jobs"`
	MeanResponseSec   Estimate `json:"mean_response_sec"`
	P95ResponseSec    Estimate `json:"p95_response_sec"`
	MeanQueueSec      Estimate `json:"mean_queue_sec"`
	MeanExecSec       Estimate `json:"mean_exec_sec"`
	MeanEffectiveDrop Estimate `json:"mean_effective_drop"`
	Evictions         Estimate `json:"evictions"`
}

// Summary aggregates one scenario's results across seed replicates.
type Summary struct {
	Name             string         `json:"name"`
	Seeds            []int64        `json:"seeds"`
	PerClass         []ClassSummary `json:"per_class"`
	ResourceWastePct Estimate       `json:"resource_waste_pct"`
	EnergyJoules     Estimate       `json:"energy_joules"`
	MakespanSec      Estimate       `json:"makespan_sec"`
	// Failure and elasticity columns (zero for healthy fixed-size runs);
	// carried into BENCH_results.json so the bench-regression gate covers
	// them.
	FailureWastePct  Estimate `json:"failure_waste_pct"`
	FailedJobs       Estimate `json:"failed_jobs"`
	TasksRetried     Estimate `json:"tasks_retried"`
	MeanPoweredNodes Estimate `json:"mean_powered_nodes"`
	// Streaming-scale columns (zero unless the driver measures them).
	// SimJobsPerWallSec is machine-dependent — reported for trending, never
	// gated; PeakInFlightJobs is deterministic and gated like any other
	// column.
	SimJobsPerWallSec Estimate `json:"sim_jobs_per_wall_sec"`
	PeakInFlightJobs  Estimate `json:"peak_in_flight_jobs"`
	// ParallelSpeedup (serial over parallel-kernel wall-clock, same run) is
	// machine-dependent like SimJobsPerWallSec: trending only, never gated.
	ParallelSpeedup Estimate `json:"parallel_speedup"`
}

// Summarize aggregates per-seed replicates of one scenario into mean/CI
// estimates. All replicates must agree on scenario name and class count,
// and pair up with the seed list.
func Summarize(seeds []int64, reps []metrics.ScenarioResult) (Summary, error) {
	if len(reps) == 0 {
		return Summary{}, fmt.Errorf("runner: no replicates to summarize")
	}
	if len(seeds) != len(reps) {
		return Summary{}, fmt.Errorf("runner: %d seeds vs %d replicates", len(seeds), len(reps))
	}
	name, classes := reps[0].Name, len(reps[0].PerClass)
	for _, r := range reps[1:] {
		if r.Name != name || len(r.PerClass) != classes {
			return Summary{}, fmt.Errorf("runner: replicate mismatch: %q/%d classes vs %q/%d",
				name, classes, r.Name, len(r.PerClass))
		}
	}
	pick := func(get func(metrics.ScenarioResult) float64) Estimate {
		xs := make([]float64, len(reps))
		for i, r := range reps {
			xs[i] = get(r)
		}
		return EstimateOf(xs)
	}
	out := Summary{
		Name:             name,
		Seeds:            append([]int64(nil), seeds...),
		ResourceWastePct: pick(func(r metrics.ScenarioResult) float64 { return r.ResourceWastePct }),
		EnergyJoules:     pick(func(r metrics.ScenarioResult) float64 { return r.EnergyJoules }),
		MakespanSec:      pick(func(r metrics.ScenarioResult) float64 { return r.MakespanSec }),
		FailureWastePct:  pick(func(r metrics.ScenarioResult) float64 { return r.FailureWastePct }),
		FailedJobs:       pick(func(r metrics.ScenarioResult) float64 { return float64(r.FailedJobs) }),
		TasksRetried:     pick(func(r metrics.ScenarioResult) float64 { return float64(r.TasksRetried) }),
		MeanPoweredNodes: pick(func(r metrics.ScenarioResult) float64 { return r.MeanPoweredNodes }),
		SimJobsPerWallSec: pick(func(r metrics.ScenarioResult) float64 {
			return r.SimJobsPerWallSec
		}),
		PeakInFlightJobs: pick(func(r metrics.ScenarioResult) float64 {
			return float64(r.PeakInFlightJobs)
		}),
		ParallelSpeedup: pick(func(r metrics.ScenarioResult) float64 {
			return r.ParallelSpeedup
		}),
	}
	for k := 0; k < classes; k++ {
		k := k
		cls := func(get func(metrics.ClassStats) float64) Estimate {
			return pick(func(r metrics.ScenarioResult) float64 { return get(r.PerClass[k]) })
		}
		out.PerClass = append(out.PerClass, ClassSummary{
			Class:             k,
			Jobs:              cls(func(c metrics.ClassStats) float64 { return float64(c.Jobs) }),
			MeanResponseSec:   cls(func(c metrics.ClassStats) float64 { return c.MeanResponseSec }),
			P95ResponseSec:    cls(func(c metrics.ClassStats) float64 { return c.P95ResponseSec }),
			MeanQueueSec:      cls(func(c metrics.ClassStats) float64 { return c.MeanQueueSec }),
			MeanExecSec:       cls(func(c metrics.ClassStats) float64 { return c.MeanExecSec }),
			MeanEffectiveDrop: cls(func(c metrics.ClassStats) float64 { return c.MeanEffectiveDrop }),
			Evictions:         cls(func(c metrics.ClassStats) float64 { return float64(c.Evictions) }),
		})
	}
	return out, nil
}

// SummarizeAll aggregates replicated runs of a whole scenario grid:
// reps[r][i] is the i-th scenario of the grid under seed seeds[r]. Every
// replicate must produce the same scenario sequence.
func SummarizeAll(seeds []int64, reps [][]metrics.ScenarioResult) ([]Summary, error) {
	if len(reps) == 0 {
		return nil, nil
	}
	n := len(reps[0])
	for r, rep := range reps {
		if len(rep) != n {
			return nil, fmt.Errorf("runner: replicate %d has %d scenarios, want %d", r, len(rep), n)
		}
	}
	out := make([]Summary, 0, n)
	for i := 0; i < n; i++ {
		col := make([]metrics.ScenarioResult, len(reps))
		for r := range reps {
			col[r] = reps[r][i]
		}
		s, err := Summarize(seeds, col)
		if err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
		out = append(out, s)
	}
	return out, nil
}
