// Package runner fans independent simulation runs across a bounded worker
// pool. Every figure of the paper's evaluation decomposes into a grid of
// scenario × policy × seed cells whose simulations share no mutable state
// (each run builds its own simulation clock, cluster, engine, and RNGs from
// an explicit seed), so the runner executes such grids concurrently while
// returning results in deterministic task order: a fixed seed list yields
// bit-identical aggregates at any worker count.
//
// Map is the core primitive (ordered concurrent fan-out with first-error
// cancellation); Replicated layers the seed axis on top, and
// Summarize/SummarizeAll fold per-seed replicates into mean ± 95%-CI
// estimates (Student's t, since replicate counts are small). The Summary
// types are the schema of the per-figure scenario aggregates embedded in
// BENCH_results.json; see docs/BENCHMARKING.md.
package runner
