package runner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dias/internal/metrics"
)

// simulate is a deterministic stand-in for a scenario run: it derives every
// number from the seed alone, like the experiment scenarios do.
func simulate(seed int64) metrics.ScenarioResult {
	rng := rand.New(rand.NewSource(seed))
	return metrics.ScenarioResult{
		Name: "P",
		PerClass: []metrics.ClassStats{{
			Class:           0,
			Jobs:            10 + int(rng.Int63n(5)),
			MeanResponseSec: 100 * rng.Float64(),
			P95ResponseSec:  300 * rng.Float64(),
		}},
		EnergyJoules: 1e6 * rng.Float64(),
		MakespanSec:  1e4 * rng.Float64(),
	}
}

func seedTasks(seeds []int64) []Task[metrics.ScenarioResult] {
	tasks := make([]Task[metrics.ScenarioResult], len(seeds))
	for i, s := range seeds {
		s := s
		tasks[i] = func(context.Context) (metrics.ScenarioResult, error) {
			return simulate(s), nil
		}
	}
	return tasks
}

func TestMapDeterministicAcrossWorkerCounts(t *testing.T) {
	seeds := Seeds(7, 40)
	want, err := Map(context.Background(), New(1), seedTasks(seeds))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		got, err := Map(context.Background(), New(workers), seedTasks(seeds))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from single-worker run", workers)
		}
	}
}

func TestMapPreservesTaskOrder(t *testing.T) {
	// Tasks finish in reverse submission order; results must not.
	n := 8
	tasks := make([]Task[int], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func(context.Context) (int, error) {
			time.Sleep(time.Duration(n-i) * time.Millisecond)
			return i, nil
		}
	}
	got, err := Map(context.Background(), New(n), tasks)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("result[%d] = %d", i, v)
		}
	}
}

func TestMapTaskErrorCancelsSiblings(t *testing.T) {
	var started atomic.Int32
	boom := errors.New("boom")
	tasks := make([]Task[int], 50)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx context.Context) (int, error) {
			started.Add(1)
			if i == 3 {
				return 0, boom
			}
			// Later tasks observe the cancellation.
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(2 * time.Millisecond):
				return i, nil
			}
		}
	}
	_, err := Map(context.Background(), New(2), tasks)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if !strings.Contains(err.Error(), "task 3") {
		t.Fatalf("err %q does not name the failing task", err)
	}
	if n := started.Load(); n == 50 {
		t.Fatal("error did not stop the fan-out: all 50 tasks started")
	}
}

func TestMapContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int32
	tasks := make([]Task[int], 100)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx context.Context) (int, error) {
			if i == 0 {
				cancel()
			}
			ran.Add(1)
			return i, nil
		}
	}
	_, err := Map(ctx, New(1), tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n == 100 {
		t.Fatal("cancellation did not stop the fan-out")
	}
}

func TestMapEmptyAndNilPool(t *testing.T) {
	got, err := Map[int](context.Background(), nil, nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty map: %v, %v", got, err)
	}
	if w := New(0).Workers(); w < 1 {
		t.Fatalf("default pool has %d workers", w)
	}
	if w := New(-3).Workers(); w < 1 {
		t.Fatalf("negative pool has %d workers", w)
	}
	// A zero-value Pool (not built by New) must still drain its tasks
	// rather than deadlock.
	got, err = Map(context.Background(), &Pool{}, []Task[int]{
		func(context.Context) (int, error) { return 7, nil },
	})
	if err != nil || len(got) != 1 || got[0] != 7 {
		t.Fatalf("zero-value pool: %v, %v", got, err)
	}
}

func TestTQuantileBands(t *testing.T) {
	if q := tQuantile(1); q != 12.706 {
		t.Fatalf("t(0.975,1) = %g", q)
	}
	if q := tQuantile(30); q != 2.042 {
		t.Fatalf("t(0.975,30) = %g", q)
	}
	if q := tQuantile(200); q != 1.96 {
		t.Fatalf("t(0.975,200) = %g", q)
	}
	if q := tQuantile(0); q != 0 {
		t.Fatalf("t(0.975,0) = %g", q)
	}
}

func TestReplicatedSeedOrder(t *testing.T) {
	seeds := Seeds(100, 6)
	got, err := Replicated(context.Background(), New(4), seeds,
		func(_ context.Context, seed int64) (int64, error) { return seed, nil })
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, seeds) {
		t.Fatalf("got %v, want %v", got, seeds)
	}
}

func TestSeeds(t *testing.T) {
	if got := Seeds(5, 3); !reflect.DeepEqual(got, []int64{5, 6, 7}) {
		t.Fatalf("Seeds(5,3) = %v", got)
	}
	if got := Seeds(1, 0); len(got) != 0 {
		t.Fatalf("Seeds(1,0) = %v", got)
	}
}

func TestSummarizeMeanAndCI(t *testing.T) {
	seeds := []int64{1, 2, 3}
	reps := []metrics.ScenarioResult{
		{Name: "DA", PerClass: []metrics.ClassStats{{MeanResponseSec: 10}}, EnergyJoules: 100},
		{Name: "DA", PerClass: []metrics.ClassStats{{MeanResponseSec: 20}}, EnergyJoules: 100},
		{Name: "DA", PerClass: []metrics.ClassStats{{MeanResponseSec: 30}}, EnergyJoules: 100},
	}
	s, err := Summarize(seeds, reps)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "DA" || !reflect.DeepEqual(s.Seeds, seeds) {
		t.Fatalf("summary header %+v", s)
	}
	m := s.PerClass[0].MeanResponseSec
	if m.Mean != 20 {
		t.Fatalf("mean = %g, want 20", m.Mean)
	}
	// sd = 10, CI95 = t(0.975, 2)*10/sqrt(3) = 4.303*10/sqrt(3) ≈ 24.843
	if m.CI95 < 24.8 || m.CI95 > 24.9 {
		t.Fatalf("CI95 = %g", m.CI95)
	}
	// Constant metric has zero CI.
	if s.EnergyJoules.CI95 != 0 || s.EnergyJoules.Mean != 100 {
		t.Fatalf("energy estimate %+v", s.EnergyJoules)
	}
}

func TestSummarizeSingleReplicateHasZeroCI(t *testing.T) {
	s, err := Summarize([]int64{1}, []metrics.ScenarioResult{
		{Name: "P", PerClass: []metrics.ClassStats{{MeanResponseSec: 42, P95ResponseSec: 99}},
			EnergyJoules: 1e5, MakespanSec: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := s.PerClass[0].MeanResponseSec
	if got.Mean != 42 || got.CI95 != 0 {
		t.Fatalf("estimate %+v", got)
	}
	// Every field of a single-seed summary must be a zero-width interval —
	// never NaN: a degenerate run still renders and serializes cleanly.
	for _, e := range []Estimate{
		s.PerClass[0].P95ResponseSec, s.PerClass[0].MeanQueueSec,
		s.EnergyJoules, s.MakespanSec, s.ResourceWastePct,
		s.FailureWastePct, s.FailedJobs, s.TasksRetried, s.MeanPoweredNodes,
	} {
		if math.IsNaN(e.Mean) || math.IsNaN(e.CI95) || e.CI95 != 0 {
			t.Fatalf("single-seed estimate not a clean zero-width interval: %+v", e)
		}
	}
}

// TestEstimateOfDegenerateInputs pins EstimateOf against the inputs that
// historically produced NaN or negative intervals: empty, single-value, and
// near-constant sequences whose Welford m2 rounds negative.
func TestEstimateOfDegenerateInputs(t *testing.T) {
	if e := EstimateOf(nil); e.Mean != 0 || e.CI95 != 0 {
		t.Fatalf("empty input: %+v", e)
	}
	if e := EstimateOf([]float64{7.5}); e.Mean != 7.5 || e.CI95 != 0 {
		t.Fatalf("single value: %+v", e)
	}
	// Constant inputs: exactly zero width.
	if e := EstimateOf([]float64{3, 3, 3, 3}); e.Mean != 3 || e.CI95 != 0 {
		t.Fatalf("constant input: %+v", e)
	}
	// Near-constant values around a large offset stress Welford's m2 into
	// the rounding regime where it can dip below zero.
	base := 1e15
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = base + float64(i%2)*1e-3
	}
	e := EstimateOf(xs)
	if math.IsNaN(e.Mean) || math.IsNaN(e.CI95) || e.CI95 < 0 {
		t.Fatalf("near-constant input produced NaN/negative CI: %+v", e)
	}
}

func TestSummarizeRejectsMismatch(t *testing.T) {
	if _, err := Summarize(nil, nil); err == nil {
		t.Fatal("empty replicates accepted")
	}
	if _, err := Summarize([]int64{1}, make([]metrics.ScenarioResult, 2)); err == nil {
		t.Fatal("seed/replicate length mismatch accepted")
	}
	reps := []metrics.ScenarioResult{{Name: "P"}, {Name: "NP"}}
	if _, err := Summarize([]int64{1, 2}, reps); err == nil {
		t.Fatal("name mismatch accepted")
	}
}

func TestSummarizeAllPairsColumns(t *testing.T) {
	mk := func(name string, v float64) metrics.ScenarioResult {
		return metrics.ScenarioResult{Name: name, PerClass: []metrics.ClassStats{{MeanResponseSec: v}}}
	}
	seeds := []int64{1, 2}
	reps := [][]metrics.ScenarioResult{
		{mk("P", 10), mk("NP", 1)},
		{mk("P", 30), mk("NP", 3)},
	}
	got, err := SummarizeAll(seeds, reps)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "P" || got[1].Name != "NP" {
		t.Fatalf("summaries %+v", got)
	}
	if got[0].PerClass[0].MeanResponseSec.Mean != 20 || got[1].PerClass[0].MeanResponseSec.Mean != 2 {
		t.Fatalf("column means wrong: %+v", got)
	}
	if _, err := SummarizeAll(seeds, [][]metrics.ScenarioResult{{mk("P", 1)}, {}}); err == nil {
		t.Fatal("ragged replicates accepted")
	}
}

// TestReplicatedSimulationGridEndToEnd exercises the scenario × seed grid
// path the CLI uses: replicate a grid, then aggregate, at several worker
// counts — aggregates must be identical.
func TestReplicatedSimulationGridEndToEnd(t *testing.T) {
	seeds := Seeds(11, 5)
	runGrid := func(workers int) []Summary {
		t.Helper()
		reps, err := Replicated(context.Background(), New(workers), seeds,
			func(_ context.Context, seed int64) ([]metrics.ScenarioResult, error) {
				grid := make([]metrics.ScenarioResult, 3)
				for i := range grid {
					grid[i] = simulate(seed*100 + int64(i))
					grid[i].Name = fmt.Sprintf("policy-%d", i)
				}
				return grid, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		sums, err := SummarizeAll(seeds, reps)
		if err != nil {
			t.Fatal(err)
		}
		return sums
	}
	want := runGrid(1)
	for _, w := range []int{2, 7} {
		if got := runGrid(w); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: aggregates differ from serial run", w)
		}
	}
}
