package hypotheses

import (
	"dias"
	"dias/internal/admission"
	"dias/internal/experiments"
	"dias/internal/metrics"
)

// h2Values derives the admission-mechanism metrics from one overloaded
// run: the latency headline plus the goodput/rejected split that says HOW
// the headline was earned.
func h2Values(r metrics.ScenarioResult) map[string]float64 {
	return map[string]float64{
		"p95-low":      r.PerClass[0].P95ResponseSec,
		"mean-low":     r.PerClass[0].MeanResponseSec,
		"rejected-pct": r.RejectedPct,
		"goodput":      r.GoodputJobsPerSec,
	}
}

// H2: the token bucket's P95 win at 3x offered load is real, but the
// claimed mechanism — smoothing bursts while admitting nearly everything —
// is tested separately from the headline, via the rejected-work split.
func H2() Spec {
	const load = 3.0
	runCell := func(name string, admit bool) Cell {
		detail := "no admission control: every arrival is buffered (the unbounded-backlog baseline)"
		if admit {
			detail = "token-bucket admission at 0.9x capacity sustained rate, burst 8/4, from the dias registry"
		}
		return Cell{
			Name:   name,
			Detail: detail,
			Run: func(seed int64, jobs int) (CellResult, error) {
				w, err := experiments.NewReferenceWorkload(seed)
				if err != nil {
					return CellResult{}, err
				}
				cell := experiments.StackCell{Name: name, Jobs: jobs, LoadFactor: load}
				if admit {
					// Sustain 90% of capacity: shed only genuine overload,
					// not calibration headroom (the overload driver's
					// configuration).
					sustain := w.Rates(0.9)
					cell.Admission = func() admission.Policy {
						p, err := dias.AdmissionPolicies().New("token-bucket", dias.AdmissionOptions{
							Rate:  sustain,
							Burst: []float64{8, 4},
						})
						if err != nil {
							panic(err) // static name, validated options
						}
						return p
					}
				}
				r, err := w.RunStackCell(cell)
				if err != nil {
					return CellResult{}, err
				}
				return CellResult{Scenario: r, Values: h2Values(r)}, nil
			},
		}
	}
	return Spec{
		ID:     "h2-token-bucket-mechanism",
		Title:  "Token-bucket admission's P95 win at 3x load is load shedding, not burst smoothing",
		Family: "admission",
		Claim: "At 3x offered load, token-bucket admission improves low-class P95 latency over " +
			"no admission control; if the improvement came from smoothing arrival bursts the " +
			"bucket would reject almost nothing (≤5%), so a high rejection rate attributes the " +
			"win to deliberate load shedding instead.",
		Varied: "admission policy: none vs token-bucket, at identical 3x offered load",
		Controlled: []string{
			"single default cluster, DiAS policy (DA(0,20) + sprinting)",
			"two-class reference text workload at 3x capacity offered load",
			"token bucket sustains 0.9x capacity with burst 8 (low) / 4 (high)",
		},
		Seeds: []int64{42, 123, 456},
		Jobs:  150,
		Metrics: []Metric{
			{Name: "p95-low", Unit: "s", Desc: "low-class P95 response time"},
			{Name: "mean-low", Unit: "s", Desc: "low-class mean response time"},
			{Name: "rejected-pct", Unit: "%", Desc: "admission-shed share of post-warmup outcomes"},
			{Name: "goodput", Unit: "jobs/s", Desc: "completed (not shed, not failed) jobs per second"},
		},
		Cells: []Cell{
			runCell("always", false),
			runCell("token-bucket", true),
		},
		Primary: []Check{
			Dominance{
				Metric:        "p95-low",
				Superior:      "token-bucket",
				Inferior:      "always",
				LowerIsBetter: true,
				MinRelGainPct: 10,
			},
		},
		Nuance: []Check{
			// The burst-smoothing mechanism story: it survives only if the
			// bucket sheds almost nothing. Expected to fail — that failure
			// is the finding (shedding, not smoothing, pays for the P95).
			Invariant{
				Metric: "rejected-pct",
				Min:    0,
				Max:    5,
				Cells:  []string{"token-bucket"},
			},
		},
		Notes: "The nuance invariant encodes the burst-smoothing explanation; its refutation is " +
			"the point: the P95 win is purchased by rejecting a large share of offered work, " +
			"which the goodput and rejected-pct rows quantify.",
	}
}
