package hypotheses

import (
	"fmt"
	"math"

	"dias/internal/experiments"
	"dias/internal/faults"
	"dias/internal/telemetry"
)

// H4: the telemetry layer claims to be a pure observer — spans, node
// events and gauge timelines recorded without perturbing a single
// simulated quantity. The claim is subtle because the gauge sampler
// interposes on the event loop itself: a naive implementation that
// scheduled sampling ticks as simulation events would stretch the
// makespan (a tick landing after the last real event advances the
// clock) and with it energy integrals. Each cell runs the same workload
// twice under one seed — tracer nil, then tracer armed — and reports
// the deltas; tracing is armed under both a quiet and a fault-stressed
// workload, where retry/node-event hooks fire on the hot paths.
func H4() Spec {
	type stressor struct {
		name   string
		detail string
		plan   *faults.Config
	}
	axis := []stressor{
		{"quiet", "no injected faults; lifecycle, sprint and gauge hooks only", nil},
		{"churned", "node churn MTTF 600s MTTR 90s; adds node-event, retry and straggler hooks", &faults.Config{
			Churn: &faults.ChurnConfig{MTTFSec: 600, MTTRSec: 90},
		}},
	}
	cells := make([]Cell, len(axis))
	for i, s := range axis {
		s := s
		cells[i] = Cell{
			Name:   s.name,
			Detail: s.detail,
			Run: func(seed int64, jobs int) (CellResult, error) {
				w, err := experiments.NewReferenceWorkload(seed)
				if err != nil {
					return CellResult{}, err
				}
				base := experiments.StackCell{
					Name: s.name, Jobs: jobs, LoadFactor: 0.7, Faults: s.plan,
				}
				plain, err := w.RunStackCell(base)
				if err != nil {
					return CellResult{}, err
				}
				tracedCell := base
				tracedCell.Telemetry = telemetry.NewRegistry(telemetry.Config{Seed: seed})
				traced, err := w.RunStackCell(tracedCell)
				if err != nil {
					return CellResult{}, err
				}
				col := tracedCell.Telemetry.Get(s.name)
				if col == nil {
					return CellResult{}, fmt.Errorf("hypotheses: traced cell %q registered no collector", s.name)
				}
				active := 0.0
				if len(col.Events()) > 0 && col.Timeline() != nil && col.Timeline().Len() > 0 {
					active = 1
				}
				var meanLowDelta float64
				if len(plain.PerClass) > 0 && len(traced.PerClass) > 0 {
					meanLowDelta = traced.PerClass[0].MeanResponseSec - plain.PerClass[0].MeanResponseSec
				}
				return CellResult{
					Scenario: traced,
					Values: map[string]float64{
						"makespan-delta-sec":  traced.MakespanSec - plain.MakespanSec,
						"mean-low-delta-sec":  meanLowDelta,
						"energy-delta-joules": traced.EnergyJoules - plain.EnergyJoules,
						"span-coverage-pct":   100 * float64(col.SeenJobs()) / float64(jobs),
						"telemetry-active":    active,
						"gauge-samples":       math.Min(float64(col.Timeline().Len()), 1e6),
					},
				}, nil
			},
		}
	}
	return Spec{
		ID:     "h4-telemetry-observer-effect",
		Title:  "Armed telemetry perturbs nothing it observes",
		Claim:  "Arming the telemetry layer (lifecycle spans, node events, simtime gauges) leaves every measured result bit-identical to the untraced run, under quiet and fault-stressed workloads alike.",
		Family: "telemetry",
		Varied: "workload stressor under which the tracer is armed (each cell pairs a traced run against an untraced run of the same seed)",
		Controlled: []string{
			"seed and arrival stream (identical in the paired runs)",
			"DiAS policy: DA(0,20) + sprinting, 0.7 load factor",
			"telemetry bounds (default reservoir and gauge cadence)",
		},
		Seeds: []int64{11, 12, 13},
		Jobs:  240,
		Metrics: []Metric{
			{Name: "makespan-delta-sec", Unit: "s", Desc: "traced minus untraced makespan; nonzero means gauge ticks advanced the clock"},
			{Name: "mean-low-delta-sec", Unit: "s", Desc: "traced minus untraced low-class mean response"},
			{Name: "energy-delta-joules", Unit: "J", Desc: "traced minus untraced cluster energy"},
			{Name: "span-coverage-pct", Unit: "%", Desc: "jobs offered to the span reservoir as a share of arrivals; 100 = every submission observed"},
			{Name: "telemetry-active", Unit: "0/1", Desc: "1 when the traced run retained events and gauge samples — guards against a vacuous pass"},
			{Name: "gauge-samples", Unit: "rows", Desc: "gauge timeline length of the traced run"},
		},
		Cells: cells,
		Primary: []Check{
			Invariant{Metric: "makespan-delta-sec", Min: 0, Max: 0},
			Invariant{Metric: "mean-low-delta-sec", Min: 0, Max: 0},
			Invariant{Metric: "energy-delta-joules", Min: 0, Max: 0},
			Invariant{Metric: "telemetry-active", Min: 1, Max: 1},
		},
		Nuance: []Check{
			Invariant{Metric: "span-coverage-pct", Min: 100, Max: 100},
		},
		Notes: "The deltas are exact float comparisons, not tolerances: the sampler interleaves " +
			"with the event loop (simtime.RunUntil to each gauge instant) instead of scheduling " +
			"tick events, so the traced run replays the identical event sequence and the clock " +
			"never advances past the last real event. The nuance check pins full span coverage: " +
			"every arrival is offered to the reservoir (sampling bounds memory, not visibility).",
	}
}
