package hypotheses

import (
	"context"
	"fmt"

	"dias/internal/metrics"
	"dias/internal/runner"
)

// Options tunes a hypothesis run.
type Options struct {
	// Workers bounds the concurrency of the cell × seed grid; 0 uses one
	// worker per CPU core. Results are bit-identical at any worker count.
	Workers int
	// Jobs overrides the spec's per-run arrival count (0 keeps the spec's;
	// committed findings always use the spec's so -check reproduces them).
	Jobs int
}

// CheckResult pairs one check with its outcome.
type CheckResult struct {
	Kind    string
	Claim   string
	Role    string // "primary" or "nuance"
	Outcome Outcome
}

// Result is one executed hypothesis: the evidence grid, every check's
// outcome, and the combined verdict.
type Result struct {
	Spec     Spec
	Jobs     int // arrivals per run actually used
	Evidence Evidence
	Checks   []CheckResult
	Verdict  Verdict
}

// Run executes the hypothesis: every cell under every seed through
// runner.Map, per-cell aggregation through runner.Summarize, then the
// checks. The only error sources are malformed specs and failed
// simulation runs — a refuted claim is a successful run.
func Run(ctx context.Context, spec Spec, opts Options) (*Result, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	jobs := spec.Jobs
	if opts.Jobs > 0 {
		jobs = opts.Jobs
	}
	// Cell-major grid: task index = cell*len(seeds) + seedIdx. runner.Map
	// preserves task order, so regrouping below is positional.
	tasks := make([]runner.Task[CellResult], 0, len(spec.Cells)*len(spec.Seeds))
	for _, cell := range spec.Cells {
		for _, seed := range spec.Seeds {
			cell, seed := cell, seed
			tasks = append(tasks, func(context.Context) (CellResult, error) {
				res, err := cell.Run(seed, jobs)
				if err != nil {
					return CellResult{}, fmt.Errorf("%s: cell %q seed %d: %w", spec.ID, cell.Name, seed, err)
				}
				// Summarize requires one scenario name per cell; the cell
				// name is that identity regardless of what the underlying
				// driver called its run.
				res.Scenario.Name = cell.Name
				return res, nil
			})
		}
	}
	grid, err := runner.Map(ctx, runner.New(opts.Workers), tasks)
	if err != nil {
		return nil, err
	}
	ev := Evidence{Seeds: spec.Seeds}
	for c, cell := range spec.Cells {
		perSeed := grid[c*len(spec.Seeds) : (c+1)*len(spec.Seeds)]
		scens := make([]metrics.ScenarioResult, len(perSeed))
		for i, r := range perSeed {
			scens[i] = r.Scenario
		}
		summary, err := runner.Summarize(spec.Seeds, scens)
		if err != nil {
			return nil, fmt.Errorf("%s: cell %q: %w", spec.ID, cell.Name, err)
		}
		ev.Cells = append(ev.Cells, CellEvidence{
			Name:    cell.Name,
			Detail:  cell.Detail,
			PerSeed: perSeed,
			Summary: summary,
		})
	}
	res := &Result{Spec: spec, Jobs: jobs, Evidence: ev}
	for _, role := range []struct {
		name   string
		checks []Check
	}{{"primary", spec.Primary}, {"nuance", spec.Nuance}} {
		for _, chk := range role.checks {
			out, err := chk.Evaluate(&ev)
			if err != nil {
				return nil, fmt.Errorf("%s: %s check: %w", spec.ID, role.name, err)
			}
			res.Checks = append(res.Checks, CheckResult{
				Kind:    chk.Kind(),
				Claim:   chk.Claim(),
				Role:    role.name,
				Outcome: out,
			})
		}
	}
	res.Verdict = combine(res.Checks)
	return res, nil
}

// combine folds check outcomes into the hypothesis verdict: any primary
// refutation refutes; any primary inconclusive is inconclusive; all
// primaries confirmed resolves to Confirmed, demoted to
// ConfirmedWithNuance when a nuance check did not confirm.
func combine(checks []CheckResult) Verdict {
	refuted, inconclusive, nuanceClean := false, false, true
	for _, c := range checks {
		switch c.Role {
		case "primary":
			switch c.Outcome.Verdict {
			case Refuted:
				refuted = true
			case Inconclusive:
				inconclusive = true
			}
		case "nuance":
			if c.Outcome.Verdict != Confirmed {
				nuanceClean = false
			}
		}
	}
	switch {
	case refuted:
		return Refuted
	case inconclusive:
		return Inconclusive
	case nuanceClean:
		return Confirmed
	default:
		return ConfirmedWithNuance
	}
}
