package hypotheses

import (
	"fmt"

	"dias"
	"dias/internal/experiments"
	"dias/internal/federation"
)

// mustRouting resolves a routing policy from the dias registry into the
// per-run factory a federation cell needs. The names are static spec
// constants validated at registration, so a resolution failure is a
// programming error.
func mustRouting(name string) func(seed int64) federation.RoutingPolicy {
	if _, ok := dias.RoutingPolicies().Lookup(name); !ok {
		panic(fmt.Sprintf("hypotheses: unknown routing policy %q", name))
	}
	return func(seed int64) federation.RoutingPolicy {
		p, err := dias.RoutingPolicies().New(name, dias.RoutingOptions{Seed: seed})
		if err != nil {
			panic(err) // unreachable: name validated above
		}
		return p
	}
}

// H1: JSQ's win over random routing is a queueing effect, so it should
// only clear a meaningful margin once members actually queue — i.e. above
// a utilization threshold, not uniformly.
func H1() Spec {
	const members = 4
	type utilCell struct {
		name string
		util float64
	}
	axis := []utilCell{
		{"util-030", 0.30},
		{"util-055", 0.55},
		{"util-075", 0.75},
		{"util-090", 0.90},
	}
	cells := make([]Cell, len(axis))
	for i, u := range axis {
		u := u
		cells[i] = Cell{
			Name: u.name,
			Detail: fmt.Sprintf("%d homogeneous members at %.0f%% per-cluster nominal load; paired jsq and random runs, same seed and workload",
				members, 100*u.util),
			Run: func(seed int64, jobs int) (CellResult, error) {
				w, err := experiments.NewReferenceWorkload(seed)
				if err != nil {
					return CellResult{}, err
				}
				run := func(policy string) (p95 float64, res CellResult, err error) {
					r, err := w.RunFederationCell(experiments.FederationCell{
						Name:        u.name + "-" + policy,
						Jobs:        jobs,
						Members:     members,
						Utilization: u.util,
						Routing:     mustRouting(policy),
					})
					if err != nil {
						return 0, CellResult{}, err
					}
					return r.PerClass[0].P95ResponseSec, CellResult{Scenario: r}, nil
				}
				jsqP95, jsqRes, err := run("jsq")
				if err != nil {
					return CellResult{}, err
				}
				randP95, _, err := run("random")
				if err != nil {
					return CellResult{}, err
				}
				gain := 0.0
				if randP95 > 0 {
					gain = 100 * (randP95 - jsqP95) / randP95
				}
				jsqRes.Values = map[string]float64{
					"p95-low-jsq":    jsqP95,
					"p95-low-random": randP95,
					"jsq-gain-pct":   gain,
				}
				return jsqRes, nil
			},
		}
	}
	return Spec{
		ID:     "h1-jsq-vs-random-utilization",
		Title:  "JSQ beats random routing only above a utilization threshold",
		Family: "federation",
		Claim: "Join-shortest-queue routing improves low-class P95 latency over random routing " +
			"by a meaningful margin (≥10%) only once per-member utilization is high enough for " +
			"queues to form; at low utilization the two are within noise of each other.",
		Varied: "per-cluster nominal utilization (0.30 → 0.90), everything else identical",
		Controlled: []string{
			"4 homogeneous default member clusters, DiAS per-member policy (DA(0,20) + sprinting)",
			"two-class reference text workload, 9:1 low:high mix, data homes round-robin",
			"paired runs: jsq and random see the same seed, workload and arrival stream",
		},
		Seeds: []int64{42, 123, 456},
		Jobs:  160,
		Metrics: []Metric{
			{Name: "p95-low-jsq", Unit: "s", Desc: "low-class P95 response under JSQ routing"},
			{Name: "p95-low-random", Unit: "s", Desc: "low-class P95 response under random routing"},
			{Name: "jsq-gain-pct", Unit: "%", Desc: "JSQ's relative P95 improvement over random (positive = JSQ better)"},
		},
		Cells: cells,
		Primary: []Check{
			Threshold{Metric: "jsq-gain-pct", Bound: 10},
		},
		Notes: "The cell aggregates table reports the JSQ run of each pair (the paired random run " +
			"appears in the p95-low-random evidence row). The refutation is informative: with " +
			"minute-scale jobs and only 4 members, random routing collides enough arrivals onto " +
			"one member to hurt P95 even at 30% nominal load, so JSQ's margin is far above 10% " +
			"across the whole probed range — there is no low-utilization regime where the two " +
			"are equivalent.",
	}
}
