package hypotheses

import (
	"fmt"

	"dias/internal/experiments"
	"dias/internal/faults"
	"dias/internal/metrics"
)

// countOutcomes sums a run's post-warmup outcomes (completed, failed,
// rejected) for the conservation invariant.
func countOutcomes(r metrics.ScenarioResult) int {
	total := 0
	for _, cs := range r.PerClass {
		total += cs.Jobs + cs.FailedJobs + cs.RejectedJobs
	}
	return total
}

// H3: as node churn intensifies (MTTF drops), retry re-execution should
// compound with queueing — each retry occupies capacity that delays other
// jobs, whose own retries delay more — so mean response inflation should
// grow faster than the churn rate itself (superlinearly in 1/MTTF).
func H3() Spec {
	const mttrSec = 90.0
	type churnCell struct {
		name    string
		mttfSec float64
	}
	axis := []churnCell{
		{"mttf-3600", 3600},
		{"mttf-1200", 1200},
		{"mttf-400", 400},
	}
	cells := make([]Cell, len(axis))
	for i, c := range axis {
		c := c
		cells[i] = Cell{
			Name: c.name,
			Detail: fmt.Sprintf("node churn MTTF %gs, MTTR %gs; paired healthy baseline, same seed and workload",
				c.mttfSec, mttrSec),
			Run: func(seed int64, jobs int) (CellResult, error) {
				w, err := experiments.NewReferenceWorkload(seed)
				if err != nil {
					return CellResult{}, err
				}
				healthy, err := w.RunStackCell(experiments.StackCell{
					Name: c.name + "-healthy", Jobs: jobs, LoadFactor: 0.7,
				})
				if err != nil {
					return CellResult{}, err
				}
				churned, err := w.RunStackCell(experiments.StackCell{
					Name: c.name, Jobs: jobs, LoadFactor: 0.7,
					Faults: &faults.Config{
						Churn: &faults.ChurnConfig{MTTFSec: c.mttfSec, MTTRSec: mttrSec},
					},
				})
				if err != nil {
					return CellResult{}, err
				}
				excess := 0.0
				if h := healthy.PerClass[0].MeanResponseSec; h > 0 {
					excess = 100 * (churned.PerClass[0].MeanResponseSec/h - 1)
				}
				// Normalize by churn rate (∝ 1/MTTF): linear amplification
				// keeps this constant along the axis, superlinear growth
				// makes it rise as MTTF drops.
				perChurn := excess * c.mttfSec / 3600
				skip := int(0.1 * float64(jobs))
				gap := float64(jobs-skip) - float64(countOutcomes(churned))
				return CellResult{
					Scenario: churned,
					Values: map[string]float64{
						"mean-low-excess-pct": excess,
						"excess-per-churn":    perChurn,
						"retries":             float64(churned.TasksRetried),
						"conservation-gap":    gap,
					},
				}, nil
			},
		}
	}
	return Spec{
		ID:     "h3-churn-retry-amplification",
		Title:  "Node churn amplifies mean response superlinearly as MTTF drops",
		Family: "faults",
		Claim: "Tripling and then further tripling the node-churn rate (MTTF 3600s → 1200s → 400s, " +
			"MTTR 90s) inflates low-class mean response superlinearly: the inflation per unit of " +
			"churn rate grows as MTTF drops, because retry re-execution steals capacity and " +
			"compounds with queueing. Job conservation must hold in every cell.",
		Varied: "node-churn MTTF (3600s → 1200s → 400s) at fixed MTTR and load",
		Controlled: []string{
			"single default cluster, DiAS policy (DA(0,20) + sprinting), 70% nominal load",
			"two-class reference text workload; paired healthy baseline per cell, same seed",
			"MTTR fixed at 90s; only the failure rate varies",
		},
		Seeds: []int64{42, 123, 456},
		Jobs:  240,
		Metrics: []Metric{
			{Name: "mean-low-excess-pct", Unit: "%", Desc: "low-class mean response inflation over the paired healthy run"},
			{Name: "excess-per-churn", Unit: "%·(MTTF/3600)", Desc: "inflation normalized by churn rate; constant = linear, rising = superlinear"},
			{Name: "retries", Unit: "tasks", Desc: "failure-aborted task attempts re-executed"},
			{Name: "conservation-gap", Unit: "jobs", Desc: "post-warmup arrivals minus (completed + failed + rejected); 0 = no job lost or double-counted"},
		},
		Cells: cells,
		Primary: []Check{
			Dominance{
				Metric:   "excess-per-churn",
				Superior: "mttf-1200", Inferior: "mttf-3600",
			},
			Dominance{
				Metric:   "excess-per-churn",
				Superior: "mttf-400", Inferior: "mttf-1200",
			},
			Invariant{Metric: "conservation-gap", Min: 0, Max: 0},
		},
		Notes: "Superlinearity is judged on the normalized excess-per-churn chain: each step down " +
			"in MTTF must raise inflation-per-unit-churn in every seed, which a linear model " +
			"cannot do. The evidence shows the opposite monotonic trend — inflation per unit of " +
			"churn falls as churn intensifies — so amplification at 70% load is sublinear: the " +
			"30% capacity headroom absorbs retry re-execution, and concurrent outages " +
			"increasingly overlap the same queueing delay instead of compounding it.",
	}
}

// All returns every seeded hypothesis, in presentation order.
func All() []Spec {
	return []Spec{H1(), H2(), H3(), H4(), H5(), H6()}
}
