package hypotheses

// Deterministic markdown rendering: FINDINGS.md per hypothesis plus the
// hypotheses/README.md index. Nothing environment-dependent goes into the
// output — no timestamps, no hostnames, no git state — because the files
// are committed and the -check mode diffs regenerated content against them
// byte for byte.

import (
	"fmt"
	"strconv"
	"strings"

	"dias/internal/runner"
)

// trimFloat renders a float compactly and deterministically: up to 4
// significant digits, no trailing zeros, no exponent for ordinary
// magnitudes.
func trimFloat(x float64) string {
	s := strconv.FormatFloat(x, 'g', 4, 64)
	// FormatFloat 'g' switches to exponent notation for |x| >= 1e4 at this
	// precision; latency seconds and percentages stay well under that, and
	// where they don't the exponent form is still deterministic.
	return s
}

// Render produces the hypothesis's FINDINGS.md content.
func Render(r *Result) string {
	var b strings.Builder
	s := &r.Spec
	fmt.Fprintf(&b, "# %s: %s\n\n", strings.ToUpper(idShort(s.ID)), s.Title)
	fmt.Fprintf(&b, "- **Verdict: %s**\n", r.Verdict)
	fmt.Fprintf(&b, "- Family: %s\n", s.Family)
	fmt.Fprintf(&b, "- Varied dimension: %s\n", s.Varied)
	fmt.Fprintf(&b, "- Seeds: %s\n", seedList(s.Seeds))
	fmt.Fprintf(&b, "- Jobs per run: %d\n\n", r.Jobs)

	b.WriteString("## Claim\n\n")
	fmt.Fprintf(&b, "> %s\n\n", s.Claim)

	b.WriteString("## Experiment design\n\n")
	if len(s.Controlled) > 0 {
		b.WriteString("Controlled (held fixed):\n\n")
		for _, c := range s.Controlled {
			fmt.Fprintf(&b, "- %s\n", c)
		}
		b.WriteString("\n")
	}
	b.WriteString("Cells (the varied dimension):\n\n")
	b.WriteString("| Cell | Configuration |\n|---|---|\n")
	for _, c := range s.Cells {
		fmt.Fprintf(&b, "| %s | %s |\n", c.Name, c.Detail)
	}
	b.WriteString("\nMetrics:\n\n")
	b.WriteString("| Metric | Unit | Meaning |\n|---|---|---|\n")
	for _, m := range s.Metrics {
		fmt.Fprintf(&b, "| %s | %s | %s |\n", m.Name, m.Unit, m.Desc)
	}
	b.WriteString("\n")

	b.WriteString("## Evidence\n\n")
	for _, m := range s.Metrics {
		fmt.Fprintf(&b, "### %s (%s)\n\n", m.Name, m.Unit)
		b.WriteString("| Cell |")
		for _, seed := range r.Evidence.Seeds {
			fmt.Fprintf(&b, " seed %d |", seed)
		}
		b.WriteString(" mean ± CI95 |\n|---|")
		for range r.Evidence.Seeds {
			b.WriteString("---|")
		}
		b.WriteString("---|\n")
		for i := range r.Evidence.Cells {
			ce := &r.Evidence.Cells[i]
			fmt.Fprintf(&b, "| %s |", ce.Name)
			for _, v := range ce.Values(m.Name) {
				fmt.Fprintf(&b, " %s |", trimFloat(v))
			}
			e := ce.Estimate(m.Name)
			fmt.Fprintf(&b, " %s ± %s |\n", trimFloat(e.Mean), trimFloat(e.CI95))
		}
		b.WriteString("\n")
	}

	b.WriteString("### Cell aggregates (runner.Summarize across seeds)\n\n")
	b.WriteString("| Cell | mean resp (low) | p95 resp (low) | rejected % | goodput jobs/s |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for i := range r.Evidence.Cells {
		ce := &r.Evidence.Cells[i]
		mr := ce.Summary.PerClass[0].MeanResponseSec
		p95 := ce.Summary.PerClass[0].P95ResponseSec
		rej := runnerEstimate(ce, func(r CellResult) float64 { return r.Scenario.RejectedPct })
		good := runnerEstimate(ce, func(r CellResult) float64 { return r.Scenario.GoodputJobsPerSec })
		fmt.Fprintf(&b, "| %s | %s ± %s | %s ± %s | %s ± %s | %s ± %s |\n",
			ce.Name,
			trimFloat(mr.Mean), trimFloat(mr.CI95),
			trimFloat(p95.Mean), trimFloat(p95.CI95),
			trimFloat(rej.Mean), trimFloat(rej.CI95),
			trimFloat(good.Mean), trimFloat(good.CI95))
	}
	b.WriteString("\n")

	b.WriteString("## Checks\n\n")
	for _, c := range r.Checks {
		fmt.Fprintf(&b, "### [%s/%s] %s — %s\n\n", c.Role, c.Kind, c.Claim, c.Outcome.Verdict)
		fmt.Fprintf(&b, "%s\n\n", c.Outcome.Summary)
		for _, line := range c.Outcome.PerSeed {
			fmt.Fprintf(&b, "- %s\n", line)
		}
		b.WriteString("\n")
	}

	fmt.Fprintf(&b, "## Verdict\n\n**%s.**", r.Verdict)
	if s.Notes != "" {
		fmt.Fprintf(&b, " %s", s.Notes)
	}
	b.WriteString("\n")
	return b.String()
}

// RenderIndex produces the hypotheses/README.md content from the full
// result set, in input order.
func RenderIndex(results []*Result) string {
	var b strings.Builder
	b.WriteString(`# Hypotheses

Accumulated, falsifiable findings about the middleware's behavior. Each
entry declares a behavioral claim, varies exactly one dimension across two
or more cell configurations, runs every cell under every seed through the
experiment runner, and resolves typed checks into a verdict. The full
evidence lives in each entry's FINDINGS.md.

These files are a regression surface: ` + "`dias-hypotheses -check`" + ` re-runs
every grid and diffs the committed FINDINGS byte for byte, so a policy
change that silently flips a verdict fails CI. Regenerate with
` + "`make hypotheses`" + ` after an intentional behavior change and review the
diff like any other.

| ID | Family | Hypothesis | Verdict | Key evidence |
|---|---|---|---|---|
`)
	for _, r := range results {
		key := ""
		for _, c := range r.Checks {
			if c.Role == "primary" {
				key = c.Outcome.Summary
				break
			}
		}
		fmt.Fprintf(&b, "| [%s](%s/FINDINGS.md) | %s | %s | %s | %s |\n",
			idShort(r.Spec.ID), r.Spec.ID, r.Spec.Family, r.Spec.Title, r.Verdict, key)
	}
	return b.String()
}

// idShort returns the leading "hN" token of a spec ID slug.
func idShort(id string) string {
	if i := strings.IndexByte(id, '-'); i > 0 {
		return id[:i]
	}
	return id
}

func seedList(seeds []int64) string {
	parts := make([]string, len(seeds))
	for i, s := range seeds {
		parts[i] = strconv.FormatInt(s, 10)
	}
	return strings.Join(parts, ", ")
}

// runnerEstimate aggregates a scenario-level field across a cell's seeds.
func runnerEstimate(ce *CellEvidence, get func(CellResult) float64) runner.Estimate {
	xs := make([]float64, len(ce.PerSeed))
	for i, r := range ce.PerSeed {
		xs[i] = get(r)
	}
	return runner.EstimateOf(xs)
}
