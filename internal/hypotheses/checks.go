package hypotheses

import "fmt"

// Outcome is one check's resolution: a verdict (Confirmed / Refuted /
// Inconclusive — the composite ConfirmedWithNuance exists only at the
// hypothesis level), a one-line summary, and the per-seed evidence lines
// the summary compresses.
type Outcome struct {
	Verdict Verdict
	Summary string
	PerSeed []string
}

// Check judges one aspect of the evidence. Implementations must be
// deterministic and read-only.
type Check interface {
	// Kind is the check's type name for the rendered finding.
	Kind() string
	// Claim states what the check asserts, in prose.
	Claim() string
	// Evaluate judges the evidence. An error means the evidence is
	// malformed (unknown cell or metric), not that the claim failed.
	Evaluate(ev *Evidence) (Outcome, error)
}

// --- Dominance ---------------------------------------------------------------

// Dominance asserts that metric values in the Superior cell beat the
// Inferior cell in every seed, by at least MinRelGainPct. All seeds win →
// Confirmed; no seed wins → Refuted; a split → Inconclusive.
type Dominance struct {
	// Metric is the compared value's name.
	Metric string
	// Superior is claimed to beat Inferior.
	Superior, Inferior string
	// LowerIsBetter orients the comparison (true for latency metrics).
	LowerIsBetter bool
	// MinRelGainPct is the required relative improvement in percent; a win
	// smaller than this does not count (0 = any improvement counts).
	MinRelGainPct float64
}

// Kind implements Check.
func (d Dominance) Kind() string { return "dominance" }

// Claim implements Check.
func (d Dominance) Claim() string {
	dir := "higher"
	if d.LowerIsBetter {
		dir = "lower"
	}
	s := fmt.Sprintf("%s is %s in %q than in %q across all seeds", d.Metric, dir, d.Superior, d.Inferior)
	if d.MinRelGainPct > 0 {
		s += fmt.Sprintf(" (by ≥ %s%%)", trimFloat(d.MinRelGainPct))
	}
	return s
}

// Evaluate implements Check.
func (d Dominance) Evaluate(ev *Evidence) (Outcome, error) {
	sup, inf := ev.Cell(d.Superior), ev.Cell(d.Inferior)
	if sup == nil || inf == nil {
		return Outcome{}, fmt.Errorf("hypotheses: dominance cells %q/%q not in evidence", d.Superior, d.Inferior)
	}
	supXs, infXs := sup.Values(d.Metric), inf.Values(d.Metric)
	wins := 0
	out := Outcome{}
	for i, seed := range ev.Seeds {
		s, n := supXs[i], infXs[i]
		// Relative gain of the superior cell, oriented so positive = win.
		var gainPct float64
		if d.LowerIsBetter {
			if n != 0 {
				gainPct = 100 * (n - s) / n
			}
		} else {
			if n != 0 {
				gainPct = 100 * (s - n) / n
			}
		}
		won := gainPct > d.MinRelGainPct
		if won {
			wins++
		}
		mark := "win"
		if !won {
			mark = "loss"
		}
		out.PerSeed = append(out.PerSeed, fmt.Sprintf(
			"seed %d: %s %s=%s vs %s=%s (gain %s%%) — %s",
			seed, d.Metric, d.Superior, trimFloat(s), d.Inferior, trimFloat(n),
			trimFloat(gainPct), mark))
	}
	supE, infE := sup.Estimate(d.Metric), inf.Estimate(d.Metric)
	switch {
	case wins == len(ev.Seeds):
		out.Verdict = Confirmed
		out.Summary = fmt.Sprintf("%q beats %q on %s in %d/%d seeds (mean %s vs %s)",
			d.Superior, d.Inferior, d.Metric, wins, len(ev.Seeds),
			trimFloat(supE.Mean), trimFloat(infE.Mean))
	case wins == 0:
		out.Verdict = Refuted
		out.Summary = fmt.Sprintf("%q never beats %q on %s (0/%d seeds; mean %s vs %s)",
			d.Superior, d.Inferior, d.Metric, len(ev.Seeds),
			trimFloat(supE.Mean), trimFloat(infE.Mean))
	default:
		out.Verdict = Inconclusive
		out.Summary = fmt.Sprintf("%q beats %q on %s in only %d/%d seeds",
			d.Superior, d.Inferior, d.Metric, wins, len(ev.Seeds))
	}
	return out, nil
}

// --- Threshold ---------------------------------------------------------------

// Threshold asserts that a metric crosses a bound along the cell axis (in
// spec order): in every seed the first cell sits below Bound and the last
// at or above it. All seeds cross → Confirmed; every seed stays entirely
// on one side → Refuted; anything else → Inconclusive.
type Threshold struct {
	// Metric is the tracked value's name.
	Metric string
	// Bound is the crossing level.
	Bound float64
}

// Kind implements Check.
func (t Threshold) Kind() string { return "threshold" }

// Claim implements Check.
func (t Threshold) Claim() string {
	return fmt.Sprintf("%s crosses %s along the varied axis (below at the first cell, at/above at the last)",
		t.Metric, trimFloat(t.Bound))
}

// Evaluate implements Check.
func (t Threshold) Evaluate(ev *Evidence) (Outcome, error) {
	if len(ev.Cells) < 2 {
		return Outcome{}, fmt.Errorf("hypotheses: threshold needs ≥2 cells")
	}
	out := Outcome{}
	crossed, allBelow, allAbove := 0, 0, 0
	for i, seed := range ev.Seeds {
		below, above := 0, 0
		firstAt := ""
		vals := make([]string, 0, len(ev.Cells))
		for c := range ev.Cells {
			v := ev.Cells[c].PerSeed[i].Values[t.Metric]
			vals = append(vals, fmt.Sprintf("%s=%s", ev.Cells[c].Name, trimFloat(v)))
			if v >= t.Bound {
				above++
				if firstAt == "" {
					firstAt = ev.Cells[c].Name
				}
			} else {
				below++
			}
		}
		first := ev.Cells[0].PerSeed[i].Values[t.Metric]
		last := ev.Cells[len(ev.Cells)-1].PerSeed[i].Values[t.Metric]
		state := "no crossing"
		switch {
		case first < t.Bound && last >= t.Bound:
			crossed++
			state = "crosses at " + firstAt
		case above == 0:
			allBelow++
			state = "entirely below"
		case below == 0:
			allAbove++
			state = "entirely at/above"
		}
		out.PerSeed = append(out.PerSeed, fmt.Sprintf(
			"seed %d: %s — %s", seed, joinComma(vals), state))
	}
	n := len(ev.Seeds)
	switch {
	case crossed == n:
		out.Verdict = Confirmed
		out.Summary = fmt.Sprintf("%s crosses %s along the axis in %d/%d seeds",
			t.Metric, trimFloat(t.Bound), crossed, n)
	case allBelow == n:
		out.Verdict = Refuted
		out.Summary = fmt.Sprintf("%s never reaches %s in any cell of any seed",
			t.Metric, trimFloat(t.Bound))
	case allAbove == n:
		out.Verdict = Refuted
		out.Summary = fmt.Sprintf("%s is at/above %s already in the first cell of every seed",
			t.Metric, trimFloat(t.Bound))
	default:
		out.Verdict = Inconclusive
		out.Summary = fmt.Sprintf("%s crosses %s in only %d/%d seeds",
			t.Metric, trimFloat(t.Bound), crossed, n)
	}
	return out, nil
}

// --- Invariant ---------------------------------------------------------------

// Invariant asserts that a metric stays inside [Min, Max] in every cell
// and every seed — e.g. job conservation (gap exactly 0) or a rejection
// rate staying under a bound. Any violation → Refuted, otherwise
// Confirmed; Invariant never answers Inconclusive.
type Invariant struct {
	// Metric is the constrained value's name.
	Metric string
	// Min and Max bound the allowed range, inclusive.
	Min, Max float64
	// Cells restricts the check to the named cells; empty means all.
	Cells []string
}

// Kind implements Check.
func (v Invariant) Kind() string { return "invariant" }

// Claim implements Check.
func (v Invariant) Claim() string {
	where := "every cell"
	if len(v.Cells) > 0 {
		where = fmt.Sprintf("cells %v", v.Cells)
	}
	return fmt.Sprintf("%s stays within [%s, %s] in %s, every seed",
		v.Metric, trimFloat(v.Min), trimFloat(v.Max), where)
}

// Evaluate implements Check.
func (v Invariant) Evaluate(ev *Evidence) (Outcome, error) {
	selected := ev.Cells
	if len(v.Cells) > 0 {
		selected = nil
		for _, name := range v.Cells {
			ce := ev.Cell(name)
			if ce == nil {
				return Outcome{}, fmt.Errorf("hypotheses: invariant cell %q not in evidence", name)
			}
			selected = append(selected, *ce)
		}
	}
	out := Outcome{}
	violations := 0
	for i, seed := range ev.Seeds {
		vals := make([]string, 0, len(selected))
		bad := ""
		for c := range selected {
			x := selected[c].PerSeed[i].Values[v.Metric]
			vals = append(vals, fmt.Sprintf("%s=%s", selected[c].Name, trimFloat(x)))
			if x < v.Min || x > v.Max {
				violations++
				if bad == "" {
					bad = selected[c].Name
				}
			}
		}
		state := "holds"
		if bad != "" {
			state = "VIOLATED at " + bad
		}
		out.PerSeed = append(out.PerSeed, fmt.Sprintf(
			"seed %d: %s — %s", seed, joinComma(vals), state))
	}
	if violations == 0 {
		out.Verdict = Confirmed
		out.Summary = fmt.Sprintf("%s within [%s, %s] across all cells and seeds",
			v.Metric, trimFloat(v.Min), trimFloat(v.Max))
	} else {
		out.Verdict = Refuted
		out.Summary = fmt.Sprintf("%s leaves [%s, %s] in %d cell-seed pairs",
			v.Metric, trimFloat(v.Min), trimFloat(v.Max), violations)
	}
	return out, nil
}

func joinComma(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += ", "
		}
		s += p
	}
	return s
}
