package hypotheses

import (
	"fmt"
	"math"

	"dias/internal/experiments"
	"dias/internal/metrics"
)

// H6: the conservative parallel kernel is a pure wall-clock optimization —
// every simulated quantity it produces is exactly the serial kernel's,
// not statistically close to it. Each cell runs the 8-cluster reference
// federation twice under the same seed, serial then at the cell's
// sim-worker count, and reports the absolute metric deltas, which the
// invariant checks pin to exactly zero (no tolerance). Wall-clock speedup
// is deliberately absent from the evidence: FINDINGS.md is byte-compared
// in CI, so machine-dependent numbers may only be discussed in prose.
func H6() Spec {
	const members = 8
	const util = 0.7
	workerAxis := []int{2, 8}
	cells := make([]Cell, len(workerAxis))
	for i, sw := range workerAxis {
		sw := sw
		cells[i] = Cell{
			Name: fmt.Sprintf("simworkers-%d", sw),
			Detail: fmt.Sprintf("%d homogeneous members at %.0f%% load, JSQ; paired serial and %d-worker parallel runs, same seed and workload",
				members, 100*util, sw),
			Run: func(seed int64, jobs int) (CellResult, error) {
				w, err := experiments.NewReferenceWorkload(seed)
				if err != nil {
					return CellResult{}, err
				}
				run := func(simWorkers int) (metrics.ScenarioResult, error) {
					return w.RunFederationCell(experiments.FederationCell{
						Name:        fmt.Sprintf("simworkers-%d", sw),
						Jobs:        jobs,
						Members:     members,
						Utilization: util,
						Routing:     mustRouting("jsq"),
						SimWorkers:  simWorkers,
					})
				}
				serial, err := run(1)
				if err != nil {
					return CellResult{}, err
				}
				par, err := run(sw)
				if err != nil {
					return CellResult{}, err
				}
				meanLow := func(r metrics.ScenarioResult) float64 {
					if len(r.PerClass) > 0 {
						return r.PerClass[0].MeanResponseSec
					}
					return 0
				}
				return CellResult{
					Scenario: par,
					Values: map[string]float64{
						"makespan-sec":        par.MakespanSec,
						"mean-low-sec":        meanLow(par),
						"makespan-delta-sec":  math.Abs(par.MakespanSec - serial.MakespanSec),
						"mean-low-delta-sec":  math.Abs(meanLow(par) - meanLow(serial)),
						"energy-delta-j":      math.Abs(par.EnergyJoules - serial.EnergyJoules),
						"peak-inflight-delta": math.Abs(float64(par.PeakInFlightJobs - serial.PeakInFlightJobs)),
					},
				}, nil
			},
		}
	}
	return Spec{
		ID:     "h6-parallel-kernel-invariance",
		Title:  "The parallel kernel changes wall-clock only, never results",
		Family: "federation",
		Claim: "Running a federation on the conservative parallel kernel (per-member event-loop " +
			"goroutines under WAN-derived lookahead windows) reproduces the serial kernel's " +
			"simulated metrics exactly — makespan, per-class latency, energy and peak in-flight " +
			"deltas are all identically zero, at any sim-worker count, under every seed.",
		Varied: "sim-worker count of the paired parallel run (2 → 8); the serial oracle run is identical in every cell",
		Controlled: []string{
			"8 homogeneous default member clusters, DiAS per-member policy (DA(0,20) + sprinting)",
			"two-class reference text workload at 70% per-cluster nominal load, JSQ routing",
			"paired runs: serial and parallel execute the same seed, workload and arrival stream",
			"cross-cluster data model armed (finite WAN-transfer lookahead, not the infinite fallback)",
		},
		Seeds: []int64{11, 12, 13},
		Jobs:  240,
		Metrics: []Metric{
			{Name: "makespan-sec", Unit: "s", Desc: "parallel-run makespan (context for the deltas)"},
			{Name: "mean-low-sec", Unit: "s", Desc: "parallel-run low-class mean response (context)"},
			{Name: "makespan-delta-sec", Unit: "s", Desc: "|parallel − serial| makespan; exactly 0 = bit-equal clocks"},
			{Name: "mean-low-delta-sec", Unit: "s", Desc: "|parallel − serial| low-class mean response"},
			{Name: "energy-delta-j", Unit: "J", Desc: "|parallel − serial| total cluster energy"},
			{Name: "peak-inflight-delta", Unit: "jobs", Desc: "|parallel − serial| peak in-flight jobs"},
		},
		Cells: cells,
		Primary: []Check{
			Invariant{Metric: "makespan-delta-sec", Min: 0, Max: 0},
			Invariant{Metric: "mean-low-delta-sec", Min: 0, Max: 0},
			Invariant{Metric: "energy-delta-j", Min: 0, Max: 0},
			Invariant{Metric: "peak-inflight-delta", Min: 0, Max: 0},
		},
		Notes: "The zero bounds are exact float equality, not a tolerance band: the kernel's " +
			"contract is bit-identical results, and any scheduling-order leak would show up as a " +
			"last-digit float difference long before it moved a mean. Speedup is the half of the " +
			"claim this finding deliberately does not measure — wall-clock is machine-dependent " +
			"and these findings are byte-compared in CI. It is reported instead as the " +
			"trending-only parallel_speedup column of BENCH_results.json (the parallel-kernel " +
			"figure) and by BenchmarkFederationParallelKernel; on a single-core host the ratio " +
			"sits at ~1x, and the ≥3x acceptance target applies to 4+ core machines.",
	}
}
