// Package hypotheses is the methodology layer on top of the experiment
// runner: a hypothesis declares a behavioral claim about the middleware,
// exactly one varied dimension realized as two or more cell
// configurations, a multi-seed run grid, and typed checks that turn the
// measured evidence into a verdict — Confirmed, Confirmed with nuance,
// Refuted, or Inconclusive — with per-seed evidence attached.
//
// The point is falsifiability as a regression surface: each hypothesis
// renders a deterministic FINDINGS.md (no timestamps, no environment),
// committed under hypotheses/, and the dias-hypotheses command's -check
// mode re-runs the grid and diffs the committed files byte for byte. A
// policy change that silently flips a verdict fails CI the same way a
// broken test does.
//
// Cells execute through runner.Map (deterministic order, worker-count
// invariant) and aggregate through runner.Summarize / runner.EstimateOf,
// so the evidence carries mean ± 95% CI across seeds next to the raw
// per-seed values the checks judge.
package hypotheses

import (
	"fmt"

	"dias/internal/metrics"
	"dias/internal/runner"
)

// Verdict is a hypothesis or check resolution.
type Verdict string

const (
	// Confirmed: every primary check held across all seeds.
	Confirmed Verdict = "Confirmed"
	// ConfirmedWithNuance: the primary claim held, but a nuance check
	// failed — the headline effect is real and the declared mechanism or
	// side condition is not what the claim assumed.
	ConfirmedWithNuance Verdict = "Confirmed with nuance"
	// Refuted: a primary check failed in the direction opposite the claim.
	Refuted Verdict = "Refuted"
	// Inconclusive: the evidence is split across seeds or cells; neither
	// confirmation nor refutation is honest.
	Inconclusive Verdict = "Inconclusive"
)

// Metric documents one named value a hypothesis's cells report. Names key
// CellResult.Values and are what checks reference.
type Metric struct {
	Name string
	Unit string
	Desc string
}

// CellResult is one cell's outcome under one seed: the scenario-level
// aggregates plus the hypothesis's derived named values.
type CellResult struct {
	Scenario metrics.ScenarioResult
	Values   map[string]float64
}

// Cell is one point of the varied dimension. Run executes the cell under
// one seed; it must be deterministic in (seed, jobs) and set no global
// state, because cells fan out across runner workers.
type Cell struct {
	// Name identifies the cell in checks and rendered tables.
	Name string
	// Detail is the one-line description of what this cell configures.
	Detail string
	// Run executes the cell.
	Run func(seed int64, jobs int) (CellResult, error)
}

// Spec declares one hypothesis: the claim, the controlled experiment that
// probes it, and the checks that judge the evidence.
type Spec struct {
	// ID is the stable directory-name slug (e.g. "h1-jsq-vs-random").
	ID string
	// Title is the short human headline.
	Title string
	// Claim is the falsifiable statement under test.
	Claim string
	// Family names the subsystem exercised (federation, admission, faults).
	Family string
	// Varied names the single dimension the cells vary; Controlled lists
	// what is deliberately held fixed.
	Varied     string
	Controlled []string
	// Seeds is the replicate grid; every cell runs under every seed.
	Seeds []int64
	// Jobs is the arrival count per simulation run — sized so the full
	// grid is CI-cheap.
	Jobs int
	// Metrics documents the derived values cells report.
	Metrics []Metric
	// Cells realize the varied dimension, in presentation order.
	Cells []Cell
	// Primary checks judge the claim itself; Nuance checks probe the
	// claimed mechanism or side conditions. A failed nuance check demotes
	// Confirmed to ConfirmedWithNuance instead of refuting.
	Primary []Check
	Nuance  []Check
	// Notes is free-form context rendered at the end of FINDINGS.md.
	Notes string
}

// Validate rejects specs that cannot produce a well-formed finding.
func (s *Spec) Validate() error {
	if s.ID == "" || s.Claim == "" {
		return fmt.Errorf("hypotheses: spec %q missing id or claim", s.ID)
	}
	if len(s.Cells) < 2 {
		return fmt.Errorf("hypotheses: %s: %d cells; a controlled comparison needs at least 2", s.ID, len(s.Cells))
	}
	if s.Varied == "" {
		return fmt.Errorf("hypotheses: %s declares no varied dimension", s.ID)
	}
	if len(s.Seeds) == 0 {
		return fmt.Errorf("hypotheses: %s has no seeds", s.ID)
	}
	if s.Jobs < 10 {
		return fmt.Errorf("hypotheses: %s: %d jobs is too few", s.ID, s.Jobs)
	}
	if len(s.Primary) == 0 {
		return fmt.Errorf("hypotheses: %s has no primary check", s.ID)
	}
	seen := map[string]bool{}
	for _, c := range s.Cells {
		if c.Name == "" || c.Run == nil {
			return fmt.Errorf("hypotheses: %s has a cell without name or run", s.ID)
		}
		if seen[c.Name] {
			return fmt.Errorf("hypotheses: %s: duplicate cell %q", s.ID, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// CellEvidence is one cell's measured evidence across all seeds.
type CellEvidence struct {
	Name    string
	Detail  string
	PerSeed []CellResult // index-aligned with Evidence.Seeds
	// Summary aggregates the per-seed scenario results (runner.Summarize).
	Summary runner.Summary
}

// Values returns the cell's per-seed series for one named metric.
func (ce *CellEvidence) Values(metric string) []float64 {
	out := make([]float64, len(ce.PerSeed))
	for i, r := range ce.PerSeed {
		out[i] = r.Values[metric]
	}
	return out
}

// Estimate aggregates the per-seed series of one metric (mean ± CI95).
func (ce *CellEvidence) Estimate(metric string) runner.Estimate {
	return runner.EstimateOf(ce.Values(metric))
}

// Evidence is the full measured grid of one hypothesis run, in spec cell
// order.
type Evidence struct {
	Seeds []int64
	Cells []CellEvidence
}

// Cell returns the named cell's evidence, or nil when absent.
func (ev *Evidence) Cell(name string) *CellEvidence {
	for i := range ev.Cells {
		if ev.Cells[i].Name == name {
			return &ev.Cells[i]
		}
	}
	return nil
}
