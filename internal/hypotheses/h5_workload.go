package hypotheses

import (
	"fmt"

	"dias"
	"dias/internal/experiments"
	"dias/internal/workload"
)

// H5: burstiness hurts tails no matter how arrivals are routed. A Gamma
// renewal process at CV 3.5 delivers the same long-run rate as Poisson
// but packs arrivals into clumps; during a clump every member queues at
// once, so no routing policy can spread the backlog away. The paper's
// trace analyses (§2.1) motivate exactly this: real cluster arrivals are
// far burstier than Poisson, and evaluations that assume memoryless
// arrivals overstate achievable tails.
func H5() Spec {
	const (
		members = 4
		util    = 0.70
		cv      = 3.5
	)
	policies := dias.RoutingPolicies().Names()
	cells := make([]Cell, len(policies))
	for i, name := range policies {
		name := name
		cells[i] = Cell{
			Name: name,
			Detail: fmt.Sprintf("%d homogeneous members at %.0f%% nominal load routed by %q; paired gamma(CV=%.1f) and Poisson runs, same seed and workload",
				members, 100*util, name, cv),
			Run: func(seed int64, jobs int) (CellResult, error) {
				w, err := experiments.NewReferenceWorkload(seed)
				if err != nil {
					return CellResult{}, err
				}
				run := func(label string, arrivals func([]float64) (workload.Process, error)) (metricsP99 float64, peak int, res CellResult, err error) {
					r, err := w.RunFederationCell(experiments.FederationCell{
						Name:        name + "-" + label,
						Jobs:        jobs,
						Members:     members,
						Utilization: util,
						Routing:     mustRouting(name),
						Arrivals:    arrivals,
					})
					if err != nil {
						return 0, 0, CellResult{}, err
					}
					return r.PerClass[0].P99ResponseSec, r.PeakInFlightJobs, CellResult{Scenario: r}, nil
				}
				gammaP99, gammaPeak, gammaRes, err := run("gamma", func(rates []float64) (workload.Process, error) {
					return workload.NewGamma(rates, cv)
				})
				if err != nil {
					return CellResult{}, err
				}
				poissonP99, poissonPeak, _, err := run("poisson", nil)
				if err != nil {
					return CellResult{}, err
				}
				penalty := 0.0
				if poissonP99 > 0 {
					penalty = 100 * (gammaP99 - poissonP99) / poissonP99
				}
				peakRatio := 0.0
				if poissonPeak > 0 {
					peakRatio = float64(gammaPeak) / float64(poissonPeak)
				}
				gammaRes.Values = map[string]float64{
					"p99-low-gamma":     gammaP99,
					"p99-low-poisson":   poissonP99,
					"burst-penalty-pct": penalty,
					"peak-ratio":        peakRatio,
				}
				return gammaRes, nil
			},
		}
	}
	return Spec{
		ID:     "h5-bursty-arrivals-p99",
		Title:  "Bursty arrivals degrade P99 under every routing policy",
		Family: "workload",
		Claim: "At equal mean rate, gamma-renewal arrivals with CV 3.5 degrade low-class P99 " +
			"response by a meaningful margin (≥5%) over Poisson arrivals under every routing " +
			"policy in the registry — burstiness is not a problem routing can solve.",
		Varied: "routing policy (one cell per registry entry); within each cell a paired arrival-process swap (gamma CV 3.5 vs Poisson) at identical mean rates",
		Controlled: []string{
			fmt.Sprintf("%d homogeneous default member clusters at %.0f%% per-cluster nominal load", members, 100*util),
			"two-class reference text workload, 9:1 low:high mix, data homes round-robin",
			"paired runs: gamma and Poisson see the same seed, calibrated rates and job templates",
			"DiAS per-member policy (DA(0,20) + sprinting) in every run",
		},
		Seeds: []int64{42, 123, 456},
		Jobs:  160,
		Metrics: []Metric{
			{Name: "p99-low-gamma", Unit: "s", Desc: "low-class P99 response under gamma CV-3.5 arrivals"},
			{Name: "p99-low-poisson", Unit: "s", Desc: "low-class P99 response under Poisson arrivals"},
			{Name: "burst-penalty-pct", Unit: "%", Desc: "relative P99 degradation of gamma over Poisson (positive = burstiness hurts)"},
			{Name: "peak-ratio", Unit: "x", Desc: "peak in-flight jobs under gamma divided by peak under Poisson"},
		},
		Cells: cells,
		Primary: []Check{
			Invariant{Metric: "burst-penalty-pct", Min: 5, Max: 100000},
		},
		Nuance: []Check{
			// The claimed mechanism: clumped arrivals pile up in-flight work
			// faster than any dispatcher can drain it, so the gamma run's
			// high-water backlog should exceed the Poisson run's everywhere.
			Invariant{Metric: "peak-ratio", Min: 1, Max: 1000},
		},
		Notes: "The cell aggregates table reports the gamma run of each pair (the paired Poisson " +
			"run appears in the p99-low-poisson evidence row). Grounded in the trace analyses the " +
			"paper builds on: production arrival streams show CV well above 1 at hour scale, so a " +
			"Poisson-only evaluation understates tail latency regardless of routing choice.",
	}
}
