package hypotheses

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"dias/internal/metrics"
)

// evidenceFrom builds a synthetic Evidence grid: values[cell][metric][seedIdx].
func evidenceFrom(seeds []int64, cells []string, values map[string]map[string][]float64) *Evidence {
	ev := &Evidence{Seeds: seeds}
	for _, name := range cells {
		ce := CellEvidence{Name: name}
		for i := range seeds {
			vals := map[string]float64{}
			for metric, series := range values[name] {
				vals[metric] = series[i]
			}
			ce.PerSeed = append(ce.PerSeed, CellResult{Values: vals})
		}
		ev.Cells = append(ev.Cells, ce)
	}
	return ev
}

func TestDominanceVerdicts(t *testing.T) {
	seeds := []int64{1, 2, 3}
	cases := []struct {
		name  string
		check Dominance
		a, b  []float64 // fast, slow per seed
		want  Verdict
	}{
		{
			name:  "all seeds win",
			check: Dominance{Metric: "lat", Superior: "fast", Inferior: "slow", LowerIsBetter: true},
			a:     []float64{10, 11, 12}, b: []float64{20, 21, 22},
			want: Confirmed,
		},
		{
			name:  "no seed wins",
			check: Dominance{Metric: "lat", Superior: "fast", Inferior: "slow", LowerIsBetter: true},
			a:     []float64{30, 31, 32}, b: []float64{20, 21, 22},
			want: Refuted,
		},
		{
			name:  "split is inconclusive",
			check: Dominance{Metric: "lat", Superior: "fast", Inferior: "slow", LowerIsBetter: true},
			a:     []float64{10, 31, 12}, b: []float64{20, 21, 22},
			want: Inconclusive,
		},
		{
			name: "win below MinRelGainPct does not count",
			check: Dominance{Metric: "lat", Superior: "fast", Inferior: "slow",
				LowerIsBetter: true, MinRelGainPct: 10},
			a: []float64{19.5, 19.5, 19.5}, b: []float64{20, 20, 20},
			want: Refuted,
		},
		{
			name:  "higher is better orientation",
			check: Dominance{Metric: "goodput", Superior: "fast", Inferior: "slow"},
			a:     []float64{5, 5, 5}, b: []float64{4, 4, 4},
			want: Confirmed,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			metric := tc.check.Metric
			ev := evidenceFrom(seeds, []string{"fast", "slow"}, map[string]map[string][]float64{
				"fast": {metric: tc.a},
				"slow": {metric: tc.b},
			})
			out, err := tc.check.Evaluate(ev)
			if err != nil {
				t.Fatal(err)
			}
			if out.Verdict != tc.want {
				t.Fatalf("verdict = %s, want %s (summary: %s)", out.Verdict, tc.want, out.Summary)
			}
			if len(out.PerSeed) != len(seeds) {
				t.Fatalf("PerSeed lines = %d, want %d", len(out.PerSeed), len(seeds))
			}
		})
	}
}

func TestDominanceUnknownCell(t *testing.T) {
	ev := evidenceFrom([]int64{1}, []string{"a"}, map[string]map[string][]float64{
		"a": {"m": {1}},
	})
	if _, err := (Dominance{Metric: "m", Superior: "a", Inferior: "nope"}).Evaluate(ev); err == nil {
		t.Fatal("expected error for unknown inferior cell")
	}
}

func TestThresholdVerdicts(t *testing.T) {
	seeds := []int64{1, 2}
	cells := []string{"low", "mid", "high"}
	cases := []struct {
		name   string
		series map[string][]float64 // per cell, per seed
		want   Verdict
	}{
		{
			name: "crosses in all seeds",
			series: map[string][]float64{
				"low": {2, 3}, "mid": {8, 12}, "high": {15, 18},
			},
			want: Confirmed,
		},
		{
			name: "never reaches the bound",
			series: map[string][]float64{
				"low": {1, 2}, "mid": {3, 4}, "high": {5, 6},
			},
			want: Refuted,
		},
		{
			name: "already above everywhere",
			series: map[string][]float64{
				"low": {11, 12}, "mid": {13, 14}, "high": {15, 16},
			},
			want: Refuted,
		},
		{
			name: "split across seeds",
			series: map[string][]float64{
				"low": {2, 2}, "mid": {8, 8}, "high": {15, 6},
			},
			want: Inconclusive,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			values := map[string]map[string][]float64{}
			for cell, series := range tc.series {
				values[cell] = map[string][]float64{"gain": series}
			}
			ev := evidenceFrom(seeds, cells, values)
			out, err := (Threshold{Metric: "gain", Bound: 10}).Evaluate(ev)
			if err != nil {
				t.Fatal(err)
			}
			if out.Verdict != tc.want {
				t.Fatalf("verdict = %s, want %s (summary: %s)", out.Verdict, tc.want, out.Summary)
			}
		})
	}
}

func TestInvariantVerdicts(t *testing.T) {
	seeds := []int64{1, 2}
	ev := evidenceFrom(seeds, []string{"a", "b"}, map[string]map[string][]float64{
		"a": {"gap": {0, 0}, "rej": {3, 4}},
		"b": {"gap": {0, 0}, "rej": {40, 50}},
	})
	out, err := (Invariant{Metric: "gap", Min: 0, Max: 0}).Evaluate(ev)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != Confirmed {
		t.Fatalf("gap invariant = %s, want Confirmed", out.Verdict)
	}
	// Restricted to cell b, the rejection bound must report the violation.
	out, err = (Invariant{Metric: "rej", Min: 0, Max: 5, Cells: []string{"b"}}).Evaluate(ev)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != Refuted {
		t.Fatalf("rej invariant = %s, want Refuted", out.Verdict)
	}
	// Restricted to cell a, the same bound holds.
	out, err = (Invariant{Metric: "rej", Min: 0, Max: 5, Cells: []string{"a"}}).Evaluate(ev)
	if err != nil {
		t.Fatal(err)
	}
	if out.Verdict != Confirmed {
		t.Fatalf("rej invariant on a = %s, want Confirmed", out.Verdict)
	}
	if _, err := (Invariant{Metric: "rej", Cells: []string{"nope"}}).Evaluate(ev); err == nil {
		t.Fatal("expected error for unknown invariant cell")
	}
}

func TestCombinePrecedence(t *testing.T) {
	pr := func(v Verdict) CheckResult { return CheckResult{Role: "primary", Outcome: Outcome{Verdict: v}} }
	nu := func(v Verdict) CheckResult { return CheckResult{Role: "nuance", Outcome: Outcome{Verdict: v}} }
	cases := []struct {
		name   string
		checks []CheckResult
		want   Verdict
	}{
		{"all confirmed", []CheckResult{pr(Confirmed), pr(Confirmed)}, Confirmed},
		{"nuance failure demotes", []CheckResult{pr(Confirmed), nu(Refuted)}, ConfirmedWithNuance},
		{"refuted beats inconclusive regardless of order",
			[]CheckResult{pr(Inconclusive), pr(Refuted), nu(Confirmed)}, Refuted},
		{"inconclusive beats nuance demotion",
			[]CheckResult{pr(Inconclusive), nu(Refuted)}, Inconclusive},
		{"refuted primary wins over clean nuance",
			[]CheckResult{pr(Refuted), nu(Confirmed)}, Refuted},
	}
	for _, tc := range cases {
		if got := combine(tc.checks); got != tc.want {
			t.Errorf("%s: combine = %s, want %s", tc.name, got, tc.want)
		}
	}
}

// syntheticSpec is a sim-free hypothesis whose cell values are pure
// functions of (cell, seed), for exercising Run's grid plumbing.
func syntheticSpec() Spec {
	mkCell := func(name string, base float64) Cell {
		return Cell{
			Name:   name,
			Detail: fmt.Sprintf("synthetic cell at base %g", base),
			Run: func(seed int64, jobs int) (CellResult, error) {
				lat := base + float64(seed%7)
				return CellResult{
					Scenario: metrics.ScenarioResult{
						Name: "driver-internal-name", // Run must override this
						PerClass: []metrics.ClassStats{{
							Jobs: jobs, MeanResponseSec: lat, P95ResponseSec: 2 * lat,
						}},
					},
					Values: map[string]float64{"lat": lat},
				}, nil
			},
		}
	}
	return Spec{
		ID:     "hx-synthetic",
		Title:  "Synthetic grid plumbing",
		Claim:  "cell fast beats cell slow on lat",
		Family: "test",
		Varied: "base latency",
		Seeds:  []int64{42, 123, 456},
		Jobs:   50,
		Metrics: []Metric{
			{Name: "lat", Unit: "s", Desc: "synthetic latency"},
		},
		Cells: []Cell{mkCell("fast", 10), mkCell("slow", 100)},
		Primary: []Check{
			Dominance{Metric: "lat", Superior: "fast", Inferior: "slow", LowerIsBetter: true},
		},
	}
}

func TestRunGridAndRenderDeterminism(t *testing.T) {
	spec := syntheticSpec()
	r1, err := Run(context.Background(), spec, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r4, err := Run(context.Background(), syntheticSpec(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Verdict != Confirmed {
		t.Fatalf("verdict = %s, want Confirmed", r1.Verdict)
	}
	// Evidence regrouping is positional: every cell must carry its own name
	// (not the driver's) and one result per seed.
	for _, ce := range r1.Evidence.Cells {
		if len(ce.PerSeed) != len(spec.Seeds) {
			t.Fatalf("cell %s: %d per-seed results, want %d", ce.Name, len(ce.PerSeed), len(spec.Seeds))
		}
		if ce.Summary.Name != ce.Name {
			t.Fatalf("cell %s: summary named %q", ce.Name, ce.Summary.Name)
		}
	}
	if got := r1.Evidence.Cell("slow").Values("lat"); got[0] != 100 {
		t.Fatalf("slow seed-42 lat = %g, want 100 (42%%7=0)", got[0])
	}
	// Rendered findings must be byte-identical across worker counts and
	// across repeated renders — the -check contract.
	a, b := Render(r1), Render(r4)
	if a != b {
		t.Fatal("rendered findings differ between worker counts")
	}
	if a != Render(r1) {
		t.Fatal("repeated Render of the same result differs")
	}
	for _, want := range []string{
		"# HX: Synthetic grid plumbing",
		"**Verdict: Confirmed**",
		"seed 42", "seed 123", "seed 456",
		"[primary/dominance]",
		"## Verdict",
	} {
		if !strings.Contains(a, want) {
			t.Errorf("rendered findings missing %q", want)
		}
	}
	idx := RenderIndex([]*Result{r1})
	if !strings.Contains(idx, "[hx](hx-synthetic/FINDINGS.md)") {
		t.Errorf("index missing hypothesis link:\n%s", idx)
	}
}

func TestRunRejectsInvalidSpecs(t *testing.T) {
	base := syntheticSpec()
	mutations := map[string]func(*Spec){
		"no cells":       func(s *Spec) { s.Cells = s.Cells[:1] },
		"no seeds":       func(s *Spec) { s.Seeds = nil },
		"no primary":     func(s *Spec) { s.Primary = nil },
		"no varied":      func(s *Spec) { s.Varied = "" },
		"too few jobs":   func(s *Spec) { s.Jobs = 5 },
		"duplicate cell": func(s *Spec) { s.Cells[1].Name = s.Cells[0].Name },
	}
	for name, mutate := range mutations {
		spec := syntheticSpec()
		mutate(&spec)
		if _, err := Run(context.Background(), spec, Options{Workers: 1}); err == nil {
			t.Errorf("%s: Run accepted an invalid spec", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("base spec should be valid: %v", err)
	}
}

func TestRunPropagatesCellErrors(t *testing.T) {
	spec := syntheticSpec()
	spec.Cells[1].Run = func(int64, int) (CellResult, error) {
		return CellResult{}, fmt.Errorf("boom")
	}
	_, err := Run(context.Background(), spec, Options{Workers: 2})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want cell failure", err)
	}
	if !strings.Contains(err.Error(), `cell "slow"`) {
		t.Fatalf("err = %v, want cell name in context", err)
	}
}
