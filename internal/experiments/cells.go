package experiments

// Cell API for the hypothesis harness (internal/hypotheses): one exported,
// deliberately narrow way to run the two-class reference workload through
// a single stack or a federation with exactly one knob turned. The figure
// drivers in this package compose whole grids; a hypothesis cell is one
// point of such a grid, built from the same profiled workload, calibration
// and seed discipline so findings stay comparable with the figures.

import (
	"fmt"

	"dias/internal/admission"
	"dias/internal/cluster"
	"dias/internal/engine"
	"dias/internal/faults"
	"dias/internal/federation"
	"dias/internal/metrics"
	"dias/internal/telemetry"
	"dias/internal/workload"
)

// ReferenceWorkload is the paper's two-class text workload, profiled and
// calibrated under one seed: job templates, solo durations, and the
// per-class arrival rates that load ONE default cluster at 100% of its
// capacity. Build one per seed (job corpora and profiling noise derive
// from it) and run any number of cells against it; scale CapacityRates by
// a load factor (and, for federations, the capacity factor) to set the
// offered load.
type ReferenceWorkload struct {
	Seed    int64
	LowJob  *engine.Job
	HighJob *engine.Job
	// LowSoloSec / HighSoloSec are the profiled mean solo durations the
	// calibration used.
	LowSoloSec, HighSoloSec float64
	// CapacityRates[k] is class k's arrival rate at 100% utilization of
	// one default cluster (9:1 low:high mix, as the paper's evaluation).
	CapacityRates []float64

	cost   engine.CostModel
	cluCfg cluster.Config
}

// NewReferenceWorkload builds and profiles the reference jobs under the
// given seed. Seed offsets are disjoint from every figure driver's, so a
// hypothesis run never aliases a figure's RNG streams.
func NewReferenceWorkload(seed int64) (*ReferenceWorkload, error) {
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	setup := referenceSetup()
	lowJob, err := textJob("low", seed+191, setup.lowPosts, setup.lowSize)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("high", seed+192, setup.highPosts, setup.highSize)
	if err != nil {
		return nil, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, cluCfg, 3, seed+193)
	if err != nil {
		return nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, seed+194)
	if err != nil {
		return nil, err
	}
	// The calibrator requires a target strictly inside (0,1); calibrate at
	// one half of capacity and double, which is exact (util is linear in
	// the total rate).
	halfRate, err := workload.CalibrateTotalRate(
		[]float64{mean(lowDur), mean(highDur)}, []float64{0.9, 0.1}, 0.5)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio(setup.ratio, 2*halfRate)
	if err != nil {
		return nil, err
	}
	return &ReferenceWorkload{
		Seed:          seed,
		LowJob:        lowJob,
		HighJob:       highJob,
		LowSoloSec:    mean(lowDur),
		HighSoloSec:   mean(highDur),
		CapacityRates: rates,
		cost:          cost,
		cluCfg:        cluCfg,
	}, nil
}

// Rates returns CapacityRates scaled to the given load factor (1.0 =
// saturating one default cluster).
func (w *ReferenceWorkload) Rates(loadFactor float64) []float64 {
	return scaleRates(w.CapacityRates, loadFactor)
}

// StackCell configures one single-cluster run of the reference workload.
// Exactly the fields a controlled experiment varies are exposed; the
// scheduling policy is always the full DiAS reference configuration so
// admission/fault cells differ from the figures in one dimension only.
type StackCell struct {
	// Name labels the resulting scenario (the hypothesis cell name).
	Name string
	// Jobs is the arrival count; WarmupFraction of completions is excluded
	// from statistics (0 means the standard 0.1).
	Jobs           int
	WarmupFraction float64
	// LoadFactor is the offered load as a fraction of one cluster's
	// capacity (1.0 = saturation, 3.0 = 3x overload).
	LoadFactor float64
	// Admission, when non-nil, builds a fresh admission policy for the run
	// (policies are stateful — one instance per run).
	Admission func() admission.Policy
	// Faults, when non-nil, arms the fault-injection layer.
	Faults *faults.Config
	// Telemetry, when non-nil, traces the cell into a collector named
	// after the cell (observational only; results are unchanged).
	Telemetry *telemetry.Registry
}

// RunStackCell executes one single-cluster cell to completion.
func (w *ReferenceWorkload) RunStackCell(c StackCell) (metrics.ScenarioResult, error) {
	if c.LoadFactor <= 0 {
		return metrics.ScenarioResult{}, fmt.Errorf("experiments: cell %q load factor %g", c.Name, c.LoadFactor)
	}
	warm := c.WarmupFraction
	if warm == 0 {
		warm = 0.1
	}
	sc := scenario{
		name:      c.Name,
		policy:    federationPolicy(), // full DiAS: DA(0,20) + sprinting
		rates:     w.Rates(c.LoadFactor),
		jobs:      []*engine.Job{w.LowJob, w.HighJob},
		cost:      w.cost,
		cluster:   w.cluCfg,
		scale:     Scale{Jobs: c.Jobs, WarmupFraction: warm, Seed: w.Seed, Telemetry: c.Telemetry},
		faultPlan: c.Faults,
		admit:     c.Admission,
	}
	return sc.run()
}

// FederationCell configures one federation run of the reference workload:
// homogeneous default members, the DiAS per-member policy, data homes
// spread round-robin — the scale-out figure's setup with the routing
// policy and utilization as the only knobs.
type FederationCell struct {
	// Name labels the resulting scenario (the hypothesis cell name).
	Name string
	// Jobs and WarmupFraction as in StackCell.
	Jobs           int
	WarmupFraction float64
	// Members is the homogeneous member-cluster count.
	Members int
	// Utilization is the per-cluster nominal load (the federation's rate
	// is Utilization x Members x one cluster's capacity).
	Utilization float64
	// Routing builds a fresh routing policy per run; the seed passed in is
	// the run's derived routing seed (stateful policies, own RNG streams).
	Routing func(seed int64) federation.RoutingPolicy
	// Arrivals, when non-nil, builds the run's arrival process from the
	// calibrated per-class rates — the burstiness knob (e.g.
	// workload.NewGamma at CV 3.5, workload.NewMMPP). Nil means the
	// Poisson mix at the same rates, so a cell pair varying only this
	// field compares burstiness at equal mean load.
	Arrivals func(rates []float64) (workload.Process, error)
	// Telemetry, when non-nil, traces the cell into a collector named
	// after the cell (observational only; results are unchanged).
	Telemetry *telemetry.Registry
	// SimWorkers > 1 runs the cell on the conservative parallel kernel
	// (federation.Config.SimWorkers); results are byte-identical at any
	// setting, only wall-clock changes.
	SimWorkers int
}

// RunFederationCell executes one federation cell to completion and returns
// the federation-wide rollup.
func (w *ReferenceWorkload) RunFederationCell(c FederationCell) (metrics.ScenarioResult, error) {
	if c.Members < 1 {
		return metrics.ScenarioResult{}, fmt.Errorf("experiments: cell %q needs members", c.Name)
	}
	if c.Utilization <= 0 {
		return metrics.ScenarioResult{}, fmt.Errorf("experiments: cell %q utilization %g", c.Name, c.Utilization)
	}
	if c.Routing == nil {
		return metrics.ScenarioResult{}, fmt.Errorf("experiments: cell %q has no routing policy", c.Name)
	}
	warm := c.WarmupFraction
	if warm == 0 {
		warm = 0.1
	}
	members := homogeneousMembers(c.Members)
	sc := fedScenario{
		name:    c.Name,
		members: members,
		policy:  fedPolicyFactory{name: c.Name, make: c.Routing},
		rates:   w.Rates(capacityFactor(members) * c.Utilization),
		variants: variantSource{
			fedVariants(w.LowJob, c.Members),
			fedVariants(w.HighJob, c.Members),
		},
		scale:    Scale{Jobs: c.Jobs, WarmupFraction: warm, Seed: w.Seed, Telemetry: c.Telemetry, SimWorkers: c.SimWorkers},
		arrivals: c.Arrivals,
	}
	res, err := sc.run()
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	return res.Overall, nil
}
