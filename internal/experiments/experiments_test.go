package experiments

import (
	"strings"
	"testing"
)

// testScale keeps integration tests quick while still exercising queueing
// dynamics. Shape assertions are tolerant: they check signs and ordering,
// not magnitudes. Under -short the arrival count drops further so the CI
// fast lane finishes in seconds.
func testScale() Scale {
	s := Scale{Jobs: 120, WarmupFraction: 0.1, Seed: 3}
	if testing.Short() {
		s.Jobs = 60
	}
	return s
}

func TestScaleValidation(t *testing.T) {
	if err := (Scale{Jobs: 1}).validate(); err == nil {
		t.Fatal("tiny scale accepted")
	}
	if err := (Scale{Jobs: 100, WarmupFraction: 1}).validate(); err == nil {
		t.Fatal("warmup=1 accepted")
	}
	if err := QuickScale().validate(); err != nil {
		t.Fatal(err)
	}
	if err := FullScale().validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFigure4ModelTracksObserved(t *testing.T) {
	res, err := Figure4(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 { // 2 datasets x 5 drop ratios
		t.Fatalf("%d rows", len(res.Rows))
	}
	for ds, e := range res.MeanErrPct {
		if e > 25 {
			t.Fatalf("dataset %s mean model error %.1f%% too high\n%s", ds, e, res)
		}
	}
	// Processing time must decrease with theta for each dataset.
	byDS := map[string][]Figure4Row{}
	for _, r := range res.Rows {
		byDS[r.Dataset] = append(byDS[r.Dataset], r)
	}
	for ds, rows := range byDS {
		if rows[0].ObservedSec <= rows[len(rows)-1].ObservedSec {
			t.Fatalf("dataset %s: observed time did not shrink with dropping\n%s", ds, res)
		}
		if rows[0].PredictedSec <= rows[len(rows)-1].PredictedSec {
			t.Fatalf("dataset %s: predicted time did not shrink with dropping\n%s", ds, res)
		}
	}
	if !strings.Contains(res.String(), "Figure 4") {
		t.Fatal("String() missing title")
	}
}

func TestFigure5ModelFollowsResponseTimes(t *testing.T) {
	if testing.Short() {
		t.Skip("queueing run")
	}
	res, err := Figure5(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// The paper reports 18.7% mean error; small runs are noisier. Assert
	// the model stays in a sane band and follows the downward trend for
	// the low class.
	if res.MeanErrPct > 60 {
		t.Fatalf("mean error %.1f%% too high\n%s", res.MeanErrPct, res)
	}
	var lowObs, lowPred []float64
	for _, r := range res.Rows {
		if r.Class == "low" {
			lowObs = append(lowObs, r.ObservedSec)
			lowPred = append(lowPred, r.PredictedSec)
		}
	}
	if lowObs[0] <= lowObs[len(lowObs)-1] {
		t.Fatalf("observed low-class response did not fall with theta\n%s", res)
	}
	if lowPred[0] <= lowPred[len(lowPred)-1] {
		t.Fatalf("predicted low-class response did not fall with theta\n%s", res)
	}
}

func TestFigure6AccuracyCurve(t *testing.T) {
	res, err := Figure6(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Error grows with the drop ratio and is materially nonzero.
	prev := 0.0
	for _, r := range res.Rows {
		if r.MAPEPct <= 0 {
			t.Fatalf("theta %.1f: zero error\n%s", r.Theta, res)
		}
		if r.MAPEPct < prev-2 { // allow small sampling dips
			t.Fatalf("error curve not increasing at theta %.1f\n%s", r.Theta, res)
		}
		if r.MAPEPct > prev {
			prev = r.MAPEPct
		}
	}
	// θ=0.1 should sit in single digits to low tens, as in the paper.
	if first := res.Rows[0].MAPEPct; first < 1 || first > 30 {
		t.Fatalf("MAPE at 0.1 = %.1f%%, outside plausible band\n%s", first, res)
	}
	// The fitted curve interpolates and clamps.
	curve := res.Curve()
	if curve(0) != 0 {
		t.Fatal("curve(0) != 0")
	}
	if curve(0.15) <= 0 || curve(2) != res.Rows[len(res.Rows)-1].MAPEPct {
		t.Fatal("curve interpolation broken")
	}
}

func TestFigure7PaperShape(t *testing.T) {
	res, err := Figure7(testScale())
	if err != nil {
		t.Fatal(err)
	}
	const low, high = 0, 1
	// Under P, high priority is far faster than low.
	bl := res.Baseline.PerClass
	if bl[high].MeanResponseSec >= bl[low].MeanResponseSec {
		t.Fatalf("P: high (%.1fs) not faster than low (%.1fs)",
			bl[high].MeanResponseSec, bl[low].MeanResponseSec)
	}
	// P wastes resources; the non-preemptive policies don't.
	if res.Baseline.ResourceWastePct <= 0 {
		t.Fatalf("P waste = %.2f%%, want > 0", res.Baseline.ResourceWastePct)
	}
	cs := res.Comparisons()
	var np, da20 int = -1, -1
	for i, c := range cs {
		if c.Name == "NP" {
			np = i
		}
		if c.Name == "DA(0,20)" {
			da20 = i
		}
		if c.ResourceWastePct != 0 {
			t.Fatalf("%s waste = %.2f%%, want 0", c.Name, c.ResourceWastePct)
		}
	}
	if np < 0 || da20 < 0 {
		t.Fatalf("missing scenarios in %v", cs)
	}
	// NP: low improves, high degrades (the paper's ~+80%).
	if cs[np].MeanDiffPct[low] >= 0 {
		t.Fatalf("NP low mean diff = %+.1f%%, want negative\n%s", cs[np].MeanDiffPct[low], res)
	}
	if cs[np].MeanDiffPct[high] <= 0 {
		t.Fatalf("NP high mean diff = %+.1f%%, want positive\n%s", cs[np].MeanDiffPct[high], res)
	}
	// DA(0,20): low improves substantially more than NP, high degrades far
	// less than under NP.
	if cs[da20].MeanDiffPct[low] >= cs[np].MeanDiffPct[low] {
		t.Fatalf("DA(0,20) low (%.1f%%) not better than NP (%.1f%%)\n%s",
			cs[da20].MeanDiffPct[low], cs[np].MeanDiffPct[low], res)
	}
	if cs[da20].MeanDiffPct[high] >= cs[np].MeanDiffPct[high] {
		t.Fatalf("DA(0,20) high (%.1f%%) not better than NP high (%.1f%%)\n%s",
			cs[da20].MeanDiffPct[high], cs[np].MeanDiffPct[high], res)
	}
}

func TestFigure8Variants(t *testing.T) {
	if testing.Short() {
		t.Skip("three scenario sweeps")
	}
	for _, v := range []Figure8Variant{Figure8EqualSizes, Figure8MoreHigh, Figure8HalfLoad} {
		res, err := Figure8(v, testScale())
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if len(res.Others) != 3 {
			t.Fatalf("%s: %d scenarios", v, len(res.Others))
		}
	}
	if _, err := Figure8("bogus", testScale()); err == nil {
		t.Fatal("unknown variant accepted")
	}
}

func TestFigure8HalfLoadPNearNP(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario sweep")
	}
	// §5.2.2: preemption matters less at 50% load than at 80%. The robust
	// form of that claim is relative: NP's low-class gain over P shrinks
	// at half load (less queueing to recover), and P's waste stays small.
	half, err := Figure8(Figure8HalfLoad, testScale())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Figure7(testScale())
	if err != nil {
		t.Fatal(err)
	}
	npDiff := func(f *ComparisonFigure) float64 {
		for _, c := range f.Comparisons() {
			if c.Name == "NP" {
				return c.MeanDiffPct[0] // low class
			}
		}
		t.Fatal("NP scenario missing")
		return 0
	}
	if gHalf, gRef := npDiff(half), npDiff(ref); gHalf < gRef {
		t.Fatalf("NP low-class gain at 50%% load (%.1f%%) exceeds 80%% load (%.1f%%)\n%s",
			gHalf, gRef, half)
	}
	// Waste under P at low load is small.
	if half.Baseline.ResourceWastePct > 10 {
		t.Fatalf("P waste at 50%% load = %.1f%%\n%s", half.Baseline.ResourceWastePct, half)
	}
}

func TestFigure9ThreePriorities(t *testing.T) {
	if testing.Short() {
		t.Skip("four scenario sweeps")
	}
	res, err := Figure9(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Baseline.PerClass) != 3 {
		t.Fatalf("%d classes", len(res.Baseline.PerClass))
	}
	// Preemption with three classes wastes more than with two (the paper:
	// ~16% vs ~4%); at least it must be nonzero and the DA runs zero.
	if res.Baseline.ResourceWastePct <= 0 {
		t.Fatal("P waste zero in three-priority system")
	}
	for _, c := range res.Comparisons() {
		if c.ResourceWastePct != 0 {
			t.Fatalf("%s waste nonzero", c.Name)
		}
	}
	// DA(0,20,40) must improve the low class.
	cs := res.Comparisons()
	last := cs[len(cs)-1]
	if last.MeanDiffPct[0] >= 0 {
		t.Fatalf("DA(0,20,40) low diff = %+.1f%%\n%s", last.MeanDiffPct[0], res)
	}
}

func TestFigure10TriangleCount(t *testing.T) {
	if testing.Short() {
		t.Skip("seven scenario sweeps")
	}
	sc := testScale()
	sc.Jobs = 80
	res, err := Figure10(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Others) != 6 { // NP + 5 drop levels
		t.Fatalf("%d scenarios", len(res.Others))
	}
	cs := res.Comparisons()
	da20 := cs[len(cs)-1]
	if da20.Name != "DA(0,20)" {
		t.Fatalf("last scenario = %s", da20.Name)
	}
	// Modest per-stage dropping gives a large low-priority gain (§5.2.4).
	if da20.MeanDiffPct[0] >= -10 {
		t.Fatalf("DA(0,20) low mean diff = %+.1f%%\n%s", da20.MeanDiffPct[0], res)
	}
}

func TestFigure11FullDiAS(t *testing.T) {
	if testing.Short() {
		t.Skip("six scenario sweeps")
	}
	sc := testScale()
	sc.Jobs = 80
	res, err := Figure11(sc)
	if err != nil {
		t.Fatal(err)
	}
	const low, high = 0, 1
	// Unlimited sprinting + approximation improves BOTH classes vs P.
	for _, c := range res.Unlimited.Comparisons() {
		if c.MeanDiffPct[low] >= 0 || c.MeanDiffPct[high] >= 0 {
			t.Fatalf("unlimited %s did not improve both classes: low %+.1f%% high %+.1f%%\n%s",
				c.Name, c.MeanDiffPct[low], c.MeanDiffPct[high], res)
		}
	}
	// Energy drops despite sprinting (§5.3, Figure 11c).
	unl := res.Unlimited.Comparisons()
	if unl[len(unl)-1].EnergyDiffPct >= 0 {
		t.Fatalf("DiAS(0,20) unlimited energy diff = %+.1f%%\n%s",
			unl[len(unl)-1].EnergyDiffPct, res)
	}
	// Table 2 renders with all three policies.
	tbl := res.Table2()
	for _, want := range []string{"NPS", "DiAS(0,10)", "DiAS(0,20)", "Queue", "Exec"} {
		if !strings.Contains(tbl, want) {
			t.Fatalf("Table 2 missing %q:\n%s", want, tbl)
		}
	}
	// DiAS(0,20) low execution < NPS low execution (dropping shortens it).
	var npsLowExec, dias20LowExec float64
	npsLowExec = res.NPS.PerClass[low].MeanExecSec
	dias20LowExec = res.Limited.Others[1].PerClass[low].MeanExecSec
	if dias20LowExec >= npsLowExec {
		t.Fatalf("DiAS(0,20) low exec %.1fs not below NPS %.1fs\n%s", dias20LowExec, npsLowExec, tbl)
	}
}
