package experiments

// Extensions beyond the paper's evaluation: the paper's traces exhibit
// time-varying arrival intensities (§2.2) and random job sizes (§4's
// pm(t)), but its experiments use stationary Poisson arrivals and fixed
// per-class templates. The experiments here exercise those two
// generalizations end to end, plus the §4 model-level comparison DESIGN.md
// lists as an ablation.

import (
	"fmt"

	"dias/internal/analytics"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"math/rand"

	"dias/internal/mmap"
	"dias/internal/model"
	"dias/internal/simtime"
	"dias/internal/workload"
)

// ExtensionBurstyResult compares the two-class policies under stationary
// Poisson arrivals and under a bursty MMPP2 with the same mean rates.
type ExtensionBurstyResult struct {
	Poisson *ComparisonFigure
	Bursty  *ComparisonFigure
}

// String renders both comparisons.
func (r *ExtensionBurstyResult) String() string {
	return r.Poisson.String() + "\n" + r.Bursty.String()
}

// burstyProcess builds an MMPP2 whose stationary per-class rates equal the
// given Poisson rates: a calm phase at 0.4x and a bursty phase at 2.5x,
// visited 5/7 and 2/7 of the time (5/7*0.4 + 2/7*2.5 = 1 exactly). Phase
// sojourns span ~dozens of arrivals so bursts are long enough to pile up
// queues.
func burstyProcess(rates []float64, rng *rand.Rand) (workload.Process, error) {
	var total float64
	for _, r := range rates {
		total += r
	}
	calm := make([]float64, len(rates))
	burst := make([]float64, len(rates))
	for k, r := range rates {
		calm[k] = 0.4 * r
		burst[k] = 2.5 * r
	}
	// Mean calm sojourn = 40 mean gaps, mean burst sojourn = 16, keeping
	// the 5:2 stationary split.
	m, err := mmap.MMPP2(total/40, total/16, calm, burst)
	if err != nil {
		return nil, fmt.Errorf("building MMPP2: %w", err)
	}
	src, err := m.NewSource(rng)
	if err != nil {
		return nil, fmt.Errorf("starting MMPP2 source: %w", err)
	}
	return src, nil
}

// ExtensionBursty runs P, NP and DA(0,20) on the reference two-class text
// workload under Poisson and under bursty arrivals with identical mean
// rates. The expected shape: burstiness inflates every queue, and DA's
// latency advantage over P/NP persists (and typically widens in absolute
// terms) because shorter low-priority jobs drain backlogs faster.
func ExtensionBursty(scale Scale) (*ExtensionBurstyResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	setup := referenceSetup()
	lowJob, err := textJob("low", scale.Seed+101, setup.lowPosts, setup.lowSize)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("high", scale.Seed+102, setup.highPosts, setup.highSize)
	if err != nil {
		return nil, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, cluCfg, 3, scale.Seed+103)
	if err != nil {
		return nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, scale.Seed+104)
	if err != nil {
		return nil, err
	}
	totalRate, err := workload.CalibrateTotalRate(
		[]float64{mean(lowDur), mean(highDur)}, []float64{0.9, 0.1}, setup.util)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio(setup.ratio, totalRate)
	if err != nil {
		return nil, err
	}
	jobs := []*engine.Job{lowJob, highJob}
	policies := []struct {
		name   string
		policy core.Config
	}{
		{"P", core.PolicyP(2)},
		{"NP", core.PolicyNP(2)},
		{"DA(0,20)", core.PolicyDA([]float64{0.2, 0})},
	}
	runSet := func(title string, bursty bool) (*ComparisonFigure, error) {
		scs := make([]scenario, len(policies))
		for pi, p := range policies {
			scs[pi] = scenario{
				name: p.name, policy: p.policy, rates: rates,
				jobs: jobs, cost: cost, cluster: cluCfg, scale: scale,
			}
			if bursty {
				// A fresh source per policy keeps runs independent but
				// identically distributed (same seed per policy index).
				procRng := rand.New(rand.NewSource(scale.Seed + 300 + int64(pi)))
				proc, err := burstyProcess(rates, procRng)
				if err != nil {
					return nil, err
				}
				scs[pi].proc = proc
			}
		}
		results, err := runScenarios(scs)
		if err != nil {
			return nil, err
		}
		return &ComparisonFigure{Title: title, Baseline: results[0], Others: results[1:]}, nil
	}
	poisson, err := runSet("Extension: Poisson arrivals (reference)", false)
	if err != nil {
		return nil, err
	}
	bursty, err := runSet("Extension: bursty MMPP2 arrivals, same mean rates", true)
	if err != nil {
		return nil, err
	}
	return &ExtensionBurstyResult{Poisson: poisson, Bursty: bursty}, nil
}

// ExtensionVariableSizes runs the two-class comparison with per-arrival
// random task counts for the low class (uniform over [half, full]) — the
// pm(t) of §4 realised in the generator — confirming DA's gains survive
// heterogeneous job sizes.
func ExtensionVariableSizes(scale Scale) (*ComparisonFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	setup := referenceSetup()
	lowJob, err := textJob("low", scale.Seed+111, setup.lowPosts, setup.lowSize)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("high", scale.Seed+112, setup.highPosts, setup.highSize)
	if err != nil {
		return nil, err
	}
	parts := len(lowJob.Input)
	counts, err := workload.NewUniformCount(parts/2, parts)
	if err != nil {
		return nil, err
	}
	source, err := workload.NewVariableJobs(
		[]*engine.Job{lowJob, highJob},
		[]workload.TaskCountDist{counts, workload.FixedCount(len(highJob.Input))},
	)
	if err != nil {
		return nil, err
	}
	// Calibrate the arrival rate on the mean-size low job (3/4 of full).
	meanLow, err := workload.SubJob(lowJob, (parts/2+parts)/2)
	if err != nil {
		return nil, err
	}
	lowDur, _, err := profileSolo(meanLow, nil, cost, cluCfg, 3, scale.Seed+113)
	if err != nil {
		return nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, scale.Seed+114)
	if err != nil {
		return nil, err
	}
	totalRate, err := workload.CalibrateTotalRate(
		[]float64{mean(lowDur), mean(highDur)}, []float64{0.9, 0.1}, setup.util)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio(setup.ratio, totalRate)
	if err != nil {
		return nil, err
	}
	policies := []struct {
		name   string
		policy core.Config
	}{
		{"P", core.PolicyP(2)},
		{"NP", core.PolicyNP(2)},
		{"DA(0,10)", core.PolicyDA([]float64{0.1, 0})},
		{"DA(0,20)", core.PolicyDA([]float64{0.2, 0})},
	}
	scs := make([]scenario, len(policies))
	for i, p := range policies {
		scs[i] = scenario{
			name: p.name, policy: p.policy, rates: rates,
			cost: cost, cluster: cluCfg, scale: scale, source: source,
		}
	}
	results, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &ComparisonFigure{
		Title:    "Extension: variable low-priority job sizes (uniform task counts)",
		Baseline: results[0],
		Others:   results[1:],
	}, nil
}

// ExtensionFailures runs the two-class reference workload under DA(0,20)
// with and without random node failures (fail/repair cycles across the
// run), exercising the engine's task re-execution path end to end. The
// expected shape: failures inflate latencies (capacity loss + re-executed
// work) but every job still completes with correct output, and the
// non-preemptive DA policy keeps its advantage over P.
func ExtensionFailures(scale Scale) (*ComparisonFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	setup := referenceSetup()
	lowJob, err := textJob("low", scale.Seed+141, setup.lowPosts, setup.lowSize)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("high", scale.Seed+142, setup.highPosts, setup.highSize)
	if err != nil {
		return nil, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, cluCfg, 3, scale.Seed+143)
	if err != nil {
		return nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, scale.Seed+144)
	if err != nil {
		return nil, err
	}
	// Run at 70% nominal load: failures shave capacity, and the paper-like
	// 80% would push the faulty runs into saturation.
	totalRate, err := workload.CalibrateTotalRate(
		[]float64{mean(lowDur), mean(highDur)}, []float64{0.9, 0.1}, 0.7)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio(setup.ratio, totalRate)
	if err != nil {
		return nil, err
	}
	jobs := []*engine.Job{lowJob, highJob}
	// One node down at a time on average ~1/6 of the time:
	// 10 nodes x (MTTR 60 / MTTF 3600).
	faults := &engine.FailureConfig{MTTFSec: 3600, MTTRSec: 60, Seed: scale.Seed + 145}
	variants := []struct {
		name     string
		policy   core.Config
		failures *engine.FailureConfig
	}{
		{"P", core.PolicyP(2), nil},
		{"P-faulty", core.PolicyP(2), faults},
		{"DA(0,20)", core.PolicyDA([]float64{0.2, 0}), nil},
		{"DA(0,20)-faulty", core.PolicyDA([]float64{0.2, 0}), faults},
	}
	scs := make([]scenario, len(variants))
	for i, v := range variants {
		scs[i] = scenario{
			name: v.name, policy: v.policy, rates: rates,
			jobs: jobs, cost: cost, cluster: cluCfg, scale: scale,
			failures: v.failures,
		}
	}
	results, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &ComparisonFigure{
		Title:    "Extension: node failures (MTTF 1h, MTTR 60s per node)",
		Baseline: results[0],
		Others:   results[1:],
	}, nil
}

// AdaptiveRow summarises one policy of the adaptive-deflation comparison.
type AdaptiveRow struct {
	Name string
	// LowMeanSec / LowP95Sec are the low class's response statistics.
	LowMeanSec, LowP95Sec float64
	// HighMeanSec is the high class's mean response.
	HighMeanSec float64
	// MeanDrop is the average realised drop ratio of low-priority jobs —
	// the accuracy price actually paid.
	MeanDrop float64
}

// AdaptiveResult compares static deflation against the closed-loop
// controller on a workload with a load step.
type AdaptiveResult struct {
	Rows []AdaptiveRow
	// ThetaDecisions is the number of controller adjustments.
	ThetaDecisions int
}

// String renders the comparison.
func (r *AdaptiveResult) String() string {
	s := "Extension: adaptive deflation under a load step (calm -> overload)\n"
	s += fmt.Sprintf("%-12s %12s %12s %12s %10s\n", "policy", "low mean[s]", "low p95[s]", "high mean[s]", "mean drop")
	for _, row := range r.Rows {
		s += fmt.Sprintf("%-12s %12.1f %12.1f %12.1f %9.1f%%\n",
			row.Name, row.LowMeanSec, row.LowP95Sec, row.HighMeanSec, 100*row.MeanDrop)
	}
	s += fmt.Sprintf("controller decisions: %d\n", r.ThetaDecisions)
	return s
}

// ExtensionAdaptive evaluates the closed-loop deflator (core.
// AdaptiveDeflator) on a two-class stream whose arrival rate steps from
// 60% to ~110% nominal load halfway through — the "workload change" for
// which the paper's §5.3 procedure would require a fresh offline search.
// Expected shape: static NP saturates during the overload; static DA(0,20)
// holds latency but pays its full accuracy price from the first job; the
// controller pays (almost) nothing during the calm phase and ramps θ only
// when the step hits, landing between the two on mean drop while tracking
// DA's latency.
func ExtensionAdaptive(scale Scale) (*AdaptiveResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	setup := referenceSetup()
	lowJob, err := textJob("low", scale.Seed+151, setup.lowPosts, setup.lowSize)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("high", scale.Seed+152, setup.highPosts, setup.highSize)
	if err != nil {
		return nil, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, cluCfg, 3, scale.Seed+153)
	if err != nil {
		return nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, scale.Seed+154)
	if err != nil {
		return nil, err
	}
	lowExec, highExec := mean(lowDur), mean(highDur)
	// Build the stepped stream: calm 60% load for the first 60% of
	// arrivals, then ~110% for the rest.
	calmRate, err := workload.CalibrateTotalRate([]float64{lowExec, highExec}, []float64{0.9, 0.1}, 0.6)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(scale.Seed + 155))
	calmRates, err := workload.MixFromRatio(setup.ratio, calmRate)
	if err != nil {
		return nil, err
	}
	calmPM, err := workload.NewPoissonMix(calmRates)
	if err != nil {
		return nil, err
	}
	nCalm := scale.Jobs * 6 / 10
	arrivals := calmPM.Stream(rng, nCalm)
	hotRates, err := workload.MixFromRatio(setup.ratio, calmRate*110.0/60.0)
	if err != nil {
		return nil, err
	}
	hotPM, err := workload.NewPoissonMix(hotRates)
	if err != nil {
		return nil, err
	}
	offset := 0.0
	if len(arrivals) > 0 {
		offset = arrivals[len(arrivals)-1].At
	}
	for _, a := range hotPM.Stream(rng, scale.Jobs-nCalm) {
		arrivals = append(arrivals, workload.Arrival{At: offset + a.At, Class: a.Class})
	}
	// Target: keep low-priority mean response within 3x its solo
	// execution; ceiling 0.4 (the paper's 32%-error operating point).
	target := 3 * lowExec
	var lastCtl *core.AdaptiveDeflator
	mkAdaptive := func(sim *simtime.Simulation) (core.Deflator, error) {
		ctl, err := core.NewAdaptiveDeflator(sim, core.AdaptiveConfig{
			TargetResponseSec: []float64{target, 0},
			MaxTheta:          []float64{0.4, 0},
			Window:            8,
			Step:              0.05,
			Hysteresis:        0.6,
		})
		if err != nil {
			return nil, err
		}
		lastCtl = ctl
		return ctl, nil
	}
	variants := []struct {
		name     string
		policy   core.Config
		deflator func(*simtime.Simulation) (core.Deflator, error)
	}{
		{"NP", core.PolicyNP(2), nil},
		{"DA(0,20)", core.PolicyDA([]float64{0.2, 0}), nil},
		{"Adaptive", core.PolicyNP(2), mkAdaptive},
	}
	scs := make([]scenario, len(variants))
	for i, v := range variants {
		// A fresh replay per scenario: Replay is stateful.
		rp, err := workload.NewReplay(arrivals)
		if err != nil {
			return nil, err
		}
		scs[i] = scenario{
			name: v.name, policy: v.policy,
			jobs: []*engine.Job{lowJob, highJob},
			cost: cost, cluster: cluCfg, scale: scale,
			proc: rp, deflator: v.deflator,
		}
	}
	results, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}
	out := &AdaptiveResult{}
	for i, v := range variants {
		res := results[i]
		out.Rows = append(out.Rows, AdaptiveRow{
			Name:        v.name,
			LowMeanSec:  res.PerClass[0].MeanResponseSec,
			LowP95Sec:   res.PerClass[0].P95ResponseSec,
			HighMeanSec: res.PerClass[1].MeanResponseSec,
			MeanDrop:    res.PerClass[0].MeanEffectiveDrop,
		})
	}
	if lastCtl != nil {
		out.ThetaDecisions = len(lastCtl.History())
	}
	return out, nil
}

// --- Ablation: task-level vs wave-level model ------------------------------

// ModelLevelRow is one θ point of the model comparison.
type ModelLevelRow struct {
	Theta        float64
	ObservedSec  float64
	TaskLevelSec float64
	WaveLevelSec float64
}

// ModelLevelResult compares the §4.1 task-level CTMC and the §4.2
// wave-level PH against observed processing times.
type ModelLevelResult struct {
	Rows []ModelLevelRow
	// TaskMAPE and WaveMAPE are mean absolute percent errors over Rows.
	TaskMAPE, WaveMAPE float64
}

// String renders the comparison table.
func (r *ModelLevelResult) String() string {
	s := "Ablation: task-level vs wave-level §4 models\n"
	s += fmt.Sprintf("%6s %12s %12s %12s\n", "theta", "observed[s]", "task[s]", "wave[s]")
	for _, row := range r.Rows {
		s += fmt.Sprintf("%6.2f %12.2f %12.2f %12.2f\n",
			row.Theta, row.ObservedSec, row.TaskLevelSec, row.WaveLevelSec)
	}
	s += fmt.Sprintf("MAPE: task-level %.1f%%, wave-level %.1f%%\n", r.TaskMAPE, r.WaveMAPE)
	return s
}

// AblationModelLevel parameterizes both §4 models from the same profiling
// run of a text job and compares their predicted mean processing times to
// observation across drop ratios. The expected shape: the wave-level model
// tracks observation more closely because the task-level model's
// exponential per-task assumption overweights stragglers.
func AblationModelLevel(scale Scale) (*ModelLevelResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	job, err := textJob("model-level", scale.Seed+121, 60, 900<<20)
	if err != nil {
		return nil, err
	}
	wm, err := profileWaveModel(job, cost, cluCfg, scale.Seed+122)
	if err != nil {
		return nil, err
	}
	out := &ModelLevelResult{}
	var taskErr, waveErr float64
	thetas := []float64{0, 0.2, 0.4, 0.6, 0.8}
	for ti, theta := range thetas {
		var drops []float64
		if theta > 0 {
			drops = []float64{theta}
		}
		durs, _, err := profileSolo(job, drops, cost, cluCfg, 5, scale.Seed+130+int64(ti))
		if err != nil {
			return nil, err
		}
		obs := mean(durs)
		// Task-level: exponential tasks at the profiled per-wave rates;
		// setup and shuffle become single exponential stages.
		tl := model.TaskLevelConfig{
			Slots:       wm.slots,
			MapTasks:    model.FixedTasks(wm.mapTasks),
			ReduceTasks: model.FixedTasks(wm.redTasks),
			MuMap:       1 / wm.mapWaveSec,
			MuReduce:    1 / wm.redWaveSec,
			MuSetup:     1 / wm.overhead.At(theta),
			MuShuffle:   1 / wm.shuffleSec,
			ThetaMap:    theta,
		}
		taskMean, err := tl.MeanProcessingTime()
		if err != nil {
			return nil, fmt.Errorf("task-level model at θ=%g: %w", theta, err)
		}
		ph, err := wm.processingPH(theta)
		if err != nil {
			return nil, fmt.Errorf("wave-level model at θ=%g: %w", theta, err)
		}
		waveMean, err := ph.Mean()
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ModelLevelRow{
			Theta: theta, ObservedSec: obs,
			TaskLevelSec: taskMean, WaveLevelSec: waveMean,
		})
		taskErr += abs(analytics.RelativeErrorPct(obs, taskMean))
		waveErr += abs(analytics.RelativeErrorPct(obs, waveMean))
	}
	out.TaskMAPE = taskErr / float64(len(thetas))
	out.WaveMAPE = waveErr / float64(len(thetas))
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
