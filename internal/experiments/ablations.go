package experiments

import (
	"context"

	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/metrics"
	"dias/internal/runner"
	"dias/internal/workload"
)

// Ablations isolate the design choices DESIGN.md calls out. Each returns a
// small comparison the bench harness prints.

// AblationSprintTimeout compares sprint-timeout policies under the limited
// budget: immediate sprinting versus the paper's timeout-based policy
// versus no sprinting, on the Figure 11 workload.
func AblationSprintTimeout(scale Scale) (*ComparisonFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := graphCostModel()
	cluCfg := cluster.DefaultConfig()
	job, err := graphJob("tc", scale.Seed+71, 300, 3, 60, 60, 600<<20)
	if err != nil {
		return nil, err
	}
	durs, _, err := profileSolo(job, nil, cost, cluCfg, 2, scale.Seed+72)
	if err != nil {
		return nil, err
	}
	exec := mean(durs)
	totalRate, err := workload.CalibrateTotalRate([]float64{exec, exec}, []float64{0.7, 0.3}, 0.8)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio([]float64{7, 3}, totalRate)
	if err != nil {
		return nil, err
	}
	jobs := []*engine.Job{job, job}
	mk := func(timeout float64) core.Config {
		cfg := core.PolicyNP(2)
		cfg.Sprint = &core.SprintPolicy{
			TimeoutSec:     []float64{-1, timeout},
			BudgetJoules:   22000,
			DrainWatts:     900,
			ReplenishWatts: 90,
		}
		return cfg
	}
	variants := []struct {
		name   string
		policy core.Config
	}{
		{"NP-nosprint", core.PolicyNP(2)},
		{"NPS-immediate", mk(0)},
		{"NPS-timeout", mk(0.65 * exec)},
	}
	scs := make([]scenario, len(variants))
	for i, v := range variants {
		scs[i] = scenario{name: v.name, policy: v.policy, rates: rates, jobs: jobs, cost: cost, cluster: cluCfg, scale: scale}
	}
	results, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &ComparisonFigure{
		Title:    "Ablation: sprint-timeout policy under a limited budget",
		Baseline: results[0],
		Others:   results[1:],
	}, nil
}

// AblationEvictionResume compares the paper's preemptive-repeat eviction
// (re-execution from scratch) with hypothetical suspend/resume, isolating
// how much of P's resource waste comes from repeating work. The simulated
// engine cannot checkpoint jobs, so resume is approximated at the queue
// level by the queueing package; here we quantify repeat's waste directly.
func AblationEvictionResume(scale Scale) (metrics.ScenarioResult, error) {
	if err := scale.validate(); err != nil {
		return metrics.ScenarioResult{}, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	setup := referenceSetup()
	lowJob, err := textJob("low", scale.Seed+81, setup.lowPosts, setup.lowSize)
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	highJob, err := textJob("high", scale.Seed+82, setup.highPosts, setup.highSize)
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, cluCfg, 3, scale.Seed+83)
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, scale.Seed+84)
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	totalRate, err := workload.CalibrateTotalRate([]float64{mean(lowDur), mean(highDur)}, []float64{0.9, 0.1}, setup.util)
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	rates, err := workload.MixFromRatio(setup.ratio, totalRate)
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	sc := scenario{
		name:   "P-repeat",
		policy: core.PolicyP(2),
		rates:  rates,
		jobs:   []*engine.Job{lowJob, highJob},
		cost:   cost, cluster: cluCfg, scale: scale,
	}
	return sc.run()
}

// AblationDropTiming quantifies early dropping's fetch savings: the same
// job with dfs-backed input at θ=0.5, where dropped stage-0 tasks skip
// their block reads, versus θ=0 (the full fetch volume).
type AblationDropTimingResult struct {
	FullExecSec, DroppedExecSec float64
}

// AblationDropTiming runs the comparison.
func AblationDropTiming(scale Scale) (*AblationDropTimingResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	job, err := textJob("drop-timing", scale.Seed+91, 60, 900<<20)
	if err != nil {
		return nil, err
	}
	// The full and dropped profiles are independent runs over the same
	// immutable job; fan them out as a two-task grid.
	profiles := []struct {
		drops []float64
		seed  int64
	}{
		{nil, scale.Seed + 92},
		{[]float64{0.5}, scale.Seed + 93},
	}
	tasks := make([]runner.Task[float64], len(profiles))
	for i := range profiles {
		p := profiles[i]
		tasks[i] = func(context.Context) (float64, error) {
			durs, _, err := profileSolo(job, p.drops, cost, cluCfg, 3, p.seed)
			if err != nil {
				return 0, err
			}
			return mean(durs), nil
		}
	}
	execs, err := runner.Map(context.Background(), scale.pool(), tasks)
	if err != nil {
		return nil, err
	}
	return &AblationDropTimingResult{
		FullExecSec:    execs[0],
		DroppedExecSec: execs[1],
	}, nil
}
