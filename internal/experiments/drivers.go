package experiments

// Every paper figure self-registers here. Registration order is the
// "-fig all" run order; keep new drivers at the end unless they belong to
// an existing group.

import (
	"fmt"

	"dias/internal/metrics"
)

// comp flattens a comparison figure into its scenario results.
func comp(f *ComparisonFigure) []metrics.ScenarioResult {
	return append([]metrics.ScenarioResult{f.Baseline}, f.Others...)
}

// relabel suffixes scenario names so drivers that bundle several
// sub-figures (8's variants, 11's budgets, the extension sets) stay unique
// by name in the benchmark report.
func relabel(suffix string, rs []metrics.ScenarioResult) []metrics.ScenarioResult {
	out := make([]metrics.ScenarioResult, len(rs))
	for i, s := range rs {
		s.Name += suffix
		out[i] = s
	}
	return out
}

// plainDriver adapts a figure without a scenario grid to DriverFunc.
func plainDriver[T fmt.Stringer](fn func(Scale) (T, error)) DriverFunc {
	return func(sc Scale) (DriverOutput, error) {
		r, err := fn(sc)
		return DriverOutput{Text: r}, err
	}
}

// compDriver adapts a plain comparison figure to DriverFunc.
func compDriver(fn func(Scale) (*ComparisonFigure, error)) DriverFunc {
	return func(sc Scale) (DriverOutput, error) {
		r, err := fn(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		return DriverOutput{Text: r, Scenarios: comp(r)}, nil
	}
}

// capJobs bounds the arrivals of one sub-run inside a bundled driver.
func capJobs(sc Scale, max int) Scale {
	if sc.Jobs > max {
		sc.Jobs = max
	}
	return sc
}

// textString adapts a plain string to fmt.Stringer.
type textString string

func (s textString) String() string { return string(s) }

// multiText concatenates several rendered results.
type multiText []fmt.Stringer

func (m multiText) String() string {
	out := ""
	for i, s := range m {
		if i > 0 {
			out += "\n"
		}
		out += s.String()
	}
	return out
}

// Arrival caps for the heavier figures: graph-analytics jobs are ~10x
// heavier per arrival, the federation and fault grids run dozens of
// whole-cluster simulations per figure, and the overload sweep runs 19.
const (
	graphMaxJobs    = 300
	fedExpMaxJobs   = 250
	faultMaxJobs    = 300
	overloadMaxJobs = 240
)

func init() {
	Register("motivation", DriverMeta{
		Description: "eviction vs pausing vs DiAS on one contended arrival (§1 motivation)",
	}, plainDriver(Motivation))
	Register("4", DriverMeta{
		Description: "phase-type service-time fits vs profiled task durations (model validation)",
	}, plainDriver(Figure4))
	Register("5", DriverMeta{
		Description: "task- vs wave-level job-time model accuracy (model validation)",
	}, plainDriver(Figure5))
	Register("6", DriverMeta{
		Description: "accuracy loss vs drop ratio on the profiled curve (model validation)",
	}, plainDriver(Figure6))
	Register("7", DriverMeta{
		Description: "text-analytics latency: NP vs P vs DA vs DiAS grid",
	}, compDriver(Figure7))
	Register("8", DriverMeta{
		Description: "figure 7 under equal sizes, more-high mix and half load",
	}, func(sc Scale) (DriverOutput, error) {
		var out multiText
		var scens []metrics.ScenarioResult
		for _, v := range []Figure8Variant{Figure8EqualSizes, Figure8MoreHigh, Figure8HalfLoad} {
			r, err := Figure8(v, sc)
			if err != nil {
				return DriverOutput{}, err
			}
			out = append(out, r)
			scens = append(scens, relabel("-"+string(v), comp(r))...)
		}
		return DriverOutput{Text: out, Scenarios: scens}, nil
	})
	Register("9", DriverMeta{
		Description: "resource waste and energy: eviction pays, dropping doesn't",
	}, compDriver(Figure9))
	Register("10", DriverMeta{
		Description: "triangle-count latency grid (graph analytics)",
		MaxJobs:     graphMaxJobs,
	}, compDriver(Figure10))
	Register("11", DriverMeta{
		Description: "sprinting budgets: limited vs unlimited DVFS grid",
		MaxJobs:     graphMaxJobs,
	}, func(sc Scale) (DriverOutput, error) {
		r, err := Figure11(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		scens := append([]metrics.ScenarioResult{r.Limited.Baseline, r.NPS},
			relabel("-limited", r.Limited.Others)...)
		scens = append(scens, relabel("-unlimited", r.Unlimited.Others)...)
		return DriverOutput{Text: r, Scenarios: scens}, nil
	})
	Register("table2", DriverMeta{
		Description: "per-policy latency/accuracy/energy summary (duplicates figure 11's run)",
		MaxJobs:     graphMaxJobs,
		SkipInAll:   true,
	}, func(sc Scale) (DriverOutput, error) {
		r, err := Figure11(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		return DriverOutput{Text: textString(r.Table2())}, nil
	})
	Register("ablations", DriverMeta{
		Description: "sprint-timeout, model-level, drop-timing and eviction-resume ablations",
	}, func(sc Scale) (DriverOutput, error) {
		var out multiText
		var scens []metrics.ScenarioResult
		st, err := AblationSprintTimeout(capJobs(sc, graphMaxJobs))
		if err != nil {
			return DriverOutput{}, err
		}
		out = append(out, st)
		scens = append(scens, comp(st)...)
		ml, err := AblationModelLevel(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		out = append(out, ml)
		dt, err := AblationDropTiming(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		out = append(out, textString(fmt.Sprintf(
			"Ablation: early drop timing\n  full exec %.1fs, theta=0.5 exec %.1fs (%.0f%% saved)\n",
			dt.FullExecSec, dt.DroppedExecSec, 100*(1-dt.DroppedExecSec/dt.FullExecSec))))
		er, err := AblationEvictionResume(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		out = append(out, textString(fmt.Sprintf(
			"Ablation: preemptive-repeat eviction\n  resource waste %.1f%% of machine time\n",
			er.ResourceWastePct)))
		scens = append(scens, er)
		return DriverOutput{Text: out, Scenarios: scens}, nil
	})
	Register("faults", DriverMeta{
		Description: "node churn, task faults and stragglers vs the clean run",
		MaxJobs:     faultMaxJobs,
	}, func(sc Scale) (DriverOutput, error) {
		r, err := FaultTolerance(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		return DriverOutput{Text: r, Scenarios: r.Scenarios()}, nil
	})
	Register("elasticity", DriverMeta{
		Description: "autoscaler policies: latency vs powered-node energy",
		MaxJobs:     faultMaxJobs,
	}, func(sc Scale) (DriverOutput, error) {
		r, err := Elasticity(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		return DriverOutput{Text: r, Scenarios: r.Scenarios()}, nil
	})
	Register("federation-outage", DriverMeta{
		Description: "whole-cluster outage under each routing policy",
		MaxJobs:     fedExpMaxJobs,
	}, func(sc Scale) (DriverOutput, error) {
		r, err := FederationOutage(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		return DriverOutput{Text: r, Scenarios: r.Scenarios()}, nil
	})
	Register("federation-scaleout", DriverMeta{
		Description: "1..N homogeneous clusters under each routing policy",
		MaxJobs:     fedExpMaxJobs,
	}, func(sc Scale) (DriverOutput, error) {
		r, err := FederationScaleOut(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		return DriverOutput{Text: r, Scenarios: r.Scenarios()}, nil
	})
	Register("federation-hetero", DriverMeta{
		Description: "heterogeneous member sizes under each routing policy",
		MaxJobs:     fedExpMaxJobs,
	}, func(sc Scale) (DriverOutput, error) {
		r, err := FederationHeterogeneous(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		return DriverOutput{Text: r, Scenarios: r.Scenarios()}, nil
	})
	Register("extensions", DriverMeta{
		Description: "bursty arrivals, variable sizes, failures and adaptive deflation",
	}, func(sc Scale) (DriverOutput, error) {
		var out multiText
		var scens []metrics.ScenarioResult
		b, err := ExtensionBursty(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		out = append(out, b)
		scens = append(scens, relabel("-poisson", comp(b.Poisson))...)
		scens = append(scens, relabel("-bursty", comp(b.Bursty))...)
		v, err := ExtensionVariableSizes(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		out = append(out, v)
		scens = append(scens, relabel("-varsize", comp(v))...)
		f, err := ExtensionFailures(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		out = append(out, f)
		scens = append(scens, relabel("-failures", comp(f))...)
		a, err := ExtensionAdaptive(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		out = append(out, a)
		return DriverOutput{Text: out, Scenarios: scens}, nil
	})
	Register("overload", DriverMeta{
		Description: "offered load 0.5x-3x under each admission policy, goodput vs rejected work",
		MaxJobs:     overloadMaxJobs,
	}, func(sc Scale) (DriverOutput, error) {
		r, err := Overload(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		return DriverOutput{Text: r, Scenarios: r.Scenarios()}, nil
	})
	Register("scale", DriverMeta{
		Description: "streaming throughput: arrival process x job count x routing, 8 clusters, bounded memory",
	}, func(sc Scale) (DriverOutput, error) {
		r, err := ScaleThroughput(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		return DriverOutput{Text: r, Scenarios: r.Scenarios()}, nil
	})
	Register("parallel-kernel", DriverMeta{
		Description: "conservative parallel kernel vs serial oracle: 8 clusters, identical results, wall-clock speedup",
		MaxJobs:     fedExpMaxJobs,
	}, func(sc Scale) (DriverOutput, error) {
		r, err := ParallelKernel(sc)
		if err != nil {
			return DriverOutput{}, err
		}
		return DriverOutput{Text: r, Scenarios: r.Scenarios()}, nil
	})
}
