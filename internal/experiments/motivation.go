package experiments

import (
	"fmt"

	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/metrics"
	"dias/internal/workload"
)

// The paper's motivation (§1, §2.1) rests on two trace observations about
// preemptive priority scheduling: low-priority jobs suffer ~3x the latency
// slowdown of high-priority ones, and re-executing evicted jobs wastes a
// substantial share of machine time, growing with load. Motivation
// regenerates both observations on the simulated stack by sweeping the
// system load under policy P and reporting slowdown ratios and waste.

// MotivationRow is one load point of the sweep.
type MotivationRow struct {
	Util float64
	// LowSlowdown / HighSlowdown are mean response/exec ratios.
	LowSlowdown, HighSlowdown float64
	// Ratio = LowSlowdown / HighSlowdown (the paper's ~3x headline).
	Ratio float64
	// WastePct is machine time re-executing evicted jobs, in percent.
	WastePct float64
	// Evictions counts preemptions suffered by low-priority jobs.
	Evictions int
}

// MotivationResult is the §2.1 reproduction.
type MotivationResult struct {
	Rows []MotivationRow
}

// String renders the sweep.
func (r *MotivationResult) String() string {
	s := "Motivation (§2.1): preemptive priority P across system loads\n"
	s += fmt.Sprintf("%6s %14s %14s %8s %9s %10s\n",
		"util", "low slowdown", "high slowdown", "ratio", "waste[%]", "evictions")
	for _, row := range r.Rows {
		s += fmt.Sprintf("%6.2f %13.2fx %13.2fx %8.2f %9.1f %10d\n",
			row.Util, row.LowSlowdown, row.HighSlowdown, row.Ratio, row.WastePct, row.Evictions)
	}
	return s
}

// Motivation sweeps the system load under policy P on the reference
// two-class text workload. Expected shape: the slowdown ratio and the
// resource waste both grow with load — at high load the low class's
// slowdown is several times the high class's, the paper's trace-derived
// motivation for abandoning eviction.
func Motivation(scale Scale) (*MotivationResult, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	setup := referenceSetup()
	lowJob, err := textJob("low", scale.Seed+161, setup.lowPosts, setup.lowSize)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("high", scale.Seed+162, setup.highPosts, setup.highSize)
	if err != nil {
		return nil, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, cluCfg, 3, scale.Seed+163)
	if err != nil {
		return nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, scale.Seed+164)
	if err != nil {
		return nil, err
	}
	// One scenario per load point; the sweep fans out on the worker pool.
	// Each load point streams its records into a slowdown accumulator, so
	// no per-job record slice is ever materialized.
	utils := []float64{0.5, 0.7, 0.8, 0.9}
	scs := make([]scenario, len(utils))
	sds := make([]*metrics.SlowdownAccumulator, len(utils))
	for i, util := range utils {
		totalRate, err := workload.CalibrateTotalRate(
			[]float64{mean(lowDur), mean(highDur)}, []float64{0.9, 0.1}, util)
		if err != nil {
			return nil, err
		}
		rates, err := workload.MixFromRatio(setup.ratio, totalRate)
		if err != nil {
			return nil, err
		}
		sds[i] = metrics.NewSlowdownAccumulator(2, scale.Jobs, scale.WarmupFraction)
		scs[i] = scenario{
			name: fmt.Sprintf("P@%.0f%%", 100*util), policy: core.PolicyP(2),
			rates: rates, jobs: []*engine.Job{lowJob, highJob},
			cost: cost, cluster: cluCfg, scale: scale,
			observe: sds[i].Add,
		}
	}
	results, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}
	out := &MotivationResult{}
	for i, util := range utils {
		res := results[i]
		sd := sds[i].Classes()
		out.Rows = append(out.Rows, MotivationRow{
			Util:         util,
			LowSlowdown:  sd[0].MeanSlowdown,
			HighSlowdown: sd[1].MeanSlowdown,
			Ratio:        metrics.SlowdownRatio(sd),
			WastePct:     res.ResourceWastePct,
			Evictions:    res.PerClass[0].Evictions,
		})
	}
	return out, nil
}
