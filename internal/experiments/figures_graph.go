package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"dias/internal/analytics"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/metrics"
	"dias/internal/workload"
)

// graphJob builds a triangle-count job over a synthetic scale-free graph.
func graphJob(name string, seed int64, nodes, edgesPerNode, parts, buckets int, size int64) (*engine.Job, error) {
	rng := rand.New(rand.NewSource(seed))
	edges, err := workload.SynthesizeGraph(rng, workload.GraphConfig{Nodes: nodes, EdgesPerNode: edgesPerNode})
	if err != nil {
		return nil, err
	}
	return analytics.TriangleCountJob(name, analytics.EdgeDataset(edges, parts), buckets, size), nil
}

// perStageDrops builds the drop vector for triangle count: theta on every
// ShuffleMap stage, none on the Result stage (§5.2.4).
func perStageDrops(theta float64) []float64 {
	return []float64{theta, theta, theta, theta, theta, theta}
}

// --- Figure 10: differential approximation on triangle count ---------------

// Figure10 runs P, NP and DA with per-stage drop ratios {1,2,5,10,20}% on
// low-priority triangle-count jobs (§5.2.4). Both classes run the same
// graph; arrivals 9:1 low:high at 80% load.
func Figure10(scale Scale) (*ComparisonFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := graphCostModel()
	cluCfg := cluster.DefaultConfig()
	// 100 input partitions / shuffle buckets so a 1% stage drop removes a
	// task; the paper's graph is ~1000x larger with the same shape.
	job, err := graphJob("tc", scale.Seed+51, 300, 3, 100, 100, 750<<20)
	if err != nil {
		return nil, err
	}
	durs, _, err := profileSolo(job, nil, cost, cluCfg, 2, scale.Seed+52)
	if err != nil {
		return nil, err
	}
	exec := mean(durs)
	totalRate, err := workload.CalibrateTotalRate([]float64{exec, exec}, []float64{0.9, 0.1}, 0.8)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio([]float64{9, 1}, totalRate)
	if err != nil {
		return nil, err
	}
	jobs := []*engine.Job{job, job}
	policies := []struct {
		name   string
		policy core.Config
	}{
		{"P", core.PolicyP(2)},
		{"NP", core.PolicyNP(2)},
	}
	for _, pct := range []float64{1, 2, 5, 10, 20} {
		policies = append(policies, struct {
			name   string
			policy core.Config
		}{
			name: fmt.Sprintf("DA(0,%g)", pct),
			policy: core.Config{
				Classes:    2,
				DropRatios: [][]float64{perStageDrops(pct / 100), nil},
			},
		})
	}
	scs := make([]scenario, len(policies))
	for i, p := range policies {
		scs[i] = scenario{
			name: p.name, policy: p.policy, rates: rates,
			jobs: jobs, cost: cost, cluster: cluCfg, scale: scale,
		}
	}
	results, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &ComparisonFigure{
		Title:    "Figure 10: differential approximation on triangle count",
		Baseline: results[0],
		Others:   results[1:],
	}, nil
}

// --- Figure 11 + Table 2: full DiAS -----------------------------------------

// Figure11Result bundles the full-DiAS evaluation (§5.3): latency under
// limited and unlimited sprinting budgets, the energy comparison, and the
// sprinted non-preemptive run used by Table 2.
type Figure11Result struct {
	// Limited holds P (baseline), DiAS(0,10) and DiAS(0,20) under the
	// limited (22 kJ) sprinting budget.
	Limited *ComparisonFigure
	// Unlimited holds the same policies with an unbounded budget.
	Unlimited *ComparisonFigure
	// NPS is sprinted non-preemptive scheduling without approximation.
	NPS metrics.ScenarioResult
}

// Table2 renders the paper's Table 2: queueing/execution decomposition of
// NPS, DiAS(0,10) and DiAS(0,20) under limited sprinting.
func (r *Figure11Result) Table2() string {
	rows := append([]metrics.ScenarioResult{r.NPS}, r.Limited.Others...)
	return "Table 2: queue/execution decomposition (limited sprinting)\n" +
		metrics.FormatDecompositionTable(rows...)
}

// EnergyTable renders Figure 11(c): energy relative to P.
func (r *Figure11Result) EnergyTable() string {
	out := "Figure 11c: energy vs P\n"
	for _, fig := range []*ComparisonFigure{r.Limited, r.Unlimited} {
		for _, c := range fig.Comparisons() {
			out += fmt.Sprintf("  %-22s %+6.1f%%\n", fig.Title+" "+c.Name, c.EnergyDiffPct)
		}
	}
	return out
}

// String renders all parts.
func (r *Figure11Result) String() string {
	return r.Limited.String() + "\n" + r.Unlimited.String() + "\n" + r.EnergyTable() + "\n" + r.Table2()
}

// Figure11 runs the complete DiAS design on triangle count: high and low
// priorities of the same job size at ratio 3:7, high-priority jobs
// sprinted (limited budget: after a timeout at 65% of solo execution,
// 22 kJ at 900 W drain, 90 W replenish; unlimited: from dispatch).
func Figure11(scale Scale) (*Figure11Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := graphCostModel()
	cluCfg := cluster.DefaultConfig()
	job, err := graphJob("tc", scale.Seed+61, 300, 3, 60, 60, 600<<20)
	if err != nil {
		return nil, err
	}
	durs, _, err := profileSolo(job, nil, cost, cluCfg, 2, scale.Seed+62)
	if err != nil {
		return nil, err
	}
	exec := mean(durs)
	totalRate, err := workload.CalibrateTotalRate([]float64{exec, exec}, []float64{0.7, 0.3}, 0.8)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio([]float64{7, 3}, totalRate)
	if err != nil {
		return nil, err
	}
	jobs := []*engine.Job{job, job}

	limitedSprint := func() *core.SprintPolicy {
		return &core.SprintPolicy{
			TimeoutSec:     []float64{-1, 0.65 * exec},
			BudgetJoules:   22000,
			DrainWatts:     900,
			ReplenishWatts: 90,
		}
	}
	unlimitedSprint := func() *core.SprintPolicy {
		return &core.SprintPolicy{
			TimeoutSec:   []float64{-1, 0},
			BudgetJoules: math.Inf(1),
		}
	}
	mkDiAS := func(theta float64, sprint *core.SprintPolicy) core.Config {
		cfg := core.PolicyDA([]float64{theta, 0})
		cfg.Sprint = sprint
		return cfg
	}

	npsCfg := core.PolicyNP(2)
	npsCfg.Sprint = limitedSprint()
	// All six runs (P, NPS, limited/unlimited DiAS at θ=0.1/0.2) are
	// independent; fan them out as one grid. Each scenario carries its own
	// SprintPolicy instance, so concurrent runs share no budget state.
	mk := func(name string, policy core.Config) scenario {
		return scenario{
			name: name, policy: policy, rates: rates,
			jobs: jobs, cost: cost, cluster: cluCfg, scale: scale,
		}
	}
	results, err := runScenarios([]scenario{
		mk("P", core.PolicyP(2)),
		mk("NPS", npsCfg),
		mk("DiAS(0,10)", mkDiAS(0.1, limitedSprint())),
		mk("DiAS(0,20)", mkDiAS(0.2, limitedSprint())),
		mk("DiAS(0,10)", mkDiAS(0.1, unlimitedSprint())),
		mk("DiAS(0,20)", mkDiAS(0.2, unlimitedSprint())),
	})
	if err != nil {
		return nil, err
	}
	baseline, nps := results[0], results[1]
	return &Figure11Result{
		Limited: &ComparisonFigure{
			Title:    "Figure 11a: full DiAS, limited sprinting",
			Baseline: baseline,
			Others:   []metrics.ScenarioResult{results[2], results[3]},
		},
		Unlimited: &ComparisonFigure{
			Title:    "Figure 11b: full DiAS, unlimited sprinting",
			Baseline: baseline,
			Others:   []metrics.ScenarioResult{results[4], results[5]},
		},
		NPS: nps,
	}, nil
}
