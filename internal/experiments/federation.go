package experiments

// Federation experiments: the paper's DiAS scheduler is a single-server
// system — one job in the engine at a time — so serving more traffic means
// sharding the arrival stream across many such stacks. These drivers
// measure how that scale-out behaves: latency/waste/energy versus cluster
// count under each routing policy (FederationScaleOut), and how the
// policies cope when the member clusters differ in size and sprint
// capability (FederationHeterogeneous). Every run carries the
// cross-cluster data model, so policies that ignore data placement pay
// WAN input fetches that DataLocal avoids.

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"dias/internal/admission"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/dfs"
	"dias/internal/engine"
	"dias/internal/federation"
	"dias/internal/metrics"
	"dias/internal/runner"
	"dias/internal/telemetry"
	"dias/internal/workload"
)

// fedPolicyFactory builds a fresh routing-policy instance per scenario run
// (policies are stateful: cursors, RNGs).
type fedPolicyFactory struct {
	name string
	make func(seed int64) federation.RoutingPolicy
}

// federationPolicySet is the routing-policy grid the federation figures
// compare.
func federationPolicySet() []fedPolicyFactory {
	return []fedPolicyFactory{
		{"Random", federation.NewRandom},
		{"RoundRobin", func(int64) federation.RoutingPolicy { return federation.NewRoundRobin() }},
		{"JSQ", func(int64) federation.RoutingPolicy { return federation.NewJoinShortestQueue() }},
		{"LeastLoaded", func(int64) federation.RoutingPolicy { return federation.NewLeastLoaded() }},
		{"SprintAware", func(int64) federation.RoutingPolicy { return federation.NewSprintAware() }},
		{"DataLocal", func(int64) federation.RoutingPolicy { return federation.NewDataLocal(4) }},
	}
}

// federationPolicy is the per-member scheduling discipline of the
// federation figures: the full DiAS system, DA(0,20) plus sprinting under
// a finite replenishing budget, so routing policies differentiate on
// latency, waste and sprint-energy state alike.
func federationPolicy() core.Config {
	return core.PolicyDiAS([]float64{0.2, 0}, core.SprintPolicy{
		TimeoutSec:     []float64{60, 0},
		BudgetJoules:   22e3,
		DrainWatts:     900,
		ReplenishWatts: 90,
	})
}

// fedVariants shallow-clones a job template into n data-home variants:
// same input dataset and stages, distinct name and dfs path, so each
// variant can live on a different member cluster.
func fedVariants(base *engine.Job, n int) []*engine.Job {
	out := make([]*engine.Job, n)
	for v := 0; v < n; v++ {
		clone := *base
		clone.Name = fmt.Sprintf("%s-%d", base.Name, v)
		clone.InputPath = fmt.Sprintf("/fed/%s-%d", base.Name, v)
		out[v] = &clone
	}
	return out
}

// variantSource serves a uniformly random data-home variant of the class
// template per arrival.
type variantSource [][]*engine.Job

func (s variantSource) Job(rng *rand.Rand, class int) (*engine.Job, error) {
	if class < 0 || class >= len(s) {
		return nil, fmt.Errorf("experiments: class %d out of range %d", class, len(s))
	}
	v := s[class]
	return v[rng.Intn(len(v))], nil
}

func (s variantSource) Classes() int { return len(s) }

// fedScenario is one routing policy on one federation layout.
type fedScenario struct {
	name    string
	members []federation.MemberSpec
	policy  fedPolicyFactory
	rates   []float64
	// variants[k] holds class k's data-home variants; variant v is homed
	// on member v % len(members).
	variants variantSource
	scale    Scale
	// outages lists cluster-level outages scheduled on the virtual
	// timeline before the run (the routing stressor: in-flight work on the
	// member re-executes after recovery, arrivals route around it).
	outages []memberOutage
	// admit, when non-nil, is the per-member admission-policy factory
	// (federation.Config.Admission): members shed or spill arrivals
	// instead of buffering unconditionally.
	admit func() admission.Policy
	// arrivals, when non-nil, builds the run's arrival process from the
	// per-class rates (nil means the Poisson mix) — the burstiness knob:
	// Gamma/MMPP at the same rates offer the same mean load with
	// different clumping.
	arrivals func(rates []float64) (workload.Process, error)
	// bounded switches the accumulators to the strictly O(classes)
	// variant (no retained response samples; P95 from the log histogram),
	// required for million-job streaming cells.
	bounded bool
	// measureWall stamps the machine-dependent SimJobsPerWallSec
	// throughput into the result. Off by default so scenario results stay
	// comparable with reflect.DeepEqual across repeated runs (the
	// worker-invariance tests); only the scale driver turns it on.
	measureWall bool
}

// memberOutage is one scheduled cluster-level outage.
type memberOutage struct {
	member      int
	atSec       float64
	durationSec float64
}

// run executes the federated scenario to completion, streaming records
// into per-cluster and federation-wide accumulators.
func (sc fedScenario) run() (metrics.FederationScenarioResult, error) {
	if err := sc.scale.validate(); err != nil {
		return metrics.FederationScenarioResult{}, err
	}
	classes := len(sc.rates)
	newAcc := metrics.NewFederationAccumulator
	if sc.bounded {
		newAcc = metrics.NewBoundedFederationAccumulator
	}
	acc := newAcc(len(sc.members), classes, sc.scale.Jobs, sc.scale.WarmupFraction)
	data := dfs.DefaultConfig()
	var col *telemetry.Collector
	if sc.scale.Telemetry != nil {
		col = sc.scale.Telemetry.Collector(sc.name)
	}
	fed, err := federation.New(federation.Config{
		Members:        sc.members,
		Policy:         federationPolicy(),
		Routing:        sc.policy.make(sc.scale.Seed + 17),
		Admission:      sc.admit,
		Data:           &data,
		Seed:           sc.scale.Seed,
		OnRecord:       acc.Add,
		DiscardRecords: true,
		Telemetry:      col,
		SimWorkers:     sc.scale.SimWorkers,
	})
	if err != nil {
		return metrics.FederationScenarioResult{}, err
	}
	for _, vars := range sc.variants {
		for v, job := range vars {
			if err := fed.RegisterInput(job, v%len(sc.members)); err != nil {
				return metrics.FederationScenarioResult{}, err
			}
		}
	}
	for _, o := range sc.outages {
		if err := fed.ScheduleOutage(o.member, o.atSec, o.durationSec); err != nil {
			return metrics.FederationScenarioResult{}, err
		}
	}
	makeProc := sc.arrivals
	if makeProc == nil {
		makeProc = func(rates []float64) (workload.Process, error) { return workload.NewPoissonMix(rates) }
	}
	proc, err := makeProc(sc.rates)
	if err != nil {
		return metrics.FederationScenarioResult{}, err
	}
	if err := fed.SubmitStream(proc, sc.variants, sc.scale.Jobs, sc.scale.Seed+7); err != nil {
		return metrics.FederationScenarioResult{}, err
	}
	// Wall-clock brackets the whole drain: arrivals are feed-forward
	// injected during Run, so this measures end-to-end simulation
	// throughput (machine-dependent — reported in the benchmark JSON,
	// never rendered into deterministic figure text).
	start := time.Now()
	fed.Run()
	wallSec := time.Since(start).Seconds()

	makespan := fed.Sim().Now().Seconds()
	routed := fed.Routed()
	res := metrics.FederationScenarioResult{Name: sc.name}
	var totalBusy, totalWaste, totalEnergy float64
	for i, m := range fed.Members() {
		busy := m.Cluster.BusySlotSeconds()
		waste := m.Engine.WastedSlotSeconds()
		energy := m.Cluster.EnergyJoules()
		totalBusy += busy
		totalWaste += waste
		totalEnergy += energy
		cr := metrics.ClusterResult{
			Name:         m.Name,
			RoutedJobs:   routed[i],
			PerClass:     acc.ClusterClasses(i),
			EnergyJoules: energy,
		}
		if busy > 0 {
			cr.ResourceWastePct = 100 * waste / busy
		}
		if capacity := float64(m.Cluster.Slots()) * makespan; capacity > 0 {
			cr.UtilizationPct = 100 * busy / capacity
		}
		res.PerCluster = append(res.PerCluster, cr)
	}
	res.Overall = metrics.ScenarioResult{
		Name:             sc.name,
		PerClass:         acc.OverallClasses(),
		EnergyJoules:     totalEnergy,
		MakespanSec:      makespan,
		PeakInFlightJobs: fed.PeakInFlight(),
	}
	if sc.measureWall && wallSec > 0 {
		res.Overall.SimJobsPerWallSec = float64(sc.scale.Jobs) / wallSec
	}
	if totalBusy > 0 {
		res.Overall.ResourceWastePct = 100 * totalWaste / totalBusy
	}
	res.Overall.FillOverload()
	return res, nil
}

// runFedScenarios fans independent federation runs across the scale's
// worker pool, returning results in input order (bit-identical at any
// worker count: every run owns its whole federation and RNGs).
func runFedScenarios(scs []fedScenario) ([]metrics.FederationScenarioResult, error) {
	if len(scs) == 0 {
		return nil, nil
	}
	tasks := make([]runner.Task[metrics.FederationScenarioResult], len(scs))
	for i := range scs {
		sc := scs[i]
		tasks[i] = func(context.Context) (metrics.FederationScenarioResult, error) {
			res, err := sc.run()
			if err != nil {
				return metrics.FederationScenarioResult{}, fmt.Errorf("%s: %w", sc.name, err)
			}
			return res, nil
		}
	}
	return runner.Map(context.Background(), scs[0].scale.pool(), tasks)
}

// FederationFigure is the output shape of the federation experiments: one
// rollup per (policy, layout) cell.
type FederationFigure struct {
	Title string
	Rows  []metrics.FederationScenarioResult
}

// String renders every cell's overall and per-cluster lines.
func (f *FederationFigure) String() string {
	s := f.Title + "\n"
	for _, r := range f.Rows {
		s += metrics.FormatFederationTable(r)
	}
	return s
}

// Scenarios returns the federation-wide rollups, the rows the benchmark
// report aggregates.
func (f *FederationFigure) Scenarios() []metrics.ScenarioResult {
	out := make([]metrics.ScenarioResult, len(f.Rows))
	for i, r := range f.Rows {
		out[i] = r.Overall
	}
	return out
}

// fedWorkload profiles the two-class reference text jobs once and returns
// the variant sets plus the per-class rates that load ONE default cluster
// at the given utilization; callers scale rates by the federation's
// capacity factor.
func fedWorkload(scale Scale, variants int, util float64) (variantSource, []float64, error) {
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	setup := referenceSetup()
	lowJob, err := textJob("low", scale.Seed+161, setup.lowPosts, setup.lowSize)
	if err != nil {
		return nil, nil, err
	}
	highJob, err := textJob("high", scale.Seed+162, setup.highPosts, setup.highSize)
	if err != nil {
		return nil, nil, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, cluCfg, 3, scale.Seed+163)
	if err != nil {
		return nil, nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, scale.Seed+164)
	if err != nil {
		return nil, nil, err
	}
	totalRate, err := workload.CalibrateTotalRate(
		[]float64{mean(lowDur), mean(highDur)}, []float64{0.9, 0.1}, util)
	if err != nil {
		return nil, nil, err
	}
	rates, err := workload.MixFromRatio(setup.ratio, totalRate)
	if err != nil {
		return nil, nil, err
	}
	return variantSource{fedVariants(lowJob, variants), fedVariants(highJob, variants)}, rates, nil
}

// scaleRates multiplies per-class rates by a capacity factor.
func scaleRates(rates []float64, factor float64) []float64 {
	out := make([]float64, len(rates))
	for i, r := range rates {
		out[i] = r * factor
	}
	return out
}

// capacityFactor is a federation's slot count relative to one default
// cluster, the factor the arrival rate scales by to hold per-slot load
// constant as the federation grows.
func capacityFactor(members []federation.MemberSpec) float64 {
	def := cluster.DefaultConfig()
	defSlots := def.Nodes * def.CoresPerNode
	var slots int
	for _, m := range members {
		c := m.Cluster
		if c.Nodes == 0 {
			c = def
		}
		slots += c.Nodes * c.CoresPerNode
	}
	return float64(slots) / float64(defSlots)
}

// homogeneousMembers builds n default-testbed member specs running the
// text cost model.
func homogeneousMembers(n int) []federation.MemberSpec {
	out := make([]federation.MemberSpec, n)
	for i := range out {
		out[i] = federation.MemberSpec{Cost: textCostModel()}
	}
	return out
}

// FederationScaleOutClusterCounts is the cluster-count axis of the
// scale-out figure.
var FederationScaleOutClusterCounts = []int{1, 2, 4, 8}

// FederationScaleOut measures federated DiAS as the cluster count grows:
// for each (routing policy, cluster count) cell the arrival rate scales
// with the number of clusters so per-cluster nominal load stays at 70%,
// and data homes spread round-robin across members. Expected shape:
// backlog-aware policies (JSQ, LeastLoaded, SprintAware) hold per-class
// latency roughly flat as the federation grows, while Random/RoundRobin
// degrade under momentary imbalance; DataLocal trades queueing for WAN
// savings, winning only while its home clusters are not hotspots.
func FederationScaleOut(scale Scale) (*FederationFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	maxClusters := 0
	for _, n := range FederationScaleOutClusterCounts {
		if n > maxClusters {
			maxClusters = n
		}
	}
	variants, rates, err := fedWorkload(scale, maxClusters, 0.7)
	if err != nil {
		return nil, err
	}
	var scs []fedScenario
	for _, p := range federationPolicySet() {
		for _, n := range FederationScaleOutClusterCounts {
			members := homogeneousMembers(n)
			scs = append(scs, fedScenario{
				name:     fmt.Sprintf("%s/%d", p.name, n),
				members:  members,
				policy:   p,
				rates:    scaleRates(rates, capacityFactor(members)),
				variants: variants,
				scale:    scale,
			})
		}
	}
	rows, err := runFedScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &FederationFigure{
		Title: "Federation scale-out: routing policy x cluster count (70% per-cluster load, WAN input penalty)",
		Rows:  rows,
	}, nil
}

// FederationHeterogeneous compares the routing policies on a mixed
// federation: two paper-testbed clusters plus two small clusters with
// 4 nodes and a weaker sprint (2x instead of 2.5x). Expected shape:
// policies blind to capacity (Random, RoundRobin) overload the small
// members; utilization-normalized LeastLoaded and backlog-aware JSQ
// spread proportionally; SprintAware additionally steers work toward
// members with sprint budget left.
func FederationHeterogeneous(scale Scale) (*FederationFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	small := cluster.DefaultConfig()
	small.Nodes = 4
	small.SprintSpeedup = 2.0
	members := []federation.MemberSpec{
		{Name: "big0", Cost: textCostModel()},
		{Name: "big1", Cost: textCostModel()},
		{Name: "small0", Cluster: small, Cost: textCostModel()},
		{Name: "small1", Cluster: small, Cost: textCostModel()},
	}
	variants, rates, err := fedWorkload(scale, len(members), 0.6)
	if err != nil {
		return nil, err
	}
	var scs []fedScenario
	for _, p := range federationPolicySet() {
		scs = append(scs, fedScenario{
			name:     p.name + "/2big+2small",
			members:  members,
			policy:   p,
			rates:    scaleRates(rates, capacityFactor(members)),
			variants: variants,
			scale:    scale,
		})
	}
	rows, err := runFedScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &FederationFigure{
		Title: "Federation heterogeneous: 2 big + 2 small clusters (60% nominal load, WAN input penalty)",
		Rows:  rows,
	}, nil
}

// FederationOutage stresses every routing policy with cluster-level
// outages on a 4-member federation at 70% nominal load: member 0 goes
// dark for ~12% of the arrival window early in the run and member 1 for
// ~8% later. During an outage the dispatcher routes around the dark
// member (its in-flight tasks re-execute after recovery, jobs already
// buffered on it wait), so the policy ranking measures how gracefully
// each one absorbs a 25%-capacity loss: backlog- and load-aware policies
// should spread the refugee traffic, while Random/RoundRobin merely
// shrink their rotation, and DataLocal pays WAN fetches for every job
// whose home is dark.
func FederationOutage(scale Scale) (*FederationFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	const clusters = 4
	members := homogeneousMembers(clusters)
	variants, rates, err := fedWorkload(scale, clusters, 0.7)
	if err != nil {
		return nil, err
	}
	scaled := scaleRates(rates, capacityFactor(members))
	// Outage windows sized relative to the expected arrival span, so the
	// stressor scales with -jobs.
	var totalRate float64
	for _, r := range scaled {
		totalRate += r
	}
	span := float64(scale.Jobs) / totalRate
	outages := []memberOutage{
		{member: 0, atSec: 0.25 * span, durationSec: 0.12 * span},
		{member: 1, atSec: 0.60 * span, durationSec: 0.08 * span},
	}
	var scs []fedScenario
	for _, p := range federationPolicySet() {
		scs = append(scs, fedScenario{
			name:     p.name + "/outage",
			members:  members,
			policy:   p,
			rates:    scaled,
			variants: variants,
			scale:    scale,
			outages:  outages,
		})
	}
	rows, err := runFedScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &FederationFigure{
		Title: "Federation outage: 4 clusters, member 0 then member 1 dark (routing-policy stressor)",
		Rows:  rows,
	}, nil
}
