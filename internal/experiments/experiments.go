// Package experiments regenerates every table and figure of the paper's
// evaluation (§4.3 validation and §5): each FigureN function configures
// the workload, runs the simulated stack under the paper's policies, and
// returns the rows/series the paper plots. DESIGN.md maps each experiment
// to its modules; EXPERIMENTS.md records paper-vs-measured outcomes.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"dias/internal/admission"
	"dias/internal/analytics"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/faults"
	"dias/internal/metrics"
	"dias/internal/runner"
	"dias/internal/simtime"
	"dias/internal/telemetry"
	"dias/internal/workload"
)

// Scale sizes an experiment run. Quick keeps benchmarks fast; Full is for
// the dias-experiments CLI.
type Scale struct {
	// Jobs is the number of arrivals per scenario.
	Jobs int
	// WarmupFraction of completions excluded from statistics.
	WarmupFraction float64
	// Seed drives every RNG in the experiment.
	Seed int64
	// Workers bounds the concurrency of the independent simulation runs
	// inside one figure; 0 uses one worker per CPU core. Results are
	// bit-identical at any worker count because every run seeds its own
	// RNGs and owns its whole simulated stack.
	Workers int
	// Telemetry, when non-nil, traces every scenario in the figure: each
	// run gets a collector named after the scenario (spans, routing
	// decisions, periodic gauges). Tracing is observational only — figure
	// results are byte-identical with or without it.
	Telemetry *telemetry.Registry
	// SimWorkers > 1 runs each federation simulation on the conservative
	// parallel kernel with that many goroutines (federation.Config.
	// SimWorkers); 0 or 1 uses the serial kernel. Orthogonal to Workers:
	// Workers parallelizes across independent runs, SimWorkers inside
	// one run. Figure results are byte-identical at any setting — only
	// wall-clock changes. Single-cluster scenarios ignore it.
	SimWorkers int
}

// QuickScale is sized for go test / benchmarks.
func QuickScale() Scale { return Scale{Jobs: 200, WarmupFraction: 0.1, Seed: 1} }

// FullScale is sized for the CLI and EXPERIMENTS.md numbers.
func FullScale() Scale { return Scale{Jobs: 900, WarmupFraction: 0.1, Seed: 1} }

func (s Scale) validate() error {
	if s.Jobs < 10 {
		return fmt.Errorf("experiments: %d jobs is too few", s.Jobs)
	}
	if s.WarmupFraction < 0 || s.WarmupFraction >= 1 {
		return fmt.Errorf("experiments: warmup fraction %g", s.WarmupFraction)
	}
	if s.Workers < 0 {
		return fmt.Errorf("experiments: %d workers", s.Workers)
	}
	if s.SimWorkers < 0 {
		return fmt.Errorf("experiments: %d sim workers", s.SimWorkers)
	}
	return nil
}

// pool builds the worker pool a figure uses to fan out its run grid.
func (s Scale) pool() *runner.Pool { return runner.New(s.Workers) }

// textCostModel calibrates the cost model so text jobs land in the tens of
// seconds at base frequency, paper-like shape: map-heavy stages, size-
// dependent setup overhead, small serial shuffle.
func textCostModel() engine.CostModel {
	return engine.CostModel{
		TaskOverheadSec:     0.3,
		PerRecordSec:        0.1, // map stage: per post parsed
		SetupBaseSec:        2,
		SetupPerByte:        3e-9,
		ShuffleBaseSec:      1,
		ShufflePerRecordSec: 1e-4,
		NoiseSigma:          0.06,
	}
}

// reducePerRecordSec prices reduce-stage records (word-count pairs).
const reducePerRecordSec = 0.002

// graphCostModel calibrates triangle-count jobs.
func graphCostModel() engine.CostModel {
	return engine.CostModel{
		TaskOverheadSec:     0.25,
		PerRecordSec:        0.004,
		SetupBaseSec:        2,
		SetupPerByte:        3e-9,
		ShuffleBaseSec:      0.5,
		ShufflePerRecordSec: 2e-5,
		NoiseSigma:          0.06,
	}
}

// textJob builds a word-popularity job over a synthetic corpus.
func textJob(name string, seed int64, posts int, sizeBytes int64) (*engine.Job, error) {
	cfg := workload.DefaultCorpusConfig()
	cfg.PostsPerPartition = posts
	cfg.VocabSize = 800
	cfg.TopicVocab = 40
	rng := rand.New(rand.NewSource(seed))
	corpus, err := workload.SynthesizeCorpus(rng, cfg)
	if err != nil {
		return nil, err
	}
	job := wordJobFromCorpus(name, corpus, sizeBytes)
	return job, nil
}

// wordJobFromCorpus wires the analytics word-count stages with stage-
// specific per-record costs.
func wordJobFromCorpus(name string, corpus engine.Dataset, sizeBytes int64) *engine.Job {
	job := analytics.WordPopularityJob(name, corpus, 10, sizeBytes)
	job.Stages[1].PerRecordSec = reducePerRecordSec
	return job
}

// scenario is one policy run over one workload.
type scenario struct {
	name    string
	policy  core.Config
	rates   []float64     // per-class Poisson rates (when proc is nil)
	jobs    []*engine.Job // per-class job template (when source is nil)
	cost    engine.CostModel
	cluster cluster.Config
	scale   Scale
	// proc overrides the default Poisson mix built from rates (e.g. an
	// MMAP source for bursty traffic or a trace replay).
	proc workload.Process
	// source overrides the fixed per-class templates (e.g. variable task
	// counts per arrival).
	source workload.JobSource
	// failures, when non-nil, arms random node fail/repair cycles across
	// the arrival window (HorizonSec is filled in from the stream).
	failures *engine.FailureConfig
	// faultPlan, when non-nil, arms the internal/faults injection layer:
	// node churn (stochastic or trace-driven), per-task failures with
	// bounded retries, stragglers. A zero stochastic-churn horizon is
	// filled from the arrival window; a zero seed derives from the
	// scenario seed.
	faultPlan *faults.Config
	// autoscale, when non-nil, drives elastic capacity through a
	// core.Autoscaler (a zero horizon is filled from the arrival window).
	autoscale *core.AutoscalerConfig
	// deflator, when non-nil, builds a dynamic deflator bound to the
	// scenario's simulation and installs it into the policy (the policy
	// must then carry no static DropRatios).
	deflator func(sim *simtime.Simulation) (core.Deflator, error)
	// observe, when non-nil, receives every completed-job record as it
	// streams out of the scheduler — the hook for analyses beyond the
	// standard aggregates (e.g. slowdown accumulators). The scheduler
	// never materializes a record slice.
	observe func(core.JobRecord)
	// admit, when non-nil, builds a fresh admission policy for this run
	// (policies are stateful, so scenarios never share instances) and
	// installs it into the policy config. Deferred arrivals degrade to
	// rejections on a single stack — there is nowhere to re-route.
	admit func() admission.Policy
}

// run executes the scenario to completion, streaming completed-job
// records into per-class accumulators. No per-job record slice is ever
// materialized: scheduler memory stays O(classes) plus the retained
// response-time samples needed for percentiles.
func (sc scenario) run() (metrics.ScenarioResult, error) {
	if err := sc.scale.validate(); err != nil {
		return metrics.ScenarioResult{}, err
	}
	if sc.proc == nil && len(sc.rates) != sc.policy.Classes {
		return metrics.ScenarioResult{}, errors.New("experiments: rate/class count mismatch")
	}
	if sc.source == nil && len(sc.jobs) != sc.policy.Classes {
		return metrics.ScenarioResult{}, errors.New("experiments: job/class count mismatch")
	}
	sim := simtime.New()
	clu, err := cluster.New(sim, sc.cluster)
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	eng, err := engine.New(sim, clu, nil, sc.cost, sc.scale.Seed)
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	policy := sc.policy
	if sc.admit != nil {
		policy.Admission = sc.admit()
	}
	if sc.deflator != nil {
		d, err := sc.deflator(sim)
		if err != nil {
			return metrics.ScenarioResult{}, fmt.Errorf("building deflator: %w", err)
		}
		policy.Deflator = d
	}
	// Stream records straight into the accumulator (every arrival
	// completes or fails, so the expected record count is the arrival
	// count). The autoscaler, when armed below, taps the same stream.
	acc := metrics.NewAccumulator(sc.policy.Classes, sc.scale.Jobs, sc.scale.WarmupFraction)
	policy.DiscardRecords = true
	var as *core.Autoscaler
	obs := sc.observe
	policy.OnRecord = func(r core.JobRecord) {
		acc.Add(r)
		if obs != nil {
			obs(r)
		}
		if as != nil {
			as.Observe(r)
		}
	}
	var col *telemetry.Collector
	if sc.scale.Telemetry != nil {
		col = sc.scale.Telemetry.Collector(sc.name)
		tr := col.Member(0)
		policy.Tracer = tr
		eng.SetTracer(tr)
	}
	sch, err := core.New(sim, clu, eng, policy)
	if err != nil {
		return metrics.ScenarioResult{}, err
	}
	proc := sc.proc
	if proc == nil {
		pm, err := workload.NewPoissonMix(sc.rates)
		if err != nil {
			return metrics.ScenarioResult{}, err
		}
		proc = pm
	}
	source := sc.source
	if source == nil {
		source = workload.FixedJobs(sc.jobs)
	}
	arrRng := rand.New(rand.NewSource(sc.scale.Seed + 7))
	jobRng := rand.New(rand.NewSource(sc.scale.Seed + 13))
	arrivals := workload.StreamOf(proc, arrRng, sc.scale.Jobs)
	// The injection/scaling horizon covers the whole arrival window plus
	// drain slack, so the event queue always drains.
	horizon := arrivals[len(arrivals)-1].At*1.1 + 300
	if sc.failures != nil {
		fcfg := *sc.failures
		if fcfg.HorizonSec == 0 {
			fcfg.HorizonSec = horizon
		}
		if _, err := engine.NewFailureInjector(sim, eng, fcfg); err != nil {
			return metrics.ScenarioResult{}, fmt.Errorf("arming failure injector: %w", err)
		}
	}
	if sc.faultPlan != nil {
		fp := *sc.faultPlan
		if fp.Seed == 0 {
			fp.Seed = sc.scale.Seed + 31
		}
		if fp.Churn != nil && len(fp.Churn.Outages) == 0 && fp.Churn.HorizonSec == 0 {
			ch := *fp.Churn
			ch.HorizonSec = horizon
			fp.Churn = &ch
		}
		if _, err := faults.Attach(sim, eng, fp); err != nil {
			return metrics.ScenarioResult{}, fmt.Errorf("arming fault plan: %w", err)
		}
	}
	if sc.autoscale != nil {
		ac := *sc.autoscale
		if ac.HorizonSec == 0 {
			ac.HorizonSec = horizon
		}
		var err error
		if as, err = core.NewAutoscaler(sim, clu, eng, sch, ac); err != nil {
			return metrics.ScenarioResult{}, fmt.Errorf("arming autoscaler: %w", err)
		}
	}
	var arriveErr error
	for _, a := range arrivals {
		a := a
		job, err := source.Job(jobRng, a.Class)
		if err != nil {
			return metrics.ScenarioResult{}, fmt.Errorf("building class-%d job: %w", a.Class, err)
		}
		sim.At(simtime.Time(a.At), func() {
			if err := sch.Arrive(a.Class, job); err != nil && arriveErr == nil {
				arriveErr = err
			}
		})
	}
	if col != nil {
		telemetry.NewSampler(col, []telemetry.MemberGauges{{
			Classes:       policy.Classes,
			QueuedInClass: sch.QueuedJobsInClass,
			Rejected:      sch.RejectedJobs,
			BusySlots:     clu.BusySlots,
			PoweredNodes:  clu.PoweredNodes,
			Utilization:   clu.Utilization,
		}}).Drive(sim)
	} else {
		sim.Run()
	}
	if arriveErr != nil {
		return metrics.ScenarioResult{}, arriveErr
	}
	res := metrics.ScenarioResult{
		Name:         sc.name,
		PerClass:     acc.Classes(),
		EnergyJoules: clu.EnergyJoules(),
		MakespanSec:  sim.Now().Seconds(),
		FailedJobs:   eng.FailedJobs(),
		TasksRetried: eng.TasksRetried(),
	}
	useful := clu.BusySlotSeconds() - eng.WastedSlotSeconds()
	if total := useful + eng.WastedSlotSeconds(); total > 0 {
		res.ResourceWastePct = 100 * eng.WastedSlotSeconds() / total
		res.FailureWastePct = 100 * eng.FailureLostSlotSeconds() / total
	}
	if res.MakespanSec > 0 {
		res.MeanPoweredNodes = clu.PoweredNodeSeconds() / res.MakespanSec
	}
	res.FillOverload()
	return res, nil
}

// runScenarios executes independent scenarios concurrently on the scale's
// worker pool, returning results in input order. Scenarios share only
// immutable state (job templates, policy configs, cost models), so the
// concurrent results are bit-identical to a serial loop.
func runScenarios(scs []scenario) ([]metrics.ScenarioResult, error) {
	if len(scs) == 0 {
		return nil, nil
	}
	tasks := make([]runner.Task[metrics.ScenarioResult], len(scs))
	for i := range scs {
		sc := scs[i]
		tasks[i] = func(context.Context) (metrics.ScenarioResult, error) {
			res, err := sc.run()
			if err != nil {
				return metrics.ScenarioResult{}, fmt.Errorf("%s: %w", sc.name, err)
			}
			return res, nil
		}
	}
	return runner.Map(context.Background(), scs[0].scale.pool(), tasks)
}

// profileSolo measures the solo execution time of a job under given drop
// ratios: it runs `runs` copies back to back on an idle stack and returns
// per-run durations plus the last run's full result (stage stats).
func profileSolo(job *engine.Job, drops []float64, cost engine.CostModel, cluCfg cluster.Config, runs int, seed int64) ([]float64, engine.JobResult, error) {
	sim := simtime.New()
	clu, err := cluster.New(sim, cluCfg)
	if err != nil {
		return nil, engine.JobResult{}, err
	}
	eng, err := engine.New(sim, clu, nil, cost, seed)
	if err != nil {
		return nil, engine.JobResult{}, err
	}
	durations := make([]float64, 0, runs)
	var last engine.JobResult
	for i := 0; i < runs; i++ {
		start := sim.Now()
		done := false
		_, err := eng.Submit(job, engine.SubmitOptions{
			DropRatios: drops,
			OnComplete: func(r engine.JobResult) {
				durations = append(durations, r.FinishedAt.Sub(start).Seconds())
				last = r
				done = true
			},
		})
		if err != nil {
			return nil, engine.JobResult{}, err
		}
		sim.Run()
		if !done {
			return nil, engine.JobResult{}, errors.New("experiments: profiling job did not complete")
		}
	}
	return durations, last, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ComparisonFigure is the common output shape of Figures 7-11: a
// preemptive baseline in absolute terms plus relative differences.
type ComparisonFigure struct {
	Title    string
	Baseline metrics.ScenarioResult
	Others   []metrics.ScenarioResult
}

// String renders the figure as the paper lays it out.
func (f *ComparisonFigure) String() string {
	return f.Title + "\n" + metrics.FormatComparisonTable(f.Baseline, f.Others...)
}

// Comparisons returns the relative-difference rows.
func (f *ComparisonFigure) Comparisons() []metrics.Comparison {
	return metrics.Compare(f.Baseline, f.Others...)
}
