package experiments

import (
	"reflect"
	"strings"
	"testing"
)

func overloadScale() Scale {
	s := Scale{Jobs: 40, WarmupFraction: 0, Seed: 5}
	if testing.Short() {
		s.Jobs = 24
	}
	return s
}

// TestOverloadFigure drives the sweep at small scale and checks its
// headline claims: per-row conservation, a non-zero rejection fraction for
// token-bucket at 3x, and a tail-latency win bought with that shed work.
func TestOverloadFigure(t *testing.T) {
	fig, err := Overload(overloadScale())
	if err != nil {
		t.Fatal(err)
	}
	// 4 admission policies x 4 loads on one stack + 3 federation rows.
	if got := len(fig.Rows); got != 19 {
		t.Fatalf("%d rows, want 19", got)
	}
	rows := make(map[string]int, len(fig.Rows))
	for i, r := range fig.Rows {
		rows[r.Name] = i
		var jobs, failed, rejected int
		for _, cs := range r.PerClass {
			jobs += cs.Jobs
			failed += cs.FailedJobs
			rejected += cs.RejectedJobs
		}
		// Conservation: every submission in every cell is exactly one of
		// completed, failed or rejected (federation rows shard the same
		// arrival count across their members).
		want := overloadScale().Jobs
		if jobs+failed+rejected != want {
			t.Errorf("%s: %d+%d+%d outcomes for %d submissions", r.Name, jobs, failed, rejected, want)
		}
		if r.RejectedJobs != rejected {
			t.Errorf("%s: RejectedJobs %d != per-class sum %d", r.Name, r.RejectedJobs, rejected)
		}
		if r.GoodputJobsPerSec <= 0 {
			t.Errorf("%s: goodput %g", r.Name, r.GoodputJobsPerSec)
		}
	}
	always, ok1 := rows["always/3.0x"]
	tb, ok2 := rows["token-bucket/3.0x"]
	if !ok1 || !ok2 {
		t.Fatalf("missing 3.0x rows in %v", fig.Rows)
	}
	if fig.Rows[tb].RejectedPct <= 0 {
		t.Error("token-bucket at 3x rejected nothing")
	}
	if fig.Rows[always].RejectedPct != 0 {
		t.Error("always-admit rejected work")
	}
	// The shed work must buy a low-class tail-latency win.
	lowP95 := func(i int) float64 {
		for _, cs := range fig.Rows[i].PerClass {
			if cs.Class == 0 {
				return cs.P95ResponseSec
			}
		}
		t.Fatalf("%s has no class-0 stats", fig.Rows[i].Name)
		return 0
	}
	if lowP95(tb) >= lowP95(always) {
		t.Errorf("token-bucket low P95 %.1fs not below always %.1fs at 3x", lowP95(tb), lowP95(always))
	}
	// P99 streams through the histogram; it must be present and ordered
	// against P95 on the overloaded admit-all row.
	for _, cs := range fig.Rows[always].PerClass {
		if cs.Jobs > 0 && cs.P99ResponseSec < cs.P95ResponseSec*0.95 {
			t.Errorf("%s class %d: P99 %.1fs below P95 %.1fs", fig.Rows[always].Name,
				cs.Class, cs.P99ResponseSec, cs.P95ResponseSec)
		}
	}
	if !strings.Contains(fig.String(), "Rejected") {
		t.Error("rendered table missing the rejected-work column")
	}
}

// TestOverloadWorkerCountInvariance: the sweep is bit-identical at any
// worker count, like every other grid.
func TestOverloadWorkerCountInvariance(t *testing.T) {
	serial := overloadScale()
	serial.Workers = 1
	parallel := overloadScale()
	parallel.Workers = 8
	want, err := Overload(serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Overload(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("overload grid differs between 1 and 8 workers:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

// TestDriverRegistry covers the self-registration surface the CLI runs on.
func TestDriverRegistry(t *testing.T) {
	names := DriverNames()
	if len(names) == 0 {
		t.Fatal("no registered drivers")
	}
	// The paper figures run first and the overload sweep is registered;
	// registration order is the CLI's run order.
	if names[0] != "motivation" {
		t.Errorf("first driver %q, want motivation", names[0])
	}
	seen := make(map[string]bool)
	for _, d := range Drivers() {
		if d.Description == "" {
			t.Errorf("driver %q has no description", d.Name)
		}
		if d.Run == nil {
			t.Errorf("driver %q has no run function", d.Name)
		}
		if seen[d.Name] {
			t.Errorf("driver %q listed twice", d.Name)
		}
		seen[d.Name] = true
	}
	for _, want := range []string{"7", "table2", "federation-scaleout", "overload"} {
		if _, ok := Lookup(want); !ok {
			t.Errorf("driver %q not registered", want)
		}
	}
	if d, _ := Lookup("table2"); !d.SkipInAll {
		t.Error("table2 must be excluded from -fig all")
	}
	if _, ok := Lookup("no-such-figure"); ok {
		t.Error("unknown name resolves")
	}
	// MaxJobs caps bite through Scaled and leave smaller scales alone.
	d, _ := Lookup("overload")
	if d.MaxJobs == 0 {
		t.Fatal("overload driver has no job cap")
	}
	if got := d.Scaled(Scale{Jobs: 10_000}).Jobs; got != d.MaxJobs {
		t.Errorf("Scaled left %d jobs above the %d cap", got, d.MaxJobs)
	}
	if got := d.Scaled(Scale{Jobs: 8}).Jobs; got != 8 {
		t.Errorf("Scaled changed an in-bounds scale to %d", got)
	}
	// Double registration is a programming error and must panic.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate Register did not panic")
			}
		}()
		Register("motivation", DriverMeta{}, func(Scale) (DriverOutput, error) {
			return DriverOutput{}, nil
		})
	}()
}
