package experiments

import (
	"math"
	"os"
	"testing"

	"dias/internal/federation"
	"dias/internal/metrics"
	"dias/internal/workload"
)

// streamScenario builds one bounded-memory 8-cluster streaming cell at
// 70% load with Gamma CV-3.5 arrivals — the bursty operating point that
// maximizes in-flight pressure on the streaming path.
func streamScenario(t *testing.T, jobs int, warmup float64, bounded bool) fedScenario {
	t.Helper()
	scale := Scale{Jobs: jobs, WarmupFraction: warmup, Seed: 1}
	variants, rates, err := fedWorkload(scale, scaleMembers, scaleUtilization)
	if err != nil {
		t.Fatal(err)
	}
	members := homogeneousMembers(scaleMembers)
	return fedScenario{
		name:    "stream-conservation",
		members: members,
		policy: fedPolicyFactory{"jsq", func(int64) federation.RoutingPolicy {
			return federation.NewJoinShortestQueue()
		}},
		rates:    scaleRates(rates, capacityFactor(members)),
		variants: variants,
		scale:    scale,
		arrivals: func(rates []float64) (workload.Process, error) {
			return workload.NewGamma(rates, scaleGammaCV)
		},
		bounded: bounded,
	}
}

// outcomes sums a result's per-class completed/failed/rejected counts.
func outcomes(res metrics.ScenarioResult) (completed, failed, rejected int) {
	for _, cs := range res.PerClass {
		completed += cs.Jobs
		failed += cs.FailedJobs
		rejected += cs.RejectedJobs
	}
	return
}

// Conservation on the streaming path: with warmup disabled, every
// injected job must surface as exactly one outcome — completed, failed
// or rejected — and the in-flight population must stay bounded far
// below the job count (the O(1)-memory claim, measured).
func TestStreamingConservation(t *testing.T) {
	jobs := 100000
	if testing.Short() {
		jobs = 3000
	}
	res, err := streamScenario(t, jobs, 0, true).run()
	if err != nil {
		t.Fatal(err)
	}
	completed, failed, rejected := outcomes(res.Overall)
	if total := completed + failed + rejected; total != jobs {
		t.Fatalf("conservation broken: %d outcomes (%d completed, %d failed, %d rejected) from %d arrivals",
			total, completed, failed, rejected, jobs)
	}
	peak := res.Overall.PeakInFlightJobs
	if peak <= 0 {
		t.Fatal("peak in-flight not tracked")
	}
	if peak > jobs/10 {
		t.Fatalf("peak in-flight %d of %d jobs: the stream is materializing, not bounded", peak, jobs)
	}
}

// The bounded accumulator must agree with the materialized oracle on
// the same run: identical counts, energy, makespan and P99 (same
// histograms), means to float tolerance, P95 within the documented
// <4.4% histogram bucket width.
func TestBoundedAccumulatorMatchesOracle(t *testing.T) {
	jobs := 10000
	if testing.Short() {
		jobs = 2000
	}
	bounded, err := streamScenario(t, jobs, 0.1, true).run()
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := streamScenario(t, jobs, 0.1, false).run()
	if err != nil {
		t.Fatal(err)
	}
	b, o := bounded.Overall, oracle.Overall
	if b.EnergyJoules != o.EnergyJoules || b.MakespanSec != o.MakespanSec {
		t.Fatalf("run divergence: energy %g vs %g, makespan %g vs %g",
			b.EnergyJoules, o.EnergyJoules, b.MakespanSec, o.MakespanSec)
	}
	if b.PeakInFlightJobs != o.PeakInFlightJobs {
		t.Fatalf("peak in-flight %d vs %d", b.PeakInFlightJobs, o.PeakInFlightJobs)
	}
	if len(b.PerClass) != len(o.PerClass) {
		t.Fatalf("%d classes vs %d", len(b.PerClass), len(o.PerClass))
	}
	relClose := func(a, b, tol float64) bool {
		if a == b {
			return true
		}
		return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
	}
	for k := range b.PerClass {
		bc, oc := b.PerClass[k], o.PerClass[k]
		if bc.Jobs != oc.Jobs || bc.FailedJobs != oc.FailedJobs || bc.RejectedJobs != oc.RejectedJobs {
			t.Fatalf("class %d counts: %+v vs %+v", k, bc, oc)
		}
		if bc.Evictions != oc.Evictions || bc.TaskRetries != oc.TaskRetries {
			t.Fatalf("class %d eviction/retry counts: %+v vs %+v", k, bc, oc)
		}
		if !relClose(bc.MeanResponseSec, oc.MeanResponseSec, 1e-9) {
			t.Fatalf("class %d mean response %g vs %g", k, bc.MeanResponseSec, oc.MeanResponseSec)
		}
		if !relClose(bc.MeanQueueSec, oc.MeanQueueSec, 1e-9) ||
			!relClose(bc.MeanExecSec, oc.MeanExecSec, 1e-9) {
			t.Fatalf("class %d queue/exec means diverge: %+v vs %+v", k, bc, oc)
		}
		if bc.P99ResponseSec != oc.P99ResponseSec {
			t.Fatalf("class %d P99 %g vs %g (both histogram-derived, must be identical)",
				k, bc.P99ResponseSec, oc.P99ResponseSec)
		}
		// Bounded P95 is histogram-derived; the oracle's is exact.
		if !relClose(bc.P95ResponseSec, oc.P95ResponseSec, 0.044) {
			t.Fatalf("class %d P95 %g vs exact %g: outside one histogram bucket",
				k, bc.P95ResponseSec, oc.P95ResponseSec)
		}
	}
}

// The acceptance-scale run: one million jobs through the 8-cluster
// federation on the bounded path. ~15 CPU-minutes, so it only runs when
// asked for explicitly:
//
//	DIAS_SCALE_1M=1 go test ./internal/experiments -run TestMillionJobStream -timeout 60m
func TestMillionJobStream(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if os.Getenv("DIAS_SCALE_1M") == "" {
		t.Skip("set DIAS_SCALE_1M=1 to run the million-job acceptance test")
	}
	const jobs = 1000000
	res, err := streamScenario(t, jobs, 0, true).run()
	if err != nil {
		t.Fatal(err)
	}
	completed, failed, rejected := outcomes(res.Overall)
	if total := completed + failed + rejected; total != jobs {
		t.Fatalf("conservation broken at 1M: %d outcomes (%d/%d/%d)", total, completed, failed, rejected)
	}
	if peak := res.Overall.PeakInFlightJobs; peak > jobs/100 {
		t.Fatalf("peak in-flight %d at 1M jobs: not bounded", peak)
	}
	t.Logf("1M jobs: completed %d, failed %d, rejected %d, peak in-flight %d, makespan %.0fs",
		completed, failed, rejected, res.Overall.PeakInFlightJobs, res.Overall.MakespanSec)
}
