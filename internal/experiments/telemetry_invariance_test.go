package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"dias/internal/telemetry"
)

// TestTelemetryOffInvariance is the zero-perturbation contract: arming
// the telemetry layer must not change a single figure number. The gauge
// sampler interleaves with the event loop instead of scheduling events,
// and every tracer hook is observational, so the traced run's results
// must be deeply equal to the untraced run's — makespan and energy
// included, which would drift first if gauge ticks advanced the clock.
func TestTelemetryOffInvariance(t *testing.T) {
	scale := faultScale()
	plain, err := FaultTolerance(scale)
	if err != nil {
		t.Fatal(err)
	}
	traced := scale
	traced.Telemetry = telemetry.NewRegistry(telemetry.Config{Seed: scale.Seed})
	got, err := FaultTolerance(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Fatalf("tracing changed the figure:\nplain:\n%s\ntraced:\n%s", plain, got)
	}
	// The run must actually have been traced: spans, events and gauges.
	names := traced.Telemetry.Names()
	if len(names) == 0 {
		t.Fatal("traced run registered no collectors")
	}
	for _, n := range names {
		c := traced.Telemetry.Get(n)
		if c.SeenJobs() == 0 {
			t.Fatalf("collector %q saw no jobs", n)
		}
		if len(c.Events()) == 0 {
			t.Fatalf("collector %q retained no events", n)
		}
		if c.Timeline() == nil || c.Timeline().Len() == 0 {
			t.Fatalf("collector %q has no gauge samples", n)
		}
	}
}

// TestTelemetryFederationOffInvariance covers the federation path, where
// telemetry additionally hooks routing decisions and per-member gauges.
func TestTelemetryFederationOffInvariance(t *testing.T) {
	scale := fedScale()
	plain, err := FederationOutage(scale)
	if err != nil {
		t.Fatal(err)
	}
	traced := scale
	traced.Telemetry = telemetry.NewRegistry(telemetry.Config{Seed: scale.Seed})
	got, err := FederationOutage(traced)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, plain) {
		t.Fatalf("tracing changed the federation figure:\nplain:\n%s\ntraced:\n%s", plain, got)
	}
	if len(traced.Telemetry.Names()) == 0 {
		t.Fatal("traced run registered no collectors")
	}
}

// TestTelemetryExportWorkerCountInvariance pins the export determinism
// the determinism CI lane enforces end to end: the three export files
// must be byte-identical whether the figure grid ran on one worker or
// eight. Collector seeds derive from run names (not arrival order) and
// every export iterates runs in sorted order, so worker scheduling has
// nothing to perturb.
func TestTelemetryExportWorkerCountInvariance(t *testing.T) {
	exports := func(workers int) (trace, events, timeline []byte) {
		scale := faultScale()
		scale.Workers = workers
		scale.Telemetry = telemetry.NewRegistry(telemetry.Config{Seed: scale.Seed})
		if _, err := FaultTolerance(scale); err != nil {
			t.Fatal(err)
		}
		var tb, eb, lb bytes.Buffer
		if err := scale.Telemetry.WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		if err := scale.Telemetry.WriteEventsJSONL(&eb); err != nil {
			t.Fatal(err)
		}
		if err := scale.Telemetry.WriteTimelineCSV(&lb); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), eb.Bytes(), lb.Bytes()
	}
	t1, e1, l1 := exports(1)
	t8, e8, l8 := exports(8)
	if !bytes.Equal(t1, t8) {
		t.Error("Chrome trace differs between 1 and 8 workers")
	}
	if !bytes.Equal(e1, e8) {
		t.Error("event JSONL differs between 1 and 8 workers")
	}
	if !bytes.Equal(l1, l8) {
		t.Error("gauge timeline differs between 1 and 8 workers")
	}
}
