package experiments

// The scale driver measures the streaming million-job path itself: how
// fast the simulator pushes jobs through an 8-cluster federation
// (simulated-jobs/sec of wall clock) and how much live state that takes
// (peak in-flight jobs), across the arrival-process burstiness axis and
// a geometric job-count axis. Everything on this path is O(1) in the
// job count — feed-forward arrival injection (workload.Inject), bounded
// accumulators (metrics.NewBoundedAccumulator), discarded records — so
// the -jobs flag is the axis top, not a cost ceiling: the headline run
// is
//
//	go run ./cmd/dias-experiments -fig scale -jobs 1000000
//
// which replays {10k, 100k, 1M} jobs per cell. Throughput lands in
// BENCH_results.json (sim_jobs_per_wall_sec); the rendered text carries
// only deterministic columns, so the figure stays byte-identical at any
// worker count.

import (
	"fmt"
	"strings"

	"dias/internal/federation"
	"dias/internal/metrics"
	"dias/internal/workload"
)

// scaleMembers is the federation size of every scale cell: the
// 8-cluster layout of the acceptance scenario (the largest point of the
// scale-out figure's axis).
const scaleMembers = 8

// scaleUtilization is the per-cluster nominal load of the scale cells:
// high enough that queues form and burstiness matters, low enough that
// the in-flight population stays stochastically bounded.
const scaleUtilization = 0.7

// Gamma CV and MMPP shape of the bursty scale cells. CV 3.5 is the
// SNIPPETS.md H16 operating point; the MMPP bursts at 4x the mean rate
// for a stationary 1/6 of the time (5 min calm, 1 min burst), spending
// 2/3 of the mean rate inside bursts.
const (
	scaleGammaCV     = 3.5
	scaleMMPPBurst   = 4.0
	scaleMMPPCalmSec = 300.0
	scaleMMPPHotSec  = 60.0
)

// scaleProcess is one point of the arrival-process axis.
type scaleProcess struct {
	name string
	make func(rates []float64) (workload.Process, error)
}

// scaleProcesses is the burstiness axis: Poisson (CV 1, independent
// gaps), Gamma renewal at CV 3.5 (independent but heavy-tailed gaps),
// and a 2-state MMPP (correlated rate episodes) — all at identical
// per-class mean rates.
func scaleProcesses() []scaleProcess {
	return []scaleProcess{
		{"poisson", func(rates []float64) (workload.Process, error) {
			return workload.NewPoissonMix(rates)
		}},
		{fmt.Sprintf("gamma-cv%.1f", scaleGammaCV), func(rates []float64) (workload.Process, error) {
			return workload.NewGamma(rates, scaleGammaCV)
		}},
		{fmt.Sprintf("mmpp-x%.0f", scaleMMPPBurst), func(rates []float64) (workload.Process, error) {
			return workload.NewMMPP(rates, scaleMMPPBurst, [2]float64{scaleMMPPCalmSec, scaleMMPPHotSec})
		}},
	}
}

// scaleRoutingSet is the routing axis: the backlog-aware reference
// policy against the stateless baseline (the full six-policy comparison
// lives in the federation figures; here routing is a control, not the
// subject).
func scaleRoutingSet() []fedPolicyFactory {
	return []fedPolicyFactory{
		{"jsq", func(int64) federation.RoutingPolicy { return federation.NewJoinShortestQueue() }},
		{"random", federation.NewRandom},
	}
}

// scaleJobCounts turns the -jobs flag into the geometric count axis
// {top/100, top/10, top}, clamped to the driver minimum and
// deduplicated (a small top collapses points).
func scaleJobCounts(top int) []int {
	var counts []int
	for _, n := range []int{top / 100, top / 10, top} {
		if n < 10 {
			n = 10
		}
		if len(counts) == 0 || counts[len(counts)-1] != n {
			counts = append(counts, n)
		}
	}
	return counts
}

// ScaleFigure is the scale driver's output: one row per (process,
// routing, job count) cell.
type ScaleFigure struct {
	Title string
	Rows  []metrics.FederationScenarioResult
	// RowJobs[i] is the arrival count of Rows[i] (the job-count axis
	// point; the completed column of the row excludes warmup).
	RowJobs []int
}

// String renders the deterministic columns only — counts, simulated-
// time goodput and tail latencies. Wall-clock throughput is machine-
// dependent and lives solely in the benchmark JSON, keeping this text
// byte-identical at any worker count.
func (f *ScaleFigure) String() string {
	var b strings.Builder
	b.WriteString(f.Title + "\n")
	b.WriteString("Scenario                      Jobs  Completed  PeakInFlight  Goodput [j/s]  P99 low [s]  P99 high [s]\n")
	for i, r := range f.Rows {
		var completed int
		for _, cs := range r.Overall.PerClass {
			completed += cs.Jobs
		}
		p99 := func(k int) float64 {
			if k < len(r.Overall.PerClass) {
				return r.Overall.PerClass[k].P99ResponseSec
			}
			return 0
		}
		fmt.Fprintf(&b, "%-26s %7d  %9d  %12d  %13.2f  %11.2f  %12.2f\n",
			r.Name, f.RowJobs[i], completed, r.Overall.PeakInFlightJobs,
			r.Overall.GoodputJobsPerSec, p99(0), p99(1))
	}
	return b.String()
}

// Scenarios returns the federation-wide rollups (with the wall-clock
// throughput and peak in-flight fields set), the rows the benchmark
// report aggregates.
func (f *ScaleFigure) Scenarios() []metrics.ScenarioResult {
	out := make([]metrics.ScenarioResult, len(f.Rows))
	for i, r := range f.Rows {
		out[i] = r.Overall
	}
	return out
}

// ScaleThroughput runs the streaming scale grid: arrival process x job
// count x routing policy on an 8-cluster federation at 70% nominal
// load, every cell on the bounded-memory path end to end.
func ScaleThroughput(scale Scale) (*ScaleFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	variants, rates, err := fedWorkload(scale, scaleMembers, scaleUtilization)
	if err != nil {
		return nil, err
	}
	members := homogeneousMembers(scaleMembers)
	scaled := scaleRates(rates, capacityFactor(members))
	counts := scaleJobCounts(scale.Jobs)
	var scs []fedScenario
	var jobsPerRow []int
	for _, p := range scaleProcesses() {
		for _, r := range scaleRoutingSet() {
			for _, n := range counts {
				cellScale := scale
				cellScale.Jobs = n
				scs = append(scs, fedScenario{
					name:        fmt.Sprintf("%s/%s/%d", p.name, r.name, n),
					members:     members,
					policy:      r,
					rates:       scaled,
					variants:    variants,
					scale:       cellScale,
					arrivals:    p.make,
					bounded:     true,
					measureWall: true,
				})
				jobsPerRow = append(jobsPerRow, n)
			}
		}
	}
	rows, err := runFedScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &ScaleFigure{
		Title: fmt.Sprintf(
			"Streaming scale: arrival process x job count x routing (%d clusters, %.0f%% per-cluster load, bounded memory)",
			scaleMembers, 100*scaleUtilization),
		Rows:    rows,
		RowJobs: jobsPerRow,
	}, nil
}
