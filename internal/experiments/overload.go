package experiments

// Overload experiment: the paper's evaluation holds every deployment below
// saturation, so nothing in Figures 7-11 says what DiAS does when offered
// load exceeds capacity. This driver sweeps offered load from half capacity
// to 3x across the admission-policy grid (no control, token bucket, queue
// depth, SLO budget) on the full DiAS stack, and adds federation rows at
// 3x comparing reject-on-overload against deferred re-routing (spill). The
// output deliberately prints latency and shed work side by side: at 3x a
// token bucket "wins" every latency column, and the adjacent rejection
// fraction shows what that win costs.

import (
	"fmt"

	"dias/internal/admission"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/federation"
	"dias/internal/metrics"
	"dias/internal/workload"
)

// OverloadFigure is the overload sweep's output: a flat grid of scenario
// rows rendered with the goodput/rejection columns.
type OverloadFigure struct {
	Title string
	Rows  []metrics.ScenarioResult
}

// String renders the grid.
func (f *OverloadFigure) String() string {
	return f.Title + "\n" + metrics.FormatOverloadTable(f.Rows...)
}

// Scenarios returns the rows the benchmark report aggregates.
func (f *OverloadFigure) Scenarios() []metrics.ScenarioResult { return f.Rows }

// OverloadLoads is the offered-load axis, as multiples of the calibrated
// cluster capacity.
var OverloadLoads = []float64{0.5, 1.0, 2.0, 3.0}

// overloadCalibrationUtil anchors the rate calibration: rates are computed
// at this utilization and scaled linearly to each sweep point (the
// calibrator itself rejects targets >= 1, which overload points are).
const overloadCalibrationUtil = 0.5

// overloadSpillLoad is the offered load of the federation spill rows.
const overloadSpillLoad = 3.0

// overloadSpillMembers sizes the federation of the spill rows.
const overloadSpillMembers = 3

// Overload sweeps offered load 0.5x..3x of calibrated capacity across the
// admission-policy grid on the full DiAS policy. Expected shape: below
// capacity every policy admits (nearly) everything and the rows agree;
// past capacity the uncontrolled row's latencies diverge with the backlog
// while the admission rows hold latency by shedding — the token bucket
// bluntly by arrival rate, queue depth by actual backlog, the SLO budget
// by predicted wait (low-budget classes degrade first). The federation
// rows at 3x contrast Reject with Defer under identical token buckets:
// spilling converts part of the shed traffic into work on sibling members.
func Overload(scale Scale) (*OverloadFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	setup := referenceSetup()
	lowJob, err := textJob("low", scale.Seed+191, setup.lowPosts, setup.lowSize)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("high", scale.Seed+192, setup.highPosts, setup.highSize)
	if err != nil {
		return nil, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, cluCfg, 3, scale.Seed+193)
	if err != nil {
		return nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, scale.Seed+194)
	if err != nil {
		return nil, err
	}
	baseTotal, err := workload.CalibrateTotalRate(
		[]float64{mean(lowDur), mean(highDur)}, []float64{0.9, 0.1}, overloadCalibrationUtil)
	if err != nil {
		return nil, err
	}
	baseRates, err := workload.MixFromRatio(setup.ratio, baseTotal)
	if err != nil {
		return nil, err
	}
	jobs := []*engine.Job{lowJob, highJob}
	diasPolicy := core.PolicyDiAS([]float64{0.2, 0}, core.SprintPolicy{
		TimeoutSec:     []float64{60, 0},
		BudgetJoules:   22e3,
		DrainWatts:     900,
		ReplenishWatts: 90,
	})

	// The token bucket sustains 90%-utilization worth of traffic per class
	// (shedding only genuine overload, not the calibration headroom); the
	// queue-depth thresholds and SLO budgets are anchored on the profiled
	// solo durations so they scale with -jobs-independent workload shape.
	sustain := scaleRates(baseRates, 0.9/overloadCalibrationUtil)
	tbCfg := admission.TokenBucketConfig{Rate: sustain, Burst: []float64{8, 4}}
	qdCfg := admission.QueueDepthConfig{MaxBacklog: []int{10, 4}}
	sloCfg := admission.SLOBudgetConfig{
		BudgetSec: []float64{6 * mean(lowDur), 3 * mean(highDur)},
	}
	// Validate the static configs once up front; the per-scenario factories
	// below can then drop the error (same config, same verdict).
	if _, err := admission.NewTokenBucket(tbCfg); err != nil {
		return nil, err
	}
	if _, err := admission.NewQueueDepth(qdCfg); err != nil {
		return nil, err
	}
	if _, err := admission.NewSLOBudget(sloCfg); err != nil {
		return nil, err
	}
	cells := []struct {
		name  string
		admit func() admission.Policy
	}{
		{"always", func() admission.Policy { return admission.AlwaysAdmit{} }},
		{"token-bucket", func() admission.Policy { p, _ := admission.NewTokenBucket(tbCfg); return p }},
		{"queue-depth", func() admission.Policy { p, _ := admission.NewQueueDepth(qdCfg); return p }},
		{"slo-budget", func() admission.Policy { p, _ := admission.NewSLOBudget(sloCfg); return p }},
	}
	var scs []scenario
	for _, cell := range cells {
		for _, load := range OverloadLoads {
			scs = append(scs, scenario{
				name:    fmt.Sprintf("%s/%.1fx", cell.name, load),
				policy:  diasPolicy,
				rates:   scaleRates(baseRates, load/overloadCalibrationUtil),
				jobs:    jobs,
				cost:    cost,
				cluster: cluCfg,
				scale:   scale,
				admit:   cell.admit,
			})
		}
	}
	rows, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}

	// Federation rows: identical token buckets per member at 3x offered
	// load, differing only in what an empty bucket answers — Reject sheds
	// where the job was routed, Defer (spill) walks the other members and
	// sheds only when every bucket is empty.
	spillTB := admission.TokenBucketConfig{Rate: sustain, Burst: []float64{8, 4}, Spill: true}
	members := homogeneousMembers(overloadSpillMembers)
	fedRates := scaleRates(baseRates, capacityFactor(members)*overloadSpillLoad/overloadCalibrationUtil)
	variants := variantSource{
		fedVariants(lowJob, overloadSpillMembers),
		fedVariants(highJob, overloadSpillMembers),
	}
	rr := fedPolicyFactory{"rr", func(int64) federation.RoutingPolicy { return federation.NewRoundRobin() }}
	jsq := fedPolicyFactory{"jsq", func(int64) federation.RoutingPolicy { return federation.NewJoinShortestQueue() }}
	fedCells := []struct {
		name   string
		policy fedPolicyFactory
		admit  func() admission.Policy
	}{
		{"shed-rr", rr, func() admission.Policy { p, _ := admission.NewTokenBucket(tbCfg); return p }},
		{"spill-rr", rr, func() admission.Policy { p, _ := admission.NewTokenBucket(spillTB); return p }},
		{"spill-jsq", jsq, func() admission.Policy { p, _ := admission.NewTokenBucket(spillTB); return p }},
	}
	var fscs []fedScenario
	for _, cell := range fedCells {
		fscs = append(fscs, fedScenario{
			name:     fmt.Sprintf("%s/%dm/%.1fx", cell.name, overloadSpillMembers, overloadSpillLoad),
			members:  members,
			policy:   cell.policy,
			rates:    fedRates,
			variants: variants,
			scale:    scale,
			admit:    cell.admit,
		})
	}
	fedRows, err := runFedScenarios(fscs)
	if err != nil {
		return nil, err
	}
	for _, r := range fedRows {
		rows = append(rows, r.Overall)
	}
	return &OverloadFigure{
		Title: fmt.Sprintf(
			"Overload: offered load x admission policy on DiAS (calibrated capacity = 1.0x; %d-member spill rows at %.1fx)",
			overloadSpillMembers, overloadSpillLoad),
		Rows: rows,
	}, nil
}
