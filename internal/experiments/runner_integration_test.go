package experiments

import (
	"reflect"
	"testing"
)

// The runner contract at the figure level: every run in a figure's grid
// seeds its own RNGs and owns its simulated stack, so a fixed seed list
// must produce bit-identical figures whether the grid executes on one
// worker (the old serial path) or many.

func invarianceScale() Scale {
	s := Scale{Jobs: 40, WarmupFraction: 0.1, Seed: 5}
	if testing.Short() {
		s.Jobs = 20
	}
	return s
}

func TestFigure7WorkerCountInvariance(t *testing.T) {
	serial := invarianceScale()
	serial.Workers = 1
	parallel := invarianceScale()
	parallel.Workers = 8
	want, err := Figure7(serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Figure7(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("figure 7 differs between 1 and 8 workers:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

func TestMotivationWorkerCountInvariance(t *testing.T) {
	serial := invarianceScale()
	serial.Workers = 1
	parallel := invarianceScale()
	parallel.Workers = 4
	want, err := Motivation(serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Motivation(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("motivation differs between 1 and 4 workers:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

func TestFigure4WorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling-heavy")
	}
	serial := invarianceScale()
	serial.Workers = 1
	parallel := invarianceScale()
	parallel.Workers = 8
	want, err := Figure4(serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Figure4(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("figure 4 differs between 1 and 8 workers:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

func TestScaleRejectsNegativeWorkers(t *testing.T) {
	s := QuickScale()
	s.Workers = -1
	if err := s.validate(); err == nil {
		t.Fatal("negative worker count accepted")
	}
}
