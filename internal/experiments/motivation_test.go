package experiments

import (
	"strings"
	"testing"
)

func TestMotivationShape(t *testing.T) {
	res, err := Motivation(extScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.LowSlowdown < 1 || row.HighSlowdown < 1 {
			t.Fatalf("slowdowns below 1 at util %.2f: %+v", row.Util, row)
		}
		if row.Ratio < 1 {
			t.Errorf("util %.2f: low class slowed down less than high (%.2f)", row.Util, row.Ratio)
		}
	}
	// The paper's two motivation claims, in shape: both the slowdown gap
	// and the waste grow with load.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Ratio <= first.Ratio {
		t.Errorf("slowdown ratio did not grow with load: %.2f -> %.2f", first.Ratio, last.Ratio)
	}
	if last.Ratio < 1.5 {
		t.Errorf("slowdown ratio at 90%% load %.2f, want the paper's multi-x gap", last.Ratio)
	}
	if last.WastePct <= 0 {
		t.Error("no eviction waste at 90% load under P")
	}
	if last.Evictions == 0 {
		t.Error("no evictions at 90% load under P")
	}
	if !strings.Contains(res.String(), "slowdown") {
		t.Error("rendering lacks slowdown columns")
	}
}
