package experiments

// The parallel-kernel driver measures the conservative parallel kernel
// against its serial oracle on the acceptance scenario: one 8-cluster
// federation cell run twice over — serially, then at several sim-worker
// counts — inside a single figure run. Both modes execute regardless of
// the -sim-workers flag, so the figure text never depends on it: the
// rendered rows carry only deterministic columns and MUST be identical
// across modes (the driver asserts exact equality and fails the figure
// on any divergence, making every run a determinism check). The
// machine-dependent speedup (serial wall-clock over parallel wall-clock)
// lands solely in BENCH_results.json (parallel_speedup), trending-only
// like sim_jobs_per_wall_sec — a 1-core host reports ~1x or below, a
// multi-core host shows the kernel's scaling.

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"dias/internal/metrics"
)

// parallelKernelWorkerCounts is the sim-worker axis of the parallel
// figure (serial is run implicitly as the oracle row).
var parallelKernelWorkerCounts = []int{2, 4, 8}

// ParallelKernelFigure is the parallel-kernel driver's output: the
// serial oracle row followed by one row per sim-worker count, all with
// identical deterministic columns.
type ParallelKernelFigure struct {
	Title string
	Rows  []metrics.FederationScenarioResult
}

// String renders the deterministic columns only; wall-clock speedup is
// machine-dependent and lives solely in the benchmark JSON, keeping
// this text byte-identical at any -workers or -sim-workers setting.
func (f *ParallelKernelFigure) String() string {
	var b strings.Builder
	b.WriteString(f.Title + "\n")
	b.WriteString("Mode            Completed  Makespan [s]  Mean low [s]  Mean high [s]  Waste [%]  Energy [MJ]  PeakInFlight\n")
	for _, r := range f.Rows {
		var completed int
		for _, cs := range r.Overall.PerClass {
			completed += cs.Jobs
		}
		mean := func(k int) float64 {
			if k < len(r.Overall.PerClass) {
				return r.Overall.PerClass[k].MeanResponseSec
			}
			return 0
		}
		fmt.Fprintf(&b, "%-14s %10d  %12.1f  %12.1f  %13.1f  %9.1f  %11.2f  %12d\n",
			r.Name, completed, r.Overall.MakespanSec, mean(0), mean(1),
			r.Overall.ResourceWastePct, r.Overall.EnergyJoules/1e6,
			r.Overall.PeakInFlightJobs)
	}
	b.WriteString("(rows are byte-identical by construction: the parallel kernel reproduces the serial run exactly)\n")
	return b.String()
}

// Scenarios returns the federation-wide rollups with ParallelSpeedup
// stamped on the parallel rows, the rows the benchmark report
// aggregates.
func (f *ParallelKernelFigure) Scenarios() []metrics.ScenarioResult {
	out := make([]metrics.ScenarioResult, len(f.Rows))
	for i, r := range f.Rows {
		out[i] = r.Overall
	}
	return out
}

// ParallelKernel runs the 8-cluster acceptance cell serially and on the
// parallel kernel at each worker count, asserts the results are
// identical, and reports the wall-clock speedup. The runs are
// sequential on purpose: each one should own the whole machine so the
// speedup measures the kernel, not contention with sibling runs.
func ParallelKernel(scale Scale) (*ParallelKernelFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	variants, rates, err := fedWorkload(scale, scaleMembers, scaleUtilization)
	if err != nil {
		return nil, err
	}
	members := homogeneousMembers(scaleMembers)
	scaled := scaleRates(rates, capacityFactor(members))
	cell := func(name string, simWorkers int) fedScenario {
		cellScale := scale
		cellScale.SimWorkers = simWorkers
		return fedScenario{
			name:     name,
			members:  members,
			policy:   fedPolicyFactory{name: name, make: scaleRoutingSet()[0].make}, // jsq
			rates:    scaled,
			variants: variants,
			scale:    cellScale,
		}
	}
	timed := func(sc fedScenario) (metrics.FederationScenarioResult, float64, error) {
		start := time.Now()
		res, err := sc.run()
		return res, time.Since(start).Seconds(), err
	}
	serial, serialWall, err := timed(cell("serial", 1))
	if err != nil {
		return nil, err
	}
	rows := []metrics.FederationScenarioResult{serial}
	for _, w := range parallelKernelWorkerCounts {
		name := fmt.Sprintf("simworkers-%d", w)
		par, parWall, err := timed(cell(name, w))
		if err != nil {
			return nil, err
		}
		// The oracle check: everything but the row name must match the
		// serial run exactly. A mismatch is a kernel bug, not noise.
		want := serial
		want.Name = par.Name
		want.Overall.Name = par.Overall.Name
		if !reflect.DeepEqual(par, want) {
			return nil, fmt.Errorf(
				"experiments: parallel kernel diverged from serial at %d sim-workers:\nserial:   %+v\nparallel: %+v",
				w, serial.Overall, par.Overall)
		}
		if parWall > 0 {
			par.Overall.ParallelSpeedup = serialWall / parWall
		}
		rows = append(rows, par)
	}
	return &ParallelKernelFigure{
		Title: fmt.Sprintf(
			"Parallel kernel: serial oracle vs conservative parallel run (%d clusters, %.0f%% per-cluster load, JSQ)",
			scaleMembers, 100*scaleUtilization),
		Rows: rows,
	}, nil
}
