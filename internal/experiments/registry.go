package experiments

// The driver registry replaces a hand-maintained switch in
// cmd/dias-experiments: every figure registers itself here with a name,
// a one-line description and its scale limits, and the command binary
// iterates the registry. Adding a figure is one Register call next to the
// driver — the CLI's -fig parsing, "list" output and benchmark report pick
// it up automatically.

import (
	"fmt"

	"dias/internal/metrics"
)

// DriverOutput is one figure run: the rendered text plus the scenario
// results feeding the replica aggregates and the benchmark report (nil for
// figures without a scenario grid).
type DriverOutput struct {
	Text fmt.Stringer
	// Scenarios holds the per-scenario results for figures that expose
	// scenario grids; model-validation figures leave it nil.
	Scenarios []metrics.ScenarioResult
}

// DriverFunc regenerates one figure at the given scale.
type DriverFunc func(Scale) (DriverOutput, error)

// DriverMeta describes a registered figure driver.
type DriverMeta struct {
	// Description is the one-line summary "-fig list" prints.
	Description string
	// MaxJobs caps Scale.Jobs for this driver (0 = no cap). Heavier
	// figures — graph analytics, whole-federation grids — cap their
	// arrivals so a full-scale run stays tractable.
	MaxJobs int
	// SkipInAll excludes the driver from "-fig all" (e.g. table2, which
	// duplicates figure 11's run).
	SkipInAll bool
}

// Driver is one registered figure.
type Driver struct {
	Name string
	DriverMeta
	Run DriverFunc
}

// Scaled applies the driver's MaxJobs cap to the scale.
func (d Driver) Scaled(sc Scale) Scale {
	if d.MaxJobs > 0 && sc.Jobs > d.MaxJobs {
		sc.Jobs = d.MaxJobs
	}
	return sc
}

var (
	driverOrder []string
	driverByKey = make(map[string]Driver)
)

// Register adds a figure driver under a unique name. Drivers are listed
// and run in registration order. Register panics on a duplicate or empty
// name — both are programming errors in an init-time registry.
func Register(name string, meta DriverMeta, fn DriverFunc) {
	if name == "" || fn == nil {
		panic("experiments: Register with empty name or nil driver")
	}
	if _, dup := driverByKey[name]; dup {
		panic(fmt.Sprintf("experiments: driver %q registered twice", name))
	}
	driverOrder = append(driverOrder, name)
	driverByKey[name] = Driver{Name: name, DriverMeta: meta, Run: fn}
}

// Drivers lists every registered driver in registration order.
func Drivers() []Driver {
	out := make([]Driver, len(driverOrder))
	for i, name := range driverOrder {
		out[i] = driverByKey[name]
	}
	return out
}

// Lookup resolves a driver by name.
func Lookup(name string) (Driver, bool) {
	d, ok := driverByKey[name]
	return d, ok
}

// DriverNames lists the registry keys in registration order.
func DriverNames() []string {
	return append([]string(nil), driverOrder...)
}
