package experiments

// Fault-tolerance and elasticity experiments: the paper evaluates DiAS on
// a healthy, fixed-size testbed, but its scheduling and sprinting
// trade-offs matter most when the substrate misbehaves — nodes churn,
// tasks fail and straggle, load swings over the day. FaultTolerance grids
// availability regimes against scheduling policies on the fault-injection
// layer (internal/faults); Elasticity drives a diurnal arrival stream
// against fixed and autoscaled clusters (core.Autoscaler); and
// FederationOutage stresses the routing policies with whole-cluster
// outages (federation.ScheduleOutage).

import (
	"fmt"

	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/faults"
	"dias/internal/metrics"
	"dias/internal/workload"
)

// FaultFigure is the output shape of the fault and elasticity drivers: a
// flat grid of scenario rows (no paper baseline to diff against).
type FaultFigure struct {
	Title string
	Rows  []metrics.ScenarioResult
	// Elastic switches rendering to the capacity/energy columns.
	Elastic bool
}

// String renders the grid.
func (f *FaultFigure) String() string {
	if f.Elastic {
		return f.Title + "\n" + metrics.FormatElasticityTable(f.Rows...)
	}
	return f.Title + "\n" + metrics.FormatFaultTable(f.Rows...)
}

// Scenarios returns the rows the benchmark report aggregates.
func (f *FaultFigure) Scenarios() []metrics.ScenarioResult { return f.Rows }

// faultRegime is one availability level of the FaultTolerance grid.
type faultRegime struct {
	name string
	plan *faults.Config
}

// faultRegimes is the availability axis: healthy baseline, light and
// heavy node churn, task-level faults with bounded retries, injected
// stragglers, and everything at once.
func faultRegimes() []faultRegime {
	lightChurn := &faults.ChurnConfig{MTTFSec: 3600, MTTRSec: 60}
	heavyChurn := &faults.ChurnConfig{MTTFSec: 900, MTTRSec: 120}
	taskFaults := &faults.TaskFaultConfig{FailProb: 0.03, MaxAttempts: 3}
	stragglers := &faults.TaskFaultConfig{StragglerProb: 0.05, StragglerFactor: 4}
	return []faultRegime{
		{"healthy", nil},
		{"churn", &faults.Config{Churn: lightChurn}},
		{"churn-heavy", &faults.Config{Churn: heavyChurn}},
		{"taskfaults", &faults.Config{Tasks: taskFaults}},
		{"stragglers", &faults.Config{Tasks: stragglers}},
		{"combined", &faults.Config{
			Churn: lightChurn,
			Tasks: &faults.TaskFaultConfig{
				FailProb: 0.03, MaxAttempts: 3,
				StragglerProb: 0.05, StragglerFactor: 4,
			},
		}},
	}
}

// FaultTolerance runs the two-class reference workload across the
// availability x policy grid: each fault regime against the paper's
// preemptive baseline P, plain differential approximation DA(0,20) and
// the full DiAS system (DA + sprinting). Expected shape: churn and task
// faults inflate latencies and failure waste for every policy, but the
// non-preemptive approximating policies degrade more gracefully than P
// (whose evictions compound with failure re-execution); under the
// bounded-retry regimes a small tail of jobs is reported failed with
// retries exhausted rather than retried forever.
func FaultTolerance(scale Scale) (*FaultFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	setup := referenceSetup()
	lowJob, err := textJob("low", scale.Seed+171, setup.lowPosts, setup.lowSize)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("high", scale.Seed+172, setup.highPosts, setup.highSize)
	if err != nil {
		return nil, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, cluCfg, 3, scale.Seed+173)
	if err != nil {
		return nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, scale.Seed+174)
	if err != nil {
		return nil, err
	}
	// 70% nominal load: the faulty regimes shave capacity, and 80% would
	// push them into saturation.
	totalRate, err := workload.CalibrateTotalRate(
		[]float64{mean(lowDur), mean(highDur)}, []float64{0.9, 0.1}, 0.7)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio(setup.ratio, totalRate)
	if err != nil {
		return nil, err
	}
	jobs := []*engine.Job{lowJob, highJob}
	policies := []struct {
		name   string
		policy core.Config
	}{
		{"P", core.PolicyP(2)},
		{"DA(0,20)", core.PolicyDA([]float64{0.2, 0})},
		{"DiAS(0,20)", core.PolicyDiAS([]float64{0.2, 0}, core.SprintPolicy{
			TimeoutSec:     []float64{60, 0},
			BudgetJoules:   22e3,
			DrainWatts:     900,
			ReplenishWatts: 90,
		})},
	}
	var scs []scenario
	for _, p := range policies {
		for _, reg := range faultRegimes() {
			scs = append(scs, scenario{
				name:      fmt.Sprintf("%s/%s", p.name, reg.name),
				policy:    p.policy,
				rates:     rates,
				jobs:      jobs,
				cost:      cost,
				cluster:   cluCfg,
				scale:     scale,
				faultPlan: reg.plan,
			})
		}
	}
	rows, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &FaultFigure{
		Title: "Fault tolerance: availability x policy grid (churn, bounded-retry task faults, stragglers)",
		Rows:  rows,
	}, nil
}

// Elasticity drives a diurnal arrival stream (sinusoidal rate, 4 swings
// over the run) against fixed-size and autoscaled clusters running the
// full DiAS policy. Expected shape: the fixed small cluster saturates at
// the peaks, the fixed large one wastes idle energy in the troughs, and
// the autoscalers (backlog- and latency-driven, 4..16 nodes, scale-in
// suppressed while sprinting) track the swing — latency near the large
// cluster's at an energy bill near the small one's. AvgNodes in the
// output is the capacity actually paid for.
//
// Measurement note: the autoscaled cells' makespan/energy include up to
// one tick interval (30 s) of idle accrual after the last completion —
// the already-armed tick advances the clock once before finding the
// simulation drained and disarming. The offset is deterministic per
// seed (it never reads as drift to the bench gate) and small next to the
// arrival span; ticking cannot stop earlier without also freezing
// scale-in during genuine load troughs.
func Elasticity(scale Scale) (*FaultFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	setup := referenceSetup()
	small := cluster.DefaultConfig() // 10 nodes
	big := cluster.DefaultConfig()
	big.Nodes = 16
	lowJob, err := textJob("low", scale.Seed+181, setup.lowPosts, setup.lowSize)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("high", scale.Seed+182, setup.highPosts, setup.highSize)
	if err != nil {
		return nil, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, small, 3, scale.Seed+183)
	if err != nil {
		return nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, small, 3, scale.Seed+184)
	if err != nil {
		return nil, err
	}
	// Mean load 60% of the small cluster's capacity; a 0.75 amplitude
	// swings the instantaneous load between 15% and 105% of it.
	totalRate, err := workload.CalibrateTotalRate(
		[]float64{mean(lowDur), mean(highDur)}, []float64{0.9, 0.1}, 0.6)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio(setup.ratio, totalRate)
	if err != nil {
		return nil, err
	}
	// Four full swings across the expected arrival span.
	period := float64(scale.Jobs) / totalRate / 4
	diurnal := func() (workload.Process, error) {
		d, err := workload.NewDiurnalMix(rates, 0.75, period)
		if err != nil {
			return nil, err
		}
		return d, nil
	}
	diasPolicy := core.PolicyDiAS([]float64{0.2, 0}, core.SprintPolicy{
		TimeoutSec:     []float64{60, 0},
		BudgetJoules:   22e3,
		DrainWatts:     900,
		ReplenishWatts: 90,
	})
	backlogAS := &core.AutoscalerConfig{
		Policy:       core.BacklogScalePolicy{ScaleOutAbove: 3, ScaleInBelow: 1, Step: 3},
		MinNodes:     4,
		MaxNodes:     16,
		InitialNodes: 10,
		IntervalSec:  30,
		CooldownSec:  60,
	}
	latencyAS := &core.AutoscalerConfig{
		Policy: core.LatencyScalePolicy{
			TargetSec: 2.5 * mean(lowDur),
			Headroom:  0.3,
			Step:      3,
		},
		MinNodes:     4,
		MaxNodes:     16,
		InitialNodes: 10,
		IntervalSec:  30,
		CooldownSec:  60,
	}
	cells := []struct {
		name    string
		cluster cluster.Config
		as      *core.AutoscalerConfig
	}{
		{"fixed-10", small, nil},
		{"fixed-16", big, nil},
		{"backlog-as", big, backlogAS},
		{"latency-as", big, latencyAS},
	}
	var scs []scenario
	for _, c := range cells {
		proc, err := diurnal()
		if err != nil {
			return nil, err
		}
		scs = append(scs, scenario{
			name:      c.name,
			policy:    diasPolicy,
			rates:     rates,
			jobs:      []*engine.Job{lowJob, highJob},
			cost:      cost,
			cluster:   c.cluster,
			scale:     scale,
			proc:      proc,
			autoscale: c.as,
		})
	}
	rows, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &FaultFigure{
		Title:   "Elasticity: diurnal load (0.75 amplitude, 4 swings) on fixed vs autoscaled clusters",
		Rows:    rows,
		Elastic: true,
	}, nil
}
