package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"dias/internal/analytics"
	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/model"
	"dias/internal/phdist"
	"dias/internal/queueing"
	"dias/internal/runner"
	"dias/internal/stats"
	"dias/internal/workload"
)

// --- Figure 4: processing-time model validation ---------------------------

// Figure4Row is one (dataset, drop ratio) point: observed vs predicted
// mean job processing time.
type Figure4Row struct {
	Dataset      string
	Theta        float64
	ObservedSec  float64
	PredictedSec float64
	ErrPct       float64
}

// Figure4Result reproduces Figure 4: wave-level model predictions against
// engine-observed processing times across drop ratios, for two datasets
// (the paper's StackExchange sites "126" and "147").
type Figure4Result struct {
	Rows       []Figure4Row
	MeanErrPct map[string]float64
}

// String renders the figure data.
func (f *Figure4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: job processing time vs drop ratio (model vs observed)\n")
	b.WriteString("dataset  theta   observed[s]  predicted[s]  err[%]\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-8s %5.2f   %10.2f   %10.2f   %6.1f\n",
			r.Dataset, r.Theta, r.ObservedSec, r.PredictedSec, r.ErrPct)
	}
	for ds, e := range f.MeanErrPct {
		fmt.Fprintf(&b, "mean error %s: %.1f%%\n", ds, e)
	}
	return b.String()
}

// waveModelFromProfile parameterizes the §4.2 wave-level model from one
// profiled run (§4.3): per-stage mean task times and windows give wave
// times; setup overheads at θ=0 and θ=0.9 anchor the linear interpolation.
type waveModelFromProfile struct {
	slots              int
	mapTasks, redTasks int
	mapWaveSec         float64
	redWaveSec         float64
	shuffleSec         float64
	overhead           model.OverheadModel
	waveSCV            float64
}

func profileWaveModel(job *engine.Job, cost engine.CostModel, cluCfg cluster.Config, seed int64) (*waveModelFromProfile, error) {
	slots := cluCfg.Nodes * cluCfg.CoresPerNode
	durs0, res0, err := profileSolo(job, nil, cost, cluCfg, 3, seed)
	if err != nil {
		return nil, err
	}
	_, res9, err := profileSolo(job, []float64{0.9}, cost, cluCfg, 3, seed+1)
	if err != nil {
		return nil, err
	}
	ms, rs := res0.Stages[0], res0.Stages[1]
	mapWaves := ms.Waves(slots)
	redWaves := rs.Waves(slots)
	if mapWaves == 0 || redWaves == 0 {
		return nil, fmt.Errorf("experiments: profiling saw %d/%d waves", mapWaves, redWaves)
	}
	// Sample variance of repeated runs parameterizes the wave SCV.
	var s stats.Stream
	for _, d := range durs0 {
		s.Add(d)
	}
	// Floor the SCV so fitted waves stay low-order PH (see FitMeanSCV).
	scv := 0.02
	if m := s.Mean(); m > 0 && s.Variance() > 0 {
		if v := s.Variance() / (m * m); v > scv {
			scv = v
		}
	}
	return &waveModelFromProfile{
		slots:      slots,
		mapTasks:   ms.TasksExecuted + ms.TasksDropped,
		redTasks:   rs.TasksExecuted + rs.TasksDropped,
		mapWaveSec: ms.EndedAt.Sub(ms.StartedAt).Seconds() / float64(mapWaves),
		redWaveSec: rs.EndedAt.Sub(rs.StartedAt).Seconds() / float64(redWaves),
		shuffleSec: rs.StartedAt.Sub(ms.EndedAt).Seconds(),
		overhead: model.OverheadModel{
			ThetaLo: 0, OverheadLo: res0.Stages[0].StartedAt.Sub(res0.StartedAt).Seconds(),
			ThetaHi: 0.9, OverheadHi: res9.Stages[0].StartedAt.Sub(res9.StartedAt).Seconds(),
		},
		waveSCV: scv,
	}, nil
}

// processingPH builds the wave-level PH at drop ratio theta (map stage
// only, as the paper's text experiments drop map tasks).
func (w *waveModelFromProfile) processingPH(theta float64) (*phdist.PH, error) {
	setup, err := phdist.FitMeanSCV(w.overhead.At(theta), 0.05)
	if err != nil {
		return nil, err
	}
	shuffle, err := phdist.FitMeanSCV(w.shuffleSec, 0.05)
	if err != nil {
		return nil, err
	}
	mapWave, err := phdist.FitMeanSCV(w.mapWaveSec, w.waveSCV)
	if err != nil {
		return nil, err
	}
	redWave, err := phdist.FitMeanSCV(w.redWaveSec, w.waveSCV)
	if err != nil {
		return nil, err
	}
	cfg := model.WaveLevelConfig{
		Slots:       w.slots,
		MapTasks:    model.FixedTasks(w.mapTasks),
		ReduceTasks: model.FixedTasks(w.redTasks),
		ThetaMap:    theta,
		Setup:       setup,
		Shuffle:     shuffle,
		MapWave:     func(int) *phdist.PH { return mapWave },
		ReduceWave:  func(int) *phdist.PH { return redWave },
	}
	return cfg.ProcessingTime()
}

// Figure4 runs the validation. The per-dataset profiling runs and the
// (dataset × theta) observation runs are two independent grids, each fanned
// out on the scale's worker pool.
func Figure4(scale Scale) (*Figure4Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	datasets := []struct {
		label string
		posts int
		size  int64
	}{
		{"126", 40, 473 << 20},
		{"147", 80, 1117 << 20},
	}
	pool := scale.pool()
	type dsProfile struct {
		job *engine.Job
		wm  *waveModelFromProfile
	}
	profTasks := make([]runner.Task[dsProfile], len(datasets))
	for di := range datasets {
		di, ds := di, datasets[di]
		profTasks[di] = func(context.Context) (dsProfile, error) {
			job, err := textJob("fig4-"+ds.label, scale.Seed+int64(di)*100, ds.posts, ds.size)
			if err != nil {
				return dsProfile{}, err
			}
			wm, err := profileWaveModel(job, cost, cluCfg, scale.Seed+int64(di)*1000)
			if err != nil {
				return dsProfile{}, err
			}
			return dsProfile{job: job, wm: wm}, nil
		}
	}
	profiles, err := runner.Map(context.Background(), pool, profTasks)
	if err != nil {
		return nil, err
	}
	thetas := []float64{0, 0.2, 0.4, 0.6, 0.8}
	type cell struct{ di, ti int }
	cells := make([]cell, 0, len(datasets)*len(thetas))
	for di := range datasets {
		for ti := range thetas {
			cells = append(cells, cell{di, ti})
		}
	}
	rowTasks := make([]runner.Task[Figure4Row], len(cells))
	for i := range cells {
		c := cells[i]
		rowTasks[i] = func(context.Context) (Figure4Row, error) {
			theta := thetas[c.ti]
			var drops []float64
			if theta > 0 {
				drops = []float64{theta}
			}
			durs, _, err := profileSolo(profiles[c.di].job, drops, cost, cluCfg, 5,
				scale.Seed+int64(c.di)*1000+int64(theta*100))
			if err != nil {
				return Figure4Row{}, err
			}
			obs := mean(durs)
			ph, err := profiles[c.di].wm.processingPH(theta)
			if err != nil {
				return Figure4Row{}, err
			}
			pred, err := ph.Mean()
			if err != nil {
				return Figure4Row{}, err
			}
			return Figure4Row{
				Dataset: datasets[c.di].label, Theta: theta,
				ObservedSec: obs, PredictedSec: pred,
				ErrPct: analytics.RelativeErrorPct(obs, pred),
			}, nil
		}
	}
	rows, err := runner.Map(context.Background(), pool, rowTasks)
	if err != nil {
		return nil, err
	}
	out := &Figure4Result{Rows: rows, MeanErrPct: make(map[string]float64)}
	for di, ds := range datasets {
		var errSum float64
		for ti := range thetas {
			errSum += rows[di*len(thetas)+ti].ErrPct
		}
		out.MeanErrPct[ds.label] = errSum / float64(len(thetas))
	}
	return out, nil
}

// --- Figure 5: response-time model validation ------------------------------

// Figure5Row is one (theta, class) point of observed vs predicted mean
// response time under non-preemptive 2-class priority at 80% load.
type Figure5Row struct {
	Theta        float64
	Class        string
	ObservedSec  float64
	PredictedSec float64
}

// Figure5Result reproduces Figure 5.
type Figure5Result struct {
	Rows       []Figure5Row
	MeanErrPct float64
}

// String renders the figure data.
func (f *Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: mean response time vs drop ratio (model vs observed, 80% load)\n")
	b.WriteString("theta  class  observed[s]  predicted[s]\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%5.2f  %-5s  %10.2f  %10.2f\n", r.Theta, r.Class, r.ObservedSec, r.PredictedSec)
	}
	fmt.Fprintf(&b, "mean error: %.1f%%\n", f.MeanErrPct)
	return b.String()
}

// Figure5 runs the validation: low-priority jobs 2.36x larger, 9:1
// low:high ratio, 80% utilization, drop ratio θ applied to low-priority
// map tasks.
func Figure5(scale Scale) (*Figure5Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	lowJob, err := textJob("fig5-low", scale.Seed+11, 80, 1117<<20)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("fig5-high", scale.Seed+12, 34, 473<<20)
	if err != nil {
		return nil, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, cluCfg, 3, scale.Seed+13)
	if err != nil {
		return nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, scale.Seed+14)
	if err != nil {
		return nil, err
	}
	totalRate, err := workload.CalibrateTotalRate(
		[]float64{mean(lowDur), mean(highDur)}, []float64{0.9, 0.1}, 0.8)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio([]float64{9, 1}, totalRate)
	if err != nil {
		return nil, err
	}
	lowModel, err := profileWaveModel(lowJob, cost, cluCfg, scale.Seed+15)
	if err != nil {
		return nil, err
	}
	highModel, err := profileWaveModel(highJob, cost, cluCfg, scale.Seed+16)
	if err != nil {
		return nil, err
	}
	// One queueing scenario per theta; the runs are independent, so the
	// whole sweep fans out on the worker pool.
	thetas := []float64{0, 0.2, 0.4, 0.6, 0.8}
	scs := make([]scenario, len(thetas))
	for i, theta := range thetas {
		scs[i] = scenario{
			name:    fmt.Sprintf("DA(0,%.0f)", theta*100),
			policy:  core.PolicyDA([]float64{theta, 0}),
			rates:   rates,
			jobs:    []*engine.Job{lowJob, highJob},
			cost:    cost,
			cluster: cluCfg,
			scale:   scale,
		}
	}
	observed, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}
	out := &Figure5Result{}
	var errSum float64
	var n int
	for ti, theta := range thetas {
		obs := observed[ti]
		lowPH, err := lowModel.processingPH(theta)
		if err != nil {
			return nil, err
		}
		highPH, err := highModel.processingPH(0)
		if err != nil {
			return nil, err
		}
		pred, err := model.PredictMeanResponse([]model.ClassModel{
			{Rate: rates[0], Processing: lowPH},
			{Rate: rates[1], Processing: highPH},
		}, queueing.NonPreemptive)
		if err != nil {
			return nil, err
		}
		for k, label := range []string{"low", "high"} {
			out.Rows = append(out.Rows, Figure5Row{
				Theta: theta, Class: label,
				ObservedSec:  obs.PerClass[k].MeanResponseSec,
				PredictedSec: pred[k],
			})
			errSum += analytics.RelativeErrorPct(obs.PerClass[k].MeanResponseSec, pred[k])
			n++
		}
	}
	out.MeanErrPct = errSum / float64(n)
	return out, nil
}

// --- Figure 6: accuracy loss vs drop ratio ---------------------------------

// Figure6Row is one drop-ratio point of the accuracy-loss curve.
type Figure6Row struct {
	Theta   float64
	MAPEPct float64
}

// Figure6Result reproduces Figure 6: mean absolute percentage error of
// estimator-corrected word counts against the exact result, growing
// sub-linearly with the map-task drop ratio.
type Figure6Result struct {
	Rows []Figure6Row
}

// String renders the curve.
func (f *Figure6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: accuracy loss vs map drop ratio\n")
	b.WriteString("theta   MAPE[%]\n")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%5.2f   %6.1f\n", r.Theta, r.MAPEPct)
	}
	return b.String()
}

// Curve returns the result as an AccuracyCurve for the deflator, linearly
// interpolating between measured points.
func (f *Figure6Result) Curve() core.AccuracyCurve {
	rows := f.Rows
	return func(theta float64) float64 {
		if theta <= 0 || len(rows) == 0 {
			return 0
		}
		prevT, prevE := 0.0, 0.0
		for _, r := range rows {
			if theta <= r.Theta {
				return stats.Interpolate(prevT, prevE, r.Theta, r.MAPEPct, theta)
			}
			prevT, prevE = r.Theta, r.MAPEPct
		}
		return prevE
	}
}

// Figure6 measures accuracy loss across drop ratios, averaged over several
// synthetic topic datasets (the paper averages across StackExchange sites).
func Figure6(scale Scale) (*Figure6Result, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cost.NoiseSigma = 0 // accuracy, not latency, is measured here
	cluCfg := cluster.DefaultConfig()
	const datasets = 4
	thetas := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}
	pool := scale.pool()
	// Phase 1: per-dataset exact counts from a no-drop run.
	type exactRun struct {
		job   *engine.Job
		exact map[string]float64
	}
	exactTasks := make([]runner.Task[exactRun], datasets)
	for d := 0; d < datasets; d++ {
		d := d
		exactTasks[d] = func(context.Context) (exactRun, error) {
			cfg := workload.DefaultCorpusConfig()
			cfg.PostsPerPartition = 50
			rng := rand.New(rand.NewSource(scale.Seed + int64(d)*31))
			corpus, err := workload.SynthesizeCorpus(rng, cfg)
			if err != nil {
				return exactRun{}, err
			}
			job := wordJobFromCorpus(fmt.Sprintf("fig6-%d", d), corpus, 512<<20)
			exact, err := wordCountsForDrop(job, nil, cost, cluCfg, scale.Seed)
			if err != nil {
				return exactRun{}, err
			}
			return exactRun{job: job, exact: exact}, nil
		}
	}
	exacts, err := runner.Map(context.Background(), pool, exactTasks)
	if err != nil {
		return nil, err
	}
	// Phase 2: the dataset × theta grid of approximate runs.
	type cell struct{ d, ti int }
	cells := make([]cell, 0, datasets*len(thetas))
	for d := 0; d < datasets; d++ {
		for ti := range thetas {
			cells = append(cells, cell{d, ti})
		}
	}
	mapeTasks := make([]runner.Task[float64], len(cells))
	for i := range cells {
		c := cells[i]
		mapeTasks[i] = func(context.Context) (float64, error) {
			theta := thetas[c.ti]
			approx, err := wordCountsForDrop(exacts[c.d].job, []float64{theta}, cost, cluCfg, scale.Seed+int64(c.ti))
			if err != nil {
				return 0, err
			}
			scaled := analytics.ScaleCounts(approx, 1-theta)
			return analytics.WordAccuracyMAPE(exacts[c.d].exact, scaled, 100)
		}
	}
	mapes, err := runner.Map(context.Background(), pool, mapeTasks)
	if err != nil {
		return nil, err
	}
	// Accumulate in dataset-major order so sums stay bit-identical to the
	// old serial loop.
	sums := make([]float64, len(thetas))
	for i, c := range cells {
		sums[c.ti] += mapes[i]
	}
	out := &Figure6Result{}
	for ti, theta := range thetas {
		out.Rows = append(out.Rows, Figure6Row{Theta: theta, MAPEPct: sums[ti] / datasets})
	}
	return out, nil
}

func wordCountsForDrop(job *engine.Job, drops []float64, cost engine.CostModel, cluCfg cluster.Config, seed int64) (map[string]float64, error) {
	_, res, err := profileSolo(job, drops, cost, cluCfg, 1, seed)
	if err != nil {
		return nil, err
	}
	return analytics.WordCounts(res.Output), nil
}

// --- Figures 7-9: differential approximation -------------------------------

// twoClassSetup parameterizes the reference text workload (§5.2.1) and its
// sensitivity variants (§5.2.2).
type twoClassSetup struct {
	lowPosts, highPosts int
	lowSize, highSize   int64
	ratio               []float64 // arrival ratio low:high
	util                float64
}

// referenceSetup mirrors the paper: sizes 1117 MB / 473 MB (2.36x), 9:1
// low:high arrivals, 80% load.
func referenceSetup() twoClassSetup {
	return twoClassSetup{
		lowPosts: 80, highPosts: 34,
		lowSize: 1117 << 20, highSize: 473 << 20,
		ratio: []float64{9, 1},
		util:  0.8,
	}
}

// runTwoClass runs P, NP, DA(0,10), DA(0,20) on a two-class setup.
func runTwoClass(title string, setup twoClassSetup, scale Scale) (*ComparisonFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	lowJob, err := textJob("low", scale.Seed+21, setup.lowPosts, setup.lowSize)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("high", scale.Seed+22, setup.highPosts, setup.highSize)
	if err != nil {
		return nil, err
	}
	lowDur, _, err := profileSolo(lowJob, nil, cost, cluCfg, 3, scale.Seed+23)
	if err != nil {
		return nil, err
	}
	highDur, _, err := profileSolo(highJob, nil, cost, cluCfg, 3, scale.Seed+24)
	if err != nil {
		return nil, err
	}
	mixFrac := []float64{setup.ratio[0] / (setup.ratio[0] + setup.ratio[1]), setup.ratio[1] / (setup.ratio[0] + setup.ratio[1])}
	totalRate, err := workload.CalibrateTotalRate([]float64{mean(lowDur), mean(highDur)}, mixFrac, setup.util)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio(setup.ratio, totalRate)
	if err != nil {
		return nil, err
	}
	jobs := []*engine.Job{lowJob, highJob}
	policies := []struct {
		name   string
		policy core.Config
	}{
		{"P", core.PolicyP(2)},
		{"NP", core.PolicyNP(2)},
		{"DA(0,10)", core.PolicyDA([]float64{0.1, 0})},
		{"DA(0,20)", core.PolicyDA([]float64{0.2, 0})},
	}
	scs := make([]scenario, len(policies))
	for i, p := range policies {
		scs[i] = scenario{
			name: p.name, policy: p.policy, rates: rates,
			jobs: jobs, cost: cost, cluster: cluCfg, scale: scale,
		}
	}
	results, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &ComparisonFigure{Title: title, Baseline: results[0], Others: results[1:]}, nil
}

// Figure7 is the two-priority reference comparison (§5.2.1).
func Figure7(scale Scale) (*ComparisonFigure, error) {
	return runTwoClass("Figure 7: two-priority reference setup", referenceSetup(), scale)
}

// Figure8Variant names a sensitivity scenario of §5.2.2.
type Figure8Variant string

// The three §5.2.2 variants.
const (
	Figure8EqualSizes Figure8Variant = "a-equal-sizes"
	Figure8MoreHigh   Figure8Variant = "b-more-high-priority"
	Figure8HalfLoad   Figure8Variant = "c-50pct-load"
)

// Figure8 runs one sensitivity variant.
func Figure8(variant Figure8Variant, scale Scale) (*ComparisonFigure, error) {
	setup := referenceSetup()
	switch variant {
	case Figure8EqualSizes:
		setup.highPosts = setup.lowPosts
		setup.highSize = setup.lowSize
	case Figure8MoreHigh:
		setup.ratio = []float64{1, 9}
	case Figure8HalfLoad:
		setup.util = 0.5
	default:
		return nil, fmt.Errorf("experiments: unknown Figure 8 variant %q", variant)
	}
	return runTwoClass("Figure 8"+string(variant), setup, scale)
}

// Figure9 is the three-priority comparison (§5.2.3): arrival ratio
// high-medium-low = 1-4-5 at 80% load, with DA(0,10,20) and DA(0,20,40).
func Figure9(scale Scale) (*ComparisonFigure, error) {
	if err := scale.validate(); err != nil {
		return nil, err
	}
	cost := textCostModel()
	cluCfg := cluster.DefaultConfig()
	lowJob, err := textJob("low", scale.Seed+31, 80, 1117<<20)
	if err != nil {
		return nil, err
	}
	midJob, err := textJob("mid", scale.Seed+32, 55, 760<<20)
	if err != nil {
		return nil, err
	}
	highJob, err := textJob("high", scale.Seed+33, 34, 473<<20)
	if err != nil {
		return nil, err
	}
	jobs := []*engine.Job{lowJob, midJob, highJob}
	var execs []float64
	for i, j := range jobs {
		d, _, err := profileSolo(j, nil, cost, cluCfg, 3, scale.Seed+40+int64(i))
		if err != nil {
			return nil, err
		}
		execs = append(execs, mean(d))
	}
	// Ratio low-mid-high = 5-4-1.
	ratio := []float64{5, 4, 1}
	mixFrac := []float64{0.5, 0.4, 0.1}
	totalRate, err := workload.CalibrateTotalRate(execs, mixFrac, 0.8)
	if err != nil {
		return nil, err
	}
	rates, err := workload.MixFromRatio(ratio, totalRate)
	if err != nil {
		return nil, err
	}
	policies := []struct {
		name   string
		policy core.Config
	}{
		{"P", core.PolicyP(3)},
		{"NP", core.PolicyNP(3)},
		{"DA(0,10,20)", core.PolicyDA([]float64{0.2, 0.1, 0})},
		{"DA(0,20,40)", core.PolicyDA([]float64{0.4, 0.2, 0})},
	}
	scs := make([]scenario, len(policies))
	for i, p := range policies {
		scs[i] = scenario{
			name: p.name, policy: p.policy, rates: rates,
			jobs: jobs, cost: cost, cluster: cluCfg, scale: scale,
		}
	}
	results, err := runScenarios(scs)
	if err != nil {
		return nil, err
	}
	return &ComparisonFigure{
		Title:    "Figure 9: three-priority system",
		Baseline: results[0],
		Others:   results[1:],
	}, nil
}
