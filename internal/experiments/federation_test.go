package experiments

import (
	"reflect"
	"testing"
)

func fedScale() Scale {
	s := Scale{Jobs: 30, WarmupFraction: 0.1, Seed: 5}
	if testing.Short() {
		s.Jobs = 15
	}
	return s
}

// TestFederationHeterogeneousWorkerCountInvariance enforces the runner
// contract on the federated grid: each cell owns its whole federation
// (clock, members, routing policy, RNGs), so the figure must be
// bit-identical at any worker count.
func TestFederationHeterogeneousWorkerCountInvariance(t *testing.T) {
	serial := fedScale()
	serial.Workers = 1
	parallel := fedScale()
	parallel.Workers = 8
	want, err := FederationHeterogeneous(serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FederationHeterogeneous(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("heterogeneous federation differs between 1 and 8 workers:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

func TestFederationScaleOutWorkerCountInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("24-cell grid; run without -short")
	}
	serial := fedScale()
	serial.Workers = 1
	parallel := fedScale()
	parallel.Workers = 8
	want, err := FederationScaleOut(serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FederationScaleOut(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("scale-out federation differs between 1 and 8 workers:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

func TestFederationScaleOutShape(t *testing.T) {
	sc := fedScale()
	fig, err := FederationScaleOut(sc)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := len(federationPolicySet()) * len(FederationScaleOutClusterCounts)
	if len(fig.Rows) != wantRows {
		t.Fatalf("%d rows, want %d", len(fig.Rows), wantRows)
	}
	for _, row := range fig.Rows {
		var completed, routed int
		for _, cs := range row.Overall.PerClass {
			completed += cs.Jobs
		}
		for _, c := range row.PerCluster {
			routed += c.RoutedJobs
		}
		if routed != sc.Jobs {
			t.Fatalf("%s: routed %d of %d arrivals", row.Name, routed, sc.Jobs)
		}
		// Post-warmup completions: everything beyond the skipped prefix.
		warm := sc.Jobs - int(float64(sc.Jobs)*sc.WarmupFraction)
		if completed != warm {
			t.Fatalf("%s: %d post-warmup completions, want %d", row.Name, completed, warm)
		}
		if row.Overall.EnergyJoules <= 0 || row.Overall.MakespanSec <= 0 {
			t.Fatalf("%s: degenerate rollup %+v", row.Name, row.Overall)
		}
	}
	if fig.Scenarios()[0].Name != fig.Rows[0].Overall.Name {
		t.Fatal("Scenarios() does not expose the overall rollups")
	}
	if fig.String() == "" {
		t.Fatal("empty rendering")
	}
}
