package experiments

import (
	"math/rand"
	"strings"
	"testing"

	"dias/internal/metrics"
	"dias/internal/workload"
)

// extScale sizes the extension tests; -short drops the arrival count
// further for the CI fast lane.
func extScale() Scale {
	s := Scale{Jobs: 90, WarmupFraction: 0.1, Seed: 3}
	if testing.Short() {
		s.Jobs = 60
	}
	return s
}

func TestExtensionBurstyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("bursty queueing needs the longer arrival stream")
	}
	res, err := ExtensionBursty(extScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, fig := range []struct {
		name string
		f    *ComparisonFigure
	}{{"poisson", res.Poisson}, {"bursty", res.Bursty}} {
		comps := fig.f.Comparisons()
		if len(comps) != 2 {
			t.Fatalf("%s: %d comparisons, want 2 (NP, DA)", fig.name, len(comps))
		}
		da := comps[1]
		if !strings.HasPrefix(da.Name, "DA") {
			t.Fatalf("%s: second comparison is %q", fig.name, da.Name)
		}
		// DA must improve the low class (class 0) over preemptive P.
		if da.MeanDiffPct[0] >= 0 {
			t.Errorf("%s: DA low-priority mean diff %+.1f%%, want negative", fig.name, da.MeanDiffPct[0])
		}
	}
	// Burstiness with the same mean rates must not make P's low-priority
	// latency better than a 2x improvement of the Poisson case (sanity:
	// bursts pile up queues).
	pBase := res.Poisson.Baseline.PerClass[0].MeanResponseSec
	bBase := res.Bursty.Baseline.PerClass[0].MeanResponseSec
	if bBase < pBase/2 {
		t.Errorf("bursty P low mean %.1fs implausibly below Poisson %.1fs", bBase, pBase)
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestExtensionVariableSizesShape(t *testing.T) {
	fig, err := ExtensionVariableSizes(extScale())
	if err != nil {
		t.Fatal(err)
	}
	comps := fig.Comparisons()
	if len(comps) != 3 {
		t.Fatalf("%d comparisons, want 3", len(comps))
	}
	da20 := comps[2]
	if da20.MeanDiffPct[0] >= 0 {
		t.Errorf("DA(0,20) low-priority mean diff %+.1f%%, want negative", da20.MeanDiffPct[0])
	}
	// The baseline still completes every non-warmup job.
	if fig.Baseline.PerClass[0].Jobs == 0 || fig.Baseline.PerClass[1].Jobs == 0 {
		t.Error("baseline classes missing completions")
	}
}

func TestAblationModelLevel(t *testing.T) {
	res, err := AblationModelLevel(extScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows, want 5", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.ObservedSec <= 0 || row.TaskLevelSec <= 0 || row.WaveLevelSec <= 0 {
			t.Fatalf("non-positive entry in %+v", row)
		}
	}
	// Both models decrease monotonically-ish with theta; check endpoints.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.WaveLevelSec >= first.WaveLevelSec {
		t.Errorf("wave model did not shrink with dropping: %.1f -> %.1f",
			first.WaveLevelSec, last.WaveLevelSec)
	}
	if res.WaveMAPE > 35 {
		t.Errorf("wave-level MAPE %.1f%% exceeds 35%%", res.WaveMAPE)
	}
	if res.TaskMAPE <= 0 || res.WaveMAPE <= 0 {
		t.Error("MAPEs not computed")
	}
	if !strings.Contains(res.String(), "MAPE") {
		t.Error("rendering lacks summary")
	}
}

func TestExtensionFailuresShape(t *testing.T) {
	fig, err := ExtensionFailures(extScale())
	if err != nil {
		t.Fatal(err)
	}
	comps := fig.Comparisons()
	if len(comps) != 3 {
		t.Fatalf("%d comparisons, want 3", len(comps))
	}
	// Every scenario completes all non-warmup jobs despite failures.
	for _, r := range append([]metrics.ScenarioResult{fig.Baseline}, fig.Others...) {
		for k, cs := range r.PerClass {
			if cs.Jobs == 0 {
				t.Errorf("%s class %d has no completions", r.Name, k)
			}
		}
	}
	// DA without faults still beats P without faults on the low class.
	da := comps[1]
	if da.MeanDiffPct[0] >= 0 {
		t.Errorf("DA low-priority mean diff %+.1f%%, want negative", da.MeanDiffPct[0])
	}
}

func TestExtensionAdaptiveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("needs the full arrival stream for the controller to act")
	}
	sc := extScale()
	sc.Jobs = 120 // enough post-step jobs for the controller to act
	res, err := ExtensionAdaptive(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	np, da, ad := res.Rows[0], res.Rows[1], res.Rows[2]
	if res.ThetaDecisions == 0 {
		t.Fatal("controller made no decisions across the load step")
	}
	// The controller must drop less on average than static DA(0,20) (it
	// pays nothing during the calm phase)...
	if ad.MeanDrop >= da.MeanDrop {
		t.Errorf("adaptive mean drop %.3f not below static %.3f", ad.MeanDrop, da.MeanDrop)
	}
	if ad.MeanDrop == 0 {
		t.Error("adaptive never dropped despite the overload step")
	}
	// ...while improving low-priority latency over plain NP.
	if ad.LowMeanSec >= np.LowMeanSec {
		t.Errorf("adaptive low mean %.1fs not below NP %.1fs", ad.LowMeanSec, np.LowMeanSec)
	}
	if !strings.Contains(res.String(), "controller decisions") {
		t.Error("rendering lacks decision count")
	}
}

func TestBurstyProcessMatchesMeanRates(t *testing.T) {
	rates := []float64{0.9, 0.1}
	rng := rand.New(rand.NewSource(17))
	proc, err := burstyProcess(rates, rng)
	if err != nil {
		t.Fatal(err)
	}
	arr := workload.StreamOf(proc, rng, 30000)
	gotRate := float64(len(arr)) / arr[len(arr)-1].At
	if gotRate < 0.9 || gotRate > 1.1 {
		t.Errorf("bursty total rate %.3f, want ~1.0", gotRate)
	}
	var high int
	for _, a := range arr {
		if a.Class == 1 {
			high++
		}
	}
	frac := float64(high) / float64(len(arr))
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("high-class fraction %.3f, want ~0.10", frac)
	}
}
