package experiments

import (
	"reflect"
	"testing"

	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/faults"
)

func faultScale() Scale {
	s := Scale{Jobs: 40, WarmupFraction: 0.1, Seed: 5}
	if testing.Short() {
		s.Jobs = 20
	}
	return s
}

// TestFaultToleranceWorkerCountInvariance enforces the runner contract on
// the fault grid: every cell owns its whole stack including the injection
// layer's RNGs, so results must be bit-identical at any worker count.
func TestFaultToleranceWorkerCountInvariance(t *testing.T) {
	serial := faultScale()
	serial.Workers = 1
	parallel := faultScale()
	parallel.Workers = 8
	want, err := FaultTolerance(serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FaultTolerance(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fault grid differs between 1 and 8 workers:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

// TestElasticityWorkerCountInvariance covers the autoscaled cells: scaling
// decisions ride the virtual clock, not the host scheduler.
func TestElasticityWorkerCountInvariance(t *testing.T) {
	serial := faultScale()
	serial.Workers = 1
	parallel := faultScale()
	parallel.Workers = 8
	want, err := Elasticity(serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Elasticity(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("elasticity figure differs between 1 and 8 workers:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

func TestFederationOutageWorkerCountInvariance(t *testing.T) {
	serial := fedScale()
	serial.Workers = 1
	parallel := fedScale()
	parallel.Workers = 8
	want, err := FederationOutage(serial)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FederationOutage(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("outage figure differs between 1 and 8 workers:\nserial:\n%s\nparallel:\n%s", want, got)
	}
}

// TestFaultToleranceConservation is the driver-level acceptance check:
// with a deliberately harsh bounded-retry regime, every arrival shows up
// in the statistics as either a completion or a failed job — jobs plus
// failures equals arrivals (the accumulator sees every record; warmup 0).
func TestFaultToleranceConservation(t *testing.T) {
	sc := faultScale()
	sc.WarmupFraction = 0
	harsh := &faults.Config{
		Churn: &faults.ChurnConfig{MTTFSec: 600, MTTRSec: 60},
		Tasks: &faults.TaskFaultConfig{
			FailProb: 0.25, MaxAttempts: 2,
			StragglerProb: 0.05, StragglerFactor: 3,
		},
	}
	lowJob, err := textJob("low", sc.Seed+1, 20, 1<<27)
	if err != nil {
		t.Fatal(err)
	}
	highJob, err := textJob("high", sc.Seed+2, 10, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := runScenarios([]scenario{{
		name:      "harsh",
		policy:    core.PolicyDA([]float64{0.2, 0}),
		rates:     []float64{0.02, 0.004},
		jobs:      []*engine.Job{lowJob, highJob},
		cost:      textCostModel(),
		cluster:   cluster.DefaultConfig(),
		scale:     sc,
		faultPlan: harsh,
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := rows[0]
	var outcomes int
	for _, cs := range r.PerClass {
		outcomes += cs.Jobs + cs.FailedJobs
	}
	if outcomes != sc.Jobs {
		t.Fatalf("completions+failures = %d, want %d arrivals", outcomes, sc.Jobs)
	}
	if r.FailedJobs == 0 {
		t.Fatal("harsh regime failed no jobs; the retry-exhaustion path is untested")
	}
	if r.TasksRetried == 0 || r.FailureWastePct <= 0 {
		t.Fatalf("failure accounting empty: retries=%d waste=%g%%", r.TasksRetried, r.FailureWastePct)
	}
}

// TestElasticityShape sanity-checks the economics: the autoscaled cells
// must pay for less capacity than the fixed large cluster.
func TestElasticityShape(t *testing.T) {
	fig, err := Elasticity(faultScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(fig.Rows))
	}
	byName := map[string]int{}
	for i, r := range fig.Rows {
		byName[r.Name] = i
	}
	fixed16 := fig.Rows[byName["fixed-16"]]
	for _, name := range []string{"backlog-as", "latency-as"} {
		as := fig.Rows[byName[name]]
		if as.MeanPoweredNodes >= fixed16.MeanPoweredNodes {
			t.Errorf("%s pays for %.1f nodes, fixed-16 pays %.1f — no elasticity",
				name, as.MeanPoweredNodes, fixed16.MeanPoweredNodes)
		}
		if as.EnergyJoules >= fixed16.EnergyJoules {
			t.Errorf("%s energy %.0f >= fixed-16 %.0f", name, as.EnergyJoules, fixed16.EnergyJoules)
		}
	}
}
