package experiments

import (
	"strings"
	"testing"
)

func TestAblationSprintTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy scenario sweep")
	}
	sc := extScale()
	sc.Jobs = 60
	fig, err := AblationSprintTimeout(sc)
	if err != nil {
		t.Fatal(err)
	}
	comps := fig.Comparisons()
	if len(comps) != 2 {
		t.Fatalf("%d comparisons, want 2 (immediate, timeout)", len(comps))
	}
	// Sprinting under a finite budget must not hurt the high class badly;
	// both variants should improve or roughly hold its mean latency.
	for _, c := range comps {
		if c.MeanDiffPct[1] > 15 {
			t.Errorf("%s: high-priority mean +%.1f%% under sprinting", c.Name, c.MeanDiffPct[1])
		}
	}
	if !strings.Contains(fig.String(), "sprint-timeout") {
		t.Error("rendering lacks title")
	}
}

func TestAblationEvictionResume(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy scenario sweep")
	}
	res, err := AblationEvictionResume(extScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.ResourceWastePct <= 0 {
		t.Error("preemptive-repeat produced no waste at 80% load")
	}
	if res.PerClass[0].Evictions == 0 {
		t.Error("no low-priority evictions recorded")
	}
}

func TestAblationDropTiming(t *testing.T) {
	res, err := AblationDropTiming(extScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedExecSec >= res.FullExecSec {
		t.Fatalf("theta=0.5 exec %.1fs not below full %.1fs", res.DroppedExecSec, res.FullExecSec)
	}
	// Dropping half the tasks should save a substantial fraction.
	if res.DroppedExecSec > 0.9*res.FullExecSec {
		t.Errorf("early drop saved only %.0f%%",
			100*(1-res.DroppedExecSec/res.FullExecSec))
	}
}

func TestFigureRenderings(t *testing.T) {
	f4 := &Figure4Result{
		Rows:       []Figure4Row{{Dataset: "126", Theta: 0.2, ObservedSec: 15.4, PredictedSec: 15.3, ErrPct: 0.8}},
		MeanErrPct: map[string]float64{"126": 0.8},
	}
	if s := f4.String(); !strings.Contains(s, "126") || !strings.Contains(s, "0.20") {
		t.Errorf("figure 4 rendering: %q", s)
	}
	f5 := &Figure5Result{
		Rows: []Figure5Row{{Theta: 0.2, Class: "low", ObservedSec: 47.7, PredictedSec: 46.2}},
	}
	if s := f5.String(); !strings.Contains(s, "low") {
		t.Errorf("figure 5 rendering: %q", s)
	}
	f6 := &Figure6Result{Rows: []Figure6Row{{Theta: 0.1, MAPEPct: 11.2}}}
	if s := f6.String(); !strings.Contains(s, "0.10") {
		t.Errorf("figure 6 rendering: %q", s)
	}
}
