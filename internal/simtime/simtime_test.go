package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyRun(t *testing.T) {
	s := New()
	s.Run()
	if got := s.Now(); got != 0 {
		t.Fatalf("Now() after empty Run = %v, want 0", got)
	}
}

func TestEventOrdering(t *testing.T) {
	s := New()
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestAfterClampsNegative(t *testing.T) {
	s := New()
	fired := false
	s.After(-1, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	s.At(5, func() {})
}

func TestNilCallbackPanics(t *testing.T) {
	s := New()
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	s.At(1, nil)
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	id := s.At(1, func() { fired = true })
	if !s.Cancel(id) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(id) {
		t.Fatal("Cancel returned true for already-cancelled event")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestCancelAfterFire(t *testing.T) {
	s := New()
	id := s.At(1, func() {})
	s.Run()
	if s.Cancel(id) {
		t.Fatal("Cancel returned true for fired event")
	}
}

func TestCancelMiddleOfHeap(t *testing.T) {
	s := New()
	var got []int
	ids := make([]EventID, 0, 20)
	for i := 0; i < 20; i++ {
		i := i
		ids = append(ids, s.At(Time(i), func() { got = append(got, i) }))
	}
	// Cancel every third event.
	want := make([]int, 0, 20)
	for i := 0; i < 20; i++ {
		if i%3 == 0 {
			s.Cancel(ids[i])
		} else {
			want = append(want, i)
		}
	}
	s.Run()
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	s := New()
	var times []Time
	var tick func()
	n := 0
	tick = func() {
		times = append(times, s.Now())
		n++
		if n < 5 {
			s.After(2, tick)
		}
	}
	s.After(2, tick)
	s.Run()
	for i, at := range times {
		if want := Time(2 * (i + 1)); at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(fired))
	}
	if s.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
	s.Run()
	if len(fired) != 5 {
		t.Fatalf("fired %d events after Run, want 5", len(fired))
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(100)
	if s.Now() != 100 {
		t.Fatalf("Now() = %v, want 100", s.Now())
	}
}

func TestRunFor(t *testing.T) {
	s := New()
	s.RunUntil(10)
	fired := false
	s.After(5, func() { fired = true })
	s.RunFor(5)
	if !fired {
		t.Fatal("event within RunFor window did not fire")
	}
	if s.Now() != 15 {
		t.Fatalf("Now() = %v, want 15", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Fatalf("fired %d events before Stop took effect, want 3", count)
	}
	if s.Pending() != 7 {
		t.Fatalf("Pending() = %d, want 7", s.Pending())
	}
}

func TestNextEventTime(t *testing.T) {
	s := New()
	if _, ok := s.NextEventTime(); ok {
		t.Fatal("NextEventTime ok on empty queue")
	}
	s.At(7, func() {})
	at, ok := s.NextEventTime()
	if !ok || at != 7 {
		t.Fatalf("NextEventTime = %v,%v want 7,true", at, ok)
	}
}

func TestTimer(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	if tm.Active() {
		t.Fatal("new timer active")
	}
	fired := 0
	tm.Reset(5, func() { fired++ })
	if !tm.Active() {
		t.Fatal("reset timer not active")
	}
	// Reset before firing replaces the deadline.
	tm.Reset(10, func() { fired += 100 })
	s.Run()
	if fired != 100 {
		t.Fatalf("fired = %d, want 100 (only the second reset)", fired)
	}
	if tm.Active() {
		t.Fatal("timer active after firing")
	}
	if tm.Stop() {
		t.Fatal("Stop returned true after firing")
	}
}

func TestTimerStop(t *testing.T) {
	s := New()
	tm := NewTimer(s)
	fired := false
	tm.Reset(5, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
}

func TestTimeArithmetic(t *testing.T) {
	var t0 Time = 10
	if got := t0.Add(5); got != 15 {
		t.Fatalf("Add = %v, want 15", got)
	}
	if got := Time(15).Sub(t0); got != 5 {
		t.Fatalf("Sub = %v, want 5", got)
	}
	if Time(1.5).Seconds() != 1.5 || Duration(2.5).Seconds() != 2.5 {
		t.Fatal("Seconds round-trip failed")
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(Time(1)) || !IsFinite(Duration(0)) {
		t.Fatal("finite values reported non-finite")
	}
	zero := Time(0)
	inf := Time(1) / zero
	if IsFinite(inf) || IsFinite(inf-inf) {
		t.Fatal("non-finite values reported finite")
	}
}

// Property: for any batch of events with random times, firing order equals
// sorted order by (time, insertion index), regardless of cancellations.
func TestPropertyOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		count := int(n%64) + 1
		type entry struct {
			at   Time
			seq  int
			keep bool
		}
		entries := make([]entry, count)
		var fired []int
		ids := make([]EventID, count)
		for i := 0; i < count; i++ {
			at := Time(rng.Intn(10)) // coarse times force ties
			entries[i] = entry{at: at, seq: i, keep: true}
			i := i
			ids[i] = s.At(at, func() { fired = append(fired, i) })
		}
		for i := 0; i < count; i++ {
			if rng.Intn(4) == 0 {
				entries[i].keep = false
				s.Cancel(ids[i])
			}
		}
		s.Run()
		var want []int
		kept := make([]entry, 0, count)
		for _, e := range entries {
			if e.keep {
				kept = append(kept, e)
			}
		}
		sort.SliceStable(kept, func(i, j int) bool { return kept[i].at < kept[j].at })
		for _, e := range kept {
			want = append(want, e.seq)
		}
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the clock is monotonically non-decreasing across callbacks.
func TestPropertyMonotonicClock(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		last := Time(-1)
		ok := true
		var spawn func()
		remaining := 100
		spawn = func() {
			if s.Now() < last {
				ok = false
			}
			last = s.Now()
			if remaining > 0 {
				remaining--
				s.After(Duration(rng.Float64()), spawn)
			}
		}
		for i := 0; i < 10; i++ {
			s.After(Duration(rng.Float64()*5), spawn)
		}
		s.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// --- Cancellation / rescheduling edge cases (new with the indexed heap) ---

func TestCancelDuringRun(t *testing.T) {
	s := New()
	var fired []int
	var idLater EventID
	s.At(1, func() {
		fired = append(fired, 1)
		// Cancel a later event from inside a callback mid-Run.
		if !s.Cancel(idLater) {
			t.Error("Cancel of pending event during Run returned false")
		}
	})
	idLater = s.At(2, func() { fired = append(fired, 2) })
	s.At(3, func() { fired = append(fired, 3) })
	s.Run()
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [1 3]", fired)
	}
}

func TestCancelSelfDuringCallback(t *testing.T) {
	s := New()
	var id EventID
	id = s.At(1, func() {
		// The firing event is already retired: cancelling yourself is a no-op.
		if s.Cancel(id) {
			t.Error("Cancel of the currently firing event returned true")
		}
	})
	s.Run()
}

func TestRescheduleMovesEvent(t *testing.T) {
	s := New()
	var fired []string
	id := s.At(1, func() { fired = append(fired, "moved") })
	s.At(5, func() { fired = append(fired, "fixed") })
	if !s.Reschedule(id, 9) {
		t.Fatal("Reschedule of pending event returned false")
	}
	s.Run()
	if len(fired) != 2 || fired[0] != "fixed" || fired[1] != "moved" {
		t.Fatalf("fired = %v, want [fixed moved]", fired)
	}
	if s.Now() != 9 {
		t.Fatalf("Now() = %v, want 9", s.Now())
	}
}

func TestRescheduleActsAsFreshScheduling(t *testing.T) {
	// Among events at the same instant, a rescheduled event fires after
	// events already queued there — it is ordered as if newly scheduled.
	s := New()
	var fired []string
	id := s.At(1, func() { fired = append(fired, "rescheduled") })
	s.At(7, func() { fired = append(fired, "first-at-7") })
	s.Reschedule(id, 7)
	s.Run()
	if len(fired) != 2 || fired[0] != "first-at-7" || fired[1] != "rescheduled" {
		t.Fatalf("fired = %v, want [first-at-7 rescheduled]", fired)
	}
}

func TestRescheduleAlreadyFired(t *testing.T) {
	s := New()
	id := s.At(1, func() {})
	s.Run()
	if s.Reschedule(id, 5) {
		t.Fatal("Reschedule of fired event returned true")
	}
	if s.RescheduleAfter(id, 5) {
		t.Fatal("RescheduleAfter of fired event returned true")
	}
}

func TestRescheduleCancelledEvent(t *testing.T) {
	s := New()
	id := s.At(1, func() { t.Error("cancelled event fired") })
	s.Cancel(id)
	if s.Reschedule(id, 2) {
		t.Fatal("Reschedule of cancelled event returned true")
	}
	s.Run()
}

func TestRescheduleIntoPastPanics(t *testing.T) {
	s := New()
	s.At(10, func() {})
	id := s.At(20, func() {})
	s.RunUntil(15)
	defer func() {
		if recover() == nil {
			t.Fatal("rescheduling into the past did not panic")
		}
	}()
	s.Reschedule(id, 5)
}

func TestRescheduleAfterClampsNegative(t *testing.T) {
	s := New()
	s.At(3, func() {})
	id := s.At(10, func() {})
	s.RunUntil(3)
	if !s.RescheduleAfter(id, -5) {
		t.Fatal("RescheduleAfter returned false for pending event")
	}
	at, ok := s.NextEventTime()
	if !ok || at != 3 {
		t.Fatalf("NextEventTime = %v,%v, want 3,true (clamped to now)", at, ok)
	}
}

func TestRescheduleDuringRun(t *testing.T) {
	// An event callback postpones a sibling event repeatedly; the sibling
	// must fire exactly once, at its final deadline.
	s := New()
	var sibling EventID
	count := 0
	sibling = s.At(2, func() { count++ })
	for _, at := range []Time{1, 3, 5} {
		at := at
		s.At(at, func() { s.Reschedule(sibling, at+3) })
	}
	s.Run()
	if count != 1 {
		t.Fatalf("sibling fired %d times, want 1", count)
	}
	if s.Now() != 8 {
		t.Fatalf("Now() = %v, want 8 (final deadline)", s.Now())
	}
}

func TestStaleIDAfterSlotReuse(t *testing.T) {
	// A fired event's slot is recycled for the next scheduling; the stale
	// id must not cancel or reschedule the new tenant.
	s := New()
	stale := s.At(1, func() {})
	s.Run()
	fired := false
	fresh := s.At(2, func() { fired = true })
	if s.Cancel(stale) {
		t.Fatal("stale id cancelled a recycled slot")
	}
	if s.Reschedule(stale, 50) {
		t.Fatal("stale id rescheduled a recycled slot")
	}
	s.Run()
	if !fired {
		t.Fatal("fresh event did not fire")
	}
	_ = fresh
}

// Property: interleaved cancels and reschedules preserve the (time, seq)
// firing order, where a reschedule re-anchors the event's seq as if it
// were freshly scheduled. The test mirrors the kernel's seq counter and
// checks the exact firing sequence against a reference sort.
func TestPropertyCancelRescheduleOrdering(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		count := int(n%48) + 2
		type entry struct {
			at   Time
			seq  int
			keep bool
		}
		entries := make([]entry, count)
		ids := make([]EventID, count)
		var fired []int
		nextSeq := 0
		for i := 0; i < count; i++ {
			at := Time(rng.Intn(8)) // coarse times force ties
			entries[i] = entry{at: at, seq: nextSeq, keep: true}
			nextSeq++
			i := i
			ids[i] = s.At(at, func() { fired = append(fired, i) })
		}
		for i := 0; i < count; i++ {
			switch rng.Intn(3) {
			case 0:
				entries[i].keep = !s.Cancel(ids[i])
			case 1:
				at := Time(rng.Intn(8))
				if s.Reschedule(ids[i], at) {
					// A reschedule re-anchors (at, seq) as a fresh scheduling.
					entries[i].at, entries[i].seq = at, nextSeq
					nextSeq++
				}
			}
		}
		s.Run()
		type keptEntry struct{ idx, seq int }
		var want []keptEntry
		for i, e := range entries {
			if e.keep {
				want = append(want, keptEntry{idx: i, seq: e.seq})
			}
		}
		sort.Slice(want, func(a, b int) bool {
			ea, eb := entries[want[a].idx], entries[want[b].idx]
			if ea.at != eb.at {
				return ea.at < eb.at
			}
			return ea.seq < eb.seq
		})
		if len(fired) != len(want) {
			return false
		}
		for i := range want {
			if fired[i] != want[i].idx {
				return false
			}
		}
		return s.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkTimerChurn exercises the Cancel/Reschedule hot path the engine
// and scheduler timers hit: an armed timer repeatedly restarted before it
// fires. With the indexed heap and closure reuse this allocates nothing
// per restart.
func BenchmarkTimerChurn(b *testing.B) {
	s := New()
	tm := NewTimer(s)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(1, fn)
	}
	tm.Stop()
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.At(Time(j%97), func() {})
		}
		s.Run()
	}
}
