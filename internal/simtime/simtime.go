package simtime

import (
	"fmt"
	"math"
)

// Time is an absolute instant on the virtual clock, in seconds since the
// start of the simulation.
type Time float64

// Duration is a span of virtual time, in seconds.
type Duration float64

// Common durations.
const (
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// String formats the duration as seconds with millisecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.3fs", float64(d)) }

// EventID identifies a scheduled event so it can be cancelled or
// rescheduled. The zero EventID is never issued. IDs encode an arena slot
// plus a generation counter, so a stale ID (event already fired, cancelled,
// or its slot since reused) is detected in O(1) without any map lookup.
type EventID uint64

// makeID packs a slot index and its generation into an EventID. Slot is
// stored +1 so the zero EventID is never issued.
func makeID(slot int32, gen uint32) EventID {
	return EventID(gen)<<32 | EventID(uint32(slot+1))
}

// event is a pending callback on the simulation timeline, stored in the
// simulation's arena and reused (same slot, bumped generation) after it
// fires or is cancelled.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events at the same instant
	fn  func()
	gen uint32
	pos int32 // index in the heap, -1 while the slot is free
}

// heapArity is the fan-out of the event heap. A 4-ary heap halves the tree
// depth versus a binary heap and keeps sibling keys on one cache line,
// which measurably speeds the sift-down in event-dense simulations.
const heapArity = 4

// Simulation is a single-threaded discrete-event simulator.
// The zero value is not usable; call New.
//
// Internally the pending-event set is an indexed d-ary heap over an event
// arena: scheduling, firing, cancellation, and rescheduling are all
// O(log n) sifts on int32 slot indices, with no per-event allocation once
// the arena has warmed up and no auxiliary id map.
type Simulation struct {
	now     Time
	events  []event // arena; EventIDs address slots in it
	heap    []int32 // slot indices ordered as a heapArity-ary min-heap
	free    []int32 // recycled arena slots
	nextSeq uint64
	stopped bool
	// interrupt, when non-nil, is polled between events by Run/RunUntil;
	// a true return makes them bail out like Stop. Unlike the stopped
	// flag it is not cleared on entry, so an external controller (the
	// sharded kernel's Stop) can halt a loop it does not run on.
	interrupt func() bool
}

// New returns an empty simulation with the clock at zero.
func New() *Simulation {
	return &Simulation{}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// less orders heap entries by (at, seq).
func (s *Simulation) less(a, b int32) bool {
	ea, eb := &s.events[a], &s.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

func (s *Simulation) siftUp(i int) {
	slot := s.heap[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !s.less(slot, s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		s.events[s.heap[i]].pos = int32(i)
		i = parent
	}
	s.heap[i] = slot
	s.events[slot].pos = int32(i)
}

func (s *Simulation) siftDown(i int) {
	n := len(s.heap)
	slot := s.heap[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.less(s.heap[c], s.heap[best]) {
				best = c
			}
		}
		if !s.less(s.heap[best], slot) {
			break
		}
		s.heap[i] = s.heap[best]
		s.events[s.heap[i]].pos = int32(i)
		i = best
	}
	s.heap[i] = slot
	s.events[slot].pos = int32(i)
}

// removeHeap detaches the heap entry at position i, restoring heap order.
func (s *Simulation) removeHeap(i int) {
	n := len(s.heap) - 1
	if i != n {
		s.heap[i] = s.heap[n]
		s.events[s.heap[i]].pos = int32(i)
	}
	s.heap = s.heap[:n]
	if i != n {
		s.siftDown(i)
		s.siftUp(i)
	}
}

// lookup resolves an EventID to its live arena event, or nil when the
// event already fired, was cancelled, or the id was never issued.
func (s *Simulation) lookup(id EventID) *event {
	slot := int32(uint32(id)) - 1
	if slot < 0 || int(slot) >= len(s.events) {
		return nil
	}
	ev := &s.events[slot]
	if ev.pos < 0 || ev.gen != uint32(id>>32) {
		return nil
	}
	return ev
}

// release returns a fired or cancelled event's slot to the freelist. The
// generation bump invalidates outstanding EventIDs for the slot, and
// dropping fn releases the callback's closure immediately rather than
// keeping it alive until the slot is reused.
func (s *Simulation) release(slot int32) {
	ev := &s.events[slot]
	ev.fn = nil
	ev.pos = -1
	ev.gen++
	s.free = append(s.free, slot)
}

// At schedules fn to run at instant t. Scheduling in the past (before Now)
// panics: it indicates a logic error in the caller.
func (s *Simulation) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("simtime: nil event callback")
	}
	var slot int32
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = int32(len(s.events))
		s.events = append(s.events, event{pos: -1})
	}
	ev := &s.events[slot]
	s.nextSeq++
	ev.at, ev.seq, ev.fn = t, s.nextSeq, fn
	ev.pos = int32(len(s.heap))
	s.heap = append(s.heap, slot)
	s.siftUp(int(ev.pos))
	return makeID(slot, ev.gen)
}

// After schedules fn to run d after the current time. Negative durations
// are clamped to zero.
func (s *Simulation) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already fired, was cancelled, or never existed).
func (s *Simulation) Cancel(id EventID) bool {
	ev := s.lookup(id)
	if ev == nil {
		return false
	}
	pos := int(ev.pos)
	slot := s.heap[pos]
	s.removeHeap(pos)
	s.release(slot)
	return true
}

// Reschedule moves a pending event to instant t, keeping its callback. The
// move counts as a fresh scheduling for FIFO ordering: among events at the
// same instant, a rescheduled event fires after ones already queued there.
// It reports whether the event was still pending; rescheduling into the
// past panics like At.
func (s *Simulation) Reschedule(id EventID, t Time) bool {
	if t < s.now {
		panic(fmt.Sprintf("simtime: rescheduling event to %v before now %v", t, s.now))
	}
	ev := s.lookup(id)
	if ev == nil {
		return false
	}
	s.nextSeq++
	ev.at, ev.seq = t, s.nextSeq
	// The key only grew or moved arbitrarily: restore order from its slot.
	s.siftDown(int(ev.pos))
	s.siftUp(int(ev.pos))
	return true
}

// RescheduleAfter moves a pending event to d after the current time,
// clamping negative durations to zero like After. It reports whether the
// event was still pending. This is the allocation-free alternative to
// Cancel + After for restartable timers: the callback closure is reused.
func (s *Simulation) RescheduleAfter(id EventID, d Duration) bool {
	if d < 0 {
		d = 0
	}
	return s.Reschedule(id, s.now.Add(d))
}

// Pending returns the number of events waiting to fire.
func (s *Simulation) Pending() int { return len(s.heap) }

// Stop makes the currently executing Run return after the current event's
// callback finishes. Pending events stay queued.
func (s *Simulation) Stop() { s.stopped = true }

// SetInterrupt installs a poll the run loops consult between events; a
// true return makes Run/RunUntil bail out like Stop, but the condition is
// owned by the caller and survives loop re-entry (Run clears the stopped
// flag, not the interrupt). The sharded kernel uses this to halt member
// partition loops from the coordinator mid-window. Passing nil removes
// the hook; the poll must be safe to call from the goroutine running the
// loop.
func (s *Simulation) SetInterrupt(poll func() bool) { s.interrupt = poll }

// interrupted polls the interrupt hook, if any.
func (s *Simulation) interrupted() bool { return s.interrupt != nil && s.interrupt() }

// step fires the earliest pending event. It reports false when the queue is
// empty.
func (s *Simulation) step() bool {
	if len(s.heap) == 0 {
		return false
	}
	slot := s.heap[0]
	ev := &s.events[slot]
	s.now = ev.at
	fn := ev.fn
	s.removeHeap(0)
	s.release(slot)
	// The event is fully retired before its callback runs: fn may cancel,
	// reschedule, or schedule events (growing the arena) freely.
	fn()
	return true
}

// Run fires events until the queue drains, Stop is called, or the
// interrupt hook trips.
func (s *Simulation) Run() {
	s.stopped = false
	for !s.stopped && !s.interrupted() && s.step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
// Events scheduled after t stay pending. An interrupt leaves the clock at
// the last fired event, like Stop.
func (s *Simulation) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped && len(s.heap) > 0 && s.events[s.heap[0]].at <= t {
		if s.interrupted() {
			return
		}
		s.step()
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

// runEventsUntil fires every event at or before t but, unlike RunUntil,
// never advances the clock past the last event fired. The sharded kernel
// uses it for conservative windows whose horizon is a bound, not an
// instant anything happens at — overshooting there would inflate the
// final clock past the serial kernel's makespan.
func (s *Simulation) runEventsUntil(t Time) {
	s.stopped = false
	for !s.stopped && len(s.heap) > 0 && s.events[s.heap[0]].at <= t {
		if s.interrupted() {
			return
		}
		s.step()
	}
}

// RunFor runs the simulation for a span of virtual time from the current
// instant.
func (s *Simulation) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// NextEventTime returns the timestamp of the earliest pending event, or
// (0, false) when the queue is empty.
func (s *Simulation) NextEventTime() (Time, bool) {
	if len(s.heap) == 0 {
		return 0, false
	}
	return s.events[s.heap[0]].at, true
}

// Timer is a restartable one-shot timer bound to a Simulation, analogous to
// time.Timer. The zero value is not usable; call NewTimer.
//
// Reset on an armed timer reschedules the pending event in place, so a
// timer allocates exactly one callback closure over its whole lifetime no
// matter how many times it restarts.
type Timer struct {
	sim  *Simulation
	id   EventID
	fn   func()
	fire func()
	set  bool
}

// NewTimer returns a stopped timer bound to sim.
func NewTimer(sim *Simulation) *Timer {
	t := &Timer{sim: sim}
	t.fire = func() {
		t.set = false
		fn := t.fn
		t.fn = nil
		fn()
	}
	return t
}

// Reset schedules fn to fire d from now, cancelling any pending firing.
func (t *Timer) Reset(d Duration, fn func()) {
	t.fn = fn
	if t.set && t.sim.RescheduleAfter(t.id, d) {
		return
	}
	t.id = t.sim.After(d, t.fire)
	t.set = true
}

// Stop cancels the pending firing, if any. It reports whether a firing was
// cancelled.
func (t *Timer) Stop() bool {
	if !t.set {
		return false
	}
	t.set = false
	t.fn = nil
	return t.sim.Cancel(t.id)
}

// Active reports whether the timer has a pending firing.
func (t *Timer) Active() bool { return t.set }

// IsFinite reports whether t is a usable instant (not NaN or ±Inf).
// Simulation entry points use it to validate externally supplied times.
func IsFinite[T ~float64](t T) bool {
	f := float64(t)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
