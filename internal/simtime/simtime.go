// Package simtime provides a deterministic discrete-event simulation kernel.
//
// All DiAS experiments run on virtual time: a Simulation owns a clock and a
// priority queue of scheduled events. Events scheduled for the same instant
// fire in scheduling order, which keeps runs bit-for-bit reproducible.
//
// Time is represented as seconds in a float64-backed type. The simulation
// never reads the wall clock.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is an absolute instant on the virtual clock, in seconds since the
// start of the simulation.
type Time float64

// Duration is a span of virtual time, in seconds.
type Duration float64

// Common durations.
const (
	Millisecond Duration = 1e-3
	Second      Duration = 1
	Minute      Duration = 60
	Hour        Duration = 3600
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Seconds returns the duration as a float64 number of seconds.
func (d Duration) Seconds() float64 { return float64(d) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", float64(t)) }

// String formats the duration as seconds with millisecond precision.
func (d Duration) String() string { return fmt.Sprintf("%.3fs", float64(d)) }

// EventID identifies a scheduled event so it can be cancelled.
// The zero EventID is never issued.
type EventID uint64

// event is a pending callback on the simulation timeline.
type event struct {
	id   EventID
	at   Time
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	fn   func()
	heap int // index in the heap, -1 once popped or cancelled
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heap = i
	q[j].heap = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*event)
	ev.heap = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.heap = -1
	*q = old[:n-1]
	return ev
}

// Simulation is a single-threaded discrete-event simulator.
// The zero value is not usable; call New.
type Simulation struct {
	now     Time
	queue   eventQueue
	events  map[EventID]*event
	nextID  EventID
	nextSeq uint64
	stopped bool
}

// New returns an empty simulation with the clock at zero.
func New() *Simulation {
	return &Simulation{events: make(map[EventID]*event)}
}

// Now returns the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// At schedules fn to run at instant t. Scheduling in the past (before Now)
// panics: it indicates a logic error in the caller.
func (s *Simulation) At(t Time, fn func()) EventID {
	if t < s.now {
		panic(fmt.Sprintf("simtime: scheduling event at %v before now %v", t, s.now))
	}
	if fn == nil {
		panic("simtime: nil event callback")
	}
	s.nextID++
	s.nextSeq++
	ev := &event{id: s.nextID, at: t, seq: s.nextSeq, fn: fn}
	s.events[ev.id] = ev
	heap.Push(&s.queue, ev)
	return ev.id
}

// After schedules fn to run d after the current time. Negative durations
// are clamped to zero.
func (s *Simulation) After(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a pending event. It reports whether the event was still
// pending (false if it already fired, was cancelled, or never existed).
func (s *Simulation) Cancel(id EventID) bool {
	ev, ok := s.events[id]
	if !ok {
		return false
	}
	delete(s.events, id)
	heap.Remove(&s.queue, ev.heap)
	return true
}

// Pending returns the number of events waiting to fire.
func (s *Simulation) Pending() int { return len(s.queue) }

// Stop makes the currently executing Run return after the current event's
// callback finishes. Pending events stay queued.
func (s *Simulation) Stop() { s.stopped = true }

// step fires the earliest pending event. It reports false when the queue is
// empty.
func (s *Simulation) step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	delete(s.events, ev.id)
	s.now = ev.at
	ev.fn()
	return true
}

// Run fires events until the queue drains or Stop is called.
func (s *Simulation) Run() {
	s.stopped = false
	for !s.stopped && s.step() {
	}
}

// RunUntil fires events with timestamps <= t, then advances the clock to t.
// Events scheduled after t stay pending.
func (s *Simulation) RunUntil(t Time) {
	s.stopped = false
	for !s.stopped && len(s.queue) > 0 && s.queue[0].at <= t {
		s.step()
	}
	if !s.stopped && t > s.now {
		s.now = t
	}
}

// RunFor runs the simulation for a span of virtual time from the current
// instant.
func (s *Simulation) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// NextEventTime returns the timestamp of the earliest pending event, or
// (0, false) when the queue is empty.
func (s *Simulation) NextEventTime() (Time, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Timer is a restartable one-shot timer bound to a Simulation, analogous to
// time.Timer. The zero value is not usable; call NewTimer.
type Timer struct {
	sim *Simulation
	id  EventID
	set bool
}

// NewTimer returns a stopped timer bound to sim.
func NewTimer(sim *Simulation) *Timer { return &Timer{sim: sim} }

// Reset schedules fn to fire d from now, cancelling any pending firing.
func (t *Timer) Reset(d Duration, fn func()) {
	t.Stop()
	t.id = t.sim.After(d, func() {
		t.set = false
		fn()
	})
	t.set = true
}

// Stop cancels the pending firing, if any. It reports whether a firing was
// cancelled.
func (t *Timer) Stop() bool {
	if !t.set {
		return false
	}
	t.set = false
	return t.sim.Cancel(t.id)
}

// Active reports whether the timer has a pending firing.
func (t *Timer) Active() bool { return t.set }

// IsFinite reports whether t is a usable instant (not NaN or ±Inf).
// Simulation entry points use it to validate externally supplied times.
func IsFinite[T ~float64](t T) bool {
	f := float64(t)
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
