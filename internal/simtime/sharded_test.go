package simtime

import (
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestShardedConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  ShardedConfig
		want string // substring of the expected error; "" means valid
	}{
		{"valid finite", ShardedConfig{Partitions: 2, Workers: 2, Lookahead: 1}, ""},
		{"valid infinite lookahead", ShardedConfig{Partitions: 2, Workers: 2, Lookahead: Duration(math.Inf(1))}, ""},
		{"zero lookahead", ShardedConfig{Partitions: 2, Workers: 2, Lookahead: 0}, "lookahead must be > 0"},
		{"negative lookahead", ShardedConfig{Partitions: 2, Workers: 2, Lookahead: -1}, "lookahead must be > 0"},
		{"nan lookahead", ShardedConfig{Partitions: 2, Workers: 2, Lookahead: Duration(math.NaN())}, "lookahead must be > 0"},
		{"zero partitions", ShardedConfig{Partitions: 0, Workers: 1, Lookahead: 1}, "at least 1 partition"},
		{"zero workers", ShardedConfig{Partitions: 1, Workers: 0, Lookahead: 1}, "at least 1 worker"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k, err := NewSharded(tc.cfg)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("NewSharded(%+v) = %v, want nil error", tc.cfg, err)
				}
				if k == nil {
					t.Fatal("NewSharded returned nil kernel with nil error")
				}
				return
			}
			if err == nil {
				t.Fatalf("NewSharded(%+v) succeeded, want error containing %q", tc.cfg, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

func TestShardedWorkersCappedAtPartitions(t *testing.T) {
	k, err := NewSharded(ShardedConfig{Partitions: 2, Workers: 64, Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k.cfg.Workers != 2 {
		t.Fatalf("workers = %d, want capped to 2", k.cfg.Workers)
	}
}

// A partition with an empty event queue must not stall the barrier: the
// run drains the busy partitions and terminates.
func TestShardedEmptyPartitionDoesNotStall(t *testing.T) {
	k, err := NewSharded(ShardedConfig{Partitions: 4, Workers: 4, Lookahead: Duration(math.Inf(1))})
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	// Only partition 0 has work; 1..3 stay empty throughout.
	for i := 0; i < 10; i++ {
		k.Partition(0).At(Time(i+1), func() { fired.Add(1) })
	}
	done := make(chan struct{})
	go func() {
		k.Run(RoundHooks{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Run stalled with empty partitions present")
	}
	if fired.Load() != 10 {
		t.Fatalf("fired %d events, want 10", fired.Load())
	}
	if k.Now() != 10 {
		t.Fatalf("Now() = %v, want 10 (max partition clock)", k.Now())
	}
}

// The conservative guarantee: a global event fires only after every
// member event strictly before its instant has fired, and never after a
// member event beyond it. (Callbacks on *different* member partitions
// inside one window run concurrently — the total order lives in the
// flush-time mailbox merge, not in wall-clock callback order.)
func TestShardedOrderingAcrossPartitions(t *testing.T) {
	k, err := NewSharded(ShardedConfig{Partitions: 3, Workers: 3, Lookahead: Duration(math.Inf(1))})
	if err != nil {
		t.Fatal(err)
	}
	var memberFired atomic.Int64
	member := func(p int, at Time) {
		k.Partition(p).At(at, func() { memberFired.Add(1) })
	}
	member(0, 1)
	member(1, 2)
	member(2, 3)
	member(0, 4)
	member(1, 6)
	// Global events at 2.5 and 5.5 must see exactly the member events
	// strictly before them: {1,2} and {1,2,3,4}.
	var at25, at55 int64
	k.Global().At(2.5, func() { at25 = memberFired.Load() })
	k.Global().At(5.5, func() { at55 = memberFired.Load() })
	k.Run(RoundHooks{})
	if at25 != 2 {
		t.Fatalf("global@2.5 saw %d member events, want 2", at25)
	}
	if at55 != 4 {
		t.Fatalf("global@5.5 saw %d member events, want 4", at55)
	}
	if memberFired.Load() != 5 {
		t.Fatalf("fired %d member events total, want 5", memberFired.Load())
	}
	if k.Now() != 6 {
		t.Fatalf("Now() = %v, want 6 (last event time)", k.Now())
	}
}

// A cross-partition interaction landing exactly at the window horizon:
// the global event at gNext schedules member work at the same instant,
// which must still fire (the post-global phase of the next round picks
// it up) and in a state where the member already ran to the horizon.
func TestShardedEventExactlyAtHorizon(t *testing.T) {
	k, err := NewSharded(ShardedConfig{Partitions: 2, Workers: 2, Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	log := func(s string) {
		mu.Lock()
		got = append(got, s)
		mu.Unlock()
	}
	// Member 0 has an event exactly at the global event's time (t=3 is
	// also the horizon min(gNext=3, mNext=2+1)); the global event then
	// injects a same-instant member event.
	k.Partition(0).At(2, func() { log("m0@2") })
	k.Partition(0).At(3, func() { log("m0@3") })
	k.Global().At(3, func() {
		log("g@3")
		k.Partition(1).At(3, func() { log("m1@3-injected") })
		k.Partition(1).At(4, func() { log("m1@4") })
	})
	k.Run(RoundHooks{})
	want := []string{"m0@2", "m0@3", "g@3", "m1@3-injected", "m1@4"}
	if len(got) != len(want) {
		t.Fatalf("events %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events %v, want %v", got, want)
		}
	}
	if k.Now() != 4 {
		t.Fatalf("Now() = %v, want 4", k.Now())
	}
}

// Flush hooks run at every window boundary with monotone non-decreasing
// times, and see all member events up to the boundary.
func TestShardedFlushBoundaries(t *testing.T) {
	k, err := NewSharded(ShardedConfig{Partitions: 2, Workers: 2, Lookahead: 2})
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	k.Partition(0).At(1, func() { fired.Add(1) })
	k.Partition(1).At(5, func() { fired.Add(1) })
	k.Global().At(10, func() { fired.Add(1) })
	var flushes []Time
	last := Time(math.Inf(-1))
	k.Run(RoundHooks{Flush: func(now Time) {
		if now < last {
			t.Fatalf("flush time went backwards: %v after %v", now, last)
		}
		last = now
		flushes = append(flushes, now)
	}})
	if fired.Load() != 3 {
		t.Fatalf("fired %d events, want 3", fired.Load())
	}
	if len(flushes) == 0 {
		t.Fatal("no flushes observed")
	}
}

// Pause hooks: the kernel aligns all partitions at each pause instant
// (justified by a pending event at or beyond it) and calls OnPause, like
// the serial sampler drive.
func TestShardedPauseAlignment(t *testing.T) {
	k, err := NewSharded(ShardedConfig{Partitions: 2, Workers: 2, Lookahead: Duration(math.Inf(1))})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 9; i++ {
		p := k.Partition(i % 2)
		p.At(Time(i), func() {})
	}
	next := Time(4)
	var pauses []Time
	k.Run(RoundHooks{
		NextPause: func() (Time, bool) { return next, true },
		OnPause: func(now Time) {
			pauses = append(pauses, now)
			for _, p := range []*Simulation{k.Global(), k.Partition(0), k.Partition(1)} {
				if p.Now() != now {
					t.Fatalf("partition clock %v at pause %v", p.Now(), now)
				}
			}
			next += 4
		},
	})
	// Events run to t=9; pauses at 4 and 8 are justified (events beyond
	// them exist), 12 is not (queue drained before it).
	want := []Time{4, 8}
	if len(pauses) != len(want) {
		t.Fatalf("pauses %v, want %v", pauses, want)
	}
	for i := range want {
		if pauses[i] != want[i] {
			t.Fatalf("pauses %v, want %v", pauses, want)
		}
	}
	if k.Now() != 9 {
		t.Fatalf("Now() = %v, want 9", k.Now())
	}
}

// Stop mid-window halts the run promptly — even inside an
// infinite-horizon drain of a long partition queue — and Run returns
// with every pool goroutine gone.
func TestShardedStopMidWindowDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	k, err := NewSharded(ShardedConfig{Partitions: 4, Workers: 4, Lookahead: Duration(math.Inf(1))})
	if err != nil {
		t.Fatal(err)
	}
	// A long self-perpetuating chain on every partition: without Stop
	// this would fire 4M events.
	var fired atomic.Int64
	for i := 0; i < 4; i++ {
		p := k.Partition(i)
		var tick func()
		tick = func() {
			if fired.Add(1) == 1000 {
				k.Stop() // triggered from inside a worker-side event
			}
			if fired.Load() < 4_000_000 {
				p.After(0.001, tick)
			}
		}
		p.At(0, tick)
	}
	done := make(chan struct{})
	go func() {
		k.Run(RoundHooks{})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatal("Run did not halt after Stop")
	}
	if !k.Stopped() {
		t.Fatal("Stopped() = false after Stop")
	}
	if n := fired.Load(); n >= 4_000_000 {
		t.Fatalf("fired %d events, Stop did not cut the run short", n)
	}
	// The pool must be fully drained: goroutine count returns to the
	// baseline (allow slack for runtime background goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines leaked: %d before, %d after", before, after)
	}
}

// A second Run after Stop resets the flag and drains what remains.
func TestShardedRunAfterStop(t *testing.T) {
	k, err := NewSharded(ShardedConfig{Partitions: 2, Workers: 2, Lookahead: 1})
	if err != nil {
		t.Fatal(err)
	}
	k.Stop()
	var fired atomic.Int64
	k.Partition(0).At(1, func() { fired.Add(1) })
	k.Run(RoundHooks{})
	if fired.Load() != 1 {
		t.Fatal("Run after Stop did not reset the stop flag")
	}
}

func TestShardedEmptyRun(t *testing.T) {
	k, err := NewSharded(ShardedConfig{Partitions: 3, Workers: 2, Lookahead: 5})
	if err != nil {
		t.Fatal(err)
	}
	k.Run(RoundHooks{})
	if k.Now() != 0 {
		t.Fatalf("Now() after empty Run = %v, want 0", k.Now())
	}
}
