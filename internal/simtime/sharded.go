package simtime

// Sharded is a conservative parallel discrete-event kernel: N member
// partitions plus one global partition, each a full Simulation with its
// own event arena and heap, advanced together under one logical clock.
//
// The decomposition targets the federation topology: member clusters
// never schedule events on each other — every cross-member interaction
// (routing, admission spills, outages) happens inside events on the
// global partition — so member partitions are mutually independent
// between consecutive global events. Each round the coordinator computes
// a conservative safe horizon
//
//	min(next global event, min over members of next event + Lookahead,
//	    next pause instant)
//
// runs every member partition up to the horizon (inclusive) on a worker
// pool, barriers, lets the caller flush per-partition mailboxes, and
// only then fires the global events at the horizon. Member events at
// exactly a boundary therefore fire before the global events at that
// instant; the serial kernel orders such same-instant ties by scheduling
// sequence instead, which is why the single-Simulation mode remains the
// bit-identical oracle (all continuous-time workloads produce no exact
// cross-partition ties, and the determinism lane byte-diffs the two).
//
// Sharded is not itself goroutine-safe: scheduling and Run belong to the
// coordinator goroutine. Only Stop may be called from anywhere.

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// ShardedConfig sizes a sharded kernel.
type ShardedConfig struct {
	// Partitions is the member partition count (one per federation
	// member); at least 1.
	Partitions int
	// Workers bounds the goroutines advancing member partitions
	// concurrently; at least 1, capped at Partitions.
	Workers int
	// Lookahead is the minimum virtual-time delay of any member-to-member
	// interaction, the window the conservative horizon extends past the
	// earliest member event. It must be strictly positive — a zero
	// lookahead would admit zero-width windows and livelock the barrier
	// loop — and may be +Inf when members interact only through the
	// global partition (the federation case: routing, spills and outages
	// are all global events).
	Lookahead Duration
}

func (c ShardedConfig) validate() error {
	if c.Partitions < 1 {
		return fmt.Errorf("simtime: sharded kernel needs at least 1 partition, got %d", c.Partitions)
	}
	if c.Workers < 1 {
		return fmt.Errorf("simtime: sharded kernel needs at least 1 worker, got %d", c.Workers)
	}
	if math.IsNaN(float64(c.Lookahead)) || c.Lookahead <= 0 {
		return fmt.Errorf("simtime: sharded kernel lookahead must be > 0 (got %v): "+
			"a zero-width window cannot make conservative progress; use +Inf when "+
			"partitions only interact through the global partition", c.Lookahead)
	}
	return nil
}

// RoundHooks lets the kernel's owner participate in the round loop.
// Every field may be nil.
type RoundHooks struct {
	// Flush is called on the coordinator goroutine at each window
	// boundary — after the member phase and again after the global
	// phase — with no member partition running. This is where per-
	// partition mailboxes merge (records, telemetry) in virtual-time
	// order.
	Flush func(now Time)
	// NextPause reports the next instant the coordinator wants control
	// with every partition aligned (the gauge-sampling tick). The kernel
	// never runs any partition past a pause; when every remaining event
	// is at or beyond the pause instant it aligns all clocks to it,
	// fires the events at exactly that instant, and calls OnPause.
	// Like the serial sampler drive, a pause only happens while some
	// event at or beyond it exists — a drained kernel returns without
	// a final pause, leaving clocks at the last real event.
	NextPause func() (Time, bool)
	// OnPause runs at the pause instant, after Flush; it should advance
	// whatever NextPause reports.
	OnPause func(now Time)
}

// Sharded wraps N member partitions and a global partition under one
// logical clock. Build with NewSharded; schedule cross-partition work on
// Global() and member-local work on Partition(i).
type Sharded struct {
	cfg    ShardedConfig
	global *Simulation
	parts  []*Simulation
	stop   atomic.Bool

	// Per-Run worker pool state. horizon/infinite/align are written by
	// the coordinator before tasks are sent and read by workers after
	// the receive, so the channel provides the happens-before edge.
	tasks    chan int
	wg       sync.WaitGroup
	horizon  Time
	infinite bool
	align    bool
	// inWindow is true while member partitions are running on the pool
	// (between the task sends and the barrier). Hooks shared by member
	// and coordinator code paths branch on it: buffer per-partition when
	// set, act directly when clear. Written by the coordinator on either
	// side of the barrier, read by workers between channel receive and
	// wg.Done — never concurrently.
	inWindow bool
}

// NewSharded builds a sharded kernel with empty partitions and all
// clocks at zero.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Workers > cfg.Partitions {
		cfg.Workers = cfg.Partitions
	}
	k := &Sharded{cfg: cfg, global: New(), parts: make([]*Simulation, cfg.Partitions)}
	poll := k.stop.Load
	k.global.SetInterrupt(poll)
	for i := range k.parts {
		k.parts[i] = New()
		k.parts[i].SetInterrupt(poll)
	}
	return k, nil
}

// Global returns the global partition: the coordinator's queue for
// cross-partition events (arrivals, outages). Its events fire only at
// window boundaries, with every member partition aligned to the event's
// instant.
func (k *Sharded) Global() *Simulation { return k.global }

// Partition returns member partition i's simulation; events scheduled on
// it must never touch another partition's state.
func (k *Sharded) Partition(i int) *Simulation { return k.parts[i] }

// Partitions returns the member partition count.
func (k *Sharded) Partitions() int { return k.cfg.Partitions }

// Lookahead returns the configured conservative lookahead.
func (k *Sharded) Lookahead() Duration { return k.cfg.Lookahead }

// Stop makes a Run in progress return as soon as every partition loop
// observes it (between events — partitions poll it via their interrupt
// hook, so even an infinite-horizon drain window halts promptly). Safe
// to call from any goroutine.
func (k *Sharded) Stop() { k.stop.Store(true) }

// Stopped reports whether Stop has been called since the last Run
// started.
func (k *Sharded) Stopped() bool { return k.stop.Load() }

// Now returns the logical clock: the global partition's time, which Run
// keeps at the last window boundary and aligns with the maximum
// partition clock when the kernel drains.
func (k *Sharded) Now() Time { return k.global.Now() }

// minPartitionNext returns the earliest pending member event across all
// partitions.
func (k *Sharded) minPartitionNext() (Time, bool) {
	best, ok := Time(0), false
	for _, p := range k.parts {
		if t, has := p.NextEventTime(); has && (!ok || t < best) {
			best, ok = t, true
		}
	}
	return best, ok
}

// advance runs every member partition up to horizon (inclusive) on the
// worker pool and barriers. With align set, every partition clock is
// also advanced to the horizon — required exactly when the coordinator
// is about to fire global events at that instant (their callbacks
// schedule relative work on member simulations) or to sample at an
// event-justified pause. Without align, partition clocks stay at the
// last event each fired, so a lookahead- or pause-capped horizon past
// the final event never inflates the makespan the serial kernel would
// report. An infinite horizon drains each partition completely.
// Partitions with nothing to fire are handled inline — an empty queue
// never stalls the barrier, and aligning an idle partition's clock is a
// field write.
func (k *Sharded) advance(horizon Time, align bool) {
	k.infinite = math.IsInf(float64(horizon), 1)
	k.horizon = horizon
	k.align = align && !k.infinite
	k.inWindow = true
	for i, p := range k.parts {
		if next, ok := p.NextEventTime(); !ok || next > horizon {
			// Nothing fires: align the clock on the coordinator (RunUntil
			// without events is just the clock assignment) and skip the pool.
			if k.align {
				p.RunUntil(horizon)
			}
			continue
		}
		k.wg.Add(1)
		k.tasks <- i
	}
	k.wg.Wait()
	k.inWindow = false
}

// InMemberPhase reports whether member partitions are currently running
// on the worker pool. Callbacks fired from member events see true;
// callbacks fired from global events, flushes or pauses see false.
func (k *Sharded) InMemberPhase() bool { return k.inWindow }

// runWorker is one pool goroutine: it advances the partitions the
// coordinator hands it until the task channel closes.
func (k *Sharded) runWorker() {
	for i := range k.tasks {
		p := k.parts[i]
		switch {
		case k.infinite:
			p.Run()
		case k.align:
			p.RunUntil(k.horizon)
		default:
			p.runEventsUntil(k.horizon)
		}
		k.wg.Done()
	}
}

// flush invokes the caller's mailbox merge, if any.
func (h RoundHooks) flush(now Time) {
	if h.Flush != nil {
		h.Flush(now)
	}
}

// nextPause polls the caller's pause schedule, if any.
func (h RoundHooks) nextPause() (Time, bool) {
	if h.NextPause == nil {
		return 0, false
	}
	return h.NextPause()
}

// Run drains every partition using conservative time windows, invoking
// the hooks at window boundaries, until no events remain anywhere or
// Stop is called. On a clean drain the global clock is aligned with the
// maximum partition clock, so Now() reports the same makespan the serial
// kernel would (the time of the last event fired, or of the last aligned
// boundary past it). The worker pool exists only for the duration of the
// call; Run returns with no goroutines left behind.
func (k *Sharded) Run(h RoundHooks) {
	k.stop.Store(false)
	k.tasks = make(chan int, len(k.parts))
	var workers sync.WaitGroup
	for w := 0; w < k.cfg.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			k.runWorker()
		}()
	}
	defer func() {
		close(k.tasks)
		workers.Wait()
	}()

	for !k.stop.Load() {
		gNext, gOK := k.global.NextEventTime()
		mNext, mOK := k.minPartitionNext()
		if !gOK && !mOK {
			break
		}
		earliest := gNext
		if !gOK || (mOK && mNext < earliest) {
			earliest = mNext
		}
		if pause, ok := h.nextPause(); ok && earliest >= pause {
			// Everything strictly before the pause has fired; some event at
			// or beyond it justifies the pause (exactly the serial sampler's
			// condition). Align every partition to the instant, fire the
			// events at exactly it — members first, then global, then any
			// member events the global ones scheduled there — and hand over.
			k.advance(pause, true)
			h.flush(pause)
			k.global.RunUntil(pause)
			h.flush(pause)
			k.advance(pause, true)
			h.flush(pause)
			if k.stop.Load() {
				break
			}
			if h.OnPause != nil {
				h.OnPause(pause)
			}
			continue
		}
		// Conservative window: members may run past their earliest event by
		// the lookahead, but never past the next global event (whose
		// callbacks read member state) or the next pause.
		horizon := Time(math.Inf(1))
		if mOK {
			horizon = mNext.Add(k.cfg.Lookahead)
		}
		if gOK && gNext < horizon {
			horizon = gNext
		}
		if pause, ok := h.nextPause(); ok && pause < horizon {
			horizon = pause
		}
		// gNext participates in the min above, so the global fires iff it
		// IS the horizon; only then do member clocks need aligning to it
		// (global callbacks schedule relative work on member simulations).
		globalFires := gOK && gNext <= horizon
		k.advance(horizon, globalFires)
		h.flush(horizon)
		if globalFires {
			// Fire the global events at exactly gNext (it is the queue
			// minimum, so RunUntil fires that instant only, including
			// same-instant cascades) with every member flushed and aligned.
			k.global.RunUntil(gNext)
			h.flush(gNext)
		}
	}

	if !k.stop.Load() {
		// Drained: align every clock with the furthest partition so Now()
		// equals the serial kernel's final clock on ALL partitions — the
		// serial mode's single clock ends there for every component, and
		// end-of-run integrals read off partition clocks (idle energy,
		// utilization denominators) must see the same endpoint. All queues
		// are empty, so each RunUntil is a clock assignment only.
		maxNow := k.global.Now()
		for _, p := range k.parts {
			if n := p.Now(); n > maxNow {
				maxNow = n
			}
		}
		for _, p := range k.parts {
			p.RunUntil(maxNow)
		}
		k.global.RunUntil(maxNow)
	}
}
