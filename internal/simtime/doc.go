// Package simtime provides a deterministic discrete-event simulation
// kernel: a virtual clock plus a priority queue of scheduled events.
//
// All DiAS experiments run on virtual time. A Simulation owns the clock
// and the pending-event set; events scheduled for the same instant fire in
// scheduling order, which keeps runs bit-for-bit reproducible. Time is
// represented as seconds in a float64-backed type, and the simulation
// never reads the wall clock.
//
// # Event queue
//
// The pending-event set is an indexed d-ary min-heap (arity 4) over an
// event arena. Every operation the engine's hot path needs — At/After
// scheduling, firing, Cancel, and Reschedule/RescheduleAfter — is an
// O(log n) sift over int32 slot indices. Event slots are recycled through
// a freelist, so steady-state event churn allocates nothing, and EventIDs
// carry a generation counter that detects stale ids (fired, cancelled, or
// slot reused) in O(1) without a map.
//
// # Cancellation and rescheduling
//
// Cancel removes a pending event and immediately drops its callback so
// the closure does not outlive the event. Reschedule moves a pending
// event to a new instant while keeping its callback — the allocation-free
// way to restart timers and to rescale in-flight work under DVFS speed
// changes. A rescheduled event is ordered as if freshly scheduled: among
// events at the same instant it fires after events already queued there.
// Both operations report false for events that already fired; an event's
// own callback observes its id as no longer pending.
//
// Timer wraps this into a restartable one-shot timer analogous to
// time.Timer that allocates a single closure over its whole lifetime.
package simtime
