package faults

import (
	"fmt"
	"strconv"
	"testing"

	"dias/internal/cluster"
	"dias/internal/core"
	"dias/internal/engine"
	"dias/internal/simtime"
)

// rig is a simulation + cluster + engine trio for injection tests; each
// test builds its own scheduler on top (an engine serves one scheduler).
type rig struct {
	sim *simtime.Simulation
	clu *cluster.Cluster
	eng *engine.Engine
}

func newRig(t *testing.T, nodes, cores int, taskSec float64) *rig {
	t.Helper()
	sim := simtime.New()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = nodes
	cfg.CoresPerNode = cores
	clu, err := cluster.New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(sim, clu, nil, engine.CostModel{TaskOverheadSec: taskSec}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{sim: sim, clu: clu, eng: eng}
}

// job builds an n-task single-stage job.
func job(name string, tasks int) *engine.Job {
	in := make(engine.Dataset, tasks)
	for i := range in {
		in[i] = engine.Partition{{Key: strconv.Itoa(i), Value: 1.0}}
	}
	return &engine.Job{Name: name, Input: in, Stages: []engine.Stage{{Kind: engine.Result}}}
}

func TestValidation(t *testing.T) {
	r := newRig(t, 4, 1, 1)
	bad := []Config{
		{},                                 // empty
		{Churn: &ChurnConfig{}},            // neither stochastic nor trace
		{Churn: &ChurnConfig{MTTFSec: 10}}, // missing MTTR
		{Churn: &ChurnConfig{MTTFSec: 10, MTTRSec: 1}},                                                                      // missing horizon
		{Churn: &ChurnConfig{Outages: []Outage{{Node: 9, AtSec: 1, DurationSec: 1}}}},                                       // node OOB
		{Churn: &ChurnConfig{Outages: []Outage{{Node: 1, AtSec: 1, DurationSec: 0}}}},                                       // zero duration
		{Churn: &ChurnConfig{Outages: []Outage{{Node: 1, AtSec: 1, DurationSec: 10}, {Node: 1, AtSec: 5, DurationSec: 1}}}}, // overlap
		{Tasks: &TaskFaultConfig{}},                                       // zero probabilities
		{Tasks: &TaskFaultConfig{FailProb: 0.1}},                          // missing attempt budget
		{Tasks: &TaskFaultConfig{StragglerProb: 0.1, StragglerFactor: 1}}, // factor <= 1
	}
	for i, cfg := range bad {
		if _, err := Attach(r.sim, r.eng, cfg); err == nil {
			t.Fatalf("config %d should have been rejected", i)
		}
	}
}

func TestTraceDrivenChurnFiresExactly(t *testing.T) {
	r := newRig(t, 3, 1, 1)
	outages := []Outage{
		{Node: 0, AtSec: 10, DurationSec: 5},
		{Node: 2, AtSec: 12, DurationSec: 3},
		{Node: 0, AtSec: 30, DurationSec: 2},
	}
	inj, err := Attach(r.sim, r.eng, Config{Churn: &ChurnConfig{Outages: outages}})
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	// Probe node state at chosen instants (after the events at the same
	// timestamp have fired: At schedules FIFO per timestamp).
	type probe struct {
		at   float64
		node int
		down bool
	}
	probes := []probe{
		{9, 0, false}, {11, 0, true}, {13, 2, true}, {16, 0, false},
		{16, 2, false}, {31, 0, true}, {33, 0, false},
	}
	for _, p := range probes {
		p := p
		r.sim.At(simtime.Time(p.at), func() {
			if got := r.clu.NodeDown(p.node); got != p.down {
				t.Errorf("t=%g node %d down=%v, want %v", p.at, p.node, got, p.down)
			}
		})
	}
	r.sim.Run()
	if inj.NodeFailures() != 3 || inj.NodeRepairs() != 3 {
		t.Fatalf("failures/repairs = %d/%d, want 3/3", inj.NodeFailures(), inj.NodeRepairs())
	}
	if got := inj.DownSeconds(); got != 10 {
		t.Fatalf("DownSeconds = %g, want 10", got)
	}
}

// TestConservationUnderChurnAndTaskFaults is the acceptance property:
// under combined node churn, injected task failures and stragglers, every
// submitted job either completes or is reported failed with retries
// exhausted — none lost, none duplicated — and the cluster leaks no slots.
func TestConservationUnderChurnAndTaskFaults(t *testing.T) {
	const jobs = 40
	r := newRig(t, 4, 2, 5)
	cfg := Config{
		Churn: &ChurnConfig{MTTFSec: 300, MTTRSec: 40, HorizonSec: 4000},
		Tasks: &TaskFaultConfig{
			FailProb:        0.25,
			MaxAttempts:     2,
			StragglerProb:   0.05,
			StragglerFactor: 4,
		},
		Seed: 7,
	}
	inj, err := Attach(r.sim, r.eng, cfg)
	if err != nil {
		t.Fatalf("Attach: %v", err)
	}
	completed := map[string]int{}
	failed := map[string]int{}
	sch, err := core.New(r.sim, r.clu, r.eng, core.Config{
		Classes: 1,
		OnRecord: func(rec core.JobRecord) {
			if rec.Failed {
				failed[rec.Name]++
			} else {
				completed[rec.Name]++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < jobs; i++ {
		name := fmt.Sprintf("job-%02d", i)
		j := job(name, 6)
		at := simtime.Time(float64(i) * 60)
		r.sim.At(at, func() {
			if err := sch.Arrive(0, j); err != nil {
				t.Errorf("Arrive %s: %v", name, err)
			}
		})
	}
	r.sim.Run()
	for i := 0; i < jobs; i++ {
		name := fmt.Sprintf("job-%02d", i)
		c, f := completed[name], failed[name]
		if c+f != 1 {
			t.Errorf("%s: completed %d + failed %d, want exactly 1 outcome", name, c, f)
		}
	}
	if len(completed)+len(failed) != jobs {
		t.Fatalf("outcomes for %d jobs, want %d", len(completed)+len(failed), jobs)
	}
	// The run must actually have exercised the machinery.
	if inj.TaskFailuresInjected() == 0 {
		t.Fatal("no task failures injected; test is vacuous")
	}
	if inj.StragglersInjected() == 0 {
		t.Fatal("no stragglers injected; test is vacuous")
	}
	if inj.NodeFailures() == 0 {
		t.Fatal("no node churn injected; test is vacuous")
	}
	if len(failed) == 0 {
		t.Fatal("no job exhausted retries; tighten FailProb to cover the failure path")
	}
	if r.eng.FailedJobs() != len(failed) {
		t.Fatalf("engine FailedJobs = %d, records say %d", r.eng.FailedJobs(), len(failed))
	}
	if r.eng.FailureLostSlotSeconds() <= 0 {
		t.Fatal("failures destroyed no machine time?")
	}
	// All slots come home once churn and drain are over.
	if free, total := r.clu.FreeSlots(), r.clu.Slots(); free != total-r.clu.DownNodes()*2 {
		t.Fatalf("slot leak: free %d of %d (down nodes: %d)", free, total, r.clu.DownNodes())
	}
}

// TestDeterminismPerSeed re-runs an identical faulty workload and expects
// bit-identical outcomes and injection counts.
func TestDeterminismPerSeed(t *testing.T) {
	run := func() (string, int, int) {
		r := newRig(t, 3, 2, 4)
		inj, err := Attach(r.sim, r.eng, Config{
			Churn: &ChurnConfig{MTTFSec: 200, MTTRSec: 30, HorizonSec: 2000},
			Tasks: &TaskFaultConfig{FailProb: 0.1, MaxAttempts: 4, StragglerProb: 0.1, StragglerFactor: 3},
			Seed:  42,
		})
		if err != nil {
			t.Fatal(err)
		}
		var log string
		sch, err := core.New(r.sim, r.clu, r.eng, core.Config{
			Classes: 1,
			OnRecord: func(rec core.JobRecord) {
				log += fmt.Sprintf("%s %.9f %v %d\n", rec.Name, rec.ResponseSec, rec.Failed, rec.Retries)
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			j := job(fmt.Sprintf("j%d", i), 5)
			r.sim.At(simtime.Time(float64(i)*50), func() {
				if err := sch.Arrive(0, j); err != nil {
					t.Errorf("Arrive: %v", err)
				}
			})
		}
		r.sim.Run()
		return log, inj.TaskFailuresInjected(), inj.NodeFailures()
	}
	log1, tf1, nf1 := run()
	log2, tf2, nf2 := run()
	if log1 != log2 {
		t.Fatal("per-seed run logs differ")
	}
	if tf1 != tf2 || nf1 != nf2 {
		t.Fatalf("injection counts differ: %d/%d vs %d/%d", tf1, nf1, tf2, nf2)
	}
}
