// Package faults is the deterministic fault- and churn-injection layer of
// the simulated deployment. It drives three failure modes on the shared
// virtual clock, all reproducible per seed and independent of the
// experiment runner's worker count:
//
//   - Node churn: crash/recover processes per node, either stochastic
//     (exponential MTBF/MTTR, like the paper-era engine.FailureInjector)
//     or trace-driven (an explicit outage schedule). In-flight tasks on a
//     crashed node are aborted and re-queued by the engine; the machine
//     time they had consumed is attributed to failures.
//   - Task faults: each attempt fails with a per-attempt probability,
//     aborting partway through its duration; the task retries from
//     scratch under a bounded attempt budget, beyond which the whole job
//     is reported failed (engine.JobResult.Failed).
//   - Stragglers: attempts are slowed by a multiplicative factor with a
//     per-attempt probability, modelling the slow-node/slow-task tail the
//     paper's testbed fights with speculative execution.
//
// Attach wires an Injector into an engine; experiment drivers and the
// dias facade expose it as a configuration knob.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"dias/internal/engine"
	"dias/internal/simtime"
)

// Outage is one trace-driven node outage.
type Outage struct {
	// Node is the cluster node index taken down.
	Node int
	// AtSec is the outage start in virtual time; DurationSec its length.
	AtSec       float64
	DurationSec float64
}

// ChurnConfig parameterizes node crash/recover processes. Exactly one of
// the stochastic fields (MTTFSec+MTTRSec) or the Outages trace must be
// set.
type ChurnConfig struct {
	// MTTFSec and MTTRSec give each eligible node exponential failure and
	// repair times (stochastic churn).
	MTTFSec float64
	MTTRSec float64
	// HorizonSec bounds stochastic injection in virtual time so the event
	// queue drains; required with MTTFSec/MTTRSec, ignored for traces.
	HorizonSec float64
	// Nodes lists eligible node indices for stochastic churn; nil means
	// every cluster node.
	Nodes []int
	// Outages is a trace-driven schedule, replayed exactly. Outages of one
	// node must not overlap.
	Outages []Outage
}

// TaskFaultConfig parameterizes per-task failures and stragglers.
type TaskFaultConfig struct {
	// FailProb is the probability that an attempt aborts partway through
	// (uniformly between 10% and 90% of its duration).
	FailProb float64
	// MaxAttempts bounds attempts per task; an injected failure at or
	// beyond the budget fails the whole job. Required when FailProb > 0.
	MaxAttempts int
	// StragglerProb is the probability that an attempt runs slow;
	// StragglerFactor (> 1) is its duration multiplier.
	StragglerProb   float64
	StragglerFactor float64
}

// Config assembles the injection plan. Nil sections are disabled.
type Config struct {
	Churn *ChurnConfig
	Tasks *TaskFaultConfig
	// Seed drives all injection randomness, independent of the engine's
	// own noise stream.
	Seed int64
}

func (c Config) validate(clusterNodes int) error {
	if c.Churn == nil && c.Tasks == nil {
		return errors.New("faults: empty config (no churn, no task faults)")
	}
	if ch := c.Churn; ch != nil {
		stochastic := ch.MTTFSec != 0 || ch.MTTRSec != 0
		if stochastic == (len(ch.Outages) > 0) {
			return errors.New("faults: churn needs exactly one of MTTF/MTTR or an outage trace")
		}
		if stochastic {
			if ch.MTTFSec <= 0 || ch.MTTRSec <= 0 {
				return fmt.Errorf("faults: MTTF %g / MTTR %g must be positive", ch.MTTFSec, ch.MTTRSec)
			}
			if ch.HorizonSec <= 0 {
				return errors.New("faults: stochastic churn needs a positive horizon")
			}
			for _, n := range ch.Nodes {
				if n < 0 || n >= clusterNodes {
					return fmt.Errorf("faults: churn node %d of %d", n, clusterNodes)
				}
			}
		} else {
			if err := validateOutages(ch.Outages, clusterNodes); err != nil {
				return err
			}
		}
	}
	if tf := c.Tasks; tf != nil {
		if tf.FailProb < 0 || tf.FailProb >= 1 {
			return fmt.Errorf("faults: fail probability %g out of [0,1)", tf.FailProb)
		}
		if tf.FailProb > 0 && tf.MaxAttempts < 1 {
			return fmt.Errorf("faults: fail probability %g needs MaxAttempts >= 1", tf.FailProb)
		}
		if tf.StragglerProb < 0 || tf.StragglerProb >= 1 {
			return fmt.Errorf("faults: straggler probability %g out of [0,1)", tf.StragglerProb)
		}
		if tf.StragglerProb > 0 && tf.StragglerFactor <= 1 {
			return fmt.Errorf("faults: straggler factor %g must exceed 1", tf.StragglerFactor)
		}
		if tf.FailProb == 0 && tf.StragglerProb == 0 {
			return errors.New("faults: task-fault section enabled with zero probabilities")
		}
	}
	return nil
}

// validateOutages checks node bounds, positive durations and per-node
// non-overlap (so a fail never lands on an already-down node).
func validateOutages(outages []Outage, clusterNodes int) error {
	perNode := make(map[int][]Outage)
	for _, o := range outages {
		if o.Node < 0 || o.Node >= clusterNodes {
			return fmt.Errorf("faults: outage node %d of %d", o.Node, clusterNodes)
		}
		if o.AtSec < 0 || o.DurationSec <= 0 {
			return fmt.Errorf("faults: outage at %g for %g", o.AtSec, o.DurationSec)
		}
		perNode[o.Node] = append(perNode[o.Node], o)
	}
	for n, os := range perNode {
		sort.Slice(os, func(i, j int) bool { return os[i].AtSec < os[j].AtSec })
		for i := 1; i < len(os); i++ {
			if os[i].AtSec < os[i-1].AtSec+os[i-1].DurationSec {
				return fmt.Errorf("faults: overlapping outages on node %d at %g", n, os[i].AtSec)
			}
		}
	}
	return nil
}

// Injector is the armed fault plan: it owns the churn processes and
// implements engine.TaskFaultInjector for per-attempt faults.
type Injector struct {
	sim *simtime.Simulation
	eng *engine.Engine
	cfg Config

	churnRng *rand.Rand
	taskRng  *rand.Rand

	nodeFailures int
	nodeRepairs  int
	downSeconds  float64

	taskFailuresInjected int
	stragglersInjected   int
}

// churnCycle is the pre-bound bookkeeping of one crash/recover process:
// for stochastic churn one per eligible node (re-armed forever), for a
// trace one per scheduled outage. The fail/repair/re-arm callbacks are
// allocated once at Attach and reused for every cycle, so steady churn
// schedules no closures.
type churnCycle struct {
	inj  *Injector
	node int
	// repairSec is the pending down duration: drawn together with the
	// failure gap (stochastic) or fixed by the trace entry.
	repairSec float64
	// rearm re-schedules the next stochastic failure after each cycle;
	// trace cycles fire once.
	rearm    bool
	failFn   func()
	repairFn func()
	rearmFn  func()
}

// newChurnCycle binds the callbacks of one crash/recover process.
func (inj *Injector) newChurnCycle(node int, rearm bool) *churnCycle {
	cn := &churnCycle{inj: inj, node: node, rearm: rearm}
	cn.failFn = func() { inj.fail(cn) }
	cn.repairFn = func() { inj.repair(cn) }
	cn.rearmFn = func() {
		if cn.rearm {
			inj.scheduleFailure(cn)
		}
	}
	return cn
}

// Attach validates the plan against the engine's cluster and arms it:
// churn processes are scheduled on the virtual clock and the task-fault
// hook is installed on the engine. The injector is live for the rest of
// the simulation.
func Attach(sim *simtime.Simulation, eng *engine.Engine, cfg Config) (*Injector, error) {
	if sim == nil || eng == nil {
		return nil, errors.New("faults: nil simulation or engine")
	}
	clusterNodes := eng.Cluster().Config().Nodes
	if err := cfg.validate(clusterNodes); err != nil {
		return nil, err
	}
	inj := &Injector{
		sim:      sim,
		eng:      eng,
		cfg:      cfg,
		churnRng: rand.New(rand.NewSource(cfg.Seed)),
		taskRng:  rand.New(rand.NewSource(cfg.Seed + 1)),
	}
	if ch := cfg.Churn; ch != nil {
		if len(ch.Outages) > 0 {
			inj.scheduleTrace(ch.Outages)
		} else {
			nodes := ch.Nodes
			if nodes == nil {
				nodes = make([]int, clusterNodes)
				for n := range nodes {
					nodes[n] = n
				}
			}
			for _, n := range nodes {
				inj.scheduleFailure(inj.newChurnCycle(n, true))
			}
		}
	}
	if tf := cfg.Tasks; tf != nil {
		if err := eng.SetTaskFaults(inj, max(tf.MaxAttempts, 1)); err != nil {
			return nil, err
		}
	}
	return inj, nil
}

// scheduleTrace replays an explicit outage schedule: one pre-bound cycle
// per outage, all allocated here at Attach.
func (inj *Injector) scheduleTrace(outages []Outage) {
	for _, o := range outages {
		cn := inj.newChurnCycle(o.Node, false)
		cn.repairSec = o.DurationSec
		inj.sim.At(simtime.Time(o.AtSec), cn.failFn)
	}
}

// scheduleFailure arms the node's next stochastic failure, staying
// inside the horizon so the event queue drains. The repair duration is
// drawn with the gap (one draw pair per cycle, in cycle order) and
// parked on the cycle until the failure fires.
func (inj *Injector) scheduleFailure(cn *churnCycle) {
	gap := inj.churnRng.ExpFloat64() * inj.cfg.Churn.MTTFSec
	at := inj.sim.Now().Add(simtime.Duration(gap))
	if at.Seconds() > inj.cfg.Churn.HorizonSec {
		return
	}
	cn.repairSec = inj.churnRng.ExpFloat64() * inj.cfg.Churn.MTTRSec
	inj.sim.At(at, cn.failFn)
}

// fail takes the cycle's node down for its drawn duration and schedules
// the repair; stochastic churn then re-arms the node's next failure. The
// injector's own cycle alternates fail/repair per node, but another
// layer (e.g. a federation-level outage, which fails every node of a
// member) may hold the node down already or repair it early — those
// cases are skipped, not errors, so the two layers compose.
func (inj *Injector) fail(cn *churnCycle) {
	if inj.eng.Cluster().NodeDown(cn.node) {
		// Another injection layer owns this node's failure; skip the cycle
		// and re-arm after the would-be repair.
		inj.sim.After(simtime.Duration(cn.repairSec), cn.rearmFn)
		return
	}
	if err := inj.eng.FailNode(cn.node); err != nil {
		panic(fmt.Sprintf("faults: failing node %d: %v", cn.node, err))
	}
	inj.nodeFailures++
	inj.downSeconds += cn.repairSec
	inj.sim.After(simtime.Duration(cn.repairSec), cn.repairFn)
}

// repair ends one cycle: the node is repaired if this layer's failure
// still holds, and stochastic churn re-arms.
func (inj *Injector) repair(cn *churnCycle) {
	// Repair only if the node is still down; a cluster-level recovery
	// sweeping the whole member cannot happen (outage recovery repairs
	// only nodes the outage itself failed), but stay defensive.
	if inj.eng.Cluster().NodeDown(cn.node) {
		if err := inj.eng.RepairNode(cn.node); err != nil {
			panic(fmt.Sprintf("faults: repairing node %d: %v", cn.node, err))
		}
		inj.nodeRepairs++
	}
	if cn.rearm {
		inj.scheduleFailure(cn)
	}
}

// TaskStarted implements engine.TaskFaultInjector: it draws the straggler
// and failure fates of one attempt. Called in deterministic simulation
// order, so runs reproduce bit-identically per seed.
func (inj *Injector) TaskStarted(_ string, _, _, _ int) engine.TaskFault {
	tf := inj.cfg.Tasks
	var f engine.TaskFault
	if tf == nil {
		return f
	}
	// Both draws happen unconditionally so one fate never perturbs the
	// random stream of the other.
	uStraggle := inj.taskRng.Float64()
	uFail := inj.taskRng.Float64()
	if tf.StragglerProb > 0 && uStraggle < tf.StragglerProb {
		f.Slowdown = tf.StragglerFactor
		inj.stragglersInjected++
	}
	if tf.FailProb > 0 && uFail < tf.FailProb {
		f.FailAfterFrac = 0.1 + 0.8*inj.taskRng.Float64()
		inj.taskFailuresInjected++
	}
	return f
}

// NodeFailures returns the number of node crashes injected so far.
func (inj *Injector) NodeFailures() int { return inj.nodeFailures }

// NodeRepairs returns the number of completed repairs.
func (inj *Injector) NodeRepairs() int { return inj.nodeRepairs }

// DownSeconds returns the total scheduled node downtime.
func (inj *Injector) DownSeconds() float64 { return inj.downSeconds }

// TaskFailuresInjected returns how many attempts were doomed to abort.
func (inj *Injector) TaskFailuresInjected() int { return inj.taskFailuresInjected }

// StragglersInjected returns how many attempts were slowed.
func (inj *Injector) StragglersInjected() int { return inj.stragglersInjected }
