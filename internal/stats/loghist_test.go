package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLogHistogramValidation(t *testing.T) {
	cases := []struct {
		lo, hi float64
		n      int
	}{
		{0, 1, 10},
		{-1, 1, 10},
		{1, 1, 10},
		{2, 1, 10},
		{1, 2, 0},
		{math.NaN(), 1, 10},
	}
	for _, c := range cases {
		if _, err := NewLogHistogram(c.lo, c.hi, c.n); err == nil {
			t.Errorf("NewLogHistogram(%g, %g, %d): accepted", c.lo, c.hi, c.n)
		}
	}
}

func TestLogHistogramEmptyAndEdges(t *testing.T) {
	h, err := NewLogHistogram(1e-3, 1e6, 480)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
	h.Add(2)
	h.Add(8)
	if got := h.Quantile(0); got != 2 {
		t.Errorf("p=0 = %g, want exact min", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Errorf("p=1 = %g, want exact max", got)
	}
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestLogHistogramClampsOutOfRange(t *testing.T) {
	h, err := NewLogHistogram(1, 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.001) // below lo: bucket 0
	h.Add(1e9)   // above hi: last bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	// Out-of-range observations saturate into the edge buckets; p=0/p=1
	// still answer the exact min/max, and every quantile stays inside the
	// observed range.
	if got := h.Quantile(0); got != 0.001 {
		t.Errorf("p=0 = %g, want exact min", got)
	}
	if got := h.Quantile(1); got != 1e9 {
		t.Errorf("p=1 = %g, want exact max", got)
	}
	for _, p := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(p); got < 0.001 || got > 1e9 {
			t.Errorf("p=%g = %g outside observed range", p, got)
		}
	}
}

// TestLogHistogramQuantileAccuracy is the headline guarantee: any quantile
// answered from the histogram is within one bucket's relative width of the
// exact sorted-sample quantile (same ceil(p*n) order statistic).
func TestLogHistogramQuantileAccuracy(t *testing.T) {
	h, err := NewLogHistogram(1e-3, 1e6, 480)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		// Lognormal response-time-like shape spanning several decades.
		xs[i] = math.Exp(rng.NormFloat64()*1.5 + 2)
		h.Add(xs[i])
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	tol := math.Log(1 + h.BucketRelWidth())
	for _, p := range []float64{0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(p * n))
		if rank < 1 {
			rank = 1
		}
		exact := sorted[rank-1]
		got := h.Quantile(p)
		if got <= 0 {
			t.Fatalf("p=%g: non-positive %g", p, got)
		}
		if d := math.Abs(math.Log(got / exact)); d > tol+1e-12 {
			t.Errorf("p=%g: got %g exact %g (log-error %.4f > %.4f)", p, got, exact, d, tol)
		}
	}
}

func TestLogHistogramPercentileAlias(t *testing.T) {
	h, err := NewLogHistogram(1e-3, 1e3, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Percentile(95) != h.Quantile(0.95) {
		t.Error("Percentile(95) != Quantile(0.95)")
	}
}
