package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestLogHistogramValidation(t *testing.T) {
	cases := []struct {
		lo, hi float64
		n      int
	}{
		{0, 1, 10},
		{-1, 1, 10},
		{1, 1, 10},
		{2, 1, 10},
		{1, 2, 0},
		{math.NaN(), 1, 10},
	}
	for _, c := range cases {
		if _, err := NewLogHistogram(c.lo, c.hi, c.n); err == nil {
			t.Errorf("NewLogHistogram(%g, %g, %d): accepted", c.lo, c.hi, c.n)
		}
	}
}

func TestLogHistogramEmptyAndEdges(t *testing.T) {
	h, err := NewLogHistogram(1e-3, 1e6, 480)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
	h.Add(2)
	h.Add(8)
	if got := h.Quantile(0); got != 2 {
		t.Errorf("p=0 = %g, want exact min", got)
	}
	if got := h.Quantile(1); got != 8 {
		t.Errorf("p=1 = %g, want exact max", got)
	}
	if h.Count() != 2 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestLogHistogramClampsOutOfRange(t *testing.T) {
	h, err := NewLogHistogram(1, 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0.001) // below lo: bucket 0
	h.Add(1e9)   // above hi: last bucket
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	// Out-of-range observations saturate into the edge buckets; p=0/p=1
	// still answer the exact min/max, and every quantile stays inside the
	// observed range.
	if got := h.Quantile(0); got != 0.001 {
		t.Errorf("p=0 = %g, want exact min", got)
	}
	if got := h.Quantile(1); got != 1e9 {
		t.Errorf("p=1 = %g, want exact max", got)
	}
	for _, p := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(p); got < 0.001 || got > 1e9 {
			t.Errorf("p=%g = %g outside observed range", p, got)
		}
	}
}

// TestLogHistogramQuantileAccuracy is the headline guarantee: any quantile
// answered from the histogram is within one bucket's relative width of the
// exact sorted-sample quantile (same ceil(p*n) order statistic).
func TestLogHistogramQuantileAccuracy(t *testing.T) {
	h, err := NewLogHistogram(1e-3, 1e6, 480)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 20000
	xs := make([]float64, n)
	for i := range xs {
		// Lognormal response-time-like shape spanning several decades.
		xs[i] = math.Exp(rng.NormFloat64()*1.5 + 2)
		h.Add(xs[i])
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	tol := math.Log(1 + h.BucketRelWidth())
	for _, p := range []float64{0.01, 0.10, 0.50, 0.90, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(p * n))
		if rank < 1 {
			rank = 1
		}
		exact := sorted[rank-1]
		got := h.Quantile(p)
		if got <= 0 {
			t.Fatalf("p=%g: non-positive %g", p, got)
		}
		if d := math.Abs(math.Log(got / exact)); d > tol+1e-12 {
			t.Errorf("p=%g: got %g exact %g (log-error %.4f > %.4f)", p, got, exact, d, tol)
		}
	}
}

// FuzzLogHistogramQuantile fuzzes the accuracy bound over arbitrary
// observation sets: for any data derived from the fuzzed seed/shape, every
// quantile whose order statistic falls inside [lo, hi) must be within one
// bucket's relative width (<4.4% at 480 buckets over [1e-3,1e6)) of the
// exact sorted quantile, and quantiles must never leave [min, max].
func FuzzLogHistogramQuantile(f *testing.F) {
	f.Add(int64(1), 100, 1.5, 2.0)
	f.Add(int64(42), 3000, 0.3, -1.0)
	f.Add(int64(-9), 7, 4.0, 5.5)
	f.Fuzz(func(t *testing.T, seed int64, n int, sigma, mu float64) {
		if n < 1 || n > 50000 {
			return
		}
		if math.IsNaN(sigma) || math.IsInf(sigma, 0) || sigma < 0 || sigma > 6 {
			return
		}
		if math.IsNaN(mu) || math.IsInf(mu, 0) || mu < -5 || mu > 10 {
			return
		}
		h, err := NewLogHistogram(1e-3, 1e6, 480)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Exp(rng.NormFloat64()*sigma + mu)
			h.Add(xs[i])
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		tol := math.Log(1 + h.BucketRelWidth())
		if tol >= math.Log(1.045) {
			t.Fatalf("bucket width %.4f%% not under the documented ~4.4%%", 100*h.BucketRelWidth())
		}
		for _, p := range []float64{0, 0.05, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
			got := h.Quantile(p)
			if got < sorted[0] || got > sorted[n-1] {
				t.Fatalf("p=%g: %g outside observed [%g,%g]", p, got, sorted[0], sorted[n-1])
			}
			if p <= 0 || p >= 1 {
				continue // exact min/max, checked by the range assertion
			}
			rank := int(math.Ceil(p * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := sorted[rank-1]
			// The bound only holds for order statistics inside [lo, hi):
			// clamped out-of-range observations saturate by design.
			if exact < 1e-3 || exact >= 1e6 {
				continue
			}
			if d := math.Abs(math.Log(got / exact)); d > tol+1e-12 {
				t.Fatalf("p=%g: got %g exact %g (log-error %.4f > %.4f)", p, got, exact, d, tol)
			}
		}
	})
}

// TestLogHistogramDegenerateObservations pins the documented clamping for
// observations a quantile sketch over positive response times should never
// see but must survive: zeros, negatives, NaN, and values past hi.
func TestLogHistogramDegenerateObservations(t *testing.T) {
	h, err := NewLogHistogram(1e-3, 1e6, 480)
	if err != nil {
		t.Fatal(err)
	}
	// Zero, negative and NaN land in bucket 0 without panicking.
	h.Add(0)
	h.Add(-12.5)
	h.Add(math.NaN())
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	// A real observation dominates the upper quantiles.
	h.Add(50)
	if got := h.Quantile(1); got != 50 {
		t.Fatalf("p=1 = %g, want exact max 50", got)
	}
	if got := h.Quantile(0.99); math.IsNaN(got) {
		t.Fatalf("p=0.99 = NaN after degenerate observations")
	}

	// Overflow: everything at or past hi collapses into the last bucket,
	// so mid-range quantiles saturate but p=1 stays exact.
	o, err := NewLogHistogram(1, 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{100, 1e6, math.Inf(1)} {
		o.Add(x)
	}
	if got := o.Quantile(1); !math.IsInf(got, 1) {
		t.Fatalf("p=1 = %g, want exact max +Inf", got)
	}
	if got := o.Quantile(0.5); got < 100 {
		t.Fatalf("p=0.5 = %g, want saturation at or above hi's bucket", got)
	}
}

// TestLogHistogramNaNFirstObservation is the regression test for the
// min/max poisoning bug: a NaN FIRST observation used to set min and max
// to NaN, and since every comparison against NaN is false, no later
// observation could repair them — Quantile returned NaN forever. A NaN
// must behave exactly like the documented bucket-0 clamp (i.e. as 0)
// regardless of arrival order.
func TestLogHistogramNaNFirstObservation(t *testing.T) {
	h, err := NewLogHistogram(1e-3, 1e6, 480)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(math.NaN()) // first observation — the poisoning position
	h.Add(50)
	h.Add(2)
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("p=0 = %g, want 0 (NaN clamps to the bucket-0 value)", got)
	}
	if got := h.Quantile(1); got != 50 {
		t.Fatalf("p=1 = %g, want exact max 50", got)
	}
	for _, p := range []float64{0.25, 0.5, 0.95} {
		if got := h.Quantile(p); math.IsNaN(got) {
			t.Fatalf("p=%g = NaN: min/max poisoned by a NaN first observation", p)
		}
	}

	// Order-independence: NaN first then x must leave the same state as x
	// then NaN.
	a, _ := NewLogHistogram(1e-3, 1e6, 480)
	b, _ := NewLogHistogram(1e-3, 1e6, 480)
	a.Add(math.NaN())
	a.Add(7)
	b.Add(7)
	b.Add(math.NaN())
	for _, p := range []float64{0, 0.5, 1} {
		if ga, gb := a.Quantile(p), b.Quantile(p); ga != gb {
			t.Fatalf("p=%g: NaN-first %g != NaN-last %g", p, ga, gb)
		}
	}
}

func TestLogHistogramPercentileAlias(t *testing.T) {
	h, err := NewLogHistogram(1e-3, 1e3, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.Percentile(95) != h.Quantile(0.95) {
		t.Error("Percentile(95) != Quantile(0.95)")
	}
}
