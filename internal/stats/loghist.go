package stats

import (
	"fmt"
	"math"
)

// LogHistogram is a fixed-bucket streaming quantile sketch over
// geometrically spaced buckets: bucket i spans [lo*g^i, lo*g^(i+1)) with
// g chosen so n buckets cover [lo, hi). Adding an observation is O(1) and
// allocation-free, memory is fixed at construction, and any quantile is
// answered to within one bucket's relative width — the tracker behind the
// streaming p95/p99 columns and the SLO-budget admission policy, where
// retaining every sample (stats.Sample) would defeat O(classes) memory.
//
// Values below lo land in bucket 0 and values at or above hi in the last
// bucket, so extreme quantiles saturate at the range edges; exact min and
// max are tracked separately and returned for p=0 and p=1.
type LogHistogram struct {
	lo, hi    float64
	invLogG   float64 // 1 / ln(g), for the bucket index
	logLo     float64
	counts    []int64
	total     int64
	min, max  float64
	edgeCache []float64 // bucket left edges, precomputed for quantile reads
}

// NewLogHistogram builds a histogram of n geometric buckets spanning
// [lo, hi). Relative resolution is (hi/lo)^(1/n)-1 per bucket; 256 buckets
// over [1e-3, 1e6) resolve better than 8.5%.
func NewLogHistogram(lo, hi float64, n int) (*LogHistogram, error) {
	if !(lo > 0) || !(hi > lo) || n <= 0 {
		return nil, fmt.Errorf("stats: NewLogHistogram invalid range [%g,%g) with %d buckets", lo, hi, n)
	}
	logG := math.Log(hi/lo) / float64(n)
	h := &LogHistogram{
		lo:        lo,
		hi:        hi,
		invLogG:   1 / logG,
		logLo:     math.Log(lo),
		counts:    make([]int64, n),
		edgeCache: make([]float64, n+1),
	}
	for i := 0; i <= n; i++ {
		h.edgeCache[i] = lo * math.Exp(logG*float64(i))
	}
	h.edgeCache[n] = hi
	return h, nil
}

// Add records one observation. Non-positive and NaN values clamp into the
// first bucket (response times are positive; zero only for degenerate
// records); a NaN counts as 0 throughout, so it can never poison the
// tracked min/max.
func (h *LogHistogram) Add(x float64) {
	if math.IsNaN(x) {
		// Without this, a NaN first observation would set min and max to
		// NaN, and every later comparison against them would fail — the
		// histogram would report NaN quantiles forever.
		x = 0
	}
	i := 0
	if x >= h.lo {
		i = int((math.Log(x) - h.logLo) * h.invLogG)
		if i >= len(h.counts) || i < 0 {
			// i < 0 happens for x = +Inf: int(Inf) is the most negative
			// int, which the upper check alone would miss.
			i = len(h.counts) - 1
		}
	}
	h.counts[i]++
	if h.total == 0 {
		h.min, h.max = x, x
	} else {
		if x < h.min {
			h.min = x
		}
		if x > h.max {
			h.max = x
		}
	}
	h.total++
}

// Count returns the number of observations.
func (h *LogHistogram) Count() int64 { return h.total }

// Quantile returns the p-quantile (0<=p<=1): the geometric midpoint of the
// bucket holding the ceil(p*total)-th observation, clamped into the exact
// observed [min, max]. The answer is within one bucket width of the exact
// sorted quantile for any p whose order statistic falls inside [lo, hi).
// It returns 0 with no data.
func (h *LogHistogram) Quantile(p float64) float64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 1 {
		return h.max
	}
	rank := int64(math.Ceil(p * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			mid := math.Sqrt(h.edgeCache[i] * h.edgeCache[i+1])
			if mid < h.min {
				mid = h.min
			}
			if mid > h.max {
				mid = h.max
			}
			return mid
		}
	}
	return h.max
}

// Percentile returns the p-th percentile (p in [0,100]).
func (h *LogHistogram) Percentile(p float64) float64 { return h.Quantile(p / 100) }

// BucketRelWidth returns the relative width of one bucket, g-1: the
// worst-case relative error bound of Quantile inside [lo, hi).
func (h *LogHistogram) BucketRelWidth() float64 {
	return math.Exp(1/h.invLogG) - 1
}
