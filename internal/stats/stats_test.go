package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStreamBasics(t *testing.T) {
	var s Stream
	if s.Count() != 0 || s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("zero-value Stream not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Fatalf("Count = %d", s.Count())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	// Population variance is 4; sample variance = 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %g, want %g", got, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", s.Min(), s.Max())
	}
	if got := s.Sum(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("Sum = %g, want 40", got)
	}
}

func TestStreamSingle(t *testing.T) {
	var s Stream
	s.Add(3)
	if s.Variance() != 0 || s.StdDev() != 0 {
		t.Fatal("variance with one sample should be 0")
	}
	if s.Min() != 3 || s.Max() != 3 {
		t.Fatal("min/max with one sample")
	}
}

// TestStreamVarianceNeverNegative pins the clamp in Variance: Welford's m2
// can round microscopically negative for near-constant observations around
// a large offset, and StdDev must never become Sqrt of a negative (NaN).
func TestStreamVarianceNeverNegative(t *testing.T) {
	var s Stream
	for i := 0; i < 100; i++ {
		s.Add(1e15 + float64(i%3)*1e-2)
	}
	if v := s.Variance(); v < 0 || math.IsNaN(v) {
		t.Fatalf("Variance = %g", v)
	}
	if sd := s.StdDev(); math.IsNaN(sd) {
		t.Fatalf("StdDev = %g", sd)
	}
	// Property: no non-overflowing float64 sequence may produce a negative
	// variance. (Magnitudes near MaxFloat64 overflow Welford's
	// intermediates to Inf — out of scope for the clamp.)
	if err := quick.Check(func(xs []float64) bool {
		var q Stream
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e150 {
				return true
			}
			q.Add(x)
		}
		return q.Variance() >= 0 && !math.IsNaN(q.StdDev())
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQuantile(t *testing.T) {
	var s Sample
	s.AddAll([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 10}, {0.5, 5.5}, {0.25, 3.25}, {0.95, 9.55},
	}
	for _, c := range cases {
		if got := s.Quantile(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := s.Percentile(95); math.Abs(got-9.55) > 1e-12 {
		t.Fatalf("Percentile(95) = %g", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatal("empty sample should return zeros")
	}
}

func TestSampleInterleavedAddAndQuery(t *testing.T) {
	var s Sample
	s.Add(5)
	_ = s.Quantile(0.5)
	s.Add(1) // must re-sort after this
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %g, want 1", got)
	}
}

func TestMAPE(t *testing.T) {
	got, err := MAPE([]float64{100, 200}, []float64{110, 180})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 {
		t.Fatalf("MAPE = %g, want 10", got)
	}
	if _, err := MAPE([]float64{0, 0}, []float64{1, 1}); err == nil {
		t.Fatal("expected ErrNoData for all-zero actuals")
	}
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
}

func TestRelativeChange(t *testing.T) {
	if got := RelativeChange(100, 80); math.Abs(got+20) > 1e-12 {
		t.Fatalf("RelativeChange = %g, want -20", got)
	}
	if got := RelativeChange(0, 5); got != 0 {
		t.Fatalf("RelativeChange with zero base = %g, want 0", got)
	}
}

func TestFitLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	l, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Intercept-1) > 1e-12 || math.Abs(l.Slope-2) > 1e-12 {
		t.Fatalf("fit = %+v", l)
	}
	if math.Abs(l.R2-1) > 1e-12 {
		t.Fatalf("R2 = %g, want 1", l.R2)
	}
	if got := l.At(10); math.Abs(got-21) > 1e-12 {
		t.Fatalf("At(10) = %g", got)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Fatal("expected error with one point")
	}
	if _, err := FitLinear([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("expected error with degenerate x")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error with mismatched lengths")
	}
}

func TestFitLinearConstantY(t *testing.T) {
	l, err := FitLinear([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if l.Slope != 0 || l.Intercept != 4 || l.R2 != 1 {
		t.Fatalf("fit = %+v", l)
	}
}

func TestInterpolate(t *testing.T) {
	// The paper's overhead profiling: anchors at drop 0 and drop 0.9.
	cases := []struct{ x, want float64 }{
		{0, 10}, {0.9, 1}, {0.45, 5.5}, {-1, 10}, {2, 1},
	}
	for _, c := range cases {
		if got := Interpolate(0, 10, 0.9, 1, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Interpolate(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	// Reversed anchors give the same answer.
	if got := Interpolate(0.9, 1, 0, 10, 0.45); math.Abs(got-5.5) > 1e-12 {
		t.Fatalf("reversed anchors = %g", got)
	}
	// Coincident anchors fall back to the average.
	if got := Interpolate(1, 2, 1, 4, 1); got != 3 {
		t.Fatalf("coincident anchors = %g", got)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-5, 0, 1.9, 2, 9.9, 15} {
		h.Add(x)
	}
	if h.Count() != 6 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Bin(0) != 3 { // -5, 0, 1.9
		t.Fatalf("Bin(0) = %d, want 3", h.Bin(0))
	}
	if h.Bin(1) != 1 || h.Bin(4) != 2 {
		t.Fatalf("bins = %d %d", h.Bin(1), h.Bin(4))
	}
	if h.Bins() != 5 {
		t.Fatalf("Bins = %d", h.Bins())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %g", got)
	}
	if got := h.CDFAt(3.5); math.Abs(got-4.0/6) > 1e-12 {
		t.Fatalf("CDFAt(3.5) = %g", got)
	}
	if got := h.CDFAt(100); got != 1 {
		t.Fatalf("CDFAt(100) = %g", got)
	}
}

func TestHistogramInvalid(t *testing.T) {
	if _, err := NewHistogram(0, 0, 5); err == nil {
		t.Fatal("expected error for empty range")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("expected error for zero bins")
	}
}

// Property: Stream mean/variance agree with direct two-pass computation.
func TestPropertyStreamMatchesTwoPass(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%100) + 2
		xs := make([]float64, count)
		var s Stream
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			s.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(count)
		var m2 float64
		for _, x := range xs {
			m2 += (x - mean) * (x - mean)
		}
		variance := m2 / float64(count-1)
		return math.Abs(s.Mean()-mean) < 1e-8 && math.Abs(s.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in p and bounded by min/max.
func TestPropertyQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Sample
		for i := 0; i < 50; i++ {
			s.Add(rng.NormFloat64())
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := s.Quantile(p)
			if q < prev-1e-12 {
				return false
			}
			prev = q
		}
		return s.Quantile(0) <= s.Quantile(1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
