// Package stats provides the statistics toolkit shared by the DiAS
// experiments: streaming moments, percentiles, histograms, mean absolute
// percentage error, and ordinary least squares regression (used to
// interpolate profiled overhead times, §4.3 of the paper).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoData is returned by estimators that need at least one observation.
var ErrNoData = errors.New("stats: no data")

// Stream accumulates observations with Welford's algorithm, giving
// numerically stable running mean and variance plus min/max.
// The zero value is ready to use.
type Stream struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Count returns the number of observations.
func (s *Stream) Count() int64 { return s.n }

// Mean returns the running mean, or 0 with no data.
func (s *Stream) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations. Welford's m2 can round to a tiny negative for
// near-constant inputs; clamp so StdDev never hits Sqrt of a negative.
func (s *Stream) Variance() float64 {
	if s.n < 2 || s.m2 <= 0 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 with no data.
func (s *Stream) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no data.
func (s *Stream) Max() float64 { return s.max }

// Sum returns the total of all observations.
func (s *Stream) Sum() float64 { return s.mean * float64(s.n) }

// Sample retains every observation for quantile queries.
// The zero value is ready to use.
type Sample struct {
	xs     []float64
	sorted bool
}

// Add records one observation.
func (s *Sample) Add(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// Reserve grows the sample's capacity to hold at least n observations
// without further allocation. A hint, not a bound: Add keeps working
// past it.
func (s *Sample) Reserve(n int) {
	if extra := n - cap(s.xs); extra > 0 {
		s.xs = append(make([]float64, 0, n), s.xs...)
	}
}

// AddAll records a batch of observations.
func (s *Sample) AddAll(xs []float64) {
	s.xs = append(s.xs, xs...)
	s.sorted = false
}

// Count returns the number of observations.
func (s *Sample) Count() int { return len(s.xs) }

// Mean returns the sample mean, or 0 with no data.
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation, or 0 with <2 observations.
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var m2 float64
	for _, x := range s.xs {
		d := x - m
		m2 += d * d
	}
	return math.Sqrt(m2 / float64(n-1))
}

func (s *Sample) sort() {
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
}

// Quantile returns the p-quantile (0<=p<=1) using linear interpolation
// between order statistics (type-7, the numpy default). It returns 0 with
// no data.
func (s *Sample) Quantile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if p <= 0 {
		s.sort()
		return s.xs[0]
	}
	if p >= 1 {
		s.sort()
		return s.xs[len(s.xs)-1]
	}
	s.sort()
	h := p * float64(len(s.xs)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(s.xs) {
		return s.xs[lo]
	}
	frac := h - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Percentile returns the p-th percentile (p in [0,100]).
func (s *Sample) Percentile(p float64) float64 { return s.Quantile(p / 100) }

// Values returns a copy of the observations in insertion-independent
// (sorted) order.
func (s *Sample) Values() []float64 {
	s.sort()
	out := make([]float64, len(s.xs))
	copy(out, s.xs)
	return out
}

// MAPE returns the mean absolute percentage error of predictions against
// actuals, in percent. Pairs with a zero actual are skipped; if every pair
// is skipped or the inputs are empty it returns ErrNoData.
func MAPE(actual, predicted []float64) (float64, error) {
	if len(actual) != len(predicted) {
		return 0, fmt.Errorf("stats: MAPE length mismatch %d vs %d", len(actual), len(predicted))
	}
	var sum float64
	var n int
	for i := range actual {
		if actual[i] == 0 {
			continue
		}
		sum += math.Abs((predicted[i] - actual[i]) / actual[i])
		n++
	}
	if n == 0 {
		return 0, ErrNoData
	}
	return 100 * sum / float64(n), nil
}

// RelativeChange returns (b-a)/a in percent: the "Difference [%]" axis the
// paper's figures report against the preemptive baseline. A negative result
// means b improved (decreased) relative to a.
func RelativeChange(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (b - a) / a
}

// Linear is a fitted line y = Intercept + Slope*x.
type Linear struct {
	Intercept, Slope float64
	R2               float64 // coefficient of determination
}

// FitLinear computes the ordinary least squares fit of y on x.
// It needs at least two points with distinct x values.
func FitLinear(x, y []float64) (Linear, error) {
	if len(x) != len(y) {
		return Linear{}, fmt.Errorf("stats: FitLinear length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return Linear{}, ErrNoData
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, errors.New("stats: FitLinear degenerate x values")
	}
	slope := sxy / sxx
	l := Linear{Intercept: my - slope*mx, Slope: slope}
	if syy > 0 {
		l.R2 = sxy * sxy / (sxx * syy)
	} else {
		l.R2 = 1 // y constant and perfectly fit
	}
	return l, nil
}

// At evaluates the fitted line at x.
func (l Linear) At(x float64) float64 { return l.Intercept + l.Slope*x }

// Interpolate returns the linear interpolation of y between two anchor
// points (x0,y0) and (x1,y1) at x, clamping outside the interval. This is
// the two-point overhead interpolation the paper uses for profiling (§4.3).
func Interpolate(x0, y0, x1, y1, x float64) float64 {
	if x0 == x1 {
		return (y0 + y1) / 2
	}
	if x1 < x0 {
		x0, x1 = x1, x0
		y0, y1 = y1, y0
	}
	switch {
	case x <= x0:
		return y0
	case x >= x1:
		return y1
	default:
		f := (x - x0) / (x1 - x0)
		return y0*(1-f) + y1*f
	}
}

// Histogram counts observations into fixed-width bins over [lo, hi); values
// outside the range land in the first or last bin.
type Histogram struct {
	lo, width float64
	counts    []int64
	total     int64
}

// NewHistogram returns a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 || hi <= lo {
		return nil, fmt.Errorf("stats: NewHistogram invalid range [%g,%g) with %d bins", lo, hi, n)
	}
	return &Histogram{lo: lo, width: (hi - lo) / float64(n), counts: make([]int64, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int(math.Floor((x - h.lo) / h.width))
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.total++
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.total }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) int64 { return h.counts[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.width
}

// CDFAt returns the empirical CDF at the right edge of the bin containing x.
func (h *Histogram) CDFAt(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var cum int64
	for i := range h.counts {
		edge := h.lo + float64(i+1)*h.width
		cum += h.counts[i]
		if x < edge {
			return float64(cum) / float64(h.total)
		}
	}
	return 1
}
