package dfs

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func newFS(t *testing.T, cfg Config) *FS {
	t.Helper()
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero datanodes", func(c *Config) { c.DataNodes = 0 }},
		{"replication zero", func(c *Config) { c.Replication = 0 }},
		{"replication exceeds nodes", func(c *Config) { c.Replication = 99 }},
		{"zero block size", func(c *Config) { c.BlockSize = 0 }},
		{"zero bandwidth", func(c *Config) { c.LocalBytesPerSec = 0 }},
	}
	for _, c := range cases {
		cfg := DefaultConfig()
		c.mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestCreateSplitsIntoBlocks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BlockSize = 100
	fs := newFS(t, cfg)
	if err := fs.Create("/data/a", 250); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.Blocks("/data/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 3 {
		t.Fatalf("%d blocks, want 3", len(blocks))
	}
	if blocks[0].Size != 100 || blocks[1].Size != 100 || blocks[2].Size != 50 {
		t.Fatalf("block sizes %d %d %d", blocks[0].Size, blocks[1].Size, blocks[2].Size)
	}
	for _, b := range blocks {
		if len(b.Replicas) != cfg.Replication {
			t.Fatalf("block %d has %d replicas", b.ID, len(b.Replicas))
		}
	}
	size, err := fs.Size("/data/a")
	if err != nil || size != 250 {
		t.Fatalf("Size = %d, %v", size, err)
	}
}

func TestCreateErrors(t *testing.T) {
	fs := newFS(t, DefaultConfig())
	if err := fs.Create("/a", 0); err == nil {
		t.Fatal("created empty file")
	}
	if err := fs.Create("/a", 10); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/a", 10); err == nil {
		t.Fatal("created duplicate file")
	}
}

func TestDelete(t *testing.T) {
	fs := newFS(t, DefaultConfig())
	if err := fs.Create("/a", 1000); err != nil {
		t.Fatal(err)
	}
	if fs.TotalStored() != 3000 { // replication 3
		t.Fatalf("TotalStored = %d, want 3000", fs.TotalStored())
	}
	if err := fs.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a") {
		t.Fatal("file exists after delete")
	}
	if fs.TotalStored() != 0 {
		t.Fatalf("TotalStored = %d after delete", fs.TotalStored())
	}
	err := fs.Delete("/a")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete missing = %v, want ErrNotFound", err)
	}
	if _, err := fs.Blocks("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Blocks missing = %v", err)
	}
	if _, err := fs.Size("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Size missing = %v", err)
	}
}

func TestPlacementBalance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataNodes = 4
	cfg.Replication = 2
	cfg.BlockSize = 10
	fs := newFS(t, cfg)
	if err := fs.Create("/big", 10*100); err != nil { // 100 blocks
		t.Fatal(err)
	}
	// Round-robin placement: each node stores 100*2/4 = 50 blocks of 10B.
	for n := 0; n < 4; n++ {
		if got := fs.UsedBytes(n); got != 500 {
			t.Fatalf("node %d stores %d bytes, want 500", n, got)
		}
	}
}

func TestLocalityAndReadTime(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DataNodes = 3
	cfg.Replication = 1
	cfg.BlockSize = 1000
	cfg.LocalBytesPerSec = 1000
	cfg.RemoteBytesPerSec = 500
	fs := newFS(t, cfg)
	if err := fs.Create("/f", 1000); err != nil {
		t.Fatal(err)
	}
	blocks, err := fs.Blocks("/f")
	if err != nil {
		t.Fatal(err)
	}
	b := blocks[0]
	holder := b.Replicas[0]
	if !fs.IsLocal(b, holder) {
		t.Fatal("replica holder not local")
	}
	local := fs.ReadTime(b, holder).Seconds()
	if math.Abs(local-1.0) > 1e-12 {
		t.Fatalf("local read = %g s, want 1", local)
	}
	remoteNode := (holder + 1) % 3
	remote := fs.ReadTime(b, remoteNode).Seconds()
	if math.Abs(remote-2.0) > 1e-12 {
		t.Fatalf("remote read = %g s, want 2", remote)
	}
}

func TestComputeNodeFolding(t *testing.T) {
	// Compute node 5 with 3 datanodes folds onto datanode 2.
	cfg := DefaultConfig()
	cfg.Replication = 1
	fs := newFS(t, cfg)
	b := Block{ID: 1, Size: 10, Replicas: []int{2}}
	if !fs.IsLocal(b, 5) {
		t.Fatal("node 5 should fold to datanode 2")
	}
	if fs.IsLocal(b, 4) {
		t.Fatal("node 4 should fold to datanode 1")
	}
}

// Property: created files always have ceil(size/blockSize) blocks whose
// sizes sum to the file size, each with exactly Replication replicas.
func TestPropertyBlockInvariants(t *testing.T) {
	f := func(rawSize uint32, rawBS uint16) bool {
		size := int64(rawSize%1_000_000) + 1
		bs := int64(rawBS%10_000) + 1
		cfg := DefaultConfig()
		cfg.BlockSize = bs
		fs, err := New(cfg)
		if err != nil {
			return false
		}
		if err := fs.Create("/x", size); err != nil {
			return false
		}
		blocks, err := fs.Blocks("/x")
		if err != nil {
			return false
		}
		wantBlocks := int((size + bs - 1) / bs)
		if len(blocks) != wantBlocks {
			return false
		}
		var total int64
		for _, b := range blocks {
			if len(b.Replicas) != cfg.Replication || b.Size <= 0 || b.Size > bs {
				return false
			}
			total += b.Size
		}
		return total == size && fs.TotalStored() == total*int64(cfg.Replication)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
