package dfs

import (
	"testing"
)

func newFailFS(t *testing.T) *FS {
	t.Helper()
	cfg := Config{
		DataNodes:         3,
		Replication:       2,
		BlockSize:         64 << 20,
		LocalBytesPerSec:  200e6,
		RemoteBytesPerSec: 100e6,
	}
	fs, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/data", 128<<20); err != nil {
		t.Fatal(err)
	}
	return fs
}

func TestFailDataNodeBreaksLocality(t *testing.T) {
	fs := newFailFS(t)
	blocks, err := fs.Blocks("/data")
	if err != nil {
		t.Fatal(err)
	}
	b := blocks[0]
	reader := b.Replicas[0]
	if !fs.IsLocal(b, reader) {
		t.Fatal("replica holder not local before failure")
	}
	localTime := fs.ReadTime(b, reader)
	if err := fs.FailDataNode(reader); err != nil {
		t.Fatal(err)
	}
	if fs.IsLocal(b, reader) {
		t.Fatal("down datanode still counts as local")
	}
	remoteTime := fs.ReadTime(b, reader)
	if remoteTime <= localTime {
		t.Fatalf("read with down local replica %v not slower than local %v", remoteTime, localTime)
	}
	if err := fs.RepairDataNode(reader); err != nil {
		t.Fatal(err)
	}
	if !fs.IsLocal(b, reader) {
		t.Fatal("locality not restored by repair")
	}
}

func TestAllReplicasDownDegradesRead(t *testing.T) {
	fs := newFailFS(t)
	blocks, err := fs.Blocks("/data")
	if err != nil {
		t.Fatal(err)
	}
	b := blocks[0]
	// A reader co-located with no replica pays the remote rate.
	remoteReader := -1
	for dn := 0; dn < fs.Config().DataNodes; dn++ {
		if !fs.IsLocal(b, dn) {
			remoteReader = dn
			break
		}
	}
	if remoteReader == -1 {
		t.Skip("replication covers all nodes; no remote reader")
	}
	healthy := fs.ReadTime(b, remoteReader)
	for _, r := range b.Replicas {
		if err := fs.FailDataNode(r); err != nil {
			t.Fatal(err)
		}
	}
	degraded := fs.ReadTime(b, remoteReader)
	want := float64(healthy) * DegradedReadPenalty
	if got := float64(degraded); got < want*0.99 || got > want*1.01 {
		t.Fatalf("degraded read %v, want ~%gx of %v", degraded, float64(DegradedReadPenalty), healthy)
	}
}

func TestFailRepairDataNodeValidation(t *testing.T) {
	fs := newFailFS(t)
	if err := fs.FailDataNode(9); err == nil {
		t.Fatal("out-of-range fail accepted")
	}
	if err := fs.RepairDataNode(0); err == nil {
		t.Fatal("repair of up node accepted")
	}
	if err := fs.FailDataNode(0); err != nil {
		t.Fatal(err)
	}
	if err := fs.FailDataNode(0); err == nil {
		t.Fatal("double fail accepted")
	}
	if !fs.DataNodeDown(0) {
		t.Fatal("down not reported")
	}
	if err := fs.RepairDataNode(0); err != nil {
		t.Fatal(err)
	}
	if fs.DataNodeDown(0) {
		t.Fatal("repair not reported")
	}
}
