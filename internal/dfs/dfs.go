// Package dfs simulates the HDFS layer the paper's jobs read their input
// from (§2.4): a namenode mapping files to fixed-size blocks, datanodes
// holding replicated blocks, and a locality-aware read cost model.
//
// The dataflow engine maps one input partition to one block; a dropped
// task never fetches its block, which is where the "early drop saves the
// overhead of fetching data" effect (§3.1) comes from.
package dfs

import (
	"errors"
	"fmt"
	"sort"

	"dias/internal/simtime"
)

// Default transfer rates. Reads of a local replica stream from disk; remote
// reads cross the 10G network (paper testbed) and cost slightly more.
const (
	// DefaultBlockSize is the HDFS-style 128 MiB block size, in bytes.
	DefaultBlockSize = 128 << 20
	// DefaultLocalBytesPerSec is the local-read bandwidth (bytes/s).
	DefaultLocalBytesPerSec = 400e6
	// DefaultRemoteBytesPerSec is the remote-read bandwidth (bytes/s).
	DefaultRemoteBytesPerSec = 250e6
	// DefaultWANBytesPerSec is the cross-cluster bandwidth (bytes/s) for
	// blocks of remote files (CreateRemote): data homed in another
	// cluster's dfs and fetched over the wide-area link.
	DefaultWANBytesPerSec = 50e6
)

// ErrNotFound is returned when a path does not exist.
var ErrNotFound = errors.New("dfs: file not found")

// BlockID identifies a block cluster-wide.
type BlockID uint64

// Block is one replicated chunk of a file.
type Block struct {
	ID       BlockID
	Size     int64 // bytes
	Replicas []int // datanode indices holding a copy
	// Remote marks a block whose data lives in another cluster's dfs
	// (see CreateRemote): it has no local replicas and every read crosses
	// the WAN at Config.WANBytesPerSec.
	Remote bool
}

// Config describes a DFS deployment.
type Config struct {
	DataNodes   int
	Replication int
	BlockSize   int64
	// LocalBytesPerSec / RemoteBytesPerSec drive ReadTime.
	LocalBytesPerSec  float64
	RemoteBytesPerSec float64
	// WANBytesPerSec prices reads of remote files (CreateRemote), whose
	// data must cross the inter-cluster link; zero means
	// DefaultWANBytesPerSec.
	WANBytesPerSec float64
}

// DefaultConfig mirrors the paper's deployment: HDFS with three datanodes
// and default replication 3 (every datanode holds every block).
func DefaultConfig() Config {
	return Config{
		DataNodes:         3,
		Replication:       3,
		BlockSize:         DefaultBlockSize,
		LocalBytesPerSec:  DefaultLocalBytesPerSec,
		RemoteBytesPerSec: DefaultRemoteBytesPerSec,
		WANBytesPerSec:    DefaultWANBytesPerSec,
	}
}

type file struct {
	blocks []Block
	size   int64
}

// FS is a simulated distributed file system. It is single-threaded like
// the simulation driving it.
type FS struct {
	cfg     Config
	files   map[string]*file
	nextID  BlockID
	used    []int64 // bytes stored per datanode
	placeAt int     // round-robin cursor for replica placement
	down    []bool  // failed datanodes; their replicas are unreadable
}

// New builds an empty file system.
func New(cfg Config) (*FS, error) {
	switch {
	case cfg.DataNodes <= 0:
		return nil, fmt.Errorf("dfs: %d datanodes", cfg.DataNodes)
	case cfg.Replication <= 0 || cfg.Replication > cfg.DataNodes:
		return nil, fmt.Errorf("dfs: replication %d with %d datanodes", cfg.Replication, cfg.DataNodes)
	case cfg.BlockSize <= 0:
		return nil, fmt.Errorf("dfs: block size %d", cfg.BlockSize)
	case cfg.LocalBytesPerSec <= 0 || cfg.RemoteBytesPerSec <= 0:
		return nil, fmt.Errorf("dfs: bandwidths %g/%g", cfg.LocalBytesPerSec, cfg.RemoteBytesPerSec)
	case cfg.WANBytesPerSec < 0:
		return nil, fmt.Errorf("dfs: WAN bandwidth %g", cfg.WANBytesPerSec)
	}
	if cfg.WANBytesPerSec == 0 {
		cfg.WANBytesPerSec = DefaultWANBytesPerSec
	}
	return &FS{
		cfg:   cfg,
		files: make(map[string]*file),
		used:  make([]int64, cfg.DataNodes),
		down:  make([]bool, cfg.DataNodes),
	}, nil
}

// Config returns the deployment configuration.
func (fs *FS) Config() Config { return fs.cfg }

// create registers a file of the given logical size, splitting it into
// blocks. Local files get Replication replicas placed round-robin across
// datanodes; remote files get bare WAN blocks. kind labels error messages.
func (fs *FS) create(kind, path string, size int64, remote bool) error {
	if size <= 0 {
		return fmt.Errorf("dfs: %s %q with size %d", kind, path, size)
	}
	if _, ok := fs.files[path]; ok {
		return fmt.Errorf("dfs: %s %q: file exists", kind, path)
	}
	f := &file{size: size}
	for off := int64(0); off < size; off += fs.cfg.BlockSize {
		bs := fs.cfg.BlockSize
		if rem := size - off; rem < bs {
			bs = rem
		}
		fs.nextID++
		b := Block{ID: fs.nextID, Size: bs, Remote: remote}
		if !remote {
			for r := 0; r < fs.cfg.Replication; r++ {
				node := (fs.placeAt + r) % fs.cfg.DataNodes
				b.Replicas = append(b.Replicas, node)
				fs.used[node] += bs
			}
			fs.placeAt = (fs.placeAt + 1) % fs.cfg.DataNodes
			sort.Ints(b.Replicas)
		}
		f.blocks = append(f.blocks, b)
	}
	fs.files[path] = f
	return nil
}

// Create writes a file of the given logical size, splitting it into blocks
// and placing replicas round-robin across datanodes. It fails if the path
// already exists.
func (fs *FS) Create(path string, size int64) error {
	return fs.create("create", path, size, false)
}

// CreateRemote registers a file whose data lives in another cluster's dfs:
// it is split into blocks like Create, but the blocks carry no local
// replicas and every read crosses the WAN at Config.WANBytesPerSec. This is
// how a federation prices routing a job off its data-home cluster — the
// remote engine still sees the file (block list, per-task fetch costs), it
// just pays inter-cluster bandwidth for each executed stage-0 task, while
// dropped tasks skip the fetch as usual.
func (fs *FS) CreateRemote(path string, size int64) error {
	return fs.create("create remote", path, size, true)
}

// Exists reports whether path is present.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

// Delete removes a file and frees its replicas.
func (fs *FS) Delete(path string) error {
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("delete %q: %w", path, ErrNotFound)
	}
	for _, b := range f.blocks {
		for _, n := range b.Replicas {
			fs.used[n] -= b.Size
		}
	}
	delete(fs.files, path)
	return nil
}

// Size returns the logical size of a file.
func (fs *FS) Size(path string) (int64, error) {
	f, ok := fs.files[path]
	if !ok {
		return 0, fmt.Errorf("size %q: %w", path, ErrNotFound)
	}
	return f.size, nil
}

// Blocks returns the block list of a file, in order.
func (fs *FS) Blocks(path string) ([]Block, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("blocks %q: %w", path, ErrNotFound)
	}
	out := make([]Block, len(f.blocks))
	copy(out, f.blocks)
	return out, nil
}

// UsedBytes returns the bytes stored on one datanode.
func (fs *FS) UsedBytes(node int) int64 { return fs.used[node] }

// TotalStored returns the bytes stored across all datanodes (including
// replication).
func (fs *FS) TotalStored() int64 {
	var t int64
	for _, u := range fs.used {
		t += u
	}
	return t
}

// IsLocal reports whether reader (a datanode index; compute nodes are
// co-located with datanodes modulo the datanode count, as in the paper's
// testbed where workers and datanodes share machines) holds a live replica
// of b. Replicas on failed datanodes do not count.
func (fs *FS) IsLocal(b Block, readerNode int) bool {
	if b.Remote {
		return false
	}
	dn := readerNode % fs.cfg.DataNodes
	if fs.down[dn] {
		return false
	}
	for _, r := range b.Replicas {
		if r == dn {
			return true
		}
	}
	return false
}

// liveReplicas counts replicas of b on up datanodes.
func (fs *FS) liveReplicas(b Block) int {
	var n int
	for _, r := range b.Replicas {
		if !fs.down[r] {
			n++
		}
	}
	return n
}

// DegradedReadPenalty multiplies the remote read time when no live replica
// exists and the block must be recovered out of band (e.g. from a cold
// backup) — HDFS would block the read until re-replication.
const DegradedReadPenalty = 10

// ReadTime returns the virtual time needed to fetch block b from the
// perspective of a reader on the given compute node: local-disk rate when
// the reader co-hosts a live replica, network rate when some other live
// replica exists, WAN rate when the block belongs to a remote file
// (another cluster's data), and a degraded recovery read when failures
// took out every replica.
func (fs *FS) ReadTime(b Block, readerNode int) simtime.Duration {
	bw := fs.cfg.RemoteBytesPerSec
	switch {
	case b.Remote:
		bw = fs.cfg.WANBytesPerSec
	case fs.IsLocal(b, readerNode):
		bw = fs.cfg.LocalBytesPerSec
	case fs.liveReplicas(b) == 0:
		bw = fs.cfg.RemoteBytesPerSec / DegradedReadPenalty
	}
	return simtime.Duration(float64(b.Size) / bw)
}

// FailDataNode takes a datanode offline: its replicas become unreadable
// until repair. Failing a failed datanode is an error.
func (fs *FS) FailDataNode(dn int) error {
	if dn < 0 || dn >= fs.cfg.DataNodes {
		return fmt.Errorf("dfs: fail datanode %d of %d", dn, fs.cfg.DataNodes)
	}
	if fs.down[dn] {
		return fmt.Errorf("dfs: datanode %d already down", dn)
	}
	fs.down[dn] = true
	return nil
}

// RepairDataNode brings a failed datanode back (its replicas were
// preserved on disk, as an HDFS restart would find them).
func (fs *FS) RepairDataNode(dn int) error {
	if dn < 0 || dn >= fs.cfg.DataNodes {
		return fmt.Errorf("dfs: repair datanode %d of %d", dn, fs.cfg.DataNodes)
	}
	if !fs.down[dn] {
		return fmt.Errorf("dfs: datanode %d is not down", dn)
	}
	fs.down[dn] = false
	return nil
}

// DataNodeDown reports whether a datanode is currently failed.
func (fs *FS) DataNodeDown(dn int) bool {
	return dn >= 0 && dn < fs.cfg.DataNodes && fs.down[dn]
}
