package ring

import (
	"math/rand"
	"testing"
)

func TestPushPopFIFO(t *testing.T) {
	var d Deque[int]
	for i := 0; i < 100; i++ {
		d.PushBack(i)
	}
	for i := 0; i < 100; i++ {
		if got := d.PopFront(); got != i {
			t.Fatalf("PopFront = %d, want %d", got, i)
		}
	}
	if d.Len() != 0 {
		t.Fatalf("Len = %d after drain", d.Len())
	}
}

func TestPushFront(t *testing.T) {
	var d Deque[int]
	d.PushBack(2)
	d.PushFront(1)
	d.PushFront(0)
	for i := 0; i < 3; i++ {
		if got := d.At(i); got != i {
			t.Fatalf("At(%d) = %d", i, got)
		}
	}
	if d.Front() != 0 {
		t.Fatal("Front != 0")
	}
}

func TestRemove(t *testing.T) {
	mk := func() *Deque[int] {
		d := &Deque[int]{}
		// Force a wrapped layout: fill, drain some, refill.
		for i := 0; i < 6; i++ {
			d.PushBack(-1)
		}
		for i := 0; i < 6; i++ {
			d.PopFront()
		}
		for i := 0; i < 5; i++ {
			d.PushBack(i)
		}
		return d
	}
	for rm := 0; rm < 5; rm++ {
		d := mk()
		d.Remove(rm)
		want := []int{}
		for i := 0; i < 5; i++ {
			if i != rm {
				want = append(want, i)
			}
		}
		if d.Len() != len(want) {
			t.Fatalf("Len = %d, want %d", d.Len(), len(want))
		}
		for i, w := range want {
			if got := d.At(i); got != w {
				t.Fatalf("after Remove(%d): At(%d) = %d, want %d", rm, i, got, w)
			}
		}
	}
}

func TestClear(t *testing.T) {
	var d Deque[*int]
	x := 1
	d.PushBack(&x)
	d.Clear()
	if d.Len() != 0 {
		t.Fatal("Clear left elements")
	}
	d.PushBack(&x)
	if d.Len() != 1 || d.Front() != &x {
		t.Fatal("deque unusable after Clear")
	}
}

// TestAgainstSlice cross-checks the deque against a reference slice
// implementation under random front/back operations.
func TestAgainstSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var d Deque[int]
	var ref []int
	for op := 0; op < 20000; op++ {
		switch rng.Intn(5) {
		case 0:
			v := rng.Int()
			d.PushBack(v)
			ref = append(ref, v)
		case 1:
			v := rng.Int()
			d.PushFront(v)
			ref = append([]int{v}, ref...)
		case 2:
			if len(ref) > 0 {
				got := d.PopFront()
				if got != ref[0] {
					t.Fatalf("op %d: PopFront = %d, want %d", op, got, ref[0])
				}
				ref = ref[1:]
			}
		case 3:
			if len(ref) > 0 {
				i := rng.Intn(len(ref))
				d.Remove(i)
				ref = append(ref[:i:i], ref[i+1:]...)
			}
		case 4:
			if len(ref) > 0 {
				i := rng.Intn(len(ref))
				if got := d.At(i); got != ref[i] {
					t.Fatalf("op %d: At(%d) = %d, want %d", op, i, got, ref[i])
				}
			}
		}
		if d.Len() != len(ref) {
			t.Fatalf("op %d: Len = %d, want %d", op, d.Len(), len(ref))
		}
	}
}

func TestPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"PopFront": func() { new(Deque[int]).PopFront() },
		"Front":    func() { new(Deque[int]).Front() },
		"At":       func() { new(Deque[int]).At(0) },
		"Remove":   func() { new(Deque[int]).Remove(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s on empty deque did not panic", name)
				}
			}()
			fn()
		}()
	}
}
