// Package ring provides a growable ring-buffer deque used by the
// simulation hot paths (engine task queues, scheduler class buffers,
// queueing-model wait queues). Unlike the previous slice-based queues
// (`q = q[1:]` pops and `append([]*T{x}, q...)` pushes), a Deque reuses
// its backing array across drain/refill cycles, so steady-state queue
// traffic performs no allocation at all.
package ring

// Deque is a double-ended queue backed by a circular buffer.
// The zero value is an empty deque ready for use.
type Deque[T any] struct {
	buf  []T
	head int // index of the front element when n > 0
	n    int
}

// Len returns the number of queued elements.
func (d *Deque[T]) Len() int { return d.n }

// grow doubles the buffer (minimum 8) and linearizes the contents.
func (d *Deque[T]) grow() {
	c := len(d.buf) * 2
	if c < 8 {
		c = 8
	}
	buf := make([]T, c)
	for i := 0; i < d.n; i++ {
		buf[i] = d.buf[(d.head+i)%len(d.buf)]
	}
	d.buf = buf
	d.head = 0
}

// PushBack appends x at the tail.
func (d *Deque[T]) PushBack(x T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.buf[(d.head+d.n)%len(d.buf)] = x
	d.n++
}

// PushFront inserts x at the head.
func (d *Deque[T]) PushFront(x T) {
	if d.n == len(d.buf) {
		d.grow()
	}
	d.head = (d.head - 1 + len(d.buf)) % len(d.buf)
	d.buf[d.head] = x
	d.n++
}

// Front returns the head element; it panics on an empty deque.
func (d *Deque[T]) Front() T {
	if d.n == 0 {
		panic("ring: Front of empty deque")
	}
	return d.buf[d.head]
}

// PopFront removes and returns the head element; it panics on an empty
// deque. The vacated slot is zeroed so popped pointers do not linger.
func (d *Deque[T]) PopFront() T {
	if d.n == 0 {
		panic("ring: PopFront of empty deque")
	}
	var zero T
	x := d.buf[d.head]
	d.buf[d.head] = zero
	d.head = (d.head + 1) % len(d.buf)
	d.n--
	return x
}

// At returns the i-th element from the front (0 <= i < Len).
func (d *Deque[T]) At(i int) T {
	if i < 0 || i >= d.n {
		panic("ring: index out of range")
	}
	return d.buf[(d.head+i)%len(d.buf)]
}

// Remove deletes the i-th element from the front, shifting the shorter
// side of the deque over the gap.
func (d *Deque[T]) Remove(i int) {
	if i < 0 || i >= d.n {
		panic("ring: index out of range")
	}
	var zero T
	if i < d.n-i-1 {
		// Shift the front section towards the back.
		for j := i; j > 0; j-- {
			d.buf[(d.head+j)%len(d.buf)] = d.buf[(d.head+j-1)%len(d.buf)]
		}
		d.buf[d.head] = zero
		d.head = (d.head + 1) % len(d.buf)
	} else {
		for j := i; j < d.n-1; j++ {
			d.buf[(d.head+j)%len(d.buf)] = d.buf[(d.head+j+1)%len(d.buf)]
		}
		d.buf[(d.head+d.n-1)%len(d.buf)] = zero
	}
	d.n--
}

// Clear empties the deque, zeroing occupied slots but keeping the backing
// array for reuse.
func (d *Deque[T]) Clear() {
	var zero T
	for i := 0; i < d.n; i++ {
		d.buf[(d.head+i)%len(d.buf)] = zero
	}
	d.head, d.n = 0, 0
}
