package metrics

import (
	"bytes"
	"math"
	"testing"

	"dias/internal/core"
)

func slowdownRecords() []core.JobRecord {
	// Low class (0): response 30 over exec 10 -> slowdown 3.
	// High class (1): response 12 over exec 10 -> slowdown 1.2.
	var recs []core.JobRecord
	for i := 0; i < 10; i++ {
		recs = append(recs,
			core.JobRecord{Class: 0, ResponseSec: 30, ExecSec: 10},
			core.JobRecord{Class: 1, ResponseSec: 12, ExecSec: 10},
		)
	}
	return recs
}

func TestSlowdowns(t *testing.T) {
	s := Slowdowns(slowdownRecords(), 2, 0)
	if len(s) != 2 {
		t.Fatalf("%d classes", len(s))
	}
	if math.Abs(s[0].MeanSlowdown-3) > 1e-12 || math.Abs(s[1].MeanSlowdown-1.2) > 1e-12 {
		t.Fatalf("slowdowns %+v", s)
	}
	if s[0].Jobs != 10 || s[1].Jobs != 10 {
		t.Fatalf("job counts %+v", s)
	}
	if got := SlowdownRatio(s); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("ratio %g, want 2.5", got)
	}
}

func TestSlowdownsSkipsWarmupAndBadRecords(t *testing.T) {
	recs := []core.JobRecord{
		{Class: 0, ResponseSec: 100, ExecSec: 1}, // warmup, skipped
		{Class: 0, ResponseSec: 20, ExecSec: 10},
		{Class: 0, ResponseSec: 5, ExecSec: 0}, // zero exec, skipped
		{Class: 9, ResponseSec: 5, ExecSec: 1}, // out of range, skipped
		{Class: 0, ResponseSec: 40, ExecSec: 10},
	}
	s := Slowdowns(recs, 1, 0.2)
	if s[0].Jobs != 2 {
		t.Fatalf("%d jobs counted, want 2", s[0].Jobs)
	}
	if math.Abs(s[0].MeanSlowdown-3) > 1e-12 {
		t.Fatalf("mean slowdown %g, want 3", s[0].MeanSlowdown)
	}
}

func TestSlowdownRatioDegenerate(t *testing.T) {
	if got := SlowdownRatio(nil); got != 0 {
		t.Fatalf("nil ratio %g", got)
	}
	empty := []SlowdownStats{{Class: 0}, {Class: 1}}
	if got := SlowdownRatio(empty); got != 0 {
		t.Fatalf("empty ratio %g", got)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := []ScenarioResult{
		{
			Name: "P",
			PerClass: []ClassStats{
				{Class: 0, Jobs: 5, MeanResponseSec: 12.5, P95ResponseSec: 20},
				{Class: 1, Jobs: 2, MeanResponseSec: 3},
			},
			ResourceWastePct: 4.2,
			EnergyJoules:     1e6,
			MakespanSec:      900,
		},
		{Name: "DA(0,20)"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, in...); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Name != "P" || out[1].Name != "DA(0,20)" {
		t.Fatalf("round trip %+v", out)
	}
	if out[0].PerClass[0].MeanResponseSec != 12.5 || out[0].ResourceWastePct != 4.2 {
		t.Fatalf("fields lost: %+v", out[0])
	}
	if _, err := ReadJSON(bytes.NewBufferString("{broken")); err == nil {
		t.Fatal("broken JSON accepted")
	}
}
