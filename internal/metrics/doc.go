// Package metrics aggregates per-job records into the quantities the
// paper reports: per-class mean and 95th-percentile response times, the
// queueing/execution decomposition (Table 2), resource waste from
// evictions (§5.1), energy, and the motivation's latency slowdowns.
//
// Aggregation is streaming-first: Accumulator and SlowdownAccumulator
// fold records one at a time (typically wired to core.Config.OnRecord
// with DiscardRecords set), so experiment drivers never materialize the
// full per-job record slice of a run. Memory stays O(classes) plus the
// retained response-time samples that exact percentiles require. The
// batch entry points Aggregate and Slowdowns are thin wrappers over the
// accumulators and produce bit-identical results for the same record
// sequence.
//
// Comparison helpers (Compare, FormatComparisonTable,
// FormatDecompositionTable) render the paper's relative-difference
// figures and tables from ScenarioResult values.
package metrics
