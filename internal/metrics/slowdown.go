package metrics

import (
	"encoding/json"
	"fmt"
	"io"

	"dias/internal/core"
	"dias/internal/stats"
)

// Slowdown metrics reproduce the measurement the paper's motivation builds
// on (§1, §2.1): the latency slowdown of a job is its end-to-end response
// time divided by the execution time of its successful attempt (i.e.
// excluding time lost to evictions), and production traces show the lowest
// priority suffering ~3x the slowdown of high priorities under preemptive
// scheduling.

// SlowdownStats summarises one class's slowdowns.
type SlowdownStats struct {
	Class int
	Jobs  int
	// MeanSlowdown and P95Slowdown are response/exec ratios (>= 1).
	MeanSlowdown float64
	P95Slowdown  float64
}

// Slowdowns computes per-class slowdown statistics from job records,
// skipping the first warmupFraction of completions.
func Slowdowns(records []core.JobRecord, classes int, warmupFraction float64) []SlowdownStats {
	if warmupFraction < 0 {
		warmupFraction = 0
	}
	if warmupFraction > 0.9 {
		warmupFraction = 0.9
	}
	skip := int(float64(len(records)) * warmupFraction)
	out := make([]SlowdownStats, classes)
	samples := make([]*stats.Sample, classes)
	for k := range out {
		out[k].Class = k
		samples[k] = &stats.Sample{}
	}
	for i, r := range records {
		if i < skip || r.Class < 0 || r.Class >= classes || r.ExecSec <= 0 {
			continue
		}
		out[r.Class].Jobs++
		samples[r.Class].Add(r.ResponseSec / r.ExecSec)
	}
	for k := range out {
		out[k].MeanSlowdown = samples[k].Mean()
		out[k].P95Slowdown = samples[k].Percentile(95)
	}
	return out
}

// SlowdownRatio returns the mean slowdown of the lowest class divided by
// that of the highest — the paper's headline "3x" motivation number. It
// returns 0 when either class has no jobs.
func SlowdownRatio(slowdowns []SlowdownStats) float64 {
	if len(slowdowns) < 2 {
		return 0
	}
	low, high := slowdowns[0], slowdowns[len(slowdowns)-1]
	if low.Jobs == 0 || high.Jobs == 0 || high.MeanSlowdown <= 0 {
		return 0
	}
	return low.MeanSlowdown / high.MeanSlowdown
}

// WriteJSON streams scenario results as pretty-printed JSON, for piping
// experiment output into external plotting tools.
func WriteJSON(w io.Writer, results ...ScenarioResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return fmt.Errorf("metrics: encoding results: %w", err)
	}
	return nil
}

// ReadJSON parses results written by WriteJSON.
func ReadJSON(r io.Reader) ([]ScenarioResult, error) {
	var out []ScenarioResult
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("metrics: decoding results: %w", err)
	}
	return out, nil
}
