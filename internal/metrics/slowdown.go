package metrics

import (
	"encoding/json"
	"fmt"
	"io"

	"dias/internal/core"
	"dias/internal/stats"
)

// Slowdown metrics reproduce the measurement the paper's motivation builds
// on (§1, §2.1): the latency slowdown of a job is its end-to-end response
// time divided by the execution time of its successful attempt (i.e.
// excluding time lost to evictions), and production traces show the lowest
// priority suffering ~3x the slowdown of high priorities under preemptive
// scheduling.

// SlowdownStats summarises one class's slowdowns.
type SlowdownStats struct {
	Class int
	Jobs  int
	// MeanSlowdown and P95Slowdown are response/exec ratios (>= 1).
	MeanSlowdown float64
	P95Slowdown  float64
}

// SlowdownAccumulator computes per-class slowdown statistics from a
// record stream, the streaming counterpart of Slowdowns (see Accumulator
// for the expectedRecords/warmup convention).
type SlowdownAccumulator struct {
	classes int
	skip    int
	seen    int
	jobs    []int
	samples []stats.Sample
}

// NewSlowdownAccumulator returns a slowdown accumulator for the given
// class count sized for expectedRecords completions.
func NewSlowdownAccumulator(classes, expectedRecords int, warmupFraction float64) *SlowdownAccumulator {
	return &SlowdownAccumulator{
		classes: classes,
		skip:    int(float64(expectedRecords) * clampWarmup(warmupFraction)),
		jobs:    make([]int, classes),
		samples: make([]stats.Sample, classes),
	}
}

// Add folds one completed-job record into the slowdown statistics.
func (a *SlowdownAccumulator) Add(r core.JobRecord) {
	a.seen++
	if a.seen <= a.skip || r.Class < 0 || r.Class >= a.classes || r.ExecSec <= 0 {
		return
	}
	a.jobs[r.Class]++
	a.samples[r.Class].Add(r.ResponseSec / r.ExecSec)
}

// Classes finalizes and returns the per-class slowdown statistics.
func (a *SlowdownAccumulator) Classes() []SlowdownStats {
	out := make([]SlowdownStats, a.classes)
	for k := range out {
		out[k].Class = k
		out[k].Jobs = a.jobs[k]
		out[k].MeanSlowdown = a.samples[k].Mean()
		out[k].P95Slowdown = a.samples[k].Percentile(95)
	}
	return out
}

// Slowdowns computes per-class slowdown statistics from job records,
// skipping the first warmupFraction of completions. It is the batch form
// of SlowdownAccumulator.
func Slowdowns(records []core.JobRecord, classes int, warmupFraction float64) []SlowdownStats {
	a := NewSlowdownAccumulator(classes, len(records), warmupFraction)
	for _, r := range records {
		a.Add(r)
	}
	return a.Classes()
}

// SlowdownRatio returns the mean slowdown of the lowest class divided by
// that of the highest — the paper's headline "3x" motivation number. It
// returns 0 when either class has no jobs.
func SlowdownRatio(slowdowns []SlowdownStats) float64 {
	if len(slowdowns) < 2 {
		return 0
	}
	low, high := slowdowns[0], slowdowns[len(slowdowns)-1]
	if low.Jobs == 0 || high.Jobs == 0 || high.MeanSlowdown <= 0 {
		return 0
	}
	return low.MeanSlowdown / high.MeanSlowdown
}

// WriteJSON streams scenario results as pretty-printed JSON, for piping
// experiment output into external plotting tools.
func WriteJSON(w io.Writer, results ...ScenarioResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return fmt.Errorf("metrics: encoding results: %w", err)
	}
	return nil
}

// ReadJSON parses results written by WriteJSON.
func ReadJSON(r io.Reader) ([]ScenarioResult, error) {
	var out []ScenarioResult
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("metrics: decoding results: %w", err)
	}
	return out, nil
}
