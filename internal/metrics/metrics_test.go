package metrics

import (
	"math"
	"strings"
	"testing"

	"dias/internal/core"
)

func recs() []core.JobRecord {
	return []core.JobRecord{
		{Class: 0, ResponseSec: 100, QueueSec: 70, ExecSec: 30, Evictions: 1, EffectiveDropRatio: 0.2},
		{Class: 1, ResponseSec: 20, QueueSec: 5, ExecSec: 15},
		{Class: 0, ResponseSec: 200, QueueSec: 150, ExecSec: 50, EffectiveDropRatio: 0.2},
		{Class: 1, ResponseSec: 40, QueueSec: 10, ExecSec: 30},
	}
}

func TestAggregate(t *testing.T) {
	cs := Aggregate(recs(), 2, 0)
	if cs[0].Jobs != 2 || cs[1].Jobs != 2 {
		t.Fatalf("job counts %d/%d", cs[0].Jobs, cs[1].Jobs)
	}
	if math.Abs(cs[0].MeanResponseSec-150) > 1e-9 {
		t.Fatalf("low mean = %g", cs[0].MeanResponseSec)
	}
	if math.Abs(cs[0].MeanQueueSec-110) > 1e-9 || math.Abs(cs[0].MeanExecSec-40) > 1e-9 {
		t.Fatalf("decomposition %g/%g", cs[0].MeanQueueSec, cs[0].MeanExecSec)
	}
	if cs[0].Evictions != 1 {
		t.Fatalf("evictions = %d", cs[0].Evictions)
	}
	if math.Abs(cs[0].MeanEffectiveDrop-0.2) > 1e-9 {
		t.Fatalf("drop = %g", cs[0].MeanEffectiveDrop)
	}
	// p95 with two samples interpolates near the max.
	if cs[1].P95ResponseSec < 35 || cs[1].P95ResponseSec > 40 {
		t.Fatalf("p95 = %g", cs[1].P95ResponseSec)
	}
}

func TestAggregateWarmup(t *testing.T) {
	cs := Aggregate(recs(), 2, 0.5) // skip first two records
	if cs[0].Jobs != 1 || cs[1].Jobs != 1 {
		t.Fatalf("warmup skip wrong: %d/%d", cs[0].Jobs, cs[1].Jobs)
	}
	if math.Abs(cs[0].MeanResponseSec-200) > 1e-9 {
		t.Fatalf("low mean after warmup = %g", cs[0].MeanResponseSec)
	}
	// Out-of-range warmup fractions are clamped, not fatal.
	_ = Aggregate(recs(), 2, -1)
	_ = Aggregate(recs(), 2, 5)
}

func TestAggregateIgnoresForeignClasses(t *testing.T) {
	rs := append(recs(), core.JobRecord{Class: 9, ResponseSec: 1e9})
	cs := Aggregate(rs, 2, 0)
	if cs[0].Jobs != 2 || cs[1].Jobs != 2 {
		t.Fatal("foreign class leaked into stats")
	}
}

func baseline() ScenarioResult {
	return ScenarioResult{
		Name: "P",
		PerClass: []ClassStats{
			{Class: 0, MeanResponseSec: 200, P95ResponseSec: 400},
			{Class: 1, MeanResponseSec: 20, P95ResponseSec: 50},
		},
		ResourceWastePct: 4,
		EnergyJoules:     1000,
	}
}

func TestCompare(t *testing.T) {
	da := ScenarioResult{
		Name: "DA(0,20)",
		PerClass: []ClassStats{
			{Class: 0, MeanResponseSec: 70, P95ResponseSec: 140},
			{Class: 1, MeanResponseSec: 22, P95ResponseSec: 45},
		},
		EnergyJoules: 800,
	}
	cs := Compare(baseline(), da)
	if len(cs) != 1 {
		t.Fatalf("%d comparisons", len(cs))
	}
	c := cs[0]
	if math.Abs(c.MeanDiffPct[0]+65) > 1e-9 {
		t.Fatalf("low mean diff = %g, want -65", c.MeanDiffPct[0])
	}
	if math.Abs(c.MeanDiffPct[1]-10) > 1e-9 {
		t.Fatalf("high mean diff = %g, want +10", c.MeanDiffPct[1])
	}
	if math.Abs(c.TailDiffPct[0]+65) > 1e-9 {
		t.Fatalf("low tail diff = %g", c.TailDiffPct[0])
	}
	if math.Abs(c.EnergyDiffPct+20) > 1e-9 {
		t.Fatalf("energy diff = %g, want -20", c.EnergyDiffPct)
	}
}

func TestFormatComparisonTable(t *testing.T) {
	other := baseline()
	other.Name = "NP"
	other.ResourceWastePct = 0
	out := FormatComparisonTable(baseline(), other)
	for _, want := range []string{"P", "NP", "High", "Low", "mean", "p95", "waste"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestFormatDecompositionTable(t *testing.T) {
	r := baseline()
	r.PerClass[0].MeanQueueSec = 378.9
	r.PerClass[0].MeanExecSec = 148.5
	out := FormatDecompositionTable(r)
	if !strings.Contains(out, "Queue") || !strings.Contains(out, "Exec") {
		t.Fatalf("missing headers:\n%s", out)
	}
	if !strings.Contains(out, "378.9") {
		t.Fatalf("missing value:\n%s", out)
	}
}

func TestClassLabels(t *testing.T) {
	three := ScenarioResult{
		Name:     "P",
		PerClass: []ClassStats{{Class: 0}, {Class: 1}, {Class: 2}},
	}
	out := FormatComparisonTable(three)
	for _, want := range []string{"Low", "Middle", "High"} {
		if !strings.Contains(out, want) {
			t.Fatalf("three-class table missing %q:\n%s", want, out)
		}
	}
}
