package metrics

import (
	"fmt"
	"strings"

	"dias/internal/core"
	"dias/internal/stats"
)

// ClassStats summarises the completed jobs of one priority class.
type ClassStats struct {
	Class int
	Jobs  int
	// Response/queue/exec times in seconds. P95 is exact (retained
	// samples) under NewAccumulator and histogram-derived under
	// NewBoundedAccumulator; P99 is always streamed through a fixed-bucket
	// log-scale histogram (stats.LogHistogram), accurate to within one
	// bucket width (<4.4%).
	MeanResponseSec float64
	P95ResponseSec  float64
	P99ResponseSec  float64
	MeanQueueSec    float64
	MeanExecSec     float64
	// Evictions suffered by this class's jobs.
	Evictions int
	// MeanEffectiveDrop averages the realised drop ratios.
	MeanEffectiveDrop float64
	// FailedJobs counts jobs reported failed with retries exhausted; their
	// latencies are excluded from the statistics above (Jobs counts only
	// completions).
	FailedJobs int
	// TaskRetries sums the failure-aborted task attempts re-executed by
	// this class's jobs, completed and failed alike.
	TaskRetries int
	// RejectedJobs counts jobs the admission policy shed at arrival; like
	// failed jobs they are excluded from the latency statistics, so a
	// policy cannot improve its latency columns by rejecting work without
	// the rejection showing up here.
	RejectedJobs int
}

// ScenarioResult is one policy's outcome on a workload.
type ScenarioResult struct {
	// Name is the paper label: P, NP, DA(0,20), DiAS(0,10), ...
	Name     string
	PerClass []ClassStats
	// ResourceWastePct is machine time spent on evicted attempts over all
	// machine time spent processing, in percent.
	ResourceWastePct float64
	// FailureWastePct is machine time destroyed by failures (aborted task
	// attempts and failed jobs) over all machine time, in percent.
	FailureWastePct float64
	// FailedJobs counts jobs that exhausted their retry budget;
	// TasksRetried counts failure-aborted attempts that re-executed.
	FailedJobs   int
	TasksRetried int
	// EnergyJoules is total cluster energy over the run.
	EnergyJoules float64
	// MakespanSec is the virtual time to drain the workload.
	MakespanSec float64
	// MeanPoweredNodes is the time-average powered-node count — below the
	// provisioned size when an elastic controller scales capacity in (zero
	// when the driver does not record it).
	MeanPoweredNodes float64
	// RejectedJobs counts admission-shed jobs (post-warmup) and
	// RejectedPct is their share of all post-warmup outcomes
	// (completed + failed + rejected) — the H5 mechanism column: a
	// latency "win" earned by shedding reads as a high RejectedPct, a win
	// earned by smoothing bursts does not.
	RejectedJobs int
	RejectedPct  float64
	// GoodputJobsPerSec is completed (not failed, not rejected) post-warmup
	// jobs per second of makespan — the throughput the latency columns
	// actually describe.
	GoodputJobsPerSec float64
	// SimJobsPerWallSec is host-side simulation throughput: arrivals
	// simulated per wall-clock second of the run. Machine-dependent (zero
	// when the driver does not measure it), so it belongs in benchmark
	// reports, never in deterministic figure text.
	SimJobsPerWallSec float64
	// PeakInFlightJobs is the high-water mark of dispatched-but-
	// unfinished jobs — the memory-bounding figure of a streaming run
	// (zero when the driver does not track it). Deterministic.
	PeakInFlightJobs int
	// ParallelSpeedup is serial wall-clock over parallel-kernel wall-clock
	// for the same run (zero when the driver does not measure it).
	// Machine-dependent like SimJobsPerWallSec: benchmark reports only,
	// never deterministic figure text, never gated.
	ParallelSpeedup float64
}

// FillOverload derives the rejected-work and goodput fields from the
// per-class stats and the makespan; drivers call it once after PerClass
// and MakespanSec are set.
func (r *ScenarioResult) FillOverload() {
	var completed, failed, rejected int
	for _, cs := range r.PerClass {
		completed += cs.Jobs
		failed += cs.FailedJobs
		rejected += cs.RejectedJobs
	}
	r.RejectedJobs = rejected
	if total := completed + failed + rejected; total > 0 {
		r.RejectedPct = 100 * float64(rejected) / float64(total)
	}
	if r.MakespanSec > 0 {
		r.GoodputJobsPerSec = float64(completed) / r.MakespanSec
	}
}

// clampWarmup normalizes a warmup fraction into [0, 0.9].
func clampWarmup(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 0.9 {
		return 0.9
	}
	return f
}

// Accumulator folds job records into per-class statistics as they stream
// in (e.g. wired to core.Config.OnRecord), so scenario drivers never
// materialize the full record slice. Apart from the retained response-time
// samples needed for exact percentiles, memory is O(classes);
// NewBoundedAccumulator drops the retained samples too, for runs whose
// job count makes even one float per completion unaffordable.
//
// The accumulator skips the first warmupFraction of the expected
// completions as transient; expectedRecords is the anticipated total
// (for experiment drivers, the number of scheduled arrivals, since every
// arrival eventually completes).
type Accumulator struct {
	classes int
	skip    int
	seen    int
	bounded bool
	out     []ClassStats
	samples []stats.Sample
	resps   []stats.Stream
	queues  []stats.Stream
	execs   []stats.Stream
	drops   []stats.Stream
	hists   []*stats.LogHistogram
	final   []ClassStats
}

// Response-time histogram shape: geometric buckets spanning 1ms..1e6s with
// ~4.3% relative width, allocated once per class at construction so Add
// stays allocation-free on the streaming path.
const (
	respHistLo      = 1e-3
	respHistHi      = 1e6
	respHistBuckets = 480
)

// NewAccumulator returns an accumulator for the given class count sized
// for expectedRecords completions.
func NewAccumulator(classes, expectedRecords int, warmupFraction float64) *Accumulator {
	a := &Accumulator{
		classes: classes,
		skip:    int(float64(expectedRecords) * clampWarmup(warmupFraction)),
		out:     make([]ClassStats, classes),
		samples: make([]stats.Sample, classes),
		resps:   make([]stats.Stream, classes),
		queues:  make([]stats.Stream, classes),
		execs:   make([]stats.Stream, classes),
		drops:   make([]stats.Stream, classes),
		hists:   make([]*stats.LogHistogram, classes),
	}
	for k := range a.out {
		a.out[k].Class = k
		h, err := stats.NewLogHistogram(respHistLo, respHistHi, respHistBuckets)
		if err != nil {
			panic(err) // constant, always-valid shape
		}
		a.hists[k] = h
	}
	// Pre-size the retained percentile samples from the expected total so
	// long streaming runs do not regrow them per wave of completions. The
	// per-class split is an estimate (class mixes are uneven); appends
	// stay amortized past it.
	if post := expectedRecords - a.skip; post > 0 && classes > 0 {
		for k := range a.samples {
			a.samples[k].Reserve(post / classes)
		}
	}
	return a
}

// NewBoundedAccumulator returns an accumulator whose memory is strictly
// O(classes) at any record count: the retained per-job response samples
// that make NewAccumulator's P95 exact are dropped, so MeanResponseSec
// comes from a Welford stream and P95 — like P99 on both paths — from
// the fixed-bucket log histogram, accurate to within one bucket width
// (<4.4%). Counts (jobs, evictions, retries, failures, rejections) are
// exact and identical to the unbounded accumulator's. This is the
// million-job variant: use it whenever the run is too large to retain a
// float per completion.
func NewBoundedAccumulator(classes, expectedRecords int, warmupFraction float64) *Accumulator {
	a := &Accumulator{
		classes: classes,
		skip:    int(float64(expectedRecords) * clampWarmup(warmupFraction)),
		bounded: true,
		out:     make([]ClassStats, classes),
		resps:   make([]stats.Stream, classes),
		queues:  make([]stats.Stream, classes),
		execs:   make([]stats.Stream, classes),
		drops:   make([]stats.Stream, classes),
		hists:   make([]*stats.LogHistogram, classes),
	}
	for k := range a.out {
		a.out[k].Class = k
		h, err := stats.NewLogHistogram(respHistLo, respHistHi, respHistBuckets)
		if err != nil {
			panic(err) // constant, always-valid shape
		}
		a.hists[k] = h
	}
	return a
}

// Add folds one completed-job record into the running statistics.
func (a *Accumulator) Add(r core.JobRecord) {
	a.seen++
	if a.seen <= a.skip || r.Class < 0 || r.Class >= a.classes {
		return
	}
	k := r.Class
	if r.Rejected {
		// Shed at arrival: no latency to account, only the lost work.
		a.out[k].RejectedJobs++
		return
	}
	a.out[k].TaskRetries += r.Retries
	if r.Failed {
		// A failed job's "response" measures an abort, not a service; keep
		// it out of the latency statistics but account the failure.
		a.out[k].FailedJobs++
		return
	}
	a.out[k].Jobs++
	a.out[k].Evictions += r.Evictions
	if a.bounded {
		a.resps[k].Add(r.ResponseSec)
	} else {
		a.samples[k].Add(r.ResponseSec)
	}
	a.hists[k].Add(r.ResponseSec)
	a.queues[k].Add(r.QueueSec)
	a.execs[k].Add(r.ExecSec)
	a.drops[k].Add(r.EffectiveDropRatio)
}

// Count returns the number of records folded in so far.
func (a *Accumulator) Count() int { return a.seen }

// Classes finalizes and returns the per-class statistics. The means are
// computed in insertion order before the percentile sort, so the result is
// bit-identical to Aggregate over the same record sequence. The finalized
// result is cached; Add after Classes has no effect on it.
func (a *Accumulator) Classes() []ClassStats {
	if a.final != nil {
		return a.final
	}
	out := make([]ClassStats, a.classes)
	for k := range out {
		out[k] = a.out[k]
		if a.bounded {
			out[k].MeanResponseSec = a.resps[k].Mean()
			out[k].P95ResponseSec = a.hists[k].Percentile(95)
		} else {
			out[k].MeanResponseSec = a.samples[k].Mean()
			out[k].P95ResponseSec = a.samples[k].Percentile(95)
		}
		out[k].P99ResponseSec = a.hists[k].Percentile(99)
		out[k].MeanQueueSec = a.queues[k].Mean()
		out[k].MeanExecSec = a.execs[k].Mean()
		out[k].MeanEffectiveDrop = a.drops[k].Mean()
	}
	a.final = out
	return out
}

// Aggregate folds job records into per-class statistics, skipping the
// first warmupFraction of completions (transient). It is the batch form
// of Accumulator.
func Aggregate(records []core.JobRecord, classes int, warmupFraction float64) []ClassStats {
	a := NewAccumulator(classes, len(records), warmupFraction)
	for _, r := range records {
		a.Add(r)
	}
	return a.Classes()
}

// Comparison is one scenario's per-class relative difference against a
// baseline, the "Difference [%]" axis of Figures 7-11 (negative =
// improvement).
type Comparison struct {
	Name string
	// MeanDiffPct[k] and TailDiffPct[k] are relative changes of class k's
	// mean and 95th-percentile response versus the baseline.
	MeanDiffPct []float64
	TailDiffPct []float64
	// EnergyDiffPct compares total energy (Figure 11c).
	EnergyDiffPct float64
	// ResourceWastePct of this scenario (absolute, not relative).
	ResourceWastePct float64
}

// Compare computes the paper-style relative differences of each scenario
// against the baseline.
func Compare(baseline ScenarioResult, others ...ScenarioResult) []Comparison {
	out := make([]Comparison, 0, len(others))
	for _, o := range others {
		c := Comparison{
			Name:             o.Name,
			MeanDiffPct:      make([]float64, len(o.PerClass)),
			TailDiffPct:      make([]float64, len(o.PerClass)),
			EnergyDiffPct:    stats.RelativeChange(baseline.EnergyJoules, o.EnergyJoules),
			ResourceWastePct: o.ResourceWastePct,
		}
		for k := range o.PerClass {
			if k < len(baseline.PerClass) {
				c.MeanDiffPct[k] = stats.RelativeChange(baseline.PerClass[k].MeanResponseSec, o.PerClass[k].MeanResponseSec)
				c.TailDiffPct[k] = stats.RelativeChange(baseline.PerClass[k].P95ResponseSec, o.PerClass[k].P95ResponseSec)
			}
		}
		out = append(out, c)
	}
	return out
}

// classLabel names classes the way the paper does (index = priority,
// higher = more important).
func classLabel(k, classes int) string {
	switch {
	case classes == 2:
		return [2]string{"Low", "High"}[k]
	case classes == 3:
		return [3]string{"Low", "Middle", "High"}[k]
	default:
		return fmt.Sprintf("Class%d", k)
	}
}

// FormatComparisonTable renders the baseline's absolute numbers and each
// scenario's relative differences, mirroring the layout of Figures 7-11.
func FormatComparisonTable(baseline ScenarioResult, others ...ScenarioResult) string {
	var b strings.Builder
	classes := len(baseline.PerClass)
	fmt.Fprintf(&b, "%-12s baseline (absolute response times, waste %.1f%%)\n", baseline.Name, baseline.ResourceWastePct)
	for k := classes - 1; k >= 0; k-- {
		cs := baseline.PerClass[k]
		fmt.Fprintf(&b, "  %-7s mean %9.2fs   p95 %9.2fs   (n=%d)\n",
			classLabel(k, classes), cs.MeanResponseSec, cs.P95ResponseSec, cs.Jobs)
	}
	for _, c := range Compare(baseline, others...) {
		fmt.Fprintf(&b, "%-12s vs %s (waste %.1f%%, energy %+.1f%%)\n", c.Name, baseline.Name, c.ResourceWastePct, c.EnergyDiffPct)
		for k := classes - 1; k >= 0; k-- {
			fmt.Fprintf(&b, "  %-7s mean %+8.1f%%   p95 %+8.1f%%\n",
				classLabel(k, classes), c.MeanDiffPct[k], c.TailDiffPct[k])
		}
	}
	return b.String()
}

// formatScenarioTable renders the scenario-grid tables (fault, elasticity,
// overload) from one skeleton: a header line, then one row per scenario ×
// class in descending class order. The scenario name and its scenario-level
// tail cells appear only on the first (highest-class) row of each group.
// classCells writes the per-class columns (including their leading
// separator), tailCells the scenario-level columns appended to first rows.
func formatScenarioTable(header string, nameWidth int, results []ScenarioResult,
	classCells func(b *strings.Builder, cs ClassStats),
	tailCells func(b *strings.Builder, r ScenarioResult)) string {
	var b strings.Builder
	b.WriteString(header)
	for _, r := range results {
		classes := len(r.PerClass)
		for k := classes - 1; k >= 0; k-- {
			name := ""
			if k == classes-1 {
				name = r.Name
			}
			fmt.Fprintf(&b, "%-*s %-7s", nameWidth, name, classLabel(k, classes))
			classCells(&b, r.PerClass[k])
			if k == classes-1 {
				tailCells(&b, r)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// FormatFaultTable renders scenarios along the failure and capacity axes:
// per-class response statistics next to failed-job counts, task retries,
// failure waste and the time-average powered-node count — the columns the
// fault-tolerance and elasticity figures compare.
func FormatFaultTable(results ...ScenarioResult) string {
	return formatScenarioTable(
		"Scenario                  Class     Mean [s]     P95 [s]   Jobs  Failed  Retries  FailWaste  AvgNodes\n",
		25, results,
		func(b *strings.Builder, cs ClassStats) {
			fmt.Fprintf(b, " %10.2f  %10.2f  %5d  %6d  %7d",
				cs.MeanResponseSec, cs.P95ResponseSec, cs.Jobs, cs.FailedJobs, cs.TaskRetries)
		},
		func(b *strings.Builder, r ScenarioResult) {
			fmt.Fprintf(b, "  %8.1f%%  %8.1f", r.FailureWastePct, r.MeanPoweredNodes)
		})
}

// FormatElasticityTable renders the elastic-capacity comparison: per-class
// response next to the capacity actually paid for (time-average powered
// nodes) and the energy bill, the latency/cost frontier an autoscaler
// trades along.
func FormatElasticityTable(results ...ScenarioResult) string {
	return formatScenarioTable(
		"Scenario            Class     Mean [s]     P95 [s]   Jobs   AvgNodes  Energy [MJ]  Makespan [s]\n",
		19, results,
		func(b *strings.Builder, cs ClassStats) {
			fmt.Fprintf(b, " %10.2f  %10.2f  %5d",
				cs.MeanResponseSec, cs.P95ResponseSec, cs.Jobs)
		},
		func(b *strings.Builder, r ScenarioResult) {
			fmt.Fprintf(b, "   %8.1f  %11.2f  %12.1f",
				r.MeanPoweredNodes, r.EnergyJoules/1e6, r.MakespanSec)
		})
}

// FormatOverloadTable renders the offered-load sweep: per-class latency
// (mean, exact p95, histogram p99) and the jobs completed vs shed, plus the
// scenario-level rejected-work fraction and goodput. Keeping latency and
// rejection in adjacent columns is the point: an admission policy that
// "wins" the latency columns by shedding shows the price in the same row.
func FormatOverloadTable(results ...ScenarioResult) string {
	return formatScenarioTable(
		"Scenario                Class     Mean [s]     P95 [s]     P99 [s]   Jobs  Rejected   RejPct  Goodput [j/min]\n",
		23, results,
		func(b *strings.Builder, cs ClassStats) {
			fmt.Fprintf(b, " %10.2f  %10.2f  %10.2f  %5d  %8d",
				cs.MeanResponseSec, cs.P95ResponseSec, cs.P99ResponseSec, cs.Jobs, cs.RejectedJobs)
		},
		func(b *strings.Builder, r ScenarioResult) {
			fmt.Fprintf(b, "  %6.1f%%  %15.2f", r.RejectedPct, r.GoodputJobsPerSec*60)
		})
}

// FormatDecompositionTable renders Table 2: mean queueing and execution
// times per class for a set of scenarios.
func FormatDecompositionTable(results ...ScenarioResult) string {
	var b strings.Builder
	b.WriteString("Policy        Class    Queue [s]    Exec [s]\n")
	for _, r := range results {
		for k := len(r.PerClass) - 1; k >= 0; k-- {
			cs := r.PerClass[k]
			fmt.Fprintf(&b, "%-13s %-7s %9.1f  %10.1f\n",
				r.Name, classLabel(k, len(r.PerClass)), cs.MeanQueueSec, cs.MeanExecSec)
		}
	}
	return b.String()
}
