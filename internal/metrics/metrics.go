// Package metrics aggregates per-job records into the quantities the
// paper reports: per-class mean and 95th-percentile response times, the
// queueing/execution decomposition (Table 2), resource waste from
// evictions (§5.1), and energy.
package metrics

import (
	"fmt"
	"strings"

	"dias/internal/core"
	"dias/internal/stats"
)

// ClassStats summarises the completed jobs of one priority class.
type ClassStats struct {
	Class int
	Jobs  int
	// Response/queue/exec times in seconds.
	MeanResponseSec float64
	P95ResponseSec  float64
	MeanQueueSec    float64
	MeanExecSec     float64
	// Evictions suffered by this class's jobs.
	Evictions int
	// MeanEffectiveDrop averages the realised drop ratios.
	MeanEffectiveDrop float64
}

// ScenarioResult is one policy's outcome on a workload.
type ScenarioResult struct {
	// Name is the paper label: P, NP, DA(0,20), DiAS(0,10), ...
	Name     string
	PerClass []ClassStats
	// ResourceWastePct is machine time spent on evicted attempts over all
	// machine time spent processing, in percent.
	ResourceWastePct float64
	// EnergyJoules is total cluster energy over the run.
	EnergyJoules float64
	// MakespanSec is the virtual time to drain the workload.
	MakespanSec float64
}

// Aggregate folds job records into per-class statistics, skipping the
// first warmupFraction of completions (transient).
func Aggregate(records []core.JobRecord, classes int, warmupFraction float64) []ClassStats {
	if warmupFraction < 0 {
		warmupFraction = 0
	}
	if warmupFraction > 0.9 {
		warmupFraction = 0.9
	}
	skip := int(float64(len(records)) * warmupFraction)
	out := make([]ClassStats, classes)
	samples := make([]*stats.Sample, classes)
	queues := make([]*stats.Stream, classes)
	execs := make([]*stats.Stream, classes)
	drops := make([]*stats.Stream, classes)
	for k := range out {
		out[k].Class = k
		samples[k] = &stats.Sample{}
		queues[k] = &stats.Stream{}
		execs[k] = &stats.Stream{}
		drops[k] = &stats.Stream{}
	}
	for i, r := range records {
		if i < skip {
			continue
		}
		if r.Class < 0 || r.Class >= classes {
			continue
		}
		k := r.Class
		out[k].Jobs++
		out[k].Evictions += r.Evictions
		samples[k].Add(r.ResponseSec)
		queues[k].Add(r.QueueSec)
		execs[k].Add(r.ExecSec)
		drops[k].Add(r.EffectiveDropRatio)
	}
	for k := range out {
		out[k].MeanResponseSec = samples[k].Mean()
		out[k].P95ResponseSec = samples[k].Percentile(95)
		out[k].MeanQueueSec = queues[k].Mean()
		out[k].MeanExecSec = execs[k].Mean()
		out[k].MeanEffectiveDrop = drops[k].Mean()
	}
	return out
}

// Comparison is one scenario's per-class relative difference against a
// baseline, the "Difference [%]" axis of Figures 7-11 (negative =
// improvement).
type Comparison struct {
	Name string
	// MeanDiffPct[k] and TailDiffPct[k] are relative changes of class k's
	// mean and 95th-percentile response versus the baseline.
	MeanDiffPct []float64
	TailDiffPct []float64
	// EnergyDiffPct compares total energy (Figure 11c).
	EnergyDiffPct float64
	// ResourceWastePct of this scenario (absolute, not relative).
	ResourceWastePct float64
}

// Compare computes the paper-style relative differences of each scenario
// against the baseline.
func Compare(baseline ScenarioResult, others ...ScenarioResult) []Comparison {
	out := make([]Comparison, 0, len(others))
	for _, o := range others {
		c := Comparison{
			Name:             o.Name,
			MeanDiffPct:      make([]float64, len(o.PerClass)),
			TailDiffPct:      make([]float64, len(o.PerClass)),
			EnergyDiffPct:    stats.RelativeChange(baseline.EnergyJoules, o.EnergyJoules),
			ResourceWastePct: o.ResourceWastePct,
		}
		for k := range o.PerClass {
			if k < len(baseline.PerClass) {
				c.MeanDiffPct[k] = stats.RelativeChange(baseline.PerClass[k].MeanResponseSec, o.PerClass[k].MeanResponseSec)
				c.TailDiffPct[k] = stats.RelativeChange(baseline.PerClass[k].P95ResponseSec, o.PerClass[k].P95ResponseSec)
			}
		}
		out = append(out, c)
	}
	return out
}

// classLabel names classes the way the paper does (index = priority,
// higher = more important).
func classLabel(k, classes int) string {
	switch {
	case classes == 2:
		return [2]string{"Low", "High"}[k]
	case classes == 3:
		return [3]string{"Low", "Middle", "High"}[k]
	default:
		return fmt.Sprintf("Class%d", k)
	}
}

// FormatComparisonTable renders the baseline's absolute numbers and each
// scenario's relative differences, mirroring the layout of Figures 7-11.
func FormatComparisonTable(baseline ScenarioResult, others ...ScenarioResult) string {
	var b strings.Builder
	classes := len(baseline.PerClass)
	fmt.Fprintf(&b, "%-12s baseline (absolute response times, waste %.1f%%)\n", baseline.Name, baseline.ResourceWastePct)
	for k := classes - 1; k >= 0; k-- {
		cs := baseline.PerClass[k]
		fmt.Fprintf(&b, "  %-7s mean %9.2fs   p95 %9.2fs   (n=%d)\n",
			classLabel(k, classes), cs.MeanResponseSec, cs.P95ResponseSec, cs.Jobs)
	}
	for _, c := range Compare(baseline, others...) {
		fmt.Fprintf(&b, "%-12s vs %s (waste %.1f%%, energy %+.1f%%)\n", c.Name, baseline.Name, c.ResourceWastePct, c.EnergyDiffPct)
		for k := classes - 1; k >= 0; k-- {
			fmt.Fprintf(&b, "  %-7s mean %+8.1f%%   p95 %+8.1f%%\n",
				classLabel(k, classes), c.MeanDiffPct[k], c.TailDiffPct[k])
		}
	}
	return b.String()
}

// FormatDecompositionTable renders Table 2: mean queueing and execution
// times per class for a set of scenarios.
func FormatDecompositionTable(results ...ScenarioResult) string {
	var b strings.Builder
	b.WriteString("Policy        Class    Queue [s]    Exec [s]\n")
	for _, r := range results {
		for k := len(r.PerClass) - 1; k >= 0; k-- {
			cs := r.PerClass[k]
			fmt.Fprintf(&b, "%-13s %-7s %9.1f  %10.1f\n",
				r.Name, classLabel(k, len(r.PerClass)), cs.MeanQueueSec, cs.MeanExecSec)
		}
	}
	return b.String()
}
