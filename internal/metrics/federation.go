package metrics

import (
	"fmt"
	"strings"

	"dias/internal/core"
)

// ClusterResult is one member cluster's slice of a federation run.
type ClusterResult struct {
	// Name labels the member (federation.MemberSpec.Name).
	Name string
	// RoutedJobs is how many arrivals the dispatcher sent here.
	RoutedJobs int
	// PerClass aggregates the jobs this member completed (post-warmup).
	PerClass []ClassStats
	// EnergyJoules is this member's cluster energy over the run.
	EnergyJoules float64
	// ResourceWastePct is evicted machine time over all machine time on
	// this member, in percent.
	ResourceWastePct float64
	// UtilizationPct is busy slot-seconds over slot capacity x makespan,
	// the time-averaged busy share of this member.
	UtilizationPct float64
}

// FederationScenarioResult is one routing policy's outcome on a federated
// workload: the federation-wide rollup plus the per-cluster breakdown.
type FederationScenarioResult struct {
	// Name is the scenario label (e.g. "JSQ/4").
	Name string
	// Overall aggregates across every member: per-class stats over all
	// completions, summed energy, waste over summed machine time, and the
	// shared-clock makespan.
	Overall ScenarioResult
	// PerCluster breaks the run down by member, in member order.
	PerCluster []ClusterResult
}

// FederationAccumulator folds the completed-job records of a federation
// run into per-cluster and federation-wide statistics as they stream in
// (wire Add to federation.Config.OnRecord). Warmup is federation-wide:
// the first warmupFraction of the expected completions is skipped
// everywhere, so the per-cluster stats partition exactly the records the
// overall stats aggregate.
type FederationAccumulator struct {
	skip, seen int
	overall    *Accumulator
	perCluster []*Accumulator
}

// NewFederationAccumulator sizes an accumulator for a federation of the
// given member count and class count, expecting expectedRecords total
// completions.
func NewFederationAccumulator(clusters, classes, expectedRecords int, warmupFraction float64) *FederationAccumulator {
	a := &FederationAccumulator{
		skip:       int(float64(expectedRecords) * clampWarmup(warmupFraction)),
		overall:    NewAccumulator(classes, 0, 0),
		perCluster: make([]*Accumulator, clusters),
	}
	for i := range a.perCluster {
		a.perCluster[i] = NewAccumulator(classes, 0, 0)
	}
	return a
}

// NewBoundedFederationAccumulator is the strictly O(clusters × classes)
// variant for million-job streaming runs: every member and the overall
// rollup use NewBoundedAccumulator, so no per-job response samples are
// retained anywhere (P95, like P99, comes from the streaming log
// histogram; counts stay exact).
func NewBoundedFederationAccumulator(clusters, classes, expectedRecords int, warmupFraction float64) *FederationAccumulator {
	a := &FederationAccumulator{
		skip:       int(float64(expectedRecords) * clampWarmup(warmupFraction)),
		overall:    NewBoundedAccumulator(classes, 0, 0),
		perCluster: make([]*Accumulator, clusters),
	}
	for i := range a.perCluster {
		a.perCluster[i] = NewBoundedAccumulator(classes, 0, 0)
	}
	return a
}

// Add folds one completed-job record from the given member cluster.
// Records from out-of-range clusters are ignored, mirroring how
// Accumulator treats out-of-range classes.
func (a *FederationAccumulator) Add(cluster int, rec core.JobRecord) {
	a.seen++
	if a.seen <= a.skip || cluster < 0 || cluster >= len(a.perCluster) {
		return
	}
	a.overall.Add(rec)
	a.perCluster[cluster].Add(rec)
}

// Count returns the number of records seen so far (including warmup).
func (a *FederationAccumulator) Count() int { return a.seen }

// OverallClasses finalizes and returns the federation-wide per-class
// statistics.
func (a *FederationAccumulator) OverallClasses() []ClassStats { return a.overall.Classes() }

// ClusterClasses finalizes and returns one member's per-class statistics.
func (a *FederationAccumulator) ClusterClasses(i int) []ClassStats {
	return a.perCluster[i].Classes()
}

// Clusters returns the member count the accumulator was sized for.
func (a *FederationAccumulator) Clusters() int { return len(a.perCluster) }

// FormatFederationTable renders a federation scenario: the overall rollup
// line plus one line per member cluster.
func FormatFederationTable(r FederationScenarioResult) string {
	var b strings.Builder
	classes := len(r.Overall.PerClass)
	fmt.Fprintf(&b, "%-16s overall: energy %8.0f kJ  waste %4.1f%%  makespan %8.0fs\n",
		r.Name, r.Overall.EnergyJoules/1000, r.Overall.ResourceWastePct, r.Overall.MakespanSec)
	for k := classes - 1; k >= 0; k-- {
		cs := r.Overall.PerClass[k]
		fmt.Fprintf(&b, "  %-7s mean %9.2fs   p95 %9.2fs   (n=%d)\n",
			classLabel(k, classes), cs.MeanResponseSec, cs.P95ResponseSec, cs.Jobs)
	}
	for _, c := range r.PerCluster {
		fmt.Fprintf(&b, "  [%-4s] routed %5d  util %5.1f%%  energy %8.0f kJ",
			c.Name, c.RoutedJobs, c.UtilizationPct, c.EnergyJoules/1000)
		for k := len(c.PerClass) - 1; k >= 0; k-- {
			fmt.Fprintf(&b, "  %s mean %8.1fs", classLabel(k, len(c.PerClass)), c.PerClass[k].MeanResponseSec)
		}
		b.WriteString("\n")
	}
	return b.String()
}
