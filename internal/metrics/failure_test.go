package metrics

import (
	"strings"
	"testing"

	"dias/internal/core"
)

func TestAccumulatorSeparatesFailedJobs(t *testing.T) {
	rs := []core.JobRecord{
		{Class: 0, ResponseSec: 100, Retries: 1},
		{Class: 0, ResponseSec: 9999, Retries: 3, Failed: true},
		{Class: 0, ResponseSec: 200},
		{Class: 1, ResponseSec: 50, Failed: true},
	}
	cs := Aggregate(rs, 2, 0)
	if cs[0].Jobs != 2 || cs[0].FailedJobs != 1 {
		t.Fatalf("class0 jobs/failed = %d/%d, want 2/1", cs[0].Jobs, cs[0].FailedJobs)
	}
	// The failed job's 9999 s abort must not contaminate the mean.
	if cs[0].MeanResponseSec != 150 {
		t.Fatalf("class0 mean = %g, want 150", cs[0].MeanResponseSec)
	}
	// Retries count across completed and failed jobs.
	if cs[0].TaskRetries != 4 {
		t.Fatalf("class0 retries = %d, want 4", cs[0].TaskRetries)
	}
	if cs[1].Jobs != 0 || cs[1].FailedJobs != 1 {
		t.Fatalf("class1 jobs/failed = %d/%d, want 0/1", cs[1].Jobs, cs[1].FailedJobs)
	}
}

func TestFormatFaultTable(t *testing.T) {
	res := ScenarioResult{
		Name: "DiAS-churn",
		PerClass: []ClassStats{
			{Class: 0, Jobs: 90, MeanResponseSec: 120, P95ResponseSec: 300, FailedJobs: 2, TaskRetries: 11},
			{Class: 1, Jobs: 10, MeanResponseSec: 40, P95ResponseSec: 80},
		},
		FailureWastePct:  3.5,
		MeanPoweredNodes: 7.2,
	}
	out := FormatFaultTable(res)
	for _, want := range []string{"DiAS-churn", "Failed", "3.5%", "7.2", "11"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
