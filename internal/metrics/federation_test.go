package metrics

import (
	"strings"
	"testing"

	"dias/internal/core"
)

func fedRecord(class int, resp float64) core.JobRecord {
	return core.JobRecord{Class: class, ResponseSec: resp, ExecSec: resp / 2, QueueSec: resp / 2}
}

func TestFederationAccumulatorPartitionsRecords(t *testing.T) {
	// 20 expected records, 10% warmup: the first 2 are skipped everywhere.
	a := NewFederationAccumulator(2, 2, 20, 0.1)
	for i := 0; i < 20; i++ {
		a.Add(i%2, fedRecord(i%2, float64(10+i)))
	}
	if a.Count() != 20 {
		t.Fatalf("Count = %d", a.Count())
	}
	overall := a.OverallClasses()
	var overallJobs, clusterJobs int
	for _, cs := range overall {
		overallJobs += cs.Jobs
	}
	if overallJobs != 18 {
		t.Fatalf("overall kept %d jobs, want 18 (2 warmup skipped)", overallJobs)
	}
	for i := 0; i < a.Clusters(); i++ {
		for _, cs := range a.ClusterClasses(i) {
			clusterJobs += cs.Jobs
		}
	}
	if clusterJobs != overallJobs {
		t.Fatalf("per-cluster jobs %d != overall %d (partition property violated)", clusterJobs, overallJobs)
	}
	// Records alternate cluster==class, so each cluster holds exactly its
	// class's jobs.
	if got := a.ClusterClasses(0)[1].Jobs; got != 0 {
		t.Fatalf("cluster 0 claims %d class-1 jobs", got)
	}
}

func TestFederationAccumulatorIgnoresBadCluster(t *testing.T) {
	a := NewFederationAccumulator(2, 1, 10, 0)
	a.Add(-1, fedRecord(0, 1))
	a.Add(5, fedRecord(0, 1))
	a.Add(0, fedRecord(0, 1))
	var jobs int
	for _, cs := range a.OverallClasses() {
		jobs += cs.Jobs
	}
	if jobs != 1 {
		t.Fatalf("kept %d jobs, want 1", jobs)
	}
}

func TestFormatFederationTable(t *testing.T) {
	a := NewFederationAccumulator(2, 2, 4, 0)
	a.Add(0, fedRecord(0, 10))
	a.Add(0, fedRecord(1, 5))
	a.Add(1, fedRecord(0, 20))
	a.Add(1, fedRecord(1, 8))
	res := FederationScenarioResult{
		Name: "JSQ/2",
		Overall: ScenarioResult{
			Name: "JSQ/2", PerClass: a.OverallClasses(),
			EnergyJoules: 5e6, MakespanSec: 1000,
		},
		PerCluster: []ClusterResult{
			{Name: "a", RoutedJobs: 2, PerClass: a.ClusterClasses(0), EnergyJoules: 2e6, UtilizationPct: 40},
			{Name: "b", RoutedJobs: 2, PerClass: a.ClusterClasses(1), EnergyJoules: 3e6, UtilizationPct: 60},
		},
	}
	out := FormatFederationTable(res)
	for _, want := range []string{"JSQ/2", "overall", "[a", "[b", "routed", "util", "High", "Low"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}
