package engine

import (
	"math/rand"
	"testing"

	"dias/internal/simtime"
)

// TestExecutionReuseKeepsResultsIsolated guards the execution freelist:
// what escapes through a JobResult (Output, Stages) must stay intact
// while the pooled execution struct is reused for later submissions that
// rewrite its internal shuffle buckets and stage bookkeeping.
func TestExecutionReuseKeepsResultsIsolated(t *testing.T) {
	r := newRig(t, 4, flatCost(1))
	job := wordCountJob(makeInput(6, 4), 3)
	var results []JobResult
	runOne := func() {
		r.sim.At(r.sim.Now(), func() {
			if _, err := r.eng.Submit(job, SubmitOptions{
				OnComplete: func(res JobResult) { results = append(results, res) },
			}); err != nil {
				t.Errorf("submit: %v", err)
			}
		})
		r.sim.Run()
	}
	for i := 0; i < 4; i++ {
		runOne()
	}
	if len(results) != 4 {
		t.Fatalf("completed %d jobs, want 4", len(results))
	}
	first := results[0]
	for i, res := range results {
		if len(res.Output) != len(first.Output) {
			t.Fatalf("run %d output has %d records, run 0 had %d", i, len(res.Output), len(first.Output))
		}
		if len(res.Stages) != 2 || res.Stages[0].TasksExecuted != 6 {
			t.Fatalf("run %d stage stats corrupted: %+v", i, res.Stages)
		}
		counts := map[string]float64{}
		for _, rec := range res.Output {
			counts[rec.Key] = rec.Value.(float64)
		}
		for _, rec := range first.Output {
			if counts[rec.Key] != rec.Value.(float64) {
				t.Fatalf("run %d output diverged at %q: %v vs %v",
					i, rec.Key, counts[rec.Key], rec.Value)
			}
		}
	}
}

// TestExecutionReuseAcrossShapes reuses the pool across jobs of different
// stage counts and fan-outs, ensuring resized bookkeeping never leaks
// state between lives.
func TestExecutionReuseAcrossShapes(t *testing.T) {
	r := newRig(t, 4, flatCost(1))
	wide := wordCountJob(makeInput(8, 2), 6)
	narrow := &Job{
		Name:   "narrow",
		Input:  makeInput(3, 2),
		Stages: []Stage{{Kind: Result}},
	}
	done := 0
	submit := func(j *Job) {
		r.sim.At(r.sim.Now(), func() {
			if _, err := r.eng.Submit(j, SubmitOptions{
				OnComplete: func(res JobResult) {
					done++
					if res.Failed {
						t.Errorf("job %s failed: %s", res.Name, res.FailureReason)
					}
					if res.TasksExecuted != res.TasksTotal {
						t.Errorf("job %s executed %d of %d tasks with no dropping",
							res.Name, res.TasksExecuted, res.TasksTotal)
					}
				},
			}); err != nil {
				t.Errorf("submit %s: %v", j.Name, err)
			}
		})
		r.sim.Run()
	}
	for i := 0; i < 3; i++ {
		submit(wide)
		submit(narrow)
	}
	if done != 6 {
		t.Fatalf("completed %d jobs, want 6", done)
	}
}

// TestOrphanStageOutlivesResult pins the degenerate-DAG guard on the
// execution pool: a Validate-legal job whose ShuffleMap stage has no
// dependents can still have tasks in flight when the Result stage
// completes the job. Such an execution must not be recycled out from
// under them — the orphan tasks run out harmlessly, as before pooling.
func TestOrphanStageOutlivesResult(t *testing.T) {
	r := newRig(t, 4, flatCost(1))
	job := &Job{
		Name:  "orphan",
		Input: makeInput(2, 1),
		Stages: []Stage{
			// Orphan: no stage depends on it, and its per-record cost keeps
			// it running long after the Result stage is done.
			{Name: "orphan", Kind: ShuffleMap, OutPartitions: 2, PerRecordSec: 100},
			{Name: "out", Kind: Result},
		},
	}
	completions := 0
	submit := func() {
		r.sim.At(r.sim.Now(), func() {
			if _, err := r.eng.Submit(job, SubmitOptions{
				OnComplete: func(res JobResult) { completions++ },
			}); err != nil {
				t.Errorf("submit: %v", err)
			}
		})
	}
	// Two back-to-back submissions: if the first orphaned execution were
	// recycled while its slow stage still runs, the second submission
	// would land on corrupted state (or the orphan completion would
	// panic).
	submit()
	r.sim.Run()
	submit()
	r.sim.Run()
	if completions != 2 {
		t.Fatalf("completed %d jobs, want 2", completions)
	}
}

// TestFindMissingPartitionsEquivalence pins the scratch-buffer clone to
// the exported selection it replaces on the hot path: for any (seed, n,
// theta) both must consume the same RNG draws and select the same
// partitions, or figure outputs silently drift.
func TestFindMissingPartitionsEquivalence(t *testing.T) {
	r := newRig(t, 1, flatCost(1))
	metaRng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		seed := metaRng.Int63()
		n := metaRng.Intn(64)
		theta := metaRng.Float64()*1.6 - 0.3 // exercises both clamps
		exported := FindMissingPartitions(rand.New(rand.NewSource(seed)), n, theta)
		r.eng.rng = rand.New(rand.NewSource(seed))
		scratch := r.eng.findMissingPartitions(n, theta)
		if len(exported) != len(scratch) {
			t.Fatalf("seed=%d n=%d theta=%g: exported selected %d, scratch %d",
				seed, n, theta, len(exported), len(scratch))
		}
		for i := range exported {
			if exported[i] != scratch[i] {
				t.Fatalf("seed=%d n=%d theta=%g: selection diverges at %d: %v vs %v",
					seed, n, theta, i, exported, scratch)
			}
		}
		// Same draws consumed: the next value from both streams must match.
		want := rand.New(rand.NewSource(seed))
		FindMissingPartitions(want, n, theta)
		if got, wantNext := r.eng.rng.Int63(), want.Int63(); got != wantNext {
			t.Fatalf("seed=%d n=%d theta=%g: RNG streams diverged after selection", seed, n, theta)
		}
	}
}

// TestKillRecyclesExecution pins the eviction path: killing a job frees
// its pooled execution, stale setup events cannot resurrect it, and the
// next submission runs cleanly on the recycled struct.
func TestKillRecyclesExecution(t *testing.T) {
	r := newRig(t, 2, flatCost(1))
	job := wordCountJob(makeInput(4, 2), 2)
	var killed bool
	r.sim.At(0, func() {
		id, err := r.eng.Submit(job, SubmitOptions{})
		if err != nil {
			t.Errorf("submit: %v", err)
			return
		}
		// Kill during setup: the deferred startReadyStages event is still
		// pending and must be ignored after the id is retired.
		r.sim.At(simtime.Time(0.5), func() {
			if _, err := r.eng.Kill(id); err != nil {
				t.Errorf("kill: %v", err)
			}
			killed = true
		})
	})
	r.sim.Run()
	if !killed {
		t.Fatal("kill never ran")
	}
	completed := false
	r.sim.At(r.sim.Now(), func() {
		if _, err := r.eng.Submit(job, SubmitOptions{
			OnComplete: func(res JobResult) { completed = !res.Failed },
		}); err != nil {
			t.Errorf("resubmit: %v", err)
		}
	})
	r.sim.Run()
	if !completed {
		t.Fatal("recycled execution did not complete the follow-up job")
	}
	if r.eng.ActiveJobs() != 0 {
		t.Fatalf("%d jobs still active", r.eng.ActiveJobs())
	}
}
