package engine

import (
	"strings"
	"testing"
)

// scriptedFaults injects faults from a fixed table keyed by task
// coordinates: faults[stage][partition] lists the TaskFault per attempt
// (attempts beyond the list are healthy).
type scriptedFaults struct {
	faults map[[2]int][]TaskFault
	calls  int
}

func (s *scriptedFaults) TaskStarted(_ string, stage, partition, attempt int) TaskFault {
	s.calls++
	seq := s.faults[[2]int{stage, partition}]
	if attempt < len(seq) {
		return seq[attempt]
	}
	return TaskFault{}
}

// runToResult submits the job and drains the simulation, returning the
// final JobResult.
func runToResult(t *testing.T, rig *testRig, job *Job) JobResult {
	t.Helper()
	var res JobResult
	done := false
	_, err := rig.eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) {
		res = r
		done = true
	}})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	rig.sim.Run()
	if !done {
		t.Fatal("job did not complete")
	}
	return res
}

func TestInjectedFailureRetriesAndCompletes(t *testing.T) {
	rig := newRig(t, 2, flatCost(10))
	inj := &scriptedFaults{faults: map[[2]int][]TaskFault{
		{0, 0}: {{FailAfterFrac: 0.5}}, // first attempt dies halfway
	}}
	if err := rig.eng.SetTaskFaults(inj, 4); err != nil {
		t.Fatalf("SetTaskFaults: %v", err)
	}
	job := &Job{Name: "j", Input: makeInput(2, 0), Stages: []Stage{{Kind: Result}}}
	res := runToResult(t, rig, job)
	if res.Failed {
		t.Fatalf("job failed unexpectedly: %s", res.FailureReason)
	}
	if res.TaskRetries != 1 {
		t.Fatalf("TaskRetries = %d, want 1", res.TaskRetries)
	}
	// Partition 0 pays 5 s of doomed work plus a fresh 10 s attempt; with 2
	// slots both partitions start at t=0, so the makespan is 15 s.
	if got := rig.sim.Now().Seconds(); got != 15 {
		t.Fatalf("makespan = %g, want 15", got)
	}
	if got := rig.eng.FailureLostSlotSeconds(); got != 5 {
		t.Fatalf("FailureLostSlotSeconds = %g, want 5", got)
	}
	if got := rig.eng.TasksRetried(); got != 1 {
		t.Fatalf("TasksRetried = %d, want 1", got)
	}
	if rig.clu.FreeSlots() != 2 {
		t.Fatalf("slots leaked: free = %d", rig.clu.FreeSlots())
	}
}

func TestRetryExhaustionFailsJob(t *testing.T) {
	rig := newRig(t, 2, flatCost(10))
	inj := &scriptedFaults{faults: map[[2]int][]TaskFault{
		{0, 1}: {{FailAfterFrac: 0.5}, {FailAfterFrac: 0.5}, {FailAfterFrac: 0.5}},
	}}
	if err := rig.eng.SetTaskFaults(inj, 3); err != nil {
		t.Fatalf("SetTaskFaults: %v", err)
	}
	job := &Job{Name: "doomed", Input: makeInput(2, 0), Stages: []Stage{{Kind: Result}}}
	res := runToResult(t, rig, job)
	if !res.Failed {
		t.Fatal("job should have failed with retries exhausted")
	}
	if !strings.Contains(res.FailureReason, "3 attempts") {
		t.Fatalf("FailureReason = %q, want attempt count", res.FailureReason)
	}
	// Two aborted attempts were re-queued before the third exhausted the
	// budget.
	if res.TaskRetries != 2 {
		t.Fatalf("TaskRetries = %d, want 2", res.TaskRetries)
	}
	if len(res.Output) != 0 {
		t.Fatalf("failed job delivered %d output records", len(res.Output))
	}
	if got := rig.eng.FailedJobs(); got != 1 {
		t.Fatalf("FailedJobs = %d, want 1", got)
	}
	if rig.eng.ActiveJobs() != 0 {
		t.Fatalf("failed job still live: %d active", rig.eng.ActiveJobs())
	}
	if rig.clu.FreeSlots() != 2 {
		t.Fatalf("slots leaked: free = %d", rig.clu.FreeSlots())
	}
	// All machine time of the failed job is attributed to failures: the
	// healthy partition's 10 s plus 3 x 5 s doomed attempts.
	if got := rig.eng.FailureLostSlotSeconds(); got != 25 {
		t.Fatalf("FailureLostSlotSeconds = %g, want 25", got)
	}
}

func TestInjectedStragglerSlowsAttempt(t *testing.T) {
	rig := newRig(t, 2, flatCost(10))
	inj := &scriptedFaults{faults: map[[2]int][]TaskFault{
		{0, 0}: {{Slowdown: 3}},
	}}
	if err := rig.eng.SetTaskFaults(inj, 2); err != nil {
		t.Fatalf("SetTaskFaults: %v", err)
	}
	job := &Job{Name: "slow", Input: makeInput(2, 0), Stages: []Stage{{Kind: Result}}}
	res := runToResult(t, rig, job)
	if res.Failed || res.TaskRetries != 0 {
		t.Fatalf("unexpected failure state: failed=%v retries=%d", res.Failed, res.TaskRetries)
	}
	if got := rig.sim.Now().Seconds(); got != 30 {
		t.Fatalf("makespan = %g, want 30 (3x slowdown on one 10s task)", got)
	}
	// A straggler is slow work, not lost work.
	if got := rig.eng.FailureLostSlotSeconds(); got != 0 {
		t.Fatalf("FailureLostSlotSeconds = %g, want 0", got)
	}
}

func TestNodeCrashBumpsAttemptSeenByInjector(t *testing.T) {
	rig := newRig(t, 1, flatCost(10))
	inj := &scriptedFaults{faults: map[[2]int][]TaskFault{}}
	if err := rig.eng.SetTaskFaults(inj, 2); err != nil {
		t.Fatalf("SetTaskFaults: %v", err)
	}
	job := &Job{Name: "crashy", Input: makeInput(1, 0), Stages: []Stage{{Kind: Result}}}
	// Crash the only node mid-task, repair immediately: the retry must
	// complete even though the attempt budget is 2 and one attempt is gone.
	rig.sim.After(5, func() {
		if err := rig.eng.FailNode(0); err != nil {
			t.Errorf("FailNode: %v", err)
		}
		if err := rig.eng.RepairNode(0); err != nil {
			t.Errorf("RepairNode: %v", err)
		}
	})
	res := runToResult(t, rig, job)
	if res.Failed {
		t.Fatalf("node-crash retry must not exhaust the budget: %s", res.FailureReason)
	}
	if res.TaskRetries != 1 {
		t.Fatalf("TaskRetries = %d, want 1", res.TaskRetries)
	}
	// The injector saw attempt 0 then attempt 1.
	if inj.calls != 2 {
		t.Fatalf("injector calls = %d, want 2", inj.calls)
	}
}

func TestSetTaskFaultsValidation(t *testing.T) {
	rig := newRig(t, 1, flatCost(1))
	if err := rig.eng.SetTaskFaults(&scriptedFaults{}, 0); err == nil {
		t.Fatal("attempt budget 0 with an injector should fail")
	}
	if err := rig.eng.SetTaskFaults(nil, 0); err != nil {
		t.Fatalf("removing the injector should succeed: %v", err)
	}
}
