// Package engine implements the Spark-like dataflow processing engine the
// paper extends (§2.4, §3.3): jobs are DAGs of stages over partitioned
// datasets, each stage runs one task per partition, tasks execute on the
// cluster's computing slots in waves, and ShuffleMap stages hash their
// output into the next stage's input partitions.
//
// Task dropping is wired in exactly where the paper patches Spark: the
// scheduler asks FindMissingPartitions for the partitions of a stage to
// compute, and with a drop ratio θ only ⌈n(1-θ)⌉ of n are returned (§3.3,
// "Dropper"). Eviction (for the preemptive baseline) kills a job mid-
// flight and accounts the consumed machine time as waste.
//
// # Hot path
//
// Task dispatch is allocation-free in steady state. Task structs are
// pooled on an engine-wide freelist, each carrying a completion closure
// bound once at allocation; per-job pending queues are ring-buffer deques
// (no slice reallocation on push-front speculation backups or failure
// retries); DVFS speed changes reschedule in-flight completion events in
// place via simtime.RescheduleAfter instead of cancelling and re-closing
// them; and shuffle bucketing hashes keys with an inline FNV-1a.
//
// In-flight tasks are tracked per execution in a launch-ordered slice, so
// rescaling and speculation scans — and therefore whole simulations — are
// deterministic per seed with no map-iteration randomness.
//
// # Output memoization
//
// TaskFunc implementations must be pure, deterministic transforms. The
// engine exploits this: when the same *Job value is submitted more than
// once (experiment drivers re-execute fixed job templates for every
// arrival), the outputs of input-reading stages — whose task inputs are
// the template's own stable partitions — are computed once and served
// from a per-engine cache on every later execution. Simulated task
// durations are priced by the cost model from input sizes, so memoization
// changes no timing, only removes redundant host-CPU work.
package engine
