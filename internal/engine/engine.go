package engine

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"slices"

	"dias/internal/cluster"
	"dias/internal/dfs"
	"dias/internal/ring"
	"dias/internal/simtime"
	"dias/internal/telemetry"
)

// Record is one key-value datum flowing through a job.
type Record struct {
	Key   string
	Value any
}

// Partition is an ordered slice of records processed by a single task.
type Partition []Record

// Dataset is a partitioned collection, the RDD analogue.
type Dataset []Partition

// Records returns the total record count.
func (d Dataset) Records() int {
	var n int
	for _, p := range d {
		n += len(p)
	}
	return n
}

// StageKind distinguishes shuffle-producing stages from the final stage.
type StageKind int

const (
	// ShuffleMap stages hash their task outputs into OutPartitions buckets
	// consumed by dependent stages.
	ShuffleMap StageKind = iota + 1
	// Result stages deliver their task outputs to the driver.
	Result
)

// TaskFunc transforms one input partition into output records. It must be
// a pure, deterministic function of its input: it must not mutate the
// input slice, and it must not retain or later mutate the returned slice.
// The engine relies on this to memoize input-reading stage outputs when
// the same *Job value is submitted repeatedly (simulated re-executions of
// a job template), and to alias shuffle outputs as downstream inputs
// without defensive copying.
type TaskFunc func(in []Record) []Record

// Stage describes one synchronization stage of a job.
type Stage struct {
	// Name labels the stage in diagnostics.
	Name string
	// Kind is ShuffleMap or Result.
	Kind StageKind
	// Deps lists parent stage indices. Stage 0 (no deps) reads the job
	// input; dependent stages read the co-partitioned shuffle output of
	// all parents.
	Deps []int
	// Compute transforms a task's input records; nil is the identity.
	Compute TaskFunc
	// OutPartitions is the shuffle fan-out of a ShuffleMap stage.
	OutPartitions int
	// PerRecordSec overrides CostModel.PerRecordSec for this stage's tasks
	// when positive (map parsing and reduce aggregation cost differently).
	PerRecordSec float64
}

// JobID identifies a submitted job within an Engine.
type JobID uint64

// Job is a runnable DAG over an input dataset.
type Job struct {
	// Name labels the job in diagnostics.
	Name string
	// Priority is the job's class (higher = more important); the engine
	// does not act on it, the DiAS core does.
	Priority int
	// Input is the partitioned input of stage 0; one task per partition.
	Input Dataset
	// InputPath optionally names a dfs file whose i-th block backs input
	// partition i; executed stage-0 tasks then pay the block fetch time,
	// dropped ones do not.
	InputPath string
	// Stages in topological order (Deps reference lower indices only).
	// Exactly one stage must be a Result stage, and it must be last.
	Stages []Stage
	// SizeBytes is the logical input size used by cost and setup models.
	SizeBytes int64
}

// Validate checks the DAG shape.
func (j *Job) Validate() error {
	if len(j.Stages) == 0 {
		return errors.New("engine: job has no stages")
	}
	for i, s := range j.Stages {
		for _, d := range s.Deps {
			if d < 0 || d >= i {
				return fmt.Errorf("engine: stage %d depends on %d (must be a lower index)", i, d)
			}
			if j.Stages[d].Kind != ShuffleMap {
				return fmt.Errorf("engine: stage %d depends on non-ShuffleMap stage %d", i, d)
			}
		}
		switch s.Kind {
		case ShuffleMap:
			if s.OutPartitions <= 0 {
				return fmt.Errorf("engine: ShuffleMap stage %d has %d out partitions", i, s.OutPartitions)
			}
			if i == len(j.Stages)-1 {
				return errors.New("engine: last stage must be a Result stage")
			}
		case Result:
			if i != len(j.Stages)-1 {
				return fmt.Errorf("engine: Result stage %d is not last", i)
			}
		default:
			return fmt.Errorf("engine: stage %d has unknown kind %d", i, s.Kind)
		}
		if len(s.Deps) > 1 {
			b := j.Stages[s.Deps[0]].OutPartitions
			for _, d := range s.Deps[1:] {
				if j.Stages[d].OutPartitions != b {
					return fmt.Errorf("engine: stage %d parents disagree on partitions (%d vs %d)",
						i, b, j.Stages[d].OutPartitions)
				}
			}
		}
	}
	if len(j.Input) == 0 {
		return errors.New("engine: job has no input partitions")
	}
	return nil
}

// CostModel converts work into virtual task durations (at speed 1).
type CostModel struct {
	// TaskOverheadSec is the fixed scheduling/launch cost per task.
	TaskOverheadSec float64
	// PerRecordSec is the compute cost per input record.
	PerRecordSec float64
	// SetupBaseSec + SetupPerByte*effectiveBytes is the job's initial setup
	// (the paper's overhead stage O, observed to depend on data size §4.3).
	SetupBaseSec float64
	SetupPerByte float64
	// ShuffleBaseSec + ShufflePerRecordSec*records is the serial shuffle
	// stage S between a ShuffleMap stage and its dependents.
	ShuffleBaseSec      float64
	ShufflePerRecordSec float64
	// NoiseSigma is the lognormal σ applied to each task duration; zero
	// disables noise.
	NoiseSigma float64
}

// DefaultCostModel gives tasks on the order of a few seconds for a few
// thousand records, yielding paper-scale (~100 s) jobs for 50-partition
// inputs at base frequency.
func DefaultCostModel() CostModel {
	return CostModel{
		TaskOverheadSec:     0.3,
		PerRecordSec:        0.002,
		SetupBaseSec:        4.0,
		SetupPerByte:        4e-9,
		ShuffleBaseSec:      1.0,
		ShufflePerRecordSec: 2e-5,
		NoiseSigma:          0.08,
	}
}

// FindMissingPartitions mirrors Spark's scheduler hook of the same name
// (§3.3): given n partitions and a drop ratio theta it returns the indices
// to actually compute, ⌈n(1-θ)⌉ of them chosen uniformly at random.
func FindMissingPartitions(rng *rand.Rand, n int, theta float64) []int {
	if theta < 0 {
		theta = 0
	}
	if theta > 1 {
		theta = 1
	}
	keep := int(math.Ceil(float64(n) * (1 - theta)))
	if keep > n {
		keep = n
	}
	idx := rng.Perm(n)[:keep]
	// Keep deterministic per-rng but sorted for wave-order stability.
	sortInts(idx)
	return idx
}

// findMissingPartitions is FindMissingPartitions on the engine's scratch
// buffer: the RNG draw sequence and the selected set are bit-identical to
// the rand.Perm-based selection, without the per-stage permutation
// allocation. The returned slice aliases the scratch and is only valid
// until the next call.
func (e *Engine) findMissingPartitions(n int, theta float64) []int {
	if theta < 0 {
		theta = 0
	}
	if theta > 1 {
		theta = 1
	}
	keep := int(math.Ceil(float64(n) * (1 - theta)))
	if keep > n {
		keep = n
	}
	perm := growSlice(e.permScratch, n)
	e.permScratch = perm
	// rand.Perm's exact inside-out shuffle — including the redundant i=0
	// draw it keeps for Go 1 stream compatibility — so the Intn sequence
	// and the selected set are bit-identical, on a reused buffer. (Stale
	// scratch contents are harmless: iteration i reads only slots already
	// written this call before overwriting slot i.)
	for i := 0; i < n; i++ {
		j := e.rng.Intn(i + 1)
		perm[i] = perm[j]
		perm[j] = i
	}
	selected := perm[:keep]
	sortInts(selected)
	return selected
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Attempt summarises one execution attempt of a job (a completed run or an
// evicted one).
type Attempt struct {
	StartedAt     simtime.Time
	EndedAt       simtime.Time
	SlotSeconds   float64 // machine time consumed by this attempt
	TasksLaunched int
	Evicted       bool
}

// StageStat is the per-stage profiling record exposed with each result,
// the analogue of the task metrics the paper's profiling runs read from
// Spark (§4.3).
type StageStat struct {
	Name          string
	Kind          StageKind
	TasksExecuted int
	TasksDropped  int
	// MeanTaskSec is the mean wall duration of executed tasks.
	MeanTaskSec float64
	// StartedAt/EndedAt bound the stage (EndedAt excludes the trailing
	// shuffle delay).
	StartedAt simtime.Time
	EndedAt   simtime.Time
}

// Waves returns how many waves the stage needed on a cluster with the
// given slot count.
func (s StageStat) Waves(slots int) int {
	if slots <= 0 || s.TasksExecuted == 0 {
		return 0
	}
	return (s.TasksExecuted + slots - 1) / slots
}

// JobResult is delivered to the submitter when a job completes.
type JobResult struct {
	JobID  JobID
	Name   string
	Output []Record // concatenated Result-stage output
	// Stages holds per-stage profiling stats, indexed like Job.Stages.
	Stages []StageStat
	// StartedAt/FinishedAt bound the final (successful) attempt.
	StartedAt  simtime.Time
	FinishedAt simtime.Time
	// SlotSeconds is machine time consumed by the successful attempt.
	SlotSeconds float64
	// TasksTotal counts tasks before dropping; TasksExecuted after.
	TasksTotal    int
	TasksExecuted int
	TasksDropped  int
	// EffectiveDropRatio aggregates dropping across stages:
	// 1 - executed/total.
	EffectiveDropRatio float64
	// TaskRetries counts task attempts aborted by failures (injected or
	// node crashes) and re-executed during this job.
	TaskRetries int
	// Failed reports a job aborted by the fault injector: a task exhausted
	// its attempt budget. FailureReason says which. A failed job delivers
	// no Output.
	Failed        bool
	FailureReason string
}

// SubmitOptions configures one submission.
type SubmitOptions struct {
	// DropRatios holds θ per stage (missing/short entries mean 0).
	DropRatios []float64
	// OnComplete is invoked in simulation context when the job finishes.
	OnComplete func(JobResult)
	// Span, when non-zero, tags this submission's telemetry: stage and
	// task events the engine emits carry it, joining the execution to the
	// submitter's job lifecycle span.
	Span telemetry.SpanID
}

// task is one unit of schedulable work. Tasks are pooled on the engine's
// freelist: each struct carries a completion closure bound once at
// allocation and reused across all its simulated lives, so steady-state
// dispatch performs no closure or task allocation.
type task struct {
	exec      *execution
	stage     int
	partition int
	input     []Record

	// speculative marks a backup copy of a straggling task; twin links the
	// two copies of the same partition.
	speculative bool
	twin        *task

	// attempt counts prior aborted attempts of this task (injected
	// failures and node crashes); willFail marks an attempt the fault
	// injector doomed, so its completion event aborts it instead.
	attempt  int
	willFail bool

	// completeFn is the pre-bound e.completeTask(t) callback handed to the
	// simulation for every (re)scheduling of this task struct.
	completeFn func()

	// Execution state while running.
	slot          *cluster.Slot
	remainingWork float64 // seconds at speed 1
	startedAt     simtime.Time
	lastUpdate    simtime.Time
	event         simtime.EventID
	running       bool
	runIdx        int // index in exec.running while running
}

// execution is the engine-internal state of one job attempt.
type execution struct {
	id   JobID
	job  *Job
	opts SubmitOptions

	startedAt simtime.Time
	// outputs[s] is the shuffle output of stage s, bucketed.
	outputs []Dataset
	// resultOut accumulates Result-stage task outputs.
	resultOut []Record
	// pendingTasks[s] counts unfinished tasks of stage s.
	pendingTasks []int
	stageStarted []bool
	stageDone    []bool

	slotSeconds float64
	// failureLostSec is the share of slotSeconds destroyed by failures
	// (aborted attempts), so a failing job can charge only the remainder.
	failureLostSec float64
	// retries counts aborted task attempts (injected failures and node
	// crashes) that were re-queued for this job.
	retries       int
	tasksTotal    int
	tasksExecuted int
	tasksDropped  int
	launched      int
	stageStats    []StageStat
	stageTaskSecs []float64 // summed wall task durations per stage
	// stageDurations collects winner task durations for straggler
	// detection; donePartitions[s][p] dedupes speculative twins (sized per
	// stage at start, reused across lives).
	stageDurations  [][]float64
	donePartitions  [][]bool
	specLaunched    int
	pending         ring.Deque[*task] // this job's runnable tasks, FIFO
	inputBlockCache []dfs.Block

	// running lists in-flight tasks in launch order (compacted by
	// swap-remove); a deterministic replacement for the old map, so DVFS
	// rescaling and speculation scans are reproducible per seed.
	running []*task
	// memoize marks a re-submitted job template whose input-reading stage
	// outputs may be served from the engine's memo cache.
	memoize bool
	done    bool
	evicted bool
}

// SpeculationConfig enables Spark-style speculative execution: when a
// stage is mostly done, tasks running far beyond the median duration get a
// backup copy; the first finisher wins and the loser is cancelled.
type SpeculationConfig struct {
	// Enabled turns speculation on.
	Enabled bool
	// Multiplier is the straggler threshold relative to the median task
	// duration of the stage (Spark default: 1.5).
	Multiplier float64
	// MinCompleted is the number of completed tasks in the stage required
	// before speculating (avoids speculating on the first wave).
	MinCompleted int
}

func (c SpeculationConfig) validate() error {
	if !c.Enabled {
		return nil
	}
	if c.Multiplier <= 1 {
		return fmt.Errorf("engine: speculation multiplier %g must exceed 1", c.Multiplier)
	}
	if c.MinCompleted < 1 {
		return fmt.Errorf("engine: speculation min completed %d", c.MinCompleted)
	}
	return nil
}

// Engine schedules jobs onto a cluster.
type Engine struct {
	sim  *simtime.Simulation
	clu  *cluster.Cluster
	fs   *dfs.FS // may be nil: no fetch costs
	cost CostModel
	rng  *rand.Rand

	nextID JobID
	execs  map[JobID]*execution
	// execOrder lists live executions in submission order; task dispatch
	// walks it FIFO, or round-robin under fair sharing.
	execOrder []*execution
	fairShare bool
	spec      SpeculationConfig

	// taskFree recycles task structs (and their pre-bound completion
	// closures) across executions; execFree recycles execution structs and
	// their per-stage bookkeeping slices (shuffle buckets, durations,
	// done-partition sets) the same way, so steady-state job churn
	// performs no per-submission slice or map allocation beyond what
	// escapes in the JobResult.
	taskFree []*task
	execFree []*execution
	// permScratch backs the drop-selection permutation; abortScratch backs
	// FailNode's per-node abort sweep.
	permScratch  []int
	abortScratch []*task
	// jobSeen tracks submitted job templates; a second submission of the
	// same *Job enables output memoization for its input-reading stages.
	// Entries are deliberately never evicted (a template may be
	// re-submitted arbitrarily long after it last completed), so an
	// engine retains one pointer-sized entry per distinct job over its
	// lifetime; experiment drivers pre-schedule every arrival's job
	// anyway, so this adds no meaningful peak memory to a run.
	jobSeen map[*Job]bool
	// memo caches pure stage outputs per (template, stage, partition);
	// populated only for jobs actually re-submitted, so its size is
	// bounded by the re-used templates, not by total submissions.
	memo map[memoKey][]Record

	wastedSlotSeconds    float64
	completedJobs        int
	evictions            int
	speculativeLaunched  int
	speculativeDiscarded int

	tasksRetried           int
	failureLostSlotSeconds float64

	// taskFaults, when non-nil, is consulted at every attempt launch;
	// maxTaskAttempts bounds injected-failure retries per task (an
	// injected failure at or beyond the budget fails the whole job).
	taskFaults      TaskFaultInjector
	maxTaskAttempts int
	failedJobs      int

	// tracer, when non-nil, receives stage, task-retry, straggler and node
	// telemetry; every emission is nil-guarded so the pooled churn paths
	// stay allocation-free with tracing off.
	tracer telemetry.Tracer
}

// SetTracer installs the telemetry tracer (nil disables). Per-job events
// carry the SubmitOptions.Span of their execution.
func (e *Engine) SetTracer(tr telemetry.Tracer) { e.tracer = tr }

// New builds an engine bound to a simulation and cluster. fs may be nil
// when input fetch times are irrelevant.
func New(sim *simtime.Simulation, clu *cluster.Cluster, fs *dfs.FS, cost CostModel, seed int64) (*Engine, error) {
	if sim == nil || clu == nil {
		return nil, errors.New("engine: nil simulation or cluster")
	}
	e := &Engine{
		sim:     sim,
		clu:     clu,
		fs:      fs,
		cost:    cost,
		rng:     rand.New(rand.NewSource(seed)),
		execs:   make(map[JobID]*execution),
		jobSeen: make(map[*Job]bool),
		memo:    make(map[memoKey][]Record),
	}
	clu.OnSpeedChange(e.rescaleRunning)
	return e, nil
}

// memoKey addresses one cached stage output: the partition of an
// input-reading stage of a job template.
type memoKey struct {
	job       *Job
	stage     int32
	partition int32
}

// newTask takes a task struct off the freelist (or allocates one with its
// completion closure bound) and initializes it for one unit of work.
func (e *Engine) newTask(ex *execution, stage, partition int, input []Record) *task {
	var t *task
	if n := len(e.taskFree); n > 0 {
		t = e.taskFree[n-1]
		e.taskFree[n-1] = nil
		e.taskFree = e.taskFree[:n-1]
	} else {
		t = &task{}
		t.completeFn = func() { e.completeTask(t) }
	}
	t.exec, t.stage, t.partition, t.input = ex, stage, partition, input
	return t
}

// freeTask clears a finished or discarded task and returns it to the
// freelist. Callers must have dropped every reference to it first.
func (e *Engine) freeTask(t *task) {
	fn := t.completeFn
	*t = task{completeFn: fn}
	e.taskFree = append(e.taskFree, t)
}

// newExecution takes an execution off the freelist (or allocates one) and
// initializes it for one submission. Per-stage bookkeeping slices are
// reused from the struct's previous life; only what escapes through the
// JobResult (Stages, and the Output accumulated later) is allocated
// fresh.
func (e *Engine) newExecution(job *Job, opts SubmitOptions) *execution {
	var ex *execution
	if n := len(e.execFree); n > 0 {
		ex = e.execFree[n-1]
		e.execFree[n-1] = nil
		e.execFree = e.execFree[:n-1]
	} else {
		ex = &execution{}
	}
	e.nextID++
	ns := len(job.Stages)
	ex.id = e.nextID
	ex.job, ex.opts = job, opts
	ex.startedAt = e.sim.Now()
	ex.outputs = growSlice(ex.outputs, ns)
	ex.pendingTasks = resetSlice(ex.pendingTasks, ns)
	ex.stageStarted = resetSlice(ex.stageStarted, ns)
	ex.stageDone = resetSlice(ex.stageDone, ns)
	ex.stageStats = make([]StageStat, ns) // escapes via JobResult.Stages
	ex.stageTaskSecs = resetSlice(ex.stageTaskSecs, ns)
	ex.stageDurations = growSlice(ex.stageDurations, ns)
	for si := range ex.stageDurations {
		ex.stageDurations[si] = ex.stageDurations[si][:0]
	}
	ex.donePartitions = growSlice(ex.donePartitions, ns)
	ex.running = ex.running[:0]
	ex.slotSeconds, ex.failureLostSec = 0, 0
	ex.retries, ex.tasksTotal, ex.tasksExecuted, ex.tasksDropped = 0, 0, 0, 0
	ex.launched, ex.specLaunched = 0, 0
	ex.memoize, ex.done, ex.evicted = false, false, false
	return ex
}

// freeExecution returns a finished execution to the freelist. The
// reusable per-stage slices stay attached; everything that escaped
// through the JobResult is dropped.
func (e *Engine) freeExecution(ex *execution) {
	ex.job = nil
	ex.opts = SubmitOptions{}
	ex.resultOut = nil  // escaped as JobResult.Output
	ex.stageStats = nil // escaped as JobResult.Stages
	ex.inputBlockCache = nil
	e.execFree = append(e.execFree, ex)
}

// growSlice returns s resized to length n, reusing its capacity;
// surviving elements keep their previous-life contents (callers reset
// them per use).
func growSlice[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// resetSlice returns s resized to length n with every element zeroed.
func resetSlice[T int | bool | float64](s []T, n int) []T {
	s = growSlice(s, n)
	clear(s)
	return s
}

// addRunning registers t as in-flight on its execution.
func addRunning(t *task) {
	ex := t.exec
	t.runIdx = len(ex.running)
	ex.running = append(ex.running, t)
}

// removeRunning unregisters t by swap-remove, keeping sibling indices
// consistent.
func removeRunning(t *task) {
	ex := t.exec
	last := len(ex.running) - 1
	moved := ex.running[last]
	ex.running[t.runIdx] = moved
	moved.runIdx = t.runIdx
	ex.running[last] = nil
	ex.running = ex.running[:last]
}

// Cluster returns the compute substrate this engine schedules onto
// (read-mostly: fault and capacity controllers size their plans from it).
func (e *Engine) Cluster() *cluster.Cluster { return e.clu }

// SetFairSharing switches task dispatch between submission-order FIFO
// (default, Spark's FIFO scheduler) and round-robin across live jobs
// (Spark's FAIR scheduler, §2.4).
func (e *Engine) SetFairSharing(on bool) { e.fairShare = on }

// SetSpeculation configures speculative execution of stragglers.
func (e *Engine) SetSpeculation(cfg SpeculationConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	e.spec = cfg
	return nil
}

// SpeculativeLaunched returns the number of backup task copies started.
func (e *Engine) SpeculativeLaunched() int { return e.speculativeLaunched }

// SpeculativeDiscarded returns backup or original copies whose twin won.
func (e *Engine) SpeculativeDiscarded() int { return e.speculativeDiscarded }

// ActiveJobs returns the number of jobs currently executing.
func (e *Engine) ActiveJobs() int { return len(e.execs) }

// CompletedJobs returns the number of successfully completed jobs.
func (e *Engine) CompletedJobs() int { return e.completedJobs }

// Evictions returns the number of Kill calls that evicted live jobs.
func (e *Engine) Evictions() int { return e.evictions }

// WastedSlotSeconds returns machine time consumed by attempts that were
// later evicted (the paper's resource-waste numerator).
func (e *Engine) WastedSlotSeconds() float64 { return e.wastedSlotSeconds }

// Submit starts executing a job. The returned JobID can be passed to Kill.
func (e *Engine) Submit(job *Job, opts SubmitOptions) (JobID, error) {
	if err := job.Validate(); err != nil {
		return 0, err
	}
	for _, th := range opts.DropRatios {
		if th < 0 || th > 1 {
			return 0, fmt.Errorf("engine: drop ratio %g out of [0,1]", th)
		}
	}
	ex := e.newExecution(job, opts)
	if e.jobSeen[job] {
		// The template was executed before on this engine: its pure
		// input-reading stage outputs can be served from the memo cache.
		ex.memoize = true
	} else {
		e.jobSeen[job] = true
	}
	for si, st := range job.Stages {
		ex.stageStats[si].Name = st.Name
		ex.stageStats[si].Kind = st.Kind
	}
	if job.InputPath != "" && e.fs != nil {
		if blocks, err := e.fs.Blocks(job.InputPath); err == nil {
			ex.inputBlockCache = blocks
		}
	}
	e.execOrder = append(e.execOrder, ex)
	e.execs[ex.id] = ex
	// Job setup (overhead stage O). Setup time shrinks with stage-0 drop,
	// matching the paper's observation that overhead depends on data size.
	theta0 := ex.drop(0)
	setup := e.cost.SetupBaseSec + e.cost.SetupPerByte*float64(job.SizeBytes)*(1-theta0)
	id := ex.id
	e.sim.After(simtime.Duration(setup/e.clu.Speed()), func() {
		// The job may have been evicted during setup.
		if cur, ok := e.execs[id]; ok && cur == ex {
			e.startReadyStages(ex)
		}
	})
	return ex.id, nil
}

func (ex *execution) drop(stage int) float64 {
	if stage < len(ex.opts.DropRatios) {
		return ex.opts.DropRatios[stage]
	}
	return 0
}

// startReadyStages launches every not-yet-started stage whose parents are
// all done.
func (e *Engine) startReadyStages(ex *execution) {
	for si := range ex.job.Stages {
		if ex.stageStarted[si] {
			continue
		}
		ready := true
		for _, d := range ex.job.Stages[si].Deps {
			if !ex.stageDone[d] {
				ready = false
				break
			}
		}
		if ready {
			e.startStage(ex, si)
		}
	}
}

// stageInput materialises the input partitions of a stage. Single-parent
// stages alias the parent's shuffle output directly (tasks never mutate
// their inputs); only multi-parent stages concatenate into fresh buckets.
func (ex *execution) stageInput(si int) Dataset {
	s := ex.job.Stages[si]
	switch len(s.Deps) {
	case 0:
		return ex.job.Input
	case 1:
		return ex.outputs[s.Deps[0]]
	}
	buckets := ex.job.Stages[s.Deps[0]].OutPartitions
	in := make(Dataset, buckets)
	for _, d := range s.Deps {
		for b, part := range ex.outputs[d] {
			in[b] = append(in[b], part...)
		}
	}
	return in
}

func (e *Engine) startStage(ex *execution, si int) {
	ex.stageStarted[si] = true
	ex.stageStats[si].StartedAt = e.sim.Now()
	in := ex.stageInput(si)
	n := len(in)
	ex.tasksTotal += n
	selected := e.findMissingPartitions(n, ex.drop(si))
	ex.tasksDropped += n - len(selected)
	ex.stageStats[si].TasksDropped = n - len(selected)
	if e.tracer != nil && ex.opts.Span != 0 {
		e.tracer.StageStarted(e.sim.Now(), ex.opts.Span, si, ex.job.Stages[si].Name, len(selected), n-len(selected))
	}
	ex.pendingTasks[si] = len(selected)
	ex.donePartitions[si] = resetSlice(ex.donePartitions[si], n)
	if s := ex.job.Stages[si]; s.Kind == ShuffleMap {
		// Reuse the previous life's bucket slices: truncated in place when
		// the fan-out fits, reallocated (dropping the old buckets) when not.
		buckets := ex.outputs[si]
		if cap(buckets) >= s.OutPartitions {
			buckets = buckets[:s.OutPartitions]
			for b := range buckets {
				buckets[b] = buckets[b][:0]
			}
		} else {
			buckets = make(Dataset, s.OutPartitions)
		}
		ex.outputs[si] = buckets
	}
	if len(selected) == 0 {
		e.finishStage(ex, si)
		return
	}
	for _, p := range selected {
		ex.pending.PushBack(e.newTask(ex, si, p, in[p]))
	}
	e.dispatch()
}

// nextExec picks the execution to serve next: first-with-work in
// submission order (FIFO), or — under fair sharing, like Spark's FAIR
// scheduler — the job currently holding the fewest slots, ties broken by
// submission order.
func (e *Engine) nextExec() *execution {
	if !e.fairShare {
		for _, ex := range e.execOrder {
			if ex.pending.Len() > 0 {
				return ex
			}
		}
		return nil
	}
	var best *execution
	for _, ex := range e.execOrder {
		if ex.pending.Len() == 0 {
			continue
		}
		if best == nil || len(ex.running) < len(best.running) {
			best = ex
		}
	}
	return best
}

// acquireFor picks a slot for t, preferring nodes holding the task's
// input block (data locality) and falling back to any free slot (the
// remote read is priced by taskWork).
func (e *Engine) acquireFor(t *task) (*cluster.Slot, bool) {
	if t.stage == 0 && e.fs != nil && t.partition < len(t.exec.inputBlockCache) {
		b := t.exec.inputBlockCache[t.partition]
		if s, ok := e.clu.AcquireMatching(func(node int) bool { return e.fs.IsLocal(b, node) }); ok {
			return s, true
		}
	}
	return e.clu.Acquire()
}

// dispatch starts queued tasks while slots are free.
func (e *Engine) dispatch() {
	for {
		ex := e.nextExec()
		if ex == nil {
			return
		}
		t := ex.pending.Front()
		slot, ok := e.acquireFor(t)
		if !ok {
			return
		}
		ex.pending.PopFront()
		e.startTask(t, slot)
	}
}

// taskWork returns the task's duration in seconds at speed 1.
func (e *Engine) taskWork(t *task) float64 {
	perRecord := e.cost.PerRecordSec
	if s := t.exec.job.Stages[t.stage].PerRecordSec; s > 0 {
		perRecord = s
	}
	work := e.cost.TaskOverheadSec + perRecord*float64(len(t.input))
	// Stage-0 tasks backed by a dfs file pay the block fetch, priced by
	// the locality of the slot they landed on.
	if t.stage == 0 && e.fs != nil && t.partition < len(t.exec.inputBlockCache) {
		work += e.fs.ReadTime(t.exec.inputBlockCache[t.partition], t.slot.Node).Seconds()
	}
	if e.cost.NoiseSigma > 0 {
		work *= math.Exp(e.cost.NoiseSigma * e.rng.NormFloat64())
	}
	return work
}

func (e *Engine) startTask(t *task, slot *cluster.Slot) {
	t.slot = slot
	t.running = true
	t.startedAt = e.sim.Now()
	t.lastUpdate = e.sim.Now()
	work := e.taskWork(t)
	if e.taskFaults != nil {
		f := e.taskFaults.TaskStarted(t.exec.job.Name, t.stage, t.partition, t.attempt)
		if f.Slowdown > 1 {
			work *= f.Slowdown // injected straggler
			if e.tracer != nil && t.exec.opts.Span != 0 {
				e.tracer.TaskStraggled(e.sim.Now(), t.exec.opts.Span, t.stage, t.partition, f.Slowdown)
			}
		}
		if f.FailAfterFrac > 0 {
			// The attempt runs only to its failure point; the rest of the
			// work never happens because the attempt restarts from scratch.
			frac := min(f.FailAfterFrac, 1)
			work *= frac
			t.willFail = true
		}
	}
	t.remainingWork = work
	t.exec.launched++
	addRunning(t)
	d := simtime.Duration(t.remainingWork / e.clu.Speed())
	t.event = e.sim.After(d, t.completeFn)
}

// rescaleRunning reacts to DVFS speed changes: consumed work is credited at
// the old speed and the completion event is rescheduled in place at the
// new one (no cancel/re-schedule churn, no fresh closures). Executions and
// their running tasks are walked in deterministic launch order.
func (e *Engine) rescaleRunning(oldSpeed, newSpeed float64) {
	now := e.sim.Now()
	for _, ex := range e.execOrder {
		for _, t := range ex.running {
			elapsed := now.Sub(t.lastUpdate).Seconds()
			t.remainingWork -= elapsed * oldSpeed
			if t.remainingWork < 0 {
				t.remainingWork = 0
			}
			ex.slotSeconds += elapsed // wall occupancy of the finished segment
			t.lastUpdate = now
			e.sim.RescheduleAfter(t.event, simtime.Duration(t.remainingWork/newSpeed))
		}
	}
}

func (e *Engine) completeTask(t *task) {
	if t.willFail {
		e.failTask(t)
		return
	}
	ex := t.exec
	now := e.sim.Now()
	// Wall occupancy since the last rescale point; earlier segments were
	// accrued in rescaleRunning when lastUpdate advanced.
	ex.slotSeconds += now.Sub(t.lastUpdate).Seconds()
	t.running = false
	removeRunning(t)
	e.clu.Release(t.slot)

	// A speculative twin may already have delivered this partition; the
	// loser's work is discarded (its occupancy was still real).
	if ex.donePartitions[t.stage][t.partition] {
		e.speculativeDiscarded++
		if t.twin != nil {
			t.twin.twin = nil
		}
		e.freeTask(t)
		e.dispatch()
		return
	}
	ex.donePartitions[t.stage][t.partition] = true
	e.cancelTwin(t)

	duration := now.Sub(t.startedAt).Seconds()
	ex.tasksExecuted++
	ex.stageStats[t.stage].TasksExecuted++
	ex.stageTaskSecs[t.stage] += duration
	ex.stageDurations[t.stage] = append(ex.stageDurations[t.stage], duration)

	s := &ex.job.Stages[t.stage]
	var out []Record
	switch {
	case s.Compute == nil:
		out = t.input
	case ex.memoize && len(s.Deps) == 0:
		// Re-executed template, input-reading stage: the partition's input
		// is the template's own (stable) data, so the pure Compute output
		// can be cached across executions.
		k := memoKey{job: ex.job, stage: int32(t.stage), partition: int32(t.partition)}
		cached, ok := e.memo[k]
		if !ok {
			cached = s.Compute(t.input)
			e.memo[k] = cached
		}
		out = cached
	default:
		out = s.Compute(t.input)
	}
	switch s.Kind {
	case ShuffleMap:
		buckets := ex.outputs[t.stage]
		for _, r := range out {
			b := bucketOf(r.Key, len(buckets))
			buckets[b] = append(buckets[b], r)
		}
	case Result:
		ex.resultOut = append(ex.resultOut, out...)
	}

	stage := t.stage
	e.freeTask(t)
	ex.pendingTasks[stage]--
	if ex.pendingTasks[stage] == 0 {
		e.finishStage(ex, stage)
	} else if e.spec.Enabled {
		e.maybeSpeculate(ex, stage)
	}
	e.dispatch()
}

// failTask aborts an attempt the fault injector doomed: the machine time
// it consumed is lost to the failure, and the task retries from scratch
// unless its attempt budget is exhausted, which fails the whole job.
func (e *Engine) failTask(t *task) {
	ex := t.exec
	now := e.sim.Now()
	ex.slotSeconds += now.Sub(t.lastUpdate).Seconds()
	lost := now.Sub(t.startedAt).Seconds()
	e.failureLostSlotSeconds += lost
	ex.failureLostSec += lost
	t.running = false
	t.willFail = false
	removeRunning(t)
	e.clu.Release(t.slot)
	t.slot = nil
	t.remainingWork = 0
	// A speculative twin is already chasing this partition: the failed
	// copy simply dies and the twin remains the retry.
	if t.twin != nil {
		t.twin.twin = nil
		t.twin = nil
		e.speculativeDiscarded++
		e.freeTask(t)
		e.dispatch()
		return
	}
	t.attempt++
	if e.maxTaskAttempts > 0 && t.attempt >= e.maxTaskAttempts {
		stage, part, attempts := t.stage, t.partition, t.attempt
		e.freeTask(t)
		e.failJob(ex, fmt.Sprintf("stage %d partition %d failed %d attempts", stage, part, attempts))
		e.dispatch()
		return
	}
	ex.retries++
	e.tasksRetried++
	if e.tracer != nil && ex.opts.Span != 0 {
		e.tracer.TaskRetried(now, ex.opts.Span, t.stage, t.partition, t.attempt)
	}
	ex.pending.PushFront(t)
	e.dispatch()
}

// failJob aborts a live job and reports it failed: running tasks stop
// (their machine time becomes failure loss, as does the work its finished
// tasks had banked), queued tasks are discarded, and the submitter's
// OnComplete receives a JobResult with Failed set.
func (e *Engine) failJob(ex *execution, reason string) {
	if ex.done {
		// The job already completed: a Validate-legal orphan ShuffleMap
		// stage (no dependents) outlived the Result stage and one of its
		// doomed attempts exhausted the budget. The attempt itself was
		// cleaned up in failTask; reporting the finished job failed — or
		// running this teardown twice — would corrupt the submitter.
		return
	}
	now := e.sim.Now()
	for _, t := range ex.running {
		e.sim.Cancel(t.event)
		ex.slotSeconds += now.Sub(t.lastUpdate).Seconds()
		lost := now.Sub(t.startedAt).Seconds()
		e.failureLostSlotSeconds += lost
		ex.failureLostSec += lost
		e.clu.Release(t.slot)
		t.running = false
		t.twin = nil
		e.freeTask(t)
	}
	clear(ex.running)
	ex.running = ex.running[:0] // keep the capacity for the pooled next life
	for ex.pending.Len() > 0 {
		t := ex.pending.PopFront()
		t.twin = nil
		e.freeTask(t)
	}
	// Everything the attempt consumed is wasted; charge the share not
	// already booked by aborted attempts to the failure as well.
	if rest := ex.slotSeconds - ex.failureLostSec; rest > 0 {
		e.failureLostSlotSeconds += rest
	}
	ex.done = true
	delete(e.execs, ex.id)
	e.removeFromOrder(ex)
	e.failedJobs++
	res := JobResult{
		JobID:         ex.id,
		Name:          ex.job.Name,
		Stages:        ex.stageStats,
		StartedAt:     ex.startedAt,
		FinishedAt:    now,
		SlotSeconds:   ex.slotSeconds,
		TasksTotal:    ex.tasksTotal,
		TasksExecuted: ex.tasksExecuted,
		TasksDropped:  ex.tasksDropped,
		TaskRetries:   ex.retries,
		Failed:        true,
		FailureReason: reason,
	}
	if ex.tasksTotal > 0 {
		res.EffectiveDropRatio = 1 - float64(ex.tasksExecuted)/float64(ex.tasksTotal)
	}
	if ex.opts.OnComplete != nil {
		ex.opts.OnComplete(res)
	}
	e.freeExecution(ex)
}

// cancelTwin aborts the other copy of a just-finished partition, whether
// running or still queued, and recycles its task struct.
func (e *Engine) cancelTwin(t *task) {
	twin := t.twin
	if twin == nil {
		return
	}
	t.twin = nil
	twin.twin = nil
	ex := t.exec
	if twin.running {
		e.sim.Cancel(twin.event)
		ex.slotSeconds += e.sim.Now().Sub(twin.lastUpdate).Seconds()
		twin.running = false
		removeRunning(twin)
		e.clu.Release(twin.slot)
		e.speculativeDiscarded++
		e.freeTask(twin)
		return
	}
	for i := 0; i < ex.pending.Len(); i++ {
		if ex.pending.At(i) == twin {
			ex.pending.Remove(i)
			e.speculativeDiscarded++
			e.freeTask(twin)
			return
		}
	}
}

// maybeSpeculate launches backup copies for stragglers of a stage: running
// tasks whose elapsed time exceeds Multiplier x the median completed
// duration, once MinCompleted tasks of the stage have finished.
func (e *Engine) maybeSpeculate(ex *execution, stage int) {
	durs := ex.stageDurations[stage]
	if len(durs) < e.spec.MinCompleted {
		return
	}
	med := median(durs)
	if med <= 0 {
		return
	}
	threshold := e.spec.Multiplier * med
	now := e.sim.Now()
	for _, t := range ex.running {
		if t.stage != stage || t.twin != nil || t.speculative {
			continue
		}
		if now.Sub(t.startedAt).Seconds() <= threshold {
			continue
		}
		backup := e.newTask(ex, stage, t.partition, t.input)
		backup.speculative = true
		backup.twin = t
		t.twin = backup
		// Backups jump the queue: they chase an already-late partition.
		ex.pending.PushFront(backup)
		e.speculativeLaunched++
	}
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sortFloats(cp)
	return cp[len(cp)/2]
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// finishStage fires the serial shuffle delay (stage S of the §4 model) and
// then unblocks dependent stages, or completes the job after the Result
// stage.
func (e *Engine) finishStage(ex *execution, si int) {
	if e.tracer != nil && ex.opts.Span != 0 {
		e.tracer.StageEnded(e.sim.Now(), ex.opts.Span, si)
	}
	ex.stageStats[si].EndedAt = e.sim.Now()
	if n := ex.stageStats[si].TasksExecuted; n > 0 {
		ex.stageStats[si].MeanTaskSec = ex.stageTaskSecs[si] / float64(n)
	}
	s := ex.job.Stages[si]
	if s.Kind == Result {
		ex.stageDone[si] = true
		e.completeJob(ex)
		return
	}
	shuffled := ex.outputs[si].Records()
	delay := e.cost.ShuffleBaseSec + e.cost.ShufflePerRecordSec*float64(shuffled)
	id := ex.id
	e.sim.After(simtime.Duration(delay/e.clu.Speed()), func() {
		if cur, ok := e.execs[id]; ok && cur == ex {
			ex.stageDone[si] = true
			e.startReadyStages(ex)
		}
	})
}

func (e *Engine) completeJob(ex *execution) {
	ex.done = true
	delete(e.execs, ex.id)
	e.removeFromOrder(ex)
	e.completedJobs++
	res := JobResult{
		JobID:         ex.id,
		Name:          ex.job.Name,
		Output:        ex.resultOut,
		Stages:        ex.stageStats,
		StartedAt:     ex.startedAt,
		FinishedAt:    e.sim.Now(),
		SlotSeconds:   ex.slotSeconds,
		TasksTotal:    ex.tasksTotal,
		TasksExecuted: ex.tasksExecuted,
		TasksDropped:  ex.tasksDropped,
		TaskRetries:   ex.retries,
	}
	if ex.tasksTotal > 0 {
		res.EffectiveDropRatio = 1 - float64(ex.tasksExecuted)/float64(ex.tasksTotal)
	}
	if ex.opts.OnComplete != nil {
		ex.opts.OnComplete(res)
	}
	// Recycle only after OnComplete ran: a completion hook may submit the
	// next job synchronously, and that submission must not land on this
	// still-live struct. Stale setup/shuffle events cannot resurrect it
	// (their guards look the old JobID up in e.execs, and IDs are never
	// reused) — but in-flight tasks hold direct execution pointers with
	// unguarded completion events, so a Validate-legal degenerate DAG
	// whose orphan ShuffleMap stage (no dependents) outlives the Result
	// stage must not be pooled; it is abandoned to the GC as before
	// pooling.
	if len(ex.running) == 0 && ex.pending.Len() == 0 {
		e.freeExecution(ex)
	}
}

// Kill evicts a live job: queued tasks are discarded, running tasks are
// aborted (their consumed time becomes waste) and the attempt is returned.
// It fails if the job is not live.
func (e *Engine) Kill(id JobID) (Attempt, error) {
	ex, ok := e.execs[id]
	if !ok {
		return Attempt{}, fmt.Errorf("engine: kill job %d: not running", id)
	}
	now := e.sim.Now()
	// Abort running tasks; credit partial occupancy.
	for _, t := range ex.running {
		e.sim.Cancel(t.event)
		ex.slotSeconds += now.Sub(t.lastUpdate).Seconds()
		e.clu.Release(t.slot)
		t.running = false
		t.twin = nil
		e.freeTask(t)
	}
	clear(ex.running)
	ex.running = ex.running[:0] // keep the capacity for the pooled next life
	// Discard this job's queued tasks.
	for ex.pending.Len() > 0 {
		t := ex.pending.PopFront()
		t.twin = nil
		e.freeTask(t)
	}
	delete(e.execs, ex.id)
	e.removeFromOrder(ex)
	ex.evicted = true
	e.evictions++
	e.wastedSlotSeconds += ex.slotSeconds
	att := Attempt{
		StartedAt:     ex.startedAt,
		EndedAt:       now,
		SlotSeconds:   ex.slotSeconds,
		TasksLaunched: ex.launched,
		Evicted:       true,
	}
	e.freeExecution(ex)
	e.dispatch() // freed slots may admit other jobs' tasks
	return att, nil
}

// FailNode takes a worker node offline. Running tasks on its slots are
// aborted and re-queued at the front of their job's pending list for
// re-execution (Spark's task retry); the machine time they had consumed is
// lost and accounted in FailureLostSlotSeconds. Shuffle outputs survive
// failures: the simulated engine stores them driver-side, the analogue of
// Spark with a replicated external shuffle service, so only in-flight task
// work is re-executed.
func (e *Engine) FailNode(node int) error {
	if err := e.clu.FailNode(node); err != nil {
		return err
	}
	if e.tracer != nil {
		e.tracer.NodeEvent(e.sim.Now(), telemetry.KindNodeFail, node)
	}
	now := e.sim.Now()
	for _, ex := range e.execOrder {
		aborted := e.abortScratch[:0]
		for _, t := range ex.running {
			if t.slot.Node == node {
				aborted = append(aborted, t)
			}
		}
		// Re-queue in (stage, partition) order rather than launch order so
		// retry order is stable regardless of how the tasks were dispatched.
		// The comparator is a total order (twins differ in speculative), so
		// the sort is deterministic.
		slices.SortFunc(aborted, func(a, b *task) int {
			if a.stage != b.stage {
				return a.stage - b.stage
			}
			if a.partition != b.partition {
				return a.partition - b.partition
			}
			switch {
			case a.speculative == b.speculative:
				return 0
			case b.speculative:
				return -1
			default:
				return 1
			}
		})
		for _, t := range aborted {
			e.sim.Cancel(t.event)
			ex.slotSeconds += now.Sub(t.lastUpdate).Seconds()
			lost := now.Sub(t.startedAt).Seconds()
			e.failureLostSlotSeconds += lost
			ex.failureLostSec += lost
			t.running = false
			removeRunning(t)
			e.clu.Release(t.slot) // node is down: slot stays out of the pool
			t.slot = nil
			t.remainingWork = 0
			// The retry re-queries the fault injector with a bumped attempt
			// count, but node crashes never exhaust the attempt budget.
			t.attempt++
			t.willFail = false
			ex.pending.PushFront(t)
			ex.retries++
			e.tasksRetried++
			if e.tracer != nil && ex.opts.Span != 0 {
				e.tracer.TaskRetried(now, ex.opts.Span, t.stage, t.partition, t.attempt)
			}
		}
		// Keep the (possibly regrown) scratch for the next execution and
		// the next failure, dropping the task references.
		clear(aborted)
		e.abortScratch = aborted[:0]
	}
	// Remaining capacity may still admit the re-queued tasks.
	e.dispatch()
	return nil
}

// RepairNode brings a failed node back and dispatches onto its slots.
func (e *Engine) RepairNode(node int) error {
	if err := e.clu.RepairNode(node); err != nil {
		return err
	}
	if e.tracer != nil {
		e.tracer.NodeEvent(e.sim.Now(), telemetry.KindNodeRepair, node)
	}
	e.dispatch()
	return nil
}

// DecommissionNode removes a node from service for elastic scale-in. No
// task is aborted: running tasks drain gracefully and the node powers off
// when the last one releases (see cluster.Decommission).
func (e *Engine) DecommissionNode(node int) error {
	if err := e.clu.Decommission(node); err != nil {
		return err
	}
	if e.tracer != nil {
		e.tracer.NodeEvent(e.sim.Now(), telemetry.KindNodeDecommission, node)
	}
	return nil
}

// CommissionNode returns a decommissioned node to service and dispatches
// queued tasks onto its slots.
func (e *Engine) CommissionNode(node int) error {
	if err := e.clu.Commission(node); err != nil {
		return err
	}
	if e.tracer != nil {
		e.tracer.NodeEvent(e.sim.Now(), telemetry.KindNodeCommission, node)
	}
	e.dispatch()
	return nil
}

// TasksRetried returns how many task attempts were aborted by node
// failures and re-queued.
func (e *Engine) TasksRetried() int { return e.tasksRetried }

// FailureLostSlotSeconds returns machine time consumed by task attempts
// that node failures destroyed.
func (e *Engine) FailureLostSlotSeconds() float64 { return e.failureLostSlotSeconds }

// removeFromOrder drops an execution from the dispatch rotation.
func (e *Engine) removeFromOrder(ex *execution) {
	for i, cur := range e.execOrder {
		if cur == ex {
			e.execOrder = append(e.execOrder[:i], e.execOrder[i+1:]...)
			return
		}
	}
}

// bucketOf hashes a shuffle key into one of n buckets with inline FNV-1a
// (bit-identical to hash/fnv's 32-bit variant, without the hasher and
// byte-slice allocations the stdlib path pays per record).
func bucketOf(key string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}
