package engine

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"dias/internal/cluster"
	"dias/internal/simtime"
)

// testRig bundles a simulation, cluster and engine with a noise-free cost
// model so durations are exactly predictable.
type testRig struct {
	sim *simtime.Simulation
	clu *cluster.Cluster
	eng *Engine
}

func newRig(t *testing.T, slots int, cost CostModel) *testRig {
	t.Helper()
	sim := simtime.New()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = slots
	cfg.CoresPerNode = 1
	clu, err := cluster.New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sim, clu, nil, cost, 1)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{sim: sim, clu: clu, eng: eng}
}

// flatCost gives every task exactly taskSec seconds and removes all
// overheads, noise and shuffle costs.
func flatCost(taskSec float64) CostModel {
	return CostModel{TaskOverheadSec: taskSec}
}

// makeInput builds n partitions of m records each with distinct keys.
func makeInput(n, m int) Dataset {
	d := make(Dataset, n)
	for i := range d {
		for j := 0; j < m; j++ {
			d[i] = append(d[i], Record{Key: "k" + strconv.Itoa(i*m+j), Value: 1.0})
		}
	}
	return d
}

// wordCountJob builds the canonical 2-stage job: map emits (word,count),
// reduce sums per word.
func wordCountJob(input Dataset, reducers int) *Job {
	return &Job{
		Name:  "wordcount",
		Input: input,
		Stages: []Stage{
			{
				Name: "map", Kind: ShuffleMap, OutPartitions: reducers,
				Compute: func(in []Record) []Record {
					counts := map[string]float64{}
					for _, r := range in {
						counts[r.Key] += r.Value.(float64)
					}
					out := make([]Record, 0, len(counts))
					for k, v := range counts {
						out = append(out, Record{Key: k, Value: v})
					}
					return out
				},
			},
			{
				Name: "reduce", Kind: Result, Deps: []int{0},
				Compute: func(in []Record) []Record {
					counts := map[string]float64{}
					for _, r := range in {
						counts[r.Key] += r.Value.(float64)
					}
					out := make([]Record, 0, len(counts))
					for k, v := range counts {
						out = append(out, Record{Key: k, Value: v})
					}
					return out
				},
			},
		},
	}
}

func TestValidate(t *testing.T) {
	valid := wordCountJob(makeInput(2, 2), 2)
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Job)
	}{
		{"no stages", func(j *Job) { j.Stages = nil }},
		{"no input", func(j *Job) { j.Input = nil }},
		{"forward dep", func(j *Job) { j.Stages[0].Deps = []int{1} }},
		{"self dep", func(j *Job) { j.Stages[1].Deps = []int{1} }},
		{"result not last", func(j *Job) { j.Stages[0].Kind = Result }},
		{"last is shufflemap", func(j *Job) {
			j.Stages[1].Kind = ShuffleMap
			j.Stages[1].OutPartitions = 2
		}},
		{"shufflemap without partitions", func(j *Job) { j.Stages[0].OutPartitions = 0 }},
	}
	for _, c := range cases {
		j := wordCountJob(makeInput(2, 2), 2)
		c.mutate(j)
		if err := j.Validate(); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestWordCountCorrectness(t *testing.T) {
	rig := newRig(t, 4, flatCost(1))
	// Two partitions both containing the same word keys.
	input := Dataset{
		{{Key: "a", Value: 1.0}, {Key: "b", Value: 1.0}, {Key: "a", Value: 1.0}},
		{{Key: "a", Value: 1.0}, {Key: "c", Value: 1.0}},
	}
	job := wordCountJob(input, 3)
	var got []Record
	if _, err := rig.eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) { got = r.Output }}); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	counts := map[string]float64{}
	for _, r := range got {
		counts[r.Key] = r.Value.(float64)
	}
	want := map[string]float64{"a": 3, "b": 1, "c": 1}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	for k, v := range want {
		if counts[k] != v {
			t.Fatalf("counts[%s] = %g, want %g", k, counts[k], v)
		}
	}
}

func TestWaveMakespan(t *testing.T) {
	// 40 unit tasks on 20 slots must finish in exactly 2 waves.
	rig := newRig(t, 20, flatCost(10))
	input := makeInput(40, 0)
	job := &Job{
		Name:  "waves",
		Input: input,
		Stages: []Stage{
			{Name: "only", Kind: Result},
		},
	}
	var finished simtime.Time
	if _, err := rig.eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) { finished = r.FinishedAt }}); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	if math.Abs(finished.Seconds()-20) > 1e-9 {
		t.Fatalf("makespan = %v, want 20 (2 waves of 10s)", finished)
	}
}

func TestDropReducesTasks(t *testing.T) {
	rig := newRig(t, 10, flatCost(1))
	job := wordCountJob(makeInput(50, 1), 10)
	var res JobResult
	_, err := rig.eng.Submit(job, SubmitOptions{
		DropRatios: []float64{0.2}, // drop 20% of the 50 map tasks
		OnComplete: func(r JobResult) { res = r },
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	// ⌈50·0.8⌉ = 40 map tasks + 10 reduce tasks.
	if res.TasksExecuted != 50 {
		t.Fatalf("executed = %d, want 50", res.TasksExecuted)
	}
	if res.TasksDropped != 10 {
		t.Fatalf("dropped = %d, want 10", res.TasksDropped)
	}
	if res.TasksTotal != 60 {
		t.Fatalf("total = %d, want 60", res.TasksTotal)
	}
	if math.Abs(res.EffectiveDropRatio-10.0/60) > 1e-12 {
		t.Fatalf("effective drop = %g", res.EffectiveDropRatio)
	}
}

func TestDropRatioValidation(t *testing.T) {
	rig := newRig(t, 2, flatCost(1))
	job := wordCountJob(makeInput(2, 1), 1)
	if _, err := rig.eng.Submit(job, SubmitOptions{DropRatios: []float64{1.5}}); err == nil {
		t.Fatal("accepted drop ratio > 1")
	}
	if _, err := rig.eng.Submit(job, SubmitOptions{DropRatios: []float64{-0.1}}); err == nil {
		t.Fatal("accepted negative drop ratio")
	}
}

func TestKillAccountsWaste(t *testing.T) {
	rig := newRig(t, 2, flatCost(10))
	job := wordCountJob(makeInput(4, 1), 2)
	id, err := rig.eng.Submit(job, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rig.sim.RunUntil(5) // two tasks are mid-flight (t in [0,10))
	att, err := rig.eng.Kill(id)
	if err != nil {
		t.Fatal(err)
	}
	if !att.Evicted {
		t.Fatal("attempt not marked evicted")
	}
	// Two slots busy for 5 s each = 10 slot-seconds wasted.
	if math.Abs(att.SlotSeconds-10) > 1e-9 {
		t.Fatalf("attempt slot-seconds = %g, want 10", att.SlotSeconds)
	}
	if math.Abs(rig.eng.WastedSlotSeconds()-10) > 1e-9 {
		t.Fatalf("wasted = %g, want 10", rig.eng.WastedSlotSeconds())
	}
	if rig.clu.FreeSlots() != 2 {
		t.Fatalf("free slots = %d after kill, want 2", rig.clu.FreeSlots())
	}
	if rig.eng.Evictions() != 1 {
		t.Fatalf("evictions = %d", rig.eng.Evictions())
	}
	// The job never completes.
	rig.sim.Run()
	if rig.eng.CompletedJobs() != 0 {
		t.Fatal("killed job completed")
	}
	// Killing again fails.
	if _, err := rig.eng.Kill(id); err == nil {
		t.Fatal("second kill succeeded")
	}
}

func TestKillDuringSetup(t *testing.T) {
	cost := flatCost(1)
	cost.SetupBaseSec = 100
	rig := newRig(t, 2, cost)
	job := wordCountJob(makeInput(2, 1), 1)
	id, err := rig.eng.Submit(job, SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rig.sim.RunUntil(50)
	if _, err := rig.eng.Kill(id); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	if rig.eng.CompletedJobs() != 0 {
		t.Fatal("job killed during setup still completed")
	}
	if rig.clu.FreeSlots() != 2 {
		t.Fatal("slots leaked")
	}
}

func TestSprintRescalesRunningTask(t *testing.T) {
	rig := newRig(t, 1, flatCost(10))
	job := &Job{
		Name:   "single",
		Input:  makeInput(1, 0),
		Stages: []Stage{{Name: "r", Kind: Result}},
	}
	var finished simtime.Time
	if _, err := rig.eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) { finished = r.FinishedAt }}); err != nil {
		t.Fatal(err)
	}
	// Sprint (speedup 2.5) at t=5: remaining 5 s of work takes 2 s.
	rig.sim.At(5, func() { rig.clu.SetSprinting(true) })
	rig.sim.Run()
	if math.Abs(finished.Seconds()-7) > 1e-9 {
		t.Fatalf("finished at %v, want 7", finished)
	}
}

func TestSprintOnOffMidTask(t *testing.T) {
	rig := newRig(t, 1, flatCost(10))
	job := &Job{Name: "single", Input: makeInput(1, 0), Stages: []Stage{{Kind: Result}}}
	var finished simtime.Time
	if _, err := rig.eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) { finished = r.FinishedAt }}); err != nil {
		t.Fatal(err)
	}
	// Sprint during [2,4]: work done = 2 + 2*2.5 = 7, remaining 3 at speed 1.
	rig.sim.At(2, func() { rig.clu.SetSprinting(true) })
	rig.sim.At(4, func() { rig.clu.SetSprinting(false) })
	rig.sim.Run()
	if math.Abs(finished.Seconds()-7) > 1e-9 {
		t.Fatalf("finished at %v, want 7", finished)
	}
}

func TestSlotSecondsUnderSprint(t *testing.T) {
	// Slot occupancy is wall time, not speed-scaled work.
	rig := newRig(t, 1, flatCost(10))
	job := &Job{Name: "single", Input: makeInput(1, 0), Stages: []Stage{{Kind: Result}}}
	var res JobResult
	if _, err := rig.eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) { res = r }}); err != nil {
		t.Fatal(err)
	}
	rig.sim.At(5, func() { rig.clu.SetSprinting(true) })
	rig.sim.Run()
	if math.Abs(res.SlotSeconds-7) > 1e-9 {
		t.Fatalf("slot-seconds = %g, want 7 (wall time)", res.SlotSeconds)
	}
}

func TestMultiStageChain(t *testing.T) {
	// Three ShuffleMap stages then Result; identity computes. All records
	// must survive the full chain.
	rig := newRig(t, 4, flatCost(1))
	input := makeInput(8, 3)
	job := &Job{
		Name:  "chain",
		Input: input,
		Stages: []Stage{
			{Name: "s0", Kind: ShuffleMap, OutPartitions: 4},
			{Name: "s1", Kind: ShuffleMap, OutPartitions: 4, Deps: []int{0}},
			{Name: "s2", Kind: ShuffleMap, OutPartitions: 2, Deps: []int{1}},
			{Name: "res", Kind: Result, Deps: []int{2}},
		},
	}
	var out []Record
	if _, err := rig.eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) { out = r.Output }}); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	if len(out) != 24 {
		t.Fatalf("output records = %d, want 24", len(out))
	}
}

func TestDiamondDAG(t *testing.T) {
	// Two parents feeding one child: outputs are co-partitioned and merged.
	rig := newRig(t, 4, flatCost(1))
	input := makeInput(4, 2)
	tag := func(label string) TaskFunc {
		return func(in []Record) []Record {
			out := make([]Record, len(in))
			for i, r := range in {
				out[i] = Record{Key: r.Key, Value: label}
			}
			return out
		}
	}
	job := &Job{
		Name:  "diamond",
		Input: input,
		Stages: []Stage{
			{Name: "left", Kind: ShuffleMap, OutPartitions: 3, Compute: tag("L")},
			{Name: "right", Kind: ShuffleMap, OutPartitions: 3, Compute: tag("R")},
			{Name: "join", Kind: Result, Deps: []int{0, 1}},
		},
	}
	var out []Record
	if _, err := rig.eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) { out = r.Output }}); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	var l, r int
	for _, rec := range out {
		switch rec.Value.(string) {
		case "L":
			l++
		case "R":
			r++
		}
	}
	if l != 8 || r != 8 {
		t.Fatalf("L=%d R=%d, want 8/8", l, r)
	}
}

func TestShuffleBucketsByKey(t *testing.T) {
	// All records with the same key must land in the same reduce partition:
	// a reduce task computing per-key totals must see each key fully.
	rig := newRig(t, 4, flatCost(1))
	input := Dataset{
		{{Key: "x", Value: 1.0}, {Key: "y", Value: 1.0}},
		{{Key: "x", Value: 1.0}, {Key: "z", Value: 1.0}},
		{{Key: "y", Value: 1.0}, {Key: "x", Value: 1.0}},
	}
	job := wordCountJob(input, 2)
	var out []Record
	if _, err := rig.eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) { out = r.Output }}); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	counts := map[string]float64{}
	for _, r := range out {
		counts[r.Key] += r.Value.(float64)
	}
	if counts["x"] != 3 || counts["y"] != 2 || counts["z"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	// Per-key totals must appear exactly once (no key split across buckets).
	seen := map[string]int{}
	for _, r := range out {
		seen[r.Key]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %s appears in %d reduce outputs", k, n)
		}
	}
}

func TestConcurrentJobsShareSlots(t *testing.T) {
	rig := newRig(t, 2, flatCost(10))
	jobA := &Job{Name: "a", Input: makeInput(2, 0), Stages: []Stage{{Kind: Result}}}
	jobB := &Job{Name: "b", Input: makeInput(2, 0), Stages: []Stage{{Kind: Result}}}
	var done int
	opts := SubmitOptions{OnComplete: func(JobResult) { done++ }}
	if _, err := rig.eng.Submit(jobA, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.eng.Submit(jobB, opts); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	if done != 2 {
		t.Fatalf("completed %d jobs, want 2", done)
	}
	// 4 tasks of 10 s on 2 slots: makespan 20 s.
	if got := rig.sim.Now().Seconds(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("makespan = %g, want 20", got)
	}
}

func TestStageStats(t *testing.T) {
	cost := flatCost(2)
	cost.ShuffleBaseSec = 3
	cost.SetupBaseSec = 5
	rig := newRig(t, 20, cost)
	job := wordCountJob(makeInput(40, 1), 10)
	var res JobResult
	if _, err := rig.eng.Submit(job, SubmitOptions{
		DropRatios: []float64{0.5},
		OnComplete: func(r JobResult) { res = r },
	}); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	if len(res.Stages) != 2 {
		t.Fatalf("%d stage stats", len(res.Stages))
	}
	m := res.Stages[0]
	if m.TasksExecuted != 20 || m.TasksDropped != 20 {
		t.Fatalf("map stage %d executed / %d dropped", m.TasksExecuted, m.TasksDropped)
	}
	// Setup is 5 s; 20 tasks on 20 slots = one 2 s wave.
	if math.Abs(m.StartedAt.Seconds()-5) > 1e-9 || math.Abs(m.EndedAt.Seconds()-7) > 1e-9 {
		t.Fatalf("map stage window [%v, %v], want [5, 7]", m.StartedAt, m.EndedAt)
	}
	if math.Abs(m.MeanTaskSec-2) > 1e-9 {
		t.Fatalf("mean task = %g, want 2", m.MeanTaskSec)
	}
	if m.Waves(20) != 1 {
		t.Fatalf("waves = %d, want 1", m.Waves(20))
	}
	r := res.Stages[1]
	// Reduce starts after the 3 s shuffle delay.
	if math.Abs(r.StartedAt.Seconds()-10) > 1e-9 {
		t.Fatalf("reduce started at %v, want 10", r.StartedAt)
	}
	if r.TasksExecuted != 10 || r.TasksDropped != 0 {
		t.Fatalf("reduce stage %d executed / %d dropped", r.TasksExecuted, r.TasksDropped)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() simtime.Time {
		sim := simtime.New()
		cfg := cluster.DefaultConfig()
		clu, err := cluster.New(sim, cfg)
		if err != nil {
			t.Fatal(err)
		}
		cost := DefaultCostModel()
		eng, err := New(sim, clu, nil, cost, 42)
		if err != nil {
			t.Fatal(err)
		}
		job := wordCountJob(makeInput(30, 5), 10)
		var finished simtime.Time
		if _, err := eng.Submit(job, SubmitOptions{
			DropRatios: []float64{0.3},
			OnComplete: func(r JobResult) { finished = r.FinishedAt },
		}); err != nil {
			t.Fatal(err)
		}
		sim.Run()
		return finished
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different makespans: %v vs %v", a, b)
	}
}

func TestFindMissingPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		n     int
		theta float64
		want  int
	}{
		{50, 0, 50}, {50, 0.2, 40}, {50, 0.9, 5}, {3, 0.5, 2}, {1, 0.9, 1}, {10, 1, 0},
		{10, -0.5, 10}, {10, 2, 0},
	}
	for _, c := range cases {
		got := FindMissingPartitions(rng, c.n, c.theta)
		if len(got) != c.want {
			t.Fatalf("FindMissingPartitions(%d, %g) kept %d, want %d", c.n, c.theta, len(got), c.want)
		}
		seen := map[int]bool{}
		last := -1
		for _, i := range got {
			if i < 0 || i >= c.n || seen[i] {
				t.Fatalf("invalid selection %v", got)
			}
			if i <= last {
				t.Fatalf("selection not sorted: %v", got)
			}
			seen[i] = true
			last = i
		}
	}
}

// Property: ⌈n(1-θ)⌉ partitions are always kept, uniquely, within range.
func TestPropertyFindMissingPartitions(t *testing.T) {
	f := func(seed int64, rawN uint8, rawTheta uint8) bool {
		n := int(rawN%100) + 1
		theta := float64(rawTheta%91) / 100 // 0 to 0.9
		rng := rand.New(rand.NewSource(seed))
		got := FindMissingPartitions(rng, n, theta)
		want := int(math.Ceil(float64(n) * (1 - theta)))
		if len(got) != want {
			return false
		}
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: dropping never increases makespan (fewer tasks, same slots).
func TestPropertyDropMonotoneMakespan(t *testing.T) {
	f := func(seed int64) bool {
		makespan := func(theta float64) float64 {
			sim := simtime.New()
			cfg := cluster.DefaultConfig()
			clu, err := cluster.New(sim, cfg)
			if err != nil {
				return math.NaN()
			}
			eng, err := New(sim, clu, nil, flatCost(1), seed)
			if err != nil {
				return math.NaN()
			}
			job := wordCountJob(makeInput(60, 1), 10)
			var finished simtime.Time
			if _, err := eng.Submit(job, SubmitOptions{
				DropRatios: []float64{theta},
				OnComplete: func(r JobResult) { finished = r.FinishedAt },
			}); err != nil {
				return math.NaN()
			}
			sim.Run()
			return finished.Seconds()
		}
		m0, m2, m5 := makespan(0), makespan(0.2), makespan(0.5)
		return m0 >= m2-1e-9 && m2 >= m5-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
