package engine

import (
	"testing"
	"testing/quick"

	"dias/internal/cluster"
	"dias/internal/simtime"
)

// submitWait submits a job and runs the simulation to completion, failing
// the test if the job never finishes.
func (r *testRig) submitWait(t *testing.T, job *Job, opts SubmitOptions) JobResult {
	t.Helper()
	var res JobResult
	done := false
	prev := opts.OnComplete
	opts.OnComplete = func(jr JobResult) {
		res = jr
		done = true
		if prev != nil {
			prev(jr)
		}
	}
	if _, err := r.eng.Submit(job, opts); err != nil {
		t.Fatal(err)
	}
	r.sim.Run()
	if !done {
		t.Fatal("job did not complete")
	}
	return res
}

func TestFailNodeReexecutesTasksAndPreservesOutput(t *testing.T) {
	rig := newRig(t, 4, flatCost(10))
	input := makeInput(8, 3)
	job := wordCountJob(input, 2)

	// Exact (failure-free) output for comparison.
	exact := newRig(t, 4, flatCost(10)).submitWait(t, job, SubmitOptions{})

	// Fail node 0 mid-first-wave, repair later.
	rig.sim.At(simtime.Time(5), func() {
		if err := rig.eng.FailNode(0); err != nil {
			t.Errorf("fail: %v", err)
		}
	})
	rig.sim.At(simtime.Time(25), func() {
		if err := rig.eng.RepairNode(0); err != nil {
			t.Errorf("repair: %v", err)
		}
	})
	res := rig.submitWait(t, job, SubmitOptions{})

	if rig.eng.TasksRetried() == 0 {
		t.Fatal("no tasks retried despite mid-wave failure")
	}
	if rig.eng.FailureLostSlotSeconds() <= 0 {
		t.Fatal("no failure-lost machine time recorded")
	}
	if got, want := len(res.Output), len(exact.Output); got != want {
		t.Fatalf("output size %d after failure, want %d", got, want)
	}
	gotCounts := map[string]float64{}
	for _, r := range res.Output {
		gotCounts[r.Key] = r.Value.(float64)
	}
	for _, r := range exact.Output {
		if gotCounts[r.Key] != r.Value.(float64) {
			t.Fatalf("key %s: %v after failure, want %v", r.Key, gotCounts[r.Key], r.Value)
		}
	}
	// Re-execution costs time: the run with a failure cannot beat the
	// failure-free one.
	if res.FinishedAt < exact.FinishedAt {
		t.Fatalf("failed run finished at %v before clean run %v", res.FinishedAt, exact.FinishedAt)
	}
}

func TestFailNodeWithoutRepairStillCompletes(t *testing.T) {
	rig := newRig(t, 4, flatCost(10))
	job := wordCountJob(makeInput(8, 3), 2)
	rig.sim.At(simtime.Time(5), func() {
		if err := rig.eng.FailNode(3); err != nil {
			t.Errorf("fail: %v", err)
		}
	})
	res := rig.submitWait(t, job, SubmitOptions{})
	if res.TasksExecuted != 8+2 {
		t.Fatalf("executed %d tasks, want 10", res.TasksExecuted)
	}
	if rig.clu.FreeSlots() != 3 {
		t.Fatalf("%d free slots at end, want 3 (one node down)", rig.clu.FreeSlots())
	}
}

func TestFailRepairValidation(t *testing.T) {
	rig := newRig(t, 2, flatCost(1))
	if err := rig.eng.FailNode(9); err == nil {
		t.Fatal("out-of-range fail accepted")
	}
	if err := rig.eng.RepairNode(0); err == nil {
		t.Fatal("repairing an up node accepted")
	}
	if err := rig.eng.FailNode(0); err != nil {
		t.Fatal(err)
	}
	if err := rig.eng.FailNode(0); err == nil {
		t.Fatal("double fail accepted")
	}
	if err := rig.eng.RepairNode(0); err != nil {
		t.Fatal(err)
	}
	if err := rig.eng.RepairNode(0); err == nil {
		t.Fatal("double repair accepted")
	}
}

func TestFailureInjectorEndToEnd(t *testing.T) {
	rig := newRig(t, 6, flatCost(5))
	inj, err := NewFailureInjector(rig.sim, rig.eng, FailureConfig{
		MTTFSec:    40,
		MTTRSec:    15,
		HorizonSec: 400,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A stream of jobs across the injection window.
	jobs := 0
	for i := 0; i < 12; i++ {
		job := wordCountJob(makeInput(6, 2), 2)
		at := simtime.Time(float64(i) * 30)
		rig.sim.At(at, func() {
			_, err := rig.eng.Submit(job, SubmitOptions{OnComplete: func(JobResult) { jobs++ }})
			if err != nil {
				t.Errorf("submit: %v", err)
			}
		})
	}
	rig.sim.Run()
	if jobs != 12 {
		t.Fatalf("%d jobs completed, want 12", jobs)
	}
	if inj.Failures() == 0 {
		t.Fatal("injector produced no failures over 400s at MTTF 40s x6 nodes")
	}
	if inj.Repairs() != inj.Failures() {
		t.Fatalf("%d repairs vs %d failures: repairs must always complete",
			inj.Repairs(), inj.Failures())
	}
	if rig.clu.DownNodes() != 0 {
		t.Fatalf("%d nodes still down after drain", rig.clu.DownNodes())
	}
	if rig.clu.FreeSlots() != 6 {
		t.Fatalf("%d free slots after drain, want 6", rig.clu.FreeSlots())
	}
	if inj.DownSeconds() <= 0 {
		t.Fatal("no downtime accumulated")
	}
	if rig.eng.ActiveJobs() != 0 {
		t.Fatalf("%d jobs still active after drain", rig.eng.ActiveJobs())
	}
}

func TestFailureInjectorValidation(t *testing.T) {
	rig := newRig(t, 2, flatCost(1))
	bad := []FailureConfig{
		{MTTFSec: 0, MTTRSec: 1, HorizonSec: 10},
		{MTTFSec: 1, MTTRSec: 0, HorizonSec: 10},
		{MTTFSec: 1, MTTRSec: 1, HorizonSec: 0},
		{MTTFSec: 1, MTTRSec: 1, HorizonSec: 10, Nodes: []int{5}},
	}
	for i, cfg := range bad {
		if _, err := NewFailureInjector(rig.sim, rig.eng, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewFailureInjector(nil, rig.eng, bad[0]); err == nil {
		t.Error("nil sim accepted")
	}
}

func TestFailureDeterminism(t *testing.T) {
	run := func() (simtime.Time, int) {
		rig := newRigB(6)
		if _, err := NewFailureInjector(rig.sim, rig.eng, FailureConfig{
			MTTFSec: 30, MTTRSec: 10, HorizonSec: 300, Seed: 3,
		}); err != nil {
			panic(err)
		}
		var finish simtime.Time
		for i := 0; i < 8; i++ {
			job := wordCountJob(makeInput(7, 2), 2)
			rig.sim.At(simtime.Time(float64(i)*25), func() {
				_, _ = rig.eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) {
					if r.FinishedAt > finish {
						finish = r.FinishedAt
					}
				}})
			})
		}
		rig.sim.Run()
		return finish, rig.eng.TasksRetried()
	}
	f1, r1 := run()
	f2, r2 := run()
	if f1 != f2 || r1 != r2 {
		t.Fatalf("nondeterministic failure runs: (%v,%d) vs (%v,%d)", f1, r1, f2, r2)
	}
}

// newRigB is newRig without *testing.T, for determinism comparisons that
// run outside a test helper context.
func newRigB(slots int) *testRig {
	sim := simtime.New()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = slots
	cfg.CoresPerNode = 1
	clu, err := cluster.New(sim, cfg)
	if err != nil {
		panic(err)
	}
	eng, err := New(sim, clu, nil, CostModel{TaskOverheadSec: 6, NoiseSigma: 0.1}, 1)
	if err != nil {
		panic(err)
	}
	return &testRig{sim: sim, clu: clu, eng: eng}
}

func TestFailureDuringSetupDoesNotWedge(t *testing.T) {
	// Fail a node while the job is still in its setup stage (no running
	// tasks): nothing to abort, and the job proceeds on what remains.
	cost := flatCost(5)
	cost.SetupBaseSec = 20
	rig := newRig(t, 3, cost)
	job := wordCountJob(makeInput(6, 2), 2)
	rig.sim.At(simtime.Time(10), func() {
		if err := rig.eng.FailNode(1); err != nil {
			t.Errorf("fail: %v", err)
		}
	})
	res := rig.submitWait(t, job, SubmitOptions{})
	if rig.eng.TasksRetried() != 0 {
		t.Fatalf("%d retries, want 0: nothing was running", rig.eng.TasksRetried())
	}
	if res.TasksExecuted != 8 {
		t.Fatalf("executed %d, want 8", res.TasksExecuted)
	}
}

func TestFailureWithSpeculationStaysConsistent(t *testing.T) {
	// Speculation plus failures: noisy tasks spawn backups, failures abort
	// some copies, and the job must still deliver every partition once.
	sim := simtime.New()
	cfg := cluster.DefaultConfig()
	cfg.Nodes = 4
	cfg.CoresPerNode = 1
	clu, err := cluster.New(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(sim, clu, nil, CostModel{TaskOverheadSec: 5, NoiseSigma: 0.8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SetSpeculation(SpeculationConfig{Enabled: true, Multiplier: 1.3, MinCompleted: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFailureInjector(sim, eng, FailureConfig{
		MTTFSec: 25, MTTRSec: 8, HorizonSec: 240, Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	job := wordCountJob(makeInput(10, 3), 3)
	var res JobResult
	done := false
	if _, err := eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) { res = r; done = true }}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !done {
		t.Fatal("job did not complete under speculation + failures")
	}
	// Output correctness: every input key appears exactly once.
	seen := map[string]bool{}
	for _, r := range res.Output {
		if seen[r.Key] {
			t.Fatalf("duplicate output key %s", r.Key)
		}
		seen[r.Key] = true
	}
	if len(seen) != 30 {
		t.Fatalf("%d distinct output keys, want 30", len(seen))
	}
}

func TestFailureWhileSprintingRescalesSurvivors(t *testing.T) {
	// Sprint mid-wave, then fail a node: surviving tasks keep their
	// sprinted completion times; aborted ones re-execute and the job ends
	// later than the unfailed sprinted run, never earlier.
	run := func(fail bool) simtime.Time {
		rig := newRig(t, 2, flatCost(10))
		job := wordCountJob(makeInput(4, 2), 1)
		rig.sim.At(simtime.Time(2), func() { rig.clu.SetSprinting(true) })
		if fail {
			rig.sim.At(simtime.Time(3), func() {
				if err := rig.eng.FailNode(0); err != nil {
					t.Errorf("fail: %v", err)
				}
			})
		}
		res := rig.submitWait(t, job, SubmitOptions{})
		return res.FinishedAt
	}
	clean := run(false)
	faulty := run(true)
	if faulty <= clean {
		t.Fatalf("faulty sprinted run at %v not after clean %v", faulty, clean)
	}
}

// Property: any interleaving of failures and repairs leaves slot accounting
// consistent — busy + free + down-idle slots equals the total, and no slot
// of a down node is ever handed out.
func TestPropertyFailureSlotAccounting(t *testing.T) {
	f := func(ops []uint8, seed int64) bool {
		sim := simtime.New()
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 4
		cfg.CoresPerNode = 2
		clu, err := cluster.New(sim, cfg)
		if err != nil {
			return false
		}
		down := map[int]bool{}
		var held []*cluster.Slot
		for _, op := range ops {
			node := int(op>>2) % 4
			switch op % 4 {
			case 0: // fail
				if !down[node] {
					if err := clu.FailNode(node); err != nil {
						return false
					}
					down[node] = true
					// Release any held slots of that node (what the
					// engine's FailNode does for running tasks).
					kept := held[:0]
					for _, s := range held {
						if s.Node == node {
							clu.Release(s)
						} else {
							kept = append(kept, s)
						}
					}
					held = kept
				}
			case 1: // repair
				if down[node] {
					if err := clu.RepairNode(node); err != nil {
						return false
					}
					down[node] = false
				}
			case 2: // acquire
				if s, ok := clu.Acquire(); ok {
					if down[s.Node] {
						return false // handed out a down-node slot
					}
					held = append(held, s)
				}
			case 3: // release one held slot
				if len(held) > 0 {
					clu.Release(held[len(held)-1])
					held = held[:len(held)-1]
				}
			}
			downIdle := 0
			for n, d := range down {
				if d {
					downIdle += cfg.CoresPerNode
					// Held slots on down nodes were released above, so all
					// of a down node's slots are idle-but-unavailable.
					_ = n
				}
			}
			if clu.BusySlots()+clu.FreeSlots()+downIdle != cfg.Nodes*cfg.CoresPerNode {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
