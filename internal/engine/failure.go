package engine

import (
	"errors"
	"fmt"
	"math/rand"

	"dias/internal/simtime"
)

// FailureConfig parameterizes random node failures: each eligible node
// fails after an exponential time with mean MTTFSec, stays down for an
// exponential repair time with mean MTTRSec, and the cycle repeats. No new
// failures are scheduled beyond HorizonSec (repairs still fire), so the
// event queue drains and simulations terminate.
type FailureConfig struct {
	// MTTFSec is the per-node mean time to failure.
	MTTFSec float64
	// MTTRSec is the mean time to repair.
	MTTRSec float64
	// HorizonSec bounds the injection window in virtual time.
	HorizonSec float64
	// Nodes lists eligible node indices; nil means every cluster node.
	Nodes []int
	// Seed drives the injector's RNG.
	Seed int64
}

func (c FailureConfig) validate(clusterNodes int) error {
	if c.MTTFSec <= 0 || c.MTTRSec <= 0 {
		return fmt.Errorf("engine: failure MTTF %g / MTTR %g must be positive", c.MTTFSec, c.MTTRSec)
	}
	if c.HorizonSec <= 0 {
		return errors.New("engine: failure horizon must be positive")
	}
	for _, n := range c.Nodes {
		if n < 0 || n >= clusterNodes {
			return fmt.Errorf("engine: failure node %d of %d", n, clusterNodes)
		}
	}
	return nil
}

// TaskFault is the injected behaviour of one task attempt, decided at
// launch by a TaskFaultInjector. The zero value is a healthy attempt.
type TaskFault struct {
	// Slowdown stretches the attempt's duration when > 1 (an injected
	// straggler); values <= 1 leave it unchanged.
	Slowdown float64
	// FailAfterFrac, in (0,1], aborts the attempt after that fraction of
	// its (possibly slowed) duration: the consumed machine time is lost
	// and the task retries from scratch. Zero means the attempt succeeds.
	FailAfterFrac float64
}

// TaskFaultInjector decides each task attempt's fate at launch time. It is
// called in simulation context, in deterministic event order, with the
// job's name, the task coordinates and how many prior attempts aborted —
// enough to drive seeded per-task failure probabilities and stragglers
// (see internal/faults).
type TaskFaultInjector interface {
	TaskStarted(job string, stage, partition, attempt int) TaskFault
}

// SetTaskFaults installs a task-level fault injector consulted at every
// attempt launch, with a per-task attempt budget: an injected failure at
// or beyond maxAttempts attempts fails the whole job (reported through
// JobResult.Failed rather than an error). maxAttempts must be >= 1 when an
// injector is set; retries caused by node crashes bump the attempt count
// the injector sees but never exhaust the budget on their own. Passing a
// nil injector removes fault injection.
func (e *Engine) SetTaskFaults(inj TaskFaultInjector, maxAttempts int) error {
	if inj != nil && maxAttempts < 1 {
		return fmt.Errorf("engine: task-fault attempt budget %d", maxAttempts)
	}
	e.taskFaults = inj
	e.maxTaskAttempts = maxAttempts
	return nil
}

// FailedJobs returns the number of jobs aborted with retries exhausted.
func (e *Engine) FailedJobs() int { return e.failedJobs }

// FailureInjector drives the fail/repair cycles of cluster nodes on the
// virtual timeline, exercising the engine's task re-execution path.
//
// Superseded by internal/faults, which adds trace-driven outage
// schedules, per-task faults with bounded retries, stragglers, and
// compose-safe skipping when another layer holds a node down. New code
// should attach a faults.Injector; this type remains for existing
// callers (dias.Stack.InjectFailures, ExtensionFailures) whose published
// figures depend on its exact RNG draw order.
type FailureInjector struct {
	sim *simtime.Simulation
	eng *Engine
	cfg FailureConfig
	rng *rand.Rand

	failures int
	repairs  int
	downSecs float64
}

// failureCycle pre-binds one node's fail and repair callbacks at
// injector construction, so the endless crash/recover cycles schedule no
// closures at run time.
type failureCycle struct {
	node     int
	failFn   func()
	repairFn func()
}

// NewFailureInjector arms the injector: the first failure of each eligible
// node is scheduled immediately (at an Exp(MTTF) offset).
func NewFailureInjector(sim *simtime.Simulation, eng *Engine, cfg FailureConfig) (*FailureInjector, error) {
	if sim == nil || eng == nil {
		return nil, errors.New("engine: nil simulation or engine")
	}
	if err := cfg.validate(eng.clu.Config().Nodes); err != nil {
		return nil, err
	}
	inj := &FailureInjector{
		sim: sim,
		eng: eng,
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
	nodes := cfg.Nodes
	if nodes == nil {
		nodes = make([]int, 0, eng.clu.Config().Nodes)
		for n := 0; n < eng.clu.Config().Nodes; n++ {
			nodes = append(nodes, n)
		}
	}
	for _, n := range nodes {
		cn := &failureCycle{node: n}
		cn.failFn = func() { inj.fail(cn) }
		cn.repairFn = func() { inj.repair(cn) }
		inj.scheduleFailure(cn)
	}
	return inj, nil
}

// Failures returns the number of node failures injected so far.
func (inj *FailureInjector) Failures() int { return inj.failures }

// Repairs returns the number of completed repairs.
func (inj *FailureInjector) Repairs() int { return inj.repairs }

// DownSeconds returns total node-downtime injected (summed across nodes).
func (inj *FailureInjector) DownSeconds() float64 { return inj.downSecs }

func (inj *FailureInjector) scheduleFailure(cn *failureCycle) {
	gap := inj.rng.ExpFloat64() * inj.cfg.MTTFSec
	at := inj.sim.Now().Add(simtime.Duration(gap))
	if at.Seconds() > inj.cfg.HorizonSec {
		return
	}
	inj.sim.At(at, cn.failFn)
}

func (inj *FailureInjector) fail(cn *failureCycle) {
	// The node is up by construction: failures and repairs of one node
	// alternate on the timeline. A failed FailNode would therefore be a
	// bug; surface it loudly.
	if err := inj.eng.FailNode(cn.node); err != nil {
		panic(fmt.Sprintf("engine: failure injection on node %d: %v", cn.node, err))
	}
	inj.failures++
	repair := inj.rng.ExpFloat64() * inj.cfg.MTTRSec
	inj.downSecs += repair
	inj.sim.After(simtime.Duration(repair), cn.repairFn)
}

func (inj *FailureInjector) repair(cn *failureCycle) {
	if err := inj.eng.RepairNode(cn.node); err != nil {
		panic(fmt.Sprintf("engine: repair of node %d: %v", cn.node, err))
	}
	inj.repairs++
	inj.scheduleFailure(cn)
}
