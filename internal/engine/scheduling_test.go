package engine

import (
	"math"
	"strconv"
	"testing"

	"dias/internal/cluster"
	"dias/internal/dfs"
	"dias/internal/simtime"
)

// --- Fair sharing -----------------------------------------------------------

// fairRig runs two single-stage jobs (6 and 2 unit tasks) on 2 slots and
// returns their completion times.
func fairRig(t *testing.T, fair bool) (aDone, bDone float64) {
	t.Helper()
	rig := newRig(t, 2, flatCost(10))
	rig.eng.SetFairSharing(fair)
	jobA := &Job{Name: "a", Input: makeInput(6, 0), Stages: []Stage{{Kind: Result}}}
	jobB := &Job{Name: "b", Input: makeInput(2, 0), Stages: []Stage{{Kind: Result}}}
	var at, bt simtime.Time
	if _, err := rig.eng.Submit(jobA, SubmitOptions{OnComplete: func(r JobResult) { at = r.FinishedAt }}); err != nil {
		t.Fatal(err)
	}
	if _, err := rig.eng.Submit(jobB, SubmitOptions{OnComplete: func(r JobResult) { bt = r.FinishedAt }}); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	return at.Seconds(), bt.Seconds()
}

func TestFIFOServesFirstJobFirst(t *testing.T) {
	aDone, bDone := fairRig(t, false)
	// FIFO: A's 6 tasks monopolize both slots for 30s, B finishes at 40.
	if math.Abs(aDone-30) > 1e-9 || math.Abs(bDone-40) > 1e-9 {
		t.Fatalf("FIFO completions a=%g b=%g, want 30/40", aDone, bDone)
	}
}

func TestFairSharingInterleavesJobs(t *testing.T) {
	aDone, bDone := fairRig(t, true)
	// Fair: B's 2 tasks interleave with A's and finish far earlier.
	if bDone >= 40-1e-9 {
		t.Fatalf("fair sharing did not help job B: b=%g", bDone)
	}
	if bDone >= aDone {
		t.Fatalf("small job B (%g) finished after big job A (%g)", bDone, aDone)
	}
	// Total work is conserved: last completion still at 40.
	if math.Abs(aDone-40) > 1e-9 {
		t.Fatalf("fair sharing changed total makespan: a=%g", aDone)
	}
}

// --- Locality ----------------------------------------------------------------

// localityRig builds a 2-node/1-core cluster over a 2-datanode dfs with
// replication 1, and a 1-block file living on datanode 0.
func localityRig(t *testing.T) (*simtime.Simulation, *cluster.Cluster, *Engine, *dfs.FS) {
	t.Helper()
	sim := simtime.New()
	ccfg := cluster.DefaultConfig()
	ccfg.Nodes = 2
	ccfg.CoresPerNode = 1
	clu, err := cluster.New(sim, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	fcfg := dfs.DefaultConfig()
	fcfg.DataNodes = 2
	fcfg.Replication = 1
	fcfg.BlockSize = 1000
	fcfg.LocalBytesPerSec = 1000 // 1 s local read
	fcfg.RemoteBytesPerSec = 100 // 10 s remote read
	fs, err := dfs.New(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Create("/in", 1000); err != nil {
		t.Fatal(err)
	}
	eng, err := New(sim, clu, fs, CostModel{TaskOverheadSec: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sim, clu, eng, fs
}

func localityJob() *Job {
	return &Job{
		Name:      "local",
		Input:     Dataset{{{Key: "k", Value: 1.0}}},
		InputPath: "/in",
		Stages:    []Stage{{Kind: Result}},
	}
}

func TestLocalityPrefersReplicaNode(t *testing.T) {
	sim, _, eng, fs := localityRig(t)
	blocks, err := fs.Blocks("/in")
	if err != nil {
		t.Fatal(err)
	}
	holder := blocks[0].Replicas[0]
	_ = holder
	var finished simtime.Time
	if _, err := eng.Submit(localityJob(), SubmitOptions{OnComplete: func(r JobResult) { finished = r.FinishedAt }}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// Local placement: 1 s overhead + 1 s local read = 2 s.
	if math.Abs(finished.Seconds()-2) > 1e-9 {
		t.Fatalf("finished at %v, want 2 (local read)", finished)
	}
}

func TestLocalityFallsBackToRemote(t *testing.T) {
	sim, clu, eng, fs := localityRig(t)
	blocks, err := fs.Blocks("/in")
	if err != nil {
		t.Fatal(err)
	}
	holder := blocks[0].Replicas[0]
	// Occupy every slot on the replica's node so the task must go remote.
	_, ok := clu.AcquireMatching(func(n int) bool { return n%2 == holder })
	if !ok {
		t.Fatal("could not occupy the replica node")
	}
	var finished simtime.Time
	if _, err := eng.Submit(localityJob(), SubmitOptions{OnComplete: func(r JobResult) { finished = r.FinishedAt }}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	// Remote placement: 1 s overhead + 10 s remote read = 11 s.
	if math.Abs(finished.Seconds()-11) > 1e-9 {
		t.Fatalf("finished at %v, want 11 (remote read)", finished)
	}
}

// --- Speculative execution ---------------------------------------------------

// stragglerJob builds a single-stage job whose partition 0 is enormous
// (per-record cost makes it ~100x the others).
func stragglerJob(nSmall int) *Job {
	input := make(Dataset, nSmall+1)
	big := make(Partition, 100)
	for i := range big {
		big[i] = Record{Key: "b" + strconv.Itoa(i), Value: 1.0}
	}
	input[0] = big
	for i := 1; i <= nSmall; i++ {
		input[i] = Partition{{Key: "s" + strconv.Itoa(i), Value: 1.0}}
	}
	return &Job{Name: "straggler", Input: input, Stages: []Stage{{Kind: Result}}}
}

func TestSpeculationLaunchesBackupAndOriginalWins(t *testing.T) {
	rig := newRig(t, 2, CostModel{TaskOverheadSec: 0.5, PerRecordSec: 1})
	if err := rig.eng.SetSpeculation(SpeculationConfig{Enabled: true, Multiplier: 1.5, MinCompleted: 2}); err != nil {
		t.Fatal(err)
	}
	job := stragglerJob(4)
	var res JobResult
	if _, err := rig.eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) { res = r }}); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	if rig.eng.SpeculativeLaunched() == 0 {
		t.Fatal("no backup launched for the straggler")
	}
	if rig.eng.SpeculativeDiscarded() != rig.eng.SpeculativeLaunched() {
		t.Fatalf("launched %d backups, discarded %d", rig.eng.SpeculativeLaunched(), rig.eng.SpeculativeDiscarded())
	}
	// Output must contain each record exactly once (no twin duplication).
	if len(res.Output) != 104 {
		t.Fatalf("output records = %d, want 104", len(res.Output))
	}
	seen := map[string]int{}
	for _, r := range res.Output {
		seen[r.Key]++
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("record %s appears %d times", k, n)
		}
	}
	// The winner count excludes the cancelled copy.
	if res.TasksExecuted != 5 {
		t.Fatalf("tasks executed = %d, want 5", res.TasksExecuted)
	}
	if rig.clu.FreeSlots() != 2 {
		t.Fatalf("free slots = %d after run", rig.clu.FreeSlots())
	}
}

func TestSpeculationDisabledByDefault(t *testing.T) {
	rig := newRig(t, 2, CostModel{TaskOverheadSec: 0.5, PerRecordSec: 1})
	if _, err := rig.eng.Submit(stragglerJob(4), SubmitOptions{}); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	if rig.eng.SpeculativeLaunched() != 0 {
		t.Fatal("speculation ran while disabled")
	}
}

func TestSpeculationConfigValidation(t *testing.T) {
	rig := newRig(t, 1, flatCost(1))
	if err := rig.eng.SetSpeculation(SpeculationConfig{Enabled: true, Multiplier: 0.5, MinCompleted: 1}); err == nil {
		t.Fatal("multiplier <= 1 accepted")
	}
	if err := rig.eng.SetSpeculation(SpeculationConfig{Enabled: true, Multiplier: 2, MinCompleted: 0}); err == nil {
		t.Fatal("min completed 0 accepted")
	}
	if err := rig.eng.SetSpeculation(SpeculationConfig{}); err != nil {
		t.Fatalf("disabled config rejected: %v", err)
	}
}

func TestSpeculationWithNoiseDoesNotHurt(t *testing.T) {
	// With heavy lognormal noise, backup copies redraw their duration and
	// frequently win; average makespan must not degrade.
	makespan := func(spec bool, seed int64) float64 {
		sim := simtime.New()
		cfg := cluster.DefaultConfig()
		cfg.Nodes = 4
		cfg.CoresPerNode = 1
		clu, err := cluster.New(sim, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(sim, clu, nil, CostModel{TaskOverheadSec: 1, NoiseSigma: 0.9}, seed)
		if err != nil {
			t.Fatal(err)
		}
		if spec {
			if err := eng.SetSpeculation(SpeculationConfig{Enabled: true, Multiplier: 1.5, MinCompleted: 4}); err != nil {
				t.Fatal(err)
			}
		}
		job := &Job{Name: "noisy", Input: makeInput(16, 0), Stages: []Stage{{Kind: Result}}}
		var finished simtime.Time
		if _, err := eng.Submit(job, SubmitOptions{OnComplete: func(r JobResult) { finished = r.FinishedAt }}); err != nil {
			t.Fatal(err)
		}
		sim.Run()
		return finished.Seconds()
	}
	var with, without float64
	const runs = 12
	for s := int64(0); s < runs; s++ {
		with += makespan(true, s)
		without += makespan(false, s)
	}
	if with > without*1.05 {
		t.Fatalf("speculation degraded mean makespan: %.2f vs %.2f", with/runs, without/runs)
	}
}

func TestKillWithSpeculativeTasks(t *testing.T) {
	rig := newRig(t, 2, CostModel{TaskOverheadSec: 0.5, PerRecordSec: 1})
	if err := rig.eng.SetSpeculation(SpeculationConfig{Enabled: true, Multiplier: 1.5, MinCompleted: 2}); err != nil {
		t.Fatal(err)
	}
	id, err := rig.eng.Submit(stragglerJob(4), SubmitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Run until the backup is in flight, then kill.
	rig.sim.RunUntil(10)
	if rig.eng.SpeculativeLaunched() == 0 {
		t.Fatal("backup not launched before kill")
	}
	if _, err := rig.eng.Kill(id); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	if rig.clu.FreeSlots() != 2 {
		t.Fatalf("free slots = %d after killing with backups in flight", rig.clu.FreeSlots())
	}
	if rig.eng.CompletedJobs() != 0 {
		t.Fatal("killed job completed")
	}
}

func TestFairSharingWithKill(t *testing.T) {
	// Killing a job mid-rotation must not break the round-robin cursor.
	rig := newRig(t, 1, flatCost(5))
	rig.eng.SetFairSharing(true)
	jobs := make([]JobID, 3)
	done := 0
	for i := range jobs {
		id, err := rig.eng.Submit(
			&Job{Name: "j" + strconv.Itoa(i), Input: makeInput(3, 0), Stages: []Stage{{Kind: Result}}},
			SubmitOptions{OnComplete: func(JobResult) { done++ }})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = id
	}
	rig.sim.RunUntil(7)
	if _, err := rig.eng.Kill(jobs[1]); err != nil {
		t.Fatal(err)
	}
	rig.sim.Run()
	if done != 2 {
		t.Fatalf("completed %d jobs, want 2", done)
	}
	if rig.clu.FreeSlots() != 1 {
		t.Fatal("slot leaked")
	}
}
