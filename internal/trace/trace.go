package trace

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"dias/internal/simtime"
)

// Kind enumerates event types.
type Kind int

// Event kinds, in rough lifecycle order.
const (
	Arrival Kind = iota + 1
	Dispatch
	Evict
	SprintStart
	SprintStop
	Complete
	// Reject marks an arrival the admission policy shed before buffering.
	Reject
)

var kindNames = map[Kind]string{
	Arrival:     "arrival",
	Dispatch:    "dispatch",
	Evict:       "evict",
	SprintStart: "sprint-start",
	SprintStop:  "sprint-stop",
	Complete:    "complete",
	Reject:      "reject",
}

// String returns the wire name of the kind.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its wire name.
func (k Kind) MarshalJSON() ([]byte, error) {
	n, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("trace: unknown kind %d", int(k))
	}
	return json.Marshal(n)
}

// UnmarshalJSON decodes a wire name.
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for kk, n := range kindNames {
		if n == s {
			*k = kk
			return nil
		}
	}
	return fmt.Errorf("trace: unknown kind %q", s)
}

// Event is one timeline entry.
type Event struct {
	At    float64 `json:"at"` // virtual seconds
	Kind  Kind    `json:"kind"`
	Job   string  `json:"job,omitempty"`
	Class int     `json:"class"`
	// Detail carries kind-specific context (e.g. the evictor's name).
	Detail string `json:"detail,omitempty"`
}

// Log accumulates events in timestamp order. The zero value is usable.
type Log struct {
	events []Event
}

// Record appends an event at the given virtual time.
func (l *Log) Record(at simtime.Time, kind Kind, job string, class int, detail string) {
	l.events = append(l.events, Event{
		At: at.Seconds(), Kind: kind, Job: job, Class: class, Detail: detail,
	})
}

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Events returns a copy of the log.
func (l *Log) Events() []Event {
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Filter returns the events of one kind, preserving order.
func (l *Log) Filter(kind Kind) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// JobTimeline returns all events of one job, in order.
func (l *Log) JobTimeline(job string) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Job == job {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSONL streams the log as JSON lines.
func (l *Log) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: encoding event: %w", err)
		}
	}
	return nil
}

// ReadJSONL parses a JSON-lines trace back into a Log. Every line must
// decode to an event with a known kind: malformed JSON, unknown kinds,
// and kind-less lines (which would otherwise decode to an unencodable
// zero event) all fail the read — nothing is silently dropped.
func ReadJSONL(r io.Reader) (*Log, error) {
	dec := json.NewDecoder(r)
	l := &Log{}
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("trace: decoding event: %w", err)
		}
		if _, ok := kindNames[e.Kind]; !ok {
			return nil, fmt.Errorf("trace: decoding event %d: missing kind", l.Len())
		}
		l.events = append(l.events, e)
	}
	return l, nil
}

// Stats summarises a log: per-kind counts and per-class eviction counts.
type Stats struct {
	ByKind           map[Kind]int
	EvictionsByClass map[int]int
}

// Summarize computes aggregate statistics.
func (l *Log) Summarize() Stats {
	s := Stats{ByKind: map[Kind]int{}, EvictionsByClass: map[int]int{}}
	for _, e := range l.events {
		s.ByKind[e.Kind]++
		if e.Kind == Evict {
			s.EvictionsByClass[e.Class]++
		}
	}
	return s
}

// SprintSeconds returns the total sprinting time recorded by paired
// sprint-start / sprint-stop events. An unpaired trailing start counts up
// to horizon.
func (l *Log) SprintSeconds(horizon float64) float64 {
	// Events are recorded in time order, but be defensive: sort a copy.
	evs := l.Filter(SprintStart)
	stops := l.Filter(SprintStop)
	all := append(evs, stops...)
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	var total float64
	var openAt float64
	open := false
	for _, e := range all {
		switch e.Kind {
		case SprintStart:
			if !open {
				open = true
				openAt = e.At
			}
		case SprintStop:
			if open {
				total += e.At - openAt
				open = false
			}
		}
	}
	if open && horizon > openAt {
		total += horizon - openAt
	}
	return total
}
