package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func sampleLog() *Log {
	l := &Log{}
	l.Record(0, Arrival, "j1", 0, "")
	l.Record(0, Dispatch, "j1", 0, "")
	l.Record(5, Arrival, "j2", 1, "")
	l.Record(5, Evict, "j1", 0, "preempted-by-j2")
	l.Record(5, Dispatch, "j2", 1, "")
	l.Record(6, SprintStart, "j2", 1, "")
	l.Record(9, SprintStop, "j2", 1, "job-left-engine")
	l.Record(9, Complete, "j2", 1, "")
	l.Record(9, Dispatch, "j1", 0, "")
	l.Record(20, Complete, "j1", 0, "")
	return l
}

func TestRecordAndFilter(t *testing.T) {
	l := sampleLog()
	if l.Len() != 10 {
		t.Fatalf("Len = %d", l.Len())
	}
	if got := len(l.Filter(Dispatch)); got != 3 {
		t.Fatalf("%d dispatches", got)
	}
	if got := len(l.Filter(Evict)); got != 1 {
		t.Fatalf("%d evictions", got)
	}
	tl := l.JobTimeline("j1")
	if len(tl) != 5 {
		t.Fatalf("j1 timeline has %d events", len(tl))
	}
	if tl[0].Kind != Arrival || tl[len(tl)-1].Kind != Complete {
		t.Fatalf("timeline ends = %v ... %v", tl[0].Kind, tl[len(tl)-1].Kind)
	}
}

func TestEventsCopy(t *testing.T) {
	l := sampleLog()
	evs := l.Events()
	evs[0].Job = "mutated"
	if l.Events()[0].Job != "j1" {
		t.Fatal("Events aliases internal storage")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"evict"`) {
		t.Fatalf("missing wire kind:\n%s", buf.String())
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatalf("round trip lost events: %d vs %d", back.Len(), l.Len())
	}
	for i, e := range back.Events() {
		if e != l.Events()[i] {
			t.Fatalf("event %d changed: %+v vs %+v", i, e, l.Events()[i])
		}
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"at":1,"kind":"bogus","class":0}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSummarize(t *testing.T) {
	s := sampleLog().Summarize()
	if s.ByKind[Dispatch] != 3 || s.ByKind[Complete] != 2 {
		t.Fatalf("counts = %v", s.ByKind)
	}
	if s.EvictionsByClass[0] != 1 {
		t.Fatalf("evictions by class = %v", s.EvictionsByClass)
	}
}

func TestSprintSeconds(t *testing.T) {
	l := sampleLog()
	if got := l.SprintSeconds(100); math.Abs(got-3) > 1e-12 {
		t.Fatalf("sprint seconds = %g, want 3", got)
	}
	// Unpaired trailing start counts up to the horizon.
	l2 := &Log{}
	l2.Record(10, SprintStart, "j", 1, "")
	if got := l2.SprintSeconds(25); math.Abs(got-15) > 1e-12 {
		t.Fatalf("open sprint = %g, want 15", got)
	}
	if got := (&Log{}).SprintSeconds(100); got != 0 {
		t.Fatalf("empty log sprint = %g", got)
	}
}

func TestKindStrings(t *testing.T) {
	if Arrival.String() != "arrival" || Complete.String() != "complete" {
		t.Fatal("unexpected names")
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kind empty")
	}
	if _, err := Kind(99).MarshalJSON(); err == nil {
		t.Fatal("marshalling unknown kind succeeded")
	}
}
