package trace

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
)

// drain reads a whole streamed trace, failing the test on any error but
// io.EOF.
func drain(t *testing.T, r io.Reader) []Rec {
	t.Helper()
	sr, err := NewStreamReader(r)
	if err != nil {
		t.Fatal(err)
	}
	var out []Rec
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("record %d: %v", len(out), err)
		}
		out = append(out, rec)
	}
}

// The wire format must round-trip records exactly — bit-identical
// floats, not approximately-equal ones — because streamed replays feed
// deterministic simulations.
func TestStreamRoundTripExact(t *testing.T) {
	recs := []Rec{
		{At: 0, Class: 0, SizeBytes: 0, Home: -1},
		{At: 0, Class: 3, SizeBytes: 1, Home: 0}, // duplicate time is legal
		{At: 1.0 / 3.0, Class: 1, SizeBytes: 1 << 40, Home: 7},
		{At: 1e9 + 1e-6, Class: 0, SizeBytes: 123456789, Home: 2},
		{At: math.MaxFloat64, Class: 2, SizeBytes: math.MaxInt64, Home: 0},
	}
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := sw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != len(recs) {
		t.Fatalf("writer count %d, want %d", sw.Count(), len(recs))
	}
	if !strings.HasPrefix(buf.String(), StreamHeader+"\n") {
		t.Fatalf("missing header: %q", buf.String()[:30])
	}
	got := drain(t, &buf)
	if len(got) != len(recs) {
		t.Fatalf("%d records back, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		if got[i] != r {
			t.Fatalf("record %d: %+v round-tripped to %+v", i, r, got[i])
		}
	}
}

// Blank lines and #-comments are the format's annotation channel; they
// must vanish without affecting record counts or the time invariant.
func TestStreamReaderSkipsCommentsAndBlanks(t *testing.T) {
	in := StreamHeader + "\n" +
		"# provenance: synthesized for the walkthrough\n" +
		"\n" +
		"1.5 0 100 0\n" +
		"   \n" +
		"# mid-stream comment\n" +
		"2.5 1 200 -1\n"
	got := drain(t, strings.NewReader(in))
	want := []Rec{{At: 1.5, Class: 0, SizeBytes: 100, Home: 0}, {At: 2.5, Class: 1, SizeBytes: 200, Home: -1}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

// Every way a trace file can rot on disk must surface as a clean,
// line-numbered error — never a panic, never a silently skipped record.
func TestStreamReaderMalformed(t *testing.T) {
	h := StreamHeader + "\n"
	cases := []struct {
		name     string
		input    string
		wantLine string // substring expected in the error
	}{
		{"empty input", "", "missing header"},
		{"wrong header", "#dias-trace v99\n1 0 0 0\n", "line 1"},
		{"no header, data first", "1 0 0 0\n", "line 1"},
		{"too few fields", h + "1.5 0 100\n", "line 2"},
		{"too many fields", h + "1.5 0 100 0 9\n", "line 2"},
		{"bad float", h + "abc 0 100 0\n", "line 2"},
		{"nan time", h + "NaN 0 100 0\n", "line 2"},
		{"inf time", h + "+Inf 0 100 0\n", "line 2"},
		{"negative time", h + "-1 0 100 0\n", "line 2"},
		{"bad class", h + "1.5 x 100 0\n", "line 2"},
		{"negative class", h + "1.5 -1 100 0\n", "line 2"},
		{"float class", h + "1.5 0.5 100 0\n", "line 2"},
		{"bad size", h + "1.5 0 10x0 0\n", "line 2"},
		{"negative size", h + "1.5 0 -100 0\n", "line 2"},
		{"bad home", h + "1.5 0 100 zz\n", "line 2"},
		{"home below -1", h + "1.5 0 100 -2\n", "line 2"},
		{"time goes backwards", h + "2 0 0 0\n1 0 0 0\n", "line 3"},
		{"backwards after comment", h + "2 0 0 0\n# note\n1 0 0 0\n", "line 4"},
		{"overlong line", h + strings.Repeat("9", 2<<20) + " 0 0 0\n", "line 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sr, err := NewStreamReader(strings.NewReader(c.input))
			if err != nil {
				t.Fatal(err)
			}
			for {
				_, err = sr.Next()
				if err != nil {
					break
				}
			}
			if err == io.EOF {
				t.Fatalf("input %q drained cleanly, want an error", c.input)
			}
			if !strings.HasPrefix(err.Error(), "trace: ") {
				t.Fatalf("error %q lacks the package prefix", err)
			}
			if !strings.Contains(err.Error(), c.wantLine) {
				t.Fatalf("error %q does not name %q", err, c.wantLine)
			}
		})
	}
}

// Writer-side validation mirrors the reader's: a record the reader
// would reject must not be writable in the first place.
func TestStreamWriterRejectsInvalid(t *testing.T) {
	bad := []Rec{
		{At: math.NaN()},
		{At: math.Inf(1)},
		{At: -1},
		{At: 1, Class: -1},
		{At: 1, SizeBytes: -1},
		{At: 1, Home: -2},
	}
	for i, r := range bad {
		var buf bytes.Buffer
		sw, err := NewStreamWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.Write(r); err == nil {
			t.Errorf("case %d: %+v accepted", i, r)
		}
	}
	// Time order.
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(Rec{At: 2}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Write(Rec{At: 1}); err == nil {
		t.Fatal("time regression accepted")
	}
}

// Synthesize is the deterministic trace factory: same config, same
// bytes; records honor the config's mix, homes and time order.
func TestSynthesize(t *testing.T) {
	cfg := SynthConfig{
		Jobs:          2000,
		Rates:         []float64{9, 1},
		Clusters:      4,
		MeanSizeBytes: 1 << 20,
		SizeCV:        1.5,
		Seed:          42,
	}
	var a, b bytes.Buffer
	na, err := Synthesize(&a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Synthesize(&b, cfg); err != nil {
		t.Fatal(err)
	}
	if na != cfg.Jobs {
		t.Fatalf("wrote %d records, want %d", na, cfg.Jobs)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same config produced different traces")
	}
	recs := drain(t, &a)
	if len(recs) != cfg.Jobs {
		t.Fatalf("read back %d records", len(recs))
	}
	var class0, sizeSum float64
	for i, r := range recs {
		if i > 0 && r.At < recs[i-1].At {
			t.Fatalf("record %d out of order", i)
		}
		if r.Home < 0 || r.Home >= cfg.Clusters {
			t.Fatalf("record %d home %d", i, r.Home)
		}
		if r.SizeBytes <= 0 {
			t.Fatalf("record %d size %d", i, r.SizeBytes)
		}
		if r.Class == 0 {
			class0++
		}
		sizeSum += float64(r.SizeBytes)
	}
	if frac := class0 / float64(len(recs)); math.Abs(frac-0.9) > 0.03 {
		t.Fatalf("class-0 fraction %g, want 0.9", frac)
	}
	// Lognormal mean within 20% at CV 1.5 and n=2000.
	if mean := sizeSum / float64(len(recs)); math.Abs(mean-float64(1<<20))/float64(1<<20) > 0.2 {
		t.Fatalf("mean size %g, want ~%d", mean, 1<<20)
	}
	// Mean gap 1/total within 10%.
	if meanGap := recs[len(recs)-1].At / float64(len(recs)); math.Abs(meanGap-0.1) > 0.01 {
		t.Fatalf("mean gap %g, want 0.1", meanGap)
	}
}

func TestSynthesizeValidation(t *testing.T) {
	for i, cfg := range []SynthConfig{
		{Jobs: 0, Rates: []float64{1}},
		{Jobs: 10, Rates: nil},
		{Jobs: 10, Rates: []float64{0, 0}},
		{Jobs: 10, Rates: []float64{-1, 2}},
		{Jobs: 10, Rates: []float64{1}, Clusters: -1},
		{Jobs: 10, Rates: []float64{1}, MeanSizeBytes: -1},
		{Jobs: 10, Rates: []float64{1}, SizeCV: -1},
	} {
		var buf bytes.Buffer
		if _, err := Synthesize(&buf, cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

// FuzzStreamReader asserts the reader never panics on arbitrary bytes
// and that whatever it accepts round-trips through StreamWriter with
// identical records — the reader and writer agree on the format.
func FuzzStreamReader(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(StreamHeader + "\n"))
	f.Add([]byte(StreamHeader + "\n1.5 0 100 0\n2.5 1 200 -1\n"))
	f.Add([]byte(StreamHeader + "\n# comment\n\n3 2 0 1\n"))
	f.Add([]byte(StreamHeader + "\n2 0 0 0\n1 0 0 0\n"))
	f.Add([]byte(StreamHeader + "\nNaN 0 0 0\n"))
	f.Add([]byte(StreamHeader + "\n1e309 0 0 0\n"))
	f.Add([]byte("#dias-trace v99\n1 0 0 0\n"))
	f.Add([]byte("1 0 0 0\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewStreamReader(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("constructor: %v", err)
		}
		var recs []Rec
		for {
			rec, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // malformed input rejected cleanly: fine
			}
			recs = append(recs, rec)
			if len(recs) > 10000 {
				return // enough; keep the fuzz round fast
			}
		}
		var buf bytes.Buffer
		sw, err := NewStreamWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range recs {
			if err := sw.Write(r); err != nil {
				t.Fatalf("accepted record %d %+v rejected by writer: %v", i, r, err)
			}
		}
		if err := sw.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := NewStreamReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := range recs {
			rec, err := back.Next()
			if err != nil {
				t.Fatalf("round trip record %d: %v", i, err)
			}
			if rec != recs[i] {
				t.Fatalf("round trip record %d: %+v became %+v", i, recs[i], rec)
			}
		}
		if _, err := back.Next(); err != io.EOF {
			t.Fatalf("round trip invented records: %v", err)
		}
	})
}
