// Package trace records and replays scheduler-level workload traces.
//
// Two representations coexist, matching the two scales the simulator
// runs at:
//
//   - Log captures scheduler events (arrivals, dispatches, evictions,
//     sprint transitions, completions, rejections) on the virtual
//     timeline and exports them as JSON lines — the equivalent of the
//     cluster traces the paper's motivation analyses (§2.1) and handy
//     for debugging policies. A Log is materialized: it holds every
//     event, so it suits runs up to the figure scale.
//
//   - StreamReader/StreamWriter move arrival records (time, class, size,
//     home cluster) through a line-oriented text format incrementally
//     over bufio, one record in memory at a time, so million-job traces
//     replay in O(1) space regardless of file length. Synthesize writes
//     such a trace deterministically from per-class rates, and
//     workload.EmpiricalStream turns any trace stream back into an
//     arrival process (see docs/WORKLOADS.md for the format spec).
//
// Both directions round-trip losslessly: times are formatted with
// strconv's shortest exact representation, so write → read → write is
// byte-identical.
package trace
