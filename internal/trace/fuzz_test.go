package trace

import (
	"bytes"
	"strings"
	"testing"
)

// TestReadJSONLMalformedInput pins the error behavior on the broken
// streams a trace file can degrade into on disk: every malformed input
// returns a clean error (never panics), and no malformed line is ever
// silently dropped — a parse failure fails the whole read.
func TestReadJSONLMalformedInput(t *testing.T) {
	valid := `{"at":1.5,"kind":"arrival","job":"j1","class":0}` + "\n"
	cases := []struct {
		name    string
		input   string
		wantErr bool
		wantLen int
	}{
		{"empty stream", "", false, 0},
		{"single valid line", valid, false, 1},
		{"truncated line", `{"at":1.5,"kind":"arr`, true, 0},
		{"truncated second line", valid + `{"at":2.0,"ki`, true, 0},
		{"unknown kind", `{"at":1.0,"kind":"no-such-kind","class":0}`, true, 0},
		{"kind wrong type", `{"at":1.0,"kind":7,"class":0}`, true, 0},
		{"garbage", "not json at all\n", true, 0},
		{"garbage after valid", valid + "garbage\n", true, 0},
		{"bare null lacks a kind", "null\n", true, 0},
		{"object without kind", `{"at":1.0,"class":0}` + "\n", true, 0},
		{"array instead of object", `[1,2,3]` + "\n", true, 0},
		{"unknown fields ignored", `{"at":1.0,"kind":"evict","class":1,"bogus":true}` + "\n", false, 1},
		{"missing fields zeroed", `{"kind":"complete"}` + "\n", false, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			l, err := ReadJSONL(strings.NewReader(c.input))
			if (err != nil) != c.wantErr {
				t.Fatalf("ReadJSONL(%q) err = %v, wantErr %v", c.input, err, c.wantErr)
			}
			if err != nil {
				if !strings.HasPrefix(err.Error(), "trace: ") {
					t.Fatalf("error %q lacks the package prefix", err)
				}
				return
			}
			if l.Len() != c.wantLen {
				t.Fatalf("Len() = %d, want %d", l.Len(), c.wantLen)
			}
		})
	}
}

// FuzzReadJSONL asserts ReadJSONL never panics on arbitrary bytes, and
// that whatever it accepts survives a write/re-read round trip with the
// same event count (nothing silently dropped, nothing invented).
func FuzzReadJSONL(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte(`{"at":1.5,"kind":"arrival","job":"j1","class":0}` + "\n"))
	f.Add([]byte(`{"at":1.5,"kind":"arr`))
	f.Add([]byte(`{"at":1.0,"kind":"no-such-kind","class":0}`))
	f.Add([]byte("not json\n"))
	f.Add([]byte(`{"at":3,"kind":"sprint-start","detail":"x"}` + "\n" + `{"at":4,"kind":"sprint-stop"}` + "\n"))
	f.Add([]byte("null\n"))
	f.Add([]byte(`{"kind":1e309}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ReadJSONL(bytes.NewReader(data))
		if err != nil {
			if l != nil {
				t.Fatalf("non-nil log alongside error %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := l.WriteJSONL(&buf); err != nil {
			// Accepted events re-encode unless the decoder let through a
			// kind value outside the enum — it cannot: unknown kinds fail
			// UnmarshalJSON above.
			t.Fatalf("accepted log failed to re-encode: %v", err)
		}
		back, err := ReadJSONL(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v", err)
		}
		if back.Len() != l.Len() {
			t.Fatalf("round trip: %d events became %d", l.Len(), back.Len())
		}
	})
}
