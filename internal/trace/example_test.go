package trace_test

import (
	"bytes"
	"fmt"
	"io"

	"dias/internal/trace"
)

// ExampleStreamWriter writes a trace incrementally and reads it back
// record by record — both directions hold one record in memory, so the
// same loop handles ten jobs or ten million.
func ExampleStreamWriter() {
	var buf bytes.Buffer
	sw, _ := trace.NewStreamWriter(&buf)
	for _, r := range []trace.Rec{
		{At: 0.5, Class: 1, SizeBytes: 1 << 20, Home: 0},
		{At: 2.25, Class: 0, SizeBytes: 4 << 20, Home: -1}, // home unspecified
	} {
		if err := sw.Write(r); err != nil {
			panic(err)
		}
	}
	sw.Flush()
	fmt.Print(buf.String())

	sr, _ := trace.NewStreamReader(&buf)
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		fmt.Printf("read: t=%g class=%d\n", rec.At, rec.Class)
	}
	// Output:
	// #dias-trace v1
	// 0.5 1 1048576 0
	// 2.25 0 4194304 -1
	// read: t=0.5 class=1
	// read: t=2.25 class=0
}

// ExampleSynthesize generates a reproducible trace from per-class rates
// — same config, same bytes — sized by disk, not RAM.
func ExampleSynthesize() {
	var a, b bytes.Buffer
	cfg := trace.SynthConfig{
		Jobs:     500,
		Rates:    []float64{9, 1}, // 10 jobs/s total, 9:1 low:high
		Clusters: 4,               // data homes spread over members 0..3
		Seed:     1,
	}
	na, _ := trace.Synthesize(&a, cfg)
	trace.Synthesize(&b, cfg)
	fmt.Printf("wrote %d records, deterministic: %v\n", na, bytes.Equal(a.Bytes(), b.Bytes()))

	sr, _ := trace.NewStreamReader(&a)
	homes := map[int]bool{}
	var last trace.Rec
	for {
		rec, err := sr.Next()
		if err == io.EOF {
			break
		}
		homes[rec.Home] = true
		last = rec
	}
	fmt.Printf("%d records span %.0fs across %d homes\n", sr.Count(), last.At, len(homes))
	// Output:
	// wrote 500 records, deterministic: true
	// 500 records span 46s across 4 homes
}
