package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// StreamHeader is the first line of every streamed trace file. It names
// the format and pins its version so readers can reject files from a
// future incompatible revision instead of misparsing them.
const StreamHeader = "#dias-trace v1"

// Rec is one arrival record of a streamed trace: when a job arrives,
// its priority class, how much input it reads, and which federation
// member its data lives on. The streaming layer deliberately carries
// only what an arrival process and a dispatcher need — per-record
// memory is constant, so a million-job trace costs the same RAM as a
// ten-job one.
type Rec struct {
	// At is the arrival time in seconds from trace start; records are
	// nondecreasing in At.
	At float64
	// Class is the priority class index (higher = higher priority).
	Class int
	// SizeBytes is the job's input size hint; 0 means unspecified.
	SizeBytes int64
	// Home is the data-home cluster index; -1 means unspecified.
	Home int
}

// validate rejects records the wire format cannot represent.
func (r Rec) validate() error {
	switch {
	case math.IsNaN(r.At) || math.IsInf(r.At, 0) || r.At < 0:
		return fmt.Errorf("trace: arrival time %g out of range", r.At)
	case r.Class < 0:
		return fmt.Errorf("trace: class %d negative", r.Class)
	case r.SizeBytes < 0:
		return fmt.Errorf("trace: size %d negative", r.SizeBytes)
	case r.Home < -1:
		return fmt.Errorf("trace: home %d below -1", r.Home)
	}
	return nil
}

// StreamWriter writes arrival records incrementally as
// space-separated "at class size home" lines behind a bufio.Writer.
// Memory is O(1) in the record count; call Flush once at the end.
type StreamWriter struct {
	w     *bufio.Writer
	buf   []byte
	count int
	last  float64
}

// NewStreamWriter starts a streamed trace on w by writing the header
// line.
func NewStreamWriter(w io.Writer) (*StreamWriter, error) {
	if w == nil {
		return nil, errors.New("trace: nil writer")
	}
	sw := &StreamWriter{w: bufio.NewWriter(w), buf: make([]byte, 0, 64)}
	if _, err := sw.w.WriteString(StreamHeader + "\n"); err != nil {
		return nil, err
	}
	return sw, nil
}

// Write appends one record. Records must arrive in nondecreasing time
// order — the same invariant StreamReader enforces on the way back in.
func (sw *StreamWriter) Write(r Rec) error {
	if err := r.validate(); err != nil {
		return err
	}
	if r.At < sw.last {
		return fmt.Errorf("trace: record %d at %g precedes %g", sw.count, r.At, sw.last)
	}
	sw.last = r.At
	b := sw.buf[:0]
	b = strconv.AppendFloat(b, r.At, 'g', -1, 64)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(r.Class), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, r.SizeBytes, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, int64(r.Home), 10)
	b = append(b, '\n')
	sw.buf = b[:0]
	if _, err := sw.w.Write(b); err != nil {
		return err
	}
	sw.count++
	return nil
}

// Count returns the number of records written so far.
func (sw *StreamWriter) Count() int { return sw.count }

// Flush drains the buffered tail to the underlying writer.
func (sw *StreamWriter) Flush() error { return sw.w.Flush() }

// StreamReader reads a streamed trace incrementally: one record per
// Next call, O(1) memory at any file length. It validates the header,
// every field, and the nondecreasing-time invariant, reporting
// malformed input with its line number.
type StreamReader struct {
	sc     *bufio.Scanner
	line   int
	count  int
	last   float64
	headed bool
}

// NewStreamReader wraps r; the header line is checked lazily on the
// first Next, so construction never blocks on input.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	if r == nil {
		return nil, errors.New("trace: nil reader")
	}
	sc := bufio.NewScanner(r)
	// Well-formed lines are tiny, but cap tokens at 1 MiB so a malformed
	// file fails with ErrTooLong instead of truncating silently.
	sc.Buffer(make([]byte, 0, 256), 1<<20)
	return &StreamReader{sc: sc}, nil
}

// Line returns the 1-based line number of the most recently read line,
// for error context.
func (sr *StreamReader) Line() int { return sr.line }

// Count returns the number of records returned so far.
func (sr *StreamReader) Count() int { return sr.count }

// Next returns the next record, or io.EOF after the last one. Blank
// lines and #-comments are skipped. Any malformed line is an error
// naming the line number; after an error the reader is not usable.
func (sr *StreamReader) Next() (Rec, error) {
	if !sr.headed {
		line, err := sr.scan()
		if err != nil {
			if err == io.EOF {
				return Rec{}, fmt.Errorf("trace: missing header %q", StreamHeader)
			}
			return Rec{}, err
		}
		if line != StreamHeader {
			return Rec{}, fmt.Errorf("trace: line %d: header %q, want %q", sr.line, line, StreamHeader)
		}
		sr.headed = true
	}
	for {
		line, err := sr.scan()
		if err != nil {
			return Rec{}, err
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rec, err := sr.parse(line)
		if err != nil {
			return Rec{}, err
		}
		sr.count++
		return rec, nil
	}
}

// scan reads one raw line, tracking the line number.
func (sr *StreamReader) scan() (string, error) {
	if !sr.sc.Scan() {
		if err := sr.sc.Err(); err != nil {
			return "", fmt.Errorf("trace: line %d: %w", sr.line+1, err)
		}
		return "", io.EOF
	}
	sr.line++
	return sr.sc.Text(), nil
}

// parse decodes and validates one record line.
func (sr *StreamReader) parse(line string) (Rec, error) {
	fail := func(err error) (Rec, error) {
		return Rec{}, fmt.Errorf("trace: line %d: %w", sr.line, err)
	}
	fields := strings.Fields(line)
	if len(fields) != 4 {
		return fail(fmt.Errorf("%d fields, want 4 (at class size home)", len(fields)))
	}
	at, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return fail(fmt.Errorf("arrival time %q: %w", fields[0], err))
	}
	class, err := strconv.Atoi(fields[1])
	if err != nil {
		return fail(fmt.Errorf("class %q: %w", fields[1], err))
	}
	size, err := strconv.ParseInt(fields[2], 10, 64)
	if err != nil {
		return fail(fmt.Errorf("size %q: %w", fields[2], err))
	}
	home, err := strconv.Atoi(fields[3])
	if err != nil {
		return fail(fmt.Errorf("home %q: %w", fields[3], err))
	}
	rec := Rec{At: at, Class: class, SizeBytes: size, Home: home}
	if err := rec.validate(); err != nil {
		return fail(err)
	}
	if at < sr.last {
		return fail(fmt.Errorf("arrival time %g precedes %g", at, sr.last))
	}
	sr.last = at
	return rec, nil
}

// SynthConfig shapes a synthetic streamed trace.
type SynthConfig struct {
	// Jobs is the record count.
	Jobs int
	// Rates are per-class arrival rates in jobs per second (index =
	// class); gaps are exponential at the total rate and each record is
	// marked class k with probability rate_k/total, exactly like
	// workload.PoissonMix.
	Rates []float64
	// Clusters spreads data homes uniformly over [0, Clusters); 0 writes
	// every home as -1 (unspecified).
	Clusters int
	// MeanSizeBytes is the mean input size; 0 writes every size as 0.
	// With SizeCV > 0 sizes are lognormal with that mean and coefficient
	// of variation, otherwise fixed at the mean.
	MeanSizeBytes float64
	SizeCV        float64
	// Seed makes the trace reproducible: same config, same bytes.
	Seed int64
}

// Synthesize streams a deterministic synthetic trace to w and returns
// the number of records written. It holds one record in memory at a
// time, so trace length is bounded by disk, not RAM.
func Synthesize(w io.Writer, cfg SynthConfig) (int, error) {
	if cfg.Jobs <= 0 {
		return 0, fmt.Errorf("trace: synthesize %d jobs", cfg.Jobs)
	}
	if cfg.Clusters < 0 || cfg.MeanSizeBytes < 0 || cfg.SizeCV < 0 {
		return 0, fmt.Errorf("trace: synthesize clusters %d size %g cv %g",
			cfg.Clusters, cfg.MeanSizeBytes, cfg.SizeCV)
	}
	var total float64
	for k, r := range cfg.Rates {
		if r < 0 {
			return 0, fmt.Errorf("trace: synthesize rate[%d] = %g negative", k, r)
		}
		total += r
	}
	if total <= 0 {
		return 0, errors.New("trace: synthesize needs a positive total rate")
	}
	// Lognormal parameters from mean and CV: sigma^2 = ln(1+CV^2),
	// mu = ln(mean) - sigma^2/2.
	var mu, sigma float64
	if cfg.MeanSizeBytes > 0 && cfg.SizeCV > 0 {
		sigma = math.Sqrt(math.Log(1 + cfg.SizeCV*cfg.SizeCV))
		mu = math.Log(cfg.MeanSizeBytes) - sigma*sigma/2
	}
	sw, err := NewStreamWriter(w)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var t float64
	for i := 0; i < cfg.Jobs; i++ {
		t += rng.ExpFloat64() / total
		class := len(cfg.Rates) - 1
		u := rng.Float64() * total
		var cum float64
		for k, r := range cfg.Rates {
			cum += r
			if u < cum {
				class = k
				break
			}
		}
		var size int64
		if cfg.MeanSizeBytes > 0 {
			if cfg.SizeCV > 0 {
				size = int64(math.Exp(mu + sigma*rng.NormFloat64()))
			} else {
				size = int64(cfg.MeanSizeBytes)
			}
		}
		home := -1
		if cfg.Clusters > 0 {
			home = rng.Intn(cfg.Clusters)
		}
		if err := sw.Write(Rec{At: t, Class: class, SizeBytes: size, Home: home}); err != nil {
			return sw.Count(), err
		}
	}
	return sw.Count(), sw.Flush()
}
