// Package matrix implements the small dense linear algebra kernel used by
// the phase-type distribution and queueing model packages: matrix products,
// LU-based solves and inverses, matrix exponentials, and stationary vectors
// of Markov generators.
//
// Matrices are row-major float64 and are small (tens to a few hundreds of
// rows), so clarity wins over blocking or SIMD tricks.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrSingular is returned when a solve or inverse meets a (numerically)
// singular matrix.
var ErrSingular = errors.New("matrix: singular matrix")

// Matrix is a dense row-major matrix. The zero value is an empty matrix;
// use New or Zeros to create one with a shape.
type Matrix struct {
	rows, cols int
	data       []float64
}

// New builds an r×c matrix from row-major data. It panics if the data length
// does not match the shape: that is a programming error, not runtime input.
func New(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("matrix: New(%d,%d) with %d values", r, c, len(data)))
	}
	d := make([]float64, len(data))
	copy(d, data)
	return &Matrix{rows: r, cols: c, data: d}
}

// Zeros returns an r×c zero matrix.
func Zeros(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: Zeros(%d,%d)", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := Zeros(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return New(m.rows, m.cols, m.data)
}

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			fmt.Fprintf(&b, "%10.4g ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func sameShape(a, b *Matrix, op string) {
	if a.rows != b.rows || a.cols != b.cols {
		panic(fmt.Sprintf("matrix: %s shape mismatch %dx%d vs %dx%d", op, a.rows, a.cols, b.rows, b.cols))
	}
}

// Add returns a+b.
func Add(a, b *Matrix) *Matrix {
	sameShape(a, b, "Add")
	out := a.Clone()
	for i := range out.data {
		out.data[i] += b.data[i]
	}
	return out
}

// Sub returns a-b.
func Sub(a, b *Matrix) *Matrix {
	sameShape(a, b, "Sub")
	out := a.Clone()
	for i := range out.data {
		out.data[i] -= b.data[i]
	}
	return out
}

// Scale returns s*a.
func Scale(s float64, a *Matrix) *Matrix {
	out := a.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Mul returns the product a·b.
func Mul(a, b *Matrix) *Matrix {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: Mul inner dims %d vs %d", a.cols, b.rows))
	}
	out := Zeros(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		for k := 0; k < a.cols; k++ {
			aik := a.data[i*a.cols+k]
			if aik == 0 {
				continue
			}
			for j := 0; j < b.cols; j++ {
				out.data[i*out.cols+j] += aik * b.data[k*b.cols+j]
			}
		}
	}
	return out
}

// MulVec returns the column-vector product a·x.
func MulVec(a *Matrix, x []float64) []float64 {
	if a.cols != len(x) {
		panic(fmt.Sprintf("matrix: MulVec dims %d vs %d", a.cols, len(x)))
	}
	out := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		var s float64
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// VecMul returns the row-vector product x·a.
func VecMul(x []float64, a *Matrix) []float64 {
	if a.rows != len(x) {
		panic(fmt.Sprintf("matrix: VecMul dims %d vs %d", len(x), a.rows))
	}
	out := make([]float64, a.cols)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		row := a.data[i*a.cols : (i+1)*a.cols]
		for j, v := range row {
			out[j] += xi * v
		}
	}
	return out
}

// Dot returns the inner product of two equal-length vectors.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("matrix: Dot dims %d vs %d", len(x), len(y)))
	}
	var s float64
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Transpose returns aᵀ.
func Transpose(a *Matrix) *Matrix {
	out := Zeros(a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.Set(j, i, a.At(i, j))
		}
	}
	return out
}

// NormInf returns the maximum absolute row sum.
func NormInf(a *Matrix) float64 {
	var max float64
	for i := 0; i < a.rows; i++ {
		var s float64
		for j := 0; j < a.cols; j++ {
			s += math.Abs(a.At(i, j))
		}
		if s > max {
			max = s
		}
	}
	return max
}

// lu holds an LU factorisation with partial pivoting: PA = LU.
type lu struct {
	m     *Matrix // packed L (unit diagonal, below) and U (on and above)
	pivot []int
}

func factorize(a *Matrix) (*lu, error) {
	if a.rows != a.cols {
		return nil, fmt.Errorf("matrix: factorize non-square %dx%d", a.rows, a.cols)
	}
	n := a.rows
	m := a.Clone()
	pivot := make([]int, n)
	for i := range pivot {
		pivot[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest magnitude in column k at/below the diagonal.
		p, maxAbs := k, math.Abs(m.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(m.At(i, k)); v > maxAbs {
				p, maxAbs = i, v
			}
		}
		if maxAbs == 0 {
			return nil, ErrSingular
		}
		if p != k {
			pivot[k], pivot[p] = pivot[p], pivot[k]
			for j := 0; j < n; j++ {
				vk, vp := m.At(k, j), m.At(p, j)
				m.Set(k, j, vp)
				m.Set(p, j, vk)
			}
		}
		inv := 1 / m.At(k, k)
		for i := k + 1; i < n; i++ {
			l := m.At(i, k) * inv
			m.Set(i, k, l)
			if l == 0 {
				continue
			}
			for j := k + 1; j < n; j++ {
				m.Set(i, j, m.At(i, j)-l*m.At(k, j))
			}
		}
	}
	return &lu{m: m, pivot: pivot}, nil
}

// solveVec solves Ax=b given the factorisation.
func (f *lu) solveVec(b []float64) []float64 {
	n := f.m.rows
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			x[i] -= f.m.At(i, j) * x[j]
		}
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		for j := i + 1; j < n; j++ {
			x[i] -= f.m.At(i, j) * x[j]
		}
		x[i] /= f.m.At(i, i)
	}
	return x
}

// Solve returns x with a·x = b (b as a column vector).
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.rows != len(b) {
		return nil, fmt.Errorf("matrix: Solve dims %dx%d vs %d", a.rows, a.cols, len(b))
	}
	f, err := factorize(a)
	if err != nil {
		return nil, err
	}
	return f.solveVec(b), nil
}

// Inverse returns a⁻¹.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := factorize(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	out := Zeros(n, n)
	e := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.solveVec(e)
		for i := 0; i < n; i++ {
			out.Set(i, j, col[i])
		}
	}
	return out, nil
}

// Exp returns the matrix exponential e^a computed by scaling-and-squaring
// with a Taylor core. Intended for the moderate-norm generators that appear
// in phase-type models.
func Exp(a *Matrix) *Matrix {
	if a.rows != a.cols {
		panic(fmt.Sprintf("matrix: Exp non-square %dx%d", a.rows, a.cols))
	}
	norm := NormInf(a)
	squarings := 0
	if norm > 0.5 {
		squarings = int(math.Ceil(math.Log2(norm / 0.5)))
	}
	scaled := Scale(math.Ldexp(1, -squarings), a)
	// Taylor series on the scaled matrix; norm <= 0.5 so it converges fast.
	n := a.rows
	sum := Identity(n)
	term := Identity(n)
	for k := 1; k <= 24; k++ {
		term = Scale(1/float64(k), Mul(term, scaled))
		sum = Add(sum, term)
		if NormInf(term) < 1e-16 {
			break
		}
	}
	for s := 0; s < squarings; s++ {
		sum = Mul(sum, sum)
	}
	return sum
}

// StationaryVector returns the probability vector π with π·Q = 0 and
// Σπ = 1 for an irreducible CTMC generator Q (rows sum to zero).
// It solves the linear system with the normalisation replacing one equation.
func StationaryVector(q *Matrix) ([]float64, error) {
	if q.rows != q.cols {
		return nil, fmt.Errorf("matrix: StationaryVector non-square %dx%d", q.rows, q.cols)
	}
	n := q.rows
	// Build Aᵀ from Qᵀ with the last row replaced by the normalisation.
	a := Transpose(q)
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	pi, err := Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("stationary vector: %w", err)
	}
	// Clamp small negatives from round-off and renormalise.
	var sum float64
	for i, v := range pi {
		if v < 0 && v > -1e-9 {
			pi[i] = 0
			v = 0
		}
		sum += v
	}
	if sum <= 0 {
		return nil, fmt.Errorf("stationary vector: non-positive mass %g", sum)
	}
	for i := range pi {
		pi[i] /= sum
	}
	return pi, nil
}

// Ones returns a length-n vector of ones.
func Ones(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = 1
	}
	return v
}
