package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func matricesAlmostEqual(t *testing.T, got, want *Matrix, tol float64) {
	t.Helper()
	if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows(), got.Cols(), want.Rows(), want.Cols())
	}
	for i := 0; i < got.Rows(); i++ {
		for j := 0; j < got.Cols(); j++ {
			if !almostEqual(got.At(i, j), want.At(i, j), tol) {
				t.Fatalf("at (%d,%d): got %g, want %g\ngot:\n%vwant:\n%v", i, j, got.At(i, j), want.At(i, j), got, want)
			}
		}
	}
}

func TestNewPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(2, 2, []float64{1, 2, 3})
}

func TestBasicOps(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 3, 4})
	b := New(2, 2, []float64{5, 6, 7, 8})
	matricesAlmostEqual(t, Add(a, b), New(2, 2, []float64{6, 8, 10, 12}), 0)
	matricesAlmostEqual(t, Sub(b, a), New(2, 2, []float64{4, 4, 4, 4}), 0)
	matricesAlmostEqual(t, Scale(2, a), New(2, 2, []float64{2, 4, 6, 8}), 0)
	matricesAlmostEqual(t, Mul(a, b), New(2, 2, []float64{19, 22, 43, 50}), 0)
	matricesAlmostEqual(t, Transpose(a), New(2, 2, []float64{1, 3, 2, 4}), 0)
}

func TestMulRectangular(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := New(3, 2, []float64{7, 8, 9, 10, 11, 12})
	matricesAlmostEqual(t, Mul(a, b), New(2, 2, []float64{58, 64, 139, 154}), 1e-12)
}

func TestVectorOps(t *testing.T) {
	a := New(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := MulVec(a, []float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
	got = VecMul([]float64{1, 1}, a)
	if got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Fatalf("VecMul = %v", got)
	}
	if d := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); d != 32 {
		t.Fatalf("Dot = %g", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(1, 2, []float64{1, 2})
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone aliases the original data")
	}
	r := a.Row(0)
	r[0] = 99
	if a.At(0, 0) != 1 {
		t.Fatal("Row aliases the original data")
	}
}

func TestSolve(t *testing.T) {
	a := New(3, 3, []float64{
		2, 1, -1,
		-3, -1, 2,
		-2, 1, 2,
	})
	x, err := Solve(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-10) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a := New(2, 2, []float64{1, 2, 2, 4})
	if _, err := Solve(a, []float64{1, 1}); err == nil {
		t.Fatal("expected error for singular matrix")
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Zero on the leading diagonal forces a row swap.
	a := New(2, 2, []float64{0, 1, 1, 0})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 7, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("x = %v, want [7 3]", x)
	}
}

func TestInverse(t *testing.T) {
	a := New(2, 2, []float64{4, 7, 2, 6})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	matricesAlmostEqual(t, Mul(a, inv), Identity(2), 1e-12)
	matricesAlmostEqual(t, Mul(inv, a), Identity(2), 1e-12)
}

func TestExpIdentityAndZero(t *testing.T) {
	z := Zeros(3, 3)
	matricesAlmostEqual(t, Exp(z), Identity(3), 1e-14)
	// exp(diag(a)) = diag(e^a)
	d := Zeros(2, 2)
	d.Set(0, 0, 1)
	d.Set(1, 1, -2)
	e := Exp(d)
	if !almostEqual(e.At(0, 0), math.E, 1e-10) || !almostEqual(e.At(1, 1), math.Exp(-2), 1e-10) {
		t.Fatalf("Exp diag = \n%v", e)
	}
	if !almostEqual(e.At(0, 1), 0, 1e-12) {
		t.Fatal("off-diagonal nonzero")
	}
}

func TestExpNilpotent(t *testing.T) {
	// For strictly upper triangular N, exp(N) = I + N (+ N^2/2 ... here N^2=0).
	n := Zeros(2, 2)
	n.Set(0, 1, 3)
	e := Exp(n)
	want := New(2, 2, []float64{1, 3, 0, 1})
	matricesAlmostEqual(t, e, want, 1e-12)
}

func TestExpGenerator(t *testing.T) {
	// Two-state CTMC generator; rows of exp(Qt) must be probability vectors.
	q := New(2, 2, []float64{-2, 2, 3, -3})
	p := Exp(Scale(0.7, q))
	for i := 0; i < 2; i++ {
		var sum float64
		for j := 0; j < 2; j++ {
			v := p.At(i, j)
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("P(%d,%d) = %g out of [0,1]", i, j, v)
			}
			sum += v
		}
		if !almostEqual(sum, 1, 1e-10) {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
	// Known closed form: for Q = [[-a,a],[b,-b]], P12(t) = a/(a+b)(1-e^{-(a+b)t}).
	a, b, tt := 2.0, 3.0, 0.7
	want := a / (a + b) * (1 - math.Exp(-(a+b)*tt))
	if !almostEqual(p.At(0, 1), want, 1e-10) {
		t.Fatalf("P12 = %g, want %g", p.At(0, 1), want)
	}
}

func TestStationaryVector(t *testing.T) {
	// Birth-death chain with λ=1, µ=2 on 3 states: π ∝ (1, 1/2, 1/4).
	q := New(3, 3, []float64{
		-1, 1, 0,
		2, -3, 1,
		0, 2, -2,
	})
	pi, err := StationaryVector(q)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4.0 / 7, 2.0 / 7, 1.0 / 7}
	for i := range want {
		if !almostEqual(pi[i], want[i], 1e-10) {
			t.Fatalf("pi = %v, want %v", pi, want)
		}
	}
}

func TestNormInf(t *testing.T) {
	a := New(2, 2, []float64{1, -5, 2, 2})
	if got := NormInf(a); got != 6 {
		t.Fatalf("NormInf = %g, want 6", got)
	}
}

func TestOnes(t *testing.T) {
	v := Ones(3)
	if len(v) != 3 || v[0] != 1 || v[2] != 1 {
		t.Fatalf("Ones = %v", v)
	}
}

// Property: Solve then multiply recovers b for random well-conditioned systems.
func TestPropertySolveRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := Zeros(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			// Diagonal dominance keeps the system well conditioned.
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		back := MulVec(a, x)
		for i := range b {
			if !almostEqual(back[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: exp(A)·exp(-A) = I for random moderate matrices.
func TestPropertyExpInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		a := Zeros(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		p := Mul(Exp(a), Exp(Scale(-1, a)))
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if !almostEqual(p.At(i, j), want, 1e-7) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMul32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := Zeros(32, 32)
	c := Zeros(32, 32)
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			a.Set(i, j, rng.Float64())
			c.Set(i, j, rng.Float64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(a, c)
	}
}

func BenchmarkExp16(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := Zeros(16, 16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Exp(a)
	}
}
