// Connected components as a dataflow job: iterative min-label propagation
// over an undirected edge list, the way GraphX's connectedComponents lowers
// onto Spark. Like PageRank it builds deep ShuffleMap chains (one per
// propagation round), and its output degrades gracefully under task
// dropping: dropped edges can only split components, never merge them, so
// the component-count estimate is biased upward in a measurable way.
package analytics

import (
	"fmt"
	"strconv"

	"dias/internal/engine"
)

// labelOf carries the current component label of vertex Key.
type labelOf struct{ Label int64 }

// neighbor marks an undirected adjacency record: vertex Key touches Peer.
type neighbor struct{ Peer int64 }

// ConnectedComponentsJob builds a job running `rounds` of min-label
// propagation over an undirected edge list:
//
//	expand    emit both directions of every edge, keyed by endpoint
//	seed      label(v) = min(v, neighbors) and push labels along edges
//	round-k   label(v) = min(label(v), incoming); push when it shrank
//	collect   deliver (vertex, label) records
//
// With rounds >= the graph diameter every vertex of a component carries
// the component's minimum vertex id.
func ConnectedComponentsJob(name string, edges engine.Dataset, buckets, rounds int, sizeBytes int64) *engine.Job {
	if rounds < 1 {
		rounds = 1
	}
	stages := make([]engine.Stage, 0, rounds+3)
	stages = append(stages,
		engine.Stage{
			Name: "expand", Kind: engine.ShuffleMap, OutPartitions: buckets,
			Compute: ccExpand,
		},
		engine.Stage{
			Name: "seed", Kind: engine.ShuffleMap, OutPartitions: buckets,
			Deps: []int{0}, Compute: ccSeed,
		},
	)
	for i := 1; i <= rounds; i++ {
		stages = append(stages, engine.Stage{
			Name: "round-" + strconv.Itoa(i), Kind: engine.ShuffleMap,
			OutPartitions: buckets, Deps: []int{i},
			Compute: ccRound,
		})
	}
	stages = append(stages, engine.Stage{
		Name: "collect", Kind: engine.Result, Deps: []int{rounds + 1},
		Compute: ccCollect,
	})
	return &engine.Job{Name: name, Input: edges, SizeBytes: sizeBytes, Stages: stages}
}

// ccExpand emits both directions of each edge keyed by endpoint, so every
// vertex sees its full undirected neighborhood after the shuffle.
func ccExpand(in []engine.Record) []engine.Record {
	out := make([]engine.Record, 0, 2*len(in))
	for _, r := range in {
		e, ok := r.Value.(Edge)
		if !ok || e.U == e.V {
			continue
		}
		out = append(out,
			engine.Record{Key: vertexKey(e.U), Value: neighbor{Peer: e.V}},
			engine.Record{Key: vertexKey(e.V), Value: neighbor{Peer: e.U}},
		)
	}
	return out
}

// ccGroup splits a partition into adjacency and the smallest incoming
// label per vertex (or the vertex's own id when none arrived yet).
func ccGroup(in []engine.Record) (adj map[string][]int64, label map[string]int64) {
	adj = make(map[string][]int64)
	label = make(map[string]int64)
	seed := func(key string) {
		if _, ok := label[key]; ok {
			return
		}
		v, err := strconv.ParseInt(key, 10, 64)
		if err != nil {
			v = 0
		}
		label[key] = v
	}
	for _, r := range in {
		switch v := r.Value.(type) {
		case neighbor:
			adj[r.Key] = append(adj[r.Key], v.Peer)
			seed(r.Key)
		case labelOf:
			seed(r.Key)
			if v.Label < label[r.Key] {
				label[r.Key] = v.Label
			}
		}
	}
	return adj, label
}

// push emits the vertex's label to itself (carrying state forward) and to
// all neighbors, plus the adjacency for the next round.
func ccPush(adj map[string][]int64, label map[string]int64) []engine.Record {
	keys := make([]string, 0, len(label))
	for k := range label {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var out []engine.Record
	for _, k := range keys {
		l := label[k]
		out = append(out, engine.Record{Key: k, Value: labelOf{Label: l}})
		for _, p := range adj[k] {
			out = append(out,
				engine.Record{Key: vertexKey(p), Value: labelOf{Label: l}},
				engine.Record{Key: k, Value: neighbor{Peer: p}},
			)
		}
	}
	return out
}

// ccSeed initializes label(v) = v and performs the first propagation.
func ccSeed(in []engine.Record) []engine.Record {
	adj, label := ccGroup(in)
	return ccPush(adj, label)
}

// ccRound takes the minimum of incoming labels and propagates again.
func ccRound(in []engine.Record) []engine.Record {
	adj, label := ccGroup(in)
	return ccPush(adj, label)
}

// ccCollect keeps one label record per vertex.
func ccCollect(in []engine.Record) []engine.Record {
	_, label := ccGroup(in)
	keys := make([]string, 0, len(label))
	for k := range label {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := make([]engine.Record, 0, len(keys))
	for _, k := range keys {
		out = append(out, engine.Record{Key: k, Value: labelOf{Label: label[k]}})
	}
	return out
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// ComponentLabels extracts the vertex->label map from a job result.
func ComponentLabels(output []engine.Record) (map[int64]int64, error) {
	out := make(map[int64]int64, len(output))
	for _, r := range output {
		lo, ok := r.Value.(labelOf)
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(r.Key, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("analytics: bad vertex key %q", r.Key)
		}
		if cur, seen := out[v]; !seen || lo.Label < cur {
			out[v] = lo.Label
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analytics: no label records in %d outputs", len(output))
	}
	return out, nil
}

// ComponentCount returns the number of distinct labels.
func ComponentCount(labels map[int64]int64) int {
	set := make(map[int64]bool, len(labels))
	for _, l := range labels {
		set[l] = true
	}
	return len(set)
}

// ExactComponents computes the reference labeling with union-find: every
// vertex mapped to the minimum vertex id of its component.
func ExactComponents(edges []Edge) map[int64]int64 {
	parent := make(map[int64]int64)
	var find func(int64) int64
	find = func(x int64) int64 {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b int64) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Root at the smaller id so labels match min-propagation.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for _, e := range edges {
		union(e.U, e.V)
	}
	out := make(map[int64]int64, len(parent))
	for v := range parent {
		out[v] = find(v)
	}
	return out
}
