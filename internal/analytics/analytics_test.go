package analytics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dias/internal/cluster"
	"dias/internal/engine"
	"dias/internal/simtime"
)

// runJob executes a job to completion on a fresh noise-free rig and returns
// the result.
func runJob(t *testing.T, job *engine.Job, drops []float64) engine.JobResult {
	t.Helper()
	sim := simtime.New()
	clu, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(sim, clu, nil, engine.CostModel{TaskOverheadSec: 0.1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	var res engine.JobResult
	done := false
	_, err = eng.Submit(job, engine.SubmitOptions{
		DropRatios: drops,
		OnComplete: func(r engine.JobResult) { res = r; done = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !done {
		t.Fatal("job did not complete")
	}
	return res
}

func postsDataset(parts int, posts ...string) engine.Dataset {
	d := make(engine.Dataset, parts)
	for i, p := range posts {
		d[i%parts] = append(d[i%parts], engine.Record{Key: "post", Value: p})
	}
	return d
}

func TestWordPopularityExact(t *testing.T) {
	corpus := postsDataset(3,
		"go queue priority go",
		"spark drops tasks spark spark",
		"go spark",
	)
	job := WordPopularityJob("wc", corpus, 2, 1000)
	res := runJob(t, job, nil)
	counts := WordCounts(res.Output)
	want := map[string]float64{"go": 3, "queue": 1, "priority": 1, "spark": 4, "drops": 1, "tasks": 1}
	if len(counts) != len(want) {
		t.Fatalf("counts = %v, want %v", counts, want)
	}
	for w, c := range want {
		if counts[w] != c {
			t.Fatalf("counts[%s] = %g, want %g", w, counts[w], c)
		}
	}
}

func TestTopWords(t *testing.T) {
	counts := map[string]float64{"a": 5, "b": 10, "c": 5, "d": 1}
	top := TopWords(counts, 3)
	if top[0] != "b" || top[1] != "a" || top[2] != "c" {
		t.Fatalf("top = %v", top)
	}
	if got := TopWords(counts, 100); len(got) != 4 {
		t.Fatalf("TopWords over-capacity = %v", got)
	}
}

func TestScaleCounts(t *testing.T) {
	in := map[string]float64{"a": 8}
	out := ScaleCounts(in, 0.8)
	if math.Abs(out["a"]-10) > 1e-12 {
		t.Fatalf("scaled = %g, want 10", out["a"])
	}
	// factor <= 0 leaves values untouched but still copies.
	same := ScaleCounts(in, 0)
	if same["a"] != 8 {
		t.Fatalf("unscaled = %g", same["a"])
	}
	same["a"] = 99
	if in["a"] != 8 {
		t.Fatal("ScaleCounts aliased its input")
	}
}

func TestWordAccuracyMAPE(t *testing.T) {
	exact := map[string]float64{"a": 100, "b": 50}
	approx := map[string]float64{"a": 90, "b": 55}
	got, err := WordAccuracyMAPE(exact, approx, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-12 { // (10% + 10%) / 2
		t.Fatalf("MAPE = %g, want 10", got)
	}
	if _, err := WordAccuracyMAPE(map[string]float64{}, approx, 5); err == nil {
		t.Fatal("expected error for empty exact result")
	}
}

func TestWordCountWithDropUnderestimates(t *testing.T) {
	// 10 identical partitions; dropping 30% of map tasks must scale counts
	// down by exactly the dropped fraction (before estimator correction).
	posts := make([]string, 10)
	for i := range posts {
		posts[i] = "alpha beta alpha"
	}
	corpus := postsDataset(10, posts...)
	job := WordPopularityJob("wc", corpus, 2, 1000)
	res := runJob(t, job, []float64{0.3})
	counts := WordCounts(res.Output)
	// ⌈10·0.7⌉ = 7 executed map tasks → alpha = 14, beta = 7.
	if counts["alpha"] != 14 || counts["beta"] != 7 {
		t.Fatalf("counts = %v, want alpha=14 beta=7", counts)
	}
	// Estimator correction recovers the exact values.
	scaled := ScaleCounts(counts, 0.7)
	if math.Abs(scaled["alpha"]-20) > 1e-9 || math.Abs(scaled["beta"]-10) > 1e-9 {
		t.Fatalf("scaled = %v", scaled)
	}
}

// triangleGraph returns a small graph with a known triangle count:
// a K4 (4 triangles) plus a path that adds none.
func triangleGraph() []Edge {
	return []Edge{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // K4
		{3, 4}, {4, 5}, // tail
	}
}

func TestExactTriangles(t *testing.T) {
	if got := ExactTriangles(triangleGraph()); got != 4 {
		t.Fatalf("K4+tail = %d triangles, want 4", got)
	}
	// Duplicates, reversed edges and self-loops must not change the count.
	noisy := append([]Edge{}, triangleGraph()...)
	noisy = append(noisy, Edge{1, 0}, Edge{2, 0}, Edge{3, 3})
	if got := ExactTriangles(noisy); got != 4 {
		t.Fatalf("noisy graph = %d triangles, want 4", got)
	}
	if got := ExactTriangles(nil); got != 0 {
		t.Fatalf("empty graph = %d", got)
	}
}

func TestTriangleCountJobExact(t *testing.T) {
	edges := triangleGraph()
	job := TriangleCountJob("tc", EdgeDataset(edges, 3), 4, 1000)
	res := runJob(t, job, nil)
	got, err := TriangleCount(res.Output)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4 {
		t.Fatalf("triangle count = %g, want 4", got)
	}
}

func TestTriangleCountJobLargerGraph(t *testing.T) {
	// Random graph; engine job must agree with the exact counter.
	rng := rand.New(rand.NewSource(3))
	var edges []Edge
	const n = 40
	for i := 0; i < 300; i++ {
		u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
		edges = append(edges, Edge{u, v})
	}
	want := float64(ExactTriangles(edges))
	job := TriangleCountJob("tc", EdgeDataset(edges, 5), 6, 1000)
	res := runJob(t, job, nil)
	got, err := TriangleCount(res.Output)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("triangle count = %g, want %g", got, want)
	}
}

func TestTriangleCountJobStructure(t *testing.T) {
	job := TriangleCountJob("tc", EdgeDataset(triangleGraph(), 2), 4, 1)
	// The paper's plan: six ShuffleMap stages and one Result stage (§5.1).
	if len(job.Stages) != 7 {
		t.Fatalf("stages = %d, want 7", len(job.Stages))
	}
	for i, s := range job.Stages[:6] {
		if s.Kind != engine.ShuffleMap {
			t.Fatalf("stage %d kind = %v, want ShuffleMap", i, s.Kind)
		}
	}
	if job.Stages[6].Kind != engine.Result {
		t.Fatal("last stage is not Result")
	}
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleDropLosesTriangles(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var edges []Edge
	for i := 0; i < 400; i++ {
		edges = append(edges, Edge{int64(rng.Intn(30)), int64(rng.Intn(30))})
	}
	exact := float64(ExactTriangles(edges))
	if exact == 0 {
		t.Fatal("test graph has no triangles")
	}
	job := TriangleCountJob("tc", EdgeDataset(edges, 10), 6, 1000)
	res := runJob(t, job, []float64{0.4, 0, 0, 0, 0, 0})
	raw, err := TriangleCount(res.Output)
	if err != nil {
		t.Fatal(err)
	}
	if raw >= exact {
		t.Fatalf("raw approximate count %g not below exact %g", raw, exact)
	}
	// The scaled estimate must be closer to exact than the raw count.
	est := ScaleTriangleEstimate(raw, []float64{0.4})
	if math.Abs(est-exact) >= math.Abs(raw-exact) {
		t.Fatalf("estimator did not improve: raw %g, est %g, exact %g", raw, est, exact)
	}
}

func TestScaleTriangleEstimate(t *testing.T) {
	got := ScaleTriangleEstimate(50, []float64{0.5, 0.2})
	want := 50 / (0.5 * 0.8)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("estimate = %g, want %g", got, want)
	}
	if ScaleTriangleEstimate(10, nil) != 10 {
		t.Fatal("no-drop estimate changed")
	}
	if ScaleTriangleEstimate(10, []float64{1}) != 10 {
		t.Fatal("theta=1 must be ignored (nothing sampled)")
	}
}

func TestRelativeErrorPct(t *testing.T) {
	if got := RelativeErrorPct(200, 170); math.Abs(got-15) > 1e-12 {
		t.Fatalf("err = %g, want 15", got)
	}
	if got := RelativeErrorPct(0, 5); got != 0 {
		t.Fatalf("zero-exact err = %g", got)
	}
}

func TestEdgeHelpers(t *testing.T) {
	e := Edge{5, 2}.Canonical()
	if e.U != 2 || e.V != 5 {
		t.Fatalf("canonical = %+v", e)
	}
	parsed, ok := ParseEdgeKey("2,5")
	if !ok || parsed != e {
		t.Fatalf("parse = %+v, %v", parsed, ok)
	}
	if _, ok := ParseEdgeKey("bogus"); ok {
		t.Fatal("parsed bogus key")
	}
	if _, ok := ParseEdgeKey("a,b"); ok {
		t.Fatal("parsed non-numeric key")
	}
}

// Property: the dataflow triangle count always matches the exact counter on
// random graphs when nothing is dropped.
func TestPropertyTriangleJobMatchesExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(20)
		m := 10 + rng.Intn(100)
		var edges []Edge
		for i := 0; i < m; i++ {
			edges = append(edges, Edge{int64(rng.Intn(n)), int64(rng.Intn(n))})
		}
		want := float64(ExactTriangles(edges))

		sim := simtime.New()
		clu, err := cluster.New(sim, cluster.DefaultConfig())
		if err != nil {
			return false
		}
		eng, err := engine.New(sim, clu, nil, engine.CostModel{TaskOverheadSec: 0.01}, seed)
		if err != nil {
			return false
		}
		job := TriangleCountJob("tc", EdgeDataset(edges, 3), 4, 100)
		var got float64
		ok := false
		if _, err := eng.Submit(job, engine.SubmitOptions{OnComplete: func(r engine.JobResult) {
			got, err = TriangleCount(r.Output)
			ok = err == nil
		}}); err != nil {
			return false
		}
		sim.Run()
		return ok && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
