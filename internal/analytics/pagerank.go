// PageRank as a dataflow job: the third analytics workload, exercising
// deep iterative stage chains (each iteration is one ShuffleMap stage) the
// way GraphX lowers iterative graph algorithms onto Spark. The paper's
// engine supports arbitrary DAGs; PageRank stresses per-stage dropping on
// long chains beyond the triangle-count pipeline.
package analytics

import (
	"fmt"
	"sort"
	"strconv"

	"dias/internal/engine"
)

// Damping is the standard PageRank damping factor.
const Damping = 0.85

// adjTo marks an adjacency record: vertex Key links to Dst.
type adjTo struct{ Dst int64 }

// contrib carries rank mass flowing to vertex Key this iteration.
type contrib struct{ Mass float64 }

// rankOf is the final rank of vertex Key.
type rankOf struct{ Rank float64 }

// PageRankJob builds a job computing `iters` PageRank iterations over a
// directed edge list:
//
//	init         re-key edges by source vertex
//	distribute   group adjacency per vertex, spread rank_0 = 1 along edges
//	iter-k       rank_k = (1-d) + d·Σ incoming mass; redistribute
//	collect      deliver rank_iters records
//
// Adjacency records pass through every iteration stage so each vertex
// keeps its out-edges co-located with its incoming mass.
func PageRankJob(name string, edges engine.Dataset, buckets, iters int, sizeBytes int64) *engine.Job {
	if iters < 1 {
		iters = 1
	}
	stages := make([]engine.Stage, 0, iters+3)
	stages = append(stages,
		engine.Stage{
			Name: "init", Kind: engine.ShuffleMap, OutPartitions: buckets,
			Compute: prInit,
		},
		engine.Stage{
			Name: "distribute", Kind: engine.ShuffleMap, OutPartitions: buckets,
			Deps: []int{0}, Compute: prDistribute,
		},
	)
	for i := 1; i <= iters; i++ {
		final := i == iters
		stages = append(stages, engine.Stage{
			Name: "iter-" + strconv.Itoa(i), Kind: engine.ShuffleMap,
			OutPartitions: buckets, Deps: []int{i},
			Compute: prIteration(final),
		})
	}
	stages = append(stages, engine.Stage{
		Name: "collect", Kind: engine.Result, Deps: []int{iters + 1},
		Compute: prCollect,
	})
	return &engine.Job{Name: name, Input: edges, SizeBytes: sizeBytes, Stages: stages}
}

func vertexKey(v int64) string { return strconv.FormatInt(v, 10) }

// prInit re-keys edges by their source vertex so the next stage sees full
// out-neighborhoods. Sinks (vertices with only in-edges) are announced via
// an empty adjacency marker so they exist in every later stage.
func prInit(in []engine.Record) []engine.Record {
	out := make([]engine.Record, 0, 2*len(in))
	for _, r := range in {
		e, ok := r.Value.(Edge)
		if !ok {
			continue
		}
		out = append(out,
			engine.Record{Key: vertexKey(e.U), Value: adjTo{Dst: e.V}},
			engine.Record{Key: vertexKey(e.V), Value: contrib{Mass: 0}},
		)
	}
	return out
}

// prDistribute spreads every vertex's initial rank 1 uniformly along its
// out-edges and forwards the adjacency (plus zero-mass markers so sinks
// stay visible).
func prDistribute(in []engine.Record) []engine.Record {
	adj, mass := groupVertexRecords(in)
	var out []engine.Record
	for _, k := range sortedVertexKeys(adj, mass) {
		outs := adj[k]
		if len(outs) > 0 {
			share := 1.0 / float64(len(outs))
			for _, dst := range outs {
				out = append(out, engine.Record{Key: vertexKey(dst), Value: contrib{Mass: share}})
			}
			for _, dst := range outs {
				out = append(out, engine.Record{Key: k, Value: adjTo{Dst: dst}})
			}
		} else {
			out = append(out, engine.Record{Key: k, Value: contrib{Mass: 0}})
		}
	}
	return out
}

// prIteration sums incoming mass into rank_k = (1-d) + d·mass and either
// redistributes it (intermediate iterations) or emits rank records (final
// iteration).
func prIteration(final bool) engine.TaskFunc {
	return func(in []engine.Record) []engine.Record {
		adj, mass := groupVertexRecords(in)
		var out []engine.Record
		for _, k := range sortedVertexKeys(adj, mass) {
			rank := (1 - Damping) + Damping*mass[k]
			outs := adj[k]
			if final {
				out = append(out, engine.Record{Key: k, Value: rankOf{Rank: rank}})
				continue
			}
			if len(outs) > 0 {
				share := rank / float64(len(outs))
				for _, dst := range outs {
					out = append(out, engine.Record{Key: vertexKey(dst), Value: contrib{Mass: share}})
				}
				for _, dst := range outs {
					out = append(out, engine.Record{Key: k, Value: adjTo{Dst: dst}})
				}
			} else {
				out = append(out, engine.Record{Key: k, Value: contrib{Mass: 0}})
			}
		}
		return out
	}
}

// groupVertexRecords splits a partition into adjacency lists and summed
// incoming mass, keyed by vertex.
func groupVertexRecords(in []engine.Record) (map[string][]int64, map[string]float64) {
	adj := make(map[string][]int64)
	mass := make(map[string]float64)
	for _, r := range in {
		switch v := r.Value.(type) {
		case adjTo:
			adj[r.Key] = append(adj[r.Key], v.Dst)
		case contrib:
			mass[r.Key] += v.Mass
		}
	}
	return adj, mass
}

// sortedVertexKeys returns the union of both key sets in stable order.
func sortedVertexKeys(adj map[string][]int64, mass map[string]float64) []string {
	keys := make(map[string]bool, len(adj)+len(mass))
	for k := range adj {
		keys[k] = true
	}
	for k := range mass {
		keys[k] = true
	}
	out := make([]string, 0, len(keys))
	for k := range keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// prCollect passes rank records to the driver.
func prCollect(in []engine.Record) []engine.Record {
	out := make([]engine.Record, 0, len(in))
	for _, r := range in {
		if _, ok := r.Value.(rankOf); ok {
			out = append(out, r)
		}
	}
	return out
}

// PageRanks extracts the vertex->rank map from a PageRankJob result.
func PageRanks(output []engine.Record) (map[int64]float64, error) {
	out := make(map[int64]float64, len(output))
	for _, r := range output {
		ro, ok := r.Value.(rankOf)
		if !ok {
			continue
		}
		v, err := strconv.ParseInt(r.Key, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("analytics: bad vertex key %q", r.Key)
		}
		out[v] += ro.Rank
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analytics: no rank records in %d outputs", len(output))
	}
	return out, nil
}

// ExactPageRank runs the same iteration in memory as the reference for
// accuracy checks: rank_{k+1}(v) = (1-d) + d·Σ_{u→v} rank_k(u)/outdeg(u),
// with rank_0 = 1 and dangling mass dropped (as the job does).
func ExactPageRank(edges []Edge, iters int) map[int64]float64 {
	adj := make(map[int64][]int64)
	vertices := make(map[int64]bool)
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		vertices[e.U] = true
		vertices[e.V] = true
	}
	rank := make(map[int64]float64, len(vertices))
	for v := range vertices {
		rank[v] = 1
	}
	for i := 0; i < iters; i++ {
		next := make(map[int64]float64, len(vertices))
		for u, outs := range adj {
			if len(outs) == 0 {
				continue
			}
			share := rank[u] / float64(len(outs))
			for _, v := range outs {
				next[v] += share
			}
		}
		for v := range vertices {
			rank[v] = (1 - Damping) + Damping*next[v]
		}
	}
	return rank
}
