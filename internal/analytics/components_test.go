package analytics

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dias/internal/cluster"
	"dias/internal/engine"
	"dias/internal/simtime"
)

// runCCJob executes a connected-components job to completion on an idle
// stack and returns the vertex labels.
func runCCJob(t *testing.T, edges []Edge, parts, buckets, rounds int, drops []float64) map[int64]int64 {
	t.Helper()
	sim := simtime.New()
	clu, err := cluster.New(sim, cluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(sim, clu, nil, engine.CostModel{TaskOverheadSec: 0.01}, 1)
	if err != nil {
		t.Fatal(err)
	}
	job := ConnectedComponentsJob("cc", EdgeDataset(edges, parts), buckets, rounds, 1<<20)
	var out []engine.Record
	done := false
	if _, err := eng.Submit(job, engine.SubmitOptions{
		DropRatios: drops,
		OnComplete: func(r engine.JobResult) { out = r.Output; done = true },
	}); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	if !done {
		t.Fatal("cc job did not complete")
	}
	labels, err := ComponentLabels(out)
	if err != nil {
		t.Fatal(err)
	}
	return labels
}

func TestConnectedComponentsTwoIslands(t *testing.T) {
	// Two triangles: {0,1,2} and {10,11,12}.
	edges := []Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
		{U: 10, V: 11}, {U: 11, V: 12}, {U: 12, V: 10},
	}
	labels := runCCJob(t, edges, 3, 4, 3, nil)
	if got := ComponentCount(labels); got != 2 {
		t.Fatalf("%d components, want 2 (labels %v)", got, labels)
	}
	for _, v := range []int64{0, 1, 2} {
		if labels[v] != 0 {
			t.Errorf("vertex %d labeled %d, want 0", v, labels[v])
		}
	}
	for _, v := range []int64{10, 11, 12} {
		if labels[v] != 10 {
			t.Errorf("vertex %d labeled %d, want 10", v, labels[v])
		}
	}
}

func TestConnectedComponentsChainNeedsDiameterRounds(t *testing.T) {
	// A path 0-1-2-3-4-5: label 0 needs 5 rounds to reach vertex 5.
	var edges []Edge
	for v := int64(0); v < 5; v++ {
		edges = append(edges, Edge{U: v, V: v + 1})
	}
	short := runCCJob(t, edges, 2, 3, 2, nil)
	if short[5] == 0 {
		t.Fatal("label 0 reached the chain end in only 2 rounds")
	}
	full := runCCJob(t, edges, 2, 3, 5, nil)
	want := ExactComponents(edges)
	for v, l := range full {
		if l != want[v] {
			t.Fatalf("vertex %d labeled %d, want %d", v, l, want[v])
		}
	}
	if got := ComponentCount(full); got != 1 {
		t.Fatalf("%d components, want 1", got)
	}
}

func TestConnectedComponentsMatchesExactOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		n := 12 + rng.Intn(10)
		var edges []Edge
		for i := 0; i < n; i++ {
			u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
			if u != v {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
		if len(edges) == 0 {
			continue
		}
		// Rounds = vertex count covers any diameter.
		labels := runCCJob(t, edges, 3, 4, n, nil)
		want := ExactComponents(edges)
		if len(labels) != len(want) {
			t.Fatalf("trial %d: %d labeled vertices, want %d", trial, len(labels), len(want))
		}
		for v, l := range labels {
			if l != want[v] {
				t.Fatalf("trial %d: vertex %d labeled %d, want %d", trial, v, l, want[v])
			}
		}
	}
}

func TestConnectedComponentsDroppingOnlySplits(t *testing.T) {
	// One long cycle: dropping edges can split it into several components
	// but never merge distinct vertices into fewer than the exact count.
	var edges []Edge
	const n = 30
	for v := int64(0); v < n; v++ {
		edges = append(edges, Edge{U: v, V: (v + 1) % n})
	}
	exactCount := ComponentCount(ExactComponents(edges))
	labels := runCCJob(t, edges, 10, 4, n, []float64{0.4})
	if got := ComponentCount(labels); got < exactCount {
		t.Fatalf("dropping merged components: %d < exact %d", got, exactCount)
	}
}

func TestExactComponentsUnionFind(t *testing.T) {
	edges := []Edge{{U: 5, V: 3}, {U: 3, V: 9}, {U: 2, V: 7}}
	want := map[int64]int64{5: 3, 3: 3, 9: 3, 2: 2, 7: 2}
	got := ExactComponents(edges)
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for v, l := range want {
		if got[v] != l {
			t.Errorf("vertex %d: %d, want %d", v, got[v], l)
		}
	}
}

func TestComponentLabelsErrors(t *testing.T) {
	if _, err := ComponentLabels(nil); err == nil {
		t.Fatal("empty output accepted")
	}
	bad := []engine.Record{{Key: "not-a-number", Value: labelOf{Label: 1}}}
	if _, err := ComponentLabels(bad); err == nil {
		t.Fatal("bad vertex key accepted")
	}
}

// Property: for any undirected edge set, exact union-find labels are
// idempotent under re-running and every label is the minimum id of its
// component.
func TestPropertyExactComponentsMinLabel(t *testing.T) {
	f := func(raw []uint8) bool {
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			u, v := int64(raw[i]%16), int64(raw[i+1]%16)
			if u != v {
				edges = append(edges, Edge{U: u, V: v})
			}
		}
		if len(edges) == 0 {
			return true
		}
		labels := ExactComponents(edges)
		// Group vertices by label; check each label is its group minimum.
		groups := make(map[int64][]int64)
		for v, l := range labels {
			groups[l] = append(groups[l], v)
		}
		for l, vs := range groups {
			minV := vs[0]
			for _, v := range vs {
				if v < minV {
					minV = v
				}
			}
			if l != minV {
				return false
			}
		}
		// Both endpoints of every edge share a label.
		for _, e := range edges {
			if labels[e.U] != labels[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
