package analytics

import (
	"math"
	"math/rand"
	"testing"

	"dias/internal/engine"
)

// chainGraph is 0 -> 1 -> 2 with a back edge 2 -> 0.
func chainGraph() []Edge {
	return []Edge{{0, 1}, {1, 2}, {2, 0}}
}

func TestExactPageRankRing(t *testing.T) {
	// A symmetric ring converges to rank 1 for every vertex.
	ranks := ExactPageRank(chainGraph(), 50)
	for v, r := range ranks {
		if math.Abs(r-1) > 1e-9 {
			t.Fatalf("vertex %d rank %g, want 1", v, r)
		}
	}
}

func TestExactPageRankStar(t *testing.T) {
	// Hub 0 pointed at by 1..4: hub rank grows, leaves get base rank after
	// one iteration... leaves have no in-edges: rank (1-d).
	edges := []Edge{{1, 0}, {2, 0}, {3, 0}, {4, 0}}
	ranks := ExactPageRank(edges, 2)
	base := 1 - Damping
	for v := int64(1); v <= 4; v++ {
		if math.Abs(ranks[v]-base) > 1e-12 {
			t.Fatalf("leaf %d rank %g, want %g", v, ranks[v], base)
		}
	}
	// Hub after 2 iters: (1-d) + d*4*(leaf rank after 1 iter) = (1-d)+4d(1-d).
	want := (1 - Damping) + Damping*4*base
	if math.Abs(ranks[0]-want) > 1e-12 {
		t.Fatalf("hub rank %g, want %g", ranks[0], want)
	}
}

func TestPageRankJobMatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var edges []Edge
	const n = 25
	for i := 0; i < 120; i++ {
		u, v := int64(rng.Intn(n)), int64(rng.Intn(n))
		if u != v {
			edges = append(edges, Edge{u, v})
		}
	}
	const iters = 4
	want := ExactPageRank(edges, iters)

	job := PageRankJob("pr", EdgeDataset(edges, 4), 5, iters, 1000)
	if err := job.Validate(); err != nil {
		t.Fatal(err)
	}
	res := runJob(t, job, nil)
	got, err := PageRanks(res.Output)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d ranked vertices, want %d", len(got), len(want))
	}
	for v, w := range want {
		if math.Abs(got[v]-w) > 1e-9 {
			t.Fatalf("vertex %d: job %g vs exact %g", v, got[v], w)
		}
	}
}

func TestPageRankJobStructure(t *testing.T) {
	job := PageRankJob("pr", EdgeDataset(chainGraph(), 2), 3, 5, 100)
	// init + distribute + 5 iterations + collect.
	if len(job.Stages) != 8 {
		t.Fatalf("%d stages, want 8", len(job.Stages))
	}
	if job.Stages[len(job.Stages)-1].Kind != engine.Result {
		t.Fatal("last stage not Result")
	}
	// Zero iterations clamp to one.
	if got := len(PageRankJob("pr", EdgeDataset(chainGraph(), 2), 3, 0, 100).Stages); got != 4 {
		t.Fatalf("clamped job has %d stages, want 4", got)
	}
}

func TestPageRankDropUnderestimates(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var edges []Edge
	for i := 0; i < 200; i++ {
		u, v := int64(rng.Intn(30)), int64(rng.Intn(30))
		if u != v {
			edges = append(edges, Edge{u, v})
		}
	}
	exact := ExactPageRank(edges, 3)
	var exactTotal float64
	for _, r := range exact {
		exactTotal += r
	}
	job := PageRankJob("pr", EdgeDataset(edges, 10), 8, 3, 1000)
	res := runJob(t, job, []float64{0.4}) // drop 40% of init tasks
	got, err := PageRanks(res.Output)
	if err != nil {
		t.Fatal(err)
	}
	var gotTotal float64
	for _, r := range got {
		gotTotal += r
	}
	// Dropping edges loses rank mass: the approximate total must be lower
	// but still substantial.
	if gotTotal >= exactTotal {
		t.Fatalf("approximate total %g not below exact %g", gotTotal, exactTotal)
	}
	if gotTotal < exactTotal*0.3 {
		t.Fatalf("approximate total %g collapsed (exact %g)", gotTotal, exactTotal)
	}
}

func TestPageRanksErrors(t *testing.T) {
	if _, err := PageRanks(nil); err == nil {
		t.Fatal("empty output accepted")
	}
	bad := []engine.Record{{Key: "notanumber", Value: rankOf{Rank: 1}}}
	if _, err := PageRanks(bad); err == nil {
		t.Fatal("bad vertex key accepted")
	}
}
