// Package analytics implements the paper's two evaluation applications as
// dataflow-engine jobs (§5.1):
//
//   - text analysis: word-popularity counting over per-topic post corpora
//     (the StackExchange workload) as a map + reduce job, and
//   - graph analysis: triangle counting (the GraphX workload) as a chain of
//     six ShuffleMap stages plus one Result stage.
//
// It also provides the accuracy metrics the paper reports: ApproxHadoop-
// style inverse-sampling estimators and the relative error of approximate
// results against exact ones (Figure 6, §5.2.4).
package analytics

import (
	"fmt"
	"slices"
	"strconv"
	"strings"
	"sync"

	"dias/internal/engine"
)

// --- Text analysis -------------------------------------------------------

// WordPopularityJob builds the paper's text-analysis job: stage 0 parses
// posts and emits per-partition word counts (a map-side combine, as Spark
// does), stage 1 sums counts per word and delivers (word, count) records.
// Input partitions hold post records whose Value is the post body text.
func WordPopularityJob(name string, corpus engine.Dataset, reducers int, sizeBytes int64) *engine.Job {
	return &engine.Job{
		Name:      name,
		Input:     corpus,
		SizeBytes: sizeBytes,
		Stages: []engine.Stage{
			{
				Name: "parse+count", Kind: engine.ShuffleMap, OutPartitions: reducers,
				Compute: mapWordCounts,
			},
			{
				Name: "aggregate", Kind: engine.Result, Deps: []int{0},
				Compute: reduceWordCounts,
			},
		},
	}
}

// countsPool recycles the per-task word-count scratch maps. Tasks of
// concurrent scenario runs execute these stages on different goroutines,
// so the scratch state is pooled rather than package-global; the map's
// bucket array survives reuse, which removes the dominant allocation of
// the text workload's hot path.
var countsPool = sync.Pool{
	New: func() any { return make(map[string]float64, 512) },
}

func mapWordCounts(in []engine.Record) []engine.Record {
	counts := countsPool.Get().(map[string]float64)
	for _, r := range in {
		body, ok := r.Value.(string)
		if !ok {
			continue
		}
		// FieldsSeq splits exactly like strings.Fields without
		// materializing the field slice.
		for w := range strings.FieldsSeq(body) {
			counts[w]++
		}
	}
	out := countsToRecords(counts)
	clear(counts)
	countsPool.Put(counts)
	return out
}

func reduceWordCounts(in []engine.Record) []engine.Record {
	counts := countsPool.Get().(map[string]float64)
	for _, r := range in {
		if v, ok := r.Value.(float64); ok {
			counts[r.Key] += v
		}
	}
	out := countsToRecords(counts)
	clear(counts)
	countsPool.Put(counts)
	return out
}

func countsToRecords(counts map[string]float64) []engine.Record {
	out := make([]engine.Record, 0, len(counts))
	for k, v := range counts {
		out = append(out, engine.Record{Key: k, Value: v})
	}
	// Deterministic order keeps downstream bucketing and tests stable.
	sortRecords(out)
	return out
}

// WordCounts folds a word-popularity result into a count map.
func WordCounts(output []engine.Record) map[string]float64 {
	counts := make(map[string]float64, len(output))
	for _, r := range output {
		if v, ok := r.Value.(float64); ok {
			counts[r.Key] += v
		}
	}
	return counts
}

// ScaleCounts applies the inverse-sampling correction: counts computed from
// a fraction (1-θ) of the tasks are scaled by 1/(1-θ) to stay unbiased, as
// ApproxHadoop does. factor is executedTasks/totalTasks of the sampled
// stage; factor <= 0 leaves counts untouched.
func ScaleCounts(counts map[string]float64, factor float64) map[string]float64 {
	out := make(map[string]float64, len(counts))
	if factor <= 0 {
		for k, v := range counts {
			out[k] = v
		}
		return out
	}
	inv := 1 / factor
	for k, v := range counts {
		out[k] = v * inv
	}
	return out
}

// TopWords returns the n highest-count words, ties broken alphabetically.
func TopWords(counts map[string]float64, n int) []string {
	type wc struct {
		w string
		c float64
	}
	all := make([]wc, 0, len(counts))
	for w, c := range counts {
		all = append(all, wc{w, c})
	}
	slices.SortFunc(all, func(a, b wc) int {
		if a.c != b.c {
			if a.c > b.c {
				return -1
			}
			return 1
		}
		return strings.Compare(a.w, b.w)
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].w
	}
	return out
}

// WordAccuracyMAPE returns the mean absolute percentage error of approx
// against exact over exact's top-n words — the paper's accuracy-loss metric
// for text analysis (Figure 6). Missing words count as zero.
func WordAccuracyMAPE(exact, approx map[string]float64, topN int) (float64, error) {
	words := TopWords(exact, topN)
	if len(words) == 0 {
		return 0, fmt.Errorf("analytics: no words in exact result")
	}
	var sum float64
	for _, w := range words {
		e := exact[w]
		a := approx[w]
		if e == 0 {
			continue
		}
		d := (a - e) / e
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return 100 * sum / float64(len(words)), nil
}

// --- Graph analysis ------------------------------------------------------

// Edge is an undirected graph edge.
type Edge struct {
	U, V int64
}

// Canonical returns the edge with U <= V.
func (e Edge) Canonical() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

func (e Edge) key() string {
	return strconv.FormatInt(e.U, 10) + "," + strconv.FormatInt(e.V, 10)
}

func parseEdgeKey(k string) (Edge, bool) {
	i := strings.IndexByte(k, ',')
	if i < 0 {
		return Edge{}, false
	}
	u, err1 := strconv.ParseInt(k[:i], 10, 64)
	v, err2 := strconv.ParseInt(k[i+1:], 10, 64)
	if err1 != nil || err2 != nil {
		return Edge{}, false
	}
	return Edge{U: u, V: v}, true
}

// EdgeDataset partitions an edge list into nParts input partitions.
func EdgeDataset(edges []Edge, nParts int) engine.Dataset {
	if nParts < 1 {
		nParts = 1
	}
	d := make(engine.Dataset, nParts)
	for i, e := range edges {
		p := i % nParts
		d[p] = append(d[p], engine.Record{Key: e.key(), Value: e})
	}
	return d
}

// Marker values distinguishing record roles in the triangle-count shuffle.
const (
	markerEdge  = "E"
	markerWedge = "W"
)

// TriangleCountJob builds the paper's graph-analysis job as six ShuffleMap
// stages plus one Result stage, mirroring the GraphX triangle-count plan
// (§5.1): canonicalize edges, deduplicate, build adjacency, enumerate
// wedges alongside edge markers, join wedges with edges, aggregate partial
// counts, and produce the global count. Every triangle is matched at all
// three of its wedges, so the Result stage divides by three.
func TriangleCountJob(name string, edges engine.Dataset, buckets int, sizeBytes int64) *engine.Job {
	return &engine.Job{
		Name:      name,
		Input:     edges,
		SizeBytes: sizeBytes,
		Stages: []engine.Stage{
			{Name: "canonicalize", Kind: engine.ShuffleMap, OutPartitions: buckets, Compute: stageCanonicalize},
			{Name: "dedup", Kind: engine.ShuffleMap, OutPartitions: buckets, Deps: []int{0}, Compute: stageDedup},
			{Name: "adjacency", Kind: engine.ShuffleMap, OutPartitions: buckets, Deps: []int{1}, Compute: stageAdjacency},
			{Name: "wedges", Kind: engine.ShuffleMap, OutPartitions: buckets, Deps: []int{2}, Compute: stageWedges},
			{Name: "join", Kind: engine.ShuffleMap, OutPartitions: buckets, Deps: []int{3}, Compute: stageJoin},
			{Name: "partial-count", Kind: engine.ShuffleMap, OutPartitions: 1, Deps: []int{4}, Compute: stagePartialCount},
			{Name: "total", Kind: engine.Result, Deps: []int{5}, Compute: stageTotal},
		},
	}
}

// stageCanonicalize re-keys every edge by its canonical (min,max) form.
func stageCanonicalize(in []engine.Record) []engine.Record {
	out := make([]engine.Record, 0, len(in))
	for _, r := range in {
		e, ok := r.Value.(Edge)
		if !ok {
			continue
		}
		if e.U == e.V {
			continue // self-loops form no triangles
		}
		c := e.Canonical()
		out = append(out, engine.Record{Key: c.key(), Value: c})
	}
	return out
}

// edgeSetPool recycles stageDedup's scratch map.
var edgeSetPool = sync.Pool{
	New: func() any { return make(map[string]Edge, 512) },
}

// stageDedup removes duplicate edges; canonical keys co-locate duplicates.
func stageDedup(in []engine.Record) []engine.Record {
	seen := edgeSetPool.Get().(map[string]Edge)
	for _, r := range in {
		if e, ok := r.Value.(Edge); ok {
			seen[r.Key] = e
		}
	}
	out := make([]engine.Record, 0, len(seen))
	for k, e := range seen {
		out = append(out, engine.Record{Key: k, Value: e})
	}
	clear(seen)
	edgeSetPool.Put(seen)
	sortRecords(out)
	return out
}

// stageAdjacency emits each edge under both endpoint keys so the next
// stage sees complete neighborhoods, plus one edge marker under the
// canonical key for the later join.
func stageAdjacency(in []engine.Record) []engine.Record {
	out := make([]engine.Record, 0, 3*len(in))
	for _, r := range in {
		e, ok := r.Value.(Edge)
		if !ok {
			continue
		}
		out = append(out,
			engine.Record{Key: strconv.FormatInt(e.U, 10), Value: e.V},
			engine.Record{Key: strconv.FormatInt(e.V, 10), Value: e.U},
			engine.Record{Key: e.key(), Value: markerEdge},
		)
	}
	return out
}

// adjPool recycles stageWedges' adjacency scratch map (the neighbor
// slices themselves are released on clear; only the bucket array is kept).
var adjPool = sync.Pool{
	New: func() any { return make(map[string][]int64, 512) },
}

// stageWedges groups neighbors per vertex and emits one wedge record per
// neighbor pair, forwarding edge markers unchanged.
func stageWedges(in []engine.Record) []engine.Record {
	adj := adjPool.Get().(map[string][]int64)
	var out []engine.Record
	for _, r := range in {
		switch v := r.Value.(type) {
		case int64:
			adj[r.Key] = append(adj[r.Key], v)
		case string:
			if v == markerEdge {
				out = append(out, r)
			}
		}
	}
	keys := make([]string, 0, len(adj))
	for k := range adj {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		ns := dedupSorted(adj[k])
		for i := 0; i < len(ns); i++ {
			for j := i + 1; j < len(ns); j++ {
				w := Edge{U: ns[i], V: ns[j]}
				out = append(out, engine.Record{Key: w.key(), Value: markerWedge})
			}
		}
	}
	clear(adj)
	adjPool.Put(adj)
	return out
}

// edgeMarkPool recycles stageJoin's edge-membership scratch set.
var edgeMarkPool = sync.Pool{
	New: func() any { return make(map[string]bool, 512) },
}

// stageJoin counts, per canonical pair key, wedges that close into
// triangles because the pair is also an edge.
func stageJoin(in []engine.Record) []engine.Record {
	wedges := countsPool.Get().(map[string]float64)
	isEdge := edgeMarkPool.Get().(map[string]bool)
	for _, r := range in {
		switch r.Value {
		case markerWedge:
			wedges[r.Key]++
		case markerEdge:
			isEdge[r.Key] = true
		}
	}
	var out []engine.Record
	keys := make([]string, 0, len(wedges))
	for k := range wedges {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		if isEdge[k] {
			out = append(out, engine.Record{Key: k, Value: wedges[k]})
		}
	}
	clear(wedges)
	countsPool.Put(wedges)
	clear(isEdge)
	edgeMarkPool.Put(isEdge)
	return out
}

// stagePartialCount sums matched wedges within its bucket.
func stagePartialCount(in []engine.Record) []engine.Record {
	var sum float64
	for _, r := range in {
		if v, ok := r.Value.(float64); ok {
			sum += v
		}
	}
	return []engine.Record{{Key: "partial", Value: sum}}
}

// stageTotal sums partial counts; each triangle was matched at its three
// wedges, so divide by three.
func stageTotal(in []engine.Record) []engine.Record {
	var sum float64
	for _, r := range in {
		if v, ok := r.Value.(float64); ok {
			sum += v
		}
	}
	return []engine.Record{{Key: "triangles", Value: sum / 3}}
}

// TriangleCount extracts the count from a TriangleCountJob result.
func TriangleCount(output []engine.Record) (float64, error) {
	var sum float64
	var found bool
	for _, r := range output {
		if r.Key == "triangles" {
			if v, ok := r.Value.(float64); ok {
				sum += v
				found = true
			}
		}
	}
	if !found {
		return 0, fmt.Errorf("analytics: no triangle count in %d output records", len(output))
	}
	return sum, nil
}

// ScaleTriangleEstimate applies the inverse-sampling correction for
// per-stage task dropping: with stage drop ratios thetas applied to the
// sampling-sensitive stages, the raw count underestimates roughly by the
// product of retained fractions, so scale by its inverse.
func ScaleTriangleEstimate(raw float64, thetas []float64) float64 {
	scale := 1.0
	for _, th := range thetas {
		if th > 0 && th < 1 {
			scale /= 1 - th
		}
	}
	return raw * scale
}

// RelativeErrorPct returns |approx-exact|/exact in percent.
func RelativeErrorPct(exact, approx float64) float64 {
	if exact == 0 {
		return 0
	}
	d := (approx - exact) / exact
	if d < 0 {
		d = -d
	}
	return 100 * d
}

// ExactTriangles counts triangles directly (sorted adjacency intersection),
// the reference for accuracy measurements.
func ExactTriangles(edges []Edge) int64 {
	adj := make(map[int64][]int64)
	seen := make(map[Edge]bool)
	for _, e := range edges {
		c := e.Canonical()
		if c.U == c.V || seen[c] {
			continue
		}
		seen[c] = true
		adj[c.U] = append(adj[c.U], c.V)
		adj[c.V] = append(adj[c.V], c.U)
	}
	for v := range adj {
		slices.Sort(adj[v])
	}
	var count int64
	for e := range seen {
		// Intersect neighbor lists of u and v, counting w > v to count each
		// triangle exactly once (u < v < w with all three edges present).
		nu, nv := adj[e.U], adj[e.V]
		i, j := 0, 0
		for i < len(nu) && j < len(nv) {
			switch {
			case nu[i] < nv[j]:
				i++
			case nu[i] > nv[j]:
				j++
			default:
				if nu[i] > e.V {
					count++
				}
				i++
				j++
			}
		}
	}
	return count
}

func dedupSorted(xs []int64) []int64 {
	if len(xs) == 0 {
		return xs
	}
	slices.Sort(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// sortRecords orders records by key without sort.Slice's reflection-based
// swapper, a measurable win on the per-task shuffle outputs.
func sortRecords(rs []engine.Record) {
	slices.SortFunc(rs, func(a, b engine.Record) int { return strings.Compare(a.Key, b.Key) })
}

// ParseEdgeKey is exported for tests and tooling that inspect shuffle keys.
func ParseEdgeKey(k string) (Edge, bool) { return parseEdgeKey(k) }
