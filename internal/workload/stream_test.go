package workload

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"dias/internal/trace"
)

const streamTestTrace = trace.StreamHeader + "\n" +
	"1 0 100 0\n" +
	"3 1 200 1\n" +
	"6 0 300 -1\n"

// EmpiricalStream must replay the recorded gaps and classes exactly and,
// on a seekable reader, cycle the trace like Replay: wrap gap = first
// arrival time.
func TestEmpiricalStreamReplaysAndCycles(t *testing.T) {
	es, err := NewEmpiricalStream(strings.NewReader(streamTestTrace))
	if err != nil {
		t.Fatal(err)
	}
	wantGaps := []float64{1, 2, 3, 1, 2, 3, 1} // cycles after 3 records
	wantClasses := []int{0, 1, 0, 0, 1, 0, 0}
	for i := range wantGaps {
		gap, class := es.Next(nil)
		if gap != wantGaps[i] || class != wantClasses[i] {
			t.Fatalf("draw %d: (%g, %d), want (%g, %d)", i, gap, class, wantGaps[i], wantClasses[i])
		}
	}
	if es.Count() != len(wantGaps) {
		t.Fatalf("count %d, want %d", es.Count(), len(wantGaps))
	}
	// Last exposes the fields the (gap, class) interface cannot carry.
	if last := es.Last(); last.SizeBytes != 100 || last.Home != 0 {
		t.Fatalf("last record %+v, want the first trace record again", last)
	}
}

// nonSeeker hides bytes.Reader's Seek method.
type nonSeeker struct{ r io.Reader }

func (n nonSeeker) Read(p []byte) (int, error) { return n.r.Read(p) }

// A non-seekable reader cannot rewind; drawing past the last record
// must panic, not fabricate arrivals.
func TestEmpiricalStreamNonSeekablePanics(t *testing.T) {
	es, err := NewEmpiricalStream(nonSeeker{strings.NewReader(streamTestTrace)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		es.Next(nil)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("draw past a non-seekable trace did not panic")
		}
	}()
	es.Next(nil)
}

// A malformed record panics at the draw that hits it, naming the line.
func TestEmpiricalStreamMalformedPanics(t *testing.T) {
	in := trace.StreamHeader + "\n1 0 100 0\nbogus line\n"
	es, err := NewEmpiricalStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	es.Next(nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("malformed record did not panic")
		}
		if !strings.Contains(r.(string), "line 3") {
			t.Fatalf("panic %q does not name line 3", r)
		}
	}()
	es.Next(nil)
}

func TestEmpiricalStreamEmptyTracePanics(t *testing.T) {
	es, err := NewEmpiricalStream(strings.NewReader(trace.StreamHeader + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("empty trace did not panic")
		}
	}()
	es.Next(nil)
}

// The synthesizer and the streaming replayer agree end to end: a
// synthesized trace replays with the synthesized mean rate and mix.
func TestEmpiricalStreamReplaysSynthesizedTrace(t *testing.T) {
	var buf bytes.Buffer
	const jobs = 5000
	if _, err := trace.Synthesize(&buf, trace.SynthConfig{
		Jobs: jobs, Rates: []float64{9, 1}, Seed: 7,
	}); err != nil {
		t.Fatal(err)
	}
	es, err := NewEmpiricalStream(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var class0 int
	for i := 0; i < jobs; i++ {
		gap, class := es.Next(nil)
		sum += gap
		if class == 0 {
			class0++
		}
	}
	if mean := sum / jobs; math.Abs(mean-0.1) > 0.01 {
		t.Fatalf("mean gap %g, want 0.1", mean)
	}
	if frac := float64(class0) / jobs; math.Abs(frac-0.9) > 0.03 {
		t.Fatalf("class-0 fraction %g, want 0.9", frac)
	}
}
