package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dias/internal/analytics"
)

func TestSynthesizeCorpusShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := DefaultCorpusConfig()
	cfg.Partitions = 5
	cfg.PostsPerPartition = 10
	ds, err := SynthesizeCorpus(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 5 {
		t.Fatalf("%d partitions, want 5", len(ds))
	}
	for p, part := range ds {
		if len(part) != 10 {
			t.Fatalf("partition %d has %d posts, want 10", p, len(part))
		}
		for _, rec := range part {
			body, ok := rec.Value.(string)
			if !ok {
				t.Fatalf("post value is %T", rec.Value)
			}
			words := strings.Fields(body)
			if len(words) != cfg.WordsPerPost {
				t.Fatalf("post has %d words, want %d", len(words), cfg.WordsPerPost)
			}
			for _, w := range words {
				if !strings.HasPrefix(w, "w") {
					t.Fatalf("unexpected word %q", w)
				}
			}
		}
	}
}

func TestSynthesizeCorpusValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []func(*CorpusConfig){
		func(c *CorpusConfig) { c.Partitions = 0 },
		func(c *CorpusConfig) { c.VocabSize = 1 },
		func(c *CorpusConfig) { c.ZipfS = 1 },
		func(c *CorpusConfig) { c.TopicSkew = 1.5 },
		func(c *CorpusConfig) { c.TopicVocab = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultCorpusConfig()
		mutate(&cfg)
		if _, err := SynthesizeCorpus(rng, cfg); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestCorpusIsZipfSkewed(t *testing.T) {
	// The most common word should dominate: Zipf, not uniform.
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultCorpusConfig()
	cfg.Partitions = 10
	cfg.PostsPerPartition = 50
	cfg.TopicSkew = 0
	ds, err := SynthesizeCorpus(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	total := 0
	for _, part := range ds {
		for _, rec := range part {
			for _, w := range strings.Fields(rec.Value.(string)) {
				counts[w]++
				total++
			}
		}
	}
	var max int
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if frac := float64(max) / float64(total); frac < 0.05 {
		t.Fatalf("top word holds %.3f of mass; expected Zipf-like concentration", frac)
	}
}

func TestTopicSkewIncreasesPartitionVariance(t *testing.T) {
	// With topic skew, partitions disagree more about word frequencies.
	variance := func(skew float64) float64 {
		rng := rand.New(rand.NewSource(3))
		cfg := DefaultCorpusConfig()
		cfg.Partitions = 20
		cfg.PostsPerPartition = 40
		cfg.TopicSkew = skew
		ds, err := SynthesizeCorpus(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Per-partition count of the globally most common word w1.
		var counts []float64
		for _, part := range ds {
			var c float64
			for _, rec := range part {
				for _, w := range strings.Fields(rec.Value.(string)) {
					if w == "w1" {
						c++
					}
				}
			}
			counts = append(counts, c)
		}
		var mean float64
		for _, c := range counts {
			mean += c
		}
		mean /= float64(len(counts))
		var v float64
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		if mean == 0 {
			return 0
		}
		return v / float64(len(counts)) / (mean * mean) // squared CV
	}
	if v0, v1 := variance(0), variance(0.8); v1 <= v0 {
		t.Fatalf("partition variance did not grow with skew: %g vs %g", v0, v1)
	}
}

func TestSynthesizeGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := GraphConfig{Nodes: 200, EdgesPerNode: 3}
	edges, err := SynthesizeGraph(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Clique on 4 vertices (6 edges) + 196 vertices x 3 edges.
	want := 6 + 196*3
	if len(edges) != want {
		t.Fatalf("%d edges, want %d", len(edges), want)
	}
	deg := map[int64]int{}
	for _, e := range edges {
		if e.U == e.V {
			t.Fatalf("self loop %+v", e)
		}
		if e.U < 0 || e.U >= 200 || e.V < 0 || e.V >= 200 {
			t.Fatalf("edge out of range %+v", e)
		}
		deg[e.U]++
		deg[e.V]++
	}
	// Preferential attachment yields a heavy tail: max degree well above m.
	var maxDeg int
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 3*cfg.EdgesPerNode {
		t.Fatalf("max degree %d suggests no preferential attachment", maxDeg)
	}
	// A scale-free graph of this density has triangles.
	if analytics.ExactTriangles(edges) == 0 {
		t.Fatal("no triangles in scale-free graph")
	}
}

func TestSynthesizeGraphValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []GraphConfig{
		{Nodes: 2, EdgesPerNode: 1},
		{Nodes: 10, EdgesPerNode: 0},
		{Nodes: 10, EdgesPerNode: 10},
	}
	for _, cfg := range bad {
		if _, err := SynthesizeGraph(rng, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestPoissonMix(t *testing.T) {
	pm, err := NewPoissonMix([]float64{9, 1})
	if err != nil {
		t.Fatal(err)
	}
	if pm.TotalRate() != 10 {
		t.Fatalf("total = %g", pm.TotalRate())
	}
	rng := rand.New(rand.NewSource(5))
	const n = 50000
	var gaps float64
	classes := map[int]int{}
	for i := 0; i < n; i++ {
		gap, k := pm.Next(rng)
		gaps += gap
		classes[k]++
	}
	// Mean gap = 1/10.
	if got := gaps / n; math.Abs(got-0.1) > 0.005 {
		t.Fatalf("mean gap = %g, want 0.1", got)
	}
	// Class 0 fraction = 0.9.
	if frac := float64(classes[0]) / n; math.Abs(frac-0.9) > 0.01 {
		t.Fatalf("class-0 fraction = %g, want 0.9", frac)
	}
}

func TestPoissonMixValidation(t *testing.T) {
	if _, err := NewPoissonMix(nil); err == nil {
		t.Fatal("empty rates accepted")
	}
	if _, err := NewPoissonMix([]float64{-1, 2}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := NewPoissonMix([]float64{0, 0}); err == nil {
		t.Fatal("zero rates accepted")
	}
}

func TestStream(t *testing.T) {
	pm, err := NewPoissonMix([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	arr := pm.Stream(rng, 100)
	if len(arr) != 100 {
		t.Fatalf("%d arrivals", len(arr))
	}
	prev := 0.0
	for _, a := range arr {
		if a.At <= prev {
			t.Fatalf("non-increasing arrival times: %g after %g", a.At, prev)
		}
		prev = a.At
		if a.Class != 0 && a.Class != 1 {
			t.Fatalf("class %d", a.Class)
		}
	}
}

func TestMixFromRatio(t *testing.T) {
	rates, err := MixFromRatio([]float64{9, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-1.8) > 1e-12 || math.Abs(rates[1]-0.2) > 1e-12 {
		t.Fatalf("rates = %v", rates)
	}
	if _, err := MixFromRatio(nil, 1); err == nil {
		t.Fatal("empty ratio accepted")
	}
	if _, err := MixFromRatio([]float64{1}, 0); err == nil {
		t.Fatal("zero total accepted")
	}
	if _, err := MixFromRatio([]float64{0, 0}, 1); err == nil {
		t.Fatal("zero weights accepted")
	}
}

func TestCalibrateTotalRate(t *testing.T) {
	// Classes with exec 100 s and 50 s mixed 9:1 -> mean 95 s.
	// For util 0.8: λ = 0.8/95.
	rate, err := CalibrateTotalRate([]float64{100, 50}, []float64{0.9, 0.1}, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-0.8/95) > 1e-12 {
		t.Fatalf("rate = %g, want %g", rate, 0.8/95)
	}
	if _, err := CalibrateTotalRate([]float64{100}, []float64{1}, 1.5); err == nil {
		t.Fatal("util > 1 accepted")
	}
	if _, err := CalibrateTotalRate([]float64{100}, []float64{1, 2}, 0.5); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := CalibrateTotalRate([]float64{0}, []float64{1}, 0.5); err == nil {
		t.Fatal("zero exec accepted")
	}
}

// Property: arrival rates from MixFromRatio always sum to the total and
// preserve proportions.
func TestPropertyMixFromRatio(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		ratio := make([]float64, n)
		for i := range ratio {
			ratio[i] = rng.Float64() + 0.01
		}
		total := rng.Float64()*10 + 0.1
		rates, err := MixFromRatio(ratio, total)
		if err != nil {
			return false
		}
		var sum float64
		for _, r := range rates {
			sum += r
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: corpus generation is deterministic for a fixed seed.
func TestPropertyCorpusDeterministic(t *testing.T) {
	cfg := DefaultCorpusConfig()
	cfg.Partitions = 3
	cfg.PostsPerPartition = 5
	gen := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		ds, err := SynthesizeCorpus(rng, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, part := range ds {
			for _, rec := range part {
				sb.WriteString(rec.Value.(string))
				sb.WriteByte('|')
			}
		}
		return sb.String()
	}
	if gen(42) != gen(42) {
		t.Fatal("same seed produced different corpora")
	}
	if gen(42) == gen(43) {
		t.Fatal("different seeds produced identical corpora")
	}
}
