package workload

import (
	"errors"
	"fmt"
	"io"
	"math/rand"

	"dias/internal/trace"
)

// EmpiricalStream replays a streamed trace (trace.StreamReader format)
// as an arrival process without materializing it: one record is in
// memory at a time, so a million-job trace file drives a run in O(1)
// space. It is the streaming counterpart of Replay — fully
// deterministic, RNG ignored.
//
// When the underlying reader is an io.Seeker (an *os.File, a
// bytes.Reader), the stream cycles like Replay does: on exhaustion it
// rewinds and replays the trace back to back, with the wrap gap equal
// to the first recorded arrival time. A non-seekable stream cannot
// rewind, so drawing past its last record panics — Process.Next has no
// error path, and silently fabricating arrivals would corrupt the
// workload; size the run to the trace (or hand Next a seekable reader)
// instead.
type EmpiricalStream struct {
	src    io.Reader
	seeker io.Seeker
	sr     *trace.StreamReader
	last   trace.Rec
	prevAt float64
	count  int
}

// NewEmpiricalStream wraps a streamed trace. The header and records are
// validated lazily as Next consumes them; a malformed record panics at
// the draw that hits it (with its line number), again because Next has
// no error path. Validate untrusted traces by reading them through
// trace.StreamReader first.
func NewEmpiricalStream(r io.Reader) (*EmpiricalStream, error) {
	if r == nil {
		return nil, errors.New("workload: nil trace reader")
	}
	sr, err := trace.NewStreamReader(r)
	if err != nil {
		return nil, err
	}
	es := &EmpiricalStream{src: r, sr: sr}
	if s, ok := r.(io.Seeker); ok {
		es.seeker = s
	}
	return es, nil
}

// Next replays the next recorded arrival, ignoring the RNG.
func (e *EmpiricalStream) Next(_ *rand.Rand) (gap float64, class int) {
	rec, err := e.sr.Next()
	if err == io.EOF {
		if e.seeker == nil {
			panic(fmt.Sprintf(
				"workload: trace exhausted after %d arrivals and the reader cannot rewind", e.count))
		}
		if e.count == 0 {
			panic("workload: empty trace stream")
		}
		if _, serr := e.seeker.Seek(0, io.SeekStart); serr != nil {
			panic(fmt.Sprintf("workload: rewinding trace: %v", serr))
		}
		e.sr, err = trace.NewStreamReader(e.src)
		if err == nil {
			rec, err = e.sr.Next()
		}
		e.prevAt = 0 // wrap gap = first arrival time, like Replay
	}
	if err != nil {
		panic(fmt.Sprintf("workload: reading trace: %v", err))
	}
	gap = rec.At - e.prevAt
	e.prevAt = rec.At
	e.last = rec
	e.count++
	return gap, rec.Class
}

// Last returns the most recently replayed record, exposing the size and
// home-cluster fields the (gap, class) interface cannot carry.
func (e *EmpiricalStream) Last() trace.Rec { return e.last }

// Count returns how many arrivals have been replayed so far, across
// cycles.
func (e *EmpiricalStream) Count() int { return e.count }
