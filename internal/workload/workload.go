package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"dias/internal/analytics"
	"dias/internal/engine"
)

// --- Text corpora --------------------------------------------------------

// CorpusConfig shapes a synthetic per-topic corpus.
type CorpusConfig struct {
	// Partitions is the number of input partitions (RDD partitions; the
	// paper splits each dataset into 50).
	Partitions int
	// PostsPerPartition controls the data volume.
	PostsPerPartition int
	// WordsPerPost is the mean post length.
	WordsPerPost int
	// VocabSize is the global vocabulary size.
	VocabSize int
	// ZipfS is the Zipf exponent of word frequencies (>1).
	ZipfS float64
	// TopicSkew in [0,1] is the fraction of words drawn from a
	// partition-local topic vocabulary instead of the global one. Higher
	// skew means partitions differ more, so dropping tasks loses more
	// accuracy — this knob reproduces the Figure 6 error curve.
	TopicSkew float64
	// TopicVocab is the size of each partition's topic slice.
	TopicVocab int
}

// DefaultCorpusConfig mirrors the paper's setup at laptop scale: 50
// partitions per dataset with moderately topic-skewed Zipf text.
func DefaultCorpusConfig() CorpusConfig {
	return CorpusConfig{
		Partitions:        50,
		PostsPerPartition: 60,
		WordsPerPost:      12,
		VocabSize:         2000,
		ZipfS:             1.3,
		TopicSkew:         0.35,
		TopicVocab:        50,
	}
}

func (c CorpusConfig) validate() error {
	switch {
	case c.Partitions <= 0 || c.PostsPerPartition <= 0 || c.WordsPerPost <= 0:
		return fmt.Errorf("workload: corpus shape %d/%d/%d must be positive",
			c.Partitions, c.PostsPerPartition, c.WordsPerPost)
	case c.VocabSize <= 1 || c.TopicVocab <= 1:
		return fmt.Errorf("workload: vocab sizes %d/%d too small", c.VocabSize, c.TopicVocab)
	case c.ZipfS <= 1:
		return fmt.Errorf("workload: zipf exponent %g must exceed 1", c.ZipfS)
	case c.TopicSkew < 0 || c.TopicSkew > 1:
		return fmt.Errorf("workload: topic skew %g out of [0,1]", c.TopicSkew)
	}
	return nil
}

// SynthesizeCorpus builds a partitioned corpus of posts. Each partition
// leans toward its own topic vocabulary, so word counts vary across
// partitions and task dropping incurs a measurable accuracy loss.
func SynthesizeCorpus(rng *rand.Rand, cfg CorpusConfig) (engine.Dataset, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	global := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.VocabSize-1))
	topic := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.TopicVocab-1))
	ds := make(engine.Dataset, cfg.Partitions)
	var sb strings.Builder
	for p := 0; p < cfg.Partitions; p++ {
		// Each partition's topic occupies a distinct vocabulary slice.
		topicBase := (p * cfg.TopicVocab) % cfg.VocabSize
		for q := 0; q < cfg.PostsPerPartition; q++ {
			sb.Reset()
			for w := 0; w < cfg.WordsPerPost; w++ {
				var id uint64
				if rng.Float64() < cfg.TopicSkew {
					id = uint64(topicBase) + topic.Uint64()
				} else {
					id = global.Uint64()
				}
				if w > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString("w")
				sb.WriteString(strconv.FormatUint(id%uint64(cfg.VocabSize), 10))
			}
			ds[p] = append(ds[p], engine.Record{
				Key:   "post-" + strconv.Itoa(p) + "-" + strconv.Itoa(q),
				Value: sb.String(),
			})
		}
	}
	return ds, nil
}

// --- Graphs --------------------------------------------------------------

// GraphConfig shapes a synthetic scale-free graph.
type GraphConfig struct {
	// Nodes is the vertex count.
	Nodes int
	// EdgesPerNode is the preferential-attachment out-degree m.
	EdgesPerNode int
}

// DefaultGraphConfig is a laptop-scale stand-in for the Google web graph
// (875k nodes / 5.1M edges in the paper): the same heavy-tailed degree
// shape at ~1000x smaller size.
func DefaultGraphConfig() GraphConfig {
	return GraphConfig{Nodes: 900, EdgesPerNode: 5}
}

// SynthesizeGraph grows a Barabási–Albert preferential-attachment graph:
// new vertices attach m edges to existing vertices with probability
// proportional to degree, yielding the power-law degree distribution of
// web graphs.
func SynthesizeGraph(rng *rand.Rand, cfg GraphConfig) ([]analytics.Edge, error) {
	if cfg.Nodes < 3 || cfg.EdgesPerNode < 1 || cfg.EdgesPerNode >= cfg.Nodes {
		return nil, fmt.Errorf("workload: graph config %+v invalid", cfg)
	}
	m := cfg.EdgesPerNode
	edges := make([]analytics.Edge, 0, cfg.Nodes*m)
	// Repeated-endpoint list implements degree-proportional sampling.
	var endpoints []int64
	// Seed with a small clique on m+1 vertices.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			edges = append(edges, analytics.Edge{U: int64(u), V: int64(v)})
			endpoints = append(endpoints, int64(u), int64(v))
		}
	}
	for v := m + 1; v < cfg.Nodes; v++ {
		chosen := make(map[int64]bool, m)
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			if t != int64(v) {
				chosen[t] = true
			}
		}
		for t := range chosen {
			edges = append(edges, analytics.Edge{U: int64(v), V: t})
			endpoints = append(endpoints, int64(v), t)
		}
	}
	return edges, nil
}

// --- Arrival processes ---------------------------------------------------

// Arrival is one job arrival in a stream.
type Arrival struct {
	// At is the arrival time in seconds from stream start.
	At float64
	// Class is the priority class index (higher = higher priority).
	Class int
}

// PoissonMix generates a superposed Poisson stream: exponential gaps at the
// total rate, each arrival labeled class k with probability rate_k/total.
// This is the marked Poisson special case of the paper's MMAP[K] (§4).
type PoissonMix struct {
	rates []float64
	total float64
}

// NewPoissonMix builds a mixed Poisson arrival process from per-class
// rates (jobs per second; index = class).
func NewPoissonMix(rates []float64) (*PoissonMix, error) {
	if len(rates) == 0 {
		return nil, errors.New("workload: no arrival rates")
	}
	var total float64
	for k, r := range rates {
		if r < 0 {
			return nil, fmt.Errorf("workload: rate[%d] = %g negative", k, r)
		}
		total += r
	}
	if total <= 0 {
		return nil, errors.New("workload: all arrival rates zero")
	}
	cp := make([]float64, len(rates))
	copy(cp, rates)
	return &PoissonMix{rates: cp, total: total}, nil
}

// TotalRate returns the aggregate arrival rate.
func (p *PoissonMix) TotalRate() float64 { return p.total }

// Rates returns a copy of the per-class rates.
func (p *PoissonMix) Rates() []float64 {
	out := make([]float64, len(p.rates))
	copy(out, p.rates)
	return out
}

// Next draws the gap to the next arrival and its class.
func (p *PoissonMix) Next(rng *rand.Rand) (gap float64, class int) {
	gap = rng.ExpFloat64() / p.total
	return gap, markClass(rng, p.rates, p.total)
}

// Stream materialises the first n arrivals of the process.
func (p *PoissonMix) Stream(rng *rand.Rand, n int) []Arrival {
	out := make([]Arrival, 0, n)
	var t float64
	for i := 0; i < n; i++ {
		gap, k := p.Next(rng)
		t += gap
		out = append(out, Arrival{At: t, Class: k})
	}
	return out
}

// MixFromRatio converts a priority ratio (e.g. 9:1 low:high as []float64{9,1},
// index = class) and a total rate into per-class rates.
func MixFromRatio(ratio []float64, totalRate float64) ([]float64, error) {
	if len(ratio) == 0 || totalRate <= 0 {
		return nil, fmt.Errorf("workload: ratio %v total %g", ratio, totalRate)
	}
	var sum float64
	for k, w := range ratio {
		if w < 0 {
			return nil, fmt.Errorf("workload: ratio[%d] = %g negative", k, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, errors.New("workload: zero ratio weights")
	}
	out := make([]float64, len(ratio))
	for k, w := range ratio {
		out[k] = totalRate * w / sum
	}
	return out, nil
}

// CalibrateTotalRate returns the total arrival rate that loads a
// one-job-at-a-time engine to targetUtil, given each class's mean solo
// execution time and the class mix (fractions summing to 1):
// util = λ_total · Σ_k frac_k · E[S_k].
func CalibrateTotalRate(meanExecSec []float64, mix []float64, targetUtil float64) (float64, error) {
	if len(meanExecSec) != len(mix) || len(mix) == 0 {
		return 0, fmt.Errorf("workload: %d exec means vs %d mix entries", len(meanExecSec), len(mix))
	}
	if targetUtil <= 0 || targetUtil >= 1 {
		return 0, fmt.Errorf("workload: target utilization %g out of (0,1)", targetUtil)
	}
	var mixSum, weighted float64
	for k := range mix {
		if mix[k] < 0 || meanExecSec[k] <= 0 {
			return 0, fmt.Errorf("workload: class %d mix %g exec %g", k, mix[k], meanExecSec[k])
		}
		mixSum += mix[k]
		weighted += mix[k] * meanExecSec[k]
	}
	if mixSum <= 0 || weighted <= 0 {
		return 0, errors.New("workload: degenerate mix")
	}
	weighted /= mixSum
	return targetUtil / weighted, nil
}
