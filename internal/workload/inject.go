package workload

import (
	"errors"
	"math/rand"

	"dias/internal/engine"
	"dias/internal/simtime"
)

// Inject feeds n arrivals of an arrival process into a simulation
// feed-forward: only the *next* arrival is ever scheduled, and each
// arrival event builds its job, hands it to submit, draws the following
// gap and schedules itself again. Pending-arrival memory is O(1)
// regardless of n — this is what lets SubmitStream push a million jobs
// through a federation without materializing a million Arrival structs
// and closures up front.
//
// The draw order matches the materialized StreamOf path exactly: arrRng
// only ever draws gap/class pairs in arrival order and jobRng only ever
// builds jobs in arrival order, so a feed-forward run reproduces a
// materialized run bit for bit.
//
// Jobs are built at their arrival instant, so a job-source error can no
// longer be returned from the submitting call — it panics instead,
// naming the class, consistent with how Stack.SubmitAt and the
// federation dispatcher surface mid-run workload loss.
func Inject(sim *simtime.Simulation, proc Process, source JobSource, n int,
	arrRng, jobRng *rand.Rand, submit func(class int, job *engine.Job)) error {
	switch {
	case sim == nil:
		return errors.New("workload: inject into nil simulation")
	case proc == nil || source == nil:
		return errors.New("workload: nil arrival process or job source")
	case submit == nil:
		return errors.New("workload: nil submit hook")
	}
	if n <= 0 {
		return nil
	}
	var t float64
	left := n
	var schedule func()
	schedule = func() {
		gap, class := proc.Next(arrRng)
		t += gap
		sim.At(simtime.Time(t), func() {
			job, err := source.Job(jobRng, class)
			if err != nil {
				panic("workload: inject: building class job failed: " + err.Error())
			}
			submit(class, job)
			left--
			if left > 0 {
				schedule()
			}
		})
	}
	schedule()
	return nil
}
