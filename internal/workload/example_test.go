package workload_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"

	"dias/internal/trace"
	"dias/internal/workload"
)

// ExampleGamma compares gap clumping at equal mean rate: a CV-3.5 gamma
// renewal process delivers the same long-run rate as Poisson while
// packing arrivals into bursts — the largest gap dwarfs the Poisson
// one.
func ExampleGamma() {
	poisson, _ := workload.NewPoissonMix([]float64{9, 1})
	bursty, _ := workload.NewGamma([]float64{9, 1}, 3.5)
	maxGap := func(name string, p workload.Process) float64 {
		rng := rand.New(rand.NewSource(3))
		var sum, max float64
		const n = 50000
		for i := 0; i < n; i++ {
			gap, _ := p.Next(rng)
			sum += gap
			if gap > max {
				max = gap
			}
		}
		fmt.Printf("%s: mean gap %.2fs\n", name, sum/n)
		return max
	}
	pMax := maxGap("poisson", poisson)
	gMax := maxGap("gamma CV=3.5", bursty)
	fmt.Printf("burstiness: largest gamma gap is %.0fx the largest poisson gap\n", gMax/pMax)
	// Output:
	// poisson: mean gap 0.10s
	// gamma CV=3.5: mean gap 0.10s
	// burstiness: largest gamma gap is 6x the largest poisson gap
}

// ExampleMMPP shows the two-state chain in action: the calm state
// arrives slowly, the burst state 4x faster than the mean, and the
// stationary mixture preserves the configured total rate.
func ExampleMMPP() {
	m, _ := workload.NewMMPP([]float64{9, 1}, 4, [2]float64{300, 60})
	sr := m.StateRates()
	fmt.Printf("mean rate %.0f jobs/s: calm %.0f jobs/s, burst %.0f jobs/s\n",
		m.TotalRate(), sr[0], sr[1])
	// pi0*calm + pi1*burst = mean, with pi1 = 60/(300+60).
	fmt.Printf("stationary check: %.0f*5/6 + %.0f*1/6 = %.0f\n", sr[0], sr[1], sr[0]*5/6+sr[1]/6)
	// Output:
	// mean rate 10 jobs/s: calm 4 jobs/s, burst 40 jobs/s
	// stationary check: 4*5/6 + 40*1/6 = 10
}

// ExampleEmpiricalStream replays a streamed trace file as an arrival
// process without materializing it, cycling when the records run out.
func ExampleEmpiricalStream() {
	var buf bytes.Buffer
	sw, _ := trace.NewStreamWriter(&buf)
	for _, r := range []trace.Rec{
		{At: 5, Class: 0, SizeBytes: 1 << 20, Home: 0},
		{At: 8, Class: 1, SizeBytes: 2 << 20, Home: 1},
	} {
		sw.Write(r)
	}
	sw.Flush()

	es, _ := workload.NewEmpiricalStream(bytes.NewReader(buf.Bytes()))
	for i := 0; i < 4; i++ {
		gap, class := es.Next(nil) // deterministic: the RNG is ignored
		fmt.Printf("arrival %d: +%gs class %d (home %d)\n", i, gap, class, es.Last().Home)
	}
	// Output:
	// arrival 0: +5s class 0 (home 0)
	// arrival 1: +3s class 1 (home 1)
	// arrival 2: +5s class 0 (home 0)
	// arrival 3: +3s class 1 (home 1)
}

// ExampleEmpiricalStream_synthesized drives the streaming replayer from
// a deterministic synthesized trace — the zero-RAM path a million-job
// run takes, at example scale.
func ExampleEmpiricalStream_synthesized() {
	var buf bytes.Buffer
	n, _ := trace.Synthesize(&buf, trace.SynthConfig{
		Jobs:  1000,
		Rates: []float64{9, 1}, // 9:1 low:high at 10 jobs/s
		Seed:  42,
	})
	es, _ := workload.NewEmpiricalStream(bytes.NewReader(buf.Bytes()))
	var t float64
	classes := make([]int, 2)
	for i := 0; i < n; i++ {
		gap, class := es.Next(nil)
		t += gap
		classes[class]++
	}
	fmt.Printf("%d arrivals over %.0fs (rate %.1f jobs/s), %d low / %d high\n",
		n, t, float64(n)/t, classes[0], classes[1])
	fmt.Printf("trace file: %d lines, no RAM per record\n",
		strings.Count(buf.String(), "\n"))
	// Output:
	// 1000 arrivals over 97s (rate 10.4 jobs/s), 894 low / 106 high
	// trace file: 1001 lines, no RAM per record
}
